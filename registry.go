package mwl

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Solver is the uniform interface every allocation method implements:
// solve one Problem, honouring ctx for cancellation and deadlines.
// Implementations must be safe for concurrent use.
type Solver interface {
	Solve(ctx context.Context, p Problem) (Solution, error)
}

// SolverFunc adapts an ordinary function to the Solver interface.
type SolverFunc func(ctx context.Context, p Problem) (Solution, error)

// Solve calls f.
func (f SolverFunc) Solve(ctx context.Context, p Problem) (Solution, error) { return f(ctx, p) }

// ErrUnknownMethod is returned (wrapped) when a Problem names a method
// that is not in the registry.
var ErrUnknownMethod = errors.New("mwl: unknown method")

type methodEntry struct {
	solver Solver
	desc   string
}

var registry = struct {
	sync.RWMutex
	m map[string]methodEntry
}{m: make(map[string]methodEntry)}

// Register adds a solver to the method registry under name, making it
// reachable through Get, Solve and the mwld service. Registering an
// empty name, a nil solver, or a name that is already taken is an
// error; the six built-in methods are pre-registered.
func Register(name string, s Solver) error {
	return register(name, "", s)
}

func register(name, desc string, s Solver) error {
	if name == "" {
		return errors.New("mwl: Register with empty method name")
	}
	if s == nil {
		return fmt.Errorf("mwl: Register(%q) with nil solver", name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		return fmt.Errorf("mwl: method %q already registered", name)
	}
	registry.m[name] = methodEntry{solver: s, desc: desc}
	return nil
}

func mustRegister(name, desc string, s Solver) {
	if err := register(name, desc, s); err != nil {
		panic(err)
	}
}

// Lookup returns the solver registered under name.
func Lookup(name string) (Solver, bool) {
	registry.RLock()
	defer registry.RUnlock()
	e, ok := registry.m[name]
	return e.solver, ok
}

// Get returns the solver registered under name. It never returns nil:
// for an unregistered name it returns a solver whose Solve reports
// ErrUnknownMethod, so mwl.Get(name).Solve(ctx, p) is always safe.
func Get(name string) Solver {
	if s, ok := Lookup(name); ok {
		return s
	}
	return unknownSolver(name)
}

type unknownSolver string

func (u unknownSolver) Solve(context.Context, Problem) (Solution, error) {
	return Solution{}, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownMethod, string(u), Methods())
}

// Methods returns the registered method names, sorted.
func Methods() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Describe returns the registered one-line description of a method, or
// "" when the method is unknown or was registered without one.
func Describe(name string) string {
	registry.RLock()
	defer registry.RUnlock()
	return registry.m[name].desc
}
