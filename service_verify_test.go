// Tests for Service-level verification (-verify): corrupted-but-
// parseable store entries are detected and repaired instead of served,
// and a misbehaving solver cannot get an illegal solution past the
// Service.
package mwl_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	mwl "repro"
)

// tamperStoredArea bit-flips the reported area of a stored solution,
// keeping the entry perfectly parseable — the corruption the plain
// decode-tolerant store load cannot catch.
func tamperStoredArea(t *testing.T, dir, key string, delta int64) {
	t.Helper()
	path := filepath.Join(dir, key+".json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	area, ok := m["area"].(float64)
	if !ok {
		t.Fatalf("store entry has no area: %s", blob)
	}
	m["area"] = int64(area) + delta
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestServiceVerifyRepairsTamperedStore(t *testing.T) {
	dir := t.TempDir()
	fs, err := mwl.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 9, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Graph: g, Lambda: lmin + 2}
	key, err := p.Hash()
	if err != nil {
		t.Fatal(err)
	}

	orig, err := mwl.NewServiceWith(mwl.ServiceOptions{Store: fs}).Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	tamperStoredArea(t, dir, key, 7)

	// Without verification the lie is served verbatim: the store load is
	// decode-tolerant, not semantics-tolerant. This is the gap -verify
	// closes.
	blind, err := mwl.NewServiceWith(mwl.ServiceOptions{Store: fs}).Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if blind.Area != orig.Area+7 || !blind.Cached {
		t.Fatalf("control: tampered entry not served blindly (area %d, cached %v)", blind.Area, blind.Cached)
	}

	// With verification the tampered entry is demoted to a miss, the
	// problem recomputes, and the write-through repairs the file.
	vsvc := mwl.NewServiceWith(mwl.ServiceOptions{Store: fs, Verify: true})
	fixed, err := vsvc.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Cached {
		t.Fatal("tampered entry served as a cache hit despite -verify")
	}
	if fixed.Area != orig.Area {
		t.Fatalf("recomputed area %d, want %d", fixed.Area, orig.Area)
	}
	st := vsvc.CacheStats()
	if st.VerifyFailures != 1 {
		t.Fatalf("VerifyFailures = %d, want 1", st.VerifyFailures)
	}

	// A fresh verifying service now gets a clean store hit: the entry
	// was repaired, not just bypassed.
	again := mwl.NewServiceWith(mwl.ServiceOptions{Store: fs, Verify: true})
	re, err := again.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Cached || re.Area != orig.Area {
		t.Fatalf("repaired entry not served (area %d, cached %v)", re.Area, re.Cached)
	}
	if got := again.CacheStats().VerifyFailures; got != 0 {
		t.Fatalf("clean store hit counted %d verify failures", got)
	}
}

// illegalSolver answers every problem with an empty datapath: parseable,
// confidently wrong.
type illegalSolver struct{}

func (illegalSolver) Solve(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
	return mwl.Solution{Method: "test-illegal", Datapath: &mwl.Datapath{}, Area: 1}, nil
}

func init() {
	if err := mwl.Register("test-illegal", illegalSolver{}); err != nil {
		panic(err)
	}
}

func TestServiceVerifyRejectsIllegalSolver(t *testing.T) {
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 6, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Method: "test-illegal", Graph: g, Lambda: 40}

	// Without verification the illegal solution sails through.
	if _, err := mwl.NewServiceWith(mwl.ServiceOptions{}).Solve(context.Background(), p); err != nil {
		t.Fatalf("control: %v", err)
	}

	vsvc := mwl.NewServiceWith(mwl.ServiceOptions{Verify: true})
	_, err = vsvc.Solve(context.Background(), p)
	if !errors.Is(err, mwl.ErrVerify) {
		t.Fatalf("err = %v, want ErrVerify", err)
	}
	if n := vsvc.CacheSize(); n != 0 {
		t.Fatalf("illegal solution cached: size %d", n)
	}
	if st := vsvc.CacheStats(); st.VerifyFailures != 1 {
		t.Fatalf("VerifyFailures = %d, want 1", st.VerifyFailures)
	}
}

// TestServiceVerifyCleanPath: verification changes nothing for honest
// solvers — solutions cache normally and repeat solves hit the memo.
func TestServiceVerifyCleanPath(t *testing.T) {
	svc := mwl.NewServiceWith(mwl.ServiceOptions{Verify: true})
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 8, Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Graph: g, Lambda: lmin + 2}
	first, err := svc.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	second, err := svc.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || !second.Cached {
		t.Fatalf("cache behaviour changed under -verify: %v %v", first.Cached, second.Cached)
	}
	if st := svc.CacheStats(); st.VerifyFailures != 0 {
		t.Fatalf("VerifyFailures = %d for honest solves", st.VerifyFailures)
	}
}
