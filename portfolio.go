package mwl

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/portfolio"
)

// DefaultPortfolio is the method set the "portfolio" solver races when
// Options.Portfolio is empty: the fast heuristics plus the annealer,
// each attacking the problem with a different algorithm.
func DefaultPortfolio() []string {
	return []string{"anneal", "descend", "dpalloc", "twostage"}
}

// thePortfolio is the registered "portfolio" solver. It races its
// entrants through a private bounded Service — its own worker pool and
// memo, deliberately not shared with any outer Service, so a portfolio
// solve occupying an outer worker slot can never deadlock against its
// own sub-solves. The private memo is process-lived, so it is bounded
// tighter than a user-facing Service: entrant solutions (losers'
// datapaths included) are capped by entries and bytes.
var thePortfolio = &portfolioSolver{svc: NewServiceWith(ServiceOptions{
	CacheEntries: 1024,
	CacheBytes:   32 << 20,
})}

func init() {
	mustRegister("portfolio", "races a configurable subset of registered methods under one ctx; least-area feasible solution wins",
		thePortfolio)
}

// PortfolioWins reports how many races each method has won process-wide
// since start, the counter behind mwld's mwld_portfolio_wins_total
// metric. The map is a copy.
func PortfolioWins() map[string]uint64 {
	return thePortfolio.board.Snapshot()
}

// portfolioSolver races registered methods under one ctx via the
// Service's bounded batch runner and returns the feasible solution with
// the least area. With Options.TimeLimit set, the race is cut off at
// the deadline: losers are canceled and the best solution completed so
// far is returned, making the portfolio an anytime solver.
type portfolioSolver struct {
	svc   *Service
	board portfolio.Scoreboard
}

//mwlvet:allow ctxpoll -- loops here are O(len(methods)) setup; the race itself runs under rctx via SolveBatchVia below
func (ps *portfolioSolver) Solve(ctx context.Context, p Problem) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, err
	}
	if p.Graph == nil {
		return Solution{}, fmt.Errorf("%w: no graph", ErrInvalidProblem)
	}
	methods, err := portfolio.Normalize(p.Options.Portfolio, DefaultPortfolio(), "portfolio")
	if err != nil {
		return Solution{}, fmt.Errorf("%w: %w", ErrInvalidProblem, err)
	}
	for _, m := range methods {
		if _, ok := Lookup(m); !ok {
			return Solution{}, fmt.Errorf("%w: portfolio entrant %q (registered: %v)", ErrUnknownMethod, m, Methods())
		}
	}

	t0 := time.Now()
	rctx := ctx
	if p.Options.TimeLimit > 0 {
		// The batch runner returns only after every entrant goroutine
		// has drained, so the deadline's cancel also reaps the losers
		// before Solve returns.
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(ctx, p.Options.TimeLimit)
		defer cancel()
	}

	subs := make([]Problem, len(methods))
	for i, m := range methods {
		q := p
		q.Method = m
		// Entrants race the bare problem: the portfolio list is the
		// portfolio's own knob, and clearing it keeps each sub-problem's
		// canonical hash identical to a direct solve of that method.
		q.Options.Portfolio = nil
		subs[i] = q
	}
	outs := make([]portfolio.Outcome, len(methods))
	sols := make([]Solution, len(methods))
	ps.svc.SolveBatchVia(rctx, subs, nil, func(i int, r BatchResult) {
		outs[i] = portfolio.Outcome{Name: methods[i], Area: r.Solution.Area, Err: r.Err}
		sols[i] = r.Solution
	})

	win := portfolio.Pick(outs)
	if win < 0 {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		return Solution{}, portfolioFailure(outs)
	}
	ps.board.Win(methods[win])
	sol := sols[win]
	sol.Cached = false
	sol.Method = "portfolio"
	sol.Elapsed = time.Since(t0)
	sol.Stats.Winner = methods[win]
	return sol, nil
}

// portfolioFailure condenses an all-entrants-failed race into one error,
// preferring the most meaningful classification: a method that proved
// the problem infeasible beats a solver fault, which beats the race
// deadline expiring before anyone finished.
func portfolioFailure(outs []portfolio.Outcome) error {
	var infErr, faultErr, ctxErr error
	for _, o := range outs {
		switch {
		case o.Err == nil:
		case IsInfeasible(o.Err):
			if infErr == nil {
				infErr = o.Err
			}
		case errors.Is(o.Err, context.Canceled) || errors.Is(o.Err, context.DeadlineExceeded):
			if ctxErr == nil {
				ctxErr = o.Err
			}
		default:
			if faultErr == nil {
				faultErr = o.Err
			}
		}
	}
	switch {
	case infErr != nil:
		return infErr
	case faultErr != nil:
		return faultErr
	case ctxErr != nil:
		return fmt.Errorf("portfolio: no entrant finished before the race deadline: %w", ctxErr)
	default:
		return errors.New("portfolio: no entrants ran")
	}
}
