// Tests for the solution-store subsystem: the file-backed persistent
// store, the Service's bounded LRU (entry cap, byte cap, eviction
// order), and restart warmth — a new Service over the same store dir
// serves previous answers without re-running the solver.
package mwl_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	mwl "repro"
)

// solveProbe builds a small hashable problem that differs per lambda —
// handy for generating distinct cache keys cheaply.
func probeProblem(t *testing.T, method string, lambda int) mwl.Problem {
	t.Helper()
	return mwl.Problem{Method: method, Graph: mwl.Fig1Graph(), Lambda: lambda}
}

func TestFileStoreRoundTrip(t *testing.T) {
	fs, err := mwl.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := mwl.Solve(context.Background(), probeProblem(t, "dpalloc", 40))
	if err != nil {
		t.Fatal(err)
	}
	sol.Cached = true // must be stripped on Put
	if err := fs.Put("deadbeef", sol); err != nil {
		t.Fatal(err)
	}
	got, ok := fs.Get("deadbeef")
	if !ok {
		t.Fatal("stored solution not found")
	}
	if got.Cached {
		t.Fatal("Cached flag persisted")
	}
	sol.Cached = false
	if !reflect.DeepEqual(got, sol) {
		t.Fatalf("round trip changed the solution:\ngot  %+v\nwant %+v", got, sol)
	}
	if n, err := fs.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestFileStoreCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	fs, err := mwl.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"garbage":    []byte("{not json at all"),
		"wrongshape": []byte(`{"method": 12}`),
		"nodatapath": []byte(`{"method":"dpalloc","area":7}`),
		"empty":      nil,
	}
	for key, blob := range cases {
		if err := os.WriteFile(filepath.Join(dir, key+".json"), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := fs.Get(key); ok {
			t.Fatalf("corrupted entry %q served as a hit", key)
		}
	}
	// Unknown keys and invalid keys are plain misses too.
	if _, ok := fs.Get("absent"); ok {
		t.Fatal("absent key hit")
	}
	if _, ok := fs.Get("../escape"); ok {
		t.Fatal("invalid key hit")
	}
}

// persistCounter counts real solver runs for the restart test.
var persistCounter = func() *countingSolver {
	c := &countingSolver{}
	if err := mwl.Register("test-persist", c); err != nil {
		panic(err)
	}
	return c
}()

// TestServiceSurvivesRestart is the tentpole acceptance: a second
// Service (a "restarted process") over the same store directory serves
// a previously solved problem with Cached set, without re-running the
// solver — and a corrupted store entry degrades to recomputation.
func TestServiceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	p := probeProblem(t, "test-persist", 40)
	key, err := p.Hash()
	if err != nil {
		t.Fatal(err)
	}

	fs1, err := mwl.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := mwl.NewServiceWith(mwl.ServiceOptions{Workers: 2, Store: fs1})
	before := persistCounter.calls.Load()
	first, err := svc1.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first solve reported Cached")
	}
	if got := persistCounter.calls.Load() - before; got != 1 {
		t.Fatalf("solver ran %d times", got)
	}
	if n, err := fs1.Len(); err != nil || n != 1 {
		t.Fatalf("store holds %d entries after solve, %v", n, err)
	}

	// "Restart": fresh Service, fresh FileStore, same directory.
	fs2, err := mwl.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := mwl.NewServiceWith(mwl.ServiceOptions{Workers: 2, Store: fs2})
	warm, err := svc2.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("restarted service did not serve the stored solution as cached")
	}
	if got := persistCounter.calls.Load() - before; got != 1 {
		t.Fatalf("solver re-ran after restart (%d runs)", got)
	}
	warm.Cached = false
	if !reflect.DeepEqual(warm, first) {
		t.Fatalf("restart round trip changed the solution:\ngot  %+v\nwant %+v", warm, first)
	}
	st := svc2.CacheStats()
	if st.StoreHits != 1 {
		t.Fatalf("StoreHits = %d, want 1", st.StoreHits)
	}
	// The warm hit landed in svc2's own LRU: a third ask is a memory hit.
	again, err := svc2.Solve(context.Background(), p)
	if err != nil || !again.Cached {
		t.Fatalf("memory re-hit: cached=%v err=%v", again.Cached, err)
	}
	if got := svc2.CacheStats(); got.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", got.Hits)
	}

	// Corrupt the entry on disk: a third "restart" must recompute.
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs3, err := mwl.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc3 := mwl.NewServiceWith(mwl.ServiceOptions{Workers: 2, Store: fs3})
	recomputed, err := svc3.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if recomputed.Cached {
		t.Fatal("corrupted entry served as cached")
	}
	if got := persistCounter.calls.Load() - before; got != 2 {
		t.Fatalf("solver ran %d times total, want 2 (recompute after corruption)", got)
	}
	// The recompute repaired the entry on disk.
	blob, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(blob) {
		t.Fatal("store entry not repaired after corruption")
	}
}

// lruCounter counts solver runs for the eviction tests.
var lruCounter = func() *countingSolver {
	c := &countingSolver{}
	if err := mwl.Register("test-lru", c); err != nil {
		panic(err)
	}
	return c
}()

// TestServiceLRUEvictionOrder: with a 2-entry cap, the least recently
// used entry is the one evicted, and touching an entry refreshes it.
func TestServiceLRUEvictionOrder(t *testing.T) {
	svc := mwl.NewServiceWith(mwl.ServiceOptions{Workers: 2, CacheEntries: 2})
	ctx := context.Background()
	a := probeProblem(t, "test-lru", 40)
	b := probeProblem(t, "test-lru", 41)
	c := probeProblem(t, "test-lru", 42)

	before := lruCounter.calls.Load()
	for _, p := range []mwl.Problem{a, b} {
		if _, err := svc.Solve(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a: it becomes most recently used, so b is the eviction victim.
	if sol, err := svc.Solve(ctx, a); err != nil || !sol.Cached {
		t.Fatalf("a not cached: %v %v", sol.Cached, err)
	}
	if _, err := svc.Solve(ctx, c); err != nil {
		t.Fatal(err)
	}
	st := svc.CacheStats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("entries=%d evictions=%d, want 2/1", st.Entries, st.Evictions)
	}
	// a and c are warm; b was evicted and must re-run the solver.
	if sol, err := svc.Solve(ctx, a); err != nil || !sol.Cached {
		t.Fatalf("a evicted out of order: cached=%v err=%v", sol.Cached, err)
	}
	if sol, err := svc.Solve(ctx, c); err != nil || !sol.Cached {
		t.Fatalf("c not cached: cached=%v err=%v", sol.Cached, err)
	}
	runs := lruCounter.calls.Load() - before
	if runs != 3 {
		t.Fatalf("solver ran %d times before b, want 3", runs)
	}
	if sol, err := svc.Solve(ctx, b); err != nil || sol.Cached {
		t.Fatalf("b served cached after eviction: cached=%v err=%v", sol.Cached, err)
	}
	if got := lruCounter.calls.Load() - before; got != 4 {
		t.Fatalf("solver ran %d times total, want 4", got)
	}
	if st := svc.CacheStats(); st.Bytes <= 0 {
		t.Fatalf("Bytes = %d, want > 0", st.Bytes)
	}
}

// TestServiceByteCap: a byte cap far below one solution's footprint
// keeps memory bounded — every admission is immediately evicted, and
// the service keeps answering correctly.
func TestServiceByteCap(t *testing.T) {
	svc := mwl.NewServiceWith(mwl.ServiceOptions{Workers: 2, CacheBytes: 16})
	ctx := context.Background()
	for lambda := 40; lambda < 44; lambda++ {
		if _, err := svc.Solve(ctx, probeProblem(t, "test-lru", lambda)); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.CacheStats()
	if st.Entries != 0 {
		t.Fatalf("entries = %d under a 16-byte cap, want 0", st.Entries)
	}
	if st.Bytes != 0 {
		t.Fatalf("bytes = %d, want 0", st.Bytes)
	}
	if st.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4", st.Evictions)
	}
}

// TestServiceWorkloadLargerThanCap drives a workload past the entry cap
// and checks the acceptance property directly: memory stays bounded and
// evictions are observable.
func TestServiceWorkloadLargerThanCap(t *testing.T) {
	const cap = 4
	svc := mwl.NewServiceWith(mwl.ServiceOptions{Workers: 4, CacheEntries: cap})
	ctx := context.Background()
	var problems []mwl.Problem
	for lambda := 40; lambda < 52; lambda++ {
		problems = append(problems, probeProblem(t, "test-lru", lambda))
	}
	for _, r := range svc.SolveBatch(ctx, problems) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	st := svc.CacheStats()
	if st.Entries > cap {
		t.Fatalf("entries = %d exceeds cap %d", st.Entries, cap)
	}
	if st.Evictions < uint64(len(problems)-cap) {
		t.Fatalf("evictions = %d, want >= %d", st.Evictions, len(problems)-cap)
	}
	if svc.CacheSize() > cap {
		t.Fatalf("CacheSize = %d exceeds cap %d", svc.CacheSize(), cap)
	}
}

// gateSolver blocks in-flight until released, so tests can hold a solve
// open while churning the cache around it.
type gateSolver struct {
	entered chan struct{}
	release chan struct{}
	calls   countingSolver
}

func (g *gateSolver) Solve(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
	g.calls.calls.Add(1)
	select {
	case g.entered <- struct{}{}:
	default:
	}
	select {
	case <-g.release:
	case <-ctx.Done():
		return mwl.Solution{}, ctx.Err()
	}
	q := p
	q.Method = "dpalloc"
	return mwl.Solve(ctx, q)
}

// TestInFlightDedupSurvivesEviction: an in-flight solve is never
// evicted, so a duplicate arriving while the LRU thrashes still joins
// the running solve instead of starting a second one.
func TestInFlightDedupSurvivesEviction(t *testing.T) {
	gate := &gateSolver{entered: make(chan struct{}, 1), release: make(chan struct{})}
	if err := mwl.Register("test-gate", gate); err != nil {
		t.Fatal(err)
	}
	svc := mwl.NewServiceWith(mwl.ServiceOptions{Workers: 4, CacheEntries: 1})
	ctx := context.Background()
	slow := probeProblem(t, "test-gate", 40)

	leaderDone := make(chan error, 1)
	go func() {
		_, err := svc.Solve(ctx, slow)
		leaderDone <- err
	}()
	<-gate.entered // leader is mid-solve

	// Churn: distinct problems repeatedly overflow the 1-entry LRU.
	for lambda := 50; lambda < 56; lambda++ {
		if _, err := svc.Solve(ctx, probeProblem(t, "test-lru", lambda)); err != nil {
			t.Fatal(err)
		}
	}
	if st := svc.CacheStats(); st.Evictions == 0 {
		t.Fatal("churn caused no evictions")
	}

	// A duplicate of the in-flight problem must join it, not re-solve.
	dupDone := make(chan mwl.Solution, 1)
	go func() {
		sol, err := svc.Solve(ctx, slow)
		if err != nil {
			t.Error(err)
		}
		dupDone <- sol
	}()
	close(gate.release)
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	sol := <-dupDone
	if !sol.Cached {
		t.Fatal("duplicate did not report Cached")
	}
	if got := gate.calls.calls.Load(); got != 1 {
		t.Fatalf("gated solver ran %d times, want 1", got)
	}
}

// measureSolutionBytes solves p in a throwaway service and reports the
// cache footprint its solution is charged at.
func measureSolutionBytes(t *testing.T, p mwl.Problem) int64 {
	t.Helper()
	svc := mwl.NewServiceWith(mwl.ServiceOptions{Workers: 1})
	if _, err := svc.Solve(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	return svc.CacheStats().Bytes
}

// TestOversizedSolutionDoesNotFlushCache: one solution bigger than the
// whole byte cap must be rejected outright, not admitted at the hot end
// where it would evict every warm entry on its way out.
func TestOversizedSolutionDoesNotFlushCache(t *testing.T) {
	smallA := probeProblem(t, "dpalloc", 40)
	smallB := probeProblem(t, "dpalloc", 41)
	bigG, err := mwl.GenerateRandom(mwl.RandomConfig{N: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := mwl.MinLambda(bigG, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	big := mwl.Problem{Method: "dpalloc", Graph: bigG, Lambda: lmin + 2}

	smallBytes := measureSolutionBytes(t, smallA)
	bigBytes := measureSolutionBytes(t, big)
	if bigBytes <= 2*smallBytes {
		t.Fatalf("test setup: big solution (%d B) not larger than two small ones (%d B each)", bigBytes, smallBytes)
	}
	svc := mwl.NewServiceWith(mwl.ServiceOptions{Workers: 2, CacheBytes: bigBytes - 1})
	ctx := context.Background()
	for _, p := range []mwl.Problem{smallA, smallB} {
		if _, err := svc.Solve(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Solve(ctx, big); err != nil {
		t.Fatal(err)
	}
	st := svc.CacheStats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d after oversized insert, want 2 warm survivors", st.Entries)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (the oversized rejection)", st.Evictions)
	}
	// Both small problems are still warm.
	for _, p := range []mwl.Problem{smallA, smallB} {
		if sol, err := svc.Solve(ctx, p); err != nil || !sol.Cached {
			t.Fatalf("warm entry flushed by oversized insert: cached=%v err=%v", sol.Cached, err)
		}
	}
}

// TestMetricsFoldUnknownMethods: a stream of distinct bogus method
// names must collapse into one "unknown" metrics label, not grow the
// per-method map without bound.
func TestMetricsFoldUnknownMethods(t *testing.T) {
	svc := mwl.NewServiceWith(mwl.ServiceOptions{Workers: 1})
	g := mwl.Fig1Graph()
	for _, m := range []string{"bogus-a", "bogus-b", "bogus-c"} {
		if _, err := svc.Solve(context.Background(), mwl.Problem{Method: m, Graph: g, Lambda: 40}); err == nil {
			t.Fatalf("method %q solved", m)
		}
	}
	mm := svc.Metrics()
	var unknown *mwl.MethodMetrics
	for i := range mm.Methods {
		if mm.Methods[i].Method == "unknown" {
			unknown = &mm.Methods[i]
		} else if len(mm.Methods[i].Method) >= 5 && mm.Methods[i].Method[:5] == "bogus" {
			t.Fatalf("bogus method %q leaked into metrics", mm.Methods[i].Method)
		}
	}
	if unknown == nil || unknown.Solves != 3 || unknown.Errors != 3 {
		t.Fatalf("unknown label = %+v, want 3 solves / 3 errors", unknown)
	}
}
