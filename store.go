package mwl

import (
	"container/list"
	"encoding/json"
	"fmt"

	"repro/internal/store"
)

// Store is a persistent solution store layered under the Service's
// in-memory cache: solved problems are written through to it keyed by
// canonical problem hash, and cache misses consult it before running
// the solver, so a restarted process serves previously solved problems
// with Solution.Cached set instead of recomputing them.
//
// Implementations must be safe for concurrent use. Get treats every
// failure mode — missing, unreadable, corrupted — as a miss, so a
// damaged store degrades to recomputation, never to an outage.
type Store interface {
	// Get returns the stored solution for a problem hash, or ok=false
	// if the key is absent or the entry cannot be decoded.
	Get(key string) (Solution, bool)
	// Put persists a solution under a problem hash, replacing any
	// previous entry atomically.
	Put(key string, sol Solution) error
}

// FileStore is the file-backed Store: one JSON file per problem hash in
// a single directory, written atomically (temp file + rename) so a
// crash never leaves a torn entry. It implements Store and is safe for
// concurrent use.
type FileStore struct {
	d *store.Dir
}

// NewFileStore opens (creating if needed) a file-backed solution store
// rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	d, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return &FileStore{d: d}, nil
}

// Get loads the solution stored under key. A missing, unreadable or
// corrupted entry is a miss: the caller recomputes and the next Put
// repairs the entry.
func (fs *FileStore) Get(key string) (Solution, bool) {
	blob, ok, err := fs.d.Get(key)
	if err != nil || !ok {
		return Solution{}, false
	}
	var sol Solution
	if err := json.Unmarshal(blob, &sol); err != nil {
		return Solution{}, false
	}
	if sol.Datapath == nil {
		// Decoded but nonsensical (e.g. valid JSON of the wrong shape):
		// treat as corruption, not as a servable answer.
		return Solution{}, false
	}
	return sol, true
}

// Put persists the solution under key. The Cached flag is cleared so a
// stored entry re-served later reports its own cache status, not the
// status it had when stored.
func (fs *FileStore) Put(key string, sol Solution) error {
	sol.Cached = false
	blob, err := json.Marshal(sol)
	if err != nil {
		return fmt.Errorf("mwl: encoding solution for store: %w", err)
	}
	return fs.d.Put(key, blob)
}

// Len reports how many solutions the store holds on disk.
func (fs *FileStore) Len() (int, error) { return fs.d.Len() }

// Dir reports the directory the store is rooted at.
func (fs *FileStore) Dir() string { return fs.d.Path() }

// ---- bounded LRU over completed solutions ----

// lruEntry is one cached solution with its approximate memory footprint.
type lruEntry struct {
	key  string
	sol  Solution
	size int64
}

// lruCache is a bounded least-recently-used map from problem hash to
// Solution with an entry cap and an approximate byte cap. It is not
// safe for concurrent use — the Service guards it with its own mutex.
type lruCache struct {
	maxEntries int   // <= 0: unlimited
	maxBytes   int64 // <= 0: unlimited

	ll    *list.List // front = most recently used; values are *lruEntry
	index map[string]*list.Element
	bytes int64

	evictions uint64
}

func newLRUCache(maxEntries int, maxBytes int64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		index:      make(map[string]*list.Element),
	}
}

// get returns the cached solution and marks it most recently used.
func (c *lruCache) get(key string) (Solution, bool) {
	el, ok := c.index[key]
	if !ok {
		return Solution{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).sol, true
}

// peek returns the cached solution without refreshing its recency: a
// replication fetch from a peer replica is not local workload evidence
// and must not keep an otherwise-cold entry pinned in the LRU.
func (c *lruCache) peek(key string) (Solution, bool) {
	el, ok := c.index[key]
	if !ok {
		return Solution{}, false
	}
	return el.Value.(*lruEntry).sol, true
}

// add inserts (or refreshes) a solution of the given approximate size
// and evicts from the cold end until both caps hold again. A solution
// alone larger than the whole byte cap is rejected up front (counted as
// one eviction) — admitting it would flush every warm entry before the
// newcomer itself went, and the persistent store still has it.
func (c *lruCache) add(key string, sol Solution, size int64) {
	if c.maxBytes > 0 && size > c.maxBytes {
		if el, ok := c.index[key]; ok {
			c.ll.Remove(el)
			delete(c.index, key)
			c.bytes -= el.Value.(*lruEntry).size
		}
		c.evictions++
		return
	}
	if el, ok := c.index[key]; ok {
		e := el.Value.(*lruEntry)
		c.bytes += size - e.size
		e.sol, e.size = sol, size
		c.ll.MoveToFront(el)
	} else {
		c.index[key] = c.ll.PushFront(&lruEntry{key: key, sol: sol, size: size})
		c.bytes += size
	}
	for c.over() {
		c.evictOldest()
	}
}

func (c *lruCache) over() bool {
	if c.ll.Len() == 0 {
		return false
	}
	return (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes)
}

func (c *lruCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= e.size
	c.evictions++
}

func (c *lruCache) len() int { return c.ll.Len() }

func (c *lruCache) clear() {
	c.ll.Init()
	c.index = make(map[string]*list.Element)
	c.bytes = 0
}

// approxSolutionSize estimates a cache entry's memory footprint as the
// length of its JSON encoding plus the key — cheap, deterministic, and
// close enough for an approximate byte cap.
func approxSolutionSize(key string, sol Solution) int64 {
	blob, err := json.Marshal(sol)
	if err != nil {
		// Unencodable solutions cannot occur from the built-in methods;
		// charge a conservative flat size rather than failing the cache.
		return 4096
	}
	return int64(len(blob) + len(key))
}

// CacheStats is a point-in-time snapshot of the Service's cache and
// persistent-store counters.
type CacheStats struct {
	// Entries and Bytes describe the in-memory LRU right now; Bytes is
	// the approximate footprint the byte cap is enforced against.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// InFlight counts solves currently running or waiting that later
	// duplicates can join; in-flight entries are never evicted.
	InFlight int `json:"in_flight"`
	// Hits counts solves served without running a solver: an LRU hit or
	// joining an in-flight duplicate. Misses counts leader solves.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts LRU entries dropped to enforce the caps.
	Evictions uint64 `json:"evictions"`
	// StoreHits/StoreMisses count persistent-store lookups by leaders;
	// StorePutErrors counts failed write-throughs (the solve still
	// succeeds — persistence is best-effort).
	StoreHits      uint64 `json:"store_hits"`
	StoreMisses    uint64 `json:"store_misses"`
	StorePutErrors uint64 `json:"store_put_errors"`
	// VerifyFailures counts solutions rejected by mwl.Verify on a
	// Service with verification enabled: corrupted store entries demoted
	// to misses plus fresh solves that failed validation.
	VerifyFailures uint64 `json:"verify_failures"`
}
