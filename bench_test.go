// Benchmarks regenerating the paper's evaluation, one per table/figure
// (see DESIGN.md §4), plus ablations of the design choices DESIGN.md §5
// calls out. Quality metrics (areas, penalties) are attached to the
// timing output via b.ReportMetric, so `go test -bench=. -benchmem`
// reproduces both the performance series (Fig. 5, Table 2) and the
// solution-quality series (Fig. 3, Fig. 4) at reduced scale.
// cmd/experiments runs the full sweeps.
package mwl_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	mwl "repro"
	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/expt"
	"repro/internal/ilp"
	"repro/internal/pipeline"
	"repro/internal/refine"
	"repro/internal/sched"
	"repro/internal/tgff"
	"repro/internal/twostage"
	"repro/internal/wcg"
)

const benchSeed = 2001

// BenchmarkFig3 regenerates one cell per relaxation of the Fig. 3 sweep
// at |O|=12, reporting the mean area penalty of the two-stage baseline
// over the heuristic.
func BenchmarkFig3(b *testing.B) {
	for _, relax := range []float64{0, 0.15, 0.30} {
		b.Run(fmt.Sprintf("relax=%.0f%%", relax*100), func(b *testing.B) {
			cfg := expt.Config{Graphs: 10, Seed: benchSeed}
			var last float64
			for i := 0; i < b.N; i++ {
				pts, err := expt.Fig3(context.Background(), cfg, []int{12}, []float64{relax})
				if err != nil {
					b.Fatal(err)
				}
				last = pts[0].MeanPenaltyPct
			}
			b.ReportMetric(last, "penalty-%")
		})
	}
}

// BenchmarkFig4 regenerates the Fig. 4 premium-over-optimum series for a
// few sizes at λ = λ_min.
func BenchmarkFig4(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			cfg := expt.Config{Graphs: 10, Seed: benchSeed}
			var last float64
			for i := 0; i < b.N; i++ {
				pts, err := expt.Fig4(context.Background(), cfg, []int{n}, 20_000_000)
				if err != nil {
					b.Fatal(err)
				}
				last = pts[0].MeanPremiumPct
			}
			b.ReportMetric(last, "premium-%")
		})
	}
}

// BenchmarkFig5Heuristic / BenchmarkFig5ILP time the two methods per
// graph across problem sizes at λ = λ_min: the paper's Fig. 5 series.
func BenchmarkFig5Heuristic(b *testing.B) {
	lib := mwl.DefaultLibrary()
	for _, n := range []int{2, 4, 6, 8, 10} {
		graphs, err := tgff.Batch(n, 10, benchSeed, tgff.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := graphs[i%len(graphs)]
				lmin, err := g.MinMakespan(lib)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := core.Allocate(g, lib, lmin, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig5ILP(b *testing.B) {
	lib := mwl.DefaultLibrary()
	for _, n := range []int{2, 4, 6, 8} {
		graphs, err := tgff.Batch(n, 10, benchSeed, tgff.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := graphs[i%len(graphs)]
				lmin, err := g.MinMakespan(lib)
				if err != nil {
					b.Fatal(err)
				}
				h, _, err := core.Allocate(g, lib, lmin, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ilp.Solve(g, lib, lmin, ilp.Options{
					TimeLimit: 20 * time.Second, Incumbent: h,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Heuristic / BenchmarkTable2ILP time 9-operation graphs
// as the latency constraint relaxes: the paper's Table 2. The heuristic
// series stays flat; the ILP series grows steeply (its variable count
// scales with λ).
func BenchmarkTable2Heuristic(b *testing.B) {
	lib := mwl.DefaultLibrary()
	graphs, err := tgff.Batch(9, 10, benchSeed, tgff.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for _, relax := range []float64{0, 0.05, 0.10, 0.15} {
		b.Run(fmt.Sprintf("lambda=%.2f", 1+relax), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := graphs[i%len(graphs)]
				lmin, err := g.MinMakespan(lib)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := core.Allocate(g, lib, expt.Lambda(lmin, relax), core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable2ILP(b *testing.B) {
	lib := mwl.DefaultLibrary()
	graphs, err := tgff.Batch(9, 4, benchSeed, tgff.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for _, relax := range []float64{0, 0.05, 0.10, 0.15} {
		b.Run(fmt.Sprintf("lambda=%.2f", 1+relax), func(b *testing.B) {
			capped := 0
			for i := 0; i < b.N; i++ {
				g := graphs[i%len(graphs)]
				lmin, err := g.MinMakespan(lib)
				if err != nil {
					b.Fatal(err)
				}
				lambda := expt.Lambda(lmin, relax)
				h, _, err := core.Allocate(g, lib, lambda, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				r, err := ilp.Solve(g, lib, lambda, ilp.Options{
					TimeLimit: 10 * time.Second, Incumbent: h,
				})
				if err != nil {
					b.Fatal(err)
				}
				if r.TimedOut {
					capped++
				}
			}
			b.ReportMetric(float64(capped), "capped")
		})
	}
}

// ---- ablations ----

// benchGraphs is the shared ablation workload.
func benchGraphs(b *testing.B, n, count int) []*wcg.Graph {
	b.Helper()
	lib := mwl.DefaultLibrary()
	graphs, err := tgff.Batch(n, count, benchSeed, tgff.Config{})
	if err != nil {
		b.Fatal(err)
	}
	out := make([]*wcg.Graph, len(graphs))
	for i, g := range graphs {
		w, err := wcg.Build(g, lib)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = w
	}
	return out
}

// BenchmarkAblationGrowth isolates the clique-growth compensation step in
// BindSelect: mean bound area with and without it.
func BenchmarkAblationGrowth(b *testing.B) {
	ws := benchGraphs(b, 14, 20)
	for _, disable := range []bool{false, true} {
		name := "growth=on"
		if disable {
			name = "growth=off"
		}
		b.Run(name, func(b *testing.B) {
			var area int64
			for i := 0; i < b.N; i++ {
				area = 0
				for _, w := range ws {
					r, err := sched.List(w, nil)
					if err != nil {
						b.Fatal(err)
					}
					bd, err := bind.SelectOpt(w, r.Start, bind.Options{DisableGrowth: disable})
					if err != nil {
						b.Fatal(err)
					}
					area += bd.Area(w)
				}
			}
			b.ReportMetric(float64(area)/float64(len(ws)), "mean-area")
		})
	}
}

// BenchmarkAblationClosure isolates the kind join-closure: allocation
// area with the full closed kind set vs operations' own kinds only.
func BenchmarkAblationClosure(b *testing.B) {
	lib := mwl.DefaultLibrary()
	graphs, err := tgff.Batch(12, 15, benchSeed, tgff.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for _, disable := range []bool{false, true} {
		name := "closure=on"
		if disable {
			name = "closure=off"
		}
		b.Run(name, func(b *testing.B) {
			var area int64
			for i := 0; i < b.N; i++ {
				area = 0
				for _, g := range graphs {
					lmin, err := g.MinMakespan(lib)
					if err != nil {
						b.Fatal(err)
					}
					dp, _, err := core.Allocate(g, lib, expt.Lambda(lmin, 0.2),
						core.Options{DisableClosure: disable})
					if err != nil {
						b.Fatal(err)
					}
					area += dp.Area(lib)
				}
			}
			b.ReportMetric(float64(area)/float64(len(graphs)), "mean-area")
		})
	}
}

// BenchmarkAblationVictim compares the paper's smallest-proportion
// refinement victim policy against naive first-reducible.
func BenchmarkAblationVictim(b *testing.B) {
	lib := mwl.DefaultLibrary()
	graphs, err := tgff.Batch(12, 15, benchSeed, tgff.Config{})
	if err != nil {
		b.Fatal(err)
	}
	policies := []struct {
		name string
		p    refine.Policy
	}{
		{"victim=paper", nil},
		{"victim=first", refine.FirstReducible},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			var area int64
			for i := 0; i < b.N; i++ {
				area = 0
				for _, g := range graphs {
					lmin, err := g.MinMakespan(lib)
					if err != nil {
						b.Fatal(err)
					}
					dp, _, err := core.Allocate(g, lib, expt.Lambda(lmin, 0.1),
						core.Options{Victim: pol.p})
					if err != nil {
						b.Fatal(err)
					}
					area += dp.Area(lib)
				}
			}
			b.ReportMetric(float64(area)/float64(len(graphs)), "mean-area")
		})
	}
}

// BenchmarkAblationEqn3 measures the scheduling constraint itself:
// how often a unit-resource schedule accepted by the classical Eqn. 2
// is actually unbindable, which Eqn. 3 catches up front.
func BenchmarkAblationEqn3(b *testing.B) {
	ws := benchGraphs(b, 10, 30)
	limits := sched.Limits{mwl.Mul: 1, mwl.Add: 1}
	fullyRefine := func(w *wcg.Graph) *wcg.Graph {
		// Fully refine to expose kind conflicts, as after many DPAlloc
		// iterations.
		c := w.Clone()
		for o := 0; o < c.D.N(); o++ {
			for c.Reducible(dfg.OpID(o)) {
				c.DeleteMaxLatencyEdges(dfg.OpID(o))
			}
		}
		return c
	}
	b.Run("eqn3", func(b *testing.B) {
		rejected := 0
		for i := 0; i < b.N; i++ {
			rejected = 0
			for _, w := range ws {
				if _, err := sched.List(fullyRefine(w), limits); err != nil {
					rejected++
				}
			}
		}
		b.ReportMetric(float64(rejected), "rejected")
	})
	b.Run("eqn2", func(b *testing.B) {
		rejected := 0
		for i := 0; i < b.N; i++ {
			rejected = 0
			for _, w := range ws {
				if _, err := sched.ListEqn2(fullyRefine(w), limits); err != nil {
					rejected++
				}
			}
		}
		b.ReportMetric(float64(rejected), "rejected")
	})
}

// BenchmarkAblationFullArea asks whether the heuristic's functional-unit
// area advantage over the two-stage baseline survives when register and
// interconnect area are added (internal/regalloc): resource sharing
// saves FU area but costs muxes. Reports mean FU-only and full-datapath
// penalties of the baseline over the heuristic.
func BenchmarkAblationFullArea(b *testing.B) {
	lib := mwl.DefaultLibrary()
	graphs, err := tgff.Batch(14, 15, benchSeed, tgff.Config{})
	if err != nil {
		b.Fatal(err)
	}
	var fuPenalty, fullPenalty float64
	for i := 0; i < b.N; i++ {
		fuPenalty, fullPenalty = 0, 0
		for _, g := range graphs {
			lmin, err := g.MinMakespan(lib)
			if err != nil {
				b.Fatal(err)
			}
			lambda := expt.Lambda(lmin, 0.2)
			h, _, err := core.Allocate(g, lib, lambda, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			ts, _, err := twostage.Allocate(g, lib, lambda)
			if err != nil {
				b.Fatal(err)
			}
			hp, err := mwl.AllocateRegisters(g, lib, h, mwl.RegisterOptions{})
			if err != nil {
				b.Fatal(err)
			}
			tp, err := mwl.AllocateRegisters(g, lib, ts, mwl.RegisterOptions{})
			if err != nil {
				b.Fatal(err)
			}
			fuPenalty += 100 * (float64(ts.Area(lib)) - float64(h.Area(lib))) / float64(h.Area(lib))
			fullPenalty += 100 * (float64(tp.TotalArea()) - float64(hp.TotalArea())) / float64(hp.TotalArea())
		}
		fuPenalty /= float64(len(graphs))
		fullPenalty /= float64(len(graphs))
	}
	b.ReportMetric(fuPenalty, "fu-penalty-%")
	b.ReportMetric(fullPenalty, "full-penalty-%")
}

// BenchmarkPipelineII traces the pipelined throughput/area trade-off
// (extension; internal/pipeline): mean datapath area across initiation
// intervals from fully overlapped to sequential on a fixed workload.
func BenchmarkPipelineII(b *testing.B) {
	lib := mwl.DefaultLibrary()
	graphs, err := tgff.Batch(12, 10, benchSeed, tgff.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range []float64{1.0, 1.5, 2.5} {
		b.Run(fmt.Sprintf("II=%.1fxMin", f), func(b *testing.B) {
			var area int64
			for i := 0; i < b.N; i++ {
				area = 0
				for _, g := range graphs {
					lmin, err := g.MinMakespan(lib)
					if err != nil {
						b.Fatal(err)
					}
					ii := int(float64(mwl.MinII(g, lib)) * f)
					dp, _, err := pipeline.Allocate(g, lib, expt.Lambda(lmin, 0.5), ii, pipeline.Options{})
					if err != nil {
						b.Fatal(err)
					}
					area += dp.Area(lib)
				}
			}
			b.ReportMetric(float64(area)/float64(len(graphs)), "mean-area")
		})
	}
}

// BenchmarkTwoStage times the baseline's optimal branch-and-bound
// binding, the dominant cost at the top of the Fig. 3 size range.
func BenchmarkTwoStage(b *testing.B) {
	lib := mwl.DefaultLibrary()
	for _, n := range []int{8, 16, 24} {
		graphs, err := tgff.Batch(n, 5, benchSeed, tgff.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := graphs[i%len(graphs)]
				lmin, err := g.MinMakespan(lib)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := twostage.Allocate(g, lib, expt.Lambda(lmin, 0.3)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllocateScaling shows the heuristic's polynomial scaling well
// beyond the paper's 24-operation range.
func BenchmarkAllocateScaling(b *testing.B) {
	lib := mwl.DefaultLibrary()
	for _, n := range []int{10, 25, 50, 100, 500, 1000} {
		graphs, err := tgff.Batch(n, 3, benchSeed, tgff.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := graphs[i%len(graphs)]
				lmin, err := g.MinMakespan(lib)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := core.Allocate(g, lib, expt.Lambda(lmin, 0.2), core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnneal times the simulated-annealing backend across problem
// sizes at a relaxed λ, reporting the achieved area next to DPAlloc's
// on the same graphs so the quality/runtime trade-off is visible in
// BENCH.json.
func BenchmarkAnneal(b *testing.B) {
	lib := mwl.DefaultLibrary()
	for _, n := range []int{8, 12, 16} {
		graphs, err := tgff.Batch(n, 10, benchSeed, tgff.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var annArea, heurArea int64
			for i := 0; i < b.N; i++ {
				annArea, heurArea = 0, 0
				for gi, g := range graphs {
					lmin, err := g.MinMakespan(lib)
					if err != nil {
						b.Fatal(err)
					}
					lambda := lmin + lmin/5
					sol, err := mwl.Solve(context.Background(), mwl.Problem{
						Method: "anneal", Graph: g, Lambda: lambda,
						Options: mwl.SolveOptions{Seed: int64(gi), AnnealMoves: 4000},
					})
					if err != nil {
						b.Fatal(err)
					}
					annArea += sol.Area
					h, _, err := core.Allocate(g, lib, lambda, core.Options{})
					if err != nil {
						b.Fatal(err)
					}
					heurArea += h.Area(lib)
				}
			}
			b.ReportMetric(float64(annArea)/float64(len(graphs)), "anneal-mean-area")
			b.ReportMetric(float64(heurArea)/float64(len(graphs)), "dpalloc-mean-area")
		})
	}
}

// BenchmarkPortfolio times the portfolio race over the default heuristic
// entrants, reporting the winning area.
func BenchmarkPortfolio(b *testing.B) {
	lib := mwl.DefaultLibrary()
	graphs, err := tgff.Batch(12, 10, benchSeed, tgff.Config{})
	if err != nil {
		b.Fatal(err)
	}
	var winArea int64
	for i := 0; i < b.N; i++ {
		winArea = 0
		for gi, g := range graphs {
			lmin, err := g.MinMakespan(lib)
			if err != nil {
				b.Fatal(err)
			}
			sol, err := mwl.Solve(context.Background(), mwl.Problem{
				Method: "portfolio", Graph: g, Lambda: lmin + lmin/5,
				Options: mwl.SolveOptions{Seed: int64(gi), AnnealMoves: 2000},
			})
			if err != nil {
				b.Fatal(err)
			}
			winArea += sol.Area
		}
	}
	b.ReportMetric(float64(winArea)/float64(len(graphs)), "portfolio-mean-area")
}
