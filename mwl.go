// Package mwl is a library for high-level synthesis datapath allocation
// of multiple-wordlength systems: a from-scratch reproduction of
//
//	G. A. Constantinides, P. Y. K. Cheung, W. Luk,
//	"Heuristic Datapath Allocation for Multiple Wordlength Systems",
//	Proc. Design, Automation and Test in Europe (DATE), 2001.
//
// The primary entry point is Solve: every allocation method — the
// paper's Algorithm DPAlloc heuristic and its five evaluation
// companions — implements the Solver interface behind a method
// registry, taking a serializable Problem (graph + cost model + latency
// constraint λ + method + options) to a Solution (datapath + area
// breakdown + statistics + timing) under a context.Context that cancels
// long solves promptly. The registered methods are "dpalloc" (the
// paper's heuristic, the default), "twostage" (the FPL 2000 two-stage
// baseline), "descend" (descending-wordlength clique partitioning),
// "optimal" (exhaustive optimum, small graphs), "ilp" (the Electronics
// Letters ILP formulation on the built-in simplex/branch-and-bound MILP
// solver) and "pipelined" (DPAlloc under an initiation interval).
// Problems and Solutions marshal to a canonical JSON wire schema, and
// Service runs batches through a worker pool with per-problem
// memoization — cmd/mwld serves the same schema over HTTP, standalone
// or as a hash-sharded replica cluster.
//
// A minimal session:
//
//	g := mwl.NewGraph()
//	x := g.AddOp("x", mwl.Mul, mwl.MulSig(12, 8))
//	y := g.AddOp("y", mwl.Add, mwl.AddSig(16))
//	_ = g.AddDep(x, y)
//	lib := mwl.DefaultLibrary()
//	lmin, _ := mwl.MinLambda(g, lib)
//	sol, err := mwl.Solve(ctx, mwl.Problem{Graph: g, Lambda: lmin + 2})
//	if err != nil { ... }
//	fmt.Println(sol.Datapath.Render(g, lib))
//
// The pre-registry entry points (Allocate, AllocateTwoStage,
// AllocateDescending, AllocateOptimal, SolveILP, AllocatePipelined)
// were deprecated when Solve landed and have been removed after their
// release of overlap; every method is reached through Solve.
package mwl

import (
	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/errspec"
	"repro/internal/exact"
	"repro/internal/ilp"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/regalloc"
	"repro/internal/rtl"
	"repro/internal/tgff"
	"repro/internal/workloads"
)

// Core graph and model types.
type (
	// Graph is a sequencing graph P(O, S): operations plus data
	// dependencies.
	Graph = dfg.Graph
	// OpID identifies an operation within a Graph.
	OpID = dfg.OpID
	// OpType is the functional class of an operation (Add, Sub, Mul).
	OpType = model.OpType
	// Signature is a canonical operand-wordlength signature.
	Signature = model.Signature
	// Kind is a concrete resource-wordlength type, e.g. "16x12-bit
	// multiplier".
	Kind = model.Kind
	// Library is the pluggable latency/area cost model.
	Library = model.Library
	// Datapath is a scheduled, bound, wordlength-selected solution.
	Datapath = datapath.Datapath
	// Instance is one allocated resource of a Datapath.
	Instance = datapath.Instance
	// RandomConfig parameterises random sequencing-graph generation.
	RandomConfig = tgff.Config
)

// Operation types.
const (
	Add = model.Add
	Sub = model.Sub
	Mul = model.Mul
)

// NewGraph returns an empty sequencing graph.
func NewGraph() *Graph { return dfg.New() }

// MulSig builds the canonical signature of an a×b-bit multiplication.
func MulSig(a, b int) Signature { return model.Sig(a, b) }

// AddSig builds the signature of a w-bit addition or subtraction.
func AddSig(w int) Signature { return model.AddSig(w) }

// DefaultLibrary returns the paper's cost model: 2-cycle adders of area
// w, and ⌈(n+m)/8⌉-cycle n×m multipliers (the SONIC empirical formula)
// of area n·m.
func DefaultLibrary() *Library { return model.Default() }

// MinLambda returns λ_min: the smallest latency constraint any allocator
// can meet for the graph (critical path at minimum latencies).
func MinLambda(g *Graph, lib *Library) (int, error) { return core.MinLambda(g, lib) }

// MaxOptimalOps is the largest graph the "optimal" exhaustive method
// accepts.
const MaxOptimalOps = exact.MaxOps

// GenerateRandom builds a pseudo-random sequencing graph in the style of
// TGFF (reference [8]); deterministic per seed.
func GenerateRandom(cfg RandomConfig) (*Graph, error) { return tgff.Generate(cfg) }

// Workload constructors (see the examples).
var (
	// Fig1Graph reconstructs the paper's Fig. 1 motivational graph.
	Fig1Graph = workloads.Fig1
	// FIRGraph builds a direct-form FIR filter with per-coefficient
	// wordlengths.
	FIRGraph = workloads.FIR
	// BiquadCascadeGraph builds a cascade of IIR biquad sections.
	BiquadCascadeGraph = workloads.BiquadCascade
	// HornerGraph builds Horner polynomial evaluation.
	HornerGraph = workloads.Horner
)

// DefaultILPTimeLimit mirrors the paper's 30-minute cap on lp_solve runs
// (Table 2's ">30:00.00" entries); it is the budget applied when an ILP
// solve specifies no time limit of its own.
const DefaultILPTimeLimit = ilp.DefaultTimeLimit

// Register and interconnect allocation (the RTL completion layer).
type (
	// RegisterPlan extends a datapath with left-edge register binding
	// and mux counting; TotalArea adds storage and steering to the
	// paper's functional-unit area.
	RegisterPlan = regalloc.Plan
	// RegisterOptions sets register/mux unit area costs.
	RegisterOptions = regalloc.Options
)

// AllocateRegisters completes a datapath to the register-transfer level:
// value lifetimes, left-edge register binding, and interconnect (mux)
// estimation.
func AllocateRegisters(g *Graph, lib *Library, dp *Datapath, opt RegisterOptions) (*RegisterPlan, error) {
	return regalloc.Build(g, lib, dp, opt)
}

// GenerateVerilog renders a synthesisable Verilog-2001 module
// implementing the datapath (see internal/rtl for the port contract).
func GenerateVerilog(moduleName string, g *Graph, lib *Library, dp *Datapath) (string, error) {
	return rtl.Generate(moduleName, g, lib, dp)
}

// AnalyzeVerilog parses Verilog source (the subset GenerateVerilog
// emits) into a netlist IR and runs the static-analysis suite over it:
// combinational-loop detection, driver discipline, dead-logic
// reachability, and width/truncation interval dataflow. When g is
// non-nil the module's ports and result registers are additionally
// checked against the wordlength formats g's operation specs require.
// Findings are returned as "file:line: [analyzer] message" strings,
// empty for a clean module; err is non-nil only when the source does
// not parse.
func AnalyzeVerilog(src string, g *Graph) ([]string, error) {
	diags, err := rtl.Analyze(src, rtl.AnalyzeOptions{Graph: g})
	if err != nil {
		return nil, err
	}
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out, nil
}

// ProveVerilog runs AnalyzeVerilog's suite plus the "equiv" analyzer: a
// symbolic proof, by cycle-accurate unrolling across the schedule's
// makespan, that every result register and output port of the module
// carries exactly the fixed-point value the dataflow graph defines for
// it. An empty result is a functional-correctness certificate for the
// module under the binding and schedule (within the prover's canonical
// form — expressions are normalised modulo commutativity and
// truncation congruence, so an inequivalence it cannot refute is
// reported as "cannot prove" rather than silently passed). lib may be
// nil for DefaultLibrary.
func ProveVerilog(src string, g *Graph, lib *Library, dp *Datapath) ([]string, error) {
	if lib == nil {
		lib = DefaultLibrary()
	}
	diags, err := rtl.Analyze(src, rtl.AnalyzeOptions{Graph: g, Lib: lib, Datapath: dp})
	if err != nil {
		return nil, err
	}
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out, nil
}

// Wordlength derivation from an output-error specification — the paper's
// stated future work, in the spirit of the authors' Synoptix tool.
type (
	// ErrorSpecConfig sets the error budget and sampling parameters.
	ErrorSpecConfig = errspec.Config
	// ErrorSpecResult reports the trimmed graph and accepted reductions.
	ErrorSpecResult = errspec.Result
)

// DeriveWordlengths trims per-operation wordlengths until no further
// one-bit reduction keeps the measured output distortion within the
// budget; the resulting graph feeds Allocate.
func DeriveWordlengths(g *Graph, lib *Library, cfg ErrorSpecConfig) (*ErrorSpecResult, error) {
	return errspec.Optimize(g, lib, cfg)
}

// Functionally pipelined allocation (extension; see internal/pipeline).

// VerifyPipelined checks a datapath's legality under an initiation
// interval in addition to single-iteration legality.
func VerifyPipelined(g *Graph, lib *Library, dp *Datapath, lambda, ii int) error {
	return pipeline.Verify(g, lib, dp, lambda, ii)
}

// MinII returns the per-operation lower bound on the initiation
// interval: the largest minimum latency of any operation.
func MinII(g *Graph, lib *Library) int { return pipeline.MinII(g, lib) }
