// Differential/property tests: mwl.Verify is the shared oracle proving
// that every registered method returns a legal, honestly-reported
// datapath on a corpus of seeded random TGFF-style graphs, that no
// method beats the proven optimum, and that the portfolio never returns
// a solution worse than the best of its raced methods. Failures print
// the offending problem's canonical JSON so a case replays with a
// two-line test.
package mwl_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	mwl "repro"
)

// problemJSON renders the canonical wire form of a problem for replay.
func problemJSON(t *testing.T, p mwl.Problem) string {
	t.Helper()
	blob, err := json.Marshal(p)
	if err != nil {
		return "<unencodable: " + err.Error() + ">"
	}
	return string(blob)
}

// TestDifferentialAllMethods is the cross-method oracle run: ~300 seeded
// random graphs, every registered production method solved and verified,
// areas sanity-ordered against the exhaustive optimum where it is
// tractable, and the portfolio compared against its entrants.
func TestDifferentialAllMethods(t *testing.T) {
	graphs := 300
	if testing.Short() {
		graphs = 60
	}
	ctx := context.Background()

	// Heuristic entrants raced by the portfolio; anneal rides a fixed
	// seed and a small move budget so the whole corpus stays fast and
	// the direct solve reproduces the portfolio's entrant bit for bit.
	entrants := []string{"anneal", "descend", "dpalloc", "twostage"}

	for i := 0; i < graphs; i++ {
		n := 3 + i%8 // sizes 3..10
		g, err := mwl.GenerateRandom(mwl.RandomConfig{N: n, Seed: int64(9000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
		if err != nil {
			t.Fatal(err)
		}
		lambda := lmin + (i%4)*lmin/10 // relaxations 0–30%
		base := mwl.Problem{Graph: g, Lambda: lambda, Options: mwl.SolveOptions{
			Seed:        int64(i),
			AnnealMoves: 1200,
		}}

		areas := make(map[string]int64, len(entrants))
		for _, m := range entrants {
			p := base
			p.Method = m
			sol, err := mwl.Solve(ctx, p)
			if err != nil {
				t.Fatalf("graph %d: %s failed: %v\nproblem: %s", i, m, err, problemJSON(t, p))
			}
			if err := mwl.Verify(p, sol); err != nil {
				t.Fatalf("graph %d: %s solution failed verification: %v\nproblem: %s", i, m, err, problemJSON(t, p))
			}
			areas[m] = sol.Area

			// Every datapath the suite accepts must also emit Verilog the
			// netlist static analyzer proves clean — including the iface
			// pass against the graph's wordlength formats.
			src, err := mwl.GenerateVerilog("dp", g, mwl.DefaultLibrary(), sol.Datapath)
			if err != nil {
				t.Fatalf("graph %d: %s: generate: %v\nproblem: %s", i, m, err, problemJSON(t, p))
			}
			findings, err := mwl.AnalyzeVerilog(src, g)
			if err != nil {
				t.Fatalf("graph %d: %s: emitted Verilog does not parse: %v\nproblem: %s", i, m, err, problemJSON(t, p))
			}
			if len(findings) > 0 {
				t.Fatalf("graph %d: %s: analyzer findings on emitted Verilog:\n%s\nproblem: %s",
					i, m, strings.Join(findings, "\n"), problemJSON(t, p))
			}

			// A sampled slice additionally goes through the symbolic
			// equivalence prover: the module must be shown to compute the
			// graph, not just to be structurally clean.
			if i%10 == 0 {
				proofs, err := mwl.ProveVerilog(src, g, mwl.DefaultLibrary(), sol.Datapath)
				if err != nil {
					t.Fatalf("graph %d: %s: prove: %v\nproblem: %s", i, m, err, problemJSON(t, p))
				}
				if len(proofs) > 0 {
					t.Fatalf("graph %d: %s: equivalence proof failed:\n%s\nproblem: %s",
						i, m, strings.Join(proofs, "\n"), problemJSON(t, p))
				}
			}
		}

		// The portfolio races the same entrants under the same options
		// and must return the best of them.
		pp := base
		pp.Method = "portfolio"
		pp.Options.Portfolio = entrants
		psol, err := mwl.Solve(ctx, pp)
		if err != nil {
			t.Fatalf("graph %d: portfolio failed: %v\nproblem: %s", i, err, problemJSON(t, pp))
		}
		if err := mwl.Verify(pp, psol); err != nil {
			t.Fatalf("graph %d: portfolio solution failed verification: %v\nproblem: %s", i, err, problemJSON(t, pp))
		}
		bestEntrant := areas[entrants[0]]
		for _, a := range areas {
			if a < bestEntrant {
				bestEntrant = a
			}
		}
		if psol.Area > bestEntrant {
			t.Fatalf("graph %d: portfolio area %d worse than best entrant %d (%v)\nproblem: %s",
				i, psol.Area, bestEntrant, areas, problemJSON(t, pp))
		}
		if areas[psol.Stats.Winner] != psol.Area {
			t.Fatalf("graph %d: portfolio winner %q reported area %d, direct solve got %d\nproblem: %s",
				i, psol.Stats.Winner, psol.Area, areas[psol.Stats.Winner], problemJSON(t, pp))
		}

		// Exhaustive optimum where tractable: every method's area bounds
		// from above.
		if n <= 6 {
			po := base
			po.Method = "optimal"
			osol, err := mwl.Solve(ctx, po)
			if err != nil {
				t.Fatalf("graph %d: optimal failed: %v\nproblem: %s", i, err, problemJSON(t, po))
			}
			if err := mwl.Verify(po, osol); err != nil {
				t.Fatalf("graph %d: optimal solution failed verification: %v\nproblem: %s", i, err, problemJSON(t, po))
			}
			for m, a := range areas {
				if a < osol.Area {
					t.Fatalf("graph %d: %s area %d beats the proven optimum %d\nproblem: %s",
						i, m, a, osol.Area, problemJSON(t, po))
				}
			}
		}

		// The ILP and pipelined methods are slower; sample them across
		// the corpus rather than running every graph.
		if n <= 5 && i%10 == 0 {
			pi := base
			pi.Method = "ilp"
			isol, err := mwl.Solve(ctx, pi)
			if err != nil {
				t.Fatalf("graph %d: ilp failed: %v\nproblem: %s", i, err, problemJSON(t, pi))
			}
			if err := mwl.Verify(pi, isol); err != nil {
				t.Fatalf("graph %d: ilp solution failed verification: %v\nproblem: %s", i, err, problemJSON(t, pi))
			}
		}
		if i%7 == 0 {
			pl := base
			pl.Method = "pipelined"
			pl.II = lambda
			lsol, err := mwl.Solve(ctx, pl)
			switch {
			case err == nil:
				if verr := mwl.Verify(pl, lsol); verr != nil {
					t.Fatalf("graph %d: pipelined solution failed verification: %v\nproblem: %s", i, verr, problemJSON(t, pl))
				}
			case mwl.IsInfeasible(err):
				// An II-infeasible sample is a legitimate verdict, not a
				// harness failure.
			default:
				t.Fatalf("graph %d: pipelined failed: %v\nproblem: %s", i, err, problemJSON(t, pl))
			}
		}
	}
}

// TestVerifyRejectsTamperedSolutions: the oracle must catch the failure
// modes the Service relies on it for.
func TestVerifyRejectsTamperedSolutions(t *testing.T) {
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Graph: g, Lambda: lmin + 2}
	sol, err := mwl.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := mwl.Verify(p, sol); err != nil {
		t.Fatalf("legal solution rejected: %v", err)
	}

	flipped := sol
	flipped.Area ^= 1 // the bit-flipped store entry
	if err := mwl.Verify(p, flipped); !errors.Is(err, mwl.ErrVerify) {
		t.Fatalf("bit-flipped area: err = %v, want ErrVerify", err)
	}

	var none mwl.Solution
	if err := mwl.Verify(p, none); !errors.Is(err, mwl.ErrVerify) {
		t.Fatalf("empty solution: err = %v, want ErrVerify", err)
	}

	tight := p
	tight.Lambda = lmin - 1
	if err := mwl.Verify(tight, sol); !errors.Is(err, mwl.ErrVerify) {
		t.Fatalf("λ violation: err = %v, want ErrVerify", err)
	}
	if err := mwl.Verify(mwl.Problem{Lambda: 1}, sol); err == nil || !strings.Contains(err.Error(), "no graph") {
		t.Fatalf("graphless problem: err = %v", err)
	}
}

// TestAnnealReproducibleThroughSolve: the registry-level contract — a
// fixed Options.Seed reproduces the anneal solution bit for bit, and
// the method appears in the registry.
func TestAnnealReproducibleThroughSolve(t *testing.T) {
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 10, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Method: "anneal", Graph: g, Lambda: lmin + 3,
		Options: mwl.SolveOptions{Seed: 99, AnnealMoves: 2500}}
	a, err := mwl.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mwl.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Datapath, b.Datapath) || a.Area != b.Area || a.Stats != b.Stats {
		t.Fatal("fixed seed did not reproduce the anneal solution")
	}
	if err := mwl.Verify(p, a); err != nil {
		t.Fatal(err)
	}

	for _, m := range []string{"anneal", "portfolio"} {
		found := false
		for _, name := range mwl.Methods() {
			if name == m {
				found = true
			}
		}
		if !found {
			t.Fatalf("%q not in registry: %v", m, mwl.Methods())
		}
	}
}
