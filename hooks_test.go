// Tests for the replication hooks on Service: the OnSolved callback,
// Peek/Admit (the cluster replication plane's local half), and the
// queue-depth gauge behind admission control.
package mwl_test

import (
	"context"
	"sync"
	"testing"

	mwl "repro"
)

// TestOnSolvedFiresOncePerFreshSolve: the hook sees every leader solve
// exactly once — cache hits, in-flight joins and store hits stay
// invisible, so replication traffic scales with fresh work, not with
// request volume.
func TestOnSolvedFiresOncePerFreshSolve(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	svc := mwl.NewServiceWith(mwl.ServiceOptions{
		Workers: 2,
		OnSolved: func(key string, sol mwl.Solution) {
			mu.Lock()
			keys = append(keys, key)
			mu.Unlock()
		},
	})
	p := mwl.Problem{Graph: mwl.Fig1Graph(), Lambda: 40}
	key, err := p.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Solve(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Solve(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("OnSolved fired with %v, want exactly [%s]", keys, key)
	}
}

// TestAdmitAndPeek: an admitted solution is visible to Peek and serves
// the next Solve as a cache hit without running a solver — the receiving
// half of cluster replication.
func TestAdmitAndPeek(t *testing.T) {
	src := mwl.NewService(1)
	p := mwl.Problem{Graph: mwl.Fig1Graph(), Lambda: 41}
	key, err := p.Hash()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := src.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}

	dst := mwl.NewService(1)
	if _, ok := dst.Peek(key); ok {
		t.Fatal("Peek hit on an empty service")
	}
	dst.Admit(key, sol)
	got, ok := dst.Peek(key)
	if !ok || got.Area != sol.Area {
		t.Fatalf("Peek after Admit = (%+v, %v)", got, ok)
	}
	served, err := dst.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !served.Cached {
		t.Fatal("Solve recomputed an admitted solution")
	}
	if st := dst.CacheStats(); st.Misses != 0 || st.Hits != 1 {
		t.Fatalf("stats after admitted solve: %+v", st)
	}
}
