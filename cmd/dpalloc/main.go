// Command dpalloc allocates a datapath for a multiple-wordlength
// sequencing graph read as JSON from a file or stdin.
//
// Usage:
//
//	tgff -n 9 | dpalloc -relax 0.15
//	dpalloc -in graph.json -lambda 20 -method twostage
//	dpalloc -in graph.json -relax 0.3 -method all
//
// Methods: heuristic (Algorithm DPAlloc, default), twostage [4],
// descend [14], optimal (exhaustive, small graphs only), ilp [5], all.
// Fixed resource limits (the paper's N_y) are set with e.g.
// -limits mul=2,add=1; the default is the automatic minimal-resource
// search.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	mwl "repro"
	"repro/internal/dfg"
	"repro/internal/fxsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dpalloc: ")
	var (
		in       = flag.String("in", "-", "input graph JSON file (- for stdin)")
		lambda   = flag.Int("lambda", 0, "latency constraint in cycles (overrides -relax)")
		relax    = flag.Float64("relax", 0, "latency relaxation over λ_min, e.g. 0.15 for +15%")
		method   = flag.String("method", "heuristic", "heuristic | twostage | descend | optimal | ilp | all")
		limits   = flag.String("limits", "", "fixed resource limits, e.g. mul=2,add=1")
		ilpLimit = flag.Duration("ilptimeout", mwl.DefaultILPTimeLimit, "ILP time limit")
		quiet    = flag.Bool("q", false, "print only area and latency")
		verilog  = flag.String("verilog", "", "write generated Verilog for the first method's datapath to this file (- for stdout)")
		regs     = flag.Bool("registers", false, "also report register/mux completion (full-datapath area)")
		jsonOut  = flag.String("json", "", "write the first method's datapath as JSON to this file (- for stdout)")
		vcdOut   = flag.String("vcd", "", "simulate the first method's datapath (zero inputs) and write a VCD waveform to this file")
	)
	flag.Parse()

	g, err := readGraph(*in)
	if err != nil {
		log.Fatal(err)
	}
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		log.Fatal(err)
	}
	lam := *lambda
	if lam == 0 {
		lam = lmin + int(float64(lmin)**relax+0.5)
	}
	fmt.Printf("graph: %d operations, λ_min = %d, λ = %d\n", g.N(), lmin, lam)

	opt := mwl.Options{}
	if *limits != "" {
		l, err := parseLimits(*limits)
		if err != nil {
			log.Fatal(err)
		}
		opt.Limits = l
	}

	artifactsDone := false
	run := func(name string, f func() (*mwl.Datapath, error)) {
		t0 := time.Now()
		dp, err := f()
		el := time.Since(t0)
		if err != nil {
			fmt.Printf("%-10s error: %v\n", name, err)
			return
		}
		if err := dp.Verify(g, lib, lam); err != nil {
			log.Fatalf("%s produced an illegal datapath: %v", name, err)
		}
		if *quiet {
			fmt.Printf("%-10s area %6d  latency %3d  (%v)\n", name, dp.Area(lib), dp.Makespan(lib), el.Round(time.Millisecond))
		} else {
			fmt.Printf("\n--- %s (%v) ---\n%s", name, el.Round(time.Millisecond), dp.Render(g, lib))
		}
		if *regs {
			plan, err := mwl.AllocateRegisters(g, lib, dp, mwl.RegisterOptions{})
			if err != nil {
				log.Fatalf("%s: register completion: %v", name, err)
			}
			fmt.Printf("%-10s full datapath: FU %d + reg %d (%d regs) + mux %d = %d\n",
				name, plan.FUArea, plan.RegArea, len(plan.Registers), plan.MuxArea, plan.TotalArea())
		}
		if *verilog != "" && !artifactsDone {
			src, err := mwl.GenerateVerilog("datapath", g, lib, dp)
			if err != nil {
				log.Fatalf("%s: verilog: %v", name, err)
			}
			if *verilog == "-" {
				fmt.Print(src)
			} else if err := os.WriteFile(*verilog, []byte(src), 0o644); err != nil {
				log.Fatal(err)
			} else {
				fmt.Printf("%-10s verilog written to %s\n", name, *verilog)
			}
		}
		if *jsonOut != "" && !artifactsDone {
			blob, err := json.MarshalIndent(dp, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			blob = append(blob, '\n')
			if *jsonOut == "-" {
				os.Stdout.Write(blob)
			} else if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
				log.Fatal(err)
			} else {
				fmt.Printf("%-10s datapath JSON written to %s\n", name, *jsonOut)
			}
		}
		if *vcdOut != "" && !artifactsDone {
			_, traces, err := fxsim.Run(g, lib, dp, fxsim.Inputs{})
			if err != nil {
				log.Fatalf("%s: simulate: %v", name, err)
			}
			f, err := os.Create(*vcdOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := fxsim.WriteVCD(f, g, lib, dp, traces); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s waveform written to %s\n", name, *vcdOut)
		}
		artifactsDone = true
	}

	methods := strings.Split(*method, ",")
	if *method == "all" {
		methods = []string{"heuristic", "twostage", "descend", "optimal", "ilp"}
	}
	for _, m := range methods {
		switch m {
		case "heuristic":
			run("heuristic", func() (*mwl.Datapath, error) {
				dp, _, err := mwl.Allocate(g, lib, lam, opt)
				return dp, err
			})
		case "twostage":
			run("twostage", func() (*mwl.Datapath, error) { return mwl.AllocateTwoStage(g, lib, lam) })
		case "descend":
			run("descend", func() (*mwl.Datapath, error) { return mwl.AllocateDescending(g, lib, lam) })
		case "optimal":
			if g.N() > mwl.MaxOptimalOps {
				fmt.Printf("%-10s skipped: %d operations exceed the exhaustive-search limit %d\n",
					"optimal", g.N(), mwl.MaxOptimalOps)
				continue
			}
			run("optimal", func() (*mwl.Datapath, error) { return mwl.AllocateOptimal(g, lib, lam) })
		case "ilp":
			run("ilp", func() (*mwl.Datapath, error) {
				h, _, err := mwl.Allocate(g, lib, lam, mwl.Options{})
				if err != nil {
					return nil, err
				}
				r, err := mwl.SolveILP(g, lib, lam, mwl.ILPOptions{TimeLimit: *ilpLimit, Incumbent: h})
				if err != nil {
					return nil, err
				}
				if r.TimedOut {
					fmt.Printf("ilp: time limit hit after %d nodes; best found follows\n", r.Nodes)
				}
				return r.DP, nil
			})
		default:
			log.Fatalf("unknown method %q", m)
		}
	}
}

func readGraph(path string) (*dfg.Graph, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var g dfg.Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("reading graph: %w", err)
	}
	return &g, nil
}

func parseLimits(s string) (mwl.Limits, error) {
	out := mwl.Limits{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad limit %q (want class=count)", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad limit count %q", kv[1])
		}
		switch strings.TrimSpace(kv[0]) {
		case "mul":
			out[mwl.Mul] = n
		case "add":
			out[mwl.Add] = n
		default:
			return nil, fmt.Errorf("unknown resource class %q (mul or add)", kv[0])
		}
	}
	return out, nil
}
