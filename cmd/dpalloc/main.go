// Command dpalloc allocates a datapath for a multiple-wordlength
// sequencing graph read as JSON from a file or stdin, dispatching
// through the mwl method registry.
//
// Usage:
//
//	tgff -n 9 | dpalloc -relax 0.15
//	dpalloc -in graph.json -lambda 20 -method twostage
//	dpalloc -in graph.json -relax 0.3 -method all
//	dpalloc -in graph.json -relax 0.2 -method pipelined -ii 6
//
// Methods are the registry names: dpalloc (default; "heuristic" is an
// accepted alias), twostage [4], descend [14], optimal (exhaustive,
// small graphs only), ilp [5], pipelined (needs -ii), or all. Fixed
// resource limits (the paper's N_y) are set with e.g.
// -limits mul=2,add=1; the default is the automatic minimal-resource
// search. Ctrl-C cancels the solve in flight.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	mwl "repro"
	"repro/internal/dfg"
	"repro/internal/fxsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dpalloc: ")
	var (
		in       = flag.String("in", "-", "input graph JSON file (- for stdin)")
		lambda   = flag.Int("lambda", 0, "latency constraint in cycles (overrides -relax)")
		relax    = flag.Float64("relax", 0, "latency relaxation over λ_min, e.g. 0.15 for +15%")
		method   = flag.String("method", "dpalloc", strings.Join(mwl.Methods(), " | ")+" | all")
		ii       = flag.Int("ii", 0, "initiation interval (pipelined method)")
		limits   = flag.String("limits", "", "fixed resource limits, e.g. mul=2,add=1")
		ilpLimit = flag.Duration("ilptimeout", mwl.DefaultILPTimeLimit, "ILP time limit")
		quiet    = flag.Bool("q", false, "print only area and latency")
		verilog  = flag.String("verilog", "", "write generated Verilog for the first method's datapath to this file (- for stdout)")
		regs     = flag.Bool("registers", false, "also report register/mux completion (full-datapath area)")
		jsonOut  = flag.String("json", "", "write the first method's solution as JSON to this file (- for stdout)")
		vcdOut   = flag.String("vcd", "", "simulate the first method's datapath (zero inputs) and write a VCD waveform to this file")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	g, err := readGraph(*in)
	if err != nil {
		log.Fatal(err)
	}
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		log.Fatal(err)
	}
	lam := *lambda
	if lam == 0 {
		lam = lmin + int(float64(lmin)**relax+0.5)
	}
	fmt.Printf("graph: %d operations, λ_min = %d, λ = %d\n", g.N(), lmin, lam)

	opts := mwl.SolveOptions{TimeLimit: *ilpLimit}
	if *limits != "" {
		l, err := parseLimits(*limits)
		if err != nil {
			log.Fatal(err)
		}
		opts.Limits = l
	}

	methods := strings.Split(*method, ",")
	if *method == "all" {
		methods = []string{"dpalloc", "twostage", "descend", "optimal", "ilp"}
	}

	artifactsDone := false
	for _, m := range methods {
		if m == "heuristic" { // pre-registry name
			m = "dpalloc"
		}
		if m == "optimal" && g.N() > mwl.MaxOptimalOps {
			fmt.Printf("%-10s skipped: %d operations exceed the exhaustive-search limit %d\n",
				"optimal", g.N(), mwl.MaxOptimalOps)
			continue
		}
		p := mwl.Problem{Method: m, Graph: g, Lambda: lam, Options: opts}
		if m == "pipelined" {
			if *ii == 0 {
				log.Fatal("method pipelined needs -ii")
			}
			p.II = *ii
		}
		if m == "ilp" {
			// Prime the ILP with the heuristic's datapath, exactly like
			// handing lp_solve a known solution: a capped run then
			// returns the best known datapath instead of erroring, and
			// the bound prunes the search.
			if h, err := mwl.Solve(ctx, mwl.Problem{Method: "dpalloc", Graph: g, Lambda: lam, Options: opts}); err == nil {
				p.Options.Incumbent = h.Datapath
			}
		}
		sol, err := mwl.Solve(ctx, p)
		if err != nil {
			// A bad method name or malformed problem dooms every method;
			// infeasibility is reported per method and the loop goes on.
			if errors.Is(err, mwl.ErrUnknownMethod) || errors.Is(err, mwl.ErrInvalidProblem) {
				log.Fatal(err)
			}
			if ctx.Err() != nil {
				log.Fatalf("%s: canceled: %v", m, err)
			}
			fmt.Printf("%-10s error: %v\n", m, err)
			continue
		}
		if err := sol.Datapath.Verify(g, lib, lam); err != nil {
			log.Fatalf("%s produced an illegal datapath: %v", m, err)
		}
		if sol.Stats.TimedOut {
			fmt.Printf("%s: budget hit after %d nodes; best found follows\n", m, sol.Stats.Nodes)
		}
		if *quiet {
			fmt.Printf("%-10s area %6d  latency %3d  (%v)\n", m, sol.Area, sol.Makespan, sol.Elapsed.Round(time.Millisecond))
		} else {
			fmt.Printf("\n--- %s (%v) ---\n%s", m, sol.Elapsed.Round(time.Millisecond), sol.Datapath.Render(g, lib))
		}
		if *regs {
			plan, err := mwl.AllocateRegisters(g, lib, sol.Datapath, mwl.RegisterOptions{})
			if err != nil {
				log.Fatalf("%s: register completion: %v", m, err)
			}
			fmt.Printf("%-10s full datapath: FU %d + reg %d (%d regs) + mux %d = %d\n",
				m, plan.FUArea, plan.RegArea, len(plan.Registers), plan.MuxArea, plan.TotalArea())
		}
		if !artifactsDone {
			writeArtifacts(g, lib, sol, *verilog, *jsonOut, *vcdOut)
		}
		artifactsDone = true
	}
}

// writeArtifacts emits the optional Verilog / JSON / VCD outputs for the
// first successfully solved method.
func writeArtifacts(g *mwl.Graph, lib *mwl.Library, sol mwl.Solution, verilog, jsonOut, vcdOut string) {
	if verilog != "" {
		src, err := mwl.GenerateVerilog("datapath", g, lib, sol.Datapath)
		if err != nil {
			log.Fatalf("%s: verilog: %v", sol.Method, err)
		}
		if verilog == "-" {
			fmt.Print(src)
		} else if err := os.WriteFile(verilog, []byte(src), 0o644); err != nil {
			log.Fatal(err)
		} else {
			fmt.Printf("%-10s verilog written to %s\n", sol.Method, verilog)
		}
	}
	if jsonOut != "" {
		blob, err := json.MarshalIndent(sol, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		blob = append(blob, '\n')
		if jsonOut == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(jsonOut, blob, 0o644); err != nil {
			log.Fatal(err)
		} else {
			fmt.Printf("%-10s solution JSON written to %s\n", sol.Method, jsonOut)
		}
	}
	if vcdOut != "" {
		_, traces, err := fxsim.Run(g, lib, sol.Datapath, fxsim.Inputs{})
		if err != nil {
			log.Fatalf("%s: simulate: %v", sol.Method, err)
		}
		f, err := os.Create(vcdOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := fxsim.WriteVCD(f, g, lib, sol.Datapath, traces); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s waveform written to %s\n", sol.Method, vcdOut)
	}
}

func readGraph(path string) (*dfg.Graph, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var g dfg.Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("reading graph: %w", err)
	}
	return &g, nil
}

// parseLimits splits "class=count,…" into the wire-level limit map;
// class names and counts are validated by mwl.Solve.
func parseLimits(s string) (map[string]int, error) {
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad limit %q (want class=count)", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil {
			return nil, fmt.Errorf("bad limit count %q", kv[1])
		}
		out[strings.TrimSpace(kv[0])] = n
	}
	return out, nil
}
