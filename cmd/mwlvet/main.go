// Command mwlvet is the project's static-analysis suite: a vet tool
// that mechanically enforces the invariants earlier PRs fixed by hand —
// context polling in solver loops (ctxpoll), bounded goroutine fan-out
// (boundedspawn), caller-seeded randomness (seededrand), explicit wire
// schema tags and deterministic canonical encoding (wiretag), and
// Prometheus metric naming/registration (metricname).
//
// Run it through the go command so every package (and its type
// information) is fed to the suite incrementally and cached:
//
//	go build -o bin/mwlvet ./cmd/mwlvet
//	go vet -vettool=$(pwd)/bin/mwlvet ./...
//
// A finding exits non-zero and fails `go vet`. To exempt a reviewed
// site, annotate the offending line (or the line above it):
//
//	//mwlvet:allow <analyzer> -- <reason>
package main

import (
	"repro/internal/analysis/suite"
	"repro/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(suite.Analyzers()...)
}
