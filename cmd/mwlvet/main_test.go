package main_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the mwlvet binary once per test binary and returns
// its path plus the repo root.
func buildTool(t *testing.T) (tool, repoRoot string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool = filepath.Join(t.TempDir(), "mwlvet")
	cmd := exec.Command("go", "build", "-o", tool, "./cmd/mwlvet")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building mwlvet: %v\n%s", err, out)
	}
	return tool, root
}

// TestProtocolVersionAndFlags covers the two query invocations the go
// command makes before running any unit: the version line feeding its
// build cache key and the (empty) analyzer flag list.
func TestProtocolVersionAndFlags(t *testing.T) {
	tool, _ := buildTool(t)

	out, err := exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[1] != "version" || !strings.Contains(string(out), "buildID=") {
		t.Fatalf("-V=full output %q does not match the \"<name> version ... buildID=...\" shape cmd/go hashes", out)
	}

	out, err = exec.Command(tool, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if got := strings.TrimSpace(string(out)); got != "[]" {
		t.Fatalf("-flags printed %q, want []", got)
	}
}

// TestBadModuleFiresEveryAnalyzer runs the suite through the real
// `go vet -vettool` pipeline over a module with one violation per
// analyzer and asserts each one is diagnosed.
func TestBadModuleFiresEveryAnalyzer(t *testing.T) {
	tool, root := buildTool(t)
	badmod := filepath.Join(root, "internal", "analysis", "testdata", "badmod")

	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = badmod
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet over badmod succeeded; want failure\nstderr:\n%s", stderr.String())
	}
	for _, analyzer := range []string{"ctxpoll", "boundedspawn", "seededrand", "wiretag", "metricname"} {
		if !strings.Contains(stderr.String(), "[mwlvet:"+analyzer+"]") {
			t.Errorf("analyzer %s did not fire over badmod", analyzer)
		}
	}
	if t.Failed() {
		t.Logf("go vet stderr:\n%s", stderr.String())
	}
}

// TestRepoIsClean asserts the suite's end state: the repository itself
// carries no violations (modulo reviewed //mwlvet:allow sites).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("vetting the whole repository is not a -short test")
	}
	tool, root := buildTool(t)

	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("mwlvet found violations in the repository:\n%s", stderr.String())
	}
}
