// Command wlopt derives operation wordlengths from an output-error
// budget (the paper's future-work flow; see internal/errspec) and writes
// the trimmed sequencing graph as JSON, ready for dpalloc.
//
// Usage:
//
//	tgff -n 9 | wlopt -budget 1e-3 | dpalloc -relax 0.15
//	wlopt -in fir.json -bits 10 -out fir10.json
//
// The budget is the maximum tolerated absolute output error in the
// fraction domain; -bits b is shorthand for -budget 2^-b.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"time"

	mwl "repro"
	"repro/internal/dfg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wlopt: ")
	var (
		in      = flag.String("in", "-", "input graph JSON file (- for stdin)")
		out     = flag.String("out", "-", "output graph JSON file (- for stdout)")
		budget  = flag.Float64("budget", 0, "maximum absolute output error (fraction domain)")
		bits    = flag.Int("bits", 0, "shorthand: budget = 2^-bits")
		vectors = flag.Int("vectors", 32, "Monte-Carlo input vectors")
		seed    = flag.Int64("seed", 1, "input sampling seed")
		minW    = flag.Int("minwidth", 2, "smallest allowed operand width")
		check   = flag.String("check", "", "also allocate the trimmed graph with this mwl method (e.g. dpalloc) and report area to stderr")
		relax   = flag.Float64("relax", 0.25, "latency relaxation over λ_min for -check")
	)
	flag.Parse()

	if *bits > 0 {
		*budget = math.Ldexp(1, -*bits)
	}
	if !(*budget > 0) {
		log.Fatal("set -budget or -bits")
	}

	g, err := readGraph(*in)
	if err != nil {
		log.Fatal(err)
	}
	lib := mwl.DefaultLibrary()
	res, err := mwl.DeriveWordlengths(g, lib, mwl.ErrorSpecConfig{
		MaxAbsError: *budget,
		Vectors:     *vectors,
		Seed:        *seed,
		MinWidth:    *minW,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"wlopt: %d trims, dedicated area %d -> %d, measured error %.3g (budget %.3g)\n",
		len(res.Trims), res.AreaBefore, res.AreaAfter, res.MeasuredError, *budget)

	if *check != "" {
		lmin, err := mwl.MinLambda(res.Graph, lib)
		if err != nil {
			log.Fatal(err)
		}
		lambda := lmin + int(float64(lmin)**relax+0.5)
		sol, err := mwl.Solve(context.Background(),
			mwl.Problem{Method: *check, Graph: res.Graph, Lambda: lambda})
		if err != nil {
			log.Fatalf("check %s: %v", *check, err)
		}
		fmt.Fprintf(os.Stderr, "wlopt: %s datapath at λ=%d: area %d, %d instances (%v)\n",
			*check, lambda, sol.Area, len(sol.Datapath.Instances), sol.Elapsed.Round(time.Millisecond))
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res.Graph); err != nil {
		log.Fatal(err)
	}
}

func readGraph(path string) (*dfg.Graph, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var g dfg.Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("reading graph: %w", err)
	}
	return &g, nil
}
