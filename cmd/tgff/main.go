// Command tgff generates random multiple-wordlength sequencing graphs in
// the style of TGFF (reference [8] of the paper) and writes them as JSON
// to stdout, one graph per line.
//
// Usage:
//
//	tgff -n 9 -count 3 -seed 1000 > graphs.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/tgff"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tgff: ")
	var (
		n     = flag.Int("n", 9, "operations per graph")
		count = flag.Int("count", 1, "number of graphs")
		seed  = flag.Int64("seed", 1, "base seed (graph i uses seed+i)")
		mulP  = flag.Float64("mulprob", 0.5, "probability an operation is a multiply")
		minW  = flag.Int("minw", 4, "minimum operand wordlength")
		maxW  = flag.Int("maxw", 24, "maximum operand wordlength")
	)
	flag.Parse()

	enc := json.NewEncoder(os.Stdout)
	for i := 0; i < *count; i++ {
		g, err := tgff.Generate(tgff.Config{
			N: *n, Seed: *seed + int64(i), MulProb: *mulP, MinWidth: *minW, MaxWidth: *maxW,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := enc.Encode(g); err != nil {
			log.Fatal(err)
		}
	}
	if *count > 1 {
		fmt.Fprintf(os.Stderr, "tgff: wrote %d graphs of %d operations\n", *count, *n)
	}
}
