// Command experiments regenerates the paper's evaluation: Fig. 3, Fig. 4,
// Fig. 5 and Table 2 (see DESIGN.md §4 for the per-experiment index).
//
// The default configuration is a scaled-down sweep that completes in
// minutes; -paper runs the full published configuration (200 graphs per
// point, sizes 1..24, ILP capped at 30 minutes per instance), which can
// take many hours exactly as it did for the authors.
//
// Usage:
//
//	experiments                 # all experiments, scaled down
//	experiments -fig 3          # one experiment
//	experiments -fig 5 -graphs 50 -sizes 1,2,3,4,5,6,7,8
//	experiments -table 2 -ilplimit 2m
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/expt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		fig      = flag.Int("fig", 0, "figure to regenerate (3, 4 or 5); 0 = all")
		table    = flag.Int("table", 0, "table to regenerate (2); 0 = all")
		methods  = flag.Bool("methods", false, "run the backend comparison sweep (dpalloc/twostage/descend/anneal/portfolio) instead of the paper figures")
		annMoves = flag.Int("annealmoves", 4000, "simulated-annealing proposal budget per graph in -methods")
		graphs   = flag.Int("graphs", 0, "graphs per configuration (0 = per-experiment default)")
		seed     = flag.Int64("seed", 2001, "base RNG seed")
		sizesF   = flag.String("sizes", "", "comma-separated problem sizes (default per experiment)")
		ilpLimit = flag.Duration("ilplimit", 30*time.Second, "per-instance ILP time limit")
		paper    = flag.Bool("paper", false, "full published configuration (slow: hours)")
		csvDir   = flag.String("csv", "", "also write <dir>/fig3.csv etc. for external plotting")
		fullArea = flag.Bool("fullarea", false, "score Fig. 3 on full RTL area (FU + registers + muxes)")
	)
	flag.Parse()

	// Ctrl-C cancels the sweep; cancellation reaches the allocator and
	// branch-and-bound hot loops through ctx.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	writeCSV := func(name string, emit func(io.Writer) error) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := emit(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(csv written to %s)\n", path)
	}

	all := *fig == 0 && *table == 0 && !*methods
	cfg := expt.Config{Seed: *seed}

	pick := func(def int) int {
		if *graphs > 0 {
			return *graphs
		}
		if *paper {
			return 200
		}
		return def
	}
	sizes := func(def []int) []int {
		if *sizesF != "" {
			return parseInts(*sizesF)
		}
		return def
	}

	if *methods {
		cfg.Graphs = pick(25)
		szs := sizes([]int{4, 8, 12, 16})
		relaxes := []float64{0, 0.10, 0.20, 0.30}
		fmt.Printf("# Methods — %d graphs/point, sizes %v, anneal budget %d moves\n",
			cfg.Graphs, szs, *annMoves)
		pts, err := expt.Methods(ctx, cfg, szs, relaxes, *annMoves)
		if err != nil {
			log.Fatal(err)
		}
		expt.WriteMethods(os.Stdout, pts)
		writeCSV("methods.csv", func(w io.Writer) error { return expt.WriteMethodsCSV(w, pts) })
		fmt.Println()
	}
	if all || *fig == 3 {
		cfg.Graphs = pick(25)
		cfg.FullArea = *fullArea
		szs := sizes(pick3Sizes(*paper))
		relaxes := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30}
		scoring := "FU area (paper model)"
		if *fullArea {
			scoring = "full RTL area (FU+reg+mux)"
		}
		fmt.Printf("# Fig. 3 — %d graphs/point, sizes %v, %s\n", cfg.Graphs, szs, scoring)
		pts, err := expt.Fig3(ctx, cfg, szs, relaxes)
		if err != nil {
			log.Fatal(err)
		}
		expt.WriteFig3(os.Stdout, pts)
		writeCSV("fig3.csv", func(w io.Writer) error { return expt.WriteFig3CSV(w, pts) })
		fmt.Println()
	}
	if all || *fig == 4 {
		cfg.Graphs = pick(25)
		szs := sizes([]int{1, 2, 3, 4, 5, 6, 7, 8})
		fmt.Printf("# Fig. 4 — %d graphs/point, sizes %v, λ = λ_min\n", cfg.Graphs, szs)
		pts, err := expt.Fig4(ctx, cfg, szs, 50_000_000)
		if err != nil {
			log.Fatal(err)
		}
		expt.WriteFig4(os.Stdout, pts)
		writeCSV("fig4.csv", func(w io.Writer) error { return expt.WriteFig4CSV(w, pts) })
		fmt.Println()
	}
	if all || *fig == 5 {
		cfg.Graphs = pick(25)
		szs := sizes([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
		fmt.Printf("# Fig. 5 — %d graphs/point, sizes %v, λ = λ_min, ILP limit %v\n",
			cfg.Graphs, szs, *ilpLimit)
		pts, err := expt.Fig5(ctx, cfg, szs, *ilpLimit)
		if err != nil {
			log.Fatal(err)
		}
		expt.WriteFig5(os.Stdout, pts, cfg.Graphs)
		writeCSV("fig5.csv", func(w io.Writer) error { return expt.WriteFig5CSV(w, pts) })
		fmt.Println()
	}
	if all || *table == 2 {
		cfg.Graphs = pick(25)
		relaxes := []float64{0, 0.05, 0.10, 0.15}
		lim := *ilpLimit
		if *paper {
			lim = 30 * time.Minute
		}
		fmt.Printf("# Table 2 — %d graphs of 9 operations, ILP limit %v\n", cfg.Graphs, lim)
		rows, err := expt.Table2(ctx, cfg, 9, relaxes, lim)
		if err != nil {
			log.Fatal(err)
		}
		expt.WriteTable2(os.Stdout, rows, cfg.Graphs, 9)
		writeCSV("table2.csv", func(w io.Writer) error { return expt.WriteTable2CSV(w, rows) })
	}
}

func pick3Sizes(paper bool) []int {
	if paper {
		s := make([]int, 24)
		for i := range s {
			s[i] = i + 1
		}
		return s
	}
	return []int{2, 4, 6, 8, 10, 12, 16, 20, 24}
}

func parseInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			log.Fatalf("bad size %q", p)
		}
		out = append(out, v)
	}
	return out
}
