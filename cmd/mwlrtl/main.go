// Command mwlrtl statically analyses the Verilog this project emits:
// it parses each module into a netlist IR (internal/rtl/netlist) and
// proves structural and wordlength-dataflow properties over it —
// combinational-loop freedom, driver discipline, dead-logic
// reachability, and width/truncation interval dataflow.
//
// Two modes:
//
//	mwlrtl fir.v dct.v            # analyse existing Verilog files
//	mwlrtl -problem problem.json  # solve the allocation problem, emit
//	                              # the module, analyse it against the
//	                              # graph's wordlength specification
//
// In -problem mode the analysis adds the problem-aware passes: iface
// checks every data port and result register against the exact
// fixed-point format the graph's operation specs require, and equiv
// symbolically unrolls the module across the schedule's makespan and
// proves each result register and output port equal to the value the
// dataflow graph defines for it. -o writes the emitted Verilog out
// (- for stdout).
//
// Findings print one per line, vet-style (file:line: [analyzer]
// message). A reviewed exception is annotated in the source with
// //rtl:allow <analyzer> -- <reason> on the offending line or the line
// above. Exit status: 0 clean, 1 findings, 2 usage/parse/solve errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	mwl "repro"
	"repro/internal/rtl"
	"repro/internal/rtl/netlist"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mwlrtl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		problem = fs.String("problem", "", "allocation problem JSON (- for stdin): solve, emit Verilog, analyse against the graph's wordlength spec")
		module  = fs.String("module", "datapath", "module name for Verilog emitted in -problem mode")
		out     = fs.String("o", "", "write the emitted Verilog to this file in -problem mode (- for stdout)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mwlrtl [flags] [file.v ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *problem == "" && fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	findings := 0
	report := func(diags []netlist.Diag) {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
		findings += len(diags)
	}

	if *problem != "" {
		diags, code := analyzeProblem(*problem, *module, *out, stdout, stderr)
		if code != 0 {
			return code
		}
		report(diags)
	}

	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "mwlrtl: %v\n", err)
			return 2
		}
		diags, err := netlist.Analyze(string(src), netlist.Options{File: path})
		if err != nil {
			fmt.Fprintf(stderr, "mwlrtl: %s: %v\n", path, err)
			return 2
		}
		report(diags)
	}

	if findings > 0 {
		fmt.Fprintf(stderr, "mwlrtl: %d findings\n", findings)
		return 1
	}
	return 0
}

// analyzeProblem solves the allocation problem, emits the Verilog
// module for its datapath, and analyses it against the graph's
// wordlength specification. The returned code is non-zero on failure
// to solve or emit (findings are the caller's concern).
func analyzeProblem(path, module, out string, stdout, stderr io.Writer) ([]netlist.Diag, int) {
	var blob []byte
	var err error
	if path == "-" {
		blob, err = io.ReadAll(os.Stdin)
	} else {
		blob, err = os.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintf(stderr, "mwlrtl: %v\n", err)
		return nil, 2
	}
	var p mwl.Problem
	if err := json.Unmarshal(blob, &p); err != nil {
		fmt.Fprintf(stderr, "mwlrtl: problem JSON: %v\n", err)
		return nil, 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	sol, err := mwl.Solve(ctx, p)
	if err != nil {
		fmt.Fprintf(stderr, "mwlrtl: solve: %v\n", err)
		return nil, 2
	}
	lib := p.Lib
	if lib == nil {
		if lib, err = p.Library.Build(); err != nil {
			fmt.Fprintf(stderr, "mwlrtl: library: %v\n", err)
			return nil, 2
		}
	}
	src, err := mwl.GenerateVerilog(module, p.Graph, lib, sol.Datapath)
	if err != nil {
		fmt.Fprintf(stderr, "mwlrtl: generate: %v\n", err)
		return nil, 2
	}
	if out == "-" {
		fmt.Fprint(stdout, src)
	} else if out != "" {
		if err := os.WriteFile(out, []byte(src), 0o644); err != nil {
			fmt.Fprintf(stderr, "mwlrtl: %v\n", err)
			return nil, 2
		}
	}
	diags, err := rtl.Analyze(src, rtl.AnalyzeOptions{
		File:     module + ".v",
		Graph:    p.Graph,
		Lib:      lib,
		Datapath: sol.Datapath,
	})
	if err != nil {
		fmt.Fprintf(stderr, "mwlrtl: emitted module does not parse: %v\n", err)
		return nil, 2
	}
	return diags, 0
}
