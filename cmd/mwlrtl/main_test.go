package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	mwl "repro"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCleanFileExitsZero(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "ok.v", `module m (
  input  wire clk,
  input  wire [7:0] a,
  output wire [7:0] y
);
  reg [7:0] r;
  always @(posedge clk) begin
    r <= a;
  end
  assign y = r;
endmodule
`)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s stdout: %s", code, errOut.String(), out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

func TestFindingsExitOne(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "bad.v", `module m (
  input  wire a,
  output wire y
);
  assign y = a;
  assign y = !a;
endmodule
`)
	var out, errOut bytes.Buffer
	code := run([]string{path}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), path+":6: [driver]") {
		t.Fatalf("finding not attributed to file:line:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "1 findings") {
		t.Fatalf("missing summary: %s", errOut.String())
	}
}

func TestParseErrorExitsTwo(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "broken.v", "module m (\n  input wire clk\n);\n")
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "missing endmodule") {
		t.Fatalf("missing parse error: %s", errOut.String())
	}
}

func TestNoArgsUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage: mwlrtl") {
		t.Fatalf("missing usage: %s", errOut.String())
	}
}

func TestProblemModeEmitsAndAnalyzes(t *testing.T) {
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(mwl.Problem{Graph: g, Lambda: lmin + lmin/2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	problem := writeFile(t, dir, "problem.json", string(blob))
	verilog := filepath.Join(dir, "out.v")

	var out, errOut bytes.Buffer
	code := run([]string{"-problem", problem, "-module", "fig1", "-o", verilog}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	emitted, err := os.ReadFile(verilog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(emitted), "module fig1") {
		t.Fatalf("emitted Verilog missing module header:\n%s", emitted)
	}
	// The emitted file must also be clean when re-read standalone.
	if code := run([]string{verilog}, &out, &errOut); code != 0 {
		t.Fatalf("re-analysis exit %d: %s", code, out.String())
	}
}
