package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkTable2ILP/lambda=1.00-8         	       1	    991617 ns/op	         0 capped
BenchmarkTable2ILP/lambda=1.15-8         	       1	2206540036 ns/op	         0 capped
BenchmarkFig3/relax=0%-8                 	       2	 291163000 ns/op	      12.5 penalty-%
BenchmarkAllocateScaling/N=100-8         	       1	  51234567 ns/op	 1024 B/op	      17 allocs/op
PASS
ok  	repro	15.702s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	b, ok := rep.Benchmarks["BenchmarkTable2ILP/lambda=1.00"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", rep.Benchmarks)
	}
	if b.NsPerOp != 991617 || b.Iterations != 1 {
		t.Fatalf("%+v", b)
	}
	if b.Metrics["capped"] != 0 {
		t.Fatalf("custom metric lost: %+v", b)
	}
	fig := rep.Benchmarks["BenchmarkFig3/relax=0%"]
	if fig.Metrics["penalty-%"] != 12.5 {
		t.Fatalf("%+v", fig)
	}
	alloc := rep.Benchmarks["BenchmarkAllocateScaling/N=100"]
	if alloc.BytesPerOp != 1024 || alloc.AllocsPerOp != 17 {
		t.Fatalf("%+v", alloc)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	repro	15.702s",
		"BenchmarkBroken abc ns/op",
		"BenchmarkNoResult-8",
		"--- FAIL: TestSomething",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

func mkReport(ns map[string]float64) *Report {
	r := &Report{Schema: 1, Benchmarks: map[string]Benchmark{}}
	for name, v := range ns {
		r.Benchmarks[name] = Benchmark{Iterations: 1, NsPerOp: v}
	}
	return r
}

func TestCompareReports(t *testing.T) {
	base := mkReport(map[string]float64{
		"BenchmarkTable2ILP/lambda=1.00": 1000,
		"BenchmarkFig5ILP/N=8":           2000,
		"BenchmarkAblationGrowth":        500, // filtered out by match
		"BenchmarkGone":                  100, // absent from new
	})
	cur := mkReport(map[string]float64{
		"BenchmarkTable2ILP/lambda=1.00": 1200, // +20%: under threshold
		"BenchmarkFig5ILP/N=8":           2600, // +30%: regression
		"BenchmarkAblationGrowth":        5000, // would regress, but unmatched
		"BenchmarkNew":                   1,    // absent from baseline
	})
	re := regexp.MustCompile(`^BenchmarkTable2|^BenchmarkFig`)
	regs, report := compareReports(base, cur, re, 25, 0)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v\n%s", regs, report)
	}
	if regs[0].Name != "BenchmarkFig5ILP/N=8" || regs[0].Percent < 29 || regs[0].Percent > 31 {
		t.Fatalf("%+v", regs[0])
	}
	if !strings.Contains(report, "1 benchmark unit(s) regressed") {
		t.Fatalf("report: %s", report)
	}
}

// TestCompareReportsMemoryGate: B/op and allocs/op regressions trip the
// same threshold, and a baseline recorded without -benchmem (zeros)
// leaves the memory units ungated instead of dividing by zero.
func TestCompareReportsMemoryGate(t *testing.T) {
	base := &Report{Schema: 1, Benchmarks: map[string]Benchmark{
		"BenchmarkAnneal":  {Iterations: 1, NsPerOp: 1000, BytesPerOp: 10_000, AllocsPerOp: 100},
		"BenchmarkNoMem":   {Iterations: 1, NsPerOp: 1000},
		"BenchmarkHealthy": {Iterations: 1, NsPerOp: 1000, BytesPerOp: 10_000, AllocsPerOp: 100},
	}}
	cur := &Report{Schema: 1, Benchmarks: map[string]Benchmark{
		"BenchmarkAnneal":  {Iterations: 1, NsPerOp: 1100, BytesPerOp: 20_000, AllocsPerOp: 200}, // mem doubled
		"BenchmarkNoMem":   {Iterations: 1, NsPerOp: 1100, BytesPerOp: 99_999, AllocsPerOp: 999}, // no mem baseline
		"BenchmarkHealthy": {Iterations: 1, NsPerOp: 900, BytesPerOp: 9_000, AllocsPerOp: 90},
	}}
	regs, report := compareReports(base, cur, nil, 25, 0)
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v\n%s", regs, report)
	}
	units := map[string]bool{}
	for _, r := range regs {
		if r.Name != "BenchmarkAnneal" {
			t.Fatalf("unexpected regression %+v", r)
		}
		units[r.Unit] = true
	}
	if !units["B/op"] || !units["allocs/op"] {
		t.Fatalf("memory units not gated: %+v", regs)
	}
}

func TestCompareReportsClean(t *testing.T) {
	base := mkReport(map[string]float64{"BenchmarkTable2ILP/lambda=1.00": 1000})
	cur := mkReport(map[string]float64{"BenchmarkTable2ILP/lambda=1.00": 800})
	regs, report := compareReports(base, cur, nil, 25, 0)
	if len(regs) != 0 {
		t.Fatalf("%+v", regs)
	}
	if !strings.Contains(report, "no ns/op, B/op or allocs/op regression") {
		t.Fatalf("report: %s", report)
	}
}

func TestCompareReportsNoiseFloor(t *testing.T) {
	base := mkReport(map[string]float64{
		"BenchmarkFig5Heuristic/N=2": 30_000,    // 30µs: under the floor
		"BenchmarkTable2ILP/big":     2_000_000, // gated
	})
	cur := mkReport(map[string]float64{
		"BenchmarkFig5Heuristic/N=2": 90_000, // 3×, but noise-floored
		"BenchmarkTable2ILP/big":     2_100_000,
	})
	regs, report := compareReports(base, cur, nil, 25, 1_000_000)
	if len(regs) != 0 {
		t.Fatalf("noise-floored benchmark gated: %+v\n%s", regs, report)
	}
	if !strings.Contains(report, "noise floor") {
		t.Fatalf("report: %s", report)
	}
}
