// Command benchjson turns `go test -bench` text output into a stable
// JSON artifact (BENCH.json) and gates benchmark regressions against a
// baseline, so CI can record the performance trajectory per PR.
//
// Usage:
//
//	go test -bench . -benchtime 1x -benchmem -run '^$' . | benchjson parse -o BENCH.json
//	benchjson compare -threshold 25 -match '^BenchmarkTable2|^BenchmarkFig' baseline.json BENCH.json
//
// parse reads benchmark output from a file argument or stdin and writes
// the JSON report (stdout by default). compare exits non-zero when any
// matched benchmark's ns/op regressed by more than the threshold
// percentage; a missing baseline file is a graceful no-op so the gate
// passes on the first run ever.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Report is the BENCH.json schema.
type Report struct {
	Schema     int                  `json:"schema"`
	Goos       string               `json:"goos,omitempty"`
	Goarch     string               `json:"goarch,omitempty"`
	Pkg        string               `json:"pkg,omitempty"`
	CPU        string               `json:"cpu,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// Benchmark is one `go test -bench` result line. Metrics carries the
// custom b.ReportMetric units (penalty-%, capped, mean-area, …).
type Benchmark struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// cpuSuffix is the -GOMAXPROCS tail go test appends to benchmark names;
// it is stripped so reports compare across machines with different core
// counts.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		if err := runParse(os.Args[2:]); err != nil {
			fatal(err)
		}
	case "compare":
		regressed, err := runCompare(os.Args[2:])
		if err != nil {
			fatal(err)
		}
		if regressed {
			os.Exit(1)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: benchjson parse [-o out.json] [bench.out]\n")
	fmt.Fprintf(os.Stderr, "       benchjson compare [-threshold pct] [-match regex] baseline.json new.json\n")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func runParse(args []string) error {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := io.Reader(os.Stdin)
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	rep, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found in input")
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// parseBench reads `go test -bench` output into a Report.
func parseBench(r io.Reader) (*Report, error) {
	rep := &Report{Schema: 1, Benchmarks: map[string]Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		name, b, ok := parseLine(line)
		if ok {
			rep.Benchmarks[name] = b
		}
	}
	return rep, sc.Err()
}

// parseLine decodes one result line:
//
//	BenchmarkName/sub-8   4   291163 ns/op   12 B/op   3 allocs/op   1.5 extra-unit
func parseLine(line string) (string, Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Benchmark{}, false
	}
	b := Benchmark{Iterations: iters}
	sawNs := false
	for k := 2; k+1 < len(fields); k += 2 {
		v, err := strconv.ParseFloat(fields[k], 64)
		if err != nil {
			return "", Benchmark{}, false
		}
		switch unit := fields[k+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			sawNs = true
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	if !sawNs {
		return "", Benchmark{}, false
	}
	return cpuSuffix.ReplaceAllString(fields[0], ""), b, true
}

// regression is one over-threshold increase in a gated unit.
type regression struct {
	Name    string
	Unit    string
	Old     float64
	New     float64
	Percent float64
}

func runCompare(args []string) (regressed bool, err error) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 25, "max allowed ns/op regression, percent")
	match := fs.String("match", "", "regexp of benchmark names to gate (default: all)")
	minNs := fs.Float64("min-ns", 0, "ignore benchmarks whose baseline ns/op is below this noise floor")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 2 {
		return false, fmt.Errorf("compare needs exactly two files: baseline.json new.json")
	}
	baseRaw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("benchjson: no baseline at %s; skipping regression gate\n", fs.Arg(0))
			return false, nil
		}
		return false, err
	}
	newRaw, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return false, err
	}
	var base, cur Report
	if err := json.Unmarshal(baseRaw, &base); err != nil {
		return false, fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	if err := json.Unmarshal(newRaw, &cur); err != nil {
		return false, fmt.Errorf("%s: %w", fs.Arg(1), err)
	}
	var re *regexp.Regexp
	if *match != "" {
		re, err = regexp.Compile(*match)
		if err != nil {
			return false, err
		}
	}
	regressions, report := compareReports(&base, &cur, re, *threshold, *minNs)
	fmt.Print(report)
	return len(regressions) > 0, nil
}

// compareReports diffs ns/op, B/op and allocs/op for benchmarks present
// in both reports (filtered by re, skipping baselines under the minNs
// noise floor) and returns the over-threshold regressions plus a
// human-readable summary. Memory units are gated only when the baseline
// recorded them (a baseline taken without -benchmem has zeros there),
// so adding -benchmem never fails the first gated run.
func compareReports(base, cur *Report, re *regexp.Regexp, threshold, minNs float64) ([]regression, string) {
	var names []string
	for name := range cur.Benchmarks {
		if re != nil && !re.MatchString(name) {
			continue
		}
		if _, ok := base.Benchmarks[name]; !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []regression
	var sb strings.Builder
	for _, name := range names {
		ob, nb := base.Benchmarks[name], cur.Benchmarks[name]
		if ob.NsPerOp <= 0 {
			continue
		}
		if ob.NsPerOp < minNs {
			fmt.Fprintf(&sb, "- %-48s %14.0f ns/op baseline under the %.0f ns noise floor; not gated\n", name, ob.NsPerOp, minNs)
			continue
		}
		units := []struct {
			unit     string
			old, new float64
		}{
			{"ns/op", ob.NsPerOp, nb.NsPerOp},
			{"B/op", ob.BytesPerOp, nb.BytesPerOp},
			{"allocs/op", ob.AllocsPerOp, nb.AllocsPerOp},
		}
		for _, u := range units {
			if u.old <= 0 {
				continue // unit not recorded in the baseline
			}
			pct := 100 * (u.new - u.old) / u.old
			mark := " "
			if pct > threshold {
				mark = "✗"
				regressions = append(regressions, regression{name, u.unit, u.old, u.new, pct})
			}
			fmt.Fprintf(&sb, "%s %-48s %14.0f → %14.0f %-9s %+7.1f%%\n", mark, name, u.old, u.new, u.unit, pct)
		}
	}
	if len(names) == 0 {
		sb.WriteString("benchjson: no overlapping benchmarks to compare\n")
	}
	if len(regressions) > 0 {
		fmt.Fprintf(&sb, "benchjson: %d benchmark unit(s) regressed more than %.0f%%\n", len(regressions), threshold)
	} else {
		fmt.Fprintf(&sb, "benchjson: no ns/op, B/op or allocs/op regression above %.0f%% across %d gated benchmark(s)\n", threshold, len(names))
	}
	return regressions, sb.String()
}
