package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	mwl "repro"
)

// streamGateSolver is a registry stub with externally controlled
// timing: problems with Lambda >= 1000 block until released (or their
// context dies), everything else answers immediately. It lets the
// stream tests hold a solve mid-flight deterministically.
type streamGateSolver struct {
	entered  chan struct{} // one signal per slow solve that has started
	gate     chan struct{} // one token releases one slow solve
	canceled chan struct{} // one signal per slow solve killed by ctx
}

var streamGate = &streamGateSolver{
	entered:  make(chan struct{}, 64),
	gate:     make(chan struct{}, 64),
	canceled: make(chan struct{}, 64),
}

func (s *streamGateSolver) Solve(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
	if p.Lambda >= 1000 {
		s.entered <- struct{}{}
		select {
		case <-s.gate:
		case <-ctx.Done():
			s.canceled <- struct{}{}
			return mwl.Solution{}, ctx.Err()
		}
	}
	return mwl.Solution{Method: "test-stream-gate", Area: int64(p.Lambda)}, nil
}

func init() {
	if err := mwl.Register("test-stream-gate", streamGate); err != nil {
		panic(err)
	}
}

func gateProblem(lambda int) mwl.Problem {
	return mwl.Problem{Method: "test-stream-gate", Lambda: lambda}
}

func postStream(t *testing.T, url string, problems []mwl.Problem) *http.Response {
	t.Helper()
	blob, err := json.Marshal(mwl.BatchRequest{Problems: problems})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/solve/stream", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestStreamFirstRecordBeforeBatchCompletes: the stream endpoint must
// emit (and flush) each result as its solve finishes — the fast
// problem's NDJSON record arrives while the slow problem is still held
// at the gate, index-tagged so the client can reassemble.
func TestStreamFirstRecordBeforeBatchCompletes(t *testing.T) {
	srv := testServer(t)
	resp := postStream(t, srv.URL, []mwl.Problem{gateProblem(1000), gateProblem(7)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("content type %q", ct)
	}
	<-streamGate.entered // the slow solve is running and will stay running

	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first record: %v", sc.Err())
	}
	var first mwl.StreamResultWire
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first record %q: %v", sc.Text(), err)
	}
	// The slow solve has not been released: this record arriving at all
	// proves streaming, and it must be the fast problem's.
	if first.Index != 1 || first.Error != "" || first.Solution == nil || first.Solution.Area != 7 {
		t.Fatalf("first record = %+v, want index 1 with area 7", first)
	}

	streamGate.gate <- struct{}{} // release the slow solve
	if !sc.Scan() {
		t.Fatalf("no second record: %v", sc.Err())
	}
	var second mwl.StreamResultWire
	if err := json.Unmarshal(sc.Bytes(), &second); err != nil {
		t.Fatal(err)
	}
	if second.Index != 0 || second.Solution == nil || second.Solution.Area != 1000 {
		t.Fatalf("second record = %+v, want index 0 with area 1000", second)
	}
	if sc.Scan() {
		t.Fatalf("unexpected extra record %q", sc.Text())
	}
}

// TestStreamClientDisconnectCancelsSolves: dropping the stream request
// must cancel the in-flight solves (they see ctx.Done) and free the
// worker pool for subsequent requests.
func TestStreamClientDisconnectCancelsSolves(t *testing.T) {
	srv := testServer(t) // 2 workers
	blob, err := json.Marshal(mwl.BatchRequest{Problems: []mwl.Problem{
		gateProblem(2000), gateProblem(2001), gateProblem(2002),
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/v1/solve/stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	<-streamGate.entered
	<-streamGate.entered // both workers hold a slow solve
	cancel()             // client walks away

	for i := 0; i < 2; i++ {
		select {
		case <-streamGate.canceled:
		case <-time.After(10 * time.Second):
			t.Fatal("in-flight solve not canceled after client disconnect")
		}
	}
	// The pool must be usable again: a fresh fast solve completes.
	blob, _ = json.Marshal(gateProblem(5))
	r2, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up solve status %d: workers not reclaimed", r2.StatusCode)
	}
}

// TestMaxNodesCapsProblems: a problem whose graph exceeds -max-nodes is
// rejected with 413 and a JSON error on the single-solve and batch
// endpoints, while a problem at the cap is admitted — the byte and
// batch-count caps alone would have let the big graph through.
func TestMaxNodesCapsProblems(t *testing.T) {
	srv := httptest.NewServer(newHandler(handlerConfig{svc: mwl.NewService(2), maxBody: 1 << 20, batchMax: 4, maxNodes: 10}))
	defer srv.Close()
	big, err := mwl.GenerateRandom(mwl.RandomConfig{N: 11, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	small, err := mwl.GenerateRandom(mwl.RandomConfig{N: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	post := func(ep string, v any) (int, []byte) {
		blob, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+ep, "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	bigProblem := mwl.Problem{Graph: big, Lambda: 200}
	status, body := post("/v1/solve", bigProblem)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("/v1/solve: status %d, want 413 (%s)", status, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("/v1/solve: 413 body not a JSON error: %q", body)
	}
	status, body = post("/v1/solve/batch", mwl.BatchRequest{Problems: []mwl.Problem{{Graph: small, Lambda: 200}, bigProblem}})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("/v1/solve/batch: status %d, want 413 (%s)", status, body)
	}
	// At the cap is fine.
	status, body = post("/v1/solve", mwl.Problem{Graph: small, Lambda: 200})
	if status != http.StatusOK {
		t.Fatalf("/v1/solve at the cap: status %d (%s)", status, body)
	}
}

// TestBatchMaxCapsBatchAndStream: a batch above -batch-max is rejected
// with 413 and a JSON error on both endpoints; the byte cap alone would
// have let it through.
func TestBatchMaxCapsBatchAndStream(t *testing.T) {
	srv := httptest.NewServer(newHandler(handlerConfig{svc: mwl.NewService(2), maxBody: 1 << 20, batchMax: 4}))
	defer srv.Close()
	problems := make([]mwl.Problem, 5)
	for i := range problems {
		problems[i] = gateProblem(i + 1)
	}
	blob, err := json.Marshal(mwl.BatchRequest{Problems: problems})
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range []string{"/v1/solve/batch", "/v1/solve/stream"} {
		resp, err := http.Post(srv.URL+ep, "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413 (%s)", ep, resp.StatusCode, buf.String())
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(buf.Bytes(), &e); err != nil || e.Error == "" {
			t.Fatalf("%s: 413 body not a JSON error: %q", ep, buf.String())
		}
		// At the cap is fine.
		ok, _ := json.Marshal(mwl.BatchRequest{Problems: problems[:4]})
		r2, err := http.Post(srv.URL+ep, "application/json", bytes.NewReader(ok))
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("%s: batch at the cap got %d", ep, r2.StatusCode)
		}
	}
}

// TestStreamRejectsMalformedAndEmpty mirrors the batch endpoint's
// request validation.
func TestStreamRejectsMalformedAndEmpty(t *testing.T) {
	srv := testServer(t)
	for _, bad := range []string{`{"problems": []}`, `{nope`, `{}`} {
		resp, err := http.Post(srv.URL+"/v1/solve/stream", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("stream %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
