package main

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// healthConfig tunes the cluster health checker.
type healthConfig struct {
	// interval is the steady-state gap between probes of an up peer.
	interval time.Duration
	// timeout bounds one probe round-trip.
	timeout time.Duration
	// failAfter consecutive failed probes (or request-path transport
	// failures) mark a peer down; passAfter consecutive successful
	// probes mark it up again. Both are at least 1.
	failAfter int
	passAfter int
}

func (hc healthConfig) withDefaults() healthConfig {
	if hc.interval <= 0 {
		hc.interval = time.Second
	}
	if hc.timeout <= 0 {
		hc.timeout = hc.interval / 2
		if hc.timeout <= 0 {
			hc.timeout = 500 * time.Millisecond
		}
	}
	if hc.failAfter < 1 {
		hc.failAfter = 3
	}
	if hc.passAfter < 1 {
		hc.passAfter = 2
	}
	return hc
}

// peerState is the health record of one remote peer. Guarded by
// healthChecker.mu.
type peerState struct {
	up     bool
	fails  int // consecutive failures while up (or climbing back)
	passes int // consecutive successes while down

	probes      uint64 // total probes sent
	failures    uint64 // total failed probes + request-path strikes
	transitions uint64 // up<->down flips

	backoff time.Duration // current probe gap while down
}

// healthChecker maintains a live up/down view of the cluster's remote
// peers by probing each one's /healthz on a steady interval, marking a
// peer down after failAfter consecutive failures and up again after
// passAfter consecutive passes. While a peer is down its probe gap
// backs off exponentially (capped at 8x the interval) so a long outage
// is not hammered, and each peer's probe schedule is phase-shifted by a
// hash of its address so replicas sharing a config do not probe in
// lockstep. The request path feeds observed transport failures in as
// extra strikes, so a peer that dies between probes is discovered by
// the traffic that hits it.
type healthChecker struct {
	cfg    healthConfig
	client *http.Client

	mu    sync.Mutex
	peers map[string]*peerState

	stop chan struct{}
	done sync.WaitGroup
}

// newHealthChecker builds (but does not start) a checker over the given
// remote peer addresses. A peer starts up: the cluster assumes the best
// until evidence says otherwise, so a replica booting first does not
// mark the whole cluster down before its peers finish starting.
func newHealthChecker(peers []string, cfg healthConfig) *healthChecker {
	cfg = cfg.withDefaults()
	h := &healthChecker{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.timeout},
		peers:  make(map[string]*peerState, len(peers)),
		stop:   make(chan struct{}),
	}
	for _, p := range peers {
		h.peers[p] = &peerState{up: true, backoff: cfg.interval}
	}
	return h
}

// start launches one probe loop per peer.
func (h *healthChecker) start() {
	h.mu.Lock()
	addrs := make([]string, 0, len(h.peers))
	for p := range h.peers {
		addrs = append(addrs, p)
	}
	h.mu.Unlock()
	for _, p := range addrs {
		h.done.Add(1)
		//mwlvet:allow boundedspawn -- one probe loop per configured peer, bounded by the -peers flag
		go h.probeLoop(p)
	}
}

// close stops all probe loops and waits for them to exit.
func (h *healthChecker) close() {
	close(h.stop)
	h.done.Wait()
}

// phase is the deterministic initial delay of a peer's probe loop: a
// hash of the address spread over one interval. Staggering the loops
// keeps N replicas with identical configs from synchronizing their
// probes; deriving it from the address (rather than a random source)
// keeps the schedule reproducible.
func (h *healthChecker) phase(addr string) time.Duration {
	f := fnv.New64a()
	io.WriteString(f, addr)
	return time.Duration(f.Sum64() % uint64(h.cfg.interval))
}

func (h *healthChecker) probeLoop(addr string) {
	defer h.done.Done()
	t := time.NewTimer(h.phase(addr))
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
		}
		h.observe(addr, h.probe(addr))
		h.mu.Lock()
		ps := h.peers[addr]
		next := h.cfg.interval
		if !ps.up {
			next = ps.backoff
			// Exponential backoff while down, capped at 8x the steady
			// interval: recovery is still noticed within a few seconds at
			// default settings, without hammering a long-dead host.
			if ps.backoff < 8*h.cfg.interval {
				ps.backoff *= 2
			}
		}
		h.mu.Unlock()
		t.Reset(next)
	}
}

// probe performs one /healthz round-trip.
func (h *healthChecker) probe(addr string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// observe folds one health observation — a probe result or a
// request-path transport failure — into the peer's state machine.
func (h *healthChecker) observe(addr string, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ps, known := h.peers[addr]
	if !known {
		return
	}
	ps.probes++
	if ok {
		ps.fails = 0
		if !ps.up {
			ps.passes++
			if ps.passes >= h.cfg.passAfter {
				ps.up = true
				ps.passes = 0
				ps.backoff = h.cfg.interval
				ps.transitions++
			}
		}
		return
	}
	ps.failures++
	ps.passes = 0
	if ps.up {
		ps.fails++
		if ps.fails >= h.cfg.failAfter {
			ps.up = false
			ps.fails = 0
			ps.backoff = h.cfg.interval
			ps.transitions++
		}
	}
}

// up reports the current belief about a peer. Unknown addresses are
// assumed up — the checker only tracks configured remote peers, and an
// optimistic default means a config mismatch degrades to the old
// relay-and-timeout behaviour rather than to a black hole.
func (h *healthChecker) up(addr string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	ps, known := h.peers[addr]
	return !known || ps.up
}

// writeMetrics appends per-peer health series to the Prometheus
// exposition, one labelled sample per peer per family.
func (h *healthChecker) writeMetrics(w io.Writer) {
	h.mu.Lock()
	type row struct {
		addr string
		ps   peerState
	}
	rows := make([]row, 0, len(h.peers))
	for a, ps := range h.peers {
		rows = append(rows, row{a, *ps})
	}
	h.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].addr < rows[j].addr })

	io.WriteString(w, "# HELP mwld_peer_up Whether the peer is currently believed reachable (1) or down (0).\n# TYPE mwld_peer_up gauge\n")
	for _, r := range rows {
		up := 0
		if r.ps.up {
			up = 1
		}
		fmt.Fprintf(w, "mwld_peer_up{peer=%q} %d\n", r.addr, up)
	}
	io.WriteString(w, "# HELP mwld_peer_probes_total Health observations recorded for the peer (probes plus request-path strikes).\n# TYPE mwld_peer_probes_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "mwld_peer_probes_total{peer=%q} %d\n", r.addr, r.ps.probes)
	}
	io.WriteString(w, "# HELP mwld_peer_probe_failures_total Failed health observations recorded for the peer.\n# TYPE mwld_peer_probe_failures_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "mwld_peer_probe_failures_total{peer=%q} %d\n", r.addr, r.ps.failures)
	}
	io.WriteString(w, "# HELP mwld_peer_transitions_total Up/down state flips recorded for the peer.\n# TYPE mwld_peer_transitions_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "mwld_peer_transitions_total{peer=%q} %d\n", r.addr, r.ps.transitions)
	}
}

// attachHealth wires an active health checker over the cluster's remote
// peers and starts its probe loops. Call close() on shutdown.
func (c *cluster) attachHealth(cfg healthConfig) *healthChecker {
	remotes := make([]string, 0, c.ring.Len())
	for _, p := range c.ring.Replicas() {
		if p != c.self {
			remotes = append(remotes, p)
		}
	}
	h := newHealthChecker(remotes, cfg)
	c.health = h
	h.start()
	return h
}
