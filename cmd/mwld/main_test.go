package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	mwl "repro"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newHandler(handlerConfig{svc: mwl.NewService(2), maxBody: 1 << 20, batchMax: defaultBatchMax}))
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestMethodsEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/methods")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Methods []struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		} `json:"methods"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, m := range out.Methods {
		names[m.Name] = true
	}
	for _, want := range []string{"dpalloc", "twostage", "descend", "optimal", "ilp", "pipelined", "anneal", "portfolio"} {
		if !names[want] {
			t.Fatalf("method %q missing from %v", want, names)
		}
	}
}

func postSolve(t *testing.T, srv *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestSolveEndToEnd: a Problem JSON in yields a Solution JSON out whose
// datapath verifies against the posted graph.
func TestSolveEndToEnd(t *testing.T) {
	srv := testServer(t)
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Method: "dpalloc", Graph: g, Lambda: lmin + 2}
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sol mwl.Solution
	if err := json.Unmarshal(body, &sol); err != nil {
		t.Fatal(err)
	}
	if sol.Method != "dpalloc" || sol.Datapath == nil {
		t.Fatalf("bad solution: %s", body)
	}
	if err := sol.Datapath.Verify(g, lib, p.Lambda); err != nil {
		t.Fatalf("served datapath illegal: %v", err)
	}

	// The same problem again is served from the Service memo.
	resp, body = postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	var again mwl.Solution
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("repeat solve not served from memo")
	}
}

func TestSolveErrorStatuses(t *testing.T) {
	srv := testServer(t)
	g := mwl.Fig1Graph()
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}

	resp, _ := postSolve(t, srv, []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}

	blob, _ := json.Marshal(mwl.Problem{Method: "bogus", Graph: g, Lambda: lmin})
	resp, body := postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown method: status %d (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unknown method") {
		t.Fatalf("error body: %s", body)
	}

	blob, _ = json.Marshal(mwl.Problem{Graph: g, Lambda: lmin - 1})
	resp, body = postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible: status %d (%s)", resp.StatusCode, body)
	}
}

// TestSolveHonorsRequestCancellation: dropping the request must abort
// the in-flight solve promptly — the handler inherits r.Context().
func TestSolveHonorsRequestCancellation(t *testing.T) {
	srv := testServer(t)
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 14, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(mwl.Problem{Method: "ilp", Graph: g, Lambda: lmin + lmin/2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/v1/solve", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded despite 100ms deadline on a large ILP")
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("client unblocked only after %v", el)
	}
	// The server side must also wind down quickly: a subsequent request
	// on the 2-worker pool must not be starved by a zombie solve.
	done := make(chan error, 1)
	go func() {
		p := mwl.Problem{Graph: mwl.Fig1Graph(), Lambda: 20}
		b, _ := json.Marshal(p)
		r2, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(b))
		if err != nil {
			done <- err
			return
		}
		defer r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			done <- fmt.Errorf("follow-up status %d", r2.StatusCode)
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follow-up request starved after cancellation")
	}
}

// TestSolveStatusTaxonomy: malformed problems are 400, infeasible ones
// 422; a solver-internal failure shape would be 500 (the default).
func TestSolveStatusTaxonomy(t *testing.T) {
	srv := testServer(t)
	g := mwl.Fig1Graph()
	// II on a method that does not accept one → invalid problem → 400.
	blob, _ := json.Marshal(mwl.Problem{Graph: g, Lambda: 40, II: 5})
	resp, body := postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("II misuse: status %d (%s)", resp.StatusCode, body)
	}
	// optimal on a too-large graph → invalid problem → 400.
	big, err := mwl.GenerateRandom(mwl.RandomConfig{N: mwl.MaxOptimalOps + 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = json.Marshal(mwl.Problem{Method: "optimal", Graph: big, Lambda: 99})
	resp, body = postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("too-large optimal: status %d (%s)", resp.StatusCode, body)
	}
	// bad resource-limit class → 400.
	blob, _ = json.Marshal(mwl.Problem{Graph: g, Lambda: 40,
		Options: mwl.SolveOptions{Limits: map[string]int{"div": 1}}})
	resp, body = postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit class: status %d (%s)", resp.StatusCode, body)
	}
}

// TestBogusIncumbentRejected: a client-supplied incumbent that is not a
// legal datapath for the posted graph must be rejected up front, not
// pruned against (which could serve it back as a 200 Solution).
func TestBogusIncumbentRejected(t *testing.T) {
	srv := testServer(t)
	g := mwl.Fig1Graph()
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	// An internally consistent datapath for a different, tiny graph:
	// wrong op count and a kind that covers nothing here.
	bogus := []byte(`{"start":[0],"instances":[{"class":"add","hi":4,"ops":[0]}]}`)
	var inc mwl.Datapath
	if err := json.Unmarshal(bogus, &inc); err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"ilp", "optimal"} {
		blob, _ := json.Marshal(mwl.Problem{Method: method, Graph: g, Lambda: lmin,
			Options: mwl.SolveOptions{Incumbent: &inc}})
		resp, body := postSolve(t, srv, blob)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with bogus incumbent: status %d (%s)", method, resp.StatusCode, body)
		}
	}
}

// TestBatchEndpoint: a mixed batch comes back 200 with per-problem
// outcomes in input order — solutions for solvable problems, error
// strings (with the infeasible marker) for the rest.
func TestBatchEndpoint(t *testing.T) {
	srv := testServer(t)
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	req := mwl.BatchRequest{Problems: []mwl.Problem{
		{Graph: g, Lambda: lmin + 2},
		{Method: "twostage", Graph: g, Lambda: lmin + 2},
		{Method: "no-such-method", Graph: g, Lambda: lmin},
		{Graph: g, Lambda: lmin - 1}, // infeasible
		{Graph: g, Lambda: lmin + 2}, // duplicate of [0]: shares its solve
	}}
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/solve/batch", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out mwl.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(req.Problems) {
		t.Fatalf("%d results for %d problems", len(out.Results), len(req.Problems))
	}
	for i, wantOK := range []bool{true, true, false, false, true} {
		r := out.Results[i]
		if (r.Solution != nil) != wantOK {
			t.Fatalf("result %d: solution=%v error=%q", i, r.Solution != nil, r.Error)
		}
		if wantOK && r.Error != "" {
			t.Fatalf("result %d: both solution and error set", i)
		}
	}
	if !strings.Contains(out.Results[2].Error, "unknown method") || out.Results[2].Infeasible {
		t.Fatalf("result 2: %+v", out.Results[2])
	}
	if !out.Results[3].Infeasible {
		t.Fatalf("result 3 not marked infeasible: %+v", out.Results[3])
	}
	if err := out.Results[0].Solution.Datapath.Verify(g, lib, lmin+2); err != nil {
		t.Fatalf("batch datapath illegal: %v", err)
	}
	// The duplicate rides the leader's solve or the cache; either way it
	// carries the same answer.
	if out.Results[4].Solution.Area != out.Results[0].Solution.Area {
		t.Fatal("duplicate problem answered differently")
	}

	// Malformed and empty batches are the client's fault.
	for _, bad := range []string{`{"problems": []}`, `{nope`, `{}`} {
		resp, err := http.Post(srv.URL+"/v1/solve/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("batch %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestMetricsEndpoint: after a solve, a cache hit and a failure, the
// Prometheus text output carries the per-method counters, histogram
// series, cache/store counters and pool gauges.
func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	g := mwl.Fig1Graph()
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := json.Marshal(mwl.Problem{Graph: g, Lambda: lmin + 2})
	postSolve(t, srv, blob) // solver run
	postSolve(t, srv, blob) // cache hit
	bad, _ := json.Marshal(mwl.Problem{Graph: g, Lambda: lmin - 1})
	postSolve(t, srv, bad) // infeasible: an error run

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		`mwld_solves_total{method="dpalloc"} 2`,
		`mwld_solve_errors_total{method="dpalloc"} 1`,
		`mwld_solve_duration_seconds_bucket{method="dpalloc",le="+Inf"} 2`,
		`mwld_solve_duration_seconds_count{method="dpalloc"} 2`,
		"mwld_cache_hits_total 1",
		"mwld_cache_misses_total 2",
		"mwld_cache_evictions_total 0",
		"mwld_cache_entries 1",
		"mwld_store_hits_total 0",
		"mwld_workers 2",
		"# TYPE mwld_solve_duration_seconds histogram",
		"# TYPE mwld_cache_entries gauge",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// TestStoreDirWarmRestart: two servers sharing a -store-dir behave like
// a restart — the second serves the first's solution with cached=true.
func TestStoreDirWarmRestart(t *testing.T) {
	dir := t.TempDir()
	g := mwl.Fig1Graph()
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := json.Marshal(mwl.Problem{Graph: g, Lambda: lmin + 1})

	solve := func() mwl.Solution {
		t.Helper()
		fs, err := mwl.NewFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(newHandler(handlerConfig{svc: mwl.NewServiceWith(mwl.ServiceOptions{Workers: 2, Store: fs}), maxBody: 1 << 20}))
		defer srv.Close()
		resp, body := postSolve(t, srv, blob)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var sol mwl.Solution
		if err := json.Unmarshal(body, &sol); err != nil {
			t.Fatal(err)
		}
		return sol
	}
	cold := solve()
	if cold.Cached {
		t.Fatal("cold solve reported cached")
	}
	warm := solve()
	if !warm.Cached {
		t.Fatal("restarted server did not serve from the store")
	}
	if warm.Area != cold.Area {
		t.Fatal("warm answer differs from cold")
	}
}

// TestShutdownCancelsInFlightSolves exercises the SIGINT bugfix: with
// request contexts tied to the server's base context, Shutdown aborts a
// running solve (client sees 499) and returns within the grace period
// instead of abandoning the solve.
func TestShutdownCancelsInFlightSolves(t *testing.T) {
	srv := newServer("127.0.0.1:0", handlerConfig{svc: mwl.NewService(2), maxBody: 1 << 20})
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 14, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := json.Marshal(mwl.Problem{Method: "ilp", Graph: g, Lambda: lmin + lmin/2})

	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(blob))
		if err != nil {
			done <- result{0, err}
			return
		}
		defer resp.Body.Close()
		done <- result{resp.StatusCode, nil}
	}()
	time.Sleep(200 * time.Millisecond) // let the ILP start

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v (after %v) — in-flight solve not canceled", err, time.Since(start))
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("client error: %v", r.err)
		}
		if r.status != 499 {
			t.Fatalf("in-flight solve answered %d, want 499", r.status)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("client still blocked after Shutdown returned")
	}
}

// brokenSolver returns a parseable-but-illegal solution, standing in
// for a misbehaving backend behind the registry.
type brokenSolver struct{}

func (brokenSolver) Solve(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
	return mwl.Solution{Method: "test-broken", Datapath: &mwl.Datapath{}, Area: 3}, nil
}

func init() {
	if err := mwl.Register("test-broken", brokenSolver{}); err != nil {
		panic(err)
	}
}

// TestVerifyFlagRejectsIllegalSolution: with -verify the Service runs
// mwl.Verify on every solution; an internal inconsistency answers 400
// with the validator's diagnostic instead of serving the bad datapath.
func TestVerifyFlagRejectsIllegalSolution(t *testing.T) {
	srv := httptest.NewServer(newHandler(handlerConfig{
		svc:     mwl.NewServiceWith(mwl.ServiceOptions{Workers: 2, Verify: true}),
		maxBody: 1 << 20,
	}))
	defer srv.Close()
	g := mwl.Fig1Graph()
	blob, _ := json.Marshal(mwl.Problem{Method: "test-broken", Graph: g, Lambda: 40})
	resp, body := postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "failed verification") {
		t.Fatalf("diagnostic missing from %s", body)
	}

	// Honest solves still work through the same verifying service, and
	// the failure shows up on /metrics.
	good, _ := json.Marshal(mwl.Problem{Graph: g, Lambda: 40})
	if resp, body := postSolve(t, srv, good); resp.StatusCode != http.StatusOK {
		t.Fatalf("honest solve under -verify: status %d: %s", resp.StatusCode, body)
	}
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	if !strings.Contains(buf.String(), "mwld_verify_failures_total 1") {
		t.Fatalf("verify failure not counted:\n%s", buf.String())
	}
}

// TestPortfolioWinsMetric: a portfolio solve through the HTTP surface
// moves the per-method win counter on /metrics.
func TestPortfolioWinsMetric(t *testing.T) {
	srv := testServer(t)
	g := mwl.Fig1Graph()
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := json.Marshal(mwl.Problem{
		Method: "portfolio",
		Graph:  g,
		Lambda: lmin + 2,
		Options: mwl.SolveOptions{
			Portfolio:   []string{"dpalloc", "twostage"},
			Seed:        1,
			AnnealMoves: 200,
		},
	})
	resp, body := postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sol mwl.Solution
	if err := json.Unmarshal(body, &sol); err != nil {
		t.Fatal(err)
	}
	if sol.Method != "portfolio" || sol.Stats.Winner == "" {
		t.Fatalf("portfolio envelope missing: method %q winner %q", sol.Method, sol.Stats.Winner)
	}
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	want := fmt.Sprintf("mwld_portfolio_wins_total{method=%q}", sol.Stats.Winner)
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("metrics missing %q:\n%s", want, buf.String())
	}
}
