package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	mwl "repro"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newHandler(mwl.NewService(2), 1<<20))
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestMethodsEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/methods")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Methods []struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		} `json:"methods"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, m := range out.Methods {
		names[m.Name] = true
	}
	for _, want := range []string{"dpalloc", "twostage", "descend", "optimal", "ilp", "pipelined"} {
		if !names[want] {
			t.Fatalf("method %q missing from %v", want, names)
		}
	}
}

func postSolve(t *testing.T, srv *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestSolveEndToEnd: a Problem JSON in yields a Solution JSON out whose
// datapath verifies against the posted graph.
func TestSolveEndToEnd(t *testing.T) {
	srv := testServer(t)
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Method: "dpalloc", Graph: g, Lambda: lmin + 2}
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sol mwl.Solution
	if err := json.Unmarshal(body, &sol); err != nil {
		t.Fatal(err)
	}
	if sol.Method != "dpalloc" || sol.Datapath == nil {
		t.Fatalf("bad solution: %s", body)
	}
	if err := sol.Datapath.Verify(g, lib, p.Lambda); err != nil {
		t.Fatalf("served datapath illegal: %v", err)
	}

	// The same problem again is served from the Service memo.
	resp, body = postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	var again mwl.Solution
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("repeat solve not served from memo")
	}
}

func TestSolveErrorStatuses(t *testing.T) {
	srv := testServer(t)
	g := mwl.Fig1Graph()
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}

	resp, _ := postSolve(t, srv, []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}

	blob, _ := json.Marshal(mwl.Problem{Method: "bogus", Graph: g, Lambda: lmin})
	resp, body := postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown method: status %d (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unknown method") {
		t.Fatalf("error body: %s", body)
	}

	blob, _ = json.Marshal(mwl.Problem{Graph: g, Lambda: lmin - 1})
	resp, body = postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible: status %d (%s)", resp.StatusCode, body)
	}
}

// TestSolveHonorsRequestCancellation: dropping the request must abort
// the in-flight solve promptly — the handler inherits r.Context().
func TestSolveHonorsRequestCancellation(t *testing.T) {
	srv := testServer(t)
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 14, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(mwl.Problem{Method: "ilp", Graph: g, Lambda: lmin + lmin/2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/v1/solve", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded despite 100ms deadline on a large ILP")
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("client unblocked only after %v", el)
	}
	// The server side must also wind down quickly: a subsequent request
	// on the 2-worker pool must not be starved by a zombie solve.
	done := make(chan error, 1)
	go func() {
		p := mwl.Problem{Graph: mwl.Fig1Graph(), Lambda: 20}
		b, _ := json.Marshal(p)
		r2, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(b))
		if err != nil {
			done <- err
			return
		}
		defer r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			done <- fmt.Errorf("follow-up status %d", r2.StatusCode)
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follow-up request starved after cancellation")
	}
}

// TestSolveStatusTaxonomy: malformed problems are 400, infeasible ones
// 422; a solver-internal failure shape would be 500 (the default).
func TestSolveStatusTaxonomy(t *testing.T) {
	srv := testServer(t)
	g := mwl.Fig1Graph()
	// II on a method that does not accept one → invalid problem → 400.
	blob, _ := json.Marshal(mwl.Problem{Graph: g, Lambda: 40, II: 5})
	resp, body := postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("II misuse: status %d (%s)", resp.StatusCode, body)
	}
	// optimal on a too-large graph → invalid problem → 400.
	big, err := mwl.GenerateRandom(mwl.RandomConfig{N: mwl.MaxOptimalOps + 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = json.Marshal(mwl.Problem{Method: "optimal", Graph: big, Lambda: 99})
	resp, body = postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("too-large optimal: status %d (%s)", resp.StatusCode, body)
	}
	// bad resource-limit class → 400.
	blob, _ = json.Marshal(mwl.Problem{Graph: g, Lambda: 40,
		Options: mwl.SolveOptions{Limits: map[string]int{"div": 1}}})
	resp, body = postSolve(t, srv, blob)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit class: status %d (%s)", resp.StatusCode, body)
	}
}

// TestBogusIncumbentRejected: a client-supplied incumbent that is not a
// legal datapath for the posted graph must be rejected up front, not
// pruned against (which could serve it back as a 200 Solution).
func TestBogusIncumbentRejected(t *testing.T) {
	srv := testServer(t)
	g := mwl.Fig1Graph()
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	// An internally consistent datapath for a different, tiny graph:
	// wrong op count and a kind that covers nothing here.
	bogus := []byte(`{"start":[0],"instances":[{"class":"add","hi":4,"ops":[0]}]}`)
	var inc mwl.Datapath
	if err := json.Unmarshal(bogus, &inc); err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"ilp", "optimal"} {
		blob, _ := json.Marshal(mwl.Problem{Method: method, Graph: g, Lambda: lmin,
			Options: mwl.SolveOptions{Incumbent: &inc}})
		resp, body := postSolve(t, srv, blob)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with bogus incumbent: status %d (%s)", method, resp.StatusCode, body)
		}
	}
}
