package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	mwl "repro"
)

// repJob is one solved entry queued for replication.
type repJob struct {
	key string
	sol mwl.Solution
}

// replicator pushes freshly solved entries to the next ranked replicas
// asynchronously, so a replica dying takes down at most the entries
// solved in the last moments before its copies landed. Jobs are queued
// on a bounded channel and drained by a single goroutine; when the
// queue is full the job is dropped and counted — replication is
// best-effort durability on top of a system that can always recompute,
// and must never apply backpressure to the solve path.
type replicator struct {
	c      *cluster
	factor int // total copies per entry, including the solver's own

	jobs chan repJob
	stop chan struct{}
	done sync.WaitGroup

	sent    atomic.Uint64 // successful replica writes
	errs    atomic.Uint64 // failed replica writes
	dropped atomic.Uint64 // jobs discarded because the queue was full
}

// attachReplicator wires an asynchronous replicator with the given copy
// factor into the cluster and returns it, or nil when factor <= 1 (one
// copy means no replication) or the ring is a single replica. The
// returned replicator's onSolved goes into ServiceOptions.OnSolved;
// call close() on shutdown.
func (c *cluster) attachReplicator(factor int) *replicator {
	if factor <= 1 || c.ring.Len() < 2 {
		return nil
	}
	r := &replicator{
		c:      c,
		factor: factor,
		jobs:   make(chan repJob, 1024),
		stop:   make(chan struct{}),
	}
	c.rep = r
	r.done.Add(1)
	go r.drain()
	return r
}

// onSolved enqueues a freshly solved entry for replication without ever
// blocking the solve that produced it.
func (r *replicator) onSolved(key string, sol mwl.Solution) {
	select {
	case r.jobs <- repJob{key: key, sol: sol}:
	default:
		r.dropped.Add(1)
	}
}

// pending reports the queue depth — the replication lag gauge.
func (r *replicator) pending() int { return len(r.jobs) }

// close stops the drain loop. Queued jobs are abandoned: the entries
// are already solved and persisted locally, and a peer that needs them
// read-throughs or recomputes.
func (r *replicator) close() {
	close(r.stop)
	r.done.Wait()
}

func (r *replicator) drain() {
	defer r.done.Done()
	for {
		select {
		case <-r.stop:
			return
		case job := <-r.jobs:
			r.replicate(job)
		}
	}
}

// replicate writes one entry to the first factor-1 live ranked replicas
// other than this one. Targeting the top of the rank order means the
// read-through a failover performs looks exactly where the copies were
// written; skipping down peers trades a copy for not stalling the queue
// behind a dead host.
func (r *replicator) replicate(job repJob) {
	n := 0
	for _, addr := range r.c.ring.Rank(job.key) {
		if n >= r.factor-1 {
			break
		}
		if addr == r.c.self {
			continue
		}
		if !r.c.alive(addr) {
			continue
		}
		if err := r.put(addr, job.key, job.sol); err != nil {
			r.errs.Add(1)
			log.Printf("replicate %s to %s: %v", job.key[:8], addr, err)
		} else {
			r.sent.Add(1)
		}
		n++
	}
}

// put stores one solution on one peer via the internal fetch endpoint.
func (r *replicator) put(addr, key string, sol mwl.Solution) error {
	blob, err := json.Marshal(sol)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "PUT", addr+"/internal/v1/solution/"+key, bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.c.client.Do(req)
	if err != nil {
		r.c.observeFailure(addr)
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// writeMetrics appends the replication series to the Prometheus
// exposition.
func (r *replicator) writeMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP mwld_replication_pending Solved entries queued for replication but not yet written to peers.\n# TYPE mwld_replication_pending gauge\nmwld_replication_pending %d\n", r.pending())
	counters := []struct {
		name, help string
		v          uint64
	}{
		{"mwld_replicate_sent_total", "Successful replica writes of solved entries to peers.", r.sent.Load()},
		{"mwld_replicate_errors_total", "Failed replica writes of solved entries to peers.", r.errs.Load()},
		{"mwld_replicate_dropped_total", "Solved entries not replicated because the replication queue was full.", r.dropped.Load()},
	}
	for _, ct := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", ct.name, ct.help, ct.name, ct.name, ct.v)
	}
}
