package main

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	mwl "repro"
)

// admission gates the solve endpoints: per-client token-bucket rate
// limits (429) and load shedding when the worker-pool queue is deeper
// than the cap (503), both with a Retry-After so well-behaved clients
// back off instead of retrying into the same wall. Shedding early —
// before a request parses its body or takes a queue slot — keeps an
// overloaded replica answering cheaply instead of timing out expensively,
// and in cluster mode a shed response makes the forwarding peer fall
// back rather than surfacing the 503 to the client.
type admission struct {
	svc      *mwl.Service
	queueCap int // shed when this many solves are already waiting; <=0 disables
	rl       *rateLimiter

	shed    atomic.Uint64 // requests refused for queue depth
	limited atomic.Uint64 // requests refused by the per-client rate limit
}

// newAdmission builds the gate. rate is tokens (requests) per second
// per client and burst the bucket size; rate <= 0 disables rate
// limiting. queueCap <= 0 disables shedding. Returns nil when both are
// disabled.
func newAdmission(svc *mwl.Service, queueCap int, rate float64, burst int) *admission {
	if queueCap <= 0 && rate <= 0 {
		return nil
	}
	a := &admission{svc: svc, queueCap: queueCap}
	if rate > 0 {
		if burst < 1 {
			burst = 1
		}
		a.rl = &rateLimiter{
			rate:       rate,
			burst:      float64(burst),
			maxClients: 4096,
			clients:    make(map[string]*bucket),
		}
	}
	return a
}

// admit reports whether the request may proceed; when it may not, the
// refusal has already been written. A nil gate admits everything.
// Requests forwarded by a peer replica bypass the per-client rate limit
// — the peer's client already paid at the peer — but not queue
// shedding, which protects this process no matter who asks.
func (a *admission) admit(w http.ResponseWriter, r *http.Request) bool {
	if a == nil {
		return true
	}
	if a.rl != nil && r.Header.Get(forwardedHeader) == "" {
		if retry, ok := a.rl.take(clientKey(r)); !ok {
			a.limited.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			writeError(w, http.StatusTooManyRequests, errors.New("rate limit exceeded"))
			return false
		}
	}
	if a.queueCap > 0 && a.svc.Queued() >= a.queueCap {
		a.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("worker queue full, shedding load"))
		return false
	}
	return true
}

// clientKey identifies the client for rate limiting: the remote host
// without the ephemeral port, so one client's connections share a
// bucket.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a per-client token-bucket limiter. Buckets refill at
// rate tokens/second up to burst; an absent client starts with a full
// bucket. The client map is capped — when full, the stalest bucket is
// evicted, which at worst briefly refreshes one client's burst.
type rateLimiter struct {
	rate       float64
	burst      float64
	maxClients int

	mu      sync.Mutex
	clients map[string]*bucket
}

// take spends one token for the client if available. When the bucket is
// empty it reports ok=false and the whole seconds to wait until a token
// accrues — the Retry-After value.
func (rl *rateLimiter) take(key string) (retryAfter int, ok bool) {
	now := time.Now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.clients[key]
	if b == nil {
		if len(rl.clients) >= rl.maxClients {
			rl.evictStalest()
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.clients[key] = b
	} else {
		b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return int(math.Ceil((1 - b.tokens) / rl.rate)), false
}

// evictStalest drops the least-recently-seen bucket. Called with mu
// held.
func (rl *rateLimiter) evictStalest() {
	var victim string
	var oldest time.Time
	for k, b := range rl.clients {
		if victim == "" || b.last.Before(oldest) {
			victim, oldest = k, b.last
		}
	}
	delete(rl.clients, victim)
}

// writeMetrics appends the admission-control series to the Prometheus
// exposition.
func (a *admission) writeMetrics(w io.Writer) {
	if a == nil {
		return
	}
	fmt.Fprintf(w, "# HELP mwld_admission_shed_total Requests refused with 503 because the worker queue exceeded the depth cap.\n# TYPE mwld_admission_shed_total counter\nmwld_admission_shed_total %d\n", a.shed.Load())
	fmt.Fprintf(w, "# HELP mwld_ratelimited_total Requests refused with 429 by the per-client rate limit.\n# TYPE mwld_ratelimited_total counter\nmwld_ratelimited_total %d\n", a.limited.Load())
}
