package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	mwl "repro"
)

// replica is one mwld instance of a test cluster, with its internals
// exposed so tests can assert who actually computed what.
type replica struct {
	url string
	svc *mwl.Service
	cl  *cluster
	srv *httptest.Server
}

// startCluster brings up n replicas on real loopback listeners sharing
// one peer list, mirroring `mwld -peers ... -self ...`.
func startCluster(t *testing.T, n int) []*replica {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	peers := ""
	for i, u := range urls {
		if i > 0 {
			peers += ","
		}
		peers += u
	}
	out := make([]*replica, n)
	for i := range out {
		cl, err := newCluster(peers, urls[i])
		if err != nil {
			t.Fatal(err)
		}
		svc := mwl.NewService(2)
		srv := httptest.NewUnstartedServer(newHandler(handlerConfig{svc: svc, maxBody: 1 << 20, batchMax: 64, cluster: cl}))
		srv.Listener.Close()
		srv.Listener = lns[i]
		srv.Start()
		out[i] = &replica{url: urls[i], svc: svc, cl: cl, srv: srv}
		t.Cleanup(srv.Close)
	}
	return out
}

// splitByOwner returns (owner, other) for a problem's hash.
func splitByOwner(t *testing.T, reps []*replica, p mwl.Problem) (*replica, *replica) {
	t.Helper()
	key, err := p.Hash()
	if err != nil {
		t.Fatal(err)
	}
	owner := reps[0].cl.ring.Owner(key)
	if o2 := reps[1].cl.ring.Owner(key); o2 != owner {
		t.Fatalf("replicas disagree on owner: %s vs %s", owner, o2)
	}
	if reps[0].url == owner {
		return reps[0], reps[1]
	}
	return reps[1], reps[0]
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestClusterForwardsToOwner: a solve posted to the non-owning replica
// is computed exactly once, on the owner — the peer relays the owner's
// answer rather than recomputing, and a later request to the owner is a
// cache hit on the same entry.
func TestClusterForwardsToOwner(t *testing.T) {
	reps := startCluster(t, 2)
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Graph: g, Lambda: lmin + 2}
	owner, peer := splitByOwner(t, reps, p)
	blob := mustJSON(t, p)

	resp, err := http.Post(peer.url+"/v1/solve", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sol mwl.Solution
	if err := json.NewDecoder(resp.Body).Decode(&sol); err != nil {
		t.Fatal(err)
	}
	if err := sol.Datapath.Verify(g, lib, p.Lambda); err != nil {
		t.Fatalf("relayed datapath illegal: %v", err)
	}

	// The owner computed it; the peer ran no solver at all.
	if got := owner.svc.CacheStats().Misses; got != 1 {
		t.Fatalf("owner ran %d solves, want 1", got)
	}
	if got := peer.svc.CacheStats(); got.Misses != 0 || got.Hits != 0 {
		t.Fatalf("peer touched its own service: %+v", got)
	}
	if got := peer.cl.forwarded.Load(); got != 1 {
		t.Fatalf("peer forwarded counter = %d, want 1", got)
	}
	if got := peer.cl.fallback.Load(); got != 0 {
		t.Fatalf("peer fallback counter = %d, want 0", got)
	}

	// The owner now serves the same problem from its cache: computed
	// exactly once cluster-wide.
	resp2, err := http.Post(owner.url+"/v1/solve", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var again mwl.Solution
	if err := json.NewDecoder(resp2.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("owner recomputed a problem it had already solved for the peer")
	}
	if again.Area != sol.Area {
		t.Fatal("owner's answer differs from the relayed one")
	}
	if got := owner.svc.CacheStats().Misses; got != 1 {
		t.Fatalf("owner ran %d solves after the repeat, want still 1", got)
	}
	if got := owner.cl.owned.Load(); got != 1 {
		t.Fatalf("owner owned counter = %d, want 1 (the direct request)", got)
	}
}

// TestClusterFallsBackWhenOwnerDown: with the owner unreachable, the
// peer answers locally instead of failing the request, and counts the
// fallback.
func TestClusterFallsBackWhenOwnerDown(t *testing.T) {
	reps := startCluster(t, 2)
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Graph: g, Lambda: lmin + 3}
	owner, peer := splitByOwner(t, reps, p)
	owner.srv.Close()

	resp, err := http.Post(peer.url+"/v1/solve", "application/json", bytes.NewReader(mustJSON(t, p)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d with owner down, want 200 local fallback", resp.StatusCode)
	}
	var sol mwl.Solution
	if err := json.NewDecoder(resp.Body).Decode(&sol); err != nil {
		t.Fatal(err)
	}
	if err := sol.Datapath.Verify(g, lib, p.Lambda); err != nil {
		t.Fatalf("fallback datapath illegal: %v", err)
	}
	if got := peer.cl.fallback.Load(); got != 1 {
		t.Fatalf("fallback counter = %d, want 1", got)
	}
	if got := peer.svc.CacheStats().Misses; got != 1 {
		t.Fatalf("peer ran %d local solves, want 1", got)
	}
}

// TestClusterBatchAndStreamRouting: batch and stream requests posted to
// one replica still shard per problem — each problem is computed once,
// on its owner, and the stream records reassemble to the full batch.
func TestClusterBatchAndStreamRouting(t *testing.T) {
	reps := startCluster(t, 2)
	lib := mwl.DefaultLibrary()
	g := mwl.Fig1Graph()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Enough problems that with overwhelming probability both replicas
	// own at least one (checked below, not assumed).
	var problems []mwl.Problem
	for i := 0; i < 8; i++ {
		problems = append(problems, mwl.Problem{Graph: g, Lambda: lmin + 1 + i})
	}
	ownedBy := map[string]int{}
	for _, p := range problems {
		key, err := p.Hash()
		if err != nil {
			t.Fatal(err)
		}
		ownedBy[reps[0].cl.ring.Owner(key)]++
	}

	resp, err := http.Post(reps[0].url+"/v1/solve/stream", "application/json",
		bytes.NewReader(mustJSON(t, mwl.BatchRequest{Problems: problems})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	seen := map[int]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec mwl.StreamResultWire
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("record %q: %v", sc.Text(), err)
		}
		if seen[rec.Index] {
			t.Fatalf("index %d streamed twice", rec.Index)
		}
		seen[rec.Index] = true
		if rec.Error != "" || rec.Solution == nil {
			t.Fatalf("record %d: %+v", rec.Index, rec)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(problems) {
		t.Fatalf("streamed %d records for %d problems", len(seen), len(problems))
	}

	// Each replica computed exactly the problems it owns, once each.
	for _, rep := range reps {
		if got, want := int(rep.svc.CacheStats().Misses), ownedBy[rep.url]; got != want {
			t.Fatalf("replica %s ran %d solves, owns %d problems", rep.url, got, want)
		}
	}
	if ownedBy[reps[0].url] == 0 || ownedBy[reps[1].url] == 0 {
		t.Skipf("degenerate shard split %v; routing still verified for the owning side", ownedBy)
	}
	if got, want := int(reps[0].cl.forwarded.Load()), ownedBy[reps[1].url]; got != want {
		t.Fatalf("entry replica forwarded %d problems, want %d", got, want)
	}

	// The same batch through the non-streaming endpoint is now entirely
	// cache- or relay-served: no replica runs another solve.
	resp2, err := http.Post(reps[1].url+"/v1/solve/batch", "application/json",
		bytes.NewReader(mustJSON(t, mwl.BatchRequest{Problems: problems})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out mwl.BatchResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(problems) {
		t.Fatalf("%d batch results", len(out.Results))
	}
	for i, r := range out.Results {
		if r.Solution == nil {
			t.Fatalf("batch result %d: %+v", i, r)
		}
	}
	for _, rep := range reps {
		if got, want := int(rep.svc.CacheStats().Misses), ownedBy[rep.url]; got != want {
			t.Fatalf("replica %s recomputed: %d solves for %d owned problems", rep.url, got, want)
		}
	}
}

// TestClusterForwardedErrorKeepsClassification: an infeasible problem
// owned by the other replica must come back 422 through the relay, and
// a batch entry must keep its infeasible marker.
func TestClusterForwardedErrorKeepsClassification(t *testing.T) {
	reps := startCluster(t, 2)
	g := mwl.Fig1Graph()
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Graph: g, Lambda: lmin - 1} // infeasible
	_, peer := splitByOwner(t, reps, p)

	resp, err := http.Post(peer.url+"/v1/solve", "application/json", bytes.NewReader(mustJSON(t, p)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("relayed infeasible solve: status %d, want 422", resp.StatusCode)
	}

	resp2, err := http.Post(peer.url+"/v1/solve/batch", "application/json",
		bytes.NewReader(mustJSON(t, mwl.BatchRequest{Problems: []mwl.Problem{p}})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out mwl.BatchResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || !out.Results[0].Infeasible || out.Results[0].Error == "" {
		t.Fatalf("forwarded batch result lost its infeasible marker: %+v", out.Results)
	}
}

// TestClusterValidation: the flag combinations that cannot form a
// cluster are rejected up front.
func TestClusterValidation(t *testing.T) {
	if cl, err := newCluster("", ""); err != nil || cl != nil {
		t.Fatalf("empty peers: cl=%v err=%v, want single-replica nil", cl, err)
	}
	if _, err := newCluster("a:1,b:1", ""); err == nil {
		t.Fatal("-peers without -self accepted")
	}
	if _, err := newCluster("a:1,b:1", "c:1"); err == nil {
		t.Fatal("-self outside -peers accepted")
	}
	if _, err := newCluster("", "a:1"); err == nil {
		t.Fatal("-self without -peers accepted")
	}
	cl, err := newCluster(" a:1 , b:1 ", "b:1/")
	if err != nil {
		t.Fatal(err)
	}
	if cl.self != "http://b:1" || cl.ring.Len() != 2 {
		t.Fatalf("normalization broken: self=%q ring=%v", cl.self, cl.ring.Replicas())
	}
}

// TestShardMetricsExposed: cluster counters appear on /metrics.
func TestShardMetricsExposed(t *testing.T) {
	reps := startCluster(t, 2)
	resp, err := http.Get(reps[0].url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, want := range []string{
		"mwld_shard_owned_total 0",
		"mwld_shard_forwarded_total 0",
		"mwld_shard_fallback_total 0",
		"mwld_shard_replicas 2",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, buf.String())
		}
	}
}

// TestClusterOwnerDrainingFallsBack: an owner that answers 499 (it is
// canceling work to shut down) while our client is still connected is
// treated as unreachable — the peer solves locally instead of relaying
// a cancellation the client never asked for.
func TestClusterOwnerDrainingFallsBack(t *testing.T) {
	reps := startCluster(t, 2)
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Graph: g, Lambda: lmin + 4}
	owner, peer := splitByOwner(t, reps, p)

	// Replace the owner with a stub that answers every solve 499, the
	// shape of a replica draining its in-flight work on SIGINT.
	addr := strings.TrimPrefix(owner.url, "http://")
	owner.srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	draining := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(499)
		w.Write([]byte(`{"error":"context canceled"}`))
	})}
	go draining.Serve(ln)
	t.Cleanup(func() { draining.Close() })

	// Single solve: local fallback, not a relayed 499.
	resp, err := http.Post(peer.url+"/v1/solve", "application/json", bytes.NewReader(mustJSON(t, p)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d with draining owner, want 200 local fallback", resp.StatusCode)
	}
	var sol mwl.Solution
	if err := json.NewDecoder(resp.Body).Decode(&sol); err != nil {
		t.Fatal(err)
	}
	if err := sol.Datapath.Verify(g, lib, p.Lambda); err != nil {
		t.Fatalf("fallback datapath illegal: %v", err)
	}

	// Batch path takes the same detour.
	resp2, err := http.Post(peer.url+"/v1/solve/batch", "application/json",
		bytes.NewReader(mustJSON(t, mwl.BatchRequest{Problems: []mwl.Problem{p}})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out mwl.BatchResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Solution == nil {
		t.Fatalf("batch with draining owner: %+v", out.Results)
	}

	if got := peer.cl.fallback.Load(); got != 2 {
		t.Fatalf("fallback counter = %d, want 2", got)
	}
	if got := peer.cl.forwarded.Load(); got != 0 {
		t.Fatalf("forwarded counter = %d for relays that never served a client", got)
	}
}
