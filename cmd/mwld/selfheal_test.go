// Tests for the self-healing cluster layer: health-checked routing,
// replication write-through/read-through, admission control, and the
// relay/fallback bugfixes (normalizeAddr canonicalization, forward
// truncation, mid-body relay failures).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	mwl "repro"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startHealingCluster is startCluster plus the self-healing layer: an
// active health checker per replica and write-through replication with
// the given copy factor.
func startHealingCluster(t *testing.T, n, factor int, hcfg healthConfig) []*replica {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	peers := strings.Join(urls, ",")
	out := make([]*replica, n)
	for i := range out {
		out[i] = startHealingReplica(t, peers, urls[i], lns[i], factor, hcfg)
	}
	return out
}

// startHealingReplica boots one self-healing replica on a ready
// listener, mirroring the main() wiring: replicator into
// ServiceOptions.OnSolved, health checker attached and started.
func startHealingReplica(t *testing.T, peers, self string, ln net.Listener, factor int, hcfg healthConfig) *replica {
	t.Helper()
	cl, err := newCluster(peers, self)
	if err != nil {
		t.Fatal(err)
	}
	opts := mwl.ServiceOptions{Workers: 2}
	if rep := cl.attachReplicator(factor); rep != nil {
		opts.OnSolved = rep.onSolved
		t.Cleanup(rep.close)
	}
	svc := mwl.NewServiceWith(opts)
	hc := cl.attachHealth(hcfg)
	t.Cleanup(hc.close)
	srv := httptest.NewUnstartedServer(newHandler(handlerConfig{svc: svc, maxBody: 1 << 20, batchMax: 64, cluster: cl}))
	srv.Listener.Close()
	srv.Listener = ln
	srv.Start()
	t.Cleanup(srv.Close)
	return &replica{url: self, svc: svc, cl: cl, srv: srv}
}

func byURL(t *testing.T, reps []*replica, url string) *replica {
	t.Helper()
	for _, r := range reps {
		if r.url == url {
			return r
		}
	}
	t.Fatalf("no replica at %s", url)
	return nil
}

func postProblem(t *testing.T, url string, p mwl.Problem) (*http.Response, mwl.Solution) {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(mustJSON(t, p)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sol mwl.Solution
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sol); err != nil {
			t.Fatal(err)
		}
	}
	return resp, sol
}

// testHealthConfig is aggressive enough that a test observes up/down
// flips in tens of milliseconds.
func testHealthConfig() healthConfig {
	return healthConfig{
		interval:  20 * time.Millisecond,
		timeout:   200 * time.Millisecond,
		failAfter: 2,
		passAfter: 1,
	}
}

// TestHealthFailoverServesReplicatedCopy is the kill-a-replica story
// end to end: the owner solves and replicates; the owner dies; the
// health checker flips it down; a request entering through the third
// replica is rerouted to the rank-1 replica, which serves the
// replicated copy without recomputing; a fresh problem owned by the
// dead replica is computed exactly once by its successor; and when the
// owner's address comes back, routing follows it home again.
func TestHealthFailoverServesReplicatedCopy(t *testing.T) {
	reps := startHealingCluster(t, 3, 2, testHealthConfig())
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Graph: g, Lambda: lmin + 2}
	key, err := p.Hash()
	if err != nil {
		t.Fatal(err)
	}
	rank := reps[0].cl.ring.Rank(key)
	owner, second, entry := byURL(t, reps, rank[0]), byURL(t, reps, rank[1]), byURL(t, reps, rank[2])

	// Healthy cluster: entry forwards to the owner, which solves and
	// asynchronously replicates to the rank-1 replica.
	resp, sol := postProblem(t, entry.url, p)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := owner.svc.CacheStats().Misses; got != 1 {
		t.Fatalf("owner ran %d solves, want 1", got)
	}
	waitFor(t, "replica copy on rank-1 peer", func() bool {
		_, ok := second.svc.Peek(key)
		return ok
	})

	// Kill the owner and wait for the survivors' health checkers to
	// notice.
	owner.srv.Close()
	waitFor(t, "survivors to mark the owner down", func() bool {
		return !entry.cl.alive(rank[0]) && !second.cl.alive(rank[0])
	})

	// The same problem through the entry replica now reroutes to the
	// rank-1 replica — no connection timeout burned, no fallback — and
	// is served from the replicated copy without a recompute.
	resp2, sol2 := postProblem(t, entry.url, p)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d with owner down, want 200", resp2.StatusCode)
	}
	if !sol2.Cached || sol2.Area != sol.Area {
		t.Fatalf("rerouted answer not the replicated copy: cached=%v area=%v want %v", sol2.Cached, sol2.Area, sol.Area)
	}
	if got := second.svc.CacheStats().Misses; got != 0 {
		t.Fatalf("rank-1 replica recomputed: %d misses, want 0", got)
	}
	if got := entry.cl.rerouted.Load(); got != 1 {
		t.Fatalf("rerouted counter = %d, want 1", got)
	}
	if got := entry.cl.fallback.Load(); got != 0 {
		t.Fatalf("fallback counter = %d, want 0 (owner was routed around, not timed out)", got)
	}
	if got := entry.cl.forwarded.Load(); got != 2 {
		t.Fatalf("forwarded counter = %d, want 2", got)
	}

	// A fresh problem owned by the dead replica is computed exactly once,
	// by the rank-1 successor the reroute lands on.
	p2 := mwl.Problem{Graph: g, Lambda: lmin + 3}
	for l := lmin + 3; ; l++ {
		p2.Lambda = l
		k2, err := p2.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if entry.cl.ring.Owner(k2) == rank[0] {
			break
		}
	}
	k2, _ := p2.Hash()
	resp3, _ := postProblem(t, entry.url, p2)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("fresh problem with dead owner: status %d", resp3.StatusCode)
	}
	acting := byURL(t, reps, entry.cl.ring.Rank(k2)[1])
	if got := acting.svc.CacheStats().Misses; got != 1 {
		t.Fatalf("acting replica ran %d solves for the dead owner's problem, want 1", got)
	}

	// The owner's address comes back (fresh process, cold state): health
	// flips up and forwarding follows the rank order home.
	ln, err := net.Listen("tcp", strings.TrimPrefix(rank[0], "http://"))
	if err != nil {
		t.Fatal(err)
	}
	peersList := strings.Join(entry.cl.ring.Replicas(), ",")
	startHealingReplica(t, peersList, rank[0], ln, 2, testHealthConfig())
	waitFor(t, "survivors to mark the owner up again", func() bool {
		return entry.cl.alive(rank[0]) && second.cl.alive(rank[0])
	})
	pre := entry.cl.forwarded.Load()
	resp4, _ := postProblem(t, entry.url, p)
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("status %d after owner rejoin", resp4.StatusCode)
	}
	if got := entry.cl.forwarded.Load(); got != pre+1 {
		t.Fatalf("forwarded counter = %d after rejoin, want %d", got, pre+1)
	}
	if got := entry.cl.rerouted.Load(); got != 2 {
		t.Fatalf("rerouted counter = %d after rejoin, want still 2", got)
	}
}

// TestReadThroughFetchesRankedCopy: a replica acting for a dead owner
// that does not hold the entry itself fetches it from the ranked
// replicas' stores via the internal endpoint instead of recomputing.
func TestReadThroughFetchesRankedCopy(t *testing.T) {
	reps := startHealingCluster(t, 3, 2, testHealthConfig())
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Graph: g, Lambda: lmin + 2}
	key, err := p.Hash()
	if err != nil {
		t.Fatal(err)
	}
	rank := reps[0].cl.ring.Rank(key)
	owner, acting, holder := byURL(t, reps, rank[0]), byURL(t, reps, rank[1]), byURL(t, reps, rank[2])

	// Plant the solved entry on the rank-2 replica only — the shape left
	// behind when the owner died before replicating to everyone the
	// failover will route through.
	sol, err := mwl.NewService(1).Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	holder.svc.Admit(key, sol)

	owner.srv.Close()
	waitFor(t, "acting replica to mark the owner down", func() bool {
		return !acting.cl.alive(rank[0])
	})

	resp, got := postProblem(t, acting.url, p)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !got.Cached || got.Area != sol.Area {
		t.Fatalf("read-through answer: cached=%v area=%v, want the planted copy (area %v)", got.Cached, got.Area, sol.Area)
	}
	if got := acting.cl.readHits.Load(); got != 1 {
		t.Fatalf("readthrough hits = %d, want 1", got)
	}
	if got := acting.svc.CacheStats().Misses; got != 0 {
		t.Fatalf("acting replica recomputed: %d misses, want 0", got)
	}
	// The fetched copy is now local: a repeat does not fetch again.
	if _, ok := acting.svc.Peek(key); !ok {
		t.Fatal("fetched copy was not admitted locally")
	}
}

// blockGate gates the test-block solver so tests can hold solves
// in-flight deliberately.
var blockGate struct {
	sync.Mutex
	ch chan struct{}
}

func setBlockGate(ch chan struct{}) {
	blockGate.Lock()
	blockGate.ch = ch
	blockGate.Unlock()
}

type blockingSolver struct{}

func (blockingSolver) Solve(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
	blockGate.Lock()
	ch := blockGate.ch
	blockGate.Unlock()
	select {
	case <-ch:
		return mwl.Solution{Method: "test-block", Datapath: &mwl.Datapath{}, Area: 1}, nil
	case <-ctx.Done():
		return mwl.Solution{}, ctx.Err()
	}
}

func init() {
	if err := mwl.Register("test-block", blockingSolver{}); err != nil {
		panic(err)
	}
}

// TestAdmissionShedsWhenQueueFull: with the worker pool saturated and
// the queue at its cap, the next solve is refused 503 + Retry-After
// before parsing a body or taking a slot; released capacity answers the
// queued work normally.
func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	gate := make(chan struct{})
	setBlockGate(gate)
	svc := mwl.NewService(1)
	adm := newAdmission(svc, 2, 0, 0)
	srv := httptest.NewServer(newHandler(handlerConfig{svc: svc, maxBody: 1 << 20, adm: adm}))
	defer srv.Close()

	g := mwl.Fig1Graph()
	statuses := make([]int, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/solve", "application/json",
				bytes.NewReader(mustJSON(t, mwl.Problem{Method: "test-block", Graph: g, Lambda: 40 + i})))
			if err != nil {
				return
			}
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	waitFor(t, "two solves queued behind the busy worker", func() bool {
		return svc.Queued() >= 2
	})

	resp, err := http.Post(srv.URL+"/v1/solve", "application/json",
		bytes.NewReader(mustJSON(t, mwl.Problem{Method: "test-block", Graph: g, Lambda: 50})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with a full queue, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	if got := adm.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	close(gate)
	wg.Wait()
	for i, s := range statuses {
		if s != http.StatusOK {
			t.Fatalf("queued request %d answered %d after release, want 200", i, s)
		}
	}
}

// TestRateLimitPerClient: the token bucket refuses a client's burst
// overflow with 429 and a whole-second Retry-After, keeps clients
// independent, and exempts peer-forwarded requests (the originating
// peer's client already paid there).
func TestRateLimitPerClient(t *testing.T) {
	adm := newAdmission(mwl.NewService(1), 0, 1, 1)

	mk := func(remote string, forwarded bool) *http.Request {
		r := httptest.NewRequest("POST", "/v1/solve", nil)
		r.RemoteAddr = remote
		if forwarded {
			r.Header.Set(forwardedHeader, "http://peer:1")
		}
		return r
	}
	if !adm.admit(httptest.NewRecorder(), mk("10.0.0.1:1111", false)) {
		t.Fatal("first request refused")
	}
	rec := httptest.NewRecorder()
	if adm.admit(rec, mk("10.0.0.1:2222", false)) {
		t.Fatal("burst overflow admitted")
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	if !adm.admit(httptest.NewRecorder(), mk("10.0.0.2:3333", false)) {
		t.Fatal("unrelated client refused")
	}
	if !adm.admit(httptest.NewRecorder(), mk("10.0.0.1:4444", true)) {
		t.Fatal("peer-forwarded request rate limited")
	}
	if got := adm.limited.Load(); got != 1 {
		t.Fatalf("limited counter = %d, want 1", got)
	}
}

// TestShedOwnerFallsBack: a forwarding peer treats the owner's 503
// (shedding) like unreachability — the client sees a 200 fallback, not
// the owner's overload.
func TestShedOwnerFallsBack(t *testing.T) {
	reps := startCluster(t, 2)
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Graph: g, Lambda: lmin + 2}
	owner, peer := splitByOwner(t, reps, p)

	addr := strings.TrimPrefix(owner.url, "http://")
	owner.srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	shedding := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("worker queue full, shedding load"))
	})}
	go shedding.Serve(ln)
	t.Cleanup(func() { shedding.Close() })

	resp, sol := postProblem(t, peer.url, p)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d with shedding owner, want 200 local fallback", resp.StatusCode)
	}
	if err := sol.Datapath.Verify(g, lib, p.Lambda); err != nil {
		t.Fatalf("fallback datapath illegal: %v", err)
	}
	if got := peer.cl.fallback.Load(); got != 1 {
		t.Fatalf("fallback counter = %d, want 1", got)
	}
	if got := peer.cl.forwarded.Load(); got != 0 {
		t.Fatalf("forwarded counter = %d, want 0", got)
	}
}

// TestNormalizeAddrCanonicalizes: scheme and host are lowercased (the
// path, which may be case-significant, is not), so replicas configured
// with case variants of the same peer list agree on every owner — and
// a peer list that collapses to duplicates is rejected outright.
func TestNormalizeAddrCanonicalizes(t *testing.T) {
	cases := map[string]string{
		" HTTP://Host1:8080/ ": "http://host1:8080",
		"Host2:9090":           "http://host2:9090",
		"HOST:1/Base":          "http://host:1/Base",
		"https://A:1":          "https://a:1",
	}
	for in, want := range cases {
		if got := normalizeAddr(in); got != want {
			t.Fatalf("normalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
	if _, err := newCluster("Host1:8080,host1:8080", "host1:8080"); err == nil {
		t.Fatal("duplicate peers (case variants) accepted")
	}
	cl1, err := newCluster("HostA:1,hostb:2", "hosta:1")
	if err != nil {
		t.Fatal(err)
	}
	cl2, err := newCluster("hosta:1,HostB:2", "hostb:2")
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := cl1.ring.Replicas(), cl2.ring.Replicas()
	if len(r1) != 2 || len(r2) != 2 || r1[0] != r2[0] || r1[1] != r2[1] {
		t.Fatalf("case variants produce different rings: %v vs %v", r1, r2)
	}
}

// TestForwardTruncationFallsBack: an owner response that hits the relay
// byte limit is a transport failure, not a decode error — the batch
// path falls back to a local solve.
func TestForwardTruncationFallsBack(t *testing.T) {
	reps := startCluster(t, 2)
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Graph: g, Lambda: lmin + 2}
	owner, peer := splitByOwner(t, reps, p)
	peer.cl.relayLimit = 64

	addr := strings.TrimPrefix(owner.url, "http://")
	owner.srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	oversized := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(bytes.Repeat([]byte("x"), 200))
	})}
	go oversized.Serve(ln)
	t.Cleanup(func() { oversized.Close() })

	resp, err := http.Post(peer.url+"/v1/solve/batch", "application/json",
		bytes.NewReader(mustJSON(t, mwl.BatchRequest{Problems: []mwl.Problem{p}})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out mwl.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Solution == nil {
		t.Fatalf("batch with oversized owner response: %+v", out.Results)
	}
	if got := peer.cl.fallback.Load(); got != 1 {
		t.Fatalf("fallback counter = %d, want 1 (truncation must engage the fallback)", got)
	}
	if got := peer.cl.forwarded.Load(); got != 0 {
		t.Fatalf("forwarded counter = %d, want 0", got)
	}
	if got := peer.svc.CacheStats().Misses; got != 1 {
		t.Fatalf("peer ran %d local solves, want 1", got)
	}
}

// TestRelayMidBodyErrorCounted: a relay whose owner connection dies
// after the status line is on the wire still counts as forwarded, but
// the truncation is logged and counted instead of passing for success.
func TestRelayMidBodyErrorCounted(t *testing.T) {
	reps := startCluster(t, 2)
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Graph: g, Lambda: lmin + 2}
	owner, peer := splitByOwner(t, reps, p)

	// Replace the owner with a stub that promises a large body and
	// delivers a fraction of it: the peer's copy loop hits an unexpected
	// EOF mid-relay.
	addr := strings.TrimPrefix(owner.url, "http://")
	owner.srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	truncating := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", "4096")
		w.Write([]byte(`{"truncated":`))
	})}
	go truncating.Serve(ln)
	t.Cleanup(func() { truncating.Close() })

	resp, err := http.Post(peer.url+"/v1/solve", "application/json", bytes.NewReader(mustJSON(t, p)))
	if err == nil {
		resp.Body.Close()
	}
	waitFor(t, "relay error counter", func() bool {
		return peer.cl.relayErrors.Load() == 1
	})
	if got := peer.cl.forwarded.Load(); got != 1 {
		t.Fatalf("forwarded counter = %d, want 1 (status line reached the client)", got)
	}
	if got := peer.cl.fallback.Load(); got != 0 {
		t.Fatalf("fallback counter = %d, want 0", got)
	}
}

// TestSolutionEndpointValidation: the internal replication endpoints
// reject malformed keys and bodies.
func TestSolutionEndpointValidation(t *testing.T) {
	svc := mwl.NewService(1)
	srv := httptest.NewServer(newHandler(handlerConfig{svc: svc, maxBody: 1 << 20}))
	defer srv.Close()
	key := strings.Repeat("ab", 32)

	resp, err := http.Get(srv.URL + "/internal/v1/solution/nothex")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/internal/v1/solution/" + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent key: status %d, want 404", resp.StatusCode)
	}

	req, _ := http.NewRequest("PUT", srv.URL+"/internal/v1/solution/"+key, strings.NewReader(`{"area":1}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("datapath-less PUT: status %d, want 400", resp.StatusCode)
	}

	blob := mustJSON(t, mwl.Solution{Method: "test", Datapath: &mwl.Datapath{}, Area: 7})
	req, _ = http.NewRequest("PUT", srv.URL+"/internal/v1/solution/"+key, bytes.NewReader(blob))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid PUT: status %d, want 204", resp.StatusCode)
	}
	if sol, ok := svc.Peek(key); !ok || sol.Area != 7 {
		t.Fatalf("PUT entry not visible to Peek: (%+v, %v)", sol, ok)
	}
}
