package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	mwl "repro"
	"repro/internal/shard"
)

// forwardedHeader marks a request relayed by a peer replica. A replica
// receiving it always solves locally: if peer lists ever disagree, a
// problem is answered by whichever replica the forward landed on rather
// than bouncing between replicas that each believe the other owns it.
const forwardedHeader = "X-Mwld-Forwarded"

// cluster is mwld's horizontal scale-out mode: problems are owned by
// exactly one replica — rendezvous hashing of Problem.Hash() over the
// shared peer list — so each problem is computed (and cached, and
// persisted) once cluster-wide. The owner solves locally; every other
// replica proxies the solve to the owner and relays the result,
// falling back to a local solve when the owner is unreachable.
type cluster struct {
	ring   *shard.Ring
	self   string
	client *http.Client

	// Counters surfaced on /metrics.
	owned     atomic.Uint64 // requests solved locally as the key's owner
	forwarded atomic.Uint64 // requests proxied to their owner
	fallback  atomic.Uint64 // owner unreachable: solved locally instead
}

// newCluster validates the peer list and returns the routing state, or
// nil when peers is empty (single-replica mode).
func newCluster(peers, self string) (*cluster, error) {
	if strings.TrimSpace(peers) == "" {
		if strings.TrimSpace(self) != "" {
			return nil, errors.New("-self given without -peers")
		}
		return nil, nil
	}
	list := strings.Split(peers, ",")
	for i, p := range list {
		list[i] = normalizeAddr(p)
	}
	ring, err := shard.New(list)
	if err != nil {
		return nil, fmt.Errorf("-peers: %w", err)
	}
	self = normalizeAddr(self)
	if self == "" {
		return nil, errors.New("-peers requires -self (this replica's address as it appears in -peers)")
	}
	if !ring.Contains(self) {
		return nil, fmt.Errorf("-self %q is not in -peers %v", self, ring.Replicas())
	}
	return &cluster{
		ring: ring,
		self: self,
		client: &http.Client{
			// Connections to a dead peer must fail fast enough for the
			// local fallback to still answer within the client's patience;
			// the solve itself is governed by the request context.
			Transport: &http.Transport{
				MaxIdleConnsPerHost:   4,
				IdleConnTimeout:       2 * time.Minute,
				ResponseHeaderTimeout: 0,
			},
		},
	}, nil
}

// normalizeAddr trims a peer address and defaults the scheme to http,
// so "-peers host1:8080,host2:8080" works as written.
func normalizeAddr(a string) string {
	a = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(a), "/"))
	if a == "" {
		return ""
	}
	if !strings.Contains(a, "://") {
		a = "http://" + a
	}
	return a
}

// owner returns the replica owning p, or "" when the problem cannot be
// hashed (and so has no owner — it is solved wherever it lands).
func (c *cluster) owner(p mwl.Problem) string {
	key, err := p.Hash()
	if err != nil {
		return ""
	}
	return c.ring.Owner(key)
}

// solver returns the per-problem solve function for batch endpoints:
// owned problems go through the local service, the rest are forwarded
// to their owner with a local fallback. Passed to
// Service.SolveBatchVia, which bounds the fan-out either way.
func (c *cluster) solver(svc *mwl.Service) func(context.Context, mwl.Problem) (mwl.Solution, error) {
	return func(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
		owner := c.owner(p)
		if owner == "" || owner == c.self {
			if owner == c.self {
				c.owned.Add(1)
			}
			return svc.Solve(ctx, p)
		}
		sol, err, relayed := c.forwardSolve(ctx, owner, p)
		if relayed {
			c.forwarded.Add(1)
			return sol, err
		}
		if ctx.Err() != nil {
			return mwl.Solution{}, ctx.Err()
		}
		c.fallback.Add(1)
		return svc.Solve(ctx, p)
	}
}

// forwardSolve proxies one problem to its owner's /v1/solve. relayed
// reports whether the owner answered at all: a transport failure
// (connection refused, owner mid-restart) returns relayed=false and the
// caller solves locally; an HTTP-level answer — success or error — is
// the owner's verdict and is returned as-is.
func (c *cluster) forwardSolve(ctx context.Context, owner string, p mwl.Problem) (sol mwl.Solution, err error, relayed bool) {
	blob, err := json.Marshal(p)
	if err != nil {
		return mwl.Solution{}, err, false
	}
	req, err := http.NewRequestWithContext(ctx, "POST", owner+"/v1/solve", bytes.NewReader(blob))
	if err != nil {
		return mwl.Solution{}, err, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		return mwl.Solution{}, err, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return mwl.Solution{}, err, false
	}
	// A 499 with our own context still live means the owner canceled the
	// solve for its own reasons (it is draining for shutdown): that is
	// the owner being unavailable, not a verdict on the problem.
	if resp.StatusCode == 499 && ctx.Err() == nil {
		return mwl.Solution{}, fmt.Errorf("owner %s draining", owner), false
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(body))
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		infeasible := resp.StatusCode == http.StatusUnprocessableEntity
		if !infeasible {
			msg = fmt.Sprintf("owner %s: %s", owner, msg)
		}
		// FromWire keeps the relayed classification: infeasible verdicts
		// wrap mwl.ErrInfeasible and survive re-Wire()ing in a batch.
		rec := mwl.BatchResultWire{Error: msg, Infeasible: infeasible}
		return mwl.Solution{}, rec.FromWire().Err, true
	}
	if err := json.Unmarshal(body, &sol); err != nil {
		return mwl.Solution{}, fmt.Errorf("owner %s: decoding solution: %w", owner, err), false
	}
	return sol, nil, true
}

// relay proxies a single-solve request body to the owner and copies the
// owner's response — status, headers that matter, body — back to the
// client verbatim, counting it as forwarded. Returns false when the
// owner is unreachable or draining, in which case nothing has been
// written and the caller falls back to a local solve. A requesting
// client that disconnected mid-relay is answered 499 without touching
// the forwarded counter: nothing reached anyone.
func (c *cluster) relay(w http.ResponseWriter, r *http.Request, owner string, body []byte) bool {
	req, err := http.NewRequestWithContext(r.Context(), "POST", owner+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		// The client going away is not the owner's fault; don't burn a
		// local solve on a dead request.
		if r.Context().Err() != nil {
			writeError(w, 499, r.Context().Err())
			return true
		}
		return false
	}
	defer resp.Body.Close()
	// An owner-side cancellation with our client still connected means
	// the owner is draining for shutdown: fall back to a local solve
	// rather than relaying a 499 the client never caused.
	if resp.StatusCode == 499 && r.Context().Err() == nil {
		return false
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	c.forwarded.Add(1)
	return true
}

// writeShardMetrics appends the cluster routing counters to the
// Prometheus exposition.
func (c *cluster) writeShardMetrics(w io.Writer) {
	counters := []struct {
		name, help string
		v          uint64
	}{
		{"mwld_shard_owned_total", "Solve requests handled locally because this replica owns the problem hash.", c.owned.Load()},
		{"mwld_shard_forwarded_total", "Solve requests proxied to the owning replica.", c.forwarded.Load()},
		{"mwld_shard_fallback_total", "Solve requests answered locally because the owning replica was unreachable.", c.fallback.Load()},
	}
	for _, ct := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", ct.name, ct.help, ct.name, ct.name, ct.v)
	}
	fmt.Fprintf(w, "# HELP mwld_shard_replicas Replicas in the configured peer list.\n# TYPE mwld_shard_replicas gauge\nmwld_shard_replicas %d\n", c.ring.Len())
}
