package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	mwl "repro"
	"repro/internal/shard"
)

// forwardedHeader marks a request relayed by a peer replica. A replica
// receiving it always solves locally: if peer lists ever disagree, a
// problem is answered by whichever replica the forward landed on rather
// than bouncing between replicas that each believe the other owns it.
const forwardedHeader = "X-Mwld-Forwarded"

// defaultRelayLimit caps how much of an owner's response body the
// forwarder will buffer before classifying the relay as failed.
const defaultRelayLimit = 64 << 20

// cluster is mwld's horizontal scale-out mode: problems are owned by
// exactly one replica — rendezvous hashing of Problem.Hash() over the
// shared peer list — so each problem is computed (and cached, and
// persisted) once cluster-wide. The owner solves locally; every other
// replica proxies the solve to the first live replica in the key's rank
// order and relays the result, falling back to a local solve (preceded
// by a read-through of the ranked replicas' stores) when no owner is
// reachable.
type cluster struct {
	ring   *shard.Ring
	self   string
	client *http.Client

	health *healthChecker // nil = no active health checking: all peers assumed up
	rep    *replicator    // nil = no write-through replication

	relayLimit   int64         // max owner response bytes a forwarder buffers
	fetchTimeout time.Duration // per-peer budget of a replication read-through

	// Counters surfaced on /metrics.
	owned       atomic.Uint64 // requests solved locally as the key's owner
	forwarded   atomic.Uint64 // requests proxied to their owner
	fallback    atomic.Uint64 // owner unreachable: solved locally instead
	rerouted    atomic.Uint64 // requests routed past a down owner without burning a timeout
	relayErrors atomic.Uint64 // relays that died mid-body after the status line
	readHits    atomic.Uint64 // fallback solves served from a ranked peer's store
	readMisses  atomic.Uint64 // fallback read-throughs that found no copy and recomputed
}

// newCluster validates the peer list and returns the routing state, or
// nil when peers is empty (single-replica mode).
func newCluster(peers, self string) (*cluster, error) {
	if strings.TrimSpace(peers) == "" {
		if strings.TrimSpace(self) != "" {
			return nil, errors.New("-self given without -peers")
		}
		return nil, nil
	}
	list := strings.Split(peers, ",")
	seen := make(map[string]bool, len(list))
	for i, p := range list {
		list[i] = normalizeAddr(p)
		if list[i] == "" {
			continue
		}
		// Rejecting duplicates here (rather than silently deduplicating
		// like shard.New) catches the config error that matters: the
		// same host listed twice, usually via case or scheme variants,
		// which would silently shrink the cluster one replica below
		// what the operator believes is running.
		if seen[list[i]] {
			return nil, fmt.Errorf("-peers: duplicate replica %q after normalization", list[i])
		}
		seen[list[i]] = true
	}
	ring, err := shard.New(list)
	if err != nil {
		return nil, fmt.Errorf("-peers: %w", err)
	}
	self = normalizeAddr(self)
	if self == "" {
		return nil, errors.New("-peers requires -self (this replica's address as it appears in -peers)")
	}
	if !ring.Contains(self) {
		return nil, fmt.Errorf("-self %q is not in -peers %v", self, ring.Replicas())
	}
	return &cluster{
		ring:         ring,
		self:         self,
		relayLimit:   defaultRelayLimit,
		fetchTimeout: 2 * time.Second,
		client: &http.Client{
			// Connections to a dead peer must fail fast enough for the
			// local fallback to still answer within the client's patience;
			// the solve itself is governed by the request context.
			Transport: &http.Transport{
				MaxIdleConnsPerHost:   4,
				IdleConnTimeout:       2 * time.Minute,
				ResponseHeaderTimeout: 0,
			},
		},
	}, nil
}

// normalizeAddr trims a peer address, defaults the scheme to http, and
// lowercases the scheme and host — so "-peers host1:8080,host2:8080"
// works as written, and "Host1:8080" on one replica and "host1:8080" on
// another rendezvous-hash to the same owner instead of silently
// splitting every key's ownership across the cluster.
func normalizeAddr(a string) string {
	a = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(a), "/"))
	if a == "" {
		return ""
	}
	if !strings.Contains(a, "://") {
		a = "http://" + a
	}
	scheme, rest, _ := strings.Cut(a, "://")
	host, path, hasPath := strings.Cut(rest, "/")
	a = strings.ToLower(scheme) + "://" + strings.ToLower(host)
	if hasPath {
		a += "/" + path
	}
	return a
}

// owner returns the replica owning p, or "" when the problem cannot be
// hashed (and so has no owner — it is solved wherever it lands).
func (c *cluster) owner(p mwl.Problem) string {
	key, err := p.Hash()
	if err != nil {
		return ""
	}
	return c.ring.Owner(key)
}

// alive reports whether a replica is believed reachable. Without a
// health checker every peer is assumed up, which reproduces the static
// relay-or-fallback behaviour; self is up by definition.
func (c *cluster) alive(addr string) bool {
	return addr == c.self || c.health == nil || c.health.up(addr)
}

// target returns the replica that should answer p right now: the first
// live replica in the key's rank order — the true owner when it is up,
// otherwise the deterministic failover target — or "" when the problem
// has no canonical hash. Self always qualifies, so a fully partitioned
// replica degrades to solving everything locally.
func (c *cluster) target(p mwl.Problem) string {
	key, err := p.Hash()
	if err != nil {
		return ""
	}
	return c.ring.First(key, c.alive)
}

// routeCounters records the owned/fallback/rerouted counter movement of
// one routed request that is about to be answered locally.
func (c *cluster) routeCounters(target, trueOwner string) {
	if trueOwner != "" && target != trueOwner {
		c.rerouted.Add(1)
	}
	if target == c.self {
		if trueOwner == c.self {
			c.owned.Add(1)
		} else {
			c.fallback.Add(1)
		}
	}
}

// serveLocal answers p on this replica. When this replica is not the
// problem's true owner (it is acting for a down owner, or a forward
// landed here), the ranked replicas' stores are read through before any
// local compute: first the local cache/store, then the live peers in
// rank order via the internal fetch endpoint — so a replica dying does
// not trigger a recomputation storm for the keys it already solved and
// replicated.
func (c *cluster) serveLocal(ctx context.Context, svc *mwl.Service, p mwl.Problem, trueOwner string) (mwl.Solution, error) {
	if trueOwner != "" && trueOwner != c.self {
		if key, err := p.Hash(); err == nil {
			if sol, ok := svc.Peek(key); ok {
				sol.Cached = true
				return sol, nil
			}
			if sol, ok := c.readThrough(ctx, key); ok {
				c.readHits.Add(1)
				svc.Admit(key, sol)
				sol.Cached = true
				return sol, nil
			}
			c.readMisses.Add(1)
		}
	}
	return svc.Solve(ctx, p)
}

// readThrough asks every live ranked peer, owner-first, for its stored
// copy of key. The first hit wins; transport failures and 404s just
// move on to the next candidate.
func (c *cluster) readThrough(ctx context.Context, key string) (mwl.Solution, bool) {
	for _, addr := range c.ring.Rank(key) {
		if addr == c.self || !c.alive(addr) {
			continue
		}
		if sol, ok := c.fetch(ctx, addr, key); ok {
			return sol, true
		}
		if ctx.Err() != nil {
			break
		}
	}
	return mwl.Solution{}, false
}

// fetch retrieves one peer's stored solution for key via the internal
// fetch endpoint, bounded by fetchTimeout so a slow peer cannot stall
// the fallback path it exists to accelerate.
func (c *cluster) fetch(ctx context.Context, addr, key string) (mwl.Solution, bool) {
	fctx, cancel := context.WithTimeout(ctx, c.fetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, "GET", addr+"/internal/v1/solution/"+key, nil)
	if err != nil {
		return mwl.Solution{}, false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.observeFailure(addr)
		return mwl.Solution{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return mwl.Solution{}, false
	}
	var sol mwl.Solution
	if err := json.NewDecoder(io.LimitReader(resp.Body, c.relayLimit)).Decode(&sol); err != nil || sol.Datapath == nil {
		return mwl.Solution{}, false
	}
	return sol, true
}

// observeFailure feeds a transport failure seen on the request path into
// the health state, so a peer that died between probes is marked down by
// the traffic that discovers it rather than only by the next probe.
func (c *cluster) observeFailure(addr string) {
	if c.health != nil {
		c.health.observe(addr, false)
	}
}

// solver returns the per-problem solve function for batch endpoints:
// problems are answered by the first live ranked replica — locally when
// that is us, otherwise forwarded with a read-through-then-recompute
// fallback. Passed to Service.SolveBatchVia, which bounds the fan-out
// either way.
func (c *cluster) solver(svc *mwl.Service) func(context.Context, mwl.Problem) (mwl.Solution, error) {
	return func(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
		trueOwner := c.owner(p)
		target := c.target(p)
		if target == "" || target == c.self {
			c.routeCounters(target, trueOwner)
			return c.serveLocal(ctx, svc, p, trueOwner)
		}
		if trueOwner != "" && target != trueOwner {
			c.rerouted.Add(1)
		}
		sol, err, relayed := c.forwardSolve(ctx, target, p)
		if relayed {
			c.forwarded.Add(1)
			return sol, err
		}
		if ctx.Err() != nil {
			return mwl.Solution{}, ctx.Err()
		}
		c.fallback.Add(1)
		return c.serveLocal(ctx, svc, p, trueOwner)
	}
}

// localSolver is the batch solve function for requests a peer already
// forwarded here: never forwarded onward, but still read-through-aware,
// so a forward that lands on a non-owner (the owner died) serves the
// replicated copy instead of recomputing.
func (c *cluster) localSolver(svc *mwl.Service) func(context.Context, mwl.Problem) (mwl.Solution, error) {
	return func(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
		return c.serveLocal(ctx, svc, p, c.owner(p))
	}
}

// unavailableStatus reports whether an HTTP status from a peer means
// "cannot serve right now" rather than a verdict on the problem: 499 is
// a replica draining for shutdown, 503/429 a replica shedding load.
// Falling back keeps those conditions invisible to clients.
func unavailableStatus(code int) bool {
	return code == 499 || code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests
}

// forwardSolve proxies one problem to target's /v1/solve. relayed
// reports whether the target answered usefully: a transport failure
// (connection refused, mid-restart, truncated response) or an
// unavailable status (draining, shedding) returns relayed=false and the
// caller solves locally; any other HTTP-level answer — success or error
// — is the target's verdict and is returned as-is.
func (c *cluster) forwardSolve(ctx context.Context, target string, p mwl.Problem) (sol mwl.Solution, err error, relayed bool) {
	blob, err := json.Marshal(p)
	if err != nil {
		return mwl.Solution{}, err, false
	}
	req, err := http.NewRequestWithContext(ctx, "POST", target+"/v1/solve", bytes.NewReader(blob))
	if err != nil {
		return mwl.Solution{}, err, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.observeFailure(target)
		}
		return mwl.Solution{}, err, false
	}
	defer resp.Body.Close()
	// Read one byte past the relay limit: a body that reaches it was
	// truncated, and decoding a truncated solution would surface as a
	// confusing JSON error instead of engaging the fallback path.
	body, err := io.ReadAll(io.LimitReader(resp.Body, c.relayLimit+1))
	if err != nil {
		return mwl.Solution{}, err, false
	}
	if int64(len(body)) > c.relayLimit {
		return mwl.Solution{}, fmt.Errorf("owner %s: response exceeds the %d-byte relay limit", target, c.relayLimit), false
	}
	if unavailableStatus(resp.StatusCode) && ctx.Err() == nil {
		return mwl.Solution{}, fmt.Errorf("owner %s unavailable (status %d)", target, resp.StatusCode), false
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(body))
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		infeasible := resp.StatusCode == http.StatusUnprocessableEntity
		if !infeasible {
			msg = fmt.Sprintf("owner %s: %s", target, msg)
		}
		// FromWire keeps the relayed classification: infeasible verdicts
		// wrap mwl.ErrInfeasible and survive re-Wire()ing in a batch.
		rec := mwl.BatchResultWire{Error: msg, Infeasible: infeasible}
		return mwl.Solution{}, rec.FromWire().Err, true
	}
	if err := json.Unmarshal(body, &sol); err != nil {
		return mwl.Solution{}, fmt.Errorf("owner %s: decoding solution: %w", target, err), false
	}
	return sol, nil, true
}

// relay proxies a single-solve request body to target and copies the
// response — status, headers that matter, body — back to the client
// verbatim, counting it as forwarded. Returns false when the target is
// unreachable, draining or shedding, in which case nothing has been
// written and the caller falls back to a local solve. A requesting
// client that disconnected mid-relay is answered 499 without touching
// the forwarded counter: nothing reached anyone.
func (c *cluster) relay(w http.ResponseWriter, r *http.Request, target string, body []byte) bool {
	req, err := http.NewRequestWithContext(r.Context(), "POST", target+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		// The client going away is not the owner's fault; don't burn a
		// local solve on a dead request.
		if r.Context().Err() != nil {
			writeError(w, 499, r.Context().Err())
			return true
		}
		c.observeFailure(target)
		return false
	}
	defer resp.Body.Close()
	// An owner that cannot serve right now — draining for shutdown (499
	// with our client still connected) or shedding load (503/429) — is
	// unavailable, not a verdict: fall back to a local solve rather than
	// relaying an error the client never caused.
	if unavailableStatus(resp.StatusCode) && r.Context().Err() == nil {
		return false
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// The status line is already on the wire, so this relay must
		// count as forwarded either way — but a copy that died mid-body
		// handed the client a truncated response indistinguishable from
		// success unless it is made visible here.
		c.relayErrors.Add(1)
		log.Printf("relay from %s died mid-body: %v", target, err)
	}
	c.forwarded.Add(1)
	return true
}

// writeShardMetrics appends the cluster routing counters to the
// Prometheus exposition.
func (c *cluster) writeShardMetrics(w io.Writer) {
	counters := []struct {
		name, help string
		v          uint64
	}{
		{"mwld_shard_owned_total", "Solve requests handled locally because this replica owns the problem hash.", c.owned.Load()},
		{"mwld_shard_forwarded_total", "Solve requests proxied to the owning replica.", c.forwarded.Load()},
		{"mwld_shard_fallback_total", "Solve requests answered locally because the owning replica was unreachable.", c.fallback.Load()},
		{"mwld_shard_rerouted_total", "Solve requests routed past a down owner to the next ranked replica before burning a connection timeout.", c.rerouted.Load()},
		{"mwld_shard_relay_errors_total", "Relays that failed after the status line was written, handing the client a truncated response.", c.relayErrors.Load()},
		{"mwld_readthrough_hits_total", "Fallback solves served from a ranked peer's store instead of recomputing.", c.readHits.Load()},
		{"mwld_readthrough_misses_total", "Fallback read-throughs that found no replicated copy and recomputed locally.", c.readMisses.Load()},
	}
	for _, ct := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", ct.name, ct.help, ct.name, ct.name, ct.v)
	}
	fmt.Fprintf(w, "# HELP mwld_shard_replicas Replicas in the configured peer list.\n# TYPE mwld_shard_replicas gauge\nmwld_shard_replicas %d\n", c.ring.Len())
	if c.health != nil {
		c.health.writeMetrics(w)
	}
	if c.rep != nil {
		c.rep.writeMetrics(w)
	}
}
