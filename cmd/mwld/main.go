// Command mwld serves multiple-wordlength datapath allocation over HTTP
// using the v1 JSON wire schema: POST a Problem, receive a Solution.
// Solves run through an mwl.Service, so concurrent requests are bounded
// by a worker pool, repeated identical problems are served from a
// bounded LRU cache, and — with -store-dir — from a persistent result
// store that survives restarts. Request cancellation propagates into
// the solver hot loops, and shutdown cancels in-flight solves so
// clients see 499 instead of a hung connection.
//
// Endpoints:
//
//	POST /v1/solve         Problem JSON in, Solution JSON out
//	POST /v1/solve/batch   {"problems": [...]} in, {"results": [...]} out
//	POST /v1/solve/stream  {"problems": [...]} in, NDJSON out: one
//	                       index-tagged result per line, flushed as each
//	                       solve completes (completion order)
//	GET  /v1/methods       registered method names with descriptions
//	GET  /metrics          Prometheus text: solves, errors, latency
//	                       histograms, cache/store counters, pool gauges,
//	                       shard routing counters
//	GET  /healthz          liveness probe
//
// With -peers (and -self), mwld runs as one replica of a cluster:
// problems are sharded by their canonical hash with rendezvous hashing,
// the owning replica computes and persists each solution, and the other
// replicas proxy solves to the owner and relay its answer — falling
// back to a local solve if the owner is unreachable. The cluster is
// self-healing: each replica probes its peers' /healthz (-health-*) and
// routes around a down owner before burning a connection timeout;
// solved entries are replicated asynchronously to the next ranked
// replicas (-replicate), and a replica acting for a dead owner serves
// the replicated copy — fetched via the internal
// /internal/v1/solution/{key} endpoints — instead of recomputing.
// Admission control (-rate, -burst, -queue-depth) sheds excess load
// with 429/503 + Retry-After before it queues.
//
// Usage:
//
//	mwld -addr :8080 -workers 8 -cache-entries 4096 -store-dir /var/lib/mwld
//	mwld -addr :8081 -peers host1:8080,host2:8081 -self host2:8081
//	curl -s localhost:8080/v1/methods
//	tgff -n 9 | jq '{graph: ., lambda: 40, method: "dpalloc"}' \
//	    | curl -s -d @- localhost:8080/v1/solve
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	mwl "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mwld: ")
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
		maxBody      = flag.Int64("maxbody", 16<<20, "max request body bytes")
		batchMax     = flag.Int("batch-max", defaultBatchMax, "max problems per batch/stream request (<= 0 = unlimited)")
		maxNodes     = flag.Int("max-nodes", defaultMaxNodes, "max operations per problem graph (<= 0 = unlimited)")
		cacheEntries = flag.Int("cache-entries", mwl.DefaultCacheEntries, "in-memory solution cache entry cap (negative = unlimited)")
		cacheBytes   = flag.Int64("cache-bytes", 256<<20, "approximate in-memory solution cache byte cap (0 = unlimited)")
		storeDir     = flag.String("store-dir", "", "persistent result store directory (empty = no persistence)")
		peers        = flag.String("peers", "", "comma-separated replica addresses of the whole cluster, this one included (empty = single replica)")
		self         = flag.String("self", "", "this replica's address exactly as it appears in -peers")
		verify       = flag.Bool("verify", false, "validate every solution with mwl.Verify before serving; re-verify store entries on load")
		replicate    = flag.Int("replicate", 1, "copies of each solved entry across the cluster, the solver's own included (1 = no replication)")
		healthEvery  = flag.Duration("health-interval", time.Second, "gap between peer health probes in cluster mode (0 = no active health checking)")
		healthRTT    = flag.Duration("health-timeout", 500*time.Millisecond, "per-probe round-trip timeout")
		healthFails  = flag.Int("health-fails", 3, "consecutive failed probes marking a peer down")
		healthPasses = flag.Int("health-passes", 2, "consecutive successful probes marking a down peer up again")
		queueDepth   = flag.Int("queue-depth", 1024, "shed solve requests with 503 when this many solves already wait for a worker (0 = never shed)")
		rate         = flag.Float64("rate", 0, "per-client solve rate limit in requests/second (0 = unlimited)")
		burst        = flag.Int("burst", 0, "per-client burst allowance above -rate (minimum 1)")
	)
	flag.Parse()

	cl, err := newCluster(*peers, *self)
	if err != nil {
		log.Fatal(err)
	}

	opts := mwl.ServiceOptions{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		CacheBytes:   *cacheBytes,
		Verify:       *verify,
	}
	if *storeDir != "" {
		fs, err := mwl.NewFileStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		if n, err := fs.Len(); err == nil {
			log.Printf("result store %s: %d entries", *storeDir, n)
		}
		opts.Store = fs
	}

	var rep *replicator
	if cl != nil {
		rep = cl.attachReplicator(*replicate)
	}
	if rep != nil {
		opts.OnSolved = rep.onSolved
	}
	svc := mwl.NewServiceWith(opts)

	var hc *healthChecker
	if cl != nil && *healthEvery > 0 {
		hc = cl.attachHealth(healthConfig{
			interval:  *healthEvery,
			timeout:   *healthRTT,
			failAfter: *healthFails,
			passAfter: *healthPasses,
		})
	}

	srv := newServer(*addr, handlerConfig{
		svc:      svc,
		maxBody:  *maxBody,
		batchMax: *batchMax,
		maxNodes: *maxNodes,
		cluster:  cl,
		adm:      newAdmission(svc, *queueDepth, *rate, *burst),
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	if cl != nil {
		log.Printf("cluster mode: self %s, peers %v, replicate %d, health probes every %v",
			cl.self, cl.ring.Replicas(), *replicate, *healthEvery)
	}
	log.Printf("serving on %s (methods: %v)", *addr, mwl.Methods())
	err = srv.ListenAndServe()
	if hc != nil {
		hc.close()
	}
	if rep != nil {
		rep.close()
	}
	if !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// defaultBatchMax is the default per-request problem-count cap of the
// batch and stream endpoints. -maxbody caps request bytes, but many
// tiny problems fit under a byte cap while still exploding the fan-out
// and the response size; the count cap closes that hole.
const defaultBatchMax = 1024

// defaultMaxNodes is the default per-problem operation cap. Solver
// effort grows superlinearly in operations, so a single huge graph can
// stall a worker for minutes while staying far under -maxbody; the node
// cap makes admitting such problems a deliberate operator choice.
const defaultMaxNodes = 10000

// handlerConfig assembles a route table: the solve service plus the
// request caps and the optional cluster routing state.
type handlerConfig struct {
	svc      *mwl.Service
	maxBody  int64
	batchMax int        // max problems per batch/stream request; <= 0 = unlimited
	maxNodes int        // max operations per problem graph; <= 0 = unlimited
	cluster  *cluster   // nil = single-replica mode
	adm      *admission // nil = no admission control
}

// newServer assembles the mwld HTTP server. Every request context
// descends from a base context that RegisterOnShutdown cancels, so
// srv.Shutdown aborts in-flight solves — they unwind through the solver
// ctx polls and answer 499 — instead of letting the shutdown grace
// period expire around still-running work.
func newServer(addr string, cfg handlerConfig) *http.Server {
	baseCtx, cancelBase := context.WithCancel(context.Background())
	srv := &http.Server{
		Addr:        addr,
		Handler:     newHandler(cfg),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
		// Bound how long a client may dribble headers/body so stalled
		// connections cannot pile up; solves themselves are not write-
		// capped, since a legitimate ILP run can hold the handler for
		// its whole (default 30-minute) budget.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	srv.RegisterOnShutdown(cancelBase)
	return srv
}

// newHandler builds the mwld route table around a solve service.
func newHandler(cfg handlerConfig) http.Handler {
	svc, maxBody, cl := cfg.svc, cfg.maxBody, cfg.cluster
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/methods", func(w http.ResponseWriter, r *http.Request) {
		type method struct {
			Name        string `json:"name"`
			Description string `json:"description,omitempty"`
		}
		var out struct {
			Methods []method `json:"methods"`
		}
		for _, name := range mwl.Methods() {
			out.Methods = append(out.Methods, method{Name: name, Description: mwl.Describe(name)})
		}
		writeJSON(w, http.StatusOK, out)
	})
	// routed reports whether cluster routing applies to this request: it
	// is off in single-replica mode and for requests a peer already
	// forwarded (which must be answered locally, never bounced onward).
	routed := func(r *http.Request) bool {
		return cl != nil && r.Header.Get(forwardedHeader) == ""
	}
	// batchSolve is the per-problem solve of the batch endpoints:
	// straight through the service, shard-routed in cluster mode, or —
	// for requests a peer already forwarded here — a local solve that is
	// still read-through-aware, so a forward rerouted past a dead owner
	// serves the replicated copy instead of recomputing it.
	batchSolve := func(r *http.Request) func(context.Context, mwl.Problem) (mwl.Solution, error) {
		if cl == nil {
			return nil // SolveBatchVia defaults to svc.Solve
		}
		if routed(r) {
			return cl.solver(svc)
		}
		return cl.localSolver(svc)
	}
	// admitSize enforces the per-problem node cap; a violation is the
	// same class of refusal as an oversized batch (413 with JSON body).
	admitSize := func(w http.ResponseWriter, p mwl.Problem) bool {
		if cfg.maxNodes <= 0 {
			return true
		}
		if nodes, _ := p.Size(); nodes > cfg.maxNodes {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("problem graph of %d operations exceeds the per-problem cap of %d; shrink the graph or raise -max-nodes", nodes, cfg.maxNodes))
			return false
		}
		return true
	}
	// decodeBatch parses and caps a batch/stream request, writing the
	// error response itself when the request is unusable.
	decodeBatch := func(w http.ResponseWriter, r *http.Request) (mwl.BatchRequest, bool) {
		var req mwl.BatchRequest
		if err := decodeBody(w, r, maxBody, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return req, false
		}
		if len(req.Problems) == 0 {
			writeError(w, http.StatusBadRequest, errors.New(`batch request needs a non-empty "problems" array`))
			return req, false
		}
		if cfg.batchMax > 0 && len(req.Problems) > cfg.batchMax {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch of %d problems exceeds the per-request cap of %d; split the batch or raise -batch-max", len(req.Problems), cfg.batchMax))
			return req, false
		}
		for _, p := range req.Problems {
			if !admitSize(w, p) {
				return req, false
			}
		}
		return req, true
	}

	// writeSolve renders one solve outcome.
	writeSolve := func(w http.ResponseWriter, sol mwl.Solution, err error) {
		if err != nil {
			writeError(w, solveStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, sol)
	}
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		if !cfg.adm.admit(w, r) {
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
			return
		}
		var p mwl.Problem
		if err := decodeJSON(body, &p); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if !admitSize(w, p) {
			return
		}
		if cl == nil {
			sol, err := svc.Solve(r.Context(), p)
			writeSolve(w, sol, err)
			return
		}
		trueOwner := cl.owner(p)
		if routed(r) && trueOwner != "" {
			// Route to the first live ranked replica: the true owner when
			// it is healthy, otherwise its failover successor — skipping a
			// known-down owner before burning a connection timeout on it.
			if target := cl.target(p); target != "" && target != cl.self {
				if target != trueOwner {
					cl.rerouted.Add(1)
				}
				if cl.relay(w, r, target, body) {
					return
				}
				cl.fallback.Add(1)
			} else {
				cl.routeCounters(target, trueOwner)
			}
		}
		sol, err := cl.serveLocal(r.Context(), svc, p, trueOwner)
		writeSolve(w, sol, err)
	})
	// The internal solution endpoints are the cluster's replication
	// plane: peers PUT copies of freshly solved entries here, and a
	// replica acting for a down owner GETs the ranked replicas' copies
	// before recomputing. Keys are canonical problem hashes.
	validKey := func(key string) bool {
		if len(key) != 64 {
			return false
		}
		for i := 0; i < len(key); i++ {
			c := key[i]
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
				return false
			}
		}
		return true
	}
	mux.HandleFunc("GET /internal/v1/solution/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !validKey(key) {
			writeError(w, http.StatusBadRequest, errors.New("key must be a 64-character lowercase hex problem hash"))
			return
		}
		sol, ok := svc.Peek(key)
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no stored solution for key"))
			return
		}
		writeJSON(w, http.StatusOK, sol)
	})
	mux.HandleFunc("PUT /internal/v1/solution/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !validKey(key) {
			writeError(w, http.StatusBadRequest, errors.New("key must be a 64-character lowercase hex problem hash"))
			return
		}
		var sol mwl.Solution
		if err := decodeBody(w, r, maxBody, &sol); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if sol.Datapath == nil {
			writeError(w, http.StatusBadRequest, errors.New("replicated solution has no datapath"))
			return
		}
		svc.Admit(key, sol)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/solve/batch", func(w http.ResponseWriter, r *http.Request) {
		if !cfg.adm.admit(w, r) {
			return
		}
		req, ok := decodeBatch(w, r)
		if !ok {
			return
		}
		out := make([]mwl.BatchResult, len(req.Problems))
		svc.SolveBatchVia(r.Context(), req.Problems, batchSolve(r), func(i int, res mwl.BatchResult) {
			out[i] = res
		})
		// Per-problem failures ride inside the 200 response; only a
		// canceled request fails the batch as a whole.
		if err := r.Context().Err(); err != nil {
			writeError(w, solveStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, mwl.WireBatch(out))
	})
	mux.HandleFunc("POST /v1/solve/stream", func(w http.ResponseWriter, r *http.Request) {
		if !cfg.adm.admit(w, r) {
			return
		}
		req, ok := decodeBatch(w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		if flusher != nil {
			// Push the status line out now: a client must learn the stream
			// is live before the first (possibly slow) solve completes.
			flusher.Flush()
		}
		enc := json.NewEncoder(w)
		// SolveBatchFunc serializes the callback, so the encoder needs no
		// extra locking; each record is flushed so the client sees every
		// result the moment its solve completes, not when the batch ends.
		// A client disconnect cancels r.Context(), which stops unstarted
		// solves and aborts in-flight ones.
		svc.SolveBatchVia(r.Context(), req.Problems, batchSolve(r), func(i int, res mwl.BatchResult) {
			if err := enc.Encode(mwl.WireStream(i, res)); err != nil {
				return // client gone; ctx cancellation drains the rest
			}
			if flusher != nil {
				flusher.Flush()
			}
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, svc.Metrics())
		fmt.Fprintf(w, "# HELP mwld_queue_depth Solves waiting for a worker slot right now.\n# TYPE mwld_queue_depth gauge\nmwld_queue_depth %d\n", svc.Queued())
		cfg.adm.writeMetrics(w)
		if cl != nil {
			cl.writeShardMetrics(w)
		}
	})
	return mux
}

// decodeBody decodes one JSON request body with the size cap applied,
// rejecting trailing garbage after the document.
func decodeBody(w http.ResponseWriter, r *http.Request, maxBody int64, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		return fmt.Errorf("reading request: %w", err)
	}
	return decodeJSON(body, v)
}

// decodeJSON decodes one already-read JSON document, rejecting trailing
// garbage. The single-solve endpoint reads its body up front so cluster
// mode can relay the raw bytes to the owner verbatim.
func decodeJSON(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return errors.New("decoding request: trailing data after JSON document")
	}
	return nil
}

// writeMetrics renders a Service metrics snapshot in the Prometheus
// text exposition format (expfmt), with no dependency on a client
// library: counters, per-method latency histograms, cache/store
// counters and worker-pool gauges.
func writeMetrics(w io.Writer, m mwl.Metrics) {
	bounds := mwl.LatencyBucketBounds()

	fmt.Fprintln(w, "# HELP mwld_solves_total Solver runs by method (cache hits excluded).")
	fmt.Fprintln(w, "# TYPE mwld_solves_total counter")
	for _, mm := range m.Methods {
		fmt.Fprintf(w, "mwld_solves_total{method=%q} %d\n", mm.Method, mm.Solves)
	}
	fmt.Fprintln(w, "# HELP mwld_solve_errors_total Failed solver runs by method, cancellations included.")
	fmt.Fprintln(w, "# TYPE mwld_solve_errors_total counter")
	for _, mm := range m.Methods {
		fmt.Fprintf(w, "mwld_solve_errors_total{method=%q} %d\n", mm.Method, mm.Errors)
	}
	fmt.Fprintln(w, "# HELP mwld_solve_duration_seconds Solve wall-clock latency by method.")
	fmt.Fprintln(w, "# TYPE mwld_solve_duration_seconds histogram")
	for _, mm := range m.Methods {
		for i, le := range bounds {
			fmt.Fprintf(w, "mwld_solve_duration_seconds_bucket{method=%q,le=%q} %d\n",
				mm.Method, promFloat(le.Seconds()), mm.Buckets[i])
		}
		fmt.Fprintf(w, "mwld_solve_duration_seconds_bucket{method=%q,le=\"+Inf\"} %d\n",
			mm.Method, mm.Buckets[len(mm.Buckets)-1])
		fmt.Fprintf(w, "mwld_solve_duration_seconds_sum{method=%q} %s\n",
			mm.Method, promFloat(mm.LatencySum.Seconds()))
		fmt.Fprintf(w, "mwld_solve_duration_seconds_count{method=%q} %d\n",
			mm.Method, mm.Buckets[len(mm.Buckets)-1])
	}

	c := m.Cache
	counters := []struct {
		name, help string
		v          uint64
	}{
		{"mwld_cache_hits_total", "Solves served from the in-memory cache or by joining an in-flight duplicate.", c.Hits},
		{"mwld_cache_misses_total", "Solves that appointed a leader (ran the solver or hit the store).", c.Misses},
		{"mwld_cache_evictions_total", "LRU entries dropped to enforce the entry/byte caps.", c.Evictions},
		{"mwld_store_hits_total", "Persistent-store hits on cache misses.", c.StoreHits},
		{"mwld_store_misses_total", "Persistent-store misses on cache misses.", c.StoreMisses},
		{"mwld_store_put_errors_total", "Failed persistent-store write-throughs (best-effort).", c.StorePutErrors},
		{"mwld_verify_failures_total", "Solutions rejected by mwl.Verify (corrupted store entries and misbehaving solvers).", c.VerifyFailures},
	}
	for _, ct := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", ct.name, ct.help, ct.name, ct.name, ct.v)
	}
	if wins := mwl.PortfolioWins(); len(wins) > 0 {
		fmt.Fprintln(w, "# HELP mwld_portfolio_wins_total Portfolio race wins by method.")
		fmt.Fprintln(w, "# TYPE mwld_portfolio_wins_total counter")
		names := make([]string, 0, len(wins))
		for name := range wins {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "mwld_portfolio_wins_total{method=%q} %d\n", name, wins[name])
		}
	}
	gauges := []struct {
		name, help string
		v          int64
	}{
		{"mwld_cache_entries", "Solutions held in the in-memory LRU.", int64(c.Entries)},
		{"mwld_cache_bytes", "Approximate in-memory LRU footprint in bytes.", c.Bytes},
		{"mwld_inflight_solves", "Solves currently running or joinable by duplicates.", int64(c.InFlight)},
		{"mwld_workers", "Worker-pool size.", int64(m.Workers)},
		{"mwld_workers_busy", "Worker-pool slots occupied right now.", int64(m.WorkersBusy)},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.v)
	}
}

// promFloat renders a float the way Prometheus text format expects:
// plain decimal, no exponent for the magnitudes we emit.
func promFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	// %g may pick exponent form for 1e-05 etc.; none of our bucket
	// bounds need it, but normalise defensively.
	if strings.ContainsAny(s, "eE") {
		s = fmt.Sprintf("%f", f)
	}
	return s
}

// solveStatus maps solve errors onto HTTP statuses: unknown methods and
// malformed problems are the client's fault (400); infeasible
// constraints are a well-formed problem with no answer (422); a
// canceled request gets 499 in the access-log sense (the client is
// gone either way); anything else is a solver-internal fault (500).
func solveStatus(err error) int {
	switch {
	case errors.Is(err, mwl.ErrUnknownMethod), errors.Is(err, mwl.ErrInvalidProblem),
		errors.Is(err, mwl.ErrVerify):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled):
		return 499
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case mwl.IsInfeasible(err):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status line is already on the wire; all we can do is make
		// the failure visible instead of silently truncating the body.
		log.Printf("writing %d response: %v", status, err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
