// Command mwld serves multiple-wordlength datapath allocation over HTTP
// using the v1 JSON wire schema: POST a Problem, receive a Solution.
// Solves run through an mwl.Service, so concurrent requests are bounded
// by a worker pool and repeated identical problems are served from the
// memo. Request cancellation propagates into the solver hot loops.
//
// Endpoints:
//
//	POST /v1/solve    Problem JSON in, Solution JSON out
//	GET  /v1/methods  registered method names with descriptions
//	GET  /healthz     liveness probe
//
// Usage:
//
//	mwld -addr :8080 -workers 8
//	curl -s localhost:8080/v1/methods
//	tgff -n 9 | jq '{graph: ., lambda: 40, method: "dpalloc"}' \
//	    | curl -s -d @- localhost:8080/v1/solve
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	mwl "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mwld: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
		maxBody = flag.Int64("maxbody", 16<<20, "max request body bytes")
	)
	flag.Parse()

	srv := &http.Server{
		Addr:    *addr,
		Handler: newHandler(mwl.NewService(*workers), *maxBody),
		// Bound how long a client may dribble headers/body so stalled
		// connections cannot pile up; solves themselves are not write-
		// capped, since a legitimate ILP run can hold the handler for
		// its whole (default 30-minute) budget.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()

	log.Printf("serving on %s (methods: %v)", *addr, mwl.Methods())
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// newHandler builds the mwld route table around a solve service.
func newHandler(svc *mwl.Service, maxBody int64) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/methods", func(w http.ResponseWriter, r *http.Request) {
		type method struct {
			Name        string `json:"name"`
			Description string `json:"description,omitempty"`
		}
		var out struct {
			Methods []method `json:"methods"`
		}
		for _, name := range mwl.Methods() {
			out.Methods = append(out.Methods, method{Name: name, Description: mwl.Describe(name)})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		var p mwl.Problem
		body := http.MaxBytesReader(w, r.Body, maxBody)
		if err := json.NewDecoder(body).Decode(&p); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding problem: %w", err))
			return
		}
		sol, err := svc.Solve(r.Context(), p)
		if err != nil {
			writeError(w, solveStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, sol)
	})
	return mux
}

// solveStatus maps solve errors onto HTTP statuses: unknown methods and
// malformed problems are the client's fault (400); infeasible
// constraints are a well-formed problem with no answer (422); a
// canceled request gets 499 in the access-log sense (the client is
// gone either way); anything else is a solver-internal fault (500).
func solveStatus(err error) int {
	switch {
	case errors.Is(err, mwl.ErrUnknownMethod), errors.Is(err, mwl.ErrInvalidProblem):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled):
		return 499
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case mwl.IsInfeasible(err):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
