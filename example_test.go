package mwl_test

import (
	"context"
	"fmt"
	"log"

	mwl "repro"
)

// ExampleSolve builds the small system y = (a·b) + (c·d), where one
// product is wide and one narrow, and allocates it with latency slack:
// the heuristic implements the narrow multiplication in the wide
// multiplier (slower there, but the slack absorbs it), saving the area
// of a dedicated small unit.
func ExampleSolve() {
	g := mwl.NewGraph()
	m1 := g.AddOp("m1", mwl.Mul, mwl.MulSig(16, 14))
	m2 := g.AddOp("m2", mwl.Mul, mwl.MulSig(8, 6))
	s := g.AddOp("s", mwl.Add, mwl.AddSig(24))
	if err := g.AddDep(m1, s); err != nil {
		log.Fatal(err)
	}
	if err := g.AddDep(m2, s); err != nil {
		log.Fatal(err)
	}

	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := mwl.Solve(context.Background(), mwl.Problem{Graph: g, Lambda: lmin + 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multipliers allocated: %d\n", countMuls(sol.Datapath))
	fmt.Printf("area: %d\n", sol.Area)
	// Output:
	// multipliers allocated: 1
	// area: 248
}

func countMuls(dp *mwl.Datapath) int {
	n := 0
	for _, inst := range dp.Instances {
		if inst.Kind.Class == mwl.Mul {
			n++
		}
	}
	return n
}

// ExampleDeriveWordlengths shows the error-specification flow: a
// full-precision multiply-accumulate is trimmed against an output-error
// budget before allocation.
func ExampleDeriveWordlengths() {
	g := mwl.NewGraph()
	m := g.AddOp("m", mwl.Mul, mwl.MulSig(16, 16))
	a := g.AddOp("a", mwl.Add, mwl.AddSig(24))
	if err := g.AddDep(m, a); err != nil {
		log.Fatal(err)
	}

	lib := mwl.DefaultLibrary()
	res, err := mwl.DeriveWordlengths(g, lib, mwl.ErrorSpecConfig{
		MaxAbsError: 1.0 / 256, // keep 8 good fractional bits
		Seed:        1,
		Vectors:     16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dedicated area %d -> %d\n", res.AreaBefore, res.AreaAfter)
	fmt.Printf("budget met: %v\n", res.MeasuredError <= 1.0/256)
	// Output:
	// dedicated area 280 -> 91
	// budget met: true
}
