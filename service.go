package mwl

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Service is a concurrent solve front end: it bounds the number of
// solves running at once with a worker pool, deduplicates identical
// problems that are in flight simultaneously, and memoizes successful
// solutions keyed by the canonical problem hash, so a repeated identical
// Problem is served from memory. A Service is safe for concurrent use;
// the zero value is not usable — construct one with NewService.
type Service struct {
	sem chan struct{} // worker-pool slots

	mu   sync.Mutex
	memo map[string]*memoEntry
}

// memoEntry is one memoized (or in-flight) solve. done is closed when
// sol/err are valid; failed entries are evicted so later calls retry.
type memoEntry struct {
	done chan struct{}
	sol  Solution
	err  error
}

// NewService returns a Service running at most workers solves
// concurrently; workers <= 0 means GOMAXPROCS.
func NewService(workers int) *Service {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Service{
		sem:  make(chan struct{}, workers),
		memo: make(map[string]*memoEntry),
	}
}

// Solve solves one problem through the worker pool. Identical problems
// (by canonical hash) share one solve: concurrent duplicates wait for
// the leader, and later duplicates are served from the memo with
// Solution.Cached set. Problems with an in-memory Lib override have no
// canonical hash and are solved directly, without memoization.
func (s *Service) Solve(ctx context.Context, p Problem) (Solution, error) {
	key, err := p.Hash()
	if err != nil {
		return s.solveOne(ctx, p)
	}

	var e *memoEntry
	for e == nil {
		s.mu.Lock()
		prior, ok := s.memo[key]
		if !ok {
			e = &memoEntry{done: make(chan struct{})}
			s.memo[key] = e
			s.mu.Unlock()
			break // this call is the leader
		}
		s.mu.Unlock()
		select {
		case <-prior.done:
			if prior.err == nil {
				sol := prior.sol
				sol.Cached = true
				return sol, nil
			}
			// The leader failed and its entry is gone. Its cancellation
			// or deadline is not ours: with a live context, take over as
			// the next leader instead of surfacing a stranger's ctx.Err.
			if errors.Is(prior.err, context.Canceled) || errors.Is(prior.err, context.DeadlineExceeded) {
				if ctx.Err() != nil {
					return Solution{}, ctx.Err()
				}
				continue
			}
			return Solution{}, prior.err
		case <-ctx.Done():
			return Solution{}, ctx.Err()
		}
	}

	e.sol, e.err = s.solveOne(ctx, p)
	if e.err != nil {
		// Do not cache failures: a cancellation or deadline is the
		// caller's, not the problem's.
		s.mu.Lock()
		delete(s.memo, key)
		s.mu.Unlock()
	}
	close(e.done)
	return e.sol, e.err
}

// solveOne runs one solve inside a worker-pool slot.
func (s *Service) solveOne(ctx context.Context, p Problem) (Solution, error) {
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return Solution{}, ctx.Err()
	}
	return Solve(ctx, p)
}

// BatchResult is one outcome of SolveBatch; exactly one of Solution
// being valid (Err == nil) or Err holds.
type BatchResult struct {
	Solution Solution
	Err      error
}

// SolveBatch solves every problem, running up to the Service's worker
// count concurrently, and returns the outcomes in input order. Identical
// problems within (or across) batches solve once and share the result.
func (s *Service) SolveBatch(ctx context.Context, problems []Problem) []BatchResult {
	out := make([]BatchResult, len(problems))
	var wg sync.WaitGroup
	for i, p := range problems {
		wg.Add(1)
		go func(i int, p Problem) {
			defer wg.Done()
			out[i].Solution, out[i].Err = s.Solve(ctx, p)
		}(i, p)
	}
	wg.Wait()
	return out
}

// CacheSize reports how many solutions the memo currently holds
// (including in-flight entries).
func (s *Service) CacheSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.memo)
}

// ClearCache drops every memoized solution. In-flight solves complete
// normally but are forgotten.
func (s *Service) ClearCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.memo = make(map[string]*memoEntry)
}
