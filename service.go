package mwl

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCacheEntries is the LRU entry cap applied when ServiceOptions
// leaves CacheEntries zero. It keeps a Service bounded by default: the
// pre-LRU behaviour of growing without limit is available explicitly
// with CacheEntries < 0.
const DefaultCacheEntries = 4096

// ServiceOptions configures a Service.
type ServiceOptions struct {
	// Workers bounds concurrent solves; <= 0 means GOMAXPROCS.
	Workers int
	// CacheEntries caps the in-memory LRU entry count. Zero applies
	// DefaultCacheEntries; negative disables the cap.
	CacheEntries int
	// CacheBytes caps the LRU's approximate memory footprint (JSON-
	// encoded solution size). <= 0 disables the byte cap.
	CacheBytes int64
	// Store, when non-nil, persists solved problems and is consulted on
	// cache misses, so a restarted process re-serves previous answers
	// (Solution.Cached set) instead of recomputing them.
	Store Store
	// Verify runs mwl.Verify on every solution before it is served:
	// fresh solves fail with an ErrVerify-wrapped diagnostic when a
	// solver misbehaves, and store entries are re-verified once on load,
	// so a corrupted-but-parseable entry (e.g. a bit-flipped area) is
	// recomputed and repaired instead of served. Solutions entering the
	// in-memory LRU have passed verification, so cache hits stay cheap.
	Verify bool
	// OnSolved, when non-nil, is called after every fresh successful
	// solve (cache hits, store hits and failures excluded) with the
	// problem's canonical hash and its solution. cmd/mwld uses it as the
	// write-through hook of cluster replication; the callback runs on
	// the solving goroutine, so implementations that do I/O should hand
	// the work off rather than block the solve.
	OnSolved func(key string, sol Solution)
}

// Service is a concurrent solve front end: it bounds the number of
// solves running at once with a worker pool, deduplicates identical
// problems that are in flight simultaneously, and caches successful
// solutions keyed by the canonical problem hash in a bounded LRU,
// optionally layered over a persistent Store. A Service is safe for
// concurrent use; the zero value is not usable — construct one with
// NewService or NewServiceWith.
type Service struct {
	sem      chan struct{} // worker-pool slots
	store    Store         // optional persistence under the LRU
	verify   bool          // validate every solution before serving it
	onSolved func(key string, sol Solution)

	queued atomic.Int64 // solves waiting for a worker slot right now

	mu       sync.Mutex
	cache    *lruCache             // completed solutions, bounded
	inflight map[string]*memoEntry // running solves, never evicted

	stats   CacheStats // counter fields only; gauges derived on demand
	methods map[string]*methodMetrics
}

// memoEntry is one in-flight solve. done is closed when sol/err are
// valid; waiters with identical problems block on it instead of solving.
type memoEntry struct {
	done chan struct{}
	sol  Solution
	err  error
}

// NewService returns a Service running at most workers solves
// concurrently with default cache bounds and no persistent store;
// workers <= 0 means GOMAXPROCS.
func NewService(workers int) *Service {
	return NewServiceWith(ServiceOptions{Workers: workers})
}

// NewServiceWith returns a Service configured by opts.
func NewServiceWith(opts ServiceOptions) *Service {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	entries := opts.CacheEntries
	if entries == 0 {
		entries = DefaultCacheEntries
	}
	if entries < 0 {
		entries = 0 // unlimited
	}
	bytes := opts.CacheBytes
	if bytes < 0 {
		bytes = 0
	}
	return &Service{
		sem:      make(chan struct{}, workers),
		store:    opts.Store,
		verify:   opts.Verify,
		onSolved: opts.OnSolved,
		cache:    newLRUCache(entries, bytes),
		inflight: make(map[string]*memoEntry),
		methods:  make(map[string]*methodMetrics),
	}
}

// Solve solves one problem through the worker pool. Identical problems
// (by canonical hash) share one solve: concurrent duplicates wait for
// the leader, and later duplicates are served from the cache — or the
// persistent store, surviving restarts — with Solution.Cached set.
// Problems with an in-memory Lib override have no canonical hash and
// are solved directly, without caching.
func (s *Service) Solve(ctx context.Context, p Problem) (Solution, error) {
	key, err := p.Hash()
	if err != nil {
		return s.solveOne(ctx, p)
	}

	var e *memoEntry
	for e == nil {
		s.mu.Lock()
		if sol, ok := s.cache.get(key); ok {
			s.stats.Hits++
			s.mu.Unlock()
			sol.Cached = true
			return sol, nil
		}
		prior, ok := s.inflight[key]
		if !ok {
			e = &memoEntry{done: make(chan struct{})}
			s.inflight[key] = e
			s.stats.Misses++
			s.mu.Unlock()
			break // this call is the leader
		}
		s.mu.Unlock()
		select {
		case <-prior.done:
			if prior.err == nil {
				s.mu.Lock()
				s.stats.Hits++
				s.mu.Unlock()
				sol := prior.sol
				sol.Cached = true
				return sol, nil
			}
			// The leader failed and its entry is gone. Its cancellation
			// or deadline is not ours: with a live context, take over as
			// the next leader instead of surfacing a stranger's ctx.Err.
			if errors.Is(prior.err, context.Canceled) || errors.Is(prior.err, context.DeadlineExceeded) {
				if ctx.Err() != nil {
					return Solution{}, ctx.Err()
				}
				continue
			}
			return Solution{}, prior.err
		case <-ctx.Done():
			return Solution{}, ctx.Err()
		}
	}

	// Leader path. Consult the persistent store first — only the leader
	// touches disk, so concurrent duplicates cost one read, not N.
	if s.store != nil {
		sol, ok := s.store.Get(key)
		if ok && s.verify {
			if verr := Verify(p, sol); verr != nil {
				// Corrupted but parseable (e.g. a bit-flipped area):
				// demote to a miss so the solve below recomputes and the
				// write-through repairs the entry.
				s.mu.Lock()
				s.stats.VerifyFailures++
				s.mu.Unlock()
				ok = false
			}
		}
		if ok {
			sol.Cached = false
			s.finish(key, e, sol, nil, true)
			sol.Cached = true
			return sol, nil
		}
		s.mu.Lock()
		s.stats.StoreMisses++
		s.mu.Unlock()
	}

	sol, err := s.solveOne(ctx, p)
	s.finish(key, e, sol, err, false)
	if err == nil {
		if s.store != nil {
			if perr := s.store.Put(key, sol); perr != nil {
				// Persistence is best-effort: the answer is correct and
				// cached in memory; only restart warmth is lost.
				s.mu.Lock()
				s.stats.StorePutErrors++
				s.mu.Unlock()
			}
		}
		if s.onSolved != nil {
			s.onSolved(key, sol)
		}
	}
	return sol, err
}

// Peek returns the cached or stored solution for a problem hash without
// running a solver or waiting on one — the serving half of cluster
// replication read-through. It does not count as a cache hit and does
// not refresh LRU recency: a peer fetching a copy is not local workload
// evidence.
func (s *Service) Peek(key string) (Solution, bool) {
	s.mu.Lock()
	sol, ok := s.cache.peek(key)
	s.mu.Unlock()
	if ok {
		return sol, true
	}
	if s.store != nil {
		return s.store.Get(key)
	}
	return Solution{}, false
}

// Admit inserts an externally computed solution under its problem hash —
// the receiving half of cluster replication. The solution enters the
// in-memory LRU and, when configured, the persistent store, exactly as
// if this Service's own solver had produced it.
func (s *Service) Admit(key string, sol Solution) {
	sol.Cached = false
	size := approxSolutionSize(key, sol)
	s.mu.Lock()
	s.cache.add(key, sol, size)
	s.mu.Unlock()
	if s.store != nil {
		if err := s.store.Put(key, sol); err != nil {
			s.mu.Lock()
			s.stats.StorePutErrors++
			s.mu.Unlock()
		}
	}
}

// Queued reports how many solves are blocked waiting for a worker-pool
// slot right now — the queue depth admission control sheds on.
func (s *Service) Queued() int { return int(s.queued.Load()) }

// finish publishes a leader's outcome: successful solutions enter the
// LRU (failures are not cached — a cancellation or deadline is the
// caller's, not the problem's), the in-flight entry is retired, and
// waiters are released.
func (s *Service) finish(key string, e *memoEntry, sol Solution, err error, fromStore bool) {
	e.sol, e.err = sol, err
	var size int64
	if err == nil {
		// Sizing marshals the solution; do it before taking the lock so
		// a large datapath cannot stall concurrent cache lookups.
		size = approxSolutionSize(key, sol)
	}
	s.mu.Lock()
	delete(s.inflight, key)
	if err == nil {
		s.cache.add(key, sol, size)
	}
	if fromStore {
		s.stats.StoreHits++
	}
	s.mu.Unlock()
	close(e.done)
}

// solveOne runs one solve inside a worker-pool slot and records the
// per-method metrics.
func (s *Service) solveOne(ctx context.Context, p Problem) (Solution, error) {
	s.queued.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.queued.Add(-1)
		return Solution{}, ctx.Err()
	}
	t0 := time.Now()
	sol, err := Solve(ctx, p)
	if err == nil && s.verify {
		if verr := Verify(p, sol); verr != nil {
			// A solver handing back an illegal or misreported datapath is
			// an internal inconsistency; surface the diagnostic rather
			// than caching or serving the bad answer.
			s.mu.Lock()
			s.stats.VerifyFailures++
			s.mu.Unlock()
			sol, err = Solution{}, verr
		}
	}
	s.record(metricLabel(p.method()), time.Since(t0), err)
	return sol, err
}

// metricLabel folds client-supplied method names that are not in the
// registry into one label, so a stream of bogus names cannot grow the
// per-method metrics map (or the /metrics payload) without bound.
func metricLabel(method string) string {
	if _, ok := Lookup(method); !ok {
		return "unknown"
	}
	return method
}

// BatchResult is one outcome of SolveBatch; exactly one of Solution
// being valid (Err == nil) or Err holds.
type BatchResult struct {
	Solution Solution
	Err      error
}

// SolveBatch solves every problem, running up to the Service's worker
// count concurrently, and returns the outcomes in input order. Identical
// problems within (or across) batches solve once and share the result.
func (s *Service) SolveBatch(ctx context.Context, problems []Problem) []BatchResult {
	out := make([]BatchResult, len(problems))
	s.SolveBatchFunc(ctx, problems, func(i int, r BatchResult) { out[i] = r })
	return out
}

// SolveBatchFunc solves every problem through the worker pool, invoking
// fn once per problem as each completes — completion order, not input
// order, which is what a streaming endpoint wants. Calls to fn are
// serialized, so fn may write to a shared sink without locking. The
// fan-out is bounded: at most the Service's worker count of batch
// goroutines exist at once, regardless of len(problems), and once ctx is
// canceled no further solves start — every remaining problem is reported
// to fn with ctx.Err(). Returns ctx.Err() (nil if the batch ran to
// completion).
func (s *Service) SolveBatchFunc(ctx context.Context, problems []Problem, fn func(i int, r BatchResult)) error {
	return s.SolveBatchVia(ctx, problems, nil, fn)
}

// SolveBatchVia is SolveBatchFunc with the per-problem solve pluggable:
// each problem goes through solve instead of s.Solve (nil means
// s.Solve). cmd/mwld uses it to route non-owned problems to their shard
// owner while keeping the batch fan-out bounded by this Service's worker
// pool.
func (s *Service) SolveBatchVia(ctx context.Context, problems []Problem, solve func(context.Context, Problem) (Solution, error), fn func(i int, r BatchResult)) error {
	if solve == nil {
		solve = s.Solve
	}
	n := len(problems)
	workers := cap(s.sem)
	if workers > n {
		workers = n
	}
	var (
		next atomic.Int64
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	emit := func(i int, r BatchResult) {
		mu.Lock()
		defer mu.Unlock()
		fn(i, r)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Checked per problem, not per worker: a cancellation
				// mid-batch drains the remaining indices without starting
				// their solves.
				if err := ctx.Err(); err != nil {
					emit(i, BatchResult{Err: err})
					continue
				}
				sol, err := solve(ctx, problems[i])
				emit(i, BatchResult{Solution: sol, Err: err})
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// CacheSize reports how many solutions the cache currently holds
// (including in-flight entries).
func (s *Service) CacheSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.len() + len(s.inflight)
}

// CacheStats snapshots the cache and store counters. In-flight solves
// are counted but never evicted, so duplicates can always join a
// running solve even when the LRU is thrashing.
func (s *Service) CacheStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.cache.len()
	st.Bytes = s.cache.bytes
	st.InFlight = len(s.inflight)
	st.Evictions = s.cache.evictions
	return st
}

// ClearCache drops every cached solution (the persistent store, if any,
// is untouched). In-flight solves complete normally but are forgotten.
func (s *Service) ClearCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache.clear()
}

// ---- per-method metrics ----

// latencyBucketBounds are the upper bounds of the solve-latency
// histogram, chosen to straddle the paper's regimes: DPAlloc answers in
// milliseconds, ILP solves run to minutes (Table 2).
var latencyBucketBounds = []time.Duration{
	time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2500 * time.Millisecond,
	10 * time.Second,
	time.Minute,
	5 * time.Minute,
}

// methodMetrics accumulates one method's counters; guarded by Service.mu.
type methodMetrics struct {
	solves  uint64 // solver runs (cache hits are not solves)
	errors  uint64 // failed runs, cancellations included
	sum     time.Duration
	buckets []uint64 // per-bucket counts; len(latencyBucketBounds)+1, last is +Inf
}

func (s *Service) record(method string, d time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.methods[method]
	if m == nil {
		m = &methodMetrics{buckets: make([]uint64, len(latencyBucketBounds)+1)}
		s.methods[method] = m
	}
	m.solves++
	if err != nil {
		m.errors++
	}
	m.sum += d
	i := 0
	for i < len(latencyBucketBounds) && d > latencyBucketBounds[i] {
		i++
	}
	m.buckets[i]++
}

// MethodMetrics is one method's solve counters in a Metrics snapshot.
type MethodMetrics struct {
	Method string `json:"method"`
	// Solves counts solver runs; cache and store hits do not run the
	// solver and are visible in CacheStats instead.
	Solves uint64 `json:"solves"`
	// Errors counts failed runs, including cancellations.
	Errors uint64 `json:"errors"`
	// LatencySum is the total wall clock across runs; with Solves it
	// yields the mean, with Buckets the distribution.
	LatencySum time.Duration `json:"latency_sum_ns"`
	// Buckets holds cumulative counts: Buckets[i] is the number of runs
	// with latency <= LatencyBucketBounds()[i]; the final element (no
	// bound) counts every run (+Inf).
	Buckets []uint64 `json:"buckets"`
}

// Metrics is a point-in-time snapshot of a Service's observability
// counters, renderable as Prometheus text (see cmd/mwld's /metrics).
type Metrics struct {
	Methods []MethodMetrics `json:"methods"`
	Cache   CacheStats      `json:"cache"`
	// Workers is the pool size; WorkersBusy the occupied slots now.
	Workers     int `json:"workers"`
	WorkersBusy int `json:"workers_busy"`
	// Queued counts solves waiting for a worker slot right now.
	Queued int `json:"queued"`
}

// LatencyBucketBounds reports the histogram bucket upper bounds used by
// Metrics, smallest first; the implicit final bucket is +Inf.
func LatencyBucketBounds() []time.Duration {
	out := make([]time.Duration, len(latencyBucketBounds))
	copy(out, latencyBucketBounds)
	return out
}

// Metrics snapshots the per-method solve counters, cache stats and
// worker-pool occupancy.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Metrics{
		Workers:     cap(s.sem),
		WorkersBusy: len(s.sem),
		Queued:      int(s.queued.Load()),
	}
	out.Cache = s.stats
	out.Cache.Entries = s.cache.len()
	out.Cache.Bytes = s.cache.bytes
	out.Cache.InFlight = len(s.inflight)
	out.Cache.Evictions = s.cache.evictions
	names := make([]string, 0, len(s.methods))
	for name := range s.methods {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := s.methods[name]
		buckets := make([]uint64, len(m.buckets))
		var cum uint64
		for i, c := range m.buckets {
			cum += c
			buckets[i] = cum
		}
		out.Methods = append(out.Methods, MethodMetrics{
			Method:     name,
			Solves:     m.solves,
			Errors:     m.errors,
			LatencySum: m.sum,
			Buckets:    buckets,
		})
	}
	return out
}
