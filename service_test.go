// Tests for the Service layer: worker-pool batching, memoization by
// canonical problem hash, and in-flight deduplication.
package mwl_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	mwl "repro"
)

// countingSolver wraps a real method and counts invocations; registered
// once under a unique name so tests can observe memoization.
type countingSolver struct {
	calls atomic.Int64
}

func (c *countingSolver) Solve(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
	c.calls.Add(1)
	q := p
	q.Method = "dpalloc"
	return mwl.Solve(ctx, q)
}

var countTestSolver = func() *countingSolver {
	c := &countingSolver{}
	if err := mwl.Register("test-counting", c); err != nil {
		panic(err)
	}
	return c
}()

func TestServiceMemoizesIdenticalProblems(t *testing.T) {
	svc := mwl.NewService(2)
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Method: "test-counting", Graph: g, Lambda: 40}

	before := countTestSolver.calls.Load()
	first, err := svc.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first solve reported Cached")
	}
	second, err := svc.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat solve not served from the memo")
	}
	if got := countTestSolver.calls.Load() - before; got != 1 {
		t.Fatalf("solver ran %d times for identical problems", got)
	}
	second.Cached = false
	if !reflect.DeepEqual(first, second) {
		t.Fatal("memoized solution differs from the original")
	}
	if svc.CacheSize() != 1 {
		t.Fatalf("cache size %d, want 1", svc.CacheSize())
	}
	svc.ClearCache()
	if svc.CacheSize() != 0 {
		t.Fatal("ClearCache left entries")
	}
}

func TestServiceDeduplicatesInFlight(t *testing.T) {
	svc := mwl.NewService(4)
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 12, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Method: "test-counting", Graph: g, Lambda: 50}

	before := countTestSolver.calls.Load()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = svc.Solve(context.Background(), p)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	if got := countTestSolver.calls.Load() - before; got != 1 {
		t.Fatalf("solver ran %d times for 8 concurrent identical problems", got)
	}
}

func TestServiceBatchOrderAndErrors(t *testing.T) {
	svc := mwl.NewService(3)
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	batch := []mwl.Problem{
		{Graph: g, Lambda: lmin},
		{Graph: g, Lambda: lmin + 2},
		{Method: "no-such-method", Graph: g, Lambda: lmin},
		{Method: "twostage", Graph: g, Lambda: lmin},
		{Graph: g, Lambda: lmin - 1}, // infeasible
	}
	results := svc.SolveBatch(context.Background(), batch)
	if len(results) != len(batch) {
		t.Fatalf("got %d results for %d problems", len(results), len(batch))
	}
	for i, want := range []bool{true, true, false, true, false} {
		if (results[i].Err == nil) != want {
			t.Fatalf("result %d: err = %v, want ok=%v", i, results[i].Err, want)
		}
	}
	if !errors.Is(results[2].Err, mwl.ErrUnknownMethod) {
		t.Fatalf("result 2: %v, want ErrUnknownMethod", results[2].Err)
	}
	if !mwl.IsInfeasible(results[4].Err) {
		t.Fatalf("result 4: %v, want infeasible", results[4].Err)
	}
	if results[0].Solution.Makespan > lmin {
		t.Fatal("tight solve exceeded λ")
	}
}

func TestServiceFailuresAreNotCached(t *testing.T) {
	svc := mwl.NewService(1)
	g := mwl.Fig1Graph()
	p := mwl.Problem{Graph: g, Lambda: 1} // infeasible
	if _, err := svc.Solve(context.Background(), p); err == nil {
		t.Fatal("infeasible problem solved")
	}
	if svc.CacheSize() != 0 {
		t.Fatalf("failure cached: size %d", svc.CacheSize())
	}
}

func TestServiceSkipsMemoForInMemoryLibraries(t *testing.T) {
	svc := mwl.NewService(1)
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	p := mwl.Problem{Graph: g, Lambda: lmin, Lib: lib}
	for i := 0; i < 2; i++ {
		sol, err := svc.Solve(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Cached {
			t.Fatal("unhashable problem served from memo")
		}
	}
	if svc.CacheSize() != 0 {
		t.Fatalf("unhashable problem cached: size %d", svc.CacheSize())
	}
}

func TestServiceManyDistinctProblems(t *testing.T) {
	svc := mwl.NewService(0)
	var batch []mwl.Problem
	for seed := int64(0); seed < 12; seed++ {
		g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 7, Seed: 100 + seed})
		if err != nil {
			t.Fatal(err)
		}
		lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []string{"dpalloc", "twostage", "descend"} {
			batch = append(batch, mwl.Problem{Method: m, Graph: g, Lambda: lmin + 3})
		}
	}
	results := svc.SolveBatch(context.Background(), batch)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("problem %d (%s): %v", i, batch[i].Method, r.Err)
		}
		if r.Solution.Datapath == nil {
			t.Fatalf("problem %d: nil datapath", i)
		}
	}
	if svc.CacheSize() != len(batch) {
		t.Fatalf("cache holds %d of %d distinct problems", svc.CacheSize(), len(batch))
	}
}

// blockingThenOKSolver fails its first call when that call's context
// dies, and succeeds afterwards — the shape of a leader being canceled
// out from under its waiters.
type blockingThenOKSolver struct {
	calls atomic.Int64
}

func (b *blockingThenOKSolver) Solve(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
	if b.calls.Add(1) == 1 {
		<-ctx.Done()
		return mwl.Solution{}, ctx.Err()
	}
	q := p
	q.Method = "dpalloc"
	return mwl.Solve(ctx, q)
}

// TestServiceWaiterSurvivesLeaderCancellation: a duplicate request with
// a live context must not inherit the leader's ctx.Err(); it takes over
// the solve instead.
func TestServiceWaiterSurvivesLeaderCancellation(t *testing.T) {
	if err := mwl.Register("test-blocking", &blockingThenOKSolver{}); err != nil {
		t.Fatal(err)
	}
	svc := mwl.NewService(2)
	g := mwl.Fig1Graph()
	p := mwl.Problem{Method: "test-blocking", Graph: g, Lambda: 40}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := svc.Solve(leaderCtx, p)
		leaderDone <- err
	}()
	waiterDone := make(chan error, 1)
	go func() {
		time.Sleep(50 * time.Millisecond) // let the leader claim the entry
		_, err := svc.Solve(context.Background(), p)
		waiterDone <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancelLeader()

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("waiter inherited the leader's fate: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter never completed")
	}
}

// ---- bounded batch runner ----

// batchStubFn is the behaviour of the "test-batch-stub" method; tests
// install their own function (tests in this package run sequentially).
var batchStubFn atomic.Value // func(context.Context, mwl.Problem) (mwl.Solution, error)

type batchStubSolver struct{}

func (batchStubSolver) Solve(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
	fn := batchStubFn.Load().(func(context.Context, mwl.Problem) (mwl.Solution, error))
	return fn(ctx, p)
}

func init() {
	if err := mwl.Register("test-batch-stub", batchStubSolver{}); err != nil {
		panic(err)
	}
}

func setBatchStub(t *testing.T, fn func(context.Context, mwl.Problem) (mwl.Solution, error)) {
	t.Helper()
	batchStubFn.Store(fn)
}

// stubBatch builds n distinct problems (distinct hashes via Lambda) all
// solved by the test stub.
func stubBatch(n int) []mwl.Problem {
	out := make([]mwl.Problem, n)
	for i := range out {
		out[i] = mwl.Problem{Method: "test-batch-stub", Lambda: i + 1}
	}
	return out
}

// TestSolveBatchBoundedFanOut is the regression test for the
// goroutine-per-problem bug: a 10k-problem batch against a 4-worker
// service must run on ~4 batch goroutines, not 10k. The stub blocks
// every in-flight solve so the batch is caught mid-stride with all
// workers busy, then the goroutine count is compared against the
// pre-batch baseline.
func TestSolveBatchBoundedFanOut(t *testing.T) {
	const workers, problems = 4, 10_000
	svc := mwl.NewService(workers)
	started := make(chan struct{}, problems)
	release := make(chan struct{})
	setBatchStub(t, func(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
		started <- struct{}{}
		select {
		case <-release:
			return mwl.Solution{Method: "test-batch-stub", Area: int64(p.Lambda)}, nil
		case <-ctx.Done():
			return mwl.Solution{}, ctx.Err()
		}
	})
	base := runtime.NumGoroutine()
	done := make(chan []mwl.BatchResult, 1)
	go func() { done <- svc.SolveBatch(context.Background(), stubBatch(problems)) }()
	for i := 0; i < workers; i++ {
		<-started // all worker slots occupied, batch mid-stride
	}
	if g := runtime.NumGoroutine(); g > base+2*workers+8 {
		t.Fatalf("%d goroutines during a %d-problem batch (baseline %d): fan-out not bounded by the worker count", g, problems, base)
	}
	close(release)
	results := <-done
	if len(results) != problems {
		t.Fatalf("%d results for %d problems", len(results), problems)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("problem %d: %v", i, r.Err)
		}
		if r.Solution.Area != int64(i+1) {
			t.Fatalf("problem %d answered with area %d", i, r.Solution.Area)
		}
	}
}

// TestSolveBatchCancellationStopsSpawning: once the batch context is
// canceled, no further solver runs start — the two in-flight solves
// unwind with ctx.Err() and every remaining problem is reported with
// ctx.Err() without touching the solver.
func TestSolveBatchCancellationStopsSpawning(t *testing.T) {
	const workers, problems = 2, 64
	svc := mwl.NewService(workers)
	var calls atomic.Int64
	entered := make(chan struct{}, problems)
	setBatchStub(t, func(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
		calls.Add(1)
		entered <- struct{}{}
		<-ctx.Done()
		return mwl.Solution{}, ctx.Err()
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-entered
		<-entered // both workers are inside the solver
		cancel()
	}()
	results := svc.SolveBatch(ctx, stubBatch(problems))
	if got := calls.Load(); got != workers {
		t.Fatalf("solver ran %d times; want exactly %d (the in-flight solves at cancel)", got, workers)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestSolveBatchFuncCompletionOrder: SolveBatchFunc must deliver each
// result as its solve completes — a fast problem's callback fires while
// a slow sibling is still running, which is what lets the stream
// endpoint emit its first NDJSON record before the batch finishes.
func TestSolveBatchFuncCompletionOrder(t *testing.T) {
	svc := mwl.NewService(2)
	slowGate := make(chan struct{})
	setBatchStub(t, func(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
		if p.Lambda == 1 { // the slow problem
			select {
			case <-slowGate:
			case <-ctx.Done():
				return mwl.Solution{}, ctx.Err()
			}
		}
		return mwl.Solution{Method: "test-batch-stub", Area: int64(p.Lambda)}, nil
	})
	got := make(chan int, 2)
	errc := make(chan error, 1)
	go func() {
		errc <- svc.SolveBatchFunc(context.Background(), stubBatch(2), func(i int, r mwl.BatchResult) {
			if r.Err != nil {
				t.Errorf("problem %d: %v", i, r.Err)
			}
			got <- i
		})
	}()
	if first := <-got; first != 1 {
		t.Fatalf("first completion was problem %d; want the fast problem (1) while the slow one still runs", first)
	}
	close(slowGate)
	if second := <-got; second != 0 {
		t.Fatalf("second completion was %d, want 0", second)
	}
	if err := <-errc; err != nil {
		t.Fatalf("SolveBatchFunc returned %v for a completed batch", err)
	}
}
