// Native Go fuzz targets for the wire layer and the solution validator.
// Seed corpora live under testdata/fuzz and run as ordinary unit tests
// in every `go test`; CI additionally runs each target under -fuzz for
// a short smoke budget.
package mwl_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	mwl "repro"
)

// fuzzProblemBlob builds a canonical problem encoding for the seed
// corpus.
func fuzzProblemBlob(tb testing.TB, n int, seed int64, mutate func(*mwl.Problem)) []byte {
	tb.Helper()
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: n, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	p := mwl.Problem{Graph: g, Lambda: 40}
	if mutate != nil {
		mutate(&p)
	}
	blob, err := json.Marshal(p)
	if err != nil {
		tb.Fatal(err)
	}
	return blob
}

// FuzzProblemWire: decoding arbitrary bytes as a Problem never panics,
// and every decodable problem re-encodes canonically — the re-encoded
// form decodes again, re-encodes to the identical bytes, and hashes
// identically across the round trip (the invariant the Service's
// memoization and the shard router both key on).
func FuzzProblemWire(f *testing.F) {
	f.Add(fuzzProblemBlob(f, 7, 1, nil))
	f.Add(fuzzProblemBlob(f, 3, 2, func(p *mwl.Problem) {
		p.Method = "ilp"
		p.Options = mwl.SolveOptions{TimeLimit: 1000, NodeLimit: 5, Limits: map[string]int{"mul": 2}}
	}))
	f.Add(fuzzProblemBlob(f, 4, 3, func(p *mwl.Problem) {
		p.Method = "anneal"
		p.Options = mwl.SolveOptions{Seed: 42, AnnealMoves: 10, AnnealCooling: 0.9}
	}))
	f.Add(fuzzProblemBlob(f, 5, 4, func(p *mwl.Problem) {
		p.Method = "portfolio"
		p.Options = mwl.SolveOptions{Portfolio: []string{"dpalloc", "twostage"}}
		p.Library = mwl.LibrarySpec{AdderLatency: 1, MulBitsPerCycle: 4}
	}))
	f.Add([]byte(`{"graph":{"ops":[{"type":"mul","hi":8}],"deps":[]},"lambda":4}`))
	f.Add([]byte(`{"graph":{"ops":[{"type":"add","hi":8}],"deps":[[0,0]]}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p mwl.Problem
		if json.Unmarshal(data, &p) != nil {
			return // undecodable input is not this target's business
		}
		blob, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("decoded problem does not re-encode: %v", err)
		}
		h1, hashErr := p.Hash()

		var q mwl.Problem
		if err := json.Unmarshal(blob, &q); err != nil {
			t.Fatalf("canonical encoding does not decode: %v\n%s", err, blob)
		}
		blob2, err := json.Marshal(q)
		if err != nil {
			t.Fatalf("round-tripped problem does not re-encode: %v", err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("encoding not canonical:\n%s\n%s", blob, blob2)
		}
		if hashErr == nil {
			h2, err := q.Hash()
			if err != nil {
				t.Fatalf("hash lost across round trip: %v", err)
			}
			if h1 != h2 {
				t.Fatalf("hash unstable across round trip: %s vs %s\n%s", h1, h2, blob)
			}
		}
	})
}

// FuzzVerify: the validator must classify arbitrary (problem, solution)
// pairs — including mutated and mismatched ones — without ever
// crashing; it is the last line of defence in front of the serving
// path, so it can afford to reject but never to panic.
func FuzzVerify(f *testing.F) {
	pblob := fuzzProblemBlob(f, 6, 5, nil)
	var p mwl.Problem
	if err := json.Unmarshal(pblob, &p); err != nil {
		f.Fatal(err)
	}
	sol, err := mwl.Solve(context.Background(), p)
	if err != nil {
		f.Fatal(err)
	}
	sblob, err := json.Marshal(sol)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pblob, sblob)
	f.Add(pblob, bytes.Replace(sblob, []byte(`"area":`), []byte(`"area":1`), 1))
	f.Add(fuzzProblemBlob(f, 3, 6, nil), sblob) // mismatched pair
	f.Add(pblob, []byte(`{}`))
	f.Add([]byte(`{}`), []byte(`{"datapath":{"start":[0],"instances":[{"class":"add","hi":4,"ops":[0]}]}}`))

	f.Fuzz(func(t *testing.T, pdata, sdata []byte) {
		var p mwl.Problem
		if json.Unmarshal(pdata, &p) != nil {
			return
		}
		var sol mwl.Solution
		if json.Unmarshal(sdata, &sol) != nil {
			return
		}
		// Must classify, never crash; and the verdict must be stable.
		err1 := mwl.Verify(p, sol)
		err2 := mwl.Verify(p, sol)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("verdict not deterministic: %v vs %v", err1, err2)
		}
	})
}
