package mwl

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/descend"
	"repro/internal/exact"
	"repro/internal/ilp"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/twostage"
)

// LibrarySpec is the serializable description of a cost model used on
// the wire; the zero value denotes the paper's default library.
type LibrarySpec = model.LibrarySpec

// DefaultMethod is the method solved when a Problem leaves Method empty:
// the paper's own heuristic.
const DefaultMethod = "dpalloc"

// Problem is a complete, serializable description of one allocation
// run: the sequencing graph, the cost model, the latency constraint λ,
// an optional initiation interval for the pipelined method, the method
// name, and per-method options. Problems marshal to the v1 JSON wire
// schema, so they are storable, diffable and servable (see cmd/mwld).
type Problem struct {
	// Method names the registered solver; "" means DefaultMethod.
	Method string `json:"method,omitempty"`
	// Graph is the multiple-wordlength sequencing graph P(O, S).
	Graph *Graph `json:"graph"`
	// Lambda is the overall latency constraint in cycles.
	Lambda int `json:"lambda"`
	// II is the initiation interval; it is required by (and only
	// accepted by) the "pipelined" method.
	II int `json:"ii,omitempty"`
	// Library describes the cost model; the zero value is the paper's
	// default library.
	Library LibrarySpec `json:"library,omitzero"`
	// Lib, when non-nil, overrides Library with an in-memory cost model
	// that need not be expressible as a LibrarySpec. Problems using it
	// cannot be hashed or serialized, so the Service solves them
	// without memoization.
	Lib *Library `json:"-"`
	// Options carries the per-method tuning knobs.
	Options SolveOptions `json:"options,omitzero"`
}

// SolveOptions are the per-method tuning knobs of a Problem. Methods
// ignore knobs that do not apply to them.
type SolveOptions struct {
	// TimeLimit caps the "ilp" branch-and-bound wall clock in
	// nanoseconds on the wire. Zero applies DefaultILPTimeLimit;
	// negative disables the cap.
	TimeLimit time.Duration `json:"time_limit_ns,omitempty"`
	// NodeLimit caps the "ilp" and "optimal" search nodes; 0 = no cap.
	NodeLimit int `json:"node_limit,omitempty"`
	// Limits fixes the per-class resource bounds N_y for "dpalloc",
	// keyed by hardware class name ("add", "mul"). Empty enables the
	// automatic minimal-resource search.
	Limits map[string]int `json:"limits,omitempty"`
	// Incumbent primes "ilp" and "optimal" with a known feasible
	// datapath, exactly like handing lp_solve a known solution.
	Incumbent *Datapath `json:"incumbent,omitempty"`
	// Seed seeds the "anneal" method's move RNG. A fixed seed makes the
	// annealer bit-reproducible; different seeds explore differently.
	Seed int64 `json:"seed,omitempty"`
	// AnnealMoves caps the "anneal" proposal budget; 0 applies the
	// annealer's default (20000).
	AnnealMoves int `json:"anneal_moves,omitempty"`
	// AnnealInitTemp sets the "anneal" starting temperature in area
	// units; 0 derives it from the initial area.
	AnnealInitTemp float64 `json:"anneal_init_temp,omitempty"`
	// AnnealCooling sets the "anneal" geometric cooling factor per
	// epoch, in (0, 1); 0 applies the default (0.95).
	AnnealCooling float64 `json:"anneal_cooling,omitempty"`
	// Portfolio names the registered methods the "portfolio" solver
	// races; empty races the default set (see DefaultPortfolio).
	Portfolio []string `json:"portfolio,omitempty"`
}

// Solution is the uniform result of a Solve: the datapath plus its
// headline numbers, an area breakdown, method statistics and timing.
type Solution struct {
	// Method is the registry name of the solver that produced this.
	Method string `json:"method"`
	// Datapath is the scheduled, bound, wordlength-selected solution.
	Datapath *Datapath `json:"datapath"`
	// Area is the total functional-unit area (the paper's objective).
	Area int64 `json:"area"`
	// Makespan is the achieved overall latency in cycles (≤ λ).
	Makespan int `json:"makespan"`
	// AreaByKind breaks Area down by resource kind, e.g. "mul 16x12".
	AreaByKind map[string]int64 `json:"area_by_kind,omitempty"`
	// Elapsed is the solve wall-clock time (nanoseconds on the wire).
	Elapsed time.Duration `json:"elapsed_ns"`
	// Cached reports that a Service served this from its memo.
	Cached bool `json:"cached,omitempty"`
	// Stats reports how the method ran.
	Stats SolveStats `json:"stats,omitzero"`
}

// SolveStats is the union of the per-method effort counters; methods
// leave fields that do not apply to them zero.
type SolveStats struct {
	Iterations  int   `json:"iterations,omitempty"`  // schedule/bind/refine rounds (dpalloc, pipelined)
	Refinements int   `json:"refinements,omitempty"` // H-edge deletion steps (dpalloc, pipelined)
	Configs     int   `json:"configs,omitempty"`     // resource-bound configurations tried (dpalloc)
	Nodes       int64 `json:"nodes,omitempty"`       // search / branch-and-bound nodes (optimal, ilp)
	Vars        int   `json:"vars,omitempty"`        // ILP model columns
	Rows        int   `json:"rows,omitempty"`        // ILP model rows
	TimedOut    bool  `json:"timed_out,omitempty"`   // ILP budget hit: best found, not proven optimal
	Moves       int   `json:"moves,omitempty"`       // annealing proposals evaluated (anneal)
	Accepted    int   `json:"accepted,omitempty"`    // annealing proposals accepted (anneal)
	Merges      int   `json:"merges,omitempty"`      // resource-instance fusions: binder clique swallows (dpalloc), accepted merge moves (anneal)
	Evals       int   `json:"evals,omitempty"`       // inner cost evaluations: binder max-clique extractions (dpalloc), list schedules run (anneal)
	// Winner names the registered method whose solution a "portfolio"
	// race returned.
	Winner string `json:"winner,omitempty"`
}

// ErrInvalidProblem is wrapped by solve errors caused by a malformed
// Problem — no graph, a bad library spec or resource-limit map, an
// initiation interval on a method that does not accept one, or a graph
// too large for the exhaustive method. These are the caller's fault, as
// opposed to infeasible constraints or solver-internal failures.
var ErrInvalidProblem = errors.New("mwl: invalid problem")

// ErrInfeasible is the method-independent infeasibility sentinel:
// errors wrapping it are recognised by IsInfeasible. The built-in
// methods report their own internal sentinels (also recognised); this
// one exists for layers that learn of infeasibility without running a
// solver — the mwld shard forwarder wraps it when relaying a peer's
// infeasible verdict so the classification survives the wire.
var ErrInfeasible = errors.New("mwl: problem infeasible")

// IsInfeasible reports whether a solve failed because no datapath can
// meet the problem's constraints (λ below λ_min, resource limits too
// tight, or no II-feasible kind), as opposed to a malformed problem or a
// cancellation. It recognises ErrInfeasible and the infeasibility
// sentinels of every built-in method.
func IsInfeasible(err error) bool {
	return errors.Is(err, ErrInfeasible) ||
		errors.Is(err, anneal.ErrInfeasible) ||
		errors.Is(err, core.ErrInfeasible) ||
		errors.Is(err, exact.ErrInfeasible) ||
		errors.Is(err, ilp.ErrInfeasible) ||
		errors.Is(err, pipeline.ErrInfeasible) ||
		errors.Is(err, twostage.ErrInfeasible)
}

// Solve resolves the problem's method in the registry and solves it.
// An empty Problem.Method solves with DefaultMethod.
func Solve(ctx context.Context, p Problem) (Solution, error) {
	return Get(p.method()).Solve(ctx, p)
}

// Size reports the problem's graph dimensions: operation and data-edge
// counts (0, 0 when no graph is attached). Admission layers use it to
// bound work before solving — solver effort grows superlinearly in
// nodes, so a node cap is the meaningful guard, not body bytes.
func (p Problem) Size() (nodes, edges int) {
	if p.Graph == nil {
		return 0, 0
	}
	return p.Graph.N(), p.Graph.NumEdges()
}

func (p Problem) method() string {
	if p.Method == "" {
		return DefaultMethod
	}
	return p.Method
}

// library materialises the problem's cost model.
func (p Problem) library() (*Library, error) {
	if p.Lib != nil {
		return p.Lib, nil
	}
	lib, err := p.Library.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidProblem, err)
	}
	return lib, nil
}

// prepare validates the method-independent parts of the problem.
func (p Problem) prepare(ctx context.Context, acceptsII bool) (*Library, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.Graph == nil {
		return nil, fmt.Errorf("%w: no graph", ErrInvalidProblem)
	}
	if !acceptsII && p.II != 0 {
		return nil, fmt.Errorf("%w: method %q does not accept an initiation interval (ii=%d)", ErrInvalidProblem, p.method(), p.II)
	}
	return p.library()
}

// incumbent validates an optional client-supplied warm-start datapath.
// Solvers prune against the incumbent's area and may return the
// incumbent itself, so an illegal one must be rejected up front — it
// would otherwise be served as a valid Solution, or make a feasible
// problem report "no solution found".
func (p Problem) incumbent(lib *Library) (*Datapath, error) {
	inc := p.Options.Incumbent
	if inc == nil {
		return nil, nil
	}
	if err := inc.Verify(p.Graph, lib, p.Lambda); err != nil {
		return nil, fmt.Errorf("%w: incumbent datapath: %w", ErrInvalidProblem, err)
	}
	return inc, nil
}

// schedLimits converts the wire-level class→count map into the
// scheduler's representation.
func (o SolveOptions) schedLimits() (sched.Limits, error) {
	if len(o.Limits) == 0 {
		return nil, nil
	}
	out := make(sched.Limits, len(o.Limits))
	for name, n := range o.Limits {
		t, err := model.ParseOpType(name)
		if err != nil {
			return nil, fmt.Errorf("%w: bad resource limit class: %w", ErrInvalidProblem, err)
		}
		if t != t.HardwareClass() {
			return nil, fmt.Errorf("%w: resource limit class %q is not a hardware class (use %q)", ErrInvalidProblem, name, t.HardwareClass())
		}
		if n < 1 {
			return nil, fmt.Errorf("%w: resource limit %s=%d must be ≥ 1", ErrInvalidProblem, name, n)
		}
		out[t] = n
	}
	return out, nil
}

// newSolution assembles the uniform result envelope around a datapath.
func newSolution(method string, lib *Library, dp *Datapath, elapsed time.Duration, stats SolveStats) Solution {
	sol := Solution{
		Method:   method,
		Datapath: dp,
		Area:     dp.Area(lib),
		Makespan: dp.Makespan(lib),
		Elapsed:  elapsed,
		Stats:    stats,
	}
	if len(dp.Instances) > 0 {
		sol.AreaByKind = make(map[string]int64)
		for _, in := range dp.Instances {
			sol.AreaByKind[in.Kind.String()] += lib.Area(in.Kind)
		}
	}
	return sol
}

func init() {
	mustRegister("dpalloc", "Algorithm DPAlloc: the paper's combined scheduling, binding and wordlength-selection heuristic",
		SolverFunc(solveDPAlloc))
	mustRegister("twostage", "two-stage FPL 2000 baseline: wordlength-blind scheduling, then optimal latency-preserving binding",
		SolverFunc(solveTwoStage))
	mustRegister("descend", "descending-wordlength clique-partitioning baseline",
		SolverFunc(solveDescend))
	mustRegister("optimal", fmt.Sprintf("exhaustive branch-and-bound optimum (≤ %d operations)", exact.MaxOps),
		SolverFunc(solveOptimal))
	mustRegister("ilp", "time-indexed ILP formulation solved with the built-in MILP solver",
		SolverFunc(solveILPMethod))
	mustRegister("pipelined", "DPAlloc under an initiation interval: resource sharing modulo II",
		SolverFunc(solvePipelined))
}

func solveDPAlloc(ctx context.Context, p Problem) (Solution, error) {
	lib, err := p.prepare(ctx, false)
	if err != nil {
		return Solution{}, err
	}
	limits, err := p.Options.schedLimits()
	if err != nil {
		return Solution{}, err
	}
	t0 := time.Now()
	dp, st, err := core.AllocateCtx(ctx, p.Graph, lib, p.Lambda, core.Options{Limits: limits})
	if err != nil {
		return Solution{}, err
	}
	return newSolution("dpalloc", lib, dp, time.Since(t0), SolveStats{
		Iterations:  st.Iterations,
		Refinements: st.Refinements,
		Configs:     st.Configs,
		Merges:      st.Merges,
		Evals:       st.Evals,
	}), nil
}

func solveTwoStage(ctx context.Context, p Problem) (Solution, error) {
	lib, err := p.prepare(ctx, false)
	if err != nil {
		return Solution{}, err
	}
	t0 := time.Now()
	dp, st, err := twostage.AllocateCtx(ctx, p.Graph, lib, p.Lambda)
	if err != nil {
		return Solution{}, err
	}
	return newSolution("twostage", lib, dp, time.Since(t0), SolveStats{
		Configs:  st.Configs,
		Nodes:    int64(st.Nodes),
		TimedOut: st.Capped,
	}), nil
}

func solveDescend(ctx context.Context, p Problem) (Solution, error) {
	lib, err := p.prepare(ctx, false)
	if err != nil {
		return Solution{}, err
	}
	t0 := time.Now()
	dp, err := descend.AllocateCtx(ctx, p.Graph, lib, p.Lambda)
	if err != nil {
		return Solution{}, err
	}
	return newSolution("descend", lib, dp, time.Since(t0), SolveStats{}), nil
}

func solveOptimal(ctx context.Context, p Problem) (Solution, error) {
	lib, err := p.prepare(ctx, false)
	if err != nil {
		return Solution{}, err
	}
	inc, err := p.incumbent(lib)
	if err != nil {
		return Solution{}, err
	}
	opt := exact.Options{NodeLimit: int64(p.Options.NodeLimit)}
	if inc != nil {
		opt.UpperBound = inc.Area(lib)
	}
	t0 := time.Now()
	dp, st, err := exact.AllocateCtx(ctx, p.Graph, lib, p.Lambda, opt)
	if err != nil {
		if errors.Is(err, exact.ErrTooLarge) {
			return Solution{}, fmt.Errorf("%w: %w", ErrInvalidProblem, err)
		}
		return Solution{}, err
	}
	return newSolution("optimal", lib, dp, time.Since(t0), SolveStats{
		Nodes:    st.Nodes,
		TimedOut: st.Capped,
	}), nil
}

func solveILPMethod(ctx context.Context, p Problem) (Solution, error) {
	lib, err := p.prepare(ctx, false)
	if err != nil {
		return Solution{}, err
	}
	inc, err := p.incumbent(lib)
	if err != nil {
		return Solution{}, err
	}
	t0 := time.Now()
	r, err := ilp.SolveCtx(ctx, p.Graph, lib, p.Lambda, ilp.Options{
		TimeLimit: p.Options.TimeLimit,
		NodeLimit: p.Options.NodeLimit,
		Incumbent: inc,
	})
	if err != nil {
		return Solution{}, err
	}
	return newSolution("ilp", lib, r.DP, time.Since(t0), SolveStats{
		Nodes:    int64(r.Nodes),
		Vars:     r.Vars,
		Rows:     r.Rows,
		TimedOut: r.TimedOut,
	}), nil
}

func solvePipelined(ctx context.Context, p Problem) (Solution, error) {
	lib, err := p.prepare(ctx, true)
	if err != nil {
		return Solution{}, err
	}
	if p.II < 1 {
		return Solution{}, fmt.Errorf("%w: method \"pipelined\" needs an initiation interval ≥ 1 (got %d)", ErrInvalidProblem, p.II)
	}
	t0 := time.Now()
	dp, st, err := pipeline.AllocateCtx(ctx, p.Graph, lib, p.Lambda, p.II, pipeline.Options{})
	if err != nil {
		return Solution{}, err
	}
	return newSolution("pipelined", lib, dp, time.Since(t0), SolveStats{
		Iterations:  st.Iterations,
		Refinements: st.Refinements,
	}), nil
}
