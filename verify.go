package mwl

import (
	"errors"
	"fmt"

	"repro/internal/check"
)

// ErrVerify is wrapped by every Verify failure, so callers can classify
// "the solution does not legally implement the problem" apart from a
// malformed problem or a solver error. The Service wraps it when a
// -verify'd solve or a loaded store entry fails validation.
var ErrVerify = errors.New("mwl: solution failed verification")

// Verify structurally checks that sol is a legal solution of p: every
// operation bound to exactly one instance of sufficient wordlength, no
// two schedule-overlapping operations sharing an instance, dependencies
// and the latency constraint λ respected under bound latencies, a legal
// register completion carrying every dependency edge at full width (for
// pipelined problems, legality modulo the initiation interval instead),
// and the reported area/makespan/breakdown equal to the costs recomputed
// from the problem's library.
//
// Verify is method-agnostic — it never runs a solver — which makes it
// the shared oracle for differential testing across every registered
// method and for detecting corrupted store entries. A nil error means
// sol is legal and honestly reported; any failure wraps ErrVerify.
func Verify(p Problem, sol Solution) error {
	if p.Graph == nil {
		return fmt.Errorf("%w: no graph", ErrVerify)
	}
	lib, err := p.library()
	if err != nil {
		return fmt.Errorf("%w: %w", ErrVerify, err)
	}
	if sol.Datapath == nil {
		return fmt.Errorf("%w: no datapath", ErrVerify)
	}
	if err := check.Verify(p.Graph, lib, p.Lambda, p.II, sol.Datapath, check.Reported{
		Area:       sol.Area,
		Makespan:   sol.Makespan,
		AreaByKind: sol.AreaByKind,
	}); err != nil {
		return fmt.Errorf("%w: %w", ErrVerify, err)
	}
	return nil
}
