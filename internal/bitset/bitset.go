// Package bitset implements dense fixed-universe bit sets over small
// integer IDs (operations, resource kinds). They back the incremental
// adjacency maintenance of the wordlength compatibility graph and the
// transitive-reachability closure of sequencing graphs, where
// membership tests and subset checks on thousand-element universes must
// cost a handful of word operations, not a slice scan.
package bitset

import "math/bits"

// Set is a bit set over [0, n) for the n fixed at construction.
// The zero value is an empty set over an empty universe.
type Set []uint64

// New returns an empty set able to hold members in [0, n).
func New(n int) Set { return make(Set, (n+63)/64) }

// Add inserts i.
func (s Set) Add(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Remove deletes i.
func (s Set) Remove(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether i is a member.
func (s Set) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of members.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clear empties the set in place.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Copy overwrites s with t; the sets must be over the same universe.
func (s Set) Copy(t Set) { copy(s, t) }

// Clone returns an independent copy of s.
func (s Set) Clone() Set { return append(Set(nil), s...) }

// Union adds every member of t to s in place.
func (s Set) Union(t Set) {
	for i, w := range t {
		s[i] |= w
	}
}

// UnionChanged adds every member of t to s in place and reports whether
// s grew. The incremental-closure update uses this to stop propagating
// along paths whose reach sets are already saturated.
func (s Set) UnionChanged(t Set) bool {
	changed := false
	for i, w := range t {
		if n := s[i] | w; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Difference removes every member of t from s in place.
func (s Set) Difference(t Set) {
	for i, w := range t {
		s[i] &^= w
	}
}

// SubsetOf reports whether every member of s is in t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s {
		if w&^t[i] != 0 {
			return false
		}
	}
	return true
}

// IntersectCount returns |s ∩ t|.
func (s Set) IntersectCount(t Set) int {
	n := 0
	for i, w := range s {
		n += bits.OnesCount64(w & t[i])
	}
	return n
}

// ForEach calls f for every member in ascending order.
func (s Set) ForEach(f func(i int)) {
	for wi, w := range s {
		for w != 0 {
			f(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AppendMembers appends the members in ascending order to dst and
// returns the extended slice; pass dst[:0] to reuse scratch.
func (s Set) AppendMembers(dst []int) []int {
	for wi, w := range s {
		for w != 0 {
			dst = append(dst, wi<<6+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}
