package bitset

import (
	"math/rand"
	"testing"
)

// TestSetAgainstMapModel drives random operations on a Set and a
// map[int]bool in lockstep and compares every observable after each
// step — including the word-boundary universe sizes where shift and
// index bugs live.
func TestSetAgainstMapModel(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 63, 64, 65, 130} {
		s, u := New(n), New(n)
		ref, refU := map[int]bool{}, map[int]bool{}
		for step := 0; step < 400; step++ {
			i := rnd.Intn(n)
			switch rnd.Intn(4) {
			case 0:
				s.Add(i)
				ref[i] = true
			case 1:
				s.Remove(i)
				delete(ref, i)
			case 2:
				u.Add(i)
				refU[i] = true
			case 3:
				grew := s.UnionChanged(u)
				wasSubset := true
				for k := range refU {
					if !ref[k] {
						wasSubset = false
					}
					ref[k] = true
				}
				if grew == wasSubset {
					t.Fatalf("n=%d step %d: UnionChanged=%v with subset=%v", n, step, grew, wasSubset)
				}
			}
			if s.Count() != len(ref) {
				t.Fatalf("n=%d step %d: Count=%d want %d", n, step, s.Count(), len(ref))
			}
			for k := 0; k < n; k++ {
				if s.Has(k) != ref[k] {
					t.Fatalf("n=%d step %d: Has(%d)=%v want %v", n, step, k, s.Has(k), ref[k])
				}
			}
		}

		inter := 0
		for k := range ref {
			if refU[k] {
				inter++
			}
		}
		if got := s.IntersectCount(u); got != inter {
			t.Fatalf("n=%d: IntersectCount=%d want %d", n, got, inter)
		}
		if s.SubsetOf(u) != subsetOf(ref, refU) || u.SubsetOf(s) != subsetOf(refU, ref) {
			t.Fatalf("n=%d: SubsetOf disagrees with model", n)
		}

		members := s.AppendMembers(nil)
		if len(members) != len(ref) {
			t.Fatalf("n=%d: AppendMembers returned %d members, want %d", n, len(members), len(ref))
		}
		prev := -1
		for _, m := range members {
			if m <= prev || !ref[m] {
				t.Fatalf("n=%d: AppendMembers out of order or wrong: %v", n, members)
			}
			prev = m
		}
		var walked []int
		s.ForEach(func(i int) { walked = append(walked, i) })
		for i, m := range walked {
			if members[i] != m {
				t.Fatalf("n=%d: ForEach disagrees with AppendMembers", n)
			}
		}

		c := s.Clone()
		c.Difference(u)
		for k := 0; k < n; k++ {
			if c.Has(k) != (ref[k] && !refU[k]) {
				t.Fatalf("n=%d: Difference wrong at %d", n, k)
			}
		}
		c.Copy(u)
		for k := 0; k < n; k++ {
			if c.Has(k) != refU[k] {
				t.Fatalf("n=%d: Copy wrong at %d", n, k)
			}
		}
		c.Clear()
		if c.Count() != 0 {
			t.Fatalf("n=%d: Clear left %d members", n, c.Count())
		}
		if s.Count() != len(ref) {
			t.Fatalf("n=%d: Clone not independent", n)
		}
	}
}

func subsetOf(a, b map[int]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
