package tgff

import (
	"testing"

	"repro/internal/dfg"
	"repro/internal/model"
)

func TestShapeChain(t *testing.T) {
	g, err := Generate(Config{N: 12, Seed: 5, Shape: ShapeChain})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < g.N(); i++ {
		preds := g.Pred(dfg.OpID(i))
		if len(preds) != 1 || preds[0] != dfg.OpID(i-1) {
			t.Fatalf("op %d preds %v, want [%d]", i, preds, i-1)
		}
	}
	// A chain has no time-compatible pairs at λ_min: the critical path
	// contains every operation.
	crit, err := g.CriticalOps(g.MinLatencies(model.Default()))
	if err != nil {
		t.Fatal(err)
	}
	if len(crit) != g.N() {
		t.Fatalf("chain critical path has %d of %d ops", len(crit), g.N())
	}
}

func TestShapeForkJoin(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		g, err := Generate(Config{N: 20, Seed: seed, Shape: ShapeForkJoin})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		joins := 0
		for _, o := range g.Ops() {
			if d := len(g.Pred(o.ID)); d > 2 {
				t.Fatalf("seed %d: op %d has in-degree %d", seed, o.ID, d)
			} else if d == 2 {
				joins++
			}
			// Fork/join keeps fan-out unbounded only through forks of
			// distinct branches; every op is consumed at most... forks
			// re-add the op to the frontier only once, so fan-out <= 1
			// from the frontier mechanism.
			if len(g.Succ(o.ID)) > 1 {
				t.Fatalf("seed %d: op %d has fan-out %d, frontier discipline gives <= 1",
					seed, o.ID, len(g.Succ(o.ID)))
			}
		}
		if joins == 0 {
			t.Errorf("seed %d: no joins in 20 ops (improbable)", seed)
		}
	}
}

func TestShapeDeterminism(t *testing.T) {
	for _, shape := range []Shape{ShapeLayered, ShapeChain, ShapeForkJoin} {
		a, err := Generate(Config{N: 15, Seed: 9, Shape: shape})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(Config{N: 15, Seed: 9, Shape: shape})
		if err != nil {
			t.Fatal(err)
		}
		if a.N() != b.N() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("shape %d: nondeterministic", shape)
		}
		for i := 0; i < a.N(); i++ {
			if a.Op(dfg.OpID(i)).Spec != b.Op(dfg.OpID(i)).Spec {
				t.Fatalf("shape %d: op %d differs", shape, i)
			}
		}
	}
}

func TestWidthBimodal(t *testing.T) {
	g, err := Generate(Config{N: 60, Seed: 11, Dist: WidthBimodal, MinWidth: 4, MaxWidth: 24})
	if err != nil {
		t.Fatal(err)
	}
	// Modes cover the lower and upper thirds: [4, 10] and [18, 24].
	low, high := 0, 0
	for _, o := range g.Ops() {
		for _, w := range []int{o.Spec.Sig.Hi, o.Spec.Sig.Lo} {
			switch {
			case w >= 4 && w <= 10:
				low++
			case w >= 18 && w <= 24:
				high++
			default:
				t.Fatalf("width %d outside both modes", w)
			}
		}
	}
	if low == 0 || high == 0 {
		t.Fatalf("degenerate bimodal sample: low=%d high=%d", low, high)
	}
}

func TestWidthClustered(t *testing.T) {
	g, err := Generate(Config{N: 50, Seed: 13, Dist: WidthClustered})
	if err != nil {
		t.Fatal(err)
	}
	widths := map[int]bool{}
	for _, o := range g.Ops() {
		widths[o.Spec.Sig.Hi] = true
		widths[o.Spec.Sig.Lo] = true
	}
	if len(widths) > 3 {
		t.Fatalf("clustered widths drew %d distinct values: %v", len(widths), widths)
	}
	// Different seeds should (almost surely) pick different centres.
	h, err := Generate(Config{N: 50, Seed: 14, Dist: WidthClustered})
	if err != nil {
		t.Fatal(err)
	}
	other := map[int]bool{}
	for _, o := range h.Ops() {
		other[o.Spec.Sig.Hi] = true
	}
	same := true
	for w := range other {
		if !widths[w] {
			same = false
		}
	}
	if same && len(widths) == len(other) {
		t.Log("clustered centres coincided across seeds (allowed, just unlikely)")
	}
}

func TestShapeAndDistValidation(t *testing.T) {
	if _, err := Generate(Config{N: 3, Shape: Shape(99)}); err == nil {
		t.Error("bad shape accepted")
	}
	if _, err := Generate(Config{N: 3, Dist: WidthDist(99)}); err == nil {
		t.Error("bad width distribution accepted")
	}
}

// TestShapesAllocate: every shape/distribution combination produces
// graphs the full allocator stack handles.
func TestShapesAllocate(t *testing.T) {
	for _, shape := range []Shape{ShapeLayered, ShapeChain, ShapeForkJoin} {
		for _, dist := range []WidthDist{WidthUniform, WidthBimodal, WidthClustered} {
			g, err := Generate(Config{N: 10, Seed: 17, Shape: shape, Dist: dist})
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("shape %d dist %d: %v", shape, dist, err)
			}
		}
	}
}
