package tgff

import (
	"fmt"
	"testing"

	"repro/internal/dfg"
	"repro/internal/model"
)

func TestGenerateValidDAGs(t *testing.T) {
	for n := 0; n <= 30; n++ {
		for seed := int64(0); seed < 20; seed++ {
			g, err := Generate(Config{N: n, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != n {
				t.Fatalf("size %d, want %d", g.N(), n)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{N: 15, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{N: 15, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different graphs")
	}
	for i := 0; i < a.N(); i++ {
		if a.Op(dfg.OpID(i)).Spec != b.Op(dfg.OpID(i)).Spec {
			t.Fatalf("op %d differs", i)
		}
		sa, sb := a.Succ(dfg.OpID(i)), b.Succ(dfg.OpID(i))
		if len(sa) != len(sb) {
			t.Fatalf("succ %d differs", i)
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("succ %d differs", i)
			}
		}
	}
	c, err := Generate(Config{N: 15, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	same := a.NumEdges() == c.NumEdges()
	if same {
		for i := 0; i < a.N() && same; i++ {
			if a.Op(dfg.OpID(i)).Spec != c.Op(dfg.OpID(i)).Spec {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestDegreeAndFanoutBounds(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g, err := Generate(Config{N: 24, Seed: seed, MaxFanout: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.N(); i++ {
			if d := len(g.Pred(dfg.OpID(i))); d > 2 {
				t.Fatalf("op %d has in-degree %d > 2", i, d)
			}
			if f := len(g.Succ(dfg.OpID(i))); f > 3 {
				t.Fatalf("op %d has fan-out %d > 3", i, f)
			}
		}
	}
}

func TestWidthRange(t *testing.T) {
	g, err := Generate(Config{N: 50, Seed: 7, MinWidth: 6, MaxWidth: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range g.Ops() {
		s := o.Spec.Sig
		if s.Lo < 6 || s.Hi > 10 {
			t.Fatalf("widths %v outside [6, 10]", s)
		}
	}
}

func TestTypeMix(t *testing.T) {
	g, err := Generate(Config{N: 200, Seed: 3, MulProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	muls := 0
	for _, o := range g.Ops() {
		if o.Spec.Type == model.Mul {
			muls++
		}
	}
	if muls < 60 || muls > 140 {
		t.Fatalf("mul count %d/200 far from MulProb 0.5", muls)
	}
	// MulProb ~ 0: no multiplies.
	g, err = Generate(Config{N: 50, Seed: 3, MulProb: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range g.Ops() {
		if o.Spec.Type == model.Mul {
			t.Fatal("multiply generated with MulProb ~ 0")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Generate(Config{N: -1}); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := Generate(Config{N: 3, MinWidth: 8, MaxWidth: 4}); err == nil {
		t.Error("inverted width range accepted")
	}
	if _, err := Generate(Config{N: 3, MulProb: 1.5}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := Generate(Config{N: 3, EdgeProb: -0.5}); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestGraphsAreConnectedEnough(t *testing.T) {
	// Sanity: the default config should produce graphs with edges (not
	// just isolated nodes), or λ-relaxation sweeps would be vacuous.
	total := 0
	for seed := int64(0); seed < 50; seed++ {
		g, err := Generate(Config{N: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		total += g.NumEdges()
	}
	if total < 100 { // 2 edges per graph on average is the bare minimum
		t.Fatalf("graphs too sparse: %d edges across 50 graphs", total)
	}
}

func TestBatch(t *testing.T) {
	gs, err := Batch(9, 20, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 20 {
		t.Fatalf("batch size %d", len(gs))
	}
	for _, g := range gs {
		if g.N() != 9 {
			t.Fatalf("graph size %d", g.N())
		}
	}
	// Reproducible.
	gs2, err := Batch(9, 20, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gs {
		if gs[i].NumEdges() != gs2[i].NumEdges() {
			t.Fatal("batch not reproducible")
		}
	}
}

// TestSeedSteersGeneration: the seed is not decorative — distinct seeds
// must be able to produce structurally distinct graphs, so experiments
// that sweep seeds actually sample different workloads.
func TestSeedSteersGeneration(t *testing.T) {
	prints := map[string]bool{}
	for seed := int64(0); seed < 8; seed++ {
		g, err := Generate(Config{N: 12, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		fp := fmt.Sprintf("%d/%d", g.N(), g.NumEdges())
		for i := 0; i < g.N(); i++ {
			fp += fmt.Sprintf("|%v%v", g.Op(dfg.OpID(i)).Spec, g.Succ(dfg.OpID(i)))
		}
		prints[fp] = true
	}
	if len(prints) < 2 {
		t.Fatalf("8 seeds produced %d distinct graphs; seed is not reaching the generator", len(prints))
	}
}
