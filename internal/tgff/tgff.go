// Package tgff generates pseudo-random sequencing graphs, adapting the
// TGFF ("Task Graphs For Free", Dick/Rhodes/Wolf, reference [8] of the
// paper) fan-in/fan-out growth method to dataflow graphs of binary
// arithmetic operators: every operation has at most two predecessors
// (its operand producers), fan-out is bounded, and operand wordlengths
// are drawn i.i.d. uniform over a configurable range — the multiple-
// wordlength workload of the paper's evaluation (200 random graphs per
// problem size between 1 and 24 operations).
//
// Generation is fully deterministic for a given Config including Seed.
package tgff

import (
	"fmt"
	"math/rand"

	"repro/internal/dfg"
	"repro/internal/model"
)

// Shape selects the macro-structure of generated graphs.
type Shape uint8

const (
	// ShapeLayered is the default TGFF-style fan-in/fan-out growth:
	// recency-biased operand wiring yields layered DAGs.
	ShapeLayered Shape = iota
	// ShapeChain generates a fully serial dependence chain — the worst
	// case for resource sharing (no two operations are ever
	// time-compatible at λ_min) and a scheduling stress test.
	ShapeChain
	// ShapeForkJoin grows series-parallel-like structure: operations
	// either extend an open branch, fork a new branch, or join two
	// branches — the shape of expression-tree DSP kernels.
	ShapeForkJoin
)

// WidthDist selects the operand wordlength distribution.
type WidthDist uint8

const (
	// WidthUniform draws widths i.i.d. uniform over [MinWidth, MaxWidth].
	WidthUniform WidthDist = iota
	// WidthBimodal mixes a narrow mode (data-path widths) and a wide
	// mode (coefficient/accumulator widths) — the distribution multiple-
	// wordlength synthesis targets.
	WidthBimodal
	// WidthClustered draws each graph's widths from three values fixed
	// per seed, modelling designs quantised to a few precisions; it
	// maximises signature reuse and stresses kind extraction the least.
	WidthClustered
)

// Config parameterises graph generation. Zero fields take the defaults
// documented on each field.
type Config struct {
	N    int   // number of operations (required, > 0)
	Seed int64 // RNG seed; same seed, same graph

	MulProb   float64 // probability an operation is a multiply; default 0.5
	EdgeProb  float64 // probability of wiring each operand to an existing op; default 0.6
	MaxFanout int     // maximum consumers of one operation; default 3

	MinWidth int // minimum operand wordlength in bits; default 4
	MaxWidth int // maximum operand wordlength in bits; default 24

	Shape Shape     // macro-structure; default ShapeLayered
	Dist  WidthDist // wordlength distribution; default WidthUniform
}

func (c Config) withDefaults() (Config, error) {
	if c.N < 0 {
		return c, fmt.Errorf("tgff: negative size %d", c.N)
	}
	if c.MulProb == 0 {
		c.MulProb = 0.5
	}
	if c.EdgeProb == 0 {
		c.EdgeProb = 0.6
	}
	if c.MaxFanout == 0 {
		c.MaxFanout = 3
	}
	if c.MinWidth == 0 {
		c.MinWidth = 4
	}
	if c.MaxWidth == 0 {
		c.MaxWidth = 24
	}
	if c.MinWidth < 1 || c.MaxWidth < c.MinWidth {
		return c, fmt.Errorf("tgff: invalid width range [%d, %d]", c.MinWidth, c.MaxWidth)
	}
	if c.MulProb < 0 || c.MulProb > 1 || c.EdgeProb < 0 || c.EdgeProb > 1 {
		return c, fmt.Errorf("tgff: probabilities must lie in [0, 1]")
	}
	if c.Shape > ShapeForkJoin {
		return c, fmt.Errorf("tgff: unknown shape %d", c.Shape)
	}
	if c.Dist > WidthClustered {
		return c, fmt.Errorf("tgff: unknown width distribution %d", c.Dist)
	}
	return c, nil
}

// widthSampler returns the operand-width generator for the configured
// distribution, seeded from rnd (so clustered centres are per-graph).
func widthSampler(cfg Config, rnd *rand.Rand) func() int {
	span := cfg.MaxWidth - cfg.MinWidth + 1
	uniform := func() int { return cfg.MinWidth + rnd.Intn(span) }
	switch cfg.Dist {
	case WidthBimodal:
		if span < 3 {
			return uniform
		}
		mode := span / 3 // each mode covers the lower/upper third
		return func() int {
			if rnd.Intn(2) == 0 {
				return cfg.MinWidth + rnd.Intn(mode)
			}
			return cfg.MaxWidth - rnd.Intn(mode)
		}
	case WidthClustered:
		centres := [3]int{uniform(), uniform(), uniform()}
		return func() int { return centres[rnd.Intn(len(centres))] }
	default:
		return uniform
	}
}

// Generate builds a random sequencing graph. Under the default layered
// shape, operations are created in topological order and each operand of
// a new operation connects, with probability EdgeProb, to a random
// existing operation that still has fan-out budget (preferring recent
// operations, which yields the layered shape of TGFF graphs); otherwise
// the operand is a primary input. ShapeChain and ShapeForkJoin impose
// serial and series-parallel macro-structure instead.
func Generate(cfg Config) (*dfg.Graph, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rnd := rand.New(rand.NewSource(cfg.Seed))
	g := dfg.New()
	width := widthSampler(cfg, rnd)

	newOp := func(i int) dfg.OpID {
		var typ model.OpType
		var sig model.Signature
		if rnd.Float64() < cfg.MulProb {
			typ = model.Mul
			sig = model.Sig(width(), width())
		} else {
			if rnd.Intn(4) == 0 {
				typ = model.Sub
			} else {
				typ = model.Add
			}
			sig = model.AddSig(width())
		}
		return g.AddOp(fmt.Sprintf("n%d", i), typ, sig)
	}

	switch cfg.Shape {
	case ShapeChain:
		for i := 0; i < cfg.N; i++ {
			id := newOp(i)
			if i > 0 {
				if err := g.AddDep(id-1, id); err != nil {
					return nil, err
				}
			}
		}

	case ShapeForkJoin:
		// frontier holds the open branch tails. Each new operation joins
		// two branches (both operands from the frontier), extends one
		// (one operand), or opens a fresh branch from primary inputs.
		var frontier []dfg.OpID
		take := func() dfg.OpID {
			k := rnd.Intn(len(frontier))
			id := frontier[k]
			frontier[k] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			return id
		}
		for i := 0; i < cfg.N; i++ {
			id := newOp(i)
			switch {
			case len(frontier) >= 2 && rnd.Float64() < 0.4: // join
				a, b := take(), take()
				if err := g.AddDep(a, id); err != nil {
					return nil, err
				}
				if err := g.AddDep(b, id); err != nil {
					return nil, err
				}
			case len(frontier) >= 1 && rnd.Float64() < 0.75: // extend
				if err := g.AddDep(take(), id); err != nil {
					return nil, err
				}
			}
			frontier = append(frontier, id)
		}

	default: // ShapeLayered
		fanout := make([]int, 0, cfg.N)
		for i := 0; i < cfg.N; i++ {
			id := newOp(i)
			fanout = append(fanout, 0)
			for operand := 0; operand < 2 && i > 0; operand++ {
				if rnd.Float64() >= cfg.EdgeProb {
					continue // primary input
				}
				// Choose a producer among ops with fan-out budget, biased
				// towards recent ones: sample twice, keep the later.
				p := pickProducer(rnd, fanout, i, cfg.MaxFanout)
				if p < 0 {
					continue
				}
				if err := g.AddDep(dfg.OpID(p), id); err != nil {
					return nil, err
				}
				fanout[p]++
			}
		}
	}
	return g, nil
}

// pickProducer returns an index < limit with fanout budget, biased to
// recency, or -1 when none is available.
func pickProducer(rnd *rand.Rand, fanout []int, limit, maxFanout int) int {
	avail := 0
	for i := 0; i < limit; i++ {
		if fanout[i] < maxFanout {
			avail++
		}
	}
	if avail == 0 {
		return -1
	}
	a := rnd.Intn(limit)
	b := rnd.Intn(limit)
	if b > a {
		a = b
	}
	// Walk forward (wrapping) from the biased start to the next op with
	// budget.
	for k := 0; k < limit; k++ {
		i := (a + k) % limit
		if fanout[i] < maxFanout {
			return i
		}
	}
	return -1
}

// Batch generates count graphs of size n with seeds derived from base:
// base, base+1, ... — the paper's "200 random sequencing graphs for each
// problem size".
func Batch(n, count int, base int64, cfg Config) ([]*dfg.Graph, error) {
	graphs := make([]*dfg.Graph, 0, count)
	for i := 0; i < count; i++ {
		c := cfg
		c.N = n
		c.Seed = base + int64(i)
		g, err := Generate(c)
		if err != nil {
			return nil, err
		}
		graphs = append(graphs, g)
	}
	return graphs, nil
}
