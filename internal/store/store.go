// Package store implements a file-backed blob store keyed by content
// hash: one file per key, written atomically (temp file + rename into
// place) so a crash or concurrent reader never observes a torn entry.
// Loads are tolerant — a missing file is a plain miss, and callers are
// expected to treat undecodable content as a miss too, so a corrupted
// store degrades to recomputation rather than an outage.
//
// The store is the persistence layer under mwl.Service's in-memory
// cache: entries are written once per solved problem hash and read back
// across process restarts.
package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// ErrBadKey is returned for keys that are unsafe as file names. Keys
// are expected to be content hashes (hex), and are restricted to ASCII
// letters, digits, '-' and '_' so a key can never escape the store
// directory or collide with the store's own temp files.
var ErrBadKey = errors.New("store: invalid key")

// ext is appended to every entry file; it keeps entries distinguishable
// from temp files and foreign droppings in the same directory.
const ext = ".json"

// Dir is a blob store rooted at one directory. It is safe for
// concurrent use by multiple goroutines; concurrent processes are safe
// against torn reads (rename is atomic) but last-writer-wins on the
// same key, which is harmless for content-addressed entries.
type Dir struct {
	dir string

	// wmu serialises writers so two Puts of the same key cannot race
	// their renames in surprising orders within this process.
	wmu sync.Mutex
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Dir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Dir{dir: dir}, nil
}

// Path reports the directory the store is rooted at.
func (d *Dir) Path() string { return d.dir }

func validKey(key string) bool {
	if key == "" || len(key) > 256 {
		return false
	}
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

func (d *Dir) file(key string) string { return filepath.Join(d.dir, key+ext) }

// Get reads the blob stored under key. A missing entry is (nil, false,
// nil); an unreadable one reports ok=false with the read error so the
// caller can count it while still treating it as a miss.
func (d *Dir) Get(key string) ([]byte, bool, error) {
	if !validKey(key) {
		return nil, false, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	blob, err := os.ReadFile(d.file(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: read %s: %w", key, err)
	}
	return blob, true, nil
}

// Put writes the blob under key atomically: the content lands in a temp
// file in the same directory, is flushed, and is renamed into place, so
// readers see either the old entry or the whole new one — never a torn
// write, even across a crash.
func (d *Dir) Put(key string, blob []byte) error {
	if !validKey(key) {
		return fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	d.wmu.Lock()
	defer d.wmu.Unlock()
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), d.file(key)); err != nil {
		return fmt.Errorf("store: rename %s: %w", key, err)
	}
	return nil
}

// Delete removes the entry under key; deleting a missing entry is not
// an error.
func (d *Dir) Delete(key string) error {
	if !validKey(key) {
		return fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	if err := os.Remove(d.file(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: delete %s: %w", key, err)
	}
	return nil
}

// Keys lists the stored keys in directory order. Temp files and foreign
// files are skipped.
func (d *Dir) Keys() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", d.dir, err)
	}
	var keys []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ext) {
			continue
		}
		key := strings.TrimSuffix(name, ext)
		if validKey(key) {
			keys = append(keys, key)
		}
	}
	return keys, nil
}

// Len counts the stored entries.
func (d *Dir) Len() (int, error) {
	keys, err := d.Keys()
	if err != nil {
		return 0, err
	}
	return len(keys), nil
}
