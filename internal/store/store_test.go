package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("abc123", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	blob, ok, err := d.Get("abc123")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if string(blob) != `{"x":1}` {
		t.Fatalf("blob %q", blob)
	}
}

func TestGetMissing(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob, ok, err := d.Get("nothere")
	if blob != nil || ok || err != nil {
		t.Fatalf("missing key: %q %v %v", blob, ok, err)
	}
}

func TestPutOverwritesAtomically(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	blob, ok, _ := d.Get("k")
	if !ok || string(blob) != "new" {
		t.Fatalf("after overwrite: %q %v", blob, ok)
	}
	// No temp droppings left behind.
	ents, err := os.ReadDir(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("dir holds %d files, want 1", len(ents))
	}
}

func TestBadKeysRejected(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "a/b", "a.b", "k\x00", "dot.", " "} {
		if err := d.Put(key, []byte("x")); !errors.Is(err, ErrBadKey) {
			t.Fatalf("Put(%q) err = %v, want ErrBadKey", key, err)
		}
		if _, _, err := d.Get(key); !errors.Is(err, ErrBadKey) {
			t.Fatalf("Get(%q) err = %v, want ErrBadKey", key, err)
		}
		if err := d.Delete(key); !errors.Is(err, ErrBadKey) {
			t.Fatalf("Delete(%q) err = %v, want ErrBadKey", key, err)
		}
	}
}

func TestKeysSkipsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"b", "a", "c"} {
		if err := d.Put(k, []byte("{}")); err != nil {
			t.Fatal(err)
		}
	}
	// Foreign droppings that must not surface as keys.
	for _, name := range []string{".tmp-123", "README.txt", "noext"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := d.Keys()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"} // ReadDir sorts by name
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("keys %v, want %v", keys, want)
	}
	if n, err := d.Len(); err != nil || n != 3 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestDelete(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Get("k"); ok {
		t.Fatal("entry survived Delete")
	}
	if err := d.Delete("k"); err != nil {
		t.Fatalf("deleting a missing entry: %v", err)
	}
}

func TestReopenSeesEntries(t *testing.T) {
	dir := t.TempDir()
	d1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put("persist", []byte("42")); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, ok, err := d2.Get("persist")
	if err != nil || !ok || string(blob) != "42" {
		t.Fatalf("reopen: %q %v %v", blob, ok, err)
	}
}

func TestConcurrentPutsSameKey(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := d.Put("k", []byte(`{"v":"same"}`)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	blob, ok, err := d.Get("k")
	if err != nil || !ok || string(blob) != `{"v":"same"}` {
		t.Fatalf("after concurrent puts: %q %v %v", blob, ok, err)
	}
}
