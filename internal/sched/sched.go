// Package sched implements the paper's §2.2: resource-constrained list
// scheduling of a sequencing graph using incomplete wordlength
// information. Operations are scheduled with their latency *upper bounds*
// L_o (so any later binding can never violate the schedule), and the
// resource constraint is the reconstruction of the paper's Eqn. 3: with S
// a minimum-cardinality scheduling set of resource kinds covering every
// operation, and S(o) the members of S compatible with operation o,
//
//	∀y ∈ Y :  Σ_{s∈S_y}  max_{t∈T}  Σ_{o∈O(s)} e_{o,t} / |S(o)|  ≤  N_y
//
// Usage of an operation compatible with several scheduling-set members is
// shared equally between them (the 1/|S(o)| division), the max over
// control steps counts the peak per-kind demand, and the outer sum over
// the scheduling set accounts for cross-step kind conflicts that the
// classical constraint (Eqn. 2, per-step counting) misses. Shares are
// kept in exact integer arithmetic scaled by the lcm of the |S(o)|.
package sched

import (
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/wcg"
)

// Limits is the per-hardware-class resource constraint N_y. A class
// absent from the map is unconstrained. A nil Limits means fully
// unconstrained scheduling (which reduces to ASAP).
type Limits map[model.OpType]int

// Result is a schedule of the sequencing graph.
type Result struct {
	Start    []int // start control step per operation
	Makespan int   // completion step of the last operation under the scheduling latencies
	SchedSet []int // kind indices of the scheduling set used for Eqn. 3
}

// ErrResourceInfeasible is returned when some ready operation cannot be
// scheduled at any control step under Eqn. 3 — the signal for Algorithm
// DPAlloc to refine wordlength information.
var ErrResourceInfeasible = errors.New("sched: resource constraint unsatisfiable under Eqn. 3")

// InfeasibleError reports the operation that could not be placed under
// the resource constraint. It matches ErrResourceInfeasible via
// errors.Is.
type InfeasibleError struct {
	Op dfg.OpID
	// Need is how many additional resources of the operation's hardware
	// class Eqn. 3 was short at the deadlock (≥ 1): the class overload
	// divided by the accounting scale, rounded up. Callers searching
	// over resource bounds can jump by Need instead of probing one unit
	// at a time.
	Need int
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("sched: operation %d cannot be placed under Eqn. 3", e.Op)
}

// Is reports whether target is ErrResourceInfeasible.
func (e *InfeasibleError) Is(target error) bool { return target == ErrResourceInfeasible }

// SchedulingSet computes a small subset S ⊆ R such that every operation
// has an H edge to some member, preferring large cover then small area
// (greedy set cover; minimum-cardinality covering is NP-hard, and the
// greedy bound is the standard choice). Cover counts are popcounts of
// kind-adjacency bit sets against the uncovered set, so each round is
// O(|R| · n/64) rather than a per-kind operation-list scan.
func SchedulingSet(g *wcg.Graph) []int {
	n := g.D.N()
	uncovered := bitset.New(n)
	for i := 0; i < n; i++ {
		uncovered.Add(i)
	}
	remaining := n
	var set []int
	// Lazy greedy: cover counts only shrink as operations get covered,
	// so a cached count is an upper bound and the popped top, once its
	// count validates, beats every other kind — the selection sequence
	// is identical to rescanning all kinds each round. The comparator
	// (cover desc, area asc, index asc) reproduces the scan's winner.
	type cand struct {
		ki    int
		cover int
		area  int64
	}
	better := func(a, b cand) bool {
		if a.cover != b.cover {
			return a.cover > b.cover
		}
		if a.area != b.area {
			return a.area < b.area
		}
		return a.ki < b.ki
	}
	var h []cand
	push := func(v cand) {
		h = append(h, v)
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if better(h[p], h[i]) {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
	}
	pop := func() cand {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && better(h[l], h[m]) {
				m = l
			}
			if r < len(h) && better(h[r], h[m]) {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
		return top
	}
	for ki := range g.Kinds {
		if c := g.CompatOpCount(ki); c > 0 {
			push(cand{ki: ki, cover: c, area: g.Lib.Area(g.Kinds[ki])})
		}
	}
	for remaining > 0 {
		if len(h) == 0 {
			// Build guarantees every op has an edge, so this cannot
			// happen for a consistent graph.
			panic("sched: operation with no compatible kind")
		}
		e := pop()
		c := g.CompatOpBits(e.ki).IntersectCount(uncovered)
		if c == 0 {
			continue
		}
		if c < e.cover {
			e.cover = c
			push(e)
			continue
		}
		set = append(set, e.ki)
		remaining -= c
		uncovered.Difference(g.CompatOpBits(e.ki))
		// A selected kind's future cover is zero; it never re-enters.
	}
	sort.Ints(set)
	return set
}

// constraintMode selects the resource-accounting rule.
type constraintMode int

const (
	modeEqn3 constraintMode = iota // paper's constraint (default)
	modeEqn2                       // classical per-step counting (ablation)
)

// List schedules the graph with latency upper bounds from the
// compatibility graph under Eqn. 3. With nil or empty limits it reduces
// to ASAP scheduling.
func List(g *wcg.Graph, limits Limits) (Result, error) {
	return list(g, limits, modeEqn3)
}

// ListEqn2 schedules with the classical Eqn. 2 constraint (resource usage
// counted per step per class, ignoring wordlength information). Exposed
// for the ablation benches; the paper shows this constraint is too weak
// to guarantee bindability.
func ListEqn2(g *wcg.Graph, limits Limits) (Result, error) {
	return list(g, limits, modeEqn2)
}

func list(g *wcg.Graph, limits Limits, mode constraintMode) (Result, error) {
	d := g.D
	n := d.N()
	lat := g.UpperLatSlice()
	res := Result{Start: make([]int, n)}
	if n == 0 {
		return res, nil
	}

	order, err := g.TopoOrder()
	if err != nil {
		return Result{}, err
	}
	prio := priorities(d, order, func(id dfg.OpID) int { return lat[id] })

	// The accountant is devirtualized for the common Eqn. 3 case: the
	// deferral-retry loop below queries feasibility roughly (ready ×
	// steps) times, and an interface call per query costs more than the
	// cached answer it usually returns.
	var acct accountant
	var a3 *eqn3Acct
	var sig, sigEpoch, sigOkL, sigBadL []int
	if len(limits) > 0 {
		switch mode {
		case modeEqn3:
			res.SchedSet = SchedulingSet(g)
			a3 = newEqn3Accountant(g, res.SchedSet, limits)
			acct = a3
			sig, sigEpoch, sigOkL, sigBadL = a3.sig, a3.sigEpoch, a3.sigOkL, a3.sigBadL
		case modeEqn2:
			acct = newEqn2Accountant(g, limits)
		}
	}

	// Readiness is tracked by events instead of per-step rescans: an
	// operation enters the pending heap (keyed by the max finish of its
	// predecessors) the moment its last predecessor is placed, and moves
	// to the ready list once t reaches that key. Deferred operations —
	// ready but rejected by the accountant — simply stay on the ready
	// list for the next step, which is exactly the retry behavior of the
	// original full rescan.
	predLeft := make([]int, n)
	for i := 0; i < n; i++ {
		predLeft[i] = len(d.Pred(dfg.OpID(i)))
	}
	finish := make([]int, n) // valid once scheduled
	var pending pendHeap     // ops whose preds are placed but still running
	var running intHeap      // finish times of placed operations
	ready := make([]dfg.OpID, 0, n)
	for i := 0; i < n; i++ {
		if predLeft[i] == 0 {
			ready = append(ready, dfg.OpID(i))
		}
	}
	// Placement order is (priority desc, ID asc) — a strict total order
	// since IDs are distinct. The ready list is kept sorted: deferrals
	// preserve order, and each step's arrivals are sorted alone and
	// merged in, instead of re-sorting the whole list every step.
	cmpOp := func(a, b dfg.OpID) int {
		if prio[a] != prio[b] {
			return prio[b] - prio[a]
		}
		return int(a) - int(b)
	}
	slices.SortFunc(ready, cmpOp)
	var incoming, merged []dfg.OpID
	nDone := 0
	t := 0
	horizonGuard := 0
	maxGuard := 4 * (n + 2) * (maxLat(g) + 1)
	for nDone < n {
		incoming = incoming[:0]
		for len(pending) > 0 && pending[0].at <= t {
			incoming = append(incoming, pending.pop().op)
		}
		if len(incoming) > 0 {
			slices.SortFunc(incoming, cmpOp)
			merged = merged[:0]
			i, j := 0, 0
			for i < len(ready) && j < len(incoming) {
				if cmpOp(ready[i], incoming[j]) < 0 {
					merged = append(merged, ready[i])
					i++
				} else {
					merged = append(merged, incoming[j])
					j++
				}
			}
			merged = append(merged, ready[i:]...)
			merged = append(merged, incoming[j:]...)
			ready, merged = merged, ready
		}
		progress := false
		kept := ready[:0]
		for _, o := range ready {
			l := lat[o]
			if a3 != nil {
				// Manually inlined probe of the accountant's monotone
				// signature cache; only misses pay the call into fits.
				ok, hit := false, false
				if sig != nil && t == a3.lastT {
					if s := sig[o]; sigEpoch[s] == a3.epoch {
						if l <= sigOkL[s] {
							ok, hit = true, true
						} else if l >= sigBadL[s] {
							hit = true
						}
					}
				}
				if !hit {
					ok = a3.fits(o, t, l)
				}
				if !ok {
					kept = append(kept, o)
					continue
				}
			} else if acct != nil && !acct.fits(o, t, l) {
				kept = append(kept, o)
				continue
			}
			if acct != nil {
				acct.commit(o, t, l)
			}
			res.Start[o] = t
			f := t + l
			finish[o] = f
			if f > res.Makespan {
				res.Makespan = f
			}
			running.push(f)
			nDone++
			progress = true
			for _, s := range d.Succ(o) {
				predLeft[s]--
				if predLeft[s] == 0 {
					at := 0
					for _, p := range d.Pred(s) {
						if finish[p] > at {
							at = finish[p]
						}
					}
					// Successors finish after t, so at > t always:
					// they become ready at a strictly later step.
					pending.push(pendItem{at: at, op: s})
				}
			}
		}
		ready = kept
		if nDone == n {
			break
		}
		// Advance to the next interesting step: the earliest finish time
		// of a running operation, or t+1 if deferral was purely due to
		// resource accounting.
		for len(running) > 0 && running[0] <= t {
			running.pop()
		}
		next := -1
		if len(running) > 0 {
			next = running[0]
		}
		if next < 0 {
			if !progress && len(ready) > 0 {
				// Idle machine, ready work, nothing fits: under peak
				// accounting this cannot improve at a later step.
				need := 1
				if a3 != nil {
					if d := a3.deficit(ready[0], t, lat[ready[0]]); d > need {
						need = d
					}
				}
				return Result{}, &InfeasibleError{Op: ready[0], Need: need}
			}
			next = t + 1
		}
		t = next
		horizonGuard++
		if horizonGuard > maxGuard {
			return Result{}, fmt.Errorf("%w: no progress within horizon", ErrResourceInfeasible)
		}
	}
	return res, nil
}

// pendItem is an operation waiting for its predecessors to finish.
type pendItem struct {
	at int // step at which the op becomes ready (max pred finish)
	op dfg.OpID
}

// pendHeap is a min-heap of pendItems by readiness step. Order among
// equal steps is irrelevant: the ready list is sorted by priority before
// placement.
type pendHeap []pendItem

func (h *pendHeap) push(v pendItem) {
	*h = append(*h, v)
	a := *h
	for i := len(a) - 1; i > 0; {
		p := (i - 1) / 2
		if a[p].at <= a[i].at {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *pendHeap) pop() pendItem {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	*h = a[:last]
	a = a[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a) && a[l].at < a[m].at {
			m = l
		}
		if r < len(a) && a[r].at < a[m].at {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// intHeap is a min-heap of ints (finish times of running operations).
type intHeap []int

func (h *intHeap) push(v int) {
	*h = append(*h, v)
	a := *h
	for i := len(a) - 1; i > 0; {
		p := (i - 1) / 2
		if a[p] <= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	*h = a[:last]
	a = a[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a) && a[l] < a[m] {
			m = l
		}
		if r < len(a) && a[r] < a[m] {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

func maxLat(g *wcg.Graph) int {
	m := 1
	for o := 0; o < g.D.N(); o++ {
		if l := g.UpperLatency(dfg.OpID(o)); l > m {
			m = l
		}
	}
	return m
}

// priorities returns the standard list-scheduling priority: the longest
// path (in cycles, inclusive of own latency) from each operation to any
// sink. Most critical first.
func priorities(d *dfg.Graph, order []dfg.OpID, L dfg.Latencies) []int {
	prio := make([]int, d.N())
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0
		for _, s := range d.Succ(id) {
			if prio[s] > best {
				best = prio[s]
			}
		}
		prio[id] = best + L(id)
	}
	return prio
}

// accountant tracks resource usage and answers feasibility queries for
// placing an operation over [t, t+l).
type accountant interface {
	fits(o dfg.OpID, t, l int) bool
	commit(o dfg.OpID, t, l int)
}

// ---- Eqn. 3 accounting ----

type eqn3Acct struct {
	scale int64   // lcm of |S(o)| over all operations
	share []int64 // scale / |S(o)| per op
	// limitScaled[o] is the op's class limit times scale, or -1 when the
	// class is unconstrained; classOf[o] is a dense class index. Both
	// precomputed so fits performs no map lookups. H edges are
	// intra-class (Kind.Covers requires the class to match), so every
	// member of S(o) is of o's class.
	limitScaled []int64
	classOf     []int
	// S(o): a bit mask over set slots when the set fits in 64 bits (the
	// common case, iterated with no memory traffic), else explicit slot
	// lists in sOf.
	mask []uint64
	sOf  [][]int
	// per scheduling-set member: load per step, current peak, and the
	// slot's dense class index. classSum[y] = Σ peak over the slots of
	// class y, maintained on commit so the Eqn. 3 sum in fits reduces to
	// the class total plus the peak deltas of the |S(o)| touched slots.
	load      [][]int64
	peak      []int64
	slotClass []int
	classSum  []int64
	// Signature cache: operations with identical S(o) (same scheduling-
	// set members, hence same share, class and limit) get identical fits
	// answers at the same step, and the answer stays valid until a
	// commit changes the loads or t advances. Feasibility is antitone in
	// the latency (a longer occupancy only raises peaks), so per
	// signature the largest latency known to fit and the smallest known
	// not to fit bound every repeat query. Deferred operations retried
	// every step collapse to at most two evaluations per signature.
	// sig is nil when |S| exceeds the 64-bit mask.
	sig      []int
	sigEpoch []int
	sigOkL   []int
	sigBadL  []int
	epoch    int
	lastT    int
}

func newEqn3Accountant(g *wcg.Graph, set []int, limits Limits) *eqn3Acct {
	n := g.D.N()
	a := &eqn3Acct{
		share:       make([]int64, n),
		limitScaled: make([]int64, n),
		classOf:     make([]int, n),
		load:        make([][]int64, len(set)),
		peak:        make([]int64, len(set)),
		slotClass:   make([]int, len(set)),
		epoch:       1,
	}
	// Per slot: the dense class index and limit of its class. Any member
	// of S(o) names o's class, so per-op lookups reduce to slot lookups.
	classID := make(map[model.OpType]int)
	slotLimit := make([]int64, len(set))
	for si, ki := range set {
		y := g.Kinds[ki].Class
		id, ok := classID[y]
		if !ok {
			id = len(classID)
			classID[y] = id
		}
		a.slotClass[si] = id
		if limit, ok := limits[y]; ok {
			slotLimit[si] = int64(limit)
		} else {
			slotLimit[si] = -1
		}
	}
	a.classSum = make([]int64, len(classID))
	sizes := make([]int, n)
	a.scale = 1
	if len(set) <= 64 {
		a.mask = make([]uint64, n)
		for si, ki := range set {
			bit := uint64(1) << uint(si)
			mask := a.mask
			g.CompatOpBits(ki).ForEach(func(o int) { mask[o] |= bit })
		}
		sigOf := make(map[uint64]int)
		a.sig = make([]int, n)
		for o := 0; o < n; o++ {
			m := a.mask[o]
			if m == 0 {
				panic("sched: scheduling set does not cover operation")
			}
			sizes[o] = bits.OnesCount64(m)
			a.scale = lcm(a.scale, int64(sizes[o]))
			first := bits.TrailingZeros64(m)
			a.classOf[o] = a.slotClass[first]
			a.limitScaled[o] = slotLimit[first]
			id, ok := sigOf[m]
			if !ok {
				id = len(sigOf)
				sigOf[m] = id
			}
			a.sig[o] = id
		}
		a.sigEpoch = make([]int, len(sigOf))
		a.sigOkL = make([]int, len(sigOf))
		a.sigBadL = make([]int, len(sigOf))
	} else {
		a.sOf = make([][]int, n)
		for si, ki := range set {
			sOf := a.sOf
			g.CompatOpBits(ki).ForEach(func(o int) { sOf[o] = append(sOf[o], si) })
		}
		for o := 0; o < n; o++ {
			if len(a.sOf[o]) == 0 {
				panic("sched: scheduling set does not cover operation")
			}
			sizes[o] = len(a.sOf[o])
			a.scale = lcm(a.scale, int64(sizes[o]))
			first := a.sOf[o][0]
			a.classOf[o] = a.slotClass[first]
			a.limitScaled[o] = slotLimit[first]
		}
	}
	for o := 0; o < n; o++ {
		a.share[o] = a.scale / int64(sizes[o])
		if a.limitScaled[o] >= 0 {
			a.limitScaled[o] *= a.scale
		}
	}
	return a
}

// peakDelta returns the increase of slot si's peak if the op occupied
// [t, t+l) with the given share.
func (a *eqn3Acct) peakDelta(si, t, l int, share int64) int64 {
	p := a.peak[si]
	np := p
	for step := t; step < t+l; step++ {
		if v := a.loadAt(si, step) + share; v > np {
			np = v
		}
	}
	return np - p
}

func (a *eqn3Acct) fits(o dfg.OpID, t, l int) bool {
	lim := a.limitScaled[o]
	if lim < 0 {
		return true
	}
	if t != a.lastT {
		a.lastT = t
		a.epoch++
	}
	s := -1
	if a.sig != nil {
		s = a.sig[o]
		if a.sigEpoch[s] == a.epoch {
			if l <= a.sigOkL[s] {
				return true
			}
			if l >= a.sigBadL[s] {
				return false
			}
		}
	}
	// New Σ_{s∈S_y} peak_s if o occupies [t, t+l) with share w on each
	// member of S(o): the maintained class total plus the peak delta of
	// each touched slot.
	sum := a.classSum[a.classOf[o]]
	if a.mask != nil {
		for m := a.mask[o]; m != 0; m &= m - 1 {
			sum += a.peakDelta(bits.TrailingZeros64(m), t, l, a.share[o])
		}
	} else {
		for _, si := range a.sOf[o] {
			sum += a.peakDelta(si, t, l, a.share[o])
		}
	}
	res := sum <= lim
	if s >= 0 {
		if a.sigEpoch[s] != a.epoch {
			a.sigEpoch[s] = a.epoch
			a.sigOkL[s] = 0
			a.sigBadL[s] = int(^uint(0) >> 1)
		}
		if res {
			if l > a.sigOkL[s] {
				a.sigOkL[s] = l
			}
		} else if l < a.sigBadL[s] {
			a.sigBadL[s] = l
		}
	}
	return res
}

// deficit returns how many whole resources of o's class are missing for
// o to occupy [t, t+l) under Eqn. 3 given the committed loads: the class
// sum's excess over the scaled limit, divided by the scale, rounded up.
// 0 means o fits.
func (a *eqn3Acct) deficit(o dfg.OpID, t, l int) int {
	lim := a.limitScaled[o]
	if lim < 0 {
		return 0
	}
	sum := a.classSum[a.classOf[o]]
	if a.mask != nil {
		for m := a.mask[o]; m != 0; m &= m - 1 {
			sum += a.peakDelta(bits.TrailingZeros64(m), t, l, a.share[o])
		}
	} else {
		for _, si := range a.sOf[o] {
			sum += a.peakDelta(si, t, l, a.share[o])
		}
	}
	if sum <= lim {
		return 0
	}
	return int((sum - lim + a.scale - 1) / a.scale)
}

func (a *eqn3Acct) commitSlot(si, t, l int, share int64) {
	for step := t; step < t+l; step++ {
		a.addLoad(si, step, share)
		if v := a.loadAt(si, step); v > a.peak[si] {
			a.classSum[a.slotClass[si]] += v - a.peak[si]
			a.peak[si] = v
		}
	}
}

func (a *eqn3Acct) commit(o dfg.OpID, t, l int) {
	a.epoch++ // loads change; cached fits answers are stale
	if a.mask != nil {
		for m := a.mask[o]; m != 0; m &= m - 1 {
			a.commitSlot(bits.TrailingZeros64(m), t, l, a.share[o])
		}
		return
	}
	for _, si := range a.sOf[o] {
		a.commitSlot(si, t, l, a.share[o])
	}
}

func (a *eqn3Acct) loadAt(si, step int) int64 {
	if step < len(a.load[si]) {
		return a.load[si][step]
	}
	return 0
}

func (a *eqn3Acct) addLoad(si, step int, w int64) {
	for step >= len(a.load[si]) {
		a.load[si] = append(a.load[si], 0)
	}
	a.load[si][step] += w
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 { return a / gcd(a, b) * b }

// ---- Eqn. 2 accounting (ablation) ----

type eqn2Acct struct {
	limits Limits
	class  []model.OpType
	used   map[model.OpType][]int // per class: count per step
}

func newEqn2Accountant(g *wcg.Graph, limits Limits) *eqn2Acct {
	n := g.D.N()
	a := &eqn2Acct{limits: limits, class: make([]model.OpType, n), used: make(map[model.OpType][]int)}
	for o := 0; o < n; o++ {
		a.class[o] = g.D.Op(dfg.OpID(o)).Spec.Type.HardwareClass()
	}
	return a
}

func (a *eqn2Acct) fits(o dfg.OpID, t, l int) bool {
	y := a.class[o]
	limit, ok := a.limits[y]
	if !ok {
		return true
	}
	u := a.used[y]
	for step := t; step < t+l; step++ {
		if step < len(u) && u[step]+1 > limit {
			return false
		}
	}
	return true
}

func (a *eqn2Acct) commit(o dfg.OpID, t, l int) {
	y := a.class[o]
	u := a.used[y]
	for t+l > len(u) {
		u = append(u, 0)
	}
	for step := t; step < t+l; step++ {
		u[step]++
	}
	a.used[y] = u
}
