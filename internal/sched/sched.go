// Package sched implements the paper's §2.2: resource-constrained list
// scheduling of a sequencing graph using incomplete wordlength
// information. Operations are scheduled with their latency *upper bounds*
// L_o (so any later binding can never violate the schedule), and the
// resource constraint is the reconstruction of the paper's Eqn. 3: with S
// a minimum-cardinality scheduling set of resource kinds covering every
// operation, and S(o) the members of S compatible with operation o,
//
//	∀y ∈ Y :  Σ_{s∈S_y}  max_{t∈T}  Σ_{o∈O(s)} e_{o,t} / |S(o)|  ≤  N_y
//
// Usage of an operation compatible with several scheduling-set members is
// shared equally between them (the 1/|S(o)| division), the max over
// control steps counts the peak per-kind demand, and the outer sum over
// the scheduling set accounts for cross-step kind conflicts that the
// classical constraint (Eqn. 2, per-step counting) misses. Shares are
// kept in exact integer arithmetic scaled by the lcm of the |S(o)|.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/wcg"
)

// Limits is the per-hardware-class resource constraint N_y. A class
// absent from the map is unconstrained. A nil Limits means fully
// unconstrained scheduling (which reduces to ASAP).
type Limits map[model.OpType]int

// Result is a schedule of the sequencing graph.
type Result struct {
	Start    []int // start control step per operation
	Makespan int   // completion step of the last operation under the scheduling latencies
	SchedSet []int // kind indices of the scheduling set used for Eqn. 3
}

// ErrResourceInfeasible is returned when some ready operation cannot be
// scheduled at any control step under Eqn. 3 — the signal for Algorithm
// DPAlloc to refine wordlength information.
var ErrResourceInfeasible = errors.New("sched: resource constraint unsatisfiable under Eqn. 3")

// InfeasibleError reports the operation that could not be placed under
// the resource constraint. It matches ErrResourceInfeasible via
// errors.Is.
type InfeasibleError struct {
	Op dfg.OpID
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("sched: operation %d cannot be placed under Eqn. 3", e.Op)
}

// Is reports whether target is ErrResourceInfeasible.
func (e *InfeasibleError) Is(target error) bool { return target == ErrResourceInfeasible }

// SchedulingSet computes a small subset S ⊆ R such that every operation
// has an H edge to some member, preferring large cover then small area
// (greedy set cover; minimum-cardinality covering is NP-hard, and the
// greedy bound is the standard choice).
func SchedulingSet(g *wcg.Graph) []int {
	n := g.D.N()
	covered := make([]bool, n)
	remaining := n
	var set []int
	for remaining > 0 {
		best, bestCover := -1, 0
		var bestArea int64
		for ki := range g.Kinds {
			c := 0
			for _, o := range g.CompatOps(ki) {
				if !covered[o] {
					c++
				}
			}
			if c == 0 {
				continue
			}
			a := g.Lib.Area(g.Kinds[ki])
			if c > bestCover || (c == bestCover && a < bestArea) {
				best, bestCover, bestArea = ki, c, a
			}
		}
		if best < 0 {
			// Build guarantees every op has an edge, so this cannot
			// happen for a consistent graph.
			panic("sched: operation with no compatible kind")
		}
		set = append(set, best)
		for _, o := range g.CompatOps(best) {
			if !covered[o] {
				covered[o] = true
				remaining--
			}
		}
	}
	sort.Ints(set)
	return set
}

// constraintMode selects the resource-accounting rule.
type constraintMode int

const (
	modeEqn3 constraintMode = iota // paper's constraint (default)
	modeEqn2                       // classical per-step counting (ablation)
)

// List schedules the graph with latency upper bounds from the
// compatibility graph under Eqn. 3. With nil or empty limits it reduces
// to ASAP scheduling.
func List(g *wcg.Graph, limits Limits) (Result, error) {
	return list(g, limits, modeEqn3)
}

// ListEqn2 schedules with the classical Eqn. 2 constraint (resource usage
// counted per step per class, ignoring wordlength information). Exposed
// for the ablation benches; the paper shows this constraint is too weak
// to guarantee bindability.
func ListEqn2(g *wcg.Graph, limits Limits) (Result, error) {
	return list(g, limits, modeEqn2)
}

func list(g *wcg.Graph, limits Limits, mode constraintMode) (Result, error) {
	d := g.D
	n := d.N()
	L := g.UpperLatencies()
	res := Result{Start: make([]int, n)}
	if n == 0 {
		return res, nil
	}

	order, err := d.TopoOrder()
	if err != nil {
		return Result{}, err
	}
	prio := priorities(d, order, L)

	var acct accountant
	if len(limits) > 0 {
		switch mode {
		case modeEqn3:
			res.SchedSet = SchedulingSet(g)
			acct = newEqn3Accountant(g, res.SchedSet, limits)
		case modeEqn2:
			acct = newEqn2Accountant(g, limits)
		}
	}

	scheduled := make([]bool, n)
	finish := make([]int, n) // valid once scheduled
	nDone := 0
	t := 0
	horizonGuard := 0
	for nDone < n {
		// Ready operations: unscheduled, all predecessors finish by t.
		var ready []dfg.OpID
		for i := 0; i < n; i++ {
			if scheduled[i] {
				continue
			}
			ok := true
			for _, p := range d.Pred(dfg.OpID(i)) {
				if !scheduled[p] || finish[p] > t {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, dfg.OpID(i))
			}
		}
		sort.Slice(ready, func(i, j int) bool {
			a, b := ready[i], ready[j]
			if prio[a] != prio[b] {
				return prio[a] > prio[b]
			}
			return a < b
		})
		progress := false
		for _, o := range ready {
			if acct != nil && !acct.fits(o, t, L(o)) {
				continue
			}
			if acct != nil {
				acct.commit(o, t, L(o))
			}
			scheduled[o] = true
			res.Start[o] = t
			finish[o] = t + L(o)
			if finish[o] > res.Makespan {
				res.Makespan = finish[o]
			}
			nDone++
			progress = true
		}
		if nDone == n {
			break
		}
		// Advance to the next interesting step: the earliest finish time
		// of a running operation, or t+1 if deferral was purely due to
		// resource accounting.
		next := -1
		for i := 0; i < n; i++ {
			if scheduled[i] && finish[i] > t && (next < 0 || finish[i] < next) {
				next = finish[i]
			}
		}
		if next < 0 {
			if !progress && len(ready) > 0 {
				// Idle machine, ready work, nothing fits: under peak
				// accounting this cannot improve at a later step.
				return Result{}, &InfeasibleError{Op: ready[0]}
			}
			next = t + 1
		}
		t = next
		horizonGuard++
		if max := 4 * (n + 2) * (maxLat(g) + 1); horizonGuard > max {
			return Result{}, fmt.Errorf("%w: no progress within horizon", ErrResourceInfeasible)
		}
	}
	return res, nil
}

func maxLat(g *wcg.Graph) int {
	m := 1
	for o := 0; o < g.D.N(); o++ {
		if l := g.UpperLatency(dfg.OpID(o)); l > m {
			m = l
		}
	}
	return m
}

// priorities returns the standard list-scheduling priority: the longest
// path (in cycles, inclusive of own latency) from each operation to any
// sink. Most critical first.
func priorities(d *dfg.Graph, order []dfg.OpID, L dfg.Latencies) []int {
	prio := make([]int, d.N())
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0
		for _, s := range d.Succ(id) {
			if prio[s] > best {
				best = prio[s]
			}
		}
		prio[id] = best + L(id)
	}
	return prio
}

// accountant tracks resource usage and answers feasibility queries for
// placing an operation over [t, t+l).
type accountant interface {
	fits(o dfg.OpID, t, l int) bool
	commit(o dfg.OpID, t, l int)
}

// ---- Eqn. 3 accounting ----

type eqn3Acct struct {
	g        *wcg.Graph
	limits   Limits
	scale    int64   // lcm of |S(o)| over all operations
	share    []int64 // scale / |S(o)| per op
	sOf      [][]int // S(o): indices into set, per op
	class    []model.OpType
	slotKind []int // kind index per scheduling-set slot
	// per scheduling-set member: load per step and current peak
	load [][]int64
	peak []int64
	// members of the set per class
	members map[model.OpType][]int
}

func newEqn3Accountant(g *wcg.Graph, set []int, limits Limits) *eqn3Acct {
	n := g.D.N()
	a := &eqn3Acct{
		g:        g,
		limits:   limits,
		share:    make([]int64, n),
		sOf:      make([][]int, n),
		class:    make([]model.OpType, n),
		slotKind: append([]int(nil), set...),
		load:     make([][]int64, len(set)),
		peak:     make([]int64, len(set)),
		members:  make(map[model.OpType][]int),
	}
	for si, ki := range set {
		a.members[g.Kinds[ki].Class] = append(a.members[g.Kinds[ki].Class], si)
	}
	a.scale = 1
	for o := 0; o < n; o++ {
		a.class[o] = g.D.Op(dfg.OpID(o)).Spec.Type.HardwareClass()
		for si, ki := range set {
			if g.Compatible(dfg.OpID(o), ki) {
				a.sOf[o] = append(a.sOf[o], si)
			}
		}
		if len(a.sOf[o]) == 0 {
			panic("sched: scheduling set does not cover operation")
		}
		a.scale = lcm(a.scale, int64(len(a.sOf[o])))
	}
	for o := 0; o < n; o++ {
		a.share[o] = a.scale / int64(len(a.sOf[o]))
	}
	return a
}

func (a *eqn3Acct) fits(o dfg.OpID, t, l int) bool {
	y := a.class[o]
	limit, ok := a.limits[y]
	if !ok {
		return true
	}
	// New Σ_{s∈S_y} peak_s if o occupies [t, t+l) with share w on each
	// member of S(o).
	var sum int64
	bumped := make(map[int]int64, len(a.sOf[o]))
	for _, si := range a.sOf[o] {
		if a.g.Kinds[a.slotKind[si]].Class != y {
			continue
		}
		p := a.peak[si]
		for step := t; step < t+l; step++ {
			if v := a.loadAt(si, step) + a.share[o]; v > p {
				p = v
			}
		}
		bumped[si] = p
	}
	for _, si := range a.members[y] {
		if p, ok := bumped[si]; ok {
			sum += p
		} else {
			sum += a.peak[si]
		}
	}
	return sum <= int64(limit)*a.scale
}

func (a *eqn3Acct) commit(o dfg.OpID, t, l int) {
	for _, si := range a.sOf[o] {
		for step := t; step < t+l; step++ {
			a.addLoad(si, step, a.share[o])
			if v := a.loadAt(si, step); v > a.peak[si] {
				a.peak[si] = v
			}
		}
	}
}

func (a *eqn3Acct) loadAt(si, step int) int64 {
	if step < len(a.load[si]) {
		return a.load[si][step]
	}
	return 0
}

func (a *eqn3Acct) addLoad(si, step int, w int64) {
	for step >= len(a.load[si]) {
		a.load[si] = append(a.load[si], 0)
	}
	a.load[si][step] += w
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 { return a / gcd(a, b) * b }

// ---- Eqn. 2 accounting (ablation) ----

type eqn2Acct struct {
	limits Limits
	class  []model.OpType
	used   map[model.OpType][]int // per class: count per step
}

func newEqn2Accountant(g *wcg.Graph, limits Limits) *eqn2Acct {
	n := g.D.N()
	a := &eqn2Acct{limits: limits, class: make([]model.OpType, n), used: make(map[model.OpType][]int)}
	for o := 0; o < n; o++ {
		a.class[o] = g.D.Op(dfg.OpID(o)).Spec.Type.HardwareClass()
	}
	return a
}

func (a *eqn2Acct) fits(o dfg.OpID, t, l int) bool {
	y := a.class[o]
	limit, ok := a.limits[y]
	if !ok {
		return true
	}
	u := a.used[y]
	for step := t; step < t+l; step++ {
		if step < len(u) && u[step]+1 > limit {
			return false
		}
	}
	return true
}

func (a *eqn2Acct) commit(o dfg.OpID, t, l int) {
	y := a.class[o]
	u := a.used[y]
	for t+l > len(u) {
		u = append(u, 0)
	}
	for step := t; step < t+l; step++ {
		u[step]++
	}
	a.used[y] = u
}
