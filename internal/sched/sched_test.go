package sched

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/wcg"
)

func build(t *testing.T, d *dfg.Graph) *wcg.Graph {
	t.Helper()
	g, err := wcg.Build(d, model.Default())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkSchedule verifies precedence legality of a schedule under the
// scheduling latencies (the upper bounds).
func checkSchedule(t *testing.T, g *wcg.Graph, r Result) {
	t.Helper()
	L := g.UpperLatencies()
	for i := 0; i < g.D.N(); i++ {
		id := dfg.OpID(i)
		if r.Start[i] < 0 {
			t.Fatalf("op %d starts at %d", i, r.Start[i])
		}
		for _, p := range g.D.Pred(id) {
			if r.Start[p]+L(p) > r.Start[i] {
				t.Fatalf("precedence violated: %d(start %d, lat %d) -> %d(start %d)",
					p, r.Start[p], L(p), i, r.Start[i])
			}
		}
		if f := r.Start[i] + L(id); f > r.Makespan {
			t.Fatalf("makespan %d below finish of op %d (%d)", r.Makespan, i, f)
		}
	}
}

func TestUnconstrainedIsASAP(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		d := randomDAG(rnd, 1+rnd.Intn(16))
		g := build(t, d)
		r, err := List(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkSchedule(t, g, r)
		asap, ms, err := d.ASAP(g.UpperLatencies())
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan != ms {
			t.Fatalf("unconstrained makespan %d != ASAP %d", r.Makespan, ms)
		}
		for i := range asap {
			if r.Start[i] != asap[i] {
				t.Fatalf("start[%d] = %d, ASAP %d", i, r.Start[i], asap[i])
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := build(t, dfg.New())
	r, err := List(g, Limits{model.Mul: 1})
	if err != nil || r.Makespan != 0 {
		t.Fatalf("empty graph: %v %v", r, err)
	}
}

func TestSchedulingSetCovers(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		d := randomDAG(rnd, 1+rnd.Intn(16))
		g := build(t, d)
		set := SchedulingSet(g)
		for i := 0; i < d.N(); i++ {
			ok := false
			for _, ki := range set {
				if g.Compatible(dfg.OpID(i), ki) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("scheduling set %v misses op %d", set, i)
			}
		}
		// Minimality in the easy case: all same class single join top kind.
	}
}

func TestSchedulingSetSmallestCase(t *testing.T) {
	// All multiplications covered by the join-top kind: |S| must be 1.
	d := dfg.New()
	d.AddOp("", model.Mul, model.Sig(8, 8))
	d.AddOp("", model.Mul, model.Sig(12, 4))
	d.AddOp("", model.Mul, model.Sig(10, 10))
	g := build(t, d)
	set := SchedulingSet(g)
	if len(set) != 1 {
		t.Fatalf("scheduling set = %v, want single top kind", set)
	}
	if g.Kinds[set[0]].Sig != model.Sig(12, 10) {
		t.Fatalf("scheduling set kind = %v, want mul 12x10", g.Kinds[set[0]])
	}
}

// TestEqn3SerializesUnderUnitLimit: two independent equal multiplies, one
// multiplier allowed. Eqn. 3 must serialize them.
func TestEqn3SerializesUnderUnitLimit(t *testing.T) {
	d := dfg.New()
	d.AddOp("m1", model.Mul, model.Sig(8, 8))
	d.AddOp("m2", model.Mul, model.Sig(8, 8))
	g := build(t, d)
	r, err := List(g, Limits{model.Mul: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, g, r)
	// Both ops are 2 cycles; serialized makespan is 4.
	if r.Makespan != 4 {
		t.Fatalf("makespan = %d, want 4 (serialized)", r.Makespan)
	}
}

func TestEqn3AllowsParallelWithTwo(t *testing.T) {
	d := dfg.New()
	d.AddOp("m1", model.Mul, model.Sig(8, 8))
	d.AddOp("m2", model.Mul, model.Sig(8, 8))
	g := build(t, d)
	r, err := List(g, Limits{model.Mul: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 2 {
		t.Fatalf("makespan = %d, want 2 (parallel)", r.Makespan)
	}
}

// TestEqn3CatchesKindConflicts reproduces the paper's §2.2 motivating
// example: after refinement pins two sequential multiplies to *disjoint*
// kinds, one multiplier is no longer enough even though the classical
// Eqn. 2 is satisfied. Eqn. 3 must reject; Eqn. 2 must (wrongly) accept.
func TestEqn3CatchesKindConflicts(t *testing.T) {
	d := dfg.New()
	o1 := d.AddOp("o1", model.Mul, model.Sig(25, 25))
	o2 := d.AddOp("o2", model.Mul, model.Sig(20, 18))
	if err := d.AddDep(o1, o2); err != nil {
		t.Fatal(err)
	}
	g := build(t, d)
	// Refine o2 so its only kind is 20x18 (deleting the {o2, 25x25} edge,
	// as in the paper's example where the edge is lost to latency).
	if n := g.DeleteMaxLatencyEdges(o2); n != 1 {
		t.Fatalf("setup deletion removed %d edges", n)
	}
	if _, err := List(g, Limits{model.Mul: 1}); !errors.Is(err, ErrResourceInfeasible) {
		t.Fatalf("Eqn. 3 accepted an unbindable schedule: err = %v", err)
	}
	// Two multipliers suffice.
	r, err := List(g, Limits{model.Mul: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, g, r)
	// Eqn. 2 wrongly accepts one multiplier (the ops never overlap).
	if _, err := ListEqn2(g, Limits{model.Mul: 1}); err != nil {
		t.Fatalf("Eqn. 2 rejected: %v (expected the classical constraint to be fooled)", err)
	}
}

// TestEqn3AtLeastAsStrictAsEqn2: property (a) of the reconstruction —
// whenever Eqn. 3 accepts a placement sequence, the Eqn. 2 makespan is
// no longer than the Eqn. 3 makespan can't be asserted directly, but
// acceptance implies Eqn. 2 feasibility: we check that any Eqn. 3
// schedule also satisfies per-step class counting.
func TestEqn3AtLeastAsStrictAsEqn2(t *testing.T) {
	rnd := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		d := randomDAG(rnd, 1+rnd.Intn(12))
		g := build(t, d)
		limits := Limits{model.Mul: 1 + rnd.Intn(2), model.Add: 1 + rnd.Intn(2)}
		r, err := List(g, limits)
		if errors.Is(err, ErrResourceInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		checkSchedule(t, g, r)
		// Count per-step concurrency per class; must respect limits.
		L := g.UpperLatencies()
		for y, limit := range limits {
			use := make(map[int]int)
			for i := 0; i < d.N(); i++ {
				if d.Op(dfg.OpID(i)).Spec.Type.HardwareClass() != y {
					continue
				}
				for s := r.Start[i]; s < r.Start[i]+L(dfg.OpID(i)); s++ {
					use[s]++
				}
			}
			for s, u := range use {
				if u > limit {
					t.Fatalf("Eqn.3 schedule violates Eqn.2 at step %d: %d > %d %v", s, u, limit, y)
				}
			}
		}
	}
}

// TestEqn3ExactWithFullInfo: property (c) — when every op has exactly one
// compatible kind, Eqn. 3's bound is exact instance counting per kind.
func TestEqn3ExactWithFullInfo(t *testing.T) {
	d := dfg.New()
	// Two ops of one kind, two of another, all independent.
	d.AddOp("", model.Mul, model.Sig(8, 8))
	d.AddOp("", model.Mul, model.Sig(8, 8))
	d.AddOp("", model.Mul, model.Sig(16, 16))
	d.AddOp("", model.Mul, model.Sig(16, 16))
	g := build(t, d)
	// Prune so each op keeps only its own kind (full wordlength info).
	for o := 0; o < 4; o++ {
		for g.Reducible(dfg.OpID(o)) {
			g.DeleteMaxLatencyEdges(dfg.OpID(o))
		}
	}
	// One multiplier total: must be infeasible (two disjoint kinds needed),
	// even though the ops could be fully serialized — this is exactly the
	// cross-step conflict Eqn. 2 cannot see.
	if _, err := List(g, Limits{model.Mul: 1}); !errors.Is(err, ErrResourceInfeasible) {
		t.Fatalf("want infeasible with 1 multiplier, got %v", err)
	}
	if _, err := ListEqn2(g, Limits{model.Mul: 1}); err != nil {
		t.Fatalf("Eqn. 2 should (wrongly) accept 1 multiplier, got %v", err)
	}
	// Three multipliers: feasible even with the greedy running both
	// 16x16 ops in parallel (peak 2) plus one 8x8 instance (peak 1).
	r, err := List(g, Limits{model.Mul: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, g, r)
	// Note: Limits{Mul: 2} is feasible in principle (serialize within
	// each kind) but the greedy list scheduler spends the whole budget on
	// step-0 parallelism; that myopia is inherent to list scheduling
	// under a schedule-global constraint and matches the paper's greedy.
	if _, err := List(g, Limits{model.Mul: 2}); !errors.Is(err, ErrResourceInfeasible) {
		t.Fatalf("greedy behaviour changed: limit 2 now gives %v (update this test)", err)
	}
}

func TestListRejectsCycle(t *testing.T) {
	d := dfg.New()
	a := d.AddOp("", model.Add, model.AddSig(8))
	b := d.AddOp("", model.Add, model.AddSig(8))
	d.AddDep(a, b)
	// Build the wcg first (Build validates nothing about cycles), then
	// inject the back edge.
	g := build(t, d)
	d.AddDep(b, a)
	if _, err := List(g, nil); err == nil {
		t.Fatal("cyclic graph scheduled")
	}
}

func TestPrioritiesCriticalFirst(t *testing.T) {
	// A long chain and an independent cheap op with one adder: the chain
	// head must be scheduled first.
	d := dfg.New()
	a := d.AddOp("a", model.Add, model.AddSig(8))
	b := d.AddOp("b", model.Add, model.AddSig(8))
	c := d.AddOp("c", model.Add, model.AddSig(8))
	d.AddDep(a, b)
	d.AddDep(b, c)
	x := d.AddOp("x", model.Add, model.AddSig(8))
	g := build(t, d)
	r, err := List(g, Limits{model.Add: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, g, r)
	if r.Start[a] != 0 {
		t.Errorf("critical chain head deferred to %d", r.Start[a])
	}
	if r.Start[x] == 0 {
		t.Errorf("non-critical op scheduled before chain head")
	}
}

func randomDAG(rnd *rand.Rand, n int) *dfg.Graph {
	g := dfg.New()
	for i := 0; i < n; i++ {
		if rnd.Intn(2) == 0 {
			g.AddOp("", model.Add, model.AddSig(4+rnd.Intn(20)))
		} else {
			g.AddOp("", model.Mul, model.Sig(4+rnd.Intn(20), 4+rnd.Intn(20)))
		}
	}
	for i := 1; i < n; i++ {
		for k := 0; k < 2; k++ {
			if rnd.Intn(3) == 0 {
				g.AddDep(dfg.OpID(rnd.Intn(i)), dfg.OpID(i))
			}
		}
	}
	return g
}

func TestLcmGcd(t *testing.T) {
	if gcd(12, 18) != 6 {
		t.Error("gcd broken")
	}
	if lcm(4, 6) != 12 {
		t.Error("lcm broken")
	}
	if lcm(1, 7) != 7 || lcm(7, 1) != 7 {
		t.Error("lcm identity broken")
	}
}
