// Package check is the cross-method solution validator: a structural
// oracle that accepts a (problem, solution) pair from *any* allocation
// method — the paper's heuristic, the baselines, the exact optima, or
// the stochastic/portfolio backends — and proves the solution is a legal
// implementation of the input graph with honestly reported numbers.
// Every registered method produces datapaths by a different algorithm;
// this package is what lets the method set grow safely, because the
// differential test harness and the serving layer both trust it instead
// of any individual solver.
//
// Beyond datapath.Datapath.Verify (binding, wordlength coverage,
// instance disjointness, precedence, λ) it also checks that the datapath
// admits a legal register completion — every dependency edge's value is
// carried by a derived register wide enough for the producer's result —
// and that the reported headline numbers (area, makespan, per-kind area
// breakdown) equal the values recomputed from the library, so a
// bit-flipped store entry or a buggy solver cannot smuggle a wrong
// answer past the Service.
package check

import (
	"fmt"

	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/regalloc"
)

// Reported carries a solution's headline numbers for cross-checking
// against values recomputed from the datapath and library. AreaByKind
// may be nil to skip the breakdown check (it is an optional wire field).
type Reported struct {
	Area       int64
	Makespan   int
	AreaByKind map[string]int64
}

// Verify structurally checks a solution datapath against its problem:
//
//  1. every operation is bound to exactly one instance whose kind covers
//     its type and wordlength signature (datapath.Verify);
//  2. no two schedule-overlapping operations share an instance, data
//     dependencies hold under bound latencies, and the makespan meets λ
//     (datapath.Verify);
//  3. for pipelined problems (ii > 0), resource sharing is additionally
//     legal modulo the initiation interval (pipeline.Verify);
//  4. for non-pipelined problems, the datapath admits a legal register
//     completion: value lifetimes derived from the schedule bind to
//     registers at least as wide as each value they carry, with disjoint
//     occupancy (regalloc.Build + Plan.Check) — i.e. every dependency
//     edge is carried by a register/mux path wide enough for the
//     producer's result;
//  5. the reported area, makespan and (if present) per-kind area
//     breakdown equal the values recomputed from the library.
//
// A nil error means the solution is a legal, honestly-reported
// implementation.
func Verify(g *dfg.Graph, lib *model.Library, lambda, ii int, dp *datapath.Datapath, rep Reported) error {
	if g == nil {
		return fmt.Errorf("check: no graph")
	}
	if dp == nil {
		return fmt.Errorf("check: no datapath")
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("check: invalid graph: %w", err)
	}
	if err := dp.Verify(g, lib, lambda); err != nil {
		return err
	}
	if ii > 0 {
		if err := pipeline.Verify(g, lib, dp, lambda, ii); err != nil {
			return err
		}
	} else if g.N() > 0 {
		// Register completion: lifetimes under the schedule must admit a
		// register binding wide enough for every value. Build derives the
		// left-edge plan; Check proves its invariants independently.
		// Pipelined datapaths are excluded: their values live across
		// iteration boundaries, which the single-iteration lifetime model
		// does not describe.
		plan, err := regalloc.Build(g, lib, dp, regalloc.Options{})
		if err != nil {
			return fmt.Errorf("check: no legal register completion: %w", err)
		}
		if err := plan.Check(g, lib, dp); err != nil {
			return fmt.Errorf("check: register completion invalid: %w", err)
		}
	}
	if got := dp.Area(lib); rep.Area != got {
		return fmt.Errorf("check: reported area %d, recomputed library cost %d", rep.Area, got)
	}
	if got := dp.Makespan(lib); rep.Makespan != got {
		return fmt.Errorf("check: reported makespan %d, recomputed %d", rep.Makespan, got)
	}
	if rep.AreaByKind != nil {
		want := make(map[string]int64, len(dp.Instances))
		for _, in := range dp.Instances {
			want[in.Kind.String()] += lib.Area(in.Kind)
		}
		if len(rep.AreaByKind) != len(want) {
			return fmt.Errorf("check: area breakdown lists %d kinds, recomputed %d", len(rep.AreaByKind), len(want))
		}
		for kind, a := range want {
			if rep.AreaByKind[kind] != a {
				return fmt.Errorf("check: area breakdown reports %q = %d, recomputed %d", kind, rep.AreaByKind[kind], a)
			}
		}
	}
	return nil
}
