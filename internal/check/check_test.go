package check

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
)

// chainGraph builds mul -> add -> mul, small enough to hand-schedule.
func chainGraph(t *testing.T) *dfg.Graph {
	t.Helper()
	g := dfg.New()
	a := g.AddOp("a", model.Mul, model.Sig(8, 8))
	b := g.AddOp("b", model.Add, model.AddSig(12))
	c := g.AddOp("c", model.Mul, model.Sig(12, 8))
	if err := g.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(b, c); err != nil {
		t.Fatal(err)
	}
	return g
}

// legalDatapath allocates the graph with the reference heuristic so the
// tests mutate from a known-good starting point.
func legalDatapath(t *testing.T, g *dfg.Graph, lib *model.Library, lambda int) *datapath.Datapath {
	t.Helper()
	dp, _, err := core.Allocate(g, lib, lambda, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

func reported(dp *datapath.Datapath, lib *model.Library) Reported {
	rep := Reported{Area: dp.Area(lib), Makespan: dp.Makespan(lib), AreaByKind: map[string]int64{}}
	for _, in := range dp.Instances {
		rep.AreaByKind[in.Kind.String()] += lib.Area(in.Kind)
	}
	return rep
}

func TestVerifyAcceptsLegalSolution(t *testing.T) {
	g := chainGraph(t)
	lib := model.Default()
	lambda, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	dp := legalDatapath(t, g, lib, lambda+2)
	if err := Verify(g, lib, lambda+2, 0, dp, reported(dp, lib)); err != nil {
		t.Fatalf("legal solution rejected: %v", err)
	}
}

func TestVerifyRejectsDoubleBookedOperator(t *testing.T) {
	g := dfg.New()
	// Two independent multiplies forced onto one instance at the same
	// start step: a double-booked operator.
	a := g.AddOp("a", model.Mul, model.Sig(8, 8))
	b := g.AddOp("b", model.Mul, model.Sig(8, 8))
	_ = a
	_ = b
	lib := model.Default()
	dp := &datapath.Datapath{
		Start: []int{0, 0},
		Instances: []datapath.Instance{
			{Kind: model.Kind{Class: model.Mul, Sig: model.Sig(8, 8)}, Ops: []dfg.OpID{0, 1}},
		},
		InstOf: []int{0, 0},
	}
	err := Verify(g, lib, 10, 0, dp, reported(dp, lib))
	if err == nil {
		t.Fatal("double-booked operator accepted")
	}
	if !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("unexpected diagnostic: %v", err)
	}
}

func TestVerifyRejectsNarrowOperator(t *testing.T) {
	g := dfg.New()
	g.AddOp("a", model.Mul, model.Sig(16, 12))
	lib := model.Default()
	// Bound to an 8x8 multiplier: too narrow for a 16x12 multiply.
	dp := &datapath.Datapath{
		Start: []int{0},
		Instances: []datapath.Instance{
			{Kind: model.Kind{Class: model.Mul, Sig: model.Sig(8, 8)}, Ops: []dfg.OpID{0}},
		},
		InstOf: []int{0},
	}
	err := Verify(g, lib, 10, 0, dp, reported(dp, lib))
	if err == nil {
		t.Fatal("under-width operator accepted")
	}
	if !strings.Contains(err.Error(), "cannot execute") {
		t.Fatalf("unexpected diagnostic: %v", err)
	}
}

func TestVerifyRejectsMisreportedNumbers(t *testing.T) {
	g := chainGraph(t)
	lib := model.Default()
	lambda, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	dp := legalDatapath(t, g, lib, lambda+2)
	good := reported(dp, lib)

	area := good
	area.Area++ // the bit-flipped-store shape
	if err := Verify(g, lib, lambda+2, 0, dp, area); err == nil || !strings.Contains(err.Error(), "reported area") {
		t.Fatalf("misreported area: err = %v", err)
	}
	ms := good
	ms.Makespan--
	if err := Verify(g, lib, lambda+2, 0, dp, ms); err == nil || !strings.Contains(err.Error(), "reported makespan") {
		t.Fatalf("misreported makespan: err = %v", err)
	}
	byKind := good
	byKind.AreaByKind = map[string]int64{"mul 99x99": 1}
	if err := Verify(g, lib, lambda+2, 0, dp, byKind); err == nil || !strings.Contains(err.Error(), "breakdown") {
		t.Fatalf("misreported breakdown: err = %v", err)
	}
}

func TestVerifyRejectsLatencyViolation(t *testing.T) {
	g := chainGraph(t)
	lib := model.Default()
	lambda, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	dp := legalDatapath(t, g, lib, lambda)
	// The datapath is legal at λ_min but must be rejected against a
	// tighter constraint.
	if err := Verify(g, lib, lambda-1, 0, dp, reported(dp, lib)); err == nil {
		t.Fatal("makespan above λ accepted")
	}
}

func TestVerifyRejectsUnboundAndMissingDatapath(t *testing.T) {
	g := chainGraph(t)
	lib := model.Default()
	if err := Verify(g, lib, 10, 0, nil, Reported{}); err == nil {
		t.Fatal("nil datapath accepted")
	}
	dp := &datapath.Datapath{Start: []int{0}, InstOf: []int{0}}
	if err := Verify(g, lib, 10, 0, dp, Reported{}); err == nil {
		t.Fatal("shape-mismatched datapath accepted")
	}
}

func TestVerifyPipelinedSolution(t *testing.T) {
	g := chainGraph(t)
	lib := model.Default()
	lambda, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	dp := legalDatapath(t, g, lib, lambda)
	// Fully serial chain on dedicated units: legal for II = λ, illegal
	// for an II shorter than the busiest instance's occupancy.
	if err := Verify(g, lib, lambda, lambda, dp, reported(dp, lib)); err != nil {
		t.Fatalf("legal pipelined solution rejected: %v", err)
	}
	if err := Verify(g, lib, lambda, 1, dp, reported(dp, lib)); err == nil {
		t.Fatal("II=1 overlap accepted")
	}
}
