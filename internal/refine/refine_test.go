package refine

import (
	"math/rand"
	"testing"

	"repro/internal/bind"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/wcg"
)

func setup(t *testing.T, d *dfg.Graph) (*wcg.Graph, []int, *bind.Binding) {
	t.Helper()
	g, err := wcg.Build(d, model.Default())
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.List(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bind.Select(g, r.Start)
	if err != nil {
		t.Fatal(err)
	}
	return g, r.Start, b
}

func TestBoundCriticalPathChain(t *testing.T) {
	// Pure chain: everything is critical.
	d := dfg.New()
	var prev dfg.OpID = -1
	for i := 0; i < 4; i++ {
		o := d.AddOp("", model.Add, model.AddSig(8))
		if prev >= 0 {
			d.AddDep(prev, o)
		}
		prev = o
	}
	g, start, b := setup(t, d)
	qb := BoundCriticalPath(g, start, b)
	if len(qb) != 4 {
		t.Fatalf("Q_b = %v, want all 4 ops", qb)
	}
}

func TestBoundCriticalPathIncludesResourceSerialization(t *testing.T) {
	// Two independent multiplies bound to one resource back-to-back:
	// precedence alone makes each op alone critical only through its own
	// path, but the S_b edge serializes them, making both critical.
	d := dfg.New()
	a := d.AddOp("a", model.Mul, model.Sig(8, 8))
	bop := d.AddOp("b", model.Mul, model.Sig(8, 8))
	// Force sequential schedule via a dependency chain through c, then
	// remove ambiguity: use a diamond-free construction instead —
	// schedule manually.
	g, err := wcg.Build(d, model.Default())
	if err != nil {
		t.Fatal(err)
	}
	start := []int{0, 2}
	binding := &bind.Binding{
		Cliques:  []bind.Clique{{Ops: []dfg.OpID{a, bop}, Kind: firstMulKind(g)}},
		CliqueOf: []int{0, 0},
	}
	qb := BoundCriticalPath(g, start, binding)
	if len(qb) != 2 {
		t.Fatalf("Q_b = %v, want both ops via S_b edge", qb)
	}
}

func firstMulKind(g *wcg.Graph) int {
	for ki, k := range g.Kinds {
		if k.Class == model.Mul {
			return ki
		}
	}
	panic("no mul kind")
}

func TestBoundCriticalPathGapBreaksEdge(t *testing.T) {
	// Same two ops on one resource but with a gap: no S_b edge, so each
	// is its own component; both are still "critical" only if tied for
	// the longest path. With a gap the later op alone determines the
	// makespan through... actually with latencies 2 and starts 0 and 10,
	// the augmented ASAP of both is 0, ALAP of op b is ms-2. Only ops on
	// the longest augmented path are critical.
	d := dfg.New()
	a := d.AddOp("a", model.Mul, model.Sig(8, 8))
	bop := d.AddOp("b", model.Mul, model.Sig(8, 8))
	_ = a
	g, err := wcg.Build(d, model.Default())
	if err != nil {
		t.Fatal(err)
	}
	start := []int{0, 10}
	binding := &bind.Binding{
		Cliques:  []bind.Clique{{Ops: []dfg.OpID{0, 1}, Kind: firstMulKind(g)}},
		CliqueOf: []int{0, 0},
	}
	qb := BoundCriticalPath(g, start, binding)
	// Without the S_b edge both ops have augmented ASAP 0 and latency 2,
	// so both are critical (both lie on a longest path of length 2).
	if len(qb) != 2 {
		t.Fatalf("Q_b = %v", qb)
	}
	_ = bop
}

func TestCandidatesFilterByDeadline(t *testing.T) {
	d := dfg.New()
	o1 := d.AddOp("", model.Mul, model.Sig(25, 25)) // L = 7
	o2 := d.AddOp("", model.Mul, model.Sig(20, 18)) // L = 7 via 25x25
	d.AddDep(o1, o2)
	g, start, b := setup(t, d)
	qb := BoundCriticalPath(g, start, b)
	// Makespan is 14; λ = 8 admits only the first op (0 + 7 <= 8).
	w := Candidates(g, start, qb, 8)
	if len(w) != 1 || w[0] != o1 {
		t.Fatalf("W = %v, want [%d]", w, o1)
	}
	// λ = 14 admits both.
	if w := Candidates(g, start, qb, 14); len(w) != 2 {
		t.Fatalf("W = %v, want both ops", w)
	}
}

func TestChooseVictimPrefersSmallestProportion(t *testing.T) {
	// o2 (20x18) is compatible with {20x18, 25x25}: deleting its max
	// edge loses 1 of the edges incident on its kinds. o1 (25x25) is
	// irreducible. The victim must be o2.
	d := dfg.New()
	o1 := d.AddOp("", model.Mul, model.Sig(25, 25))
	o2 := d.AddOp("", model.Mul, model.Sig(20, 18))
	d.AddDep(o1, o2)
	g, _, b := setup(t, d)
	victim, ok := ChooseVictim(g, b, []dfg.OpID{o1, o2})
	if !ok || victim != o2 {
		t.Fatalf("victim = %d ok=%v, want %d", victim, ok, o2)
	}
}

func TestChooseVictimNoneReducible(t *testing.T) {
	d := dfg.New()
	o := d.AddOp("", model.Add, model.AddSig(8))
	g, _, b := setup(t, d)
	if _, ok := ChooseVictim(g, b, []dfg.OpID{o}); ok {
		t.Fatal("irreducible op chosen as victim")
	}
}

func TestStepReducesUpperBound(t *testing.T) {
	d := dfg.New()
	o1 := d.AddOp("", model.Mul, model.Sig(25, 25))
	o2 := d.AddOp("", model.Mul, model.Sig(20, 18))
	d.AddDep(o1, o2)
	g, start, b := setup(t, d)
	before := g.UpperLatency(o2)
	victim, ok := Step(g, start, b, 12)
	if !ok {
		t.Fatal("no refinement performed")
	}
	if victim != o2 {
		t.Fatalf("victim = %d, want %d", victim, o2)
	}
	if g.UpperLatency(o2) >= before {
		t.Fatalf("upper bound not reduced: %d -> %d", before, g.UpperLatency(o2))
	}
}

func TestStepFallsBackAndEventuallyFails(t *testing.T) {
	// All ops single-kind: nothing reducible anywhere, Step returns false.
	d := dfg.New()
	d.AddOp("", model.Add, model.AddSig(8))
	d.AddOp("", model.Add, model.AddSig(8))
	g, start, b := setup(t, d)
	if _, ok := Step(g, start, b, 1); ok {
		t.Fatal("refined an irreducible problem")
	}
}

func TestRefinementTerminates(t *testing.T) {
	// Repeated Step calls must terminate (H edges strictly decrease).
	rnd := rand.New(rand.NewSource(53))
	for trial := 0; trial < 50; trial++ {
		d := randomDAG(rnd, 1+rnd.Intn(14))
		g, start, b := setup(t, d)
		steps := 0
		for {
			edges := g.NumHEdges()
			if _, ok := Step(g, start, b, 0); !ok {
				break
			}
			if g.NumHEdges() >= edges {
				t.Fatal("Step did not delete any H edge")
			}
			steps++
			if steps > 10000 {
				t.Fatal("refinement did not terminate")
			}
		}
		// After exhaustion every op is irreducible.
		for o := 0; o < d.N(); o++ {
			if g.Reducible(dfg.OpID(o)) {
				t.Fatalf("op %d still reducible after exhaustion", o)
			}
		}
	}
}

func TestLessProportion(t *testing.T) {
	// 1/4 < 1/2.
	if !lessProportion(1, 4, false, 1, 2, false) {
		t.Error("1/4 must beat 1/2")
	}
	if lessProportion(1, 2, false, 1, 4, false) {
		t.Error("1/2 must not beat 1/4")
	}
	// Equal proportion: favoured wins.
	if !lessProportion(1, 3, true, 1, 3, false) {
		t.Error("favoured must win ties")
	}
	if lessProportion(1, 3, false, 1, 3, true) {
		t.Error("unfavoured must lose ties")
	}
}

func randomDAG(rnd *rand.Rand, n int) *dfg.Graph {
	g := dfg.New()
	for i := 0; i < n; i++ {
		if rnd.Intn(2) == 0 {
			g.AddOp("", model.Add, model.AddSig(4+rnd.Intn(20)))
		} else {
			g.AddOp("", model.Mul, model.Sig(4+rnd.Intn(20), 4+rnd.Intn(20)))
		}
	}
	for i := 1; i < n; i++ {
		for k := 0; k < 2; k++ {
			if rnd.Intn(3) == 0 {
				g.AddDep(dfg.OpID(rnd.Intn(i)), dfg.OpID(i))
			}
		}
	}
	return g
}
