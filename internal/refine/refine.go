// Package refine implements the paper's §2.4: refining wordlength
// information when a schedule violates the user latency constraint λ.
//
// The refinement target is chosen from the *bound critical path* Q_b: the
// sequencing graph is augmented with edges S_b linking operations that
// execute back-to-back on the same bound resource, and Q_b is the set of
// operations with equal ASAP and ALAP times in the augmented graph under
// the bound resource latencies ℓ(o). Within the candidate subset
// W = {o ∈ Q_b : start(o) + L_o ≤ λ}, the victim is the operation that
// loses the smallest proportion of H edges among those incident on kinds
// compatible with it; ties favour operations currently bound to a
// resource faster than their upper bound. The victim's maximum-latency
// H edges are then deleted, lowering L_o before rescheduling.
package refine

import (
	"slices"

	"repro/internal/bind"
	"repro/internal/dfg"
	"repro/internal/wcg"
)

// BoundCriticalPath returns Q_b for the given schedule and binding: the
// operations critical in the sequencing graph augmented with
// same-resource adjacency edges (Eqn. 7), evaluated with bound latencies.
func BoundCriticalPath(g *wcg.Graph, start []int, b *bind.Binding) []dfg.OpID {
	d := g.D
	n := d.N()
	if n == 0 {
		return nil
	}
	ell := make([]int, n)
	for o := 0; o < n; o++ {
		ell[o] = b.BoundLatency(g, dfg.OpID(o))
	}

	succ := make([][]dfg.OpID, n)
	for o := 0; o < n; o++ {
		succ[o] = append(succ[o], d.Succ(dfg.OpID(o))...)
	}
	// S_b: for each clique, link operations executing back-to-back with
	// no slack: start(o1) + ℓ(o1) == start(o2). Clique members occupy
	// pairwise disjoint reserved intervals with L_o ≥ ℓ(o) ≥ 1, so a
	// zero-slack pair is necessarily adjacent in start order (any third
	// member between them would have to both finish before and start
	// after the same step): sorting the clique by start and checking
	// consecutive pairs finds every S_b edge in O(m log m).
	var byStart []dfg.OpID
	for _, k := range b.Cliques {
		byStart = append(byStart[:0], k.Ops...)
		// Clique members occupy disjoint intervals, so starts are
		// distinct and the order is total.
		slices.SortFunc(byStart, func(a, b dfg.OpID) int { return start[a] - start[b] })
		for i := 1; i < len(byStart); i++ {
			o1, o2 := byStart[i-1], byStart[i]
			if start[o1]+ell[o1] == start[o2] {
				succ[o1] = append(succ[o1], o2)
			}
		}
	}

	// All augmented edges strictly increase start (latencies are >= 1 and
	// schedules respect precedence with L_o >= ℓ(o)), so the augmented
	// graph is acyclic and any start-ascending order is topological.
	// Start values are bounded by the makespan: a counting sort (stable,
	// ID-ascending within a step) beats a comparison sort every call.
	maxStart := 0
	for o := 0; o < n; o++ {
		if start[o] > maxStart {
			maxStart = start[o]
		}
	}
	cnt := make([]int, maxStart+2)
	for o := 0; o < n; o++ {
		cnt[start[o]+1]++
	}
	for k := 1; k < len(cnt); k++ {
		cnt[k] += cnt[k-1]
	}
	order := make([]dfg.OpID, n)
	for o := 0; o < n; o++ {
		order[cnt[start[o]]] = dfg.OpID(o)
		cnt[start[o]]++
	}

	asap := make([]int, n)
	for _, o := range order {
		for _, s := range succ[o] {
			if v := asap[o] + ell[o]; v > asap[s] {
				asap[s] = v
			}
		}
	}
	makespan := 0
	for o := 0; o < n; o++ {
		if f := asap[o] + ell[o]; f > makespan {
			makespan = f
		}
	}
	alap := make([]int, n)
	for o := range alap {
		alap[o] = makespan - ell[o]
	}
	for i := n - 1; i >= 0; i-- {
		o := order[i]
		for _, s := range succ[o] {
			if v := alap[s] - ell[o]; v < alap[o] {
				alap[o] = v
			}
		}
	}

	var crit []dfg.OpID
	for o := 0; o < n; o++ {
		if asap[o] == alap[o] {
			crit = append(crit, dfg.OpID(o))
		}
	}
	return crit
}

// Candidates returns W: the members of the bound critical path that
// complete before the latency constraint even at their upper-bound
// latency. At least one member of W must be refined for the constraint
// to become satisfiable.
func Candidates(g *wcg.Graph, start []int, qb []dfg.OpID, lambda int) []dfg.OpID {
	var w []dfg.OpID
	for _, o := range qb {
		if start[o]+g.UpperLatency(o) <= lambda {
			w = append(w, o)
		}
	}
	return w
}

// ChooseVictim selects the operation to refine from the candidate set
// using the paper's metric, considering only reducible operations
// (those whose L_o would strictly decrease while keeping at least one
// kind). Returns false if no candidate is reducible.
func ChooseVictim(g *wcg.Graph, b *bind.Binding, cands []dfg.OpID) (dfg.OpID, bool) {
	best := dfg.OpID(-1)
	var bestDel, bestDen int
	var bestFavoured bool
	for _, o := range cands {
		if !g.Reducible(o) {
			continue
		}
		lmax := g.UpperLatency(o)
		del, den := 0, 0
		for _, ki := range g.CompatKinds(o) {
			den += g.CompatOpCount(ki)
			if g.KindLatency(ki) == lmax {
				del++
			}
		}
		favoured := b != nil && b.BoundLatency(g, o) < lmax
		if best < 0 || lessProportion(del, den, favoured, bestDel, bestDen, bestFavoured) {
			best, bestDel, bestDen, bestFavoured = o, del, den, favoured
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// lessProportion reports whether (del1/den1, favoured1) is a strictly
// better victim than (del2/den2, favoured2): smaller proportion first,
// then bound-below-upper-bound operations. Exact cross multiplication.
func lessProportion(del1, den1 int, fav1 bool, del2, den2 int, fav2 bool) bool {
	l := del1 * den2
	r := del2 * den1
	if l != r {
		return l < r
	}
	return fav1 && !fav2
}

// Policy selects a victim among candidate operations; implementations
// must only return reducible operations. The paper's metric is
// ChooseVictim; FirstReducible exists for the ablation benches.
type Policy func(g *wcg.Graph, b *bind.Binding, cands []dfg.OpID) (dfg.OpID, bool)

// FirstReducible is the naive victim policy: the lowest-ID reducible
// candidate. Used by the victim-policy ablation.
func FirstReducible(g *wcg.Graph, _ *bind.Binding, cands []dfg.OpID) (dfg.OpID, bool) {
	best := dfg.OpID(-1)
	for _, o := range cands {
		if g.Reducible(o) && (best < 0 || o < best) {
			best = o
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Step performs one refinement: find Q_b, W, choose a victim and delete
// its maximum-latency H edges. It falls back from W to Q_b to the whole
// operation set when the preferred sets contain no reducible operation
// ("reducing the latency of operations that are not members of this set
// may be necessary"). Returns the refined operation and true, or false
// when no operation anywhere can be refined (the problem is infeasible
// for this λ).
func Step(g *wcg.Graph, start []int, b *bind.Binding, lambda int) (dfg.OpID, bool) {
	return StepWithPolicy(g, start, b, lambda, ChooseVictim)
}

// StepBatch performs up to k refinements from a single schedule's
// candidate computation: the bound critical path Q_b and candidate set W
// are computed once, then the policy is re-applied (against the graph as
// it shrinks, so the proportion metric stays current) until k victims
// have been refined or W runs out of reducible operations. k=1 is
// exactly StepWithPolicy — the paper's step. Larger k trades the paper's
// reschedule-per-refinement precision for one reschedule per batch,
// which is what makes 1000-operation graphs tractable: the number of
// schedule/bind rounds, not the cost of one round, is the superlinear
// term. The fallback tiers (Q_b, then the whole operation set) only
// engage when W yields nothing, and then refine a single victim, exactly
// like StepWithPolicy. Returns the number of operations refined; 0 means
// nothing anywhere is reducible.
func StepBatch(g *wcg.Graph, start []int, b *bind.Binding, lambda int, pick Policy, k int) int {
	if k <= 1 {
		if _, ok := StepWithPolicy(g, start, b, lambda, pick); ok {
			return 1
		}
		return 0
	}
	qb := BoundCriticalPath(g, start, b)
	w := Candidates(g, start, qb, lambda)
	done := 0
	for done < k {
		o, ok := pick(g, b, w)
		if !ok {
			break
		}
		g.DeleteMaxLatencyEdges(o)
		done++
	}
	if done > 0 {
		return done
	}
	if o, ok := pick(g, b, qb); ok {
		g.DeleteMaxLatencyEdges(o)
		return 1
	}
	all := make([]dfg.OpID, g.D.N())
	for i := range all {
		all[i] = dfg.OpID(i)
	}
	if o, ok := pick(g, b, all); ok {
		g.DeleteMaxLatencyEdges(o)
		return 1
	}
	return 0
}

// StepWithPolicy is Step with an explicit victim-selection policy.
func StepWithPolicy(g *wcg.Graph, start []int, b *bind.Binding, lambda int, pick Policy) (dfg.OpID, bool) {
	qb := BoundCriticalPath(g, start, b)
	if o, ok := pick(g, b, Candidates(g, start, qb, lambda)); ok {
		g.DeleteMaxLatencyEdges(o)
		return o, true
	}
	if o, ok := pick(g, b, qb); ok {
		g.DeleteMaxLatencyEdges(o)
		return o, true
	}
	all := make([]dfg.OpID, g.D.N())
	for i := range all {
		all[i] = dfg.OpID(i)
	}
	if o, ok := pick(g, b, all); ok {
		g.DeleteMaxLatencyEdges(o)
		return o, true
	}
	return 0, false
}
