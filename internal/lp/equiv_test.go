package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// randomProblem draws a small LP with mixed senses, integer data and
// a sprinkling of finite bounds — the regime where the revised simplex
// and the dense oracle must agree exactly on status and objective.
func randomProblem(rnd *rand.Rand) *Problem {
	n := 1 + rnd.Intn(10)
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = float64(rnd.Intn(11) - 5)
	}
	if rnd.Intn(2) == 0 {
		p.Lower = make([]float64, n)
		p.Upper = make([]float64, n)
		for j := 0; j < n; j++ {
			p.Lower[j] = float64(rnd.Intn(3))
			if rnd.Intn(3) == 0 {
				p.Upper[j] = math.Inf(1)
			} else {
				p.Upper[j] = p.Lower[j] + float64(rnd.Intn(4))
			}
		}
	}
	rows := rnd.Intn(9)
	for i := 0; i < rows; i++ {
		var idx []int
		var coef []float64
		for j := 0; j < n; j++ {
			if rnd.Intn(2) == 0 {
				idx = append(idx, j)
				coef = append(coef, float64(rnd.Intn(9)-4))
			}
		}
		if len(idx) == 0 {
			continue
		}
		sense := []Sense{LE, GE, EQ}[rnd.Intn(3)]
		p.Cons = append(p.Cons, Constraint{idx, coef, sense, float64(rnd.Intn(13) - 6)})
	}
	return p
}

// TestRevisedMatchesDense is the solver-equivalence property test: on
// random LPs the revised simplex must reproduce the dense tableau
// oracle's status, and its objective bit-for-bit within tolerance.
func TestRevisedMatchesDense(t *testing.T) {
	rnd := rand.New(rand.NewSource(41))
	ctx := context.Background()
	for trial := 0; trial < 500; trial++ {
		p := randomProblem(rnd)
		got, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: revised: %v", trial, err)
		}
		want, err := solveDense(ctx, p)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		if got.Status != want.Status {
			t.Fatalf("trial %d: status %v, dense oracle %v (%+v)", trial, got.Status, want.Status, p)
		}
		if got.Status != Optimal {
			continue
		}
		if math.Abs(got.Obj-want.Obj) > 1e-6 {
			t.Fatalf("trial %d: obj %v, dense oracle %v (%+v)", trial, got.Obj, want.Obj, p)
		}
		checkFeasible(t, p, got.X)
	}
}

// randomBinaryMILP mirrors the generator in milp_test.go but returns
// the MILP for reuse across option variants.
func randomBinaryMILP(rnd *rand.Rand) *MILP {
	n := 2 + rnd.Intn(8)
	m := &MILP{
		Problem: Problem{
			NumVars:   n,
			Objective: make([]float64, n),
			Upper:     make([]float64, n),
		},
	}
	for j := 0; j < n; j++ {
		m.Objective[j] = float64(rnd.Intn(21) - 10)
		m.Upper[j] = 1
		m.Integer = append(m.Integer, j)
	}
	rows := 1 + rnd.Intn(5)
	for i := 0; i < rows; i++ {
		var idx []int
		var coef []float64
		for j := 0; j < n; j++ {
			if rnd.Intn(2) == 0 {
				idx = append(idx, j)
				coef = append(coef, float64(rnd.Intn(9)-4))
			}
		}
		if len(idx) == 0 {
			continue
		}
		sense := []Sense{LE, GE, EQ}[rnd.Intn(3)]
		m.Cons = append(m.Cons, Constraint{idx, coef, sense, float64(rnd.Intn(7) - 3)})
	}
	return m
}

// TestMILPWarmStartEquivalence: warm-started branch and bound must find
// the same optimum as cold-started, and spend no more total simplex
// iterations in aggregate — the point of reusing parent bases.
func TestMILPWarmStartEquivalence(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	var warmIters, coldIters, warmNodes, coldNodes int
	trials := 0
	for trial := 0; trial < 120; trial++ {
		m := randomBinaryMILP(rnd)
		warm, err := SolveMILP(m, MILPOptions{})
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		cold, err := SolveMILP(m, MILPOptions{DisableWarmStart: true})
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v, cold %v", trial, warm.Status, cold.Status)
		}
		if warm.Status == Optimal && math.Abs(warm.Obj-cold.Obj) > 1e-6 {
			t.Fatalf("trial %d: warm obj %v, cold obj %v", trial, warm.Obj, cold.Obj)
		}
		warmIters += warm.Iters
		coldIters += cold.Iters
		warmNodes += warm.Nodes
		coldNodes += cold.Nodes
		trials++
	}
	t.Logf("%d trials: warm %d iters / %d nodes, cold %d iters / %d nodes",
		trials, warmIters, warmNodes, coldIters, coldNodes)
	if warmIters > coldIters {
		t.Errorf("warm start spent more simplex iterations (%d) than cold start (%d)", warmIters, coldIters)
	}
}

// TestMILPWarmStartNodeCounts pins the branch-and-bound node behaviour
// on a knapsack whose LP relaxation is fractional: the search must
// branch (Nodes > 1), warm starts must not change the answer, and an
// exact primed incumbent must prune the search to fewer nodes.
func TestMILPWarmStartNodeCounts(t *testing.T) {
	m := &MILP{
		Problem: Problem{
			NumVars:   6,
			Objective: []float64{-9, -11, -13, -15, -17, -19},
			Cons: []Constraint{
				{Idx: []int{0, 1, 2, 3, 4, 5}, Coef: []float64{4, 5, 6, 7, 8, 9}, Sense: LE, RHS: 16},
			},
			Upper: []float64{1, 1, 1, 1, 1, 1},
		},
		Integer: []int{0, 1, 2, 3, 4, 5},
	}
	warm, err := SolveMILP(m, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal || !warm.HasX {
		t.Fatalf("%+v", warm)
	}
	if warm.Nodes <= 1 {
		t.Fatalf("expected a branched search, got %d nodes", warm.Nodes)
	}
	cold, err := SolveMILP(m, MILPOptions{DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != Optimal || math.Abs(cold.Obj-warm.Obj) > 1e-9 {
		t.Fatalf("cold %+v vs warm %+v", cold, warm)
	}
	if warm.Iters >= cold.Iters {
		t.Errorf("warm start did not save simplex iterations: warm %d, cold %d", warm.Iters, cold.Iters)
	}
	primed, err := SolveMILP(m, MILPOptions{Incumbent: warm.Obj, IncumbentSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if primed.Status != Optimal {
		t.Fatalf("primed %+v", primed)
	}
	if primed.Nodes > warm.Nodes {
		t.Errorf("exact incumbent explored %d nodes, unprimed %d", primed.Nodes, warm.Nodes)
	}
}
