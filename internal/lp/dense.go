// The original dense-tableau two-phase primal simplex, retained as an
// unexported fallback and as the oracle for the revised-simplex
// equivalence tests. Optional finite bounds are handled as explicit
// rows for simplicity and verifiability over speed.

package lp

import (
	"context"
	"math"
)

// solveDense runs two-phase primal simplex on a dense tableau.
func solveDense(ctx context.Context, p *Problem) (*Solution, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	rows := buildRows(p)
	m := len(rows)
	n := p.NumVars

	// Layout: columns 0..n-1 structural, n..n+m-1 slack/surplus,
	// then artificials as needed.
	type rowInfo struct {
		slack int // column of slack/surplus, -1 if none
		art   int // column of artificial, -1 if none
	}
	info := make([]rowInfo, m)
	cols := n
	for i, r := range rows {
		switch r.sense {
		case LE:
			info[i] = rowInfo{slack: cols, art: -1}
			cols++
		case GE:
			info[i] = rowInfo{slack: cols, art: cols + 1}
			cols += 2
		case EQ:
			info[i] = rowInfo{slack: -1, art: cols}
			cols++
		}
	}

	// Dense tableau: m rows × cols, plus RHS column.
	t := newTableau(m, cols)
	basis := make([]int, m)
	for i, r := range rows {
		for k, j := range r.idx {
			t.a[i][j] = r.coef[k]
		}
		t.b[i] = r.rhs
		switch {
		case r.sense == LE:
			t.a[i][info[i].slack] = 1
			basis[i] = info[i].slack
		case r.sense == GE:
			t.a[i][info[i].slack] = -1
			t.a[i][info[i].art] = 1
			basis[i] = info[i].art
		default:
			t.a[i][info[i].art] = 1
			basis[i] = info[i].art
		}
	}

	isArt := make([]bool, cols)
	haveArt := false
	for i := range rows {
		if info[i].art >= 0 {
			isArt[info[i].art] = true
			haveArt = true
		}
	}

	var iters int
	if haveArt {
		// Phase 1: minimise the sum of artificials.
		c1 := make([]float64, cols)
		for j := range c1 {
			if isArt[j] {
				c1[j] = 1
			}
		}
		it, st := t.iterate(ctx, c1, basis, nil)
		iters += it
		if st == stCanceled {
			return canceledResult(ctx, iters)
		}
		if st == stIterLimit {
			return nil, ErrNumeric
		}
		obj1 := t.objValue(c1, basis)
		if obj1 > feasEps {
			return &Solution{Status: Infeasible, Iters: iters}, nil
		}
		// Pivot any artificial still basic (at zero) out if possible.
		for i := 0; i < m; i++ {
			if !isArt[basis[i]] {
				continue
			}
			done := false
			for j := 0; j < cols && !done; j++ {
				if !isArt[j] && math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j)
					basis[i] = j
					done = true
				}
			}
			// If the row is all zeros over non-artificials it is
			// redundant; the artificial stays basic at value 0, which is
			// harmless as long as its column is barred from re-entering.
		}
	}

	// Phase 2.
	c2 := make([]float64, cols)
	copy(c2, p.Objective)
	it, st := t.iterate(ctx, c2, basis, isArt)
	iters += it
	switch st {
	case stCanceled:
		return canceledResult(ctx, iters)
	case stIterLimit:
		return nil, ErrNumeric
	case stUnbounded:
		return &Solution{Status: Unbounded, Iters: iters}, nil
	}

	x := make([]float64, p.NumVars)
	for i, bj := range basis {
		if bj < p.NumVars {
			x[bj] = t.b[i]
		}
	}
	var obj float64
	for j, c := range p.Objective {
		obj += c * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj, Iters: iters}, nil
}

// denseRow is a normalised constraint with non-negative RHS.
type denseRow struct {
	idx   []int
	coef  []float64
	sense Sense
	rhs   float64
}

// buildRows merges the constraint list with bound rows and normalises
// RHS signs.
func buildRows(p *Problem) []denseRow {
	var rows []denseRow
	add := func(idx []int, coef []float64, s Sense, rhs float64) {
		if rhs < 0 {
			c2 := make([]float64, len(coef))
			for i, v := range coef {
				c2[i] = -v
			}
			coef = c2
			rhs = -rhs
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		rows = append(rows, denseRow{idx: idx, coef: coef, sense: s, rhs: rhs})
	}
	for _, c := range p.Cons {
		add(c.Idx, c.Coef, c.Sense, c.RHS)
	}
	if p.Upper != nil {
		for j, u := range p.Upper {
			if !math.IsInf(u, 1) {
				add([]int{j}, []float64{1}, LE, u)
			}
		}
	}
	if p.Lower != nil {
		for j, l := range p.Lower {
			if l > 0 {
				add([]int{j}, []float64{1}, GE, l)
			}
		}
	}
	return rows
}

// ---- dense tableau ----

type tableau struct {
	a [][]float64
	b []float64
}

func newTableau(m, cols int) *tableau {
	t := &tableau{a: make([][]float64, m), b: make([]float64, m)}
	backing := make([]float64, m*cols)
	for i := range t.a {
		t.a[i] = backing[i*cols : (i+1)*cols]
	}
	return t
}

func (t *tableau) pivot(pr, pc int) {
	piv := t.a[pr][pc]
	row := t.a[pr]
	inv := 1 / piv
	for j := range row {
		row[j] *= inv
	}
	t.b[pr] *= inv
	for i := range t.a {
		if i == pr {
			continue
		}
		f := t.a[i][pc]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * row[j]
		}
		t.b[i] -= f * t.b[pr]
	}
}

type iterStatus int8

const (
	stOptimal iterStatus = iota
	stUnbounded
	stIterLimit
	stCanceled
)

// objValue computes cᵀx for the current basic solution.
func (t *tableau) objValue(c []float64, basis []int) float64 {
	var v float64
	for i, bj := range basis {
		v += c[bj] * t.b[i]
	}
	return v
}

// iterate runs primal simplex on the tableau for objective c (minimise).
// banned columns (nil allowed) may never enter the basis — used to keep
// artificials out in phase 2. Dantzig pricing with a switch to Bland's
// rule to guarantee termination.
func (t *tableau) iterate(ctx context.Context, c []float64, basis []int, banned []bool) (int, iterStatus) {
	m := len(t.a)
	if m == 0 {
		// No rows (and, post-buildRows, no finite bounds either): any
		// negative cost direction is unbounded, otherwise x = 0 is
		// optimal.
		for j, cj := range c {
			if (banned == nil || !banned[j]) && cj < -eps {
				return 0, stUnbounded
			}
		}
		return 0, stOptimal
	}
	cols := len(t.a[0])
	// Reduced costs require the objective row in reduced form:
	// z_j - c_j = c_B B⁻¹ A_j - c_j; we maintain it explicitly.
	z := make([]float64, cols)
	computeZ := func() {
		for j := 0; j < cols; j++ {
			var v float64
			for i, bj := range basis {
				v += c[bj] * t.a[i][j]
			}
			z[j] = v - c[j]
		}
	}
	computeZ()

	limit := 200 * (m + cols)
	blandAfter := 20 * (m + cols)
	for iter := 0; iter < limit; iter++ {
		// Each pivot costs O(m·cols) floating-point work, so a per-
		// iteration ctx poll is noise by comparison.
		if iter&15 == 0 && ctx.Err() != nil {
			return iter, stCanceled
		}
		// Entering column: most positive z_j (Dantzig), or first
		// positive (Bland) once past the cycling threshold.
		pc := -1
		if iter < blandAfter {
			best := eps
			for j := 0; j < cols; j++ {
				if banned != nil && banned[j] {
					continue
				}
				if z[j] > best {
					best = z[j]
					pc = j
				}
			}
		} else {
			for j := 0; j < cols; j++ {
				if banned != nil && banned[j] {
					continue
				}
				if z[j] > eps {
					pc = j
					break
				}
			}
		}
		if pc < 0 {
			return iter, stOptimal
		}
		// Ratio test; Bland tie-break on smallest basis variable.
		pr := -1
		var bestRatio float64
		for i := 0; i < m; i++ {
			if t.a[i][pc] > eps {
				r := t.b[i] / t.a[i][pc]
				if pr < 0 || r < bestRatio-eps ||
					(r < bestRatio+eps && basis[i] < basis[pr]) {
					pr = i
					bestRatio = r
				}
			}
		}
		if pr < 0 {
			return iter, stUnbounded
		}
		t.pivot(pr, pc)
		basis[pr] = pc
		computeZ()
	}
	return limit, stIterLimit
}
