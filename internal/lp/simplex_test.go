package lp

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSolveTextbook(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  (Dantzig's example)
	// → min -3x -5y; optimum x=2, y=6, obj=-36.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-3, -5},
		Cons: []Constraint{
			{Idx: []int{0}, Coef: []float64{1}, Sense: LE, RHS: 4},
			{Idx: []int{1}, Coef: []float64{2}, Sense: LE, RHS: 12},
			{Idx: []int{0, 1}, Coef: []float64{3, 2}, Sense: LE, RHS: 18},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Obj, -36) {
		t.Fatalf("status %v obj %v", s.Status, s.Obj)
	}
	if !almost(s.X[0], 2) || !almost(s.X[1], 6) {
		t.Fatalf("x = %v", s.X)
	}
}

func TestSolveEqualityAndGE(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x ≥ 3, y ≥ 2 → x=8, y=2, obj=12.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Cons: []Constraint{
			{Idx: []int{0, 1}, Coef: []float64{1, 1}, Sense: EQ, RHS: 10},
			{Idx: []int{0}, Coef: []float64{1}, Sense: GE, RHS: 3},
			{Idx: []int{1}, Coef: []float64{1}, Sense: GE, RHS: 2},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Obj, 12) || !almost(s.X[0], 8) || !almost(s.X[1], 2) {
		t.Fatalf("%+v", s)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Cons: []Constraint{
			{Idx: []int{0}, Coef: []float64{1}, Sense: LE, RHS: 1},
			{Idx: []int{0}, Coef: []float64{1}, Sense: GE, RHS: 2},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status %v", s.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{-1}, // max x, no upper bound
		Cons:      []Constraint{{Idx: []int{0}, Coef: []float64{1}, Sense: GE, RHS: 0}},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status %v", s.Status)
	}
}

func TestSolveWithBounds(t *testing.T) {
	// min -x - y with x ≤ 2.5 (upper), y ∈ [1, 3].
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, -1},
		Lower:     []float64{0, 1},
		Upper:     []float64{2.5, 3},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Obj, -5.5) {
		t.Fatalf("%+v", s)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// -x ≤ -2 ⇔ x ≥ 2; min x → 2.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Cons:      []Constraint{{Idx: []int{0}, Coef: []float64{-1}, Sense: LE, RHS: -2}},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.X[0], 2) {
		t.Fatalf("%+v", s)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// A classic degenerate LP (Beale's cycling example shape) must still
	// terminate thanks to the Bland fallback.
	p := &Problem{
		NumVars:   4,
		Objective: []float64{-0.75, 150, -0.02, 6},
		Cons: []Constraint{
			{Idx: []int{0, 1, 2, 3}, Coef: []float64{0.25, -60, -0.04, 9}, Sense: LE, RHS: 0},
			{Idx: []int{0, 1, 2, 3}, Coef: []float64{0.5, -90, -0.02, 3}, Sense: LE, RHS: 0},
			{Idx: []int{2}, Coef: []float64{1}, Sense: LE, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Obj, -0.05) {
		t.Fatalf("%+v", s)
	}
}

func TestValidation(t *testing.T) {
	bad := []*Problem{
		{NumVars: 1, Objective: []float64{1, 2}},
		{NumVars: 1, Objective: []float64{1}, Cons: []Constraint{{Idx: []int{3}, Coef: []float64{1}}}},
		{NumVars: 1, Objective: []float64{1}, Cons: []Constraint{{Idx: []int{0}, Coef: []float64{1, 2}}}},
		{NumVars: 1, Objective: []float64{1}, Lower: []float64{-1}},
		{NumVars: 1, Objective: []float64{1}, Lower: []float64{2}, Upper: []float64{1}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

// TestRandomFeasible: build LPs around a known feasible point; the
// solver must return a feasible solution at least as good.
func TestRandomFeasible(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rnd.Intn(8)
		mRows := 1 + rnd.Intn(8)
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = float64(rnd.Intn(5))
		}
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = float64(rnd.Intn(11)) // nonneg objective → bounded below by 0
		}
		for i := 0; i < mRows; i++ {
			idx := []int{}
			coef := []float64{}
			var lhs float64
			for j := 0; j < n; j++ {
				if rnd.Intn(2) == 0 {
					c := float64(1 + rnd.Intn(4))
					idx = append(idx, j)
					coef = append(coef, c)
					lhs += c * x0[j]
				}
			}
			if len(idx) == 0 {
				continue
			}
			// x0 satisfies lhs ≤ lhs + slack and lhs ≥ lhs - slack.
			if rnd.Intn(2) == 0 {
				p.Cons = append(p.Cons, Constraint{idx, coef, LE, lhs + float64(rnd.Intn(3))})
			} else {
				p.Cons = append(p.Cons, Constraint{idx, coef, GE, lhs - float64(rnd.Intn(3))})
			}
		}
		s, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v for feasible problem", trial, s.Status)
		}
		var objAtX0 float64
		for j := range x0 {
			objAtX0 += p.Objective[j] * x0[j]
		}
		if s.Obj > objAtX0+1e-6 {
			t.Fatalf("trial %d: solver obj %v worse than feasible %v", trial, s.Obj, objAtX0)
		}
		checkFeasible(t, p, s.X)
	}
}

func checkFeasible(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	for j, v := range x {
		lo := 0.0
		if p.Lower != nil {
			lo = p.Lower[j]
		}
		hi := math.Inf(1)
		if p.Upper != nil {
			hi = p.Upper[j]
		}
		if v < lo-1e-6 || v > hi+1e-6 {
			t.Fatalf("x[%d]=%v outside [%v,%v]", j, v, lo, hi)
		}
	}
	for ci, c := range p.Cons {
		var lhs float64
		for k, j := range c.Idx {
			lhs += c.Coef[k] * x[j]
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+1e-6 {
				t.Fatalf("constraint %d violated: %v > %v", ci, lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-1e-6 {
				t.Fatalf("constraint %d violated: %v < %v", ci, lhs, c.RHS)
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > 1e-6 {
				t.Fatalf("constraint %d violated: %v != %v", ci, lhs, c.RHS)
			}
		}
	}
}

func TestEmptyProblem(t *testing.T) {
	s, err := Solve(&Problem{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || s.Obj != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(9).String() == "" {
		t.Error("status strings broken")
	}
}
