// Bounded-variable sparse revised simplex. The constraint system is
// held once, column-wise, in equality form A·x + I·s = b (one slack per
// row, its bounds encoding the row sense), so finite variable bounds —
// including the 0/1 bounds of the MILP binaries — never become rows.
// The basis inverse is a product-form eta file, periodically
// refactorised; pricing is Devex-weighted Dantzig with incremental
// reduced costs in phase 2 and a Bland fallback once progress stalls.
// Primal feasibility is reached by a composite phase 1 that minimises
// the total bound violation of the basic variables from any starting
// basis, which is what makes warm-starting branch-and-bound children
// from the parent basis cheap: a child differs by one bound, so the
// parent basis is usually a handful of phase-1 pivots from feasible.

package lp

import (
	"context"
	"errors"
	"math"
	"sort"
)

// Tolerances of the revised simplex.
const (
	dualTol   = 1e-9 // reduced-cost optimality threshold
	primalTol = 1e-7 // bound violation considered infeasible
	pivotTol  = 1e-8 // smallest acceptable pivot element
)

// refactorEvery caps the eta-file length: beyond this the accumulated
// transformations are rebuilt from the basis to flush roundoff and keep
// FTRAN/BTRAN cheap.
const refactorEvery = 96

var errSingularBasis = errors.New("lp: singular basis")

// sparseCols is a column-compressed matrix over the equality form.
type sparseCols struct {
	m   int // rows
	n   int // columns: structural then one slack per row
	ptr []int
	ind []int
	val []float64
}

func (a *sparseCols) col(j int) ([]int, []float64) {
	return a.ind[a.ptr[j]:a.ptr[j+1]], a.val[a.ptr[j]:a.ptr[j+1]]
}

// revisedSolver is the bound-independent half of a problem: matrix,
// costs, right-hand sides and the sense-derived slack bounds. It is
// built once and shared across branch-and-bound nodes, which differ
// only in structural bounds.
type revisedSolver struct {
	a       sparseCols
	b       []float64 // row right-hand sides
	cost    []float64 // per-column phase-2 cost (slacks 0)
	slackLo []float64 // slack bounds per row, from the row sense
	slackHi []float64
	nStruct int
}

func newRevisedSolver(p *Problem) *revisedSolver {
	m := len(p.Cons)
	n := p.NumVars + m
	s := &revisedSolver{
		b:       make([]float64, m),
		cost:    make([]float64, n),
		slackLo: make([]float64, m),
		slackHi: make([]float64, m),
		nStruct: p.NumVars,
	}
	copy(s.cost, p.Objective)
	nnz := m // one identity entry per slack column
	for _, c := range p.Cons {
		nnz += len(c.Idx)
	}
	a := sparseCols{m: m, n: n, ptr: make([]int, n+1), ind: make([]int, nnz), val: make([]float64, nnz)}
	cnt := make([]int, n)
	for _, c := range p.Cons {
		for _, j := range c.Idx {
			cnt[j]++
		}
	}
	for i := 0; i < m; i++ {
		cnt[p.NumVars+i]++
	}
	for j := 0; j < n; j++ {
		a.ptr[j+1] = a.ptr[j] + cnt[j]
	}
	next := append([]int(nil), a.ptr[:n]...)
	for i, c := range p.Cons {
		for k, j := range c.Idx {
			a.ind[next[j]] = i
			a.val[next[j]] = c.Coef[k]
			next[j]++
		}
	}
	for i := 0; i < m; i++ {
		j := p.NumVars + i
		a.ind[next[j]] = i
		a.val[next[j]] = 1
		next[j]++
	}
	s.a = a
	for i, c := range p.Cons {
		s.b[i] = c.RHS
		switch c.Sense {
		case LE: // a·x ≤ b ⇔ a·x + s = b, s ≥ 0
			s.slackLo[i], s.slackHi[i] = 0, math.Inf(1)
		case GE: // a·x ≥ b ⇔ a·x + s = b, s ≤ 0
			s.slackLo[i], s.slackHi[i] = math.Inf(-1), 0
		default: // EQ: slack fixed at 0
			s.slackLo[i], s.slackHi[i] = 0, 0
		}
	}
	return s
}

// basisState captures a simplex basis (and the bound each nonbasic
// variable rests on) for warm starts between related solves.
type basisState struct {
	basis   []int
	atUpper []bool
}

// rsState is the mutable state of one solve.
type rsState struct {
	s       *revisedSolver
	lo, hi  []float64 // per-column working bounds
	x       []float64 // current value per column
	basis   []int     // basis position -> column
	pos     []int     // column -> basis position, -1 if nonbasic
	atUpper []bool    // nonbasic columns: resting on upper bound
	f       *etaFile
	w       []float64 // scratch: FTRANed entering column
	y       []float64 // scratch: BTRAN pricing vector
	rho     []float64 // scratch: BTRANed pivot-row unit vector
	rhs     []float64 // scratch: RHS accumulation in computeX
	dj      []float64 // phase-2 reduced costs, maintained incrementally
	wref    []float64 // Devex reference weights
	iters   int
	bland   bool // anti-cycling mode: smallest-index pivoting
	fresh   bool // eta file was just (re)factorised; gates numeric retries
}

// solve optimises min cost·x over A·x + s = b with the given structural
// bounds (length NumVars). A non-nil warm basis from a related solve is
// used as the starting point when it is still structurally valid. The
// returned basisState re-warm-starts subsequent solves; it is nil when
// the solve did not reach a conclusive basis (cancellation or numeric
// failure).
func (s *revisedSolver) solve(ctx context.Context, lo, hi []float64, warm *basisState) (*Solution, *basisState, error) {
	m, n := s.a.m, s.a.n
	st := &rsState{
		s:       s,
		lo:      make([]float64, n),
		hi:      make([]float64, n),
		x:       make([]float64, n),
		basis:   make([]int, m),
		pos:     make([]int, n),
		atUpper: make([]bool, n),
		f:       newEtaFile(m),
		w:       make([]float64, m),
		y:       make([]float64, m),
		rho:     make([]float64, m),
		rhs:     make([]float64, m),
		dj:      make([]float64, n),
		wref:    make([]float64, n),
	}
	copy(st.lo, lo)
	copy(st.hi, hi)
	copy(st.lo[s.nStruct:], s.slackLo)
	copy(st.hi[s.nStruct:], s.slackHi)
	for j := range st.wref {
		st.wref[j] = 1
	}
	if !st.warmStart(warm) {
		st.coldStart()
	}
	st.computeX()
	sol, err := st.run(ctx)
	if err != nil {
		return sol, nil, err
	}
	return sol, st.snapshot(), nil
}

// warmStart installs a basis from a previous related solve; it reports
// false (leaving the state for coldStart) if the basis is malformed or
// numerically singular.
func (st *rsState) warmStart(warm *basisState) bool {
	s := st.s
	if warm == nil || len(warm.basis) != s.a.m || len(warm.atUpper) != s.a.n {
		return false
	}
	for j := range st.pos {
		st.pos[j] = -1
	}
	for i, j := range warm.basis {
		if j < 0 || j >= s.a.n || st.pos[j] >= 0 {
			return false
		}
		st.basis[i] = j
		st.pos[j] = i
	}
	copy(st.atUpper, warm.atUpper)
	return st.factorize() == nil
}

// coldStart installs the all-slack basis (B = I).
func (st *rsState) coldStart() {
	s := st.s
	for j := range st.pos {
		st.pos[j] = -1
	}
	for j := range st.atUpper {
		st.atUpper[j] = false
	}
	for i := 0; i < s.a.m; i++ {
		st.basis[i] = s.nStruct + i
		st.pos[s.nStruct+i] = i
	}
	st.f.reset()
	st.fresh = true
}

func (st *rsState) snapshot() *basisState {
	return &basisState{
		basis:   append([]int(nil), st.basis...),
		atUpper: append([]bool(nil), st.atUpper...),
	}
}

// factorize rebuilds the eta file from the basis by product-form
// Gauss-Jordan elimination: columns are processed sparsest-first, each
// pivoting on the largest remaining unassigned position (partial
// pivoting), which also reassigns basis positions.
func (st *rsState) factorize() error {
	s := st.s
	m := s.a.m
	st.f.reset()
	st.fresh = true
	if m == 0 {
		return nil
	}
	cols := append([]int(nil), st.basis...)
	sort.Slice(cols, func(a, b int) bool {
		na := s.a.ptr[cols[a]+1] - s.a.ptr[cols[a]]
		nb := s.a.ptr[cols[b]+1] - s.a.ptr[cols[b]]
		if na != nb {
			return na < nb
		}
		return cols[a] < cols[b]
	})
	used := make([]bool, m)
	newBasis := make([]int, m)
	w := make([]float64, m)
	for _, cj := range cols {
		for i := range w {
			w[i] = 0
		}
		ind, val := s.a.col(cj)
		for k, i := range ind {
			w[i] += val[k]
		}
		st.f.ftran(w)
		r, best := -1, 0.0
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			if a := math.Abs(w[i]); a > best {
				best, r = a, i
			}
		}
		if r < 0 || best < pivotTol {
			return errSingularBasis
		}
		st.f.push(r, w)
		used[r] = true
		newBasis[r] = cj
	}
	copy(st.basis, newBasis)
	for j := range st.pos {
		st.pos[j] = -1
	}
	for i, j := range st.basis {
		st.pos[j] = i
	}
	return nil
}

// computeX sets every nonbasic variable onto its resting bound and
// solves B·x_B = b − N·x_N for the basic values.
func (st *rsState) computeX() {
	s := st.s
	for j := 0; j < s.a.n; j++ {
		if st.pos[j] >= 0 {
			continue
		}
		lo, hi := st.lo[j], st.hi[j]
		v := 0.0
		switch {
		case st.atUpper[j] && !math.IsInf(hi, 1):
			v = hi
		case !math.IsInf(lo, -1):
			v = lo
			st.atUpper[j] = false
		case !math.IsInf(hi, 1):
			v = hi
			st.atUpper[j] = true
		}
		st.x[j] = v
	}
	copy(st.rhs, s.b)
	for j := 0; j < s.a.n; j++ {
		if st.pos[j] >= 0 || st.x[j] == 0 {
			continue
		}
		ind, val := s.a.col(j)
		for k, i := range ind {
			st.rhs[i] -= val[k] * st.x[j]
		}
	}
	st.f.ftran(st.rhs)
	for i, j := range st.basis {
		st.x[j] = st.rhs[i]
	}
}

func (st *rsState) refactor() error {
	if err := st.factorize(); err != nil {
		return err
	}
	st.computeX()
	return nil
}

// fixed reports whether a column's bounds pin it (EQ slacks, or
// binaries fixed by branching); fixed columns never price.
func (st *rsState) fixed(j int) bool { return st.hi[j]-st.lo[j] <= 1e-12 }

// infeasibility is the total bound violation of the basic variables:
// the composite phase-1 objective.
func (st *rsState) infeasibility() float64 {
	var f float64
	for _, j := range st.basis {
		if v := st.lo[j] - st.x[j]; v > 0 {
			f += v
		}
		if v := st.x[j] - st.hi[j]; v > 0 {
			f += v
		}
	}
	return f
}

// priceP1 prices for phase 1: the cost of each basic variable is ±1 by
// which bound it violates, nonbasic costs are 0, so a nonbasic column
// improves iff its reduced cost −y·A_j points into feasibility.
// Returns the entering column and its direction of change (+1 from
// lower, −1 from upper), or q = −1 at a phase-1 optimum.
func (st *rsState) priceP1() (q, dir int) {
	s := st.s
	for i, j := range st.basis {
		switch {
		case st.x[j] < st.lo[j]-primalTol:
			st.y[i] = -1
		case st.x[j] > st.hi[j]+primalTol:
			st.y[i] = 1
		default:
			st.y[i] = 0
		}
	}
	st.f.btran(st.y)
	q, dir = -1, 0
	best := 0.0
	for j := 0; j < s.a.n; j++ {
		if st.pos[j] >= 0 || st.fixed(j) {
			continue
		}
		ind, val := s.a.col(j)
		var d float64
		for k, i := range ind {
			d -= val[k] * st.y[i]
		}
		var dj int
		switch {
		case !st.atUpper[j] && d < -dualTol:
			dj = 1
		case st.atUpper[j] && d > dualTol:
			dj = -1
		default:
			continue
		}
		if st.bland {
			return j, dj
		}
		if sc := d * d / st.wref[j]; sc > best {
			best, q, dir = sc, j, dj
		}
	}
	return q, dir
}

// priceP2 picks the phase-2 entering column by Devex-weighted reduced
// cost, or smallest eligible index in Bland mode.
func (st *rsState) priceP2() (q, dir int) {
	q, dir = -1, 0
	best := 0.0
	for j := 0; j < st.s.a.n; j++ {
		if st.pos[j] >= 0 || st.fixed(j) {
			continue
		}
		d := st.dj[j]
		var dj int
		switch {
		case !st.atUpper[j] && d < -dualTol:
			dj = 1
		case st.atUpper[j] && d > dualTol:
			dj = -1
		default:
			continue
		}
		if st.bland {
			return j, dj
		}
		if sc := d * d / st.wref[j]; sc > best {
			best, q, dir = sc, j, dj
		}
	}
	return q, dir
}

// resetDJ recomputes the phase-2 reduced costs from scratch:
// d = c − Aᵀ·B⁻ᵀ·c_B.
func (st *rsState) resetDJ() {
	s := st.s
	for i, j := range st.basis {
		st.y[i] = s.cost[j]
	}
	st.f.btran(st.y)
	for j := 0; j < s.a.n; j++ {
		if st.pos[j] >= 0 {
			st.dj[j] = 0
			continue
		}
		ind, val := s.a.col(j)
		d := s.cost[j]
		for k, i := range ind {
			d -= val[k] * st.y[i]
		}
		st.dj[j] = d
	}
}

// ftranCol loads column j into st.w and applies B⁻¹.
func (st *rsState) ftranCol(j int) {
	for i := range st.w {
		st.w[i] = 0
	}
	ind, val := st.s.a.col(j)
	for k, i := range ind {
		st.w[i] += val[k]
	}
	st.f.ftran(st.w)
}

// ratioTest finds the largest step t for entering column q moving in
// direction dir given w = B⁻¹A_q. It returns the blocking basis
// position r (−1 when the entering variable's own opposite bound blocks
// first — flip — or nothing blocks at all: t is then infinite, meaning
// unbounded in phase 2). In phase 1, basic variables outside their
// bounds block only at the bound they are approaching, which is exactly
// what drives the infeasibility to zero. Ties prefer the largest pivot
// element for stability, or the smallest variable index in Bland mode.
func (st *rsState) ratioTest(q, dir int, phase1 bool) (r int, t float64, flip bool) {
	d := float64(dir)
	t = math.Inf(1)
	r = -1
	bestAbs := 0.0
	for i := 0; i < st.s.a.m; i++ {
		wi := st.w[i]
		if wi < pivotTol && wi > -pivotTol {
			continue
		}
		delta := -d * wi // change of basic i per unit step
		j := st.basis[i]
		xj := st.x[j]
		var ti float64
		switch {
		case phase1 && xj < st.lo[j]-primalTol:
			if delta < pivotTol {
				continue // moving deeper below: priced into the objective, no block
			}
			ti = (st.lo[j] - xj) / delta
		case phase1 && xj > st.hi[j]+primalTol:
			if delta > -pivotTol {
				continue
			}
			ti = (st.hi[j] - xj) / delta
		case delta > 0:
			if math.IsInf(st.hi[j], 1) {
				continue
			}
			ti = (st.hi[j] - xj) / delta
		default:
			if math.IsInf(st.lo[j], -1) {
				continue
			}
			ti = (st.lo[j] - xj) / delta
		}
		if ti < 0 {
			ti = 0 // tolerance overshoot: degenerate step
		}
		switch {
		case r < 0 || ti < t-1e-10:
			r, t, bestAbs = i, ti, math.Abs(wi)
		case ti <= t+1e-10:
			if st.bland {
				if j < st.basis[r] {
					r, bestAbs = i, math.Abs(wi)
					if ti < t {
						t = ti
					}
				}
			} else if a := math.Abs(wi); a > bestAbs {
				r, bestAbs = i, a
				if ti < t {
					t = ti
				}
			}
		}
	}
	if span := st.hi[q] - st.lo[q]; !math.IsInf(span, 1) && span <= t+1e-10 {
		return -1, span, true
	}
	return r, t, false
}

// applyFlip moves the entering variable across to its opposite bound
// without a basis change.
func (st *rsState) applyFlip(q, dir int, t float64) {
	d := float64(dir)
	for i, wi := range st.w {
		if wi != 0 {
			st.x[st.basis[i]] -= d * t * wi
		}
	}
	st.atUpper[q] = dir > 0
	if st.atUpper[q] {
		st.x[q] = st.hi[q]
	} else {
		st.x[q] = st.lo[q]
	}
	st.iters++
}

// applyPivot performs the basis change: entering q replaces the
// variable at position r, which leaves onto the bound it reached.
func (st *rsState) applyPivot(q, dir, r int, t float64) {
	d := float64(dir)
	for i, wi := range st.w {
		if wi != 0 {
			st.x[st.basis[i]] -= d * t * wi
		}
	}
	st.x[q] += d * t
	jOut := st.basis[r]
	lo, hi := st.lo[jOut], st.hi[jOut]
	switch {
	case math.IsInf(hi, 1):
		st.x[jOut], st.atUpper[jOut] = lo, false
	case math.IsInf(lo, -1):
		st.x[jOut], st.atUpper[jOut] = hi, true
	case math.Abs(st.x[jOut]-lo) <= math.Abs(st.x[jOut]-hi):
		st.x[jOut], st.atUpper[jOut] = lo, false
	default:
		st.x[jOut], st.atUpper[jOut] = hi, true
	}
	st.pos[jOut] = -1
	st.basis[r] = q
	st.pos[q] = r
	st.f.push(r, st.w)
	st.fresh = false
	st.iters++
}

// updateDualsDevex maintains the phase-2 reduced costs and Devex
// reference weights across the pivot (q entering at position r). Must
// run before applyPivot, while pos still describes the old basis. The
// pivot row α_r = e_rᵀB⁻¹A is obtained by one BTRAN of e_r; it both
// updates d (d_j ← d_j − θ_d·α_rj) and refreshes the weights.
func (st *rsState) updateDualsDevex(q, r int) {
	s := st.s
	alphaQ := st.w[r]
	thetaD := st.dj[q] / alphaQ
	for i := range st.rho {
		st.rho[i] = 0
	}
	st.rho[r] = 1
	st.f.btran(st.rho)
	wq := st.wref[q]
	jOut := st.basis[r]
	for j := 0; j < s.a.n; j++ {
		if st.pos[j] >= 0 || j == q || st.fixed(j) {
			continue
		}
		ind, val := s.a.col(j)
		var alpha float64
		for k, i := range ind {
			alpha += val[k] * st.rho[i]
		}
		if alpha == 0 {
			continue
		}
		st.dj[j] -= thetaD * alpha
		ratio := alpha / alphaQ
		if nw := ratio * ratio * wq; nw > st.wref[j] {
			st.wref[j] = nw
		}
	}
	st.dj[jOut] = -thetaD
	st.dj[q] = 0
	if nw := wq / (alphaQ * alphaQ); nw > 1 {
		st.wref[jOut] = nw
	} else {
		st.wref[jOut] = 1
	}
}

// objective is cᵀx over the structural variables.
func (st *rsState) objective() float64 {
	var v float64
	for j := 0; j < st.s.nStruct; j++ {
		v += st.s.cost[j] * st.x[j]
	}
	return v
}

// solution extracts the structural optimum.
func (st *rsState) solution() *Solution {
	s := st.s
	x := make([]float64, s.nStruct)
	for j := range x {
		v := st.x[j]
		if v < st.lo[j] {
			v = st.lo[j]
		} else if v > st.hi[j] {
			v = st.hi[j]
		}
		if v < 1e-11 && v > -1e-11 {
			v = 0
		}
		x[j] = v
	}
	var obj float64
	for j, c := range s.cost[:s.nStruct] {
		obj += c * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj, Iters: st.iters}
}

// run drives the two phases to a verdict. Phase 2 preserves primal
// feasibility mathematically, but roundoff between refactorisations can
// erode it; the outer loop sends such a basis back through phase 1.
func (st *rsState) run(ctx context.Context) (*Solution, error) {
	m, n := st.s.a.m, st.s.a.n
	limit := 400*(m+n) + 1000
	stallLimit := 4*(m+n) + 100
	poll := 0
	// The periodic in-loop polls only fire every few pivots; small
	// problems can finish inside that window, so an already-done context
	// must be caught up front.
	if ctx.Err() != nil {
		return canceledResult(ctx, 0)
	}
	for {
		if sol, err := st.phase1(ctx, limit, stallLimit, &poll); sol != nil || err != nil {
			return sol, err
		}
		sol, again, err := st.phase2(ctx, limit, stallLimit, &poll)
		if !again {
			return sol, err
		}
	}
}

// phase1 pivots until the basics are within bounds. A (nil, nil) return
// means primal feasible: proceed to phase 2.
func (st *rsState) phase1(ctx context.Context, limit, stallLimit int, poll *int) (*Solution, error) {
	bestInf := math.Inf(1)
	stall := 0
	for {
		*poll++
		if *poll&7 == 0 && ctx.Err() != nil {
			return canceledResult(ctx, st.iters)
		}
		if st.iters > limit {
			return nil, ErrNumeric
		}
		inf := st.infeasibility()
		if inf <= feasEps {
			break
		}
		if inf < bestInf-1e-10 {
			bestInf, stall = inf, 0
		} else if stall++; stall > stallLimit {
			st.bland = true
		}
		q, dir := st.priceP1()
		if q < 0 {
			// Phase-1 optimum with residual infeasibility: the problem
			// is infeasible — but re-verify on a fresh factorisation so
			// drift cannot produce a false verdict.
			if !st.fresh {
				if err := st.refactor(); err != nil {
					return nil, ErrNumeric
				}
				continue
			}
			return &Solution{Status: Infeasible, Iters: st.iters}, nil
		}
		st.ftranCol(q)
		r, t, flip := st.ratioTest(q, dir, true)
		if flip {
			st.applyFlip(q, dir, t)
			continue
		}
		if r < 0 {
			// The infeasibility measure cannot be unbounded below, so a
			// blockless improving direction is numerical noise.
			if !st.fresh {
				if err := st.refactor(); err != nil {
					return nil, ErrNumeric
				}
				continue
			}
			return nil, ErrNumeric
		}
		st.applyPivot(q, dir, r, t)
		if len(st.f.etas) >= refactorEvery {
			if err := st.refactor(); err != nil {
				return nil, ErrNumeric
			}
		}
	}
	return nil, nil
}

// phase2 optimises the true objective from a primal-feasible basis.
// again=true asks run to re-enter phase 1: roundoff pushed a basic
// variable out of bounds.
func (st *rsState) phase2(ctx context.Context, limit, stallLimit int, poll *int) (sol *Solution, again bool, err error) {
	st.bland = false
	st.resetDJ()
	bestObj := math.Inf(1)
	stall := 0
	recheck := 0
	for {
		*poll++
		if *poll&7 == 0 && ctx.Err() != nil {
			sol, err = canceledResult(ctx, st.iters)
			return sol, false, err
		}
		if st.iters > limit {
			return nil, false, ErrNumeric
		}
		q, dir := st.priceP2()
		if q < 0 {
			// Optimal — but confirm once on exact reduced costs from a
			// fresh factorisation before declaring, since dj is
			// maintained incrementally.
			if recheck < 1 {
				recheck++
				if err := st.refactor(); err != nil {
					return nil, false, ErrNumeric
				}
				st.resetDJ()
				if st.infeasibility() > feasEps {
					return nil, true, nil
				}
				continue
			}
			return st.solution(), false, nil
		}
		st.ftranCol(q)
		r, t, flip := st.ratioTest(q, dir, false)
		if flip {
			st.applyFlip(q, dir, t) // dj and the basis are unchanged
			continue
		}
		if r < 0 {
			if !st.fresh {
				if err := st.refactor(); err != nil {
					return nil, false, ErrNumeric
				}
				st.resetDJ()
				continue
			}
			return &Solution{Status: Unbounded, Iters: st.iters}, false, nil
		}
		st.updateDualsDevex(q, r)
		st.applyPivot(q, dir, r, t)
		recheck = 0
		if len(st.f.etas) >= refactorEvery {
			if err := st.refactor(); err != nil {
				return nil, false, ErrNumeric
			}
			st.resetDJ()
		}
		if obj := st.objective(); obj < bestObj-1e-10 {
			bestObj, stall = obj, 0
		} else if stall++; stall > stallLimit {
			st.bland = true
		}
	}
}
