// Package lp is a self-contained linear and mixed-integer linear
// programming solver. It stands in for the lp_solve package (reference
// [15]) the paper used to solve the ILP formulation of the combined
// scheduling, binding and wordlength selection problem.
//
// The LP core is a bounded-variable sparse revised simplex: column-wise
// sparse constraint storage, a product-form (eta-file) basis inverse
// with periodic refactorisation, and Devex-style pricing with a Bland
// fallback for anti-cycling. Variable bounds are handled implicitly —
// nonbasic variables sit at either bound — so the 0/1 variables of
// internal/ilp's models cost no extra constraint rows. The
// branch-and-bound wrapper (SolveMILP) shares one sparse matrix across
// all nodes and warm-starts each child from its parent's basis.
//
// The original dense-tableau two-phase simplex is kept as an unexported
// fallback (solveDense): it serves as the oracle for the equivalence
// property tests and as a safety net should the revised simplex hit its
// iteration budget on a pathological instance.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Sense of a linear constraint.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // Σ a_j x_j ≤ b
	GE              // Σ a_j x_j ≥ b
	EQ              // Σ a_j x_j = b
)

// Constraint is one sparse row.
type Constraint struct {
	Idx   []int     // variable indices
	Coef  []float64 // matching coefficients
	Sense Sense
	RHS   float64
}

// Problem is min cᵀx s.t. constraints, 0 ≤ Lower ≤ x ≤ Upper.
// Nil Lower means all zeros; nil Upper means all +Inf.
type Problem struct {
	NumVars   int
	Objective []float64 // length NumVars; minimised
	Cons      []Constraint
	Lower     []float64 // optional; entries must be ≥ 0
	Upper     []float64 // optional; math.Inf(1) for unbounded
}

// Status of a solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	// Canceled reports that the context passed to SolveCtx was done
	// before the solve finished. The Solution carrying it is returned
	// together with a non-nil error that wraps both ErrCanceled and the
	// context's ctx.Err(), so errors.Is(err, context.Canceled) (or
	// context.DeadlineExceeded) still holds for callers that only look
	// at the error.
	Canceled
)

// StatusCanceled is an alias for Canceled.
const StatusCanceled = Canceled

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Canceled:
		return "canceled"
	default:
		return fmt.Sprintf("Status(%d)", int8(s))
	}
}

// Solution of an LP.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
	Iters  int
}

const (
	eps     = 1e-9
	feasEps = 1e-7
)

// ErrNumeric is returned when the simplex exceeds its iteration budget,
// indicating numerical cycling beyond what Bland's rule resolves.
var ErrNumeric = errors.New("lp: iteration budget exceeded")

// ErrCanceled is returned (wrapped together with the context's error)
// when a solve is stopped by its context. The accompanying Solution has
// Status Canceled.
var ErrCanceled = errors.New("lp: solve canceled")

// canceledResult builds the uniform ctx-canceled return: a Solution
// with Status Canceled plus an error wrapping ErrCanceled and ctx.Err().
func canceledResult(ctx context.Context, iters int) (*Solution, error) {
	return &Solution{Status: Canceled, Iters: iters},
		fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
}

// Solve runs the sparse revised simplex on p. It is SolveCtx with a
// background context, so it never returns a Canceled solution.
func Solve(p *Problem) (*Solution, error) {
	return SolveCtx(context.Background(), p)
}

// SolveCtx is Solve with cancellation: the pivot loops poll ctx and,
// once it is done, return a Solution with Status Canceled alongside an
// error wrapping ErrCanceled and ctx.Err(). Large ILP relaxations can
// spend many seconds inside a single simplex run, so per-node polling
// in a surrounding branch-and-bound is not enough for prompt cancel.
// On a pathological instance that exhausts the revised simplex's
// iteration budget the dense tableau fallback is tried before giving up
// with ErrNumeric.
func SolveCtx(ctx context.Context, p *Problem) (*Solution, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	rs := newRevisedSolver(p)
	lo, hi := structBounds(p)
	sol, _, err := rs.solve(ctx, lo, hi, nil)
	if err != nil && errors.Is(err, ErrNumeric) {
		return solveDense(ctx, p)
	}
	return sol, err
}

// structBounds materialises the optional Lower/Upper slices.
func structBounds(p *Problem) (lo, hi []float64) {
	lo = make([]float64, p.NumVars)
	hi = make([]float64, p.NumVars)
	for j := range hi {
		hi[j] = math.Inf(1)
	}
	if p.Lower != nil {
		copy(lo, p.Lower)
	}
	if p.Upper != nil {
		copy(hi, p.Upper)
	}
	return lo, hi
}

func validate(p *Problem) error {
	if p.NumVars < 0 {
		return fmt.Errorf("lp: negative variable count")
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("lp: objective has %d entries for %d variables", len(p.Objective), p.NumVars)
	}
	if p.Lower != nil && len(p.Lower) != p.NumVars {
		return fmt.Errorf("lp: Lower has %d entries for %d variables", len(p.Lower), p.NumVars)
	}
	if p.Upper != nil && len(p.Upper) != p.NumVars {
		return fmt.Errorf("lp: Upper has %d entries for %d variables", len(p.Upper), p.NumVars)
	}
	for ci, c := range p.Cons {
		if len(c.Idx) != len(c.Coef) {
			return fmt.Errorf("lp: constraint %d has %d indices, %d coefficients", ci, len(c.Idx), len(c.Coef))
		}
		for _, j := range c.Idx {
			if j < 0 || j >= p.NumVars {
				return fmt.Errorf("lp: constraint %d references variable %d", ci, j)
			}
		}
	}
	if p.Lower != nil {
		for j, l := range p.Lower {
			if l < 0 {
				return fmt.Errorf("lp: variable %d has negative lower bound %g", j, l)
			}
			if p.Upper != nil && p.Upper[j] < l {
				return fmt.Errorf("lp: variable %d has empty bound range [%g, %g]", j, l, p.Upper[j])
			}
		}
	}
	return nil
}
