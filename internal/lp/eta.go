// Product-form representation of the simplex basis inverse: the basis
// is implicitly B = E_1·E_2·…·E_k, each E_t an identity matrix with one
// column replaced by the pivot column ("eta vector") of iteration t, so
// B⁻¹·v (FTRAN) applies E_1⁻¹ … E_k⁻¹ in order and B⁻ᵀ·v (BTRAN)
// applies the transposed inverses in reverse. The file is rebuilt from
// scratch periodically (refactorisation) to cap its length and flush
// accumulated roundoff.

package lp

// dropTol discards eta entries too small to matter; keeping them only
// grows the file and amplifies roundoff.
const dropTol = 1e-12

// eta is one elementary transformation: an identity matrix whose column
// at basis position pos is replaced by the spike vector (piv at pos,
// val[k] at idx[k] elsewhere).
type eta struct {
	pos int
	piv float64
	idx []int
	val []float64
}

// etaFile is the ordered sequence of eta transformations.
type etaFile struct {
	m    int
	etas []eta
	nnz  int // stored off-pivot entries, a refactorisation heuristic
}

func newEtaFile(m int) *etaFile { return &etaFile{m: m} }

func (f *etaFile) reset() {
	f.etas = f.etas[:0]
	f.nnz = 0
}

// push appends the eta that post-multiplies the basis with the spike w
// at position pos; w[pos] is the pivot element. w is copied sparsely.
func (f *etaFile) push(pos int, w []float64) {
	e := eta{pos: pos, piv: w[pos]}
	for i, v := range w {
		if i != pos && (v > dropTol || v < -dropTol) {
			e.idx = append(e.idx, i)
			e.val = append(e.val, v)
		}
	}
	f.nnz += len(e.idx)
	f.etas = append(f.etas, e)
}

// ftran solves B·w = v in place: w = E_k⁻¹·…·E_1⁻¹·v.
func (f *etaFile) ftran(v []float64) {
	for k := range f.etas {
		e := &f.etas[k]
		vp := v[e.pos]
		if vp == 0 {
			continue
		}
		vp /= e.piv
		v[e.pos] = vp
		for t, i := range e.idx {
			v[i] -= e.val[t] * vp
		}
	}
}

// btran solves Bᵀ·y = v in place: y = E_1⁻ᵀ·…·E_k⁻ᵀ·v.
func (f *etaFile) btran(v []float64) {
	for k := len(f.etas) - 1; k >= 0; k-- {
		e := &f.etas[k]
		s := v[e.pos]
		for t, i := range e.idx {
			s -= e.val[t] * v[i]
		}
		v[e.pos] = s / e.piv
	}
}
