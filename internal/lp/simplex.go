// Package lp is a self-contained linear and mixed-integer linear
// programming solver: a dense two-phase primal simplex and a depth-first
// branch-and-bound wrapper. It stands in for the lp_solve package
// (reference [15]) the paper used to solve the ILP formulation of the
// combined scheduling, binding and wordlength selection problem.
//
// The solver targets the modest, mostly 0/1 problems produced by
// internal/ilp: hundreds of variables and rows. All variables are
// non-negative; optional finite lower/upper bounds are handled as
// explicit rows for simplicity and verifiability over speed.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Sense of a linear constraint.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // Σ a_j x_j ≤ b
	GE              // Σ a_j x_j ≥ b
	EQ              // Σ a_j x_j = b
)

// Constraint is one sparse row.
type Constraint struct {
	Idx   []int     // variable indices
	Coef  []float64 // matching coefficients
	Sense Sense
	RHS   float64
}

// Problem is min cᵀx s.t. constraints, 0 ≤ Lower ≤ x ≤ Upper.
// Nil Lower means all zeros; nil Upper means all +Inf.
type Problem struct {
	NumVars   int
	Objective []float64 // length NumVars; minimised
	Cons      []Constraint
	Lower     []float64 // optional; entries must be ≥ 0
	Upper     []float64 // optional; math.Inf(1) for unbounded
}

// Status of a solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int8(s))
	}
}

// Solution of an LP.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
	Iters  int
}

const (
	eps     = 1e-9
	feasEps = 1e-7
)

// ErrNumeric is returned when the simplex exceeds its iteration budget,
// indicating numerical cycling beyond what Bland's rule resolves.
var ErrNumeric = errors.New("lp: iteration budget exceeded")

// Solve runs two-phase primal simplex.
func Solve(p *Problem) (*Solution, error) {
	return SolveCtx(context.Background(), p)
}

// SolveCtx is Solve with cancellation: the pivot loop polls ctx and
// returns ctx.Err() promptly once it is done. Large ILP relaxations can
// spend many seconds inside a single simplex run, so per-node polling
// in a surrounding branch-and-bound is not enough for prompt cancel.
func SolveCtx(ctx context.Context, p *Problem) (*Solution, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	rows := buildRows(p)
	m := len(rows)
	n := p.NumVars

	// Layout: columns 0..n-1 structural, n..n+m-1 slack/surplus,
	// then artificials as needed.
	type rowInfo struct {
		slack int // column of slack/surplus, -1 if none
		art   int // column of artificial, -1 if none
	}
	info := make([]rowInfo, m)
	cols := n
	for i, r := range rows {
		switch r.sense {
		case LE:
			info[i] = rowInfo{slack: cols, art: -1}
			cols++
		case GE:
			info[i] = rowInfo{slack: cols, art: cols + 1}
			cols += 2
		case EQ:
			info[i] = rowInfo{slack: -1, art: cols}
			cols++
		}
	}

	// Dense tableau: m rows × cols, plus RHS column.
	t := newTableau(m, cols)
	basis := make([]int, m)
	for i, r := range rows {
		for k, j := range r.idx {
			t.a[i][j] = r.coef[k]
		}
		t.b[i] = r.rhs
		switch {
		case r.sense == LE:
			t.a[i][info[i].slack] = 1
			basis[i] = info[i].slack
		case r.sense == GE:
			t.a[i][info[i].slack] = -1
			t.a[i][info[i].art] = 1
			basis[i] = info[i].art
		default:
			t.a[i][info[i].art] = 1
			basis[i] = info[i].art
		}
	}

	isArt := make([]bool, cols)
	haveArt := false
	for i := range rows {
		if info[i].art >= 0 {
			isArt[info[i].art] = true
			haveArt = true
		}
	}

	var iters int
	if haveArt {
		// Phase 1: minimise the sum of artificials.
		c1 := make([]float64, cols)
		for j := range c1 {
			if isArt[j] {
				c1[j] = 1
			}
		}
		it, st := t.iterate(ctx, c1, basis, nil)
		iters += it
		if st == stCanceled {
			return nil, ctx.Err()
		}
		if st == stIterLimit {
			return nil, ErrNumeric
		}
		obj1 := t.objValue(c1, basis)
		if obj1 > feasEps {
			return &Solution{Status: Infeasible, Iters: iters}, nil
		}
		// Pivot any artificial still basic (at zero) out if possible.
		for i := 0; i < m; i++ {
			if !isArt[basis[i]] {
				continue
			}
			done := false
			for j := 0; j < cols && !done; j++ {
				if !isArt[j] && math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j)
					basis[i] = j
					done = true
				}
			}
			// If the row is all zeros over non-artificials it is
			// redundant; the artificial stays basic at value 0, which is
			// harmless as long as its column is barred from re-entering.
		}
	}

	// Phase 2.
	c2 := make([]float64, cols)
	copy(c2, p.Objective)
	it, st := t.iterate(ctx, c2, basis, isArt)
	iters += it
	switch st {
	case stCanceled:
		return nil, ctx.Err()
	case stIterLimit:
		return nil, ErrNumeric
	case stUnbounded:
		return &Solution{Status: Unbounded, Iters: iters}, nil
	}

	x := make([]float64, p.NumVars)
	for i, bj := range basis {
		if bj < p.NumVars {
			x[bj] = t.b[i]
		}
	}
	var obj float64
	for j, c := range p.Objective {
		obj += c * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj, Iters: iters}, nil
}

func validate(p *Problem) error {
	if p.NumVars < 0 {
		return fmt.Errorf("lp: negative variable count")
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("lp: objective has %d entries for %d variables", len(p.Objective), p.NumVars)
	}
	if p.Lower != nil && len(p.Lower) != p.NumVars {
		return fmt.Errorf("lp: Lower has %d entries for %d variables", len(p.Lower), p.NumVars)
	}
	if p.Upper != nil && len(p.Upper) != p.NumVars {
		return fmt.Errorf("lp: Upper has %d entries for %d variables", len(p.Upper), p.NumVars)
	}
	for ci, c := range p.Cons {
		if len(c.Idx) != len(c.Coef) {
			return fmt.Errorf("lp: constraint %d has %d indices, %d coefficients", ci, len(c.Idx), len(c.Coef))
		}
		for _, j := range c.Idx {
			if j < 0 || j >= p.NumVars {
				return fmt.Errorf("lp: constraint %d references variable %d", ci, j)
			}
		}
	}
	if p.Lower != nil {
		for j, l := range p.Lower {
			if l < 0 {
				return fmt.Errorf("lp: variable %d has negative lower bound %g", j, l)
			}
			if p.Upper != nil && p.Upper[j] < l {
				return fmt.Errorf("lp: variable %d has empty bound range [%g, %g]", j, l, p.Upper[j])
			}
		}
	}
	return nil
}

// denseRow is a normalised constraint with non-negative RHS.
type denseRow struct {
	idx   []int
	coef  []float64
	sense Sense
	rhs   float64
}

// buildRows merges the constraint list with bound rows and normalises
// RHS signs.
func buildRows(p *Problem) []denseRow {
	var rows []denseRow
	add := func(idx []int, coef []float64, s Sense, rhs float64) {
		if rhs < 0 {
			c2 := make([]float64, len(coef))
			for i, v := range coef {
				c2[i] = -v
			}
			coef = c2
			rhs = -rhs
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		rows = append(rows, denseRow{idx: idx, coef: coef, sense: s, rhs: rhs})
	}
	for _, c := range p.Cons {
		add(c.Idx, c.Coef, c.Sense, c.RHS)
	}
	if p.Upper != nil {
		for j, u := range p.Upper {
			if !math.IsInf(u, 1) {
				add([]int{j}, []float64{1}, LE, u)
			}
		}
	}
	if p.Lower != nil {
		for j, l := range p.Lower {
			if l > 0 {
				add([]int{j}, []float64{1}, GE, l)
			}
		}
	}
	return rows
}

// ---- dense tableau ----

type tableau struct {
	a [][]float64
	b []float64
}

func newTableau(m, cols int) *tableau {
	t := &tableau{a: make([][]float64, m), b: make([]float64, m)}
	backing := make([]float64, m*cols)
	for i := range t.a {
		t.a[i] = backing[i*cols : (i+1)*cols]
	}
	return t
}

func (t *tableau) pivot(pr, pc int) {
	piv := t.a[pr][pc]
	row := t.a[pr]
	inv := 1 / piv
	for j := range row {
		row[j] *= inv
	}
	t.b[pr] *= inv
	for i := range t.a {
		if i == pr {
			continue
		}
		f := t.a[i][pc]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * row[j]
		}
		t.b[i] -= f * t.b[pr]
	}
}

type iterStatus int8

const (
	stOptimal iterStatus = iota
	stUnbounded
	stIterLimit
	stCanceled
)

// objValue computes cᵀx for the current basic solution.
func (t *tableau) objValue(c []float64, basis []int) float64 {
	var v float64
	for i, bj := range basis {
		v += c[bj] * t.b[i]
	}
	return v
}

// iterate runs primal simplex on the tableau for objective c (minimise).
// banned columns (nil allowed) may never enter the basis — used to keep
// artificials out in phase 2. Dantzig pricing with a switch to Bland's
// rule to guarantee termination.
func (t *tableau) iterate(ctx context.Context, c []float64, basis []int, banned []bool) (int, iterStatus) {
	m := len(t.a)
	if m == 0 {
		return 0, stOptimal
	}
	cols := len(t.a[0])
	// Reduced costs require the objective row in reduced form:
	// z_j - c_j = c_B B⁻¹ A_j - c_j; we maintain it explicitly.
	z := make([]float64, cols)
	computeZ := func() {
		for j := 0; j < cols; j++ {
			var v float64
			for i, bj := range basis {
				v += c[bj] * t.a[i][j]
			}
			z[j] = v - c[j]
		}
	}
	computeZ()

	limit := 200 * (m + cols)
	blandAfter := 20 * (m + cols)
	for iter := 0; iter < limit; iter++ {
		// Each pivot costs O(m·cols) floating-point work, so a per-
		// iteration ctx poll is noise by comparison.
		if iter&15 == 0 && ctx.Err() != nil {
			return iter, stCanceled
		}
		// Entering column: most positive z_j (Dantzig), or first
		// positive (Bland) once past the cycling threshold.
		pc := -1
		if iter < blandAfter {
			best := eps
			for j := 0; j < cols; j++ {
				if banned != nil && banned[j] {
					continue
				}
				if z[j] > best {
					best = z[j]
					pc = j
				}
			}
		} else {
			for j := 0; j < cols; j++ {
				if banned != nil && banned[j] {
					continue
				}
				if z[j] > eps {
					pc = j
					break
				}
			}
		}
		if pc < 0 {
			return iter, stOptimal
		}
		// Ratio test; Bland tie-break on smallest basis variable.
		pr := -1
		var bestRatio float64
		for i := 0; i < m; i++ {
			if t.a[i][pc] > eps {
				r := t.b[i] / t.a[i][pc]
				if pr < 0 || r < bestRatio-eps ||
					(r < bestRatio+eps && basis[i] < basis[pr]) {
					pr = i
					bestRatio = r
				}
			}
		}
		if pr < 0 {
			return iter, stUnbounded
		}
		t.pivot(pr, pc)
		basis[pr] = pc
		computeZ()
	}
	return limit, stIterLimit
}
