package lp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestMILPKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 6, binary.
	// Optimum: a=0, b=1, c=1 → 20. (a=1,c=1: 17; a=1,b=1: weight 7 ✗)
	m := &MILP{
		Problem: Problem{
			NumVars:   3,
			Objective: []float64{-10, -13, -7},
			Cons:      []Constraint{{Idx: []int{0, 1, 2}, Coef: []float64{3, 4, 2}, Sense: LE, RHS: 6}},
			Upper:     []float64{1, 1, 1},
		},
		Integer: []int{0, 1, 2},
	}
	r, err := SolveMILP(m, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || !almost(r.Obj, -20) {
		t.Fatalf("%+v", r)
	}
	if !almost(r.X[1], 1) || !almost(r.X[2], 1) || !almost(r.X[0], 0) {
		t.Fatalf("x = %v", r.X)
	}
}

func TestMILPIntegerRounding(t *testing.T) {
	// min x s.t. 2x ≥ 3, x integer → x=2.
	m := &MILP{
		Problem: Problem{
			NumVars:   1,
			Objective: []float64{1},
			Cons:      []Constraint{{Idx: []int{0}, Coef: []float64{2}, Sense: GE, RHS: 3}},
		},
		Integer: []int{0},
	}
	r, err := SolveMILP(m, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || !almost(r.X[0], 2) {
		t.Fatalf("%+v", r)
	}
}

func TestMILPInfeasible(t *testing.T) {
	// 0.4 ≤ x ≤ 0.6, x integer: LP feasible, no integral point.
	m := &MILP{
		Problem: Problem{
			NumVars:   1,
			Objective: []float64{1},
			Lower:     []float64{0.4},
			Upper:     []float64{0.6},
		},
		Integer: []int{0},
	}
	r, err := SolveMILP(m, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible || r.HasX {
		t.Fatalf("%+v", r)
	}
}

func TestMILPWarmStartPrunes(t *testing.T) {
	// With an incumbent equal to the optimum, the search proves
	// optimality without necessarily producing X.
	m := &MILP{
		Problem: Problem{
			NumVars:   2,
			Objective: []float64{1, 1},
			Cons:      []Constraint{{Idx: []int{0, 1}, Coef: []float64{1, 1}, Sense: GE, RHS: 2}},
			Upper:     []float64{1, 1},
		},
		Integer: []int{0, 1},
	}
	r, err := SolveMILP(m, MILPOptions{Incumbent: 2, IncumbentSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || r.Obj > 2+1e-9 {
		t.Fatalf("%+v", r)
	}
}

func TestMILPNodeLimit(t *testing.T) {
	m := &MILP{
		Problem: Problem{
			NumVars:   6,
			Objective: []float64{-1, -1, -1, -1, -1, -1},
			Cons: []Constraint{
				{Idx: []int{0, 1, 2, 3, 4, 5}, Coef: []float64{3, 5, 7, 9, 11, 13}, Sense: LE, RHS: 17},
			},
			Upper: []float64{1, 1, 1, 1, 1, 1},
		},
		Integer: []int{0, 1, 2, 3, 4, 5},
	}
	r, err := SolveMILP(m, MILPOptions{NodeLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut {
		t.Fatalf("node limit not honoured: %+v", r)
	}
}

func TestMILPTimeLimit(t *testing.T) {
	m := &MILP{
		Problem: Problem{
			NumVars:   1,
			Objective: []float64{1},
			Upper:     []float64{1},
		},
		Integer: []int{0},
	}
	// A 1ns budget elapses before the first node.
	r, err := SolveMILP(m, MILPOptions{TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut {
		t.Fatalf("time limit not honoured: %+v", r)
	}
}

// bruteBinary enumerates all 0/1 assignments.
func bruteBinary(m *MILP) (float64, bool) {
	n := m.NumVars
	best, found := math.Inf(1), false
	for mask := 0; mask < 1<<n; mask++ {
		x := make([]float64, n)
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				x[j] = 1
			}
		}
		ok := true
		for _, c := range m.Cons {
			var lhs float64
			for k, j := range c.Idx {
				lhs += c.Coef[k] * x[j]
			}
			switch c.Sense {
			case LE:
				ok = ok && lhs <= c.RHS+1e-9
			case GE:
				ok = ok && lhs >= c.RHS-1e-9
			case EQ:
				ok = ok && math.Abs(lhs-c.RHS) <= 1e-9
			}
		}
		if !ok {
			continue
		}
		var obj float64
		for j := range x {
			obj += m.Objective[j] * x[j]
		}
		if obj < best {
			best, found = obj, true
		}
	}
	return best, found
}

func TestMILPMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rnd.Intn(7)
		m := &MILP{
			Problem: Problem{
				NumVars:   n,
				Objective: make([]float64, n),
				Upper:     make([]float64, n),
			},
		}
		for j := 0; j < n; j++ {
			m.Objective[j] = float64(rnd.Intn(21) - 10)
			m.Upper[j] = 1
			m.Integer = append(m.Integer, j)
		}
		rows := 1 + rnd.Intn(4)
		for i := 0; i < rows; i++ {
			var idx []int
			var coef []float64
			for j := 0; j < n; j++ {
				if rnd.Intn(2) == 0 {
					idx = append(idx, j)
					coef = append(coef, float64(rnd.Intn(9)-4))
				}
			}
			if len(idx) == 0 {
				continue
			}
			sense := []Sense{LE, GE, EQ}[rnd.Intn(3)]
			m.Cons = append(m.Cons, Constraint{idx, coef, sense, float64(rnd.Intn(7) - 3)})
		}
		want, feasible := bruteBinary(m)
		r, err := SolveMILP(m, MILPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !feasible {
			if r.Status != Infeasible {
				t.Fatalf("trial %d: want infeasible, got %+v", trial, r)
			}
			continue
		}
		if r.Status != Optimal || !r.HasX {
			t.Fatalf("trial %d: status %v HasX %v, want optimal", trial, r.Status, r.HasX)
		}
		if math.Abs(r.Obj-want) > 1e-6 {
			t.Fatalf("trial %d: obj %v, brute force %v", trial, r.Obj, want)
		}
	}
}
