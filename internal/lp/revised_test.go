package lp

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestBealeCycling is the canonical cycling example (Beale 1955) in the
// form that loops forever under naive Dantzig pricing without an
// anti-cycling rule; the solver must terminate at the optimum.
func TestBealeCycling(t *testing.T) {
	p := &Problem{
		NumVars:   4,
		Objective: []float64{-0.75, 150, -0.02, 6},
		Cons: []Constraint{
			{Idx: []int{0, 1, 2, 3}, Coef: []float64{0.25, -60, -0.04, 9}, Sense: LE, RHS: 0},
			{Idx: []int{0, 1, 2, 3}, Coef: []float64{0.5, -90, -0.02, 3}, Sense: LE, RHS: 0},
			{Idx: []int{2}, Coef: []float64{1}, Sense: LE, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Obj, -0.05) {
		t.Fatalf("%+v", s)
	}
}

// TestDegenerateTies exercises heavy primal degeneracy: many rows
// binding at the origin.
func TestDegenerateTies(t *testing.T) {
	p := &Problem{
		NumVars:   3,
		Objective: []float64{-1, -1, -1},
		Cons: []Constraint{
			{Idx: []int{0, 1}, Coef: []float64{1, 1}, Sense: LE, RHS: 0},
			{Idx: []int{1, 2}, Coef: []float64{1, 1}, Sense: LE, RHS: 0},
			{Idx: []int{0, 2}, Coef: []float64{1, 1}, Sense: LE, RHS: 0},
			{Idx: []int{0, 1, 2}, Coef: []float64{1, 1, 1}, Sense: LE, RHS: 0},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Obj, 0) {
		t.Fatalf("%+v", s)
	}
}

// TestInfeasibleEqualitySystem: inconsistent equality rows must be
// detected by phase 1, not mis-reported as optimal or unbounded.
func TestInfeasibleEqualitySystem(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Cons: []Constraint{
			{Idx: []int{0, 1}, Coef: []float64{1, 1}, Sense: EQ, RHS: 1},
			{Idx: []int{0, 1}, Coef: []float64{2, 2}, Sense: EQ, RHS: 3},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

// TestRedundantEquality: consistent but redundant EQ rows leave a
// singular-looking phase-1 state that must still solve.
func TestRedundantEquality(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Cons: []Constraint{
			{Idx: []int{0, 1}, Coef: []float64{1, 1}, Sense: EQ, RHS: 4},
			{Idx: []int{0, 1}, Coef: []float64{2, 2}, Sense: EQ, RHS: 8},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Obj, 4) || !almost(s.X[0], 4) {
		t.Fatalf("%+v", s)
	}
}

// TestUnboundedMixed: bounded variables must not mask the unbounded
// direction of an unbounded one.
func TestUnboundedMixed(t *testing.T) {
	p := &Problem{
		NumVars:   3,
		Objective: []float64{1, -1, 2}, // x1 maximised, no upper bound
		Upper:     []float64{5, math.Inf(1), 5},
		Cons: []Constraint{
			{Idx: []int{0, 2}, Coef: []float64{1, 1}, Sense: LE, RHS: 6},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", s.Status)
	}
}

// TestBoundFlips: a pure bound-structured LP solved entirely by bound
// flips, no constraint rows at all.
func TestBoundFlips(t *testing.T) {
	p := &Problem{
		NumVars:   4,
		Objective: []float64{-1, 2, -3, 0},
		Lower:     []float64{1, 1, 0, 2},
		Upper:     []float64{4, 7, 2, 2},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// x0→4, x1→1, x2→2, x3 fixed at 2.
	if s.Status != Optimal || !almost(s.Obj, -4+2-6) {
		t.Fatalf("%+v", s)
	}
	if !almost(s.X[0], 4) || !almost(s.X[1], 1) || !almost(s.X[2], 2) || !almost(s.X[3], 2) {
		t.Fatalf("x = %v", s.X)
	}
}

// TestCanceledStatus: a pre-canceled context must surface the distinct
// Canceled status, with the error wrapping both ErrCanceled and the
// context's error.
func TestCanceledStatus(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Cons: []Constraint{
			{Idx: []int{0, 1}, Coef: []float64{1, 1}, Sense: GE, RHS: 2},
		},
	}
	s, err := SolveCtx(ctx, p)
	if err == nil {
		t.Fatal("want error from canceled context")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want wrapping ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapping context.Canceled", err)
	}
	if s == nil || s.Status != Canceled {
		t.Errorf("solution = %+v, want Status Canceled", s)
	}
	if Canceled.String() != "canceled" || StatusCanceled != Canceled {
		t.Error("Canceled status identity broken")
	}
}

// TestWarmStartAfterBoundChange mimics one branch-and-bound edge: solve,
// tighten one variable's bounds, re-solve from the parent basis, and
// check against a cold solve of the same child.
func TestWarmStartAfterBoundChange(t *testing.T) {
	p := &Problem{
		NumVars:   3,
		Objective: []float64{-10, -13, -7},
		Cons: []Constraint{
			{Idx: []int{0, 1, 2}, Coef: []float64{3, 4, 2}, Sense: LE, RHS: 6},
		},
		Upper: []float64{1, 1, 1},
	}
	rs := newRevisedSolver(p)
	lo, hi := structBounds(p)
	parent, basis, err := rs.solve(context.Background(), lo, hi, nil)
	if err != nil {
		t.Fatal(err)
	}
	if parent.Status != Optimal {
		t.Fatalf("parent %+v", parent)
	}
	// Child: fix x1 = 0.
	chi := append([]float64(nil), hi...)
	chi[1] = 0
	warmSol, _, err := rs.solve(context.Background(), lo, chi, basis)
	if err != nil {
		t.Fatal(err)
	}
	coldSol, _, err := rs.solve(context.Background(), lo, chi, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warmSol.Status != Optimal || coldSol.Status != Optimal {
		t.Fatalf("warm %v cold %v", warmSol.Status, coldSol.Status)
	}
	if !almost(warmSol.Obj, coldSol.Obj) {
		t.Fatalf("warm obj %v != cold obj %v", warmSol.Obj, coldSol.Obj)
	}
	if warmSol.Iters > coldSol.Iters {
		t.Errorf("warm start took %d iters, cold %d", warmSol.Iters, coldSol.Iters)
	}
}

// TestRefactorisationPath forces the eta file past refactorEvery to
// cover the periodic refactorisation, on a transportation-like chain
// whose optimum is known by construction.
func TestRefactorisationPath(t *testing.T) {
	// A 119-row chain of x_i + x_{i+1} ≥ 2 rows with varying costs needs
	// well over refactorEvery pivots, so the eta file is rebuilt several
	// times mid-solve; the optimum is pinned against the dense oracle.
	n := 120
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Objective[j] = 1 + float64(j%3)
	}
	for i := 0; i+1 < n; i++ {
		p.Cons = append(p.Cons, Constraint{
			Idx: []int{i, i + 1}, Coef: []float64{1, 1}, Sense: GE, RHS: 2,
		})
	}
	got, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := solveDense(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != Optimal || want.Status != Optimal {
		t.Fatalf("status got %v want %v", got.Status, want.Status)
	}
	if math.Abs(got.Obj-want.Obj) > 1e-6 {
		t.Fatalf("obj %v, dense oracle %v", got.Obj, want.Obj)
	}
	checkFeasible(t, p, got.X)
}
