package lp

import (
	"context"
	"errors"
	"math"
	"time"
)

// MILP is a mixed-integer program: the base LP plus integrality
// requirements on a subset of variables.
type MILP struct {
	Problem
	Integer []int // variable indices required to take integral values
}

// MILPOptions controls the branch-and-bound search.
type MILPOptions struct {
	// Ctx, when non-nil, is polled between branch-and-bound nodes and
	// inside every simplex pivot loop: once it is done (deadline or
	// cancellation) the search stops and the best incumbent (if any) is
	// returned with TimedOut set. Callers that must distinguish a caller
	// cancellation from a deadline should inspect their context after
	// SolveMILP returns.
	Ctx context.Context
	// TimeLimit stops the search when exceeded; the best incumbent (if
	// any) is returned with TimedOut set. Zero means no limit.
	TimeLimit time.Duration
	// NodeLimit bounds the number of LP relaxations solved. Zero means
	// no limit.
	NodeLimit int
	// Incumbent optionally warm-starts the upper bound with a known
	// feasible objective value (e.g. from a heuristic). Use math.Inf(1)
	// or leave zero-valued IncumbentSet to disable.
	Incumbent    float64
	IncumbentSet bool
	// DisableWarmStart makes every node's LP relaxation solve from the
	// all-slack basis instead of the parent node's optimal basis. Only
	// useful for benchmarking and testing the warm-start machinery;
	// results are identical either way up to degenerate alternate
	// optima.
	DisableWarmStart bool
}

// MILPResult reports the outcome of SolveMILP.
type MILPResult struct {
	Status   Status // Optimal means proven; see TimedOut for caps
	X        []float64
	Obj      float64
	Nodes    int
	Iters    int  // total simplex iterations over all nodes
	TimedOut bool // the limit was hit; Obj/X hold the best incumbent
	HasX     bool // an integral solution was found
}

const intEps = 1e-6

// SolveMILP minimises the MILP by LP-based depth-first branch and bound,
// branching on the most fractional integer variable. The sparse
// constraint matrix is built once and shared by every node — nodes
// differ only in variable bounds — and each child node's relaxation is
// warm-started from its parent's optimal basis, so most nodes cost a
// handful of simplex iterations rather than a full re-solve.
func SolveMILP(m *MILP, opt MILPOptions) (*MILPResult, error) {
	if err := validate(&m.Problem); err != nil {
		return nil, err
	}
	res := &MILPResult{Status: Infeasible, Obj: math.Inf(1)}
	if opt.IncumbentSet {
		res.Obj = opt.Incumbent
	}
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = time.Now().Add(opt.TimeLimit)
	}

	// Node-local bounds start from the problem bounds.
	lower, upper := structBounds(&m.Problem)

	rs := newRevisedSolver(&m.Problem)

	type node struct {
		fixLo, fixHi []float64
		warm         *basisState // parent's optimal basis, nil for the root
	}
	stack := []node{{fixLo: lower, fixHi: upper}}

	nodeCtx := context.Background()
	if opt.Ctx != nil {
		nodeCtx = opt.Ctx
	}

	for len(stack) > 0 {
		if opt.NodeLimit > 0 && res.Nodes >= opt.NodeLimit {
			res.TimedOut = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.TimedOut = true
			break
		}
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			res.TimedOut = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Nodes++

		warm := nd.warm
		if opt.DisableWarmStart {
			warm = nil
		}
		sol, basis, err := rs.solve(nodeCtx, nd.fixLo, nd.fixHi, warm)
		if err != nil && errors.Is(err, ErrNumeric) {
			// Pathological pivoting: retry the node on the dense oracle.
			sub := m.Problem
			sub.Lower = nd.fixLo
			sub.Upper = nd.fixHi
			sol, err = solveDense(nodeCtx, &sub)
			basis = nil
		}
		if err != nil {
			if errors.Is(err, ErrCanceled) || (opt.Ctx != nil && opt.Ctx.Err() != nil) {
				// Cancelled mid-relaxation: stop with the best incumbent,
				// exactly like the deadline path.
				res.TimedOut = true
				break
			}
			return nil, err
		}
		res.Iters += sol.Iters
		if sol.Status == Infeasible {
			continue
		}
		if sol.Status == Unbounded {
			// With all-nonnegative bounded binaries this cannot happen
			// for our models; report as unbounded overall.
			res.Status = Unbounded
			return res, nil
		}
		if sol.Obj >= res.Obj-1e-7 {
			continue // bound: cannot beat the incumbent
		}
		// Find the most fractional integer variable.
		branch, frac := -1, 0.0
		for _, j := range m.Integer {
			f := sol.X[j] - math.Floor(sol.X[j])
			d := math.Min(f, 1-f)
			if d > intEps && d > frac {
				branch, frac = j, d
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			res.Obj = sol.Obj
			res.X = append(res.X[:0], sol.X...)
			res.HasX = true
			res.Status = Optimal
			continue
		}
		lo := math.Floor(sol.X[branch])
		// Down branch: x ≤ lo; up branch: x ≥ lo+1. Push the up branch
		// first so the down branch (usually binding in 0/1 problems) is
		// explored first. Both children reuse the parent's optimal basis:
		// only one bound differs, so phase 1 restores feasibility in a
		// few pivots instead of re-solving from the slack basis.
		up := node{
			fixLo: append([]float64(nil), nd.fixLo...),
			fixHi: append([]float64(nil), nd.fixHi...),
			warm:  basis,
		}
		up.fixLo[branch] = lo + 1
		if up.fixLo[branch] <= up.fixHi[branch]+eps {
			stack = append(stack, up)
		}
		down := node{
			fixLo: append([]float64(nil), nd.fixLo...),
			fixHi: append([]float64(nil), nd.fixHi...),
			warm:  basis,
		}
		down.fixHi[branch] = lo
		if down.fixLo[branch] <= down.fixHi[branch]+eps {
			stack = append(stack, down)
		}
	}

	if !res.HasX && opt.IncumbentSet && !math.IsInf(res.Obj, 1) {
		// The warm-start incumbent remains the best known objective but
		// we never found (nor needed) its solution vector here.
		res.Status = Optimal
	}
	if res.TimedOut && !res.HasX && !opt.IncumbentSet {
		res.Status = Infeasible
	}
	return res, nil
}
