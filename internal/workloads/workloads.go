// Package workloads builds the sequencing graphs used by the examples
// and integration tests: a reconstruction of the paper's Fig. 1
// motivational graph and the DSP kernels that motivate multiple-
// wordlength synthesis (FIR filters with per-coefficient wordlengths,
// IIR biquad cascades, polynomial evaluation) — the application domain of
// the Synoptix flow the paper's wordlengths come from.
package workloads

import (
	"fmt"

	"repro/internal/dfg"
	"repro/internal/model"
)

// Fig1 reconstructs the shape of the paper's Fig. 1 motivational
// sequencing graph: a small mix of multiplications and additions with
// heterogeneous wordlengths in which, given latency slack, small
// multiplies profitably share a larger, slower multiplier. The paper's
// scan is not fully legible, so the exact widths are representative
// rather than verbatim; the example's point — the interplay the paper
// illustrates — is preserved.
func Fig1() *dfg.Graph {
	g := dfg.New()
	m1 := g.AddOp("m1", model.Mul, model.Sig(12, 8))
	m2 := g.AddOp("m2", model.Mul, model.Sig(8, 8))
	a1 := g.AddOp("a1", model.Add, model.AddSig(16))
	m3 := g.AddOp("m3", model.Mul, model.Sig(16, 8))
	a2 := g.AddOp("a2", model.Add, model.AddSig(12))
	a3 := g.AddOp("a3", model.Add, model.AddSig(16))
	mustDep(g, m1, a1)
	mustDep(g, m2, a1)
	mustDep(g, a1, m3)
	mustDep(g, m2, a2)
	mustDep(g, a2, a3)
	mustDep(g, m3, a3)
	return g
}

// FIR builds a direct-form FIR filter iteration
//
//	y = Σ_i c_i · x[t−i]
//
// with dataWidth-bit samples and one multiplier per coefficient whose
// second operand width is the coefficient's wordlength — the classic
// multiple-wordlength workload, where aggressive coefficient
// quantisation gives every tap its own precision. The products are
// accumulated along an adder chain sized to the growing partial sums
// (capped at accumulator width accWidth).
func FIR(dataWidth int, coeffWidths []int, accWidth int) (*dfg.Graph, error) {
	if dataWidth < 1 || accWidth < dataWidth {
		return nil, fmt.Errorf("workloads: bad FIR widths data=%d acc=%d", dataWidth, accWidth)
	}
	if len(coeffWidths) == 0 {
		return nil, fmt.Errorf("workloads: FIR needs at least one tap")
	}
	g := dfg.New()
	var acc dfg.OpID = -1
	accW := 0
	for i, cw := range coeffWidths {
		if cw < 1 {
			return nil, fmt.Errorf("workloads: tap %d has width %d", i, cw)
		}
		m := g.AddOp(fmt.Sprintf("mul%d", i), model.Mul, model.Sig(dataWidth, cw))
		prodW := min(dataWidth+cw, accWidth)
		if acc < 0 {
			acc = m
			accW = prodW
			continue
		}
		accW = min(max(accW, prodW)+1, accWidth)
		a := g.AddOp(fmt.Sprintf("acc%d", i), model.Add, model.AddSig(accW))
		mustDep(g, acc, a)
		mustDep(g, m, a)
		acc = a
	}
	return g, nil
}

// Biquad builds one direct-form-I IIR biquad iteration:
//
//	y = b0·x + b1·x1 + b2·x2 − a1·y1 − a2·y2
//
// State inputs (x1, x2, y1, y2) come from the previous iteration and are
// primary inputs of the sequencing graph. Coefficient wordlengths are
// per-coefficient, feedback coefficients typically needing more bits.
func Biquad(dataWidth int, b [3]int, a [2]int, accWidth int) (*dfg.Graph, error) {
	g := dfg.New()
	if err := appendBiquad(g, dataWidth, b, a, accWidth, 0, -1); err != nil {
		return nil, err
	}
	return g, nil
}

// BiquadCascade chains sections biquads (the standard high-order IIR
// realisation); section k's output is section k+1's input.
func BiquadCascade(sections int, dataWidth int, b [3]int, a [2]int, accWidth int) (*dfg.Graph, error) {
	if sections < 1 {
		return nil, fmt.Errorf("workloads: need at least one section")
	}
	g := dfg.New()
	prevOut := dfg.OpID(-1)
	for s := 0; s < sections; s++ {
		if err := appendBiquad(g, dataWidth, b, a, accWidth, s, prevOut); err != nil {
			return nil, err
		}
		prevOut = dfg.OpID(g.N() - 1)
	}
	return g, nil
}

func appendBiquad(g *dfg.Graph, dataWidth int, b [3]int, a [2]int, accWidth, sec int, input dfg.OpID) error {
	if dataWidth < 1 || accWidth < dataWidth {
		return fmt.Errorf("workloads: bad biquad widths data=%d acc=%d", dataWidth, accWidth)
	}
	for _, w := range append(b[:], a[:]...) {
		if w < 1 {
			return fmt.Errorf("workloads: non-positive coefficient width")
		}
	}
	name := func(s string) string { return fmt.Sprintf("s%d.%s", sec, s) }
	mb0 := g.AddOp(name("b0x"), model.Mul, model.Sig(dataWidth, b[0]))
	mb1 := g.AddOp(name("b1x1"), model.Mul, model.Sig(dataWidth, b[1]))
	mb2 := g.AddOp(name("b2x2"), model.Mul, model.Sig(dataWidth, b[2]))
	ma1 := g.AddOp(name("a1y1"), model.Mul, model.Sig(dataWidth, a[0]))
	ma2 := g.AddOp(name("a2y2"), model.Mul, model.Sig(dataWidth, a[1]))
	if input >= 0 {
		// Cascade: the section input x is the previous section's output.
		mustDep(g, input, mb0)
	}
	w1 := min(dataWidth+max(b[0], b[1])+1, accWidth)
	s1 := g.AddOp(name("sumb01"), model.Add, model.AddSig(w1))
	mustDep(g, mb0, s1)
	mustDep(g, mb1, s1)
	w2 := min(max(w1, dataWidth+b[2])+1, accWidth)
	s2 := g.AddOp(name("sumb"), model.Add, model.AddSig(w2))
	mustDep(g, s1, s2)
	mustDep(g, mb2, s2)
	w3 := min(dataWidth+max(a[0], a[1])+1, accWidth)
	s3 := g.AddOp(name("suma"), model.Add, model.AddSig(w3))
	mustDep(g, ma1, s3)
	mustDep(g, ma2, s3)
	w4 := min(max(w2, w3)+1, accWidth)
	out := g.AddOp(name("y"), model.Sub, model.AddSig(w4))
	mustDep(g, s2, out)
	mustDep(g, s3, out)
	return nil
}

// Horner builds Horner evaluation of a degree-n polynomial
//
//	p(x) = c0 + x·(c1 + x·(c2 + ...))
//
// with per-coefficient wordlengths: alternating multiply/add chain.
func Horner(dataWidth int, coeffWidths []int, accWidth int) (*dfg.Graph, error) {
	if len(coeffWidths) < 2 {
		return nil, fmt.Errorf("workloads: Horner needs degree ≥ 1 (2+ coefficients)")
	}
	if dataWidth < 1 || accWidth < dataWidth {
		return nil, fmt.Errorf("workloads: bad Horner widths data=%d acc=%d", dataWidth, accWidth)
	}
	for i, cw := range coeffWidths {
		if cw < 1 {
			return nil, fmt.Errorf("workloads: coefficient %d has width %d", i, cw)
		}
	}
	g := dfg.New()
	var acc dfg.OpID = -1
	accW := coeffWidths[len(coeffWidths)-1]
	for i := len(coeffWidths) - 2; i >= 0; i-- {
		cw := coeffWidths[i]
		mulW := accW
		m := g.AddOp(fmt.Sprintf("mul%d", i), model.Mul, model.Sig(dataWidth, mulW))
		if acc >= 0 {
			mustDep(g, acc, m)
		}
		accW = min(max(dataWidth+mulW, cw)+1, accWidth)
		a := g.AddOp(fmt.Sprintf("add%d", i), model.Add, model.AddSig(accW))
		mustDep(g, m, a)
		acc = a
	}
	return g, nil
}

func mustDep(g *dfg.Graph, from, to dfg.OpID) {
	if err := g.AddDep(from, to); err != nil {
		panic(err) // construction bug, not user input
	}
}
