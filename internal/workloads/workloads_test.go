package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

func TestFig1Structure(t *testing.T) {
	g := Fig1()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 {
		t.Fatalf("N = %d, want 6", g.N())
	}
	muls, adds := 0, 0
	for _, o := range g.Ops() {
		if o.Spec.Type == model.Mul {
			muls++
		} else {
			adds++
		}
	}
	if muls != 3 || adds != 3 {
		t.Fatalf("muls %d adds %d", muls, adds)
	}
}

func TestFig1SlackSharing(t *testing.T) {
	// The motivational property: relaxing λ reduces area.
	g := Fig1()
	lib := model.Default()
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	tight, _, err := core.Allocate(g, lib, lmin, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	relaxed, _, err := core.Allocate(g, lib, lmin+lmin/2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Area(lib) >= tight.Area(lib) {
		t.Fatalf("no area saving from slack: tight %d relaxed %d", tight.Area(lib), relaxed.Area(lib))
	}
}

func TestFIR(t *testing.T) {
	g, err := FIR(12, []int{10, 6, 4, 6, 10}, 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 5 muls + 4 adds.
	if g.N() != 9 {
		t.Fatalf("N = %d, want 9", g.N())
	}
	// Allocation works end to end.
	lib := model.Default()
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	dp, _, err := core.Allocate(g, lib, lmin+lmin/4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.Verify(g, lib, lmin+lmin/4); err != nil {
		t.Fatal(err)
	}
}

func TestFIRErrors(t *testing.T) {
	if _, err := FIR(0, []int{4}, 8); err == nil {
		t.Error("zero data width accepted")
	}
	if _, err := FIR(8, nil, 16); err == nil {
		t.Error("no taps accepted")
	}
	if _, err := FIR(8, []int{4, 0}, 16); err == nil {
		t.Error("zero tap width accepted")
	}
	if _, err := FIR(8, []int{4}, 4); err == nil {
		t.Error("acc below data accepted")
	}
}

func TestBiquadAndCascade(t *testing.T) {
	g, err := Biquad(12, [3]int{8, 6, 8}, [2]int{10, 10}, 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 9 { // 5 muls + 4 adds/subs
		t.Fatalf("N = %d, want 9", g.N())
	}
	c, err := BiquadCascade(3, 12, [3]int{8, 6, 8}, [2]int{10, 10}, 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.N() != 27 {
		t.Fatalf("cascade N = %d, want 27", c.N())
	}
	// Sections are chained: section 1's b0 multiply depends on section
	// 0's output.
	found := false
	for _, o := range c.Ops() {
		if o.Name == "s1.b0x" && len(c.Pred(o.ID)) == 1 {
			found = true
		}
	}
	if !found {
		t.Error("cascade sections not chained")
	}
}

func TestBiquadErrors(t *testing.T) {
	if _, err := Biquad(0, [3]int{8, 6, 8}, [2]int{10, 10}, 24); err == nil {
		t.Error("zero data width accepted")
	}
	if _, err := Biquad(8, [3]int{8, 0, 8}, [2]int{10, 10}, 24); err == nil {
		t.Error("zero coeff width accepted")
	}
	if _, err := BiquadCascade(0, 8, [3]int{8, 6, 8}, [2]int{10, 10}, 24); err == nil {
		t.Error("zero sections accepted")
	}
}

func TestHorner(t *testing.T) {
	g, err := Horner(10, []int{8, 6, 4, 12}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Degree 3: 3 muls + 3 adds.
	if g.N() != 6 {
		t.Fatalf("N = %d, want 6", g.N())
	}
	if _, err := Horner(10, []int{8}, 20); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := Horner(10, []int{8, 0}, 20); err == nil {
		t.Error("zero coeff accepted")
	}
	if _, err := Horner(0, []int{8, 8}, 20); err == nil {
		t.Error("zero data width accepted")
	}
}
