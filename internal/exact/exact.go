// Package exact computes the true optimum of the combined scheduling,
// resource binding and wordlength selection problem by exhaustive
// branch-and-bound over (start step, resource kind) assignments. It is
// independent of the LP-based ILP solver in internal/ilp and exists to
// cross-check it, and to provide the paper's "optimum [5]" reference for
// small problem sizes (Fig. 4) where full enumeration is tractable.
//
// The cost of an assignment counts, for every kind, the maximum number of
// simultaneously executing operations bound to that kind — interval
// graphs are perfect, so that many instances are also sufficient, and the
// datapath is materialised by greedy interval colouring.
package exact

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
)

// ErrInfeasible is returned when λ is below λ_min.
var ErrInfeasible = errors.New("exact: latency constraint infeasible")

// ErrTooLarge guards against accidentally running the exponential search
// on big inputs.
var ErrTooLarge = errors.New("exact: problem too large for exhaustive search")

// MaxOps bounds the accepted problem size.
const MaxOps = 12

// Options configures the search.
type Options struct {
	// UpperBound primes the incumbent with a known feasible area
	// (e.g. the heuristic's); 0 means none.
	UpperBound int64
	// NodeLimit caps search nodes; 0 means unlimited.
	NodeLimit int64
}

// Stats reports the search effort.
type Stats struct {
	Nodes  int64
	Capped bool
}

// Allocate returns an area-optimal datapath meeting λ.
func Allocate(d *dfg.Graph, lib *model.Library, lambda int, opt Options) (*datapath.Datapath, Stats, error) {
	return AllocateCtx(context.Background(), d, lib, lambda, opt)
}

// AllocateCtx is Allocate with cancellation: the branch-and-bound search
// polls ctx periodically and returns ctx.Err() promptly once it is done.
func AllocateCtx(ctx context.Context, d *dfg.Graph, lib *model.Library, lambda int, opt Options) (*datapath.Datapath, Stats, error) {
	var stats Stats
	if err := d.Validate(); err != nil {
		return nil, stats, err
	}
	n := d.N()
	if n == 0 {
		return &datapath.Datapath{}, stats, nil
	}
	if n > MaxOps {
		return nil, stats, fmt.Errorf("%w: %d operations (max %d)", ErrTooLarge, n, MaxOps)
	}
	lmin, err := d.MinMakespan(lib)
	if err != nil {
		return nil, stats, err
	}
	if lambda < lmin {
		return nil, stats, fmt.Errorf("%w: λ=%d < λ_min=%d", ErrInfeasible, lambda, lmin)
	}

	kinds := model.ExtractKinds(d.Specs(), lib)
	s := &search{
		d: d, lib: lib, lambda: lambda, kinds: kinds,
		ctx:   ctx,
		best:  math.MaxInt64,
		limit: opt.NodeLimit,
		stats: &stats,
	}
	if opt.UpperBound > 0 {
		s.best = opt.UpperBound + 1 // strict improvement required; +1 keeps equal-cost solutions reachable
	}
	s.prepare()
	s.dfs(0)
	if s.canceled {
		return nil, stats, ctx.Err()
	}
	if s.bestStart == nil {
		return nil, stats, fmt.Errorf("exact: no solution found (λ=%d, bound %d)", lambda, opt.UpperBound)
	}
	dp := s.materialize()
	if err := dp.Verify(d, lib, lambda); err != nil {
		return nil, stats, fmt.Errorf("exact: internal error, illegal datapath: %w", err)
	}
	return dp, stats, nil
}

type search struct {
	d        *dfg.Graph
	lib      *model.Library
	lambda   int
	kinds    []model.Kind
	ctx      context.Context
	canceled bool
	limit    int64
	stats    *Stats

	order  []dfg.OpID // topological assignment order
	compat [][]int    // compatible kind indices per op, area ascending
	klat   []int
	karea  []int64
	tail   []int // longest min-latency path to sink, excluding own latency
	minLat []int

	// search state
	start []int
	kind  []int
	ivs   [][]ivl // per kind: intervals of assigned ops
	conc  []int   // per kind: current max concurrency
	cost  int64

	best      int64
	bestStart []int
	bestKind  []int
}

type ivl struct{ s, e int }

func (s *search) prepare() {
	d := s.d
	n := d.N()
	s.order, _ = d.TopoOrder()
	s.klat = make([]int, len(s.kinds))
	s.karea = make([]int64, len(s.kinds))
	for ki, k := range s.kinds {
		s.klat[ki] = s.lib.Latency(k)
		s.karea[ki] = s.lib.Area(k)
	}
	s.compat = make([][]int, n)
	for i := 0; i < n; i++ {
		spec := d.Op(dfg.OpID(i)).Spec
		for ki, k := range s.kinds {
			if k.Covers(spec.Type, spec.Sig) {
				s.compat[i] = append(s.compat[i], ki)
			}
		}
		// Kinds are already sorted by (class, area) at extraction; the
		// filtered list inherits area order within the class.
		sort.Slice(s.compat[i], func(a, b int) bool {
			return s.karea[s.compat[i][a]] < s.karea[s.compat[i][b]]
		})
	}
	s.minLat = make([]int, n)
	for i := 0; i < n; i++ {
		s.minLat[i] = model.MinLatency(d.Op(dfg.OpID(i)).Spec, s.lib)
	}
	s.tail = make([]int, n)
	for i := len(s.order) - 1; i >= 0; i-- {
		id := s.order[i]
		for _, succ := range d.Succ(id) {
			if v := s.minLat[succ] + s.tail[succ]; v > s.tail[id] {
				s.tail[id] = v
			}
		}
	}
	s.start = make([]int, n)
	s.kind = make([]int, n)
	s.ivs = make([][]ivl, len(s.kinds))
	s.conc = make([]int, len(s.kinds))
}

func (s *search) dfs(idx int) {
	if s.cost >= s.best {
		return
	}
	s.stats.Nodes++
	if s.limit > 0 && s.stats.Nodes > s.limit {
		s.stats.Capped = true
		return
	}
	if s.stats.Nodes&1023 == 0 && s.ctx.Err() != nil {
		s.canceled = true
		return
	}
	if idx == len(s.order) {
		s.best = s.cost
		s.bestStart = append(s.bestStart[:0], s.start...)
		s.bestKind = append(s.bestKind[:0], s.kind...)
		return
	}
	o := s.order[idx]
	est := 0
	for _, p := range s.d.Pred(o) {
		if f := s.start[p] + s.klat[s.kind[p]]; f > est {
			est = f
		}
	}
	for _, ki := range s.compat[o] {
		l := s.klat[ki]
		lst := s.lambda - l - s.tail[o]
		if lst < est {
			continue
		}
		for t := est; t <= lst; t++ {
			s.place(o, ki, t)
			s.dfs(idx + 1)
			s.unplace(o, ki)
			if s.stats.Capped || s.canceled {
				return
			}
		}
	}
}

func (s *search) place(o dfg.OpID, ki, t int) {
	s.start[o] = t
	s.kind[o] = ki
	s.ivs[ki] = append(s.ivs[ki], ivl{t, t + s.klat[ki]})
	old := s.conc[ki]
	nc := maxConcurrency(s.ivs[ki])
	if nc > old {
		s.conc[ki] = nc
		s.cost += s.karea[ki] * int64(nc-old)
	}
	// Remember the previous concurrency in the interval entry? Cheaper:
	// recompute on unplace.
}

func (s *search) unplace(o dfg.OpID, ki int) {
	ivs := s.ivs[ki]
	s.ivs[ki] = ivs[:len(ivs)-1]
	nc := maxConcurrency(s.ivs[ki])
	if nc < s.conc[ki] {
		s.cost -= s.karea[ki] * int64(s.conc[ki]-nc)
		s.conc[ki] = nc
	}
}

// maxConcurrency sweeps the (short) interval list.
func maxConcurrency(ivs []ivl) int {
	best := 0
	for _, a := range ivs {
		c := 0
		for _, b := range ivs {
			if a.s >= b.s && a.s < b.e {
				c++
			}
		}
		if c > best {
			best = c
		}
	}
	return best
}

// materialize colours each kind's intervals greedily into instances.
func (s *search) materialize() *datapath.Datapath {
	n := s.d.N()
	dp := &datapath.Datapath{
		Start:  append([]int(nil), s.bestStart...),
		InstOf: make([]int, n),
	}
	type slot struct {
		kind int
		free int // next free step
		ops  []dfg.OpID
	}
	var slots []*slot
	byStart := make([]dfg.OpID, n)
	for i := range byStart {
		byStart[i] = dfg.OpID(i)
	}
	sort.Slice(byStart, func(a, b int) bool {
		if s.bestStart[byStart[a]] != s.bestStart[byStart[b]] {
			return s.bestStart[byStart[a]] < s.bestStart[byStart[b]]
		}
		return byStart[a] < byStart[b]
	})
	slotIdx := make(map[*slot]int)
	for _, o := range byStart {
		ki := s.bestKind[o]
		t := s.bestStart[o]
		var chosen *slot
		for _, sl := range slots {
			if sl.kind == ki && sl.free <= t {
				chosen = sl
				break
			}
		}
		if chosen == nil {
			chosen = &slot{kind: ki}
			slotIdx[chosen] = len(slots)
			slots = append(slots, chosen)
		}
		chosen.ops = append(chosen.ops, o)
		chosen.free = t + s.klat[ki]
		dp.InstOf[o] = slotIdx[chosen]
	}
	for _, sl := range slots {
		dp.Instances = append(dp.Instances, datapath.Instance{Kind: s.kinds[sl.kind], Ops: sl.ops})
	}
	return dp
}
