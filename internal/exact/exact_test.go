package exact

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/tgff"
)

func TestAllocateEmptyAndGuards(t *testing.T) {
	lib := model.Default()
	dp, _, err := Allocate(dfg.New(), lib, 0, Options{})
	if err != nil || len(dp.Instances) != 0 {
		t.Fatalf("%v %v", dp, err)
	}
	big, err := tgff.Generate(tgff.Config{N: MaxOps + 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Allocate(big, lib, 100, Options{}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized accepted: %v", err)
	}
	d := dfg.New()
	d.AddOp("", model.Mul, model.Sig(8, 8))
	if _, _, err := Allocate(d, lib, 1, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("infeasible λ accepted: %v", err)
	}
}

func TestOptimalSharing(t *testing.T) {
	// Two independent multiplies 20x18 and 8x8 with λ=10: optimal is one
	// shared 20x18 multiplier (area 360), found by serialising.
	d := dfg.New()
	d.AddOp("", model.Mul, model.Sig(20, 18))
	d.AddOp("", model.Mul, model.Sig(8, 8))
	lib := model.Default()
	dp, _, err := Allocate(d, lib, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dp.Area(lib) != 360 {
		t.Fatalf("area = %d, want 360", dp.Area(lib))
	}
	// λ=5: must parallelise, 424.
	dp, _, err = Allocate(d, lib, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dp.Area(lib) != 424 {
		t.Fatalf("area = %d, want 424", dp.Area(lib))
	}
}

func TestOptimumNeverWorseThanHeuristic(t *testing.T) {
	lib := model.Default()
	for seed := int64(0); seed < 60; seed++ {
		g, err := tgff.Generate(tgff.Config{N: 6, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lmin, err := g.MinMakespan(lib)
		if err != nil {
			t.Fatal(err)
		}
		for _, lambda := range []int{lmin, lmin + lmin/4} {
			h, _, err := core.Allocate(g, lib, lambda, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			opt, _, err := Allocate(g, lib, lambda, Options{UpperBound: h.Area(lib)})
			if err != nil {
				t.Fatalf("seed %d λ %d: %v", seed, lambda, err)
			}
			if err := opt.Verify(g, lib, lambda); err != nil {
				t.Fatal(err)
			}
			if opt.Area(lib) > h.Area(lib) {
				t.Fatalf("seed %d: optimum %d worse than heuristic %d", seed, opt.Area(lib), h.Area(lib))
			}
		}
	}
}

func TestUpperBoundPrimingKeepsEqualSolutions(t *testing.T) {
	// Priming with exactly the optimal area must still return a
	// solution of that area.
	d := dfg.New()
	d.AddOp("", model.Mul, model.Sig(8, 8))
	lib := model.Default()
	dp, _, err := Allocate(d, lib, 2, Options{UpperBound: 64})
	if err != nil {
		t.Fatal(err)
	}
	if dp.Area(lib) != 64 {
		t.Fatalf("area = %d", dp.Area(lib))
	}
}

func TestNodeLimitCaps(t *testing.T) {
	g, err := tgff.Generate(tgff.Config{N: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lib := model.Default()
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := Allocate(g, lib, lmin+5, Options{NodeLimit: 10})
	if err == nil && !stats.Capped {
		t.Fatalf("node limit not reported: %+v", stats)
	}
}

func TestMaxConcurrency(t *testing.T) {
	if maxConcurrency(nil) != 0 {
		t.Error("empty concurrency != 0")
	}
	ivs := []ivl{{0, 4}, {1, 3}, {2, 5}, {10, 12}}
	if got := maxConcurrency(ivs); got != 3 {
		t.Errorf("concurrency = %d, want 3", got)
	}
}
