package datapath

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dfg"
	"repro/internal/model"
)

func sampleDatapath() *Datapath {
	return &Datapath{
		Start:  []int{0, 0, 3},
		InstOf: []int{0, 1, 0},
		Instances: []Instance{
			{Kind: model.Kind{Class: model.Mul, Sig: model.Sig(12, 8)}, Ops: []dfg.OpID{0, 2}},
			{Kind: model.Kind{Class: model.Add, Sig: model.AddSig(16)}, Ops: []dfg.OpID{1}},
		},
	}
}

func TestDatapathJSONRoundTrip(t *testing.T) {
	dp := sampleDatapath()
	blob, err := json.Marshal(dp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"class":"mul"`) {
		t.Fatalf("wire form lacks readable class names: %s", blob)
	}
	var back Datapath
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, dp) {
		t.Fatalf("round trip differs:\n%+v\n%+v", back, dp)
	}
}

func TestDatapathJSONRejectsBadBindings(t *testing.T) {
	cases := map[string]string{
		"unbound op":      `{"start":[0,0],"instances":[{"class":"add","hi":8,"ops":[0]}]}`,
		"double bound":    `{"start":[0],"instances":[{"class":"add","hi":8,"ops":[0]},{"class":"add","hi":8,"ops":[0]}]}`,
		"op out of range": `{"start":[0],"instances":[{"class":"add","hi":8,"ops":[1]}]}`,
		"bad class":       `{"start":[0],"instances":[{"class":"sub","hi":8,"ops":[0]}]}`,
		"unknown class":   `{"start":[0],"instances":[{"class":"div","hi":8,"ops":[0]}]}`,
		"bad signature":   `{"start":[0],"instances":[{"class":"add","hi":-1,"ops":[0]}]}`,
	}
	for name, blob := range cases {
		var dp Datapath
		if err := json.Unmarshal([]byte(blob), &dp); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
