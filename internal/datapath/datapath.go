// Package datapath defines the common result representation shared by
// every allocation method in this repository (the DPAlloc heuristic, the
// two-stage and descending-wordlength baselines, and the exact/ILP
// optima): a scheduled, bound, wordlength-selected datapath. It also
// implements the full legality verifier run on every solution in the test
// suite and experiment harness.
package datapath

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dfg"
	"repro/internal/model"
)

// Instance is one allocated resource: a concrete kind and the operations
// bound to it.
type Instance struct {
	Kind model.Kind
	Ops  []dfg.OpID
}

// Datapath is a complete solution of the combined scheduling, resource
// binding and wordlength selection problem.
type Datapath struct {
	Start     []int      // scheduled start step per operation
	Instances []Instance // allocated resources with their bound operations
	InstOf    []int      // per operation: index into Instances
}

// Area returns the total implementation area.
func (dp *Datapath) Area(lib *model.Library) int64 {
	var a int64
	for _, in := range dp.Instances {
		a += lib.Area(in.Kind)
	}
	return a
}

// BoundLatency returns the execution latency of the operation on its
// bound resource.
func (dp *Datapath) BoundLatency(lib *model.Library, o dfg.OpID) int {
	return lib.Latency(dp.Instances[dp.InstOf[o]].Kind)
}

// Makespan returns the actual overall latency: the last completion step
// under bound resource latencies.
func (dp *Datapath) Makespan(lib *model.Library) int {
	ms := 0
	for o := range dp.Start {
		if f := dp.Start[o] + dp.BoundLatency(lib, dfg.OpID(o)); f > ms {
			ms = f
		}
	}
	return ms
}

// Verify checks complete legality of the datapath against its sequencing
// graph, library and latency constraint:
//
//  1. every operation is scheduled at a non-negative step and bound to
//     exactly one instance;
//  2. every instance's kind covers all its operations (type and
//     wordlength);
//  3. operations sharing an instance have disjoint execution intervals
//     under the instance's latency;
//  4. data dependencies are respected under bound latencies;
//  5. the last operation completes by lambda (skipped if lambda < 0).
//
// A nil error means the datapath is a legal implementation.
func (dp *Datapath) Verify(d *dfg.Graph, lib *model.Library, lambda int) error {
	n := d.N()
	if len(dp.Start) != n || len(dp.InstOf) != n {
		return fmt.Errorf("datapath: has %d starts, %d bindings for %d operations",
			len(dp.Start), len(dp.InstOf), n)
	}
	bound := make([]int, n)
	for i := range bound {
		bound[i] = -1
	}
	for ii, in := range dp.Instances {
		if len(in.Ops) == 0 {
			return fmt.Errorf("datapath: instance %d (%v) has no operations", ii, in.Kind)
		}
		for _, o := range in.Ops {
			if o < 0 || int(o) >= n {
				return fmt.Errorf("datapath: instance %d references unknown operation %d", ii, o)
			}
			if bound[o] >= 0 {
				return fmt.Errorf("datapath: operation %d bound twice (instances %d and %d)", o, bound[o], ii)
			}
			bound[o] = ii
			if dp.InstOf[o] != ii {
				return fmt.Errorf("datapath: InstOf[%d] = %d but operation listed on instance %d", o, dp.InstOf[o], ii)
			}
			spec := d.Op(o).Spec
			if !in.Kind.Covers(spec.Type, spec.Sig) {
				return fmt.Errorf("datapath: instance %d kind %v cannot execute operation %d (%s %v)",
					ii, in.Kind, o, spec.Type, spec.Sig)
			}
		}
		// Pairwise disjoint execution on the shared instance.
		l := lib.Latency(in.Kind)
		ops := append([]dfg.OpID(nil), in.Ops...)
		sort.Slice(ops, func(a, b int) bool { return dp.Start[ops[a]] < dp.Start[ops[b]] })
		for i := 1; i < len(ops); i++ {
			prev, cur := ops[i-1], ops[i]
			if dp.Start[prev]+l > dp.Start[cur] {
				return fmt.Errorf("datapath: operations %d and %d overlap on instance %d (%v, latency %d)",
					prev, cur, ii, in.Kind, l)
			}
		}
	}
	for o := 0; o < n; o++ {
		if bound[o] < 0 {
			return fmt.Errorf("datapath: operation %d not bound to any instance", o)
		}
		if dp.Start[o] < 0 {
			return fmt.Errorf("datapath: operation %d starts at negative step %d", o, dp.Start[o])
		}
		for _, p := range d.Pred(dfg.OpID(o)) {
			if dp.Start[p]+dp.BoundLatency(lib, p) > dp.Start[o] {
				return fmt.Errorf("datapath: dependency %d->%d violated (%d+%d > %d)",
					p, o, dp.Start[p], dp.BoundLatency(lib, p), dp.Start[o])
			}
		}
	}
	if lambda >= 0 {
		if ms := dp.Makespan(lib); ms > lambda {
			return fmt.Errorf("datapath: makespan %d exceeds latency constraint %d", ms, lambda)
		}
	}
	return nil
}

// Render returns a human-readable report of the datapath: one line per
// instance with its bound operations and schedule.
func (dp *Datapath) Render(d *dfg.Graph, lib *model.Library) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "area %d, latency %d, %d resources\n",
		dp.Area(lib), dp.Makespan(lib), len(dp.Instances))
	for ii, in := range dp.Instances {
		fmt.Fprintf(&sb, "  [%d] %-10s :", ii, in.Kind)
		ops := append([]dfg.OpID(nil), in.Ops...)
		sort.Slice(ops, func(a, b int) bool { return dp.Start[ops[a]] < dp.Start[ops[b]] })
		for _, o := range ops {
			name := d.Op(o).Name
			if name == "" {
				name = fmt.Sprintf("op%d", o)
			}
			fmt.Fprintf(&sb, " %s(%v)@%d", name, d.Op(o).Spec.Sig, dp.Start[o])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
