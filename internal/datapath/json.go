package datapath

import (
	"encoding/json"
	"fmt"

	"repro/internal/dfg"
	"repro/internal/model"
)

// jsonDatapath is the wire encoding of a solution: the schedule plus the
// allocated instances with their bound operations. InstOf is derived on
// decode, so the format carries no redundant fields.
type jsonDatapath struct {
	Start     []int          `json:"start"`
	Instances []jsonInstance `json:"instances"`
}

type jsonInstance struct {
	Class string `json:"class"`        // "add" or "mul" (the hardware class)
	Hi    int    `json:"hi"`           // larger port width
	Lo    int    `json:"lo,omitempty"` // smaller port width; defaults to hi
	Ops   []int  `json:"ops"`          // operation ids bound to the instance
}

// MarshalJSON encodes the datapath in the wire format.
func (dp *Datapath) MarshalJSON() ([]byte, error) {
	jd := jsonDatapath{Start: dp.Start, Instances: make([]jsonInstance, len(dp.Instances))}
	if jd.Start == nil {
		jd.Start = []int{}
	}
	for i, in := range dp.Instances {
		ops := make([]int, len(in.Ops))
		for j, o := range in.Ops {
			ops[j] = int(o)
		}
		jd.Instances[i] = jsonInstance{
			Class: in.Kind.Class.String(),
			Hi:    in.Kind.Sig.Hi,
			Lo:    in.Kind.Sig.Lo,
			Ops:   ops,
		}
	}
	return json.Marshal(jd)
}

// UnmarshalJSON decodes a datapath from the wire format, rebuilding the
// InstOf index. Structural legality against a particular graph and
// library is the caller's business (Verify).
func (dp *Datapath) UnmarshalJSON(data []byte) error {
	var jd jsonDatapath
	if err := json.Unmarshal(data, &jd); err != nil {
		return err
	}
	n := len(jd.Start)
	nd := Datapath{
		Start:  append([]int(nil), jd.Start...),
		InstOf: make([]int, n),
	}
	for i := range nd.InstOf {
		nd.InstOf[i] = -1
	}
	for ii, jin := range jd.Instances {
		class, err := model.ParseOpType(jin.Class)
		if err != nil {
			return fmt.Errorf("datapath: instance %d: %w", ii, err)
		}
		if class != class.HardwareClass() {
			return fmt.Errorf("datapath: instance %d class %q is not a hardware class", ii, jin.Class)
		}
		lo := jin.Lo
		if lo == 0 {
			lo = jin.Hi
		}
		sig := model.Signature{Hi: jin.Hi, Lo: lo}
		if !sig.Valid() {
			return fmt.Errorf("datapath: instance %d has invalid signature %dx%d", ii, jin.Hi, lo)
		}
		in := Instance{Kind: model.Kind{Class: class, Sig: sig}}
		for _, o := range jin.Ops {
			if o < 0 || o >= n {
				return fmt.Errorf("datapath: instance %d references operation %d outside [0,%d)", ii, o, n)
			}
			if nd.InstOf[o] >= 0 {
				return fmt.Errorf("datapath: operation %d bound to instances %d and %d", o, nd.InstOf[o], ii)
			}
			nd.InstOf[o] = ii
			in.Ops = append(in.Ops, dfg.OpID(o))
		}
		nd.Instances = append(nd.Instances, in)
	}
	for o, ii := range nd.InstOf {
		if ii < 0 {
			return fmt.Errorf("datapath: operation %d not bound to any instance", o)
		}
	}
	*dp = nd
	return nil
}
