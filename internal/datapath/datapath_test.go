package datapath

import (
	"strings"
	"testing"

	"repro/internal/dfg"
	"repro/internal/model"
)

// legalDP builds a two-op chain and a legal datapath for it.
func legalDP(t *testing.T) (*dfg.Graph, *model.Library, *Datapath) {
	t.Helper()
	d := dfg.New()
	a := d.AddOp("a", model.Mul, model.Sig(8, 8)) // 2 cycles
	b := d.AddOp("b", model.Mul, model.Sig(8, 8))
	if err := d.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	lib := model.Default()
	dp := &Datapath{
		Start: []int{0, 2},
		Instances: []Instance{
			{Kind: model.Kind{Class: model.Mul, Sig: model.Sig(8, 8)}, Ops: []dfg.OpID{a, b}},
		},
		InstOf: []int{0, 0},
	}
	return d, lib, dp
}

func TestVerifyLegal(t *testing.T) {
	d, lib, dp := legalDP(t)
	if err := dp.Verify(d, lib, 4); err != nil {
		t.Fatalf("legal datapath rejected: %v", err)
	}
	if dp.Area(lib) != 64 {
		t.Errorf("area = %d", dp.Area(lib))
	}
	if dp.Makespan(lib) != 4 {
		t.Errorf("makespan = %d", dp.Makespan(lib))
	}
	if dp.BoundLatency(lib, 0) != 2 {
		t.Errorf("bound latency = %d", dp.BoundLatency(lib, 0))
	}
}

func TestVerifyLambdaViolation(t *testing.T) {
	d, lib, dp := legalDP(t)
	if err := dp.Verify(d, lib, 3); err == nil {
		t.Fatal("λ violation accepted")
	}
	// lambda < 0 skips the deadline check.
	if err := dp.Verify(d, lib, -1); err != nil {
		t.Fatalf("deadline-free verify failed: %v", err)
	}
}

// Mutation tests: every corruption must be caught.

func TestVerifyCatchesOverlap(t *testing.T) {
	d, lib, dp := legalDP(t)
	dp.Start[1] = 1 // overlaps op 0 on the shared instance
	if err := dp.Verify(d, lib, 10); err == nil {
		t.Fatal("overlap on shared instance accepted")
	}
}

func TestVerifyCatchesPrecedence(t *testing.T) {
	d, lib, dp := legalDP(t)
	dp.Instances = []Instance{
		{Kind: model.Kind{Class: model.Mul, Sig: model.Sig(8, 8)}, Ops: []dfg.OpID{0}},
		{Kind: model.Kind{Class: model.Mul, Sig: model.Sig(8, 8)}, Ops: []dfg.OpID{1}},
	}
	dp.InstOf = []int{0, 1}
	dp.Start[1] = 1 // starts before its predecessor finishes
	if err := dp.Verify(d, lib, 10); err == nil {
		t.Fatal("precedence violation accepted")
	}
}

func TestVerifyCatchesWrongKind(t *testing.T) {
	d, lib, dp := legalDP(t)
	dp.Instances[0].Kind = model.Kind{Class: model.Mul, Sig: model.Sig(8, 4)} // too narrow
	if err := dp.Verify(d, lib, 10); err == nil {
		t.Fatal("undersized kind accepted")
	}
	dp.Instances[0].Kind = model.Kind{Class: model.Add, Sig: model.AddSig(32)} // wrong class
	if err := dp.Verify(d, lib, 10); err == nil {
		t.Fatal("wrong-class kind accepted")
	}
}

func TestVerifyCatchesUnbound(t *testing.T) {
	d, lib, dp := legalDP(t)
	dp.Instances[0].Ops = []dfg.OpID{0}
	if err := dp.Verify(d, lib, 10); err == nil {
		t.Fatal("unbound operation accepted")
	}
}

func TestVerifyCatchesDoubleBound(t *testing.T) {
	d, lib, dp := legalDP(t)
	dp.Instances = append(dp.Instances, Instance{
		Kind: model.Kind{Class: model.Mul, Sig: model.Sig(8, 8)}, Ops: []dfg.OpID{1},
	})
	if err := dp.Verify(d, lib, 10); err == nil {
		t.Fatal("doubly bound operation accepted")
	}
}

func TestVerifyCatchesInconsistentInstOf(t *testing.T) {
	d, lib, dp := legalDP(t)
	dp.InstOf[1] = 5
	if err := dp.Verify(d, lib, 10); err == nil {
		t.Fatal("inconsistent InstOf accepted")
	}
}

func TestVerifyCatchesNegativeStart(t *testing.T) {
	d, lib, dp := legalDP(t)
	dp.Start[0] = -1
	if err := dp.Verify(d, lib, 10); err == nil {
		t.Fatal("negative start accepted")
	}
}

func TestVerifyCatchesEmptyInstance(t *testing.T) {
	d, lib, dp := legalDP(t)
	dp.Instances = append(dp.Instances, Instance{Kind: dp.Instances[0].Kind})
	if err := dp.Verify(d, lib, 10); err == nil {
		t.Fatal("empty instance accepted")
	}
}

func TestVerifyCatchesSizeMismatch(t *testing.T) {
	d, lib, dp := legalDP(t)
	dp.Start = dp.Start[:1]
	if err := dp.Verify(d, lib, 10); err == nil {
		t.Fatal("short Start accepted")
	}
}

func TestVerifyCatchesUnknownOp(t *testing.T) {
	d, lib, dp := legalDP(t)
	dp.Instances[0].Ops = []dfg.OpID{0, 7}
	if err := dp.Verify(d, lib, 10); err == nil {
		t.Fatal("unknown op reference accepted")
	}
}

func TestRender(t *testing.T) {
	d, lib, dp := legalDP(t)
	out := dp.Render(d, lib)
	for _, want := range []string{"area 64", "latency 4", "1 resources", "mul 8x8", "a(8x8)@0", "b(8x8)@2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
