package rtl

import (
	"strings"
	"testing"
)

// TestLintDiagnostics is the old textual lint's case table, ported to the
// netlist-IR analyzer: every diagnostic the line-regex lint used to catch
// must still be caught (with the same message substrings), and every
// construct it deliberately accepted must still be accepted. wantErr is a
// substring of the expected finding; empty means the source must be
// clean.
func TestLintDiagnostics(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantErr string
	}{
		{
			name: "clean module",
			src: `module m (
  input  wire clk,
  input  wire [7:0] a,
  output wire [7:0] y
);
  reg [7:0] r;
  always @(posedge clk) begin
    r <= a;
  end
  assign y = r;
endmodule
`,
		},
		{
			name:    "undeclared identifier",
			src:     "module m (\n  input wire clk\n);\n  assign x = y;\nendmodule\n",
			wantErr: "undeclared identifier",
		},
		{
			name:    "unbalanced begin",
			src:     "module m (\n  input wire clk\n);\n  always @(posedge clk) begin\nendmodule\n",
			wantErr: "begin/end unbalanced",
		},
		{
			name:    "negative bit index",
			src:     "module m (\n  input wire [-1:0] x\n);\nendmodule\n",
			wantErr: "negative bit index",
		},
		{
			name:    "missing endmodule",
			src:     "module m (\n  input wire clk\n);\n",
			wantErr: "missing endmodule",
		},
		{
			name: "nonblocking width mismatch",
			src: `module m (
  input wire clk,
  input wire [7:0] a
);
  reg [3:0] r;
  always @(posedge clk) begin
    r <= a;
  end
endmodule
`,
			wantErr: "bus width mismatch: lhs is 4 bits, rhs is 8 bits",
		},
		{
			name: "assign width mismatch",
			src: `module m (
  input  wire [3:0] a,
  output wire [7:0] y
);
  assign y = a;
endmodule
`,
			wantErr: "bus width mismatch: lhs is 8 bits, rhs is 4 bits",
		},
		{
			name: "wire initializer width mismatch",
			src: `module m (
  input wire [7:0] a
);
  wire [3:0] w = a;
endmodule
`,
			wantErr: "bus width mismatch",
		},
		{
			name: "sized literal width mismatch",
			src: `module m (
  input wire clk
);
  reg [3:0] cyc;
  always @(posedge clk) begin
    cyc <= 5'd0;
  end
endmodule
`,
			wantErr: "bus width mismatch: lhs is 4 bits, rhs is 5 bits",
		},
		{
			name: "explicit part-select truncation is sanctioned",
			src: `module m (
  input wire clk,
  input wire [7:0] a
);
  reg [3:0] r;
  always @(posedge clk) begin
    r <= a[3:0];
  end
endmodule
`,
		},
		{
			name: "bit select is one bit",
			src: `module m (
  input wire clk,
  input wire [7:0] a
);
  reg r;
  always @(posedge clk) begin
    r <= a[7];
  end
endmodule
`,
		},
		{
			name: "wrong-width part-select still flagged",
			src: `module m (
  input  wire [7:0] a,
  output wire [3:0] y
);
  assign y = a[4:0];
endmodule
`,
			wantErr: "bus width mismatch: lhs is 4 bits, rhs is 5 bits",
		},
		{
			// The old lint skipped compound right-hand sides wholesale;
			// the interval analysis instead proves this one safe (two
			// 4-bit values cannot exceed 8 bits when added).
			name: "compound rhs stays clean",
			src: `module m (
  input  wire [3:0] a,
  output wire [7:0] y
);
  assign y = a + a;
endmodule
`,
		},
		{
			// Likewise: a {4'b0, a} concatenation is exactly 8 bits.
			name: "concatenation rhs stays clean",
			src: `module m (
  input  wire [3:0] a,
  output wire [7:0] y
);
  assign y = {4'b0, a};
endmodule
`,
		},
		{
			name: "comparison in condition is not a connection",
			src: `module m (
  input wire clk,
  input wire [7:0] a
);
  reg [7:0] r;
  reg flag;
  always @(posedge clk) begin
    if (a <= 8'd3) begin
      flag <= 1'b1;
    end
    r <= a;
  end
endmodule
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Lint(tc.src)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want clean, got: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got: %v", tc.wantErr, err)
			}
		})
	}
}
