package rtl

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/tgff"
	"repro/internal/workloads"
)

func allocate(t *testing.T, d *dfg.Graph, relaxNum, relaxDen int) (*model.Library, *datapath.Datapath) {
	t.Helper()
	lib := model.Default()
	lmin, err := d.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	lambda := lmin + lmin*relaxNum/relaxDen
	dp, _, err := core.Allocate(d, lib, lambda, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return lib, dp
}

func TestGenerateFig1(t *testing.T) {
	g := workloads.Fig1()
	lib, dp := allocate(t, g, 1, 2)
	src, err := Generate("fig1_datapath", g, lib, dp)
	if err != nil {
		t.Fatal(err)
	}
	if err := Lint(src); err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	for _, want := range []string{
		"module fig1_datapath",
		"input  wire clk",
		"output reg  done",
		"endmodule",
		"u0_y",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Sink op a3 must be an output.
	if !strings.Contains(src, "out_a3") {
		t.Error("missing sink output port out_a3")
	}
	// Shared units: fewer units than operations.
	units := strings.Count(src, "_a;")
	if units >= g.N() {
		t.Errorf("no sharing visible: %d units for %d ops", units, g.N())
	}
}

func TestGenerateRandomGraphsLint(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g, err := tgff.Generate(tgff.Config{N: 12, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lib, dp := allocate(t, g, 1, 4)
		src, err := Generate("dp", g, lib, dp)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Lint(src); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := workloads.Fig1()
	lib, dp := allocate(t, g, 1, 2)
	a, err := Generate("m", g, lib, dp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("m", g, lib, dp)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("generation not deterministic")
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	g := workloads.Fig1()
	lib, dp := allocate(t, g, 1, 2)
	if _, err := Generate("1bad", g, lib, dp); err == nil {
		t.Error("invalid module name accepted")
	}
	// Corrupt the datapath: must refuse.
	bad := *dp
	bad.Start = append([]int(nil), dp.Start...)
	bad.Start[0] = -1
	if _, err := Generate("m", g, lib, &bad); err == nil {
		t.Error("illegal datapath accepted")
	}
}

func TestGenerateRejectsDuplicateLabels(t *testing.T) {
	d := dfg.New()
	d.AddOp("x", model.Add, model.AddSig(8))
	d.AddOp("x", model.Add, model.AddSig(8))
	lib, dp := allocate(t, d, 1, 1)
	if _, err := Generate("m", d, lib, dp); err == nil {
		t.Error("duplicate labels accepted")
	}
}

func TestSubtractionUnits(t *testing.T) {
	d := dfg.New()
	d.AddOp("s", model.Sub, model.AddSig(8))
	lib, dp := allocate(t, d, 0, 1)
	src, err := Generate("m", d, lib, dp)
	if err != nil {
		t.Fatal(err)
	}
	if err := Lint(src); err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	if !strings.Contains(src, "u0_sub <= 1'b1") {
		t.Error("subtraction not driven")
	}
	if !strings.Contains(src, "? (u0_a - u0_b) : (u0_a + u0_b)") {
		t.Error("add/sub unit body missing")
	}
}

func TestCounterWidth(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 15: 4, 16: 5}
	for ms, want := range cases {
		if got := counterWidth(ms); got != want {
			t.Errorf("counterWidth(%d) = %d, want %d", ms, got, want)
		}
	}
}

func TestSanitize(t *testing.T) {
	if sanitize("s0.b0x") != "s0_b0x" {
		t.Errorf("sanitize: %q", sanitize("s0.b0x"))
	}
	if sanitize("") != "x" {
		t.Error("empty name")
	}
}
