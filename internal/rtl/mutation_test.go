package rtl_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/descend"
	"repro/internal/dfg"
	"repro/internal/fxsim"
	"repro/internal/model"
	"repro/internal/rtl"
	"repro/internal/rtl/netlist"
	"repro/internal/tgff"
	"repro/internal/twostage"
	"repro/internal/vsim"
	"repro/internal/workloads"
)

// The mutation suite injects single hardware faults into known-good
// generated modules and requires the equiv analyzer to produce a
// counterexample naming the divergent register and cycle for each. One
// mutation (a one-cycle-late result capture with slack before the first
// consumer) is additionally required to survive the sampling
// differential check — bit-identical outputs on every vector — which is
// exactly the class of bug that motivates a symbolic proof over
// simulation.

// solveFig1 allocates the paper's Fig. 1 section with shared units.
func solveFig1(t *testing.T) (*dfg.Graph, *model.Library, *datapath.Datapath) {
	t.Helper()
	g := workloads.Fig1()
	lib := model.Default()
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	dp, _, err := core.Allocate(g, lib, lmin+lmin/2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g, lib, dp
}

// mutate parses generated source, applies an AST edit, and prints the
// mutant back to Verilog.
func mutate(t *testing.T, src string, edit func(*netlist.Module) bool) string {
	t.Helper()
	m, err := netlist.Parse(src)
	if err != nil {
		t.Fatalf("golden source does not parse: %v", err)
	}
	if !edit(m) {
		t.Fatalf("mutation found no site in:\n%s", src)
	}
	return netlist.Print(m)
}

// walkLists visits every statement list in every always block.
func walkLists(stmts []netlist.Stmt, f func([]netlist.Stmt)) {
	f(stmts)
	for _, s := range stmts {
		if iff, ok := s.(netlist.If); ok {
			walkLists(iff.Then, f)
			walkLists(iff.Else, f)
		}
	}
}

// swapOperandLatches exchanges the right-hand sides of the first
// adjacent pair of non-blocking writes to the two named registers.
func swapOperandLatches(a, b string) func(*netlist.Module) bool {
	return func(m *netlist.Module) bool {
		done := false
		for ai := range m.Always {
			walkLists(m.Always[ai].Body, func(list []netlist.Stmt) {
				for i := 0; i+1 < len(list) && !done; i++ {
					x, okx := list[i].(netlist.NonBlocking)
					y, oky := list[i+1].(netlist.NonBlocking)
					if okx && oky && x.Target == a && y.Target == b {
						x.Expr, y.Expr = y.Expr, x.Expr
						list[i], list[i+1] = x, y
						done = true
					}
				}
			})
		}
		return done
	}
}

// invertMuxArms swaps the two arms of the ternary defining the named
// wire: every select now routes the opposite input.
func invertMuxArms(wire string) func(*netlist.Module) bool {
	return func(m *netlist.Module) bool {
		for i, as := range m.Assigns {
			if as.Target != wire {
				continue
			}
			tern, ok := as.Expr.(netlist.Ternary)
			if !ok {
				continue
			}
			tern.Then, tern.Else = tern.Else, tern.Then
			m.Assigns[i].Expr = tern
			return true
		}
		return false
	}
}

// delayCapture moves the capture guard of the named result register one
// cycle later: `if (cyc == K) r <= ...` becomes `if (cyc == K+1) ...`.
func delayCapture(reg string) func(*netlist.Module) bool {
	return func(m *netlist.Module) bool {
		done := false
		for ai := range m.Always {
			walkLists(m.Always[ai].Body, func(list []netlist.Stmt) {
				for i, s := range list {
					iff, ok := s.(netlist.If)
					if !ok || done {
						continue
					}
					writes := false
					for _, inner := range iff.Then {
						if nb, ok := inner.(netlist.NonBlocking); ok && nb.Target == reg {
							writes = true
						}
					}
					bin, okb := iff.Cond.(netlist.Binary)
					if !writes || !okb || bin.Op != "==" {
						continue
					}
					num, okn := bin.Y.(netlist.Num)
					if !okn {
						continue
					}
					num.Val++
					bin.Y = num
					iff.Cond = bin
					list[i] = iff
					done = true
				}
			})
		}
		return done
	}
}

// equivFindings runs the full problem-aware analysis over the source
// and returns only the equiv pass's findings.
func equivFindings(t *testing.T, src string, g *dfg.Graph, lib *model.Library, dp *datapath.Datapath) []netlist.Diag {
	t.Helper()
	diags, err := rtl.Analyze(src, rtl.AnalyzeOptions{File: "mutant.v", Graph: g, Lib: lib, Datapath: dp})
	if err != nil {
		t.Fatalf("mutant does not parse: %v\n%s", err, src)
	}
	var eq []netlist.Diag
	for _, d := range diags {
		if d.Analyzer == "equiv" {
			eq = append(eq, d)
		}
	}
	return eq
}

// samplingPasses runs the vsim/fxsim differential check and reports
// whether every sampled vector matched (i.e. whether simulation-based
// verification would have let the module through).
func samplingPasses(t *testing.T, src string, g *dfg.Graph, lib *model.Library, dp *datapath.Datapath, seed int64, vectors int) bool {
	t.Helper()
	bench, err := vsim.NewBench(src)
	if err != nil {
		t.Fatalf("elaborate: %v\n%s", err, src)
	}
	if err := bench.Reset(); err != nil {
		t.Fatal(err)
	}
	ins, outs := rtl.Interface(g)
	makespan := dp.Makespan(lib)
	rnd := rand.New(rand.NewSource(seed))
	for v := 0; v < vectors; v++ {
		fxIn := make(fxsim.Inputs)
		rtlIn := make(map[string]uint64)
		for _, p := range ins {
			val := rnd.Uint64() & (1<<uint(p.Width) - 1)
			slots := fxIn[p.Op]
			slots[p.Slot] = val
			fxIn[p.Op] = slots
			rtlIn[p.Name] = val
		}
		want, err := fxsim.Reference(g, fxIn)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := bench.RunIteration(rtlIn, makespan+4)
		if err != nil {
			t.Fatalf("vector %d: %v\n%s", v, err, src)
		}
		for _, p := range outs {
			if got[p.Name] != want[p.Op] {
				return false
			}
		}
	}
	return true
}

// requireCounterexample asserts the equiv findings include a divergence
// naming the given register at the given cycle.
func requireCounterexample(t *testing.T, eq []netlist.Diag, reg string, cycle int) {
	t.Helper()
	if len(eq) == 0 {
		t.Fatal("mutation produced no equiv finding")
	}
	wantReg := fmt.Sprintf("%q diverges", reg)
	wantCyc := fmt.Sprintf("at cycle %d", cycle)
	for _, d := range eq {
		if strings.Contains(d.Message, wantReg) && strings.Contains(d.Message, wantCyc) {
			return
		}
	}
	t.Fatalf("no counterexample names %s at cycle %d:\n%v", reg, cycle, eq)
}

// TestMutationOperandSwap swaps the operand latches feeding a shared
// subtractor: the module computes b-a where the graph defines a-b.
func TestMutationOperandSwap(t *testing.T) {
	g := dfg.New()
	g.AddOp("s", model.Sub, model.AddSig(8))
	lib := model.Default()
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	dp, _, err := core.Allocate(g, lib, lmin, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := rtl.Generate("m", g, lib, dp)
	if err != nil {
		t.Fatal(err)
	}
	if eq := equivFindings(t, src, g, lib, dp); len(eq) != 0 {
		t.Fatalf("unmutated module not proved: %v", eq)
	}
	mut := mutate(t, src, swapOperandLatches("u0_a", "u0_b"))
	wb := dp.Start[0] + lib.Latency(dp.Instances[dp.InstOf[0]].Kind) - 1
	requireCounterexample(t, equivFindings(t, mut, g, lib, dp), "r_s", wb)
	if samplingPasses(t, mut, g, lib, dp, 21, 6) {
		t.Fatal("operand swap on a subtractor should be visible to sampling")
	}
}

// TestMutationMuxInversion flips the add/sub select arms of the shared
// ALU in the Fig. 1 datapath: every addition becomes a subtraction.
func TestMutationMuxInversion(t *testing.T) {
	g, lib, dp := solveFig1(t)
	src, err := rtl.Generate("m", g, lib, dp)
	if err != nil {
		t.Fatal(err)
	}
	mut := mutate(t, src, invertMuxArms("u0_y"))
	eq := equivFindings(t, mut, g, lib, dp)
	if len(eq) == 0 {
		t.Fatal("inverted mux arms produced no equiv finding")
	}
	found := false
	for _, d := range eq {
		if strings.Contains(d.Message, "diverges") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no divergence counterexample:\n%v", eq)
	}
}

// TestMutationDelayedCapture delays r_m1's writeback by one cycle in
// the Fig. 1 datapath. The functional unit's operands are not
// re-latched until after the late capture and no consumer reads r_m1
// that early, so every output stays bit-identical: the vsim/fxsim
// sampling differential passes on every vector while the symbolic
// prover pins the divergence at the scheduled writeback cycle. This is
// the acceptance case for proving over sampling.
func TestMutationDelayedCapture(t *testing.T) {
	g, lib, dp := solveFig1(t)
	src, err := rtl.Generate("m", g, lib, dp)
	if err != nil {
		t.Fatal(err)
	}
	mut := mutate(t, src, delayCapture("r_m1"))

	var m1 dfg.OpID = -1
	for _, op := range g.Ops() {
		if op.Name == "m1" {
			m1 = op.ID
		}
	}
	if m1 < 0 {
		t.Fatal("fig1 graph has no op m1")
	}
	wb := dp.Start[m1] + lib.Latency(dp.Instances[dp.InstOf[m1]].Kind) - 1
	requireCounterexample(t, equivFindings(t, mut, g, lib, dp), "r_m1", wb)
	if !samplingPasses(t, mut, g, lib, dp, 22, 8) {
		t.Fatal("delayed capture was visible to sampling; the mutation no longer demonstrates the prover's advantage")
	}
}

// TestEquivDifferentialSlice proves a fixed-seed slice of the random
// allocation suite end to end: 10 graphs across sizes, each allocated
// by all three methods, every generated module proved equivalent to its
// graph with zero findings. This is the sampled slice CI runs.
func TestEquivDifferentialSlice(t *testing.T) {
	lib := model.Default()
	total := 0
	for _, n := range []int{3, 6, 9, 12, 16} {
		graphs, err := tgff.Batch(n, 2, 9011, tgff.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for gi, g := range graphs {
			lmin, err := g.MinMakespan(lib)
			if err != nil {
				t.Fatal(err)
			}
			lambda := lmin + lmin/3
			methods := []struct {
				name string
				dp   func() (*datapath.Datapath, error)
			}{
				{"heuristic", func() (*datapath.Datapath, error) {
					dp, _, err := core.Allocate(g, lib, lambda, core.Options{})
					return dp, err
				}},
				{"twostage", func() (*datapath.Datapath, error) {
					dp, _, err := twostage.Allocate(g, lib, lambda)
					return dp, err
				}},
				{"descend", func() (*datapath.Datapath, error) {
					return descend.Allocate(g, lib, lambda)
				}},
			}
			for _, m := range methods {
				total++
				t.Run(fmt.Sprintf("n=%d/g=%d/%s", n, gi, m.name), func(t *testing.T) {
					dp, err := m.dp()
					if err != nil {
						t.Fatal(err)
					}
					diags, err := rtl.AnalyzeGraph("dut", g, lib, dp)
					if err != nil {
						t.Fatal(err)
					}
					if len(diags) > 0 {
						t.Fatalf("proof failed:\n%v", diags)
					}
				})
			}
		}
	}
	if total != 30 {
		t.Fatalf("slice covers %d problems, want 30", total)
	}
}
