package rtl_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/descend"
	"repro/internal/dfg"
	"repro/internal/fxsim"
	"repro/internal/model"
	"repro/internal/rtl"
	"repro/internal/tgff"
	"repro/internal/twostage"
	"repro/internal/vsim"
)

// runEquivalence generates Verilog for the datapath, elaborates it in the
// vsim simulator, clocks it over `vectors` random input vectors and
// compares every sink output against the fixed-point reference
// evaluation. This executes the emitted source text itself, so it
// catches text-generation bugs that no in-memory check can.
func runEquivalence(t *testing.T, d *dfg.Graph, lib *model.Library, dp *datapath.Datapath, rnd *rand.Rand, vectors int) {
	t.Helper()
	src, err := rtl.Generate("dut", d, lib, dp)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	// Full netlist analysis, including the iface pass against the widths
	// the graph's operation specs demand: every module we simulate must
	// already be structurally sound.
	diags, err := rtl.AnalyzeGraph("dut", d, lib, dp)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(diags) > 0 {
		t.Fatalf("analyzer findings on generated module:\n%v\n%s", diags, src)
	}
	bench, err := vsim.NewBench(src)
	if err != nil {
		t.Fatalf("elaborate: %v\n%s", err, src)
	}
	if err := bench.Reset(); err != nil {
		t.Fatal(err)
	}
	ins, outs := rtl.Interface(d)
	makespan := dp.Makespan(lib)
	for v := 0; v < vectors; v++ {
		fxIn := make(fxsim.Inputs)
		rtlIn := make(map[string]uint64)
		for _, p := range ins {
			val := rnd.Uint64() & (1<<uint(p.Width) - 1)
			slots := fxIn[p.Op]
			slots[p.Slot] = val
			fxIn[p.Op] = slots
			rtlIn[p.Name] = val
		}
		want, err := fxsim.Reference(d, fxIn)
		if err != nil {
			t.Fatal(err)
		}
		got, cycles, err := bench.RunIteration(rtlIn, makespan+4)
		if err != nil {
			t.Fatalf("vector %d: %v\n%s", v, err, src)
		}
		if cycles != makespan {
			t.Fatalf("vector %d: took %d cycles, schedule says %d", v, cycles, makespan)
		}
		for _, p := range outs {
			if got[p.Name] != want[p.Op] {
				t.Fatalf("vector %d: %s = %d, reference %d\n%s",
					v, p.Name, got[p.Name], want[p.Op], src)
			}
		}
	}
}

// TestRTLEquivalenceRandom cross-checks generated hardware for every
// allocation method over random multiple-wordlength graphs.
func TestRTLEquivalenceRandom(t *testing.T) {
	lib := model.Default()
	rnd := rand.New(rand.NewSource(77))
	for _, n := range []int{1, 2, 4, 7, 10, 14} {
		graphs, err := tgff.Batch(n, 4, 5150, tgff.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for gi, g := range graphs {
			lmin, err := g.MinMakespan(lib)
			if err != nil {
				t.Fatal(err)
			}
			lambda := lmin + lmin/4
			methods := []struct {
				name string
				dp   func() (*datapath.Datapath, error)
			}{
				{"heuristic", func() (*datapath.Datapath, error) {
					dp, _, err := core.Allocate(g, lib, lambda, core.Options{})
					return dp, err
				}},
				{"twostage", func() (*datapath.Datapath, error) {
					dp, _, err := twostage.Allocate(g, lib, lambda)
					return dp, err
				}},
				{"descend", func() (*datapath.Datapath, error) {
					return descend.Allocate(g, lib, lambda)
				}},
			}
			for _, m := range methods {
				t.Run(fmt.Sprintf("n=%d/g=%d/%s", n, gi, m.name), func(t *testing.T) {
					dp, err := m.dp()
					if err != nil {
						t.Fatal(err)
					}
					runEquivalence(t, g, lib, dp, rnd, 3)
				})
			}
		}
	}
}

// TestRTLEquivalenceSingleCycle pins the latency-1 path: 4x4-bit
// multiplies take one cycle under the SONIC formula, which forces the
// combinational operand-select form of the functional unit — including a
// dependent chain at back-to-back steps and two operations sharing one
// single-cycle instance.
func TestRTLEquivalenceSingleCycle(t *testing.T) {
	lib := model.Default()
	g := dfg.New()
	a := g.AddOp("a", model.Mul, model.Sig(4, 4))
	b := g.AddOp("b", model.Mul, model.Sig(4, 4))
	c := g.AddOp("c", model.Mul, model.Sig(4, 4))
	if err := g.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(b, c); err != nil {
		t.Fatal(err)
	}
	// One shared multiplier: a@0, b@1, c@2, all latency 1.
	dp := &datapath.Datapath{
		Start:  []int{0, 1, 2},
		InstOf: []int{0, 0, 0},
		Instances: []datapath.Instance{
			{Kind: model.Kind{Class: model.Mul, Sig: model.Sig(4, 4)}, Ops: []dfg.OpID{a, b, c}},
		},
	}
	if err := dp.Verify(g, lib, 3); err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(9))
	runEquivalence(t, g, lib, dp, rnd, 8)
}

// TestRTLEquivalenceMixedLatency shares a wide multiplier between a small
// and a large operation, so the small one executes with the instance's
// longer latency — the paper's Fig. 1(b) effect — and the RTL must still
// compute the small operation's own-width values.
func TestRTLEquivalenceMixedLatency(t *testing.T) {
	lib := model.Default()
	g := dfg.New()
	small := g.AddOp("small", model.Mul, model.Sig(4, 4))
	big := g.AddOp("big", model.Mul, model.Sig(12, 12))
	sum := g.AddOp("sum", model.Add, model.AddSig(16))
	if err := g.AddDep(small, sum); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(big, sum); err != nil {
		t.Fatal(err)
	}
	kind := model.Kind{Class: model.Mul, Sig: model.Sig(12, 12)} // latency 3
	dp := &datapath.Datapath{
		Start:  []int{0, 3, 6},
		InstOf: []int{0, 0, 1},
		Instances: []datapath.Instance{
			{Kind: kind, Ops: []dfg.OpID{small, big}},
			{Kind: model.Kind{Class: model.Add, Sig: model.AddSig(16)}, Ops: []dfg.OpID{sum}},
		},
	}
	if err := dp.Verify(g, lib, 8); err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(10))
	runEquivalence(t, g, lib, dp, rnd, 8)
}
