package netlist

import (
	"fmt"
	"strings"
)

// checkCombLoops is the "combloop" pass: strongly connected components
// over the continuous-assignment dependency graph. Registers and ports
// break combinational paths (a reg's value only changes at a clock
// edge), so the graph's vertices are exactly the assign-driven nets and
// its edges point from each net read by a definition to the net it
// defines. Any SCC with more than one net — or a definition reading
// itself — is combinational feedback: in simulation it livelocks, in
// hardware it latches or oscillates.
func (d *Design) checkCombLoops() []Diag {
	comb := map[string]bool{}
	for _, name := range d.Order {
		n := d.Nets[name]
		for _, drv := range n.Drivers {
			if drv.Kind == DriveAssign {
				comb[name] = true
			}
		}
	}
	// Adjacency: edges out of each comb net into the comb nets whose
	// definitions read it.
	succ := map[string][]string{}
	for _, name := range d.Order {
		if !comb[name] {
			continue
		}
		n := d.Nets[name]
		for _, drv := range n.Drivers {
			if drv.Kind != DriveAssign {
				continue
			}
			for _, src := range reads(drv.Expr, nil) {
				if comb[src] {
					succ[src] = append(succ[src], name)
				}
			}
		}
	}

	// Tarjan's algorithm, iterative bookkeeping kept simple with
	// recursion (module sizes are small).
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, name := range d.Order {
		if comb[name] {
			if _, seen := index[name]; !seen {
				strongconnect(name)
			}
		}
	}

	var diags []Diag
	for _, scc := range sccs {
		cyclic := len(scc) > 1
		if !cyclic {
			// Single net: only a loop if its definition reads itself.
			for _, w := range succ[scc[0]] {
				if w == scc[0] {
					cyclic = true
				}
			}
		}
		if !cyclic {
			continue
		}
		// Deterministic report: members in declaration order.
		ordered := make([]string, 0, len(scc))
		for _, name := range d.Order {
			for _, member := range scc {
				if member == name {
					ordered = append(ordered, name)
				}
			}
		}
		n := d.Nets[ordered[0]]
		line := n.Line
		for _, drv := range n.Drivers {
			if drv.Kind == DriveAssign {
				line = drv.Line
			}
		}
		diags = append(diags, Diag{
			File: d.File, Line: line, Net: ordered[0], Analyzer: "combloop",
			Message: fmt.Sprintf("combinational loop through %s", strings.Join(append(ordered, ordered[0]), " -> ")),
		})
	}
	return diags
}
