package netlist

import (
	"strings"
	"testing"
)

// FuzzRTLParse fuzzes the Verilog front end with three properties:
//
//  1. Parse never panics, whatever the input.
//  2. Accepted input round-trips: Print(m) reparses, and printing the
//     reparse reproduces the same text (Print is a fixed point).
//  3. The analysis suite never panics on any module that parses.
//
// The seed corpus under testdata/fuzz/FuzzRTLParse covers every
// construct the emitter produces (mux chains, pads, part-selects,
// if/else chains) plus malformed inputs near the parser's error paths.
func FuzzRTLParse(f *testing.F) {
	f.Add("module m (\n  input wire clk\n);\nendmodule\n")
	f.Add(`module m (
  input  wire clk,
  input  wire [7:0] a,
  output wire [7:0] y
);
  reg [7:0] r;
  always @(posedge clk) begin
    if (clk) begin
      r <= a;
    end else begin
      r <= a[7:0];
    end
  end
  assign y = r;
endmodule
`)
	f.Add(`module m (
  input  wire [3:0] a,
  output wire [15:0] y
);
  wire [7:0] p = {4'd0, a};
  assign y = (a == 4'd3) ? p * p : {8'h0, p};
endmodule
`)
	f.Add("module m (\n  input wire [-1:0] x\n);\nendmodule\n")
	f.Add("module m (\n);\n  always @(posedge clk) begin\nendmodule\n")
	f.Add("module m (\n  input wire c\n);\n  wire w = c ? 1'b1 : 1'b0;\n/* block\ncomment */\nendmodule\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		p1 := Print(m)
		m2, err := Parse(p1)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\n-- input --\n%s\n-- printed --\n%s", err, src, p1)
		}
		p2 := Print(m2)
		if p1 != p2 {
			t.Fatalf("print is not a fixed point\n-- first --\n%s\n-- second --\n%s", p1, p2)
		}
		// The analyses must terminate without panicking on anything that
		// parses, including pathological drive/loop structures.
		AnalyzeModule(m, Options{ExpectedWidths: map[string]int{"y": 8}})
	})
}

// TestFuzzSeedsAccepted sanity-checks that the well-formed corpus seeds
// really exercise the accept path (a corpus of rejects would fuzz only
// the lexer's error returns).
func TestFuzzSeedsAccepted(t *testing.T) {
	ok := `module m (
  input  wire clk,
  input  wire [7:0] a,
  output wire [7:0] y
);
  reg [7:0] r;
  always @(posedge clk) begin
    r <= a;
  end
  assign y = r;
endmodule
`
	m, err := Parse(ok)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Print(m), "assign y = r;") {
		t.Fatal("printer lost the continuous assign")
	}
}
