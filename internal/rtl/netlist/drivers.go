package netlist

import "fmt"

// checkDrivers is the "driver" pass: every net must be driven by exactly
// the kind and number of sources its declaration promises.
//
//   - a wire (or output port) needs exactly one continuous assignment;
//     none is an undriven net, two or more is contention;
//   - a register must be written from exactly one always block — never
//     written is dead storage (or a missed schedule event), written from
//     two blocks is a nondeterministic race in simulation and an error
//     in synthesis;
//   - procedural writes to wires and continuous assigns to registers are
//     structural type errors the emitter must never produce.
func (d *Design) checkDrivers() []Diag {
	var diags []Diag
	report := func(line int, net, format string, args ...any) {
		diags = append(diags, Diag{File: d.File, Line: line, Net: net, Analyzer: "driver",
			Message: fmt.Sprintf(format, args...)})
	}
	for _, name := range d.Order {
		n := d.Nets[name]
		if n.Kind == NetInput {
			continue // driven by the environment
		}
		var assigns, alwaysWrites []Driver
		blocks := map[int]bool{}
		for _, drv := range n.Drivers {
			if drv.Kind == DriveAssign {
				assigns = append(assigns, drv)
			} else {
				alwaysWrites = append(alwaysWrites, drv)
				blocks[drv.Block] = true
			}
		}
		switch {
		case n.Reg || n.Kind == NetReg:
			if len(assigns) > 0 {
				report(assigns[0].Line, name, "register %q is driven by a continuous assignment", name)
			}
			if len(alwaysWrites) == 0 {
				report(n.Line, name, "register %q is never written by any always block", name)
			} else if len(blocks) > 1 {
				report(alwaysWrites[0].Line, name, "register %q is written in %d always blocks (one block must own a register)", name, len(blocks))
			}
		default: // wire or output-port wire
			if len(alwaysWrites) > 0 {
				report(alwaysWrites[0].Line, name, "wire %q is written from an always block (declare it reg)", name)
			}
			if len(assigns) == 0 && len(alwaysWrites) == 0 {
				report(n.Line, name, "net %q is undriven", name)
			} else if len(assigns) > 1 {
				report(assigns[1].Line, name, "net %q is multiply-driven by %d continuous assignments (first at line %d)", name, len(assigns), assigns[0].Line)
			}
		}
	}
	return diags
}
