// Package netlist parses the synthesisable Verilog-2001 subset emitted
// by internal/rtl into a typed netlist intermediate representation — a
// table of nets (ports, wires, registers) with an explicit driver/reader
// graph — and proves structural and wordlength-dataflow properties over
// it:
//
//   - combloop:  no combinational feedback loops through the assign graph
//   - driver:    every net has exactly the drivers it should (no undriven
//     or multiply-driven nets; registers written in exactly one always
//     block)
//   - deadlogic: every net can influence an output port
//   - width:     declared bus widths agree on simple connections, and
//     value-interval dataflow proves no implicit truncation can drop
//     significant bits (products and concatenations are tracked exactly;
//     same-width add/sub wrap is the library's truncating ring
//     arithmetic and therefore sanctioned)
//
// This is the semantic replacement for the line-regex lint the repo
// carried before: instead of pattern-matching source text, the module is
// parsed, elaborated into an IR, and each property is checked against
// the graph. A reviewed exception is annotated in place, mwlvet-style:
//
//	//rtl:allow <analyzer>[,<analyzer>...] -- <reason>
//
// on the offending line or the line above it.
package netlist

import (
	"fmt"
	"regexp"
	"strings"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber  // plain decimal: 42
	tokSized   // sized literal: 5'd12, 4'b1010, 8'hff
	tokPunct   // single or multi character punctuation
	tokKeyword // reserved word
)

// token is one lexical token with its source line for diagnostics.
type token struct {
	kind tokKind
	text string
	line int
}

var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "reg": true, "assign": true,
	"always": true, "posedge": true, "negedge": true, "begin": true,
	"end": true, "if": true, "else": true,
}

// multi-character punctuation, longest first so the lexer is greedy.
var multiPunct = []string{"<=", ">=", "==", "!=", "&&", "||", "<<", ">>"}

// lexer turns Verilog source into tokens, discarding comments but
// collecting //rtl:allow annotations by line.
type lexer struct {
	src   string
	pos   int
	line  int
	allow allowTable
}

type allowKey struct {
	line     int
	analyzer string
}

// allowSite is one (annotation comment, analyzer) pair, tracked so a
// pragma that ends up suppressing nothing can report its own staleness.
type allowSite struct {
	line     int
	analyzer string
}

// allowTable indexes allow coverage: each covered (line, analyzer) maps
// to the site that granted it, so suppression can be attributed back.
type allowTable struct {
	byKey map[allowKey]int // value: index into sites
	sites []allowSite
}

// The annotation must open the comment (after optional whitespace):
// prose that merely mentions the pragma syntax is not an exception.
var allowRe = regexp.MustCompile(`^(?://|/\*)\s*rtl:allow\s+([a-z][a-z0-9_,\s]*)`)

// lexAll tokenises the whole input and returns the token stream plus the
// allow table built from //rtl:allow comments. Like mwlvet's
// suppression, an allow covers its own line and the line below it, so
// both trailing and preceding-line placements work.
func lexAll(src string) ([]token, allowTable, error) {
	lx := &lexer{src: src, line: 1, allow: allowTable{byKey: map[allowKey]int{}}}
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, allowTable{}, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, lx.allow, nil
		}
	}
}

// recordAllow parses one comment's text for rtl:allow annotations.
func (lx *lexer) recordAllow(comment string, startLine, endLine int) {
	m := allowRe.FindStringSubmatch(comment)
	if m == nil {
		return
	}
	names := m[1]
	if i := strings.Index(names, "--"); i >= 0 {
		names = names[:i]
	}
	for _, name := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' || r == '\n' }) {
		site := len(lx.allow.sites)
		lx.allow.sites = append(lx.allow.sites, allowSite{line: startLine, analyzer: name})
		for line := startLine; line <= endLine+1; line++ {
			lx.allow.byKey[allowKey{line, name}] = site
		}
	}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			start := lx.pos
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
			lx.recordAllow(lx.src[start:lx.pos], lx.line, lx.line)
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			end := strings.Index(lx.src[lx.pos+2:], "*/")
			if end < 0 {
				return token{}, fmt.Errorf("netlist: line %d: unterminated block comment", lx.line)
			}
			text := lx.src[lx.pos : lx.pos+2+end+2]
			endLine := lx.line + strings.Count(text, "\n")
			lx.recordAllow(text, lx.line, endLine)
			lx.line = endLine
			lx.pos += 2 + end + 2
		default:
			return lx.lexToken()
		}
	}
	return token{kind: tokEOF, text: "end of input", line: lx.line}, nil
}

func (lx *lexer) lexToken() (token, error) {
	c := lx.src[lx.pos]
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isWordByte(lx.src[lx.pos]) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: lx.line}, nil
	case c >= '0' && c <= '9':
		return lx.lexNumber()
	default:
		for _, mp := range multiPunct {
			if strings.HasPrefix(lx.src[lx.pos:], mp) {
				lx.pos += len(mp)
				return token{kind: tokPunct, text: mp, line: lx.line}, nil
			}
		}
		lx.pos++
		return token{kind: tokPunct, text: string(c), line: lx.line}, nil
	}
}

// lexNumber handles both plain decimals and sized literals (8'hff). A
// width prefix followed by ' and a base letter consumes the value digits
// including underscores.
func (lx *lexer) lexNumber() (token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) && (lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' || lx.src[lx.pos] == '_') {
		lx.pos++
	}
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '\'' {
		lx.pos++
		if lx.pos >= len(lx.src) {
			return token{}, fmt.Errorf("netlist: line %d: truncated sized literal", lx.line)
		}
		base := lx.src[lx.pos]
		switch base {
		case 'd', 'D', 'b', 'B', 'h', 'H', 'o', 'O':
			lx.pos++
		default:
			return token{}, fmt.Errorf("netlist: line %d: unknown literal base %q", lx.line, string(base))
		}
		valStart := lx.pos
		for lx.pos < len(lx.src) && (isWordByte(lx.src[lx.pos]) || lx.src[lx.pos] == '_') {
			lx.pos++
		}
		if lx.pos == valStart {
			return token{}, fmt.Errorf("netlist: line %d: sized literal missing value", lx.line)
		}
		return token{kind: tokSized, text: lx.src[start:lx.pos], line: lx.line}, nil
	}
	return token{kind: tokNumber, text: lx.src[start:lx.pos], line: lx.line}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWordByte(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
