package netlist

import "fmt"

// checkDeadLogic is the "deadlogic" pass: every net must be able to
// influence some output port. Influence is the transitive closure of
// "appears in a driver of", where a driver's inputs include the nets its
// expression reads, the nets read by every if-condition guarding it, and
// the clock of the always block it sits in (control dependence counts:
// a counter that only gates assignments still reaches the outputs).
// A net outside the closure is dead logic — it burns area and, worse,
// usually marks an emitter bug where a computed value was never wired
// into the datapath it was computed for.
//
// Modules with no output ports are degenerate (everything would be
// "dead"); the pass is skipped for them.
func (d *Design) checkDeadLogic() []Diag {
	hasOutput := false
	for _, n := range d.Nets {
		if n.Kind == NetOutput {
			hasOutput = true
		}
	}
	if !hasOutput {
		return nil
	}

	// supports[x] lists the nets whose drivers read x.
	supports := map[string][]string{}
	addEdge := func(src, dst string) {
		if src != dst {
			supports[src] = append(supports[src], dst)
		}
	}
	for _, name := range d.Order {
		n := d.Nets[name]
		for _, drv := range n.Drivers {
			for _, src := range reads(drv.Expr, nil) {
				addEdge(src, name)
			}
			for _, cond := range drv.Conds {
				for _, src := range reads(cond, nil) {
					addEdge(src, name)
				}
			}
			if drv.Kind == DriveAlways && drv.Block >= 0 && drv.Block < len(d.Module.Always) {
				addEdge(d.Module.Always[drv.Block].Clock, name)
			}
		}
	}

	live := map[string]bool{}
	var frontier []string
	for _, name := range d.Order {
		if d.Nets[name].Kind == NetOutput {
			live[name] = true
			frontier = append(frontier, name)
		}
	}
	// Walk the support graph backwards: a net is live when something it
	// supports is live.
	reverse := map[string][]string{}
	for src, dsts := range supports {
		for _, dst := range dsts {
			reverse[dst] = append(reverse[dst], src)
		}
	}
	for len(frontier) > 0 {
		name := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, src := range reverse[name] {
			if !live[src] {
				live[src] = true
				frontier = append(frontier, src)
			}
		}
	}

	var diags []Diag
	for _, name := range d.Order {
		if live[name] {
			continue
		}
		n := d.Nets[name]
		diags = append(diags, Diag{File: d.File, Line: n.Line, Net: name, Analyzer: "deadlogic",
			Message: fmt.Sprintf("%s %q cannot reach any output port (dead logic)", n.Kind, name)})
	}
	return diags
}
