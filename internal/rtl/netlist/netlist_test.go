package netlist

import (
	"strings"
	"testing"
)

// analyze is a test helper: run the full suite, fail on parse errors.
func analyze(t *testing.T, src string, opts Options) []Diag {
	t.Helper()
	diags, err := Analyze(src, opts)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return diags
}

// TestAnalyzeFixtures drives each analyzer through a module that fires it
// and a module that provably must not. want lists one substring per
// expected diagnostic; the number of diagnostics must match exactly, so a
// firing fixture also proves the other passes stay quiet on it.
func TestAnalyzeFixtures(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "clean sequential module",
			src: `module m (
  input  wire clk,
  input  wire [7:0] a,
  output wire [7:0] y
);
  reg [7:0] r;
  always @(posedge clk) begin
    r <= a;
  end
  assign y = r;
endmodule
`,
		},
		{
			name: "combloop: two-net cycle",
			src: `module m (
  input  wire clk,
  output wire y
);
  wire a = b;
  wire b = a;
  assign y = a & clk;
endmodule
`,
			want: []string{"combinational loop through a -> b -> a"},
		},
		{
			name: "combloop: self loop",
			src: `module m (
  input  wire clk,
  output wire y
);
  wire a = a & clk;
  assign y = a;
endmodule
`,
			want: []string{"combinational loop through a -> a"},
		},
		{
			name: "combloop: feedback through a register is fine",
			src: `module m (
  input  wire clk,
  output wire [3:0] y
);
  reg [3:0] acc;
  wire [3:0] next = acc + 4'd1;
  always @(posedge clk) begin
    acc <= next;
  end
  assign y = acc;
endmodule
`,
		},
		{
			name: "driver: undriven wire",
			src: `module m (
  input  wire clk,
  output wire [3:0] y
);
  wire [3:0] w;
  reg [3:0] r;
  always @(posedge clk) begin
    r <= w;
  end
  assign y = r;
endmodule
`,
			want: []string{`net "w" is undriven`},
		},
		{
			name: "driver: multiply-driven wire",
			src: `module m (
  input  wire a,
  output wire y
);
  assign y = a;
  assign y = !a;
endmodule
`,
			want: []string{`net "y" is multiply-driven by 2 continuous assignments`},
		},
		{
			name: "driver: register never written",
			src: `module m (
  input  wire a,
  output wire y
);
  reg r;
  assign y = r & a;
endmodule
`,
			want: []string{`register "r" is never written by any always block`},
		},
		{
			name: "driver: register written in two always blocks",
			src: `module m (
  input  wire clk,
  input  wire a,
  output wire y
);
  reg r;
  always @(posedge clk) begin
    r <= a;
  end
  always @(posedge clk) begin
    r <= !a;
  end
  assign y = r;
endmodule
`,
			want: []string{`register "r" is written in 2 always blocks`},
		},
		{
			name: "driver: register driven by continuous assign",
			src: `module m (
  input  wire clk,
  input  wire a,
  output wire y
);
  reg r;
  always @(posedge clk) begin
    r <= a;
  end
  assign r = a;
  assign y = r;
endmodule
`,
			want: []string{`register "r" is driven by a continuous assignment`},
		},
		{
			name: "driver: wire written from an always block",
			src: `module m (
  input  wire clk,
  input  wire a,
  output wire y
);
  wire w;
  always @(posedge clk) begin
    w <= a;
  end
  assign y = w & a;
endmodule
`,
			want: []string{`wire "w" is written from an always block (declare it reg)`},
		},
		{
			name: "deadlogic: register never reaching an output",
			src: `module m (
  input  wire clk,
  input  wire [3:0] a,
  output wire [3:0] y
);
  reg [3:0] keep;
  reg [3:0] dead;
  always @(posedge clk) begin
    keep <= a;
    dead <= a;
  end
  assign y = keep;
endmodule
`,
			want: []string{`register "dead" cannot reach any output port (dead logic)`},
		},
		{
			name: "deadlogic: control dependence counts as reaching",
			src: `module m (
  input  wire clk,
  input  wire [3:0] a,
  output wire [3:0] y
);
  reg [3:0] cyc;
  reg [3:0] r;
  always @(posedge clk) begin
    cyc <= cyc + 4'd1;
    if (cyc == 4'd3) begin
      r <= a;
    end
  end
  assign y = r;
endmodule
`,
		},
		{
			name: "deadlogic: skipped for output-free modules",
			src: `module m (
  input wire clk
);
  reg r;
  always @(posedge clk) begin
    r <= !r;
  end
endmodule
`,
		},
		{
			name: "width: mux of wide registers into a narrow wire",
			src: `module m (
  input  wire clk,
  input  wire [7:0] a,
  output wire [3:0] y
);
  reg [7:0] r;
  always @(posedge clk) begin
    r <= a;
  end
  assign y = clk ? r : 8'd0;
endmodule
`,
			want: []string{`implicit truncation: expression value may need 8 bits, but "y" is 4 bits wide`},
		},
		{
			name: "width: product wider than its context",
			src: `module m (
  input  wire clk,
  input  wire [7:0] a,
  input  wire [7:0] b,
  output wire [7:0] y
);
  reg [7:0] prod;
  always @(posedge clk) begin
    prod <= a * b;
  end
  assign y = prod;
endmodule
`,
			want: []string{"product may need 16 bits but is computed in a 8-bit context"},
		},
		{
			name: "width: interval proves a narrow product lossless",
			src: `module m (
  input  wire clk,
  input  wire [3:0] a,
  input  wire [3:0] b,
  output wire [7:0] y
);
  wire [7:0] pa = {4'd0, a};
  wire [7:0] pb = {4'd0, b};
  reg [7:0] prod;
  always @(posedge clk) begin
    prod <= pa * pb;
  end
  assign y = prod;
endmodule
`,
		},
		{
			name: "width: left shift out of range",
			src: `module m (
  input  wire [3:0] a,
  output wire [3:0] y
);
  assign y = a << 2;
endmodule
`,
			want: []string{"left shift may need 6 bits but is computed in a 4-bit context"},
		},
		{
			name: "width: same-width add wrap is sanctioned ring arithmetic",
			src: `module m (
  input  wire [7:0] a,
  input  wire [7:0] b,
  output wire [7:0] y
);
  assign y = a + b;
endmodule
`,
		},
		{
			name: "width: explicit part-select truncation is sanctioned",
			src: `module m (
  input  wire [7:0] a,
  output wire [3:0] y
);
  assign y = a[3:0];
endmodule
`,
		},
		{
			name: "resolve: undeclared identifier short-circuits the suite",
			src: `module m (
  input  wire clk,
  output wire y
);
  assign y = ghost;
endmodule
`,
			want: []string{`undeclared identifier "ghost"`},
		},
		{
			name: "width: select past declared width",
			src: `module m (
  input  wire [3:0] a,
  output wire y
);
  assign y = a[4];
endmodule
`,
			want: []string{`part-select a[4:4] reads past the declared width 4 of "a"`},
		},
		{
			name: "width: select bounds checked inside always and conditions",
			src: `module m (
  input  wire clk,
  input  wire [3:0] a,
  output reg [2:0] y
);
  always @(posedge clk) begin
    if (a[5]) begin
      y <= a[4:2];
    end
  end
endmodule
`,
			want: []string{
				`part-select a[5:5] reads past the declared width 4 of "a"`,
				`part-select a[4:2] reads past the declared width 4 of "a"`,
			},
		},
		{
			name: "width: out-of-range select does not short-circuit the suite",
			src: `module m (
  input  wire [3:0] a,
  output wire y
);
  wire dead = a[0];
  assign y = a[4];
endmodule
`,
			want: []string{
				`part-select a[4:4] reads past the declared width 4 of "a"`,
				`wire "dead" cannot reach any output port (dead logic)`,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := analyze(t, tc.src, Options{})
			if len(diags) != len(tc.want) {
				t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(tc.want), renderAll(diags))
			}
			for _, want := range tc.want {
				found := false
				for _, d := range diags {
					if strings.Contains(d.String(), want) {
						found = true
					}
				}
				if !found {
					t.Errorf("no diagnostic contains %q:\n%s", want, renderAll(diags))
				}
			}
		})
	}
}

func renderAll(diags []Diag) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	if b.Len() == 0 {
		return "  (none)\n"
	}
	return b.String()
}

// TestAllowComment checks that //rtl:allow suppresses exactly the named
// analyzer on its own line and the line below, and nothing else.
func TestAllowComment(t *testing.T) {
	src := `module m (
  input  wire a,
  output wire y
);
  assign y = a;
  //rtl:allow driver -- dual drive reviewed, second assign wins in tests
  assign y = !a;
endmodule
`
	if diags := analyze(t, src, Options{}); len(diags) != 0 {
		t.Fatalf("allow did not suppress:\n%s", renderAll(diags))
	}
	// The same module without the annotation must fire.
	bare := strings.Replace(src, "  //rtl:allow driver -- dual drive reviewed, second assign wins in tests\n", "", 1)
	if diags := analyze(t, bare, Options{}); len(diags) != 1 {
		t.Fatalf("expected 1 diagnostic without allow, got:\n%s", renderAll(diags))
	}
	// An allow naming a different analyzer must not suppress — and the
	// pragma itself, now excusing nothing, is reported as stale.
	wrong := strings.Replace(src, "rtl:allow driver", "rtl:allow width", 1)
	diags := analyze(t, wrong, Options{})
	joined := renderAll(diags)
	if len(diags) != 2 ||
		!strings.Contains(joined, "[driver]") ||
		!strings.Contains(joined, `[allow] //rtl:allow width suppresses no width finding`) {
		t.Fatalf("want the driver finding plus a stale-allow finding, got:\n%s", joined)
	}
}

// TestStaleAllow checks that an //rtl:allow pragma which suppresses
// nothing is itself reported — except when the suite short-circuited on
// resolve errors, where "suppressed nothing" would be unfounded.
func TestStaleAllow(t *testing.T) {
	src := `module m (
  input  wire a,
  output wire y
);
  //rtl:allow driver -- leftover from a dual-drive experiment
  assign y = a;
endmodule
`
	diags := analyze(t, src, Options{})
	if len(diags) != 1 || diags[0].Analyzer != "allow" || diags[0].Line != 5 ||
		!strings.Contains(diags[0].Message, "suppresses no driver finding") {
		t.Fatalf("want one stale-allow finding at line 5, got:\n%s", renderAll(diags))
	}

	// The stale-allow finding is not itself suppressible: stacking an
	// allow for "allow" on the same line changes nothing (and is stale
	// too).
	stacked := strings.Replace(src, "//rtl:allow driver", "//rtl:allow driver,allow", 1)
	diags = analyze(t, stacked, Options{})
	if len(diags) != 2 {
		t.Fatalf("want two stale-allow findings, got:\n%s", renderAll(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "allow" {
			t.Fatalf("want only [allow] findings, got:\n%s", renderAll(diags))
		}
	}

	// Resolve errors short-circuit the suite; the allow is left alone.
	broken := strings.Replace(src, "assign y = a;", "assign y = ghost;", 1)
	diags = analyze(t, broken, Options{})
	for _, d := range diags {
		if d.Analyzer == "allow" {
			t.Fatalf("stale-allow reported despite resolve short-circuit:\n%s", renderAll(diags))
		}
	}

	// A prose mention of the pragma syntax inside an ordinary comment
	// must not register as an exception.
	prose := strings.Replace(src,
		"//rtl:allow driver -- leftover from a dual-drive experiment",
		"// document exceptions with //rtl:allow driver -- reason", 1)
	if diags := analyze(t, prose, Options{}); len(diags) != 0 {
		t.Fatalf("prose mention of the pragma registered:\n%s", renderAll(diags))
	}
}

// TestInterfacePass checks the iface analyzer against a wordlength spec.
func TestInterfacePass(t *testing.T) {
	src := `module m (
  input  wire [3:0] in_a,
  output wire [3:0] out_y
);
  assign out_y = in_a;
endmodule
`
	diags := analyze(t, src, Options{ExpectedWidths: map[string]int{
		"in_a": 4, "out_y": 8, "in_b": 4,
	}})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%s", len(diags), renderAll(diags))
	}
	joined := renderAll(diags)
	for _, want := range []string{
		`wordlength spec expects net "in_b" (4 bits), not found in module`,
		`net "out_y" is 4 bits, but the operation wordlength spec requires 8 bits`,
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}

// TestDiagString pins the vet-style rendering used by cmd/mwlrtl.
func TestDiagString(t *testing.T) {
	d := Diag{File: "fir.v", Line: 12, Net: "u0_y", Analyzer: "width", Message: "boom"}
	if got, want := d.String(), "fir.v:12: [width] boom"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	anon := Diag{Line: 3, Analyzer: "driver", Message: "x"}
	if got, want := anon.String(), "<verilog>:3: [driver] x"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// TestPrintFixedPoint: printing is a fixed point under reparsing on a
// module exercising every construct the printer knows.
func TestPrintFixedPoint(t *testing.T) {
	src := `module fir (
  input  wire clk,
  input  wire start,
  input  wire [7:0] in_a,
  output reg  done,
  output wire [7:0] out_y
);
  reg [3:0] cyc;
  reg [15:0] r_p;
  wire [7:0] pad = {4'h0, in_a[3:0]};
  wire [15:0] prod = pad * pad;
  wire sel = (cyc == 4'd3) || (cyc >= 4'd9) && !start;
  always @(posedge clk) begin
    if (start) begin
      cyc <= 4'd0;
      done <= 1'b0;
    end else if (cyc == 4'd9) begin
      done <= 1'b1;
    end else begin
      cyc <= cyc + 4'd1;
      if (sel) r_p <= prod;
    end
  end
  assign out_y = sel ? r_p[7:0] : pad;
endmodule
`
	m1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	p1 := Print(m1)
	m2, err := Parse(p1)
	if err != nil {
		t.Fatalf("reparse printed form: %v\n%s", err, p1)
	}
	p2 := Print(m2)
	if p1 != p2 {
		t.Fatalf("print not a fixed point:\n-- first --\n%s\n-- second --\n%s", p1, p2)
	}
}

// TestParseErrors pins the parse-failure messages other layers rely on.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{
			name: "unbalanced begin",
			src:  "module m (\n  input wire clk\n);\n  always @(posedge clk) begin\nendmodule\n",
			want: "begin/end unbalanced",
		},
		{
			name: "missing endmodule",
			src:  "module m (\n  input wire clk\n);\n",
			want: "missing endmodule",
		},
		{
			name: "negative bit index in declaration",
			src:  "module m (\n  input wire [-1:0] x\n);\nendmodule\n",
			want: "negative bit index",
		},
		{
			name: "negative bit index in select",
			src:  "module m (\n  input wire [3:0] x,\n  output wire y\n);\n  assign y = x[-1];\nendmodule\n",
			want: "negative bit index",
		},
		{
			name: "literal overflowing its width",
			src:  "module m (\n  input wire clk\n);\n  reg [1:0] r;\n  always @(posedge clk) r <= 2'd7;\nendmodule\n",
			want: "overflows its width",
		},
		{
			name: "blocking assignment rejected",
			src:  "module m (\n  input wire clk\n);\n  reg r;\n  always @(posedge clk) r = 1'b1;\nendmodule\n",
			want: "only non-blocking assignment",
		},
		{
			name: "unterminated block comment",
			src:  "module m (\n  input wire clk\n);\n/* open\nendmodule\n",
			want: "unterminated block comment",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got: %v", tc.want, err)
			}
		})
	}
}
