package netlist

import (
	"fmt"
	"math/big"
)

// checkWidths is the "width" pass, the semantic replacement for the old
// line-regex bus-width lint. Two rules:
//
//  1. Simple connections — an assignment whose right-hand side is a bare
//     identifier, a part/bit select, or a sized literal — must connect
//     buses of exactly equal declared width. Implicit zero-extension and
//     implicit truncation on a plain connection are both emitter bugs;
//     an explicit part-select is the sanctioned way to truncate.
//
//  2. Compound right-hand sides are checked by forward value-interval
//     dataflow. Every net carries a maximum-value bound (inputs and
//     registers: full range of their declared width; wires: the bound of
//     their definition, propagated in dependency order through muxes,
//     part-selects and arithmetic). An assignment whose expression can
//     exceed the target's range — or a product/shift computed in a
//     context too narrow for its operands' bounds — may drop significant
//     bits and is flagged. Same-width add/sub wrap-around is NOT
//     flagged: the library's fixed-point semantics are truncating ring
//     arithmetic (fxsim and the generated units agree on mod-2^w), so a
//     carry out of the declared word is the specified behaviour, not a
//     defect.
//
// The interval half is what lets the pass see *through* the netlist:
// a 24-bit product register sliced to 8 bits is provably lossless when
// the unit's operands are zero-padded 4-bit values, and provably lossy
// when they are not — a distinction no textual width check can make.
func (d *Design) checkWidths() []Diag {
	bounds := d.netBounds()
	diags := d.checkSelectBounds()
	check := func(target string, expr Expr, line int) {
		n := d.Nets[target]
		if n == nil {
			return
		}
		ev := &evaluator{design: d, bounds: bounds, net: target}
		switch e := expr.(type) {
		case Ref, Select:
			rw := ev.selfWidth(expr)
			if rw != n.Width {
				diags = append(diags, Diag{File: d.File, Line: line, Net: target, Analyzer: "width",
					Message: fmt.Sprintf("bus width mismatch: lhs is %d bits, rhs is %d bits (truncate explicitly with a part-select)", n.Width, rw)})
			}
		case Num:
			if e.Width > 0 && e.Width != n.Width {
				diags = append(diags, Diag{File: d.File, Line: line, Net: target, Analyzer: "width",
					Message: fmt.Sprintf("bus width mismatch: lhs is %d bits, rhs is %d bits (truncate explicitly with a part-select)", n.Width, e.Width)})
			}
		default:
			ctx := ev.selfWidth(expr)
			if n.Width > ctx {
				ctx = n.Width
			}
			bound := ev.bound(expr, ctx)
			ev.flush(&diags, line)
			if bound.Cmp(maxOf(n.Width)) > 0 {
				diags = append(diags, Diag{File: d.File, Line: line, Net: target, Analyzer: "width",
					Message: fmt.Sprintf("implicit truncation: expression value may need %d bits, but %q is %d bits wide (truncate explicitly with a part-select)", bound.BitLen(), target, n.Width)})
			}
		}
	}
	for _, name := range d.Order {
		for _, drv := range d.Nets[name].Drivers {
			check(name, drv.Expr, drv.Line)
		}
	}
	return diags
}

// checkSelectBounds flags part- and bit-selects whose bounds exceed the
// declared width of the selected net, in every expression context
// (assign right-hand sides, always-block conditions and statements).
// Selecting past the top bit reads Verilog x-bits, not a sanctioned
// truncation — the sanctioned path keeps Hi inside the declaration —
// and before this check the shape slipped through the width pass
// because selfWidth trusted Hi-Lo+1 without consulting the net.
func (d *Design) checkSelectBounds() []Diag {
	var diags []Diag
	var walk func(e Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case Select:
			walk(e.X)
			if ref, ok := e.X.(Ref); ok {
				if n := d.Nets[ref.Name]; n != nil && e.Hi >= n.Width {
					diags = append(diags, Diag{File: d.File, Line: e.Line, Net: ref.Name, Analyzer: "width",
						Message: fmt.Sprintf("part-select %s[%d:%d] reads past the declared width %d of %q (out-of-range bits are not a sanctioned truncation)",
							ref.Name, e.Hi, e.Lo, n.Width, ref.Name)})
				}
			}
		case Unary:
			walk(e.X)
		case Binary:
			walk(e.X)
			walk(e.Y)
		case Ternary:
			walk(e.Cond)
			walk(e.Then)
			walk(e.Else)
		case Concat:
			for _, part := range e.Parts {
				walk(part)
			}
		}
	}
	var walkStmts func(stmts []Stmt)
	walkStmts = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case NonBlocking:
				walk(s.Expr)
			case If:
				walk(s.Cond)
				walkStmts(s.Then)
				walkStmts(s.Else)
			}
		}
	}
	for _, a := range d.Module.Assigns {
		walk(a.Expr)
	}
	for _, al := range d.Module.Always {
		walkStmts(al.Body)
	}
	return diags
}

// netBounds computes the maximum-value interval of every net: inputs and
// registers span the full range of their declared width; assign-driven
// wires take the bound of their definition, resolved in dependency order
// (nets on a combinational cycle — already reported by combloop — fall
// back to full range).
func (d *Design) netBounds() map[string]*big.Int {
	bounds := map[string]*big.Int{}
	for _, name := range d.Order {
		n := d.Nets[name]
		comb := false
		for _, drv := range n.Drivers {
			if drv.Kind == DriveAssign {
				comb = true
			}
		}
		if !comb {
			bounds[name] = maxOf(n.Width)
		}
	}
	// Iterate to a fixpoint: each pass resolves wires whose reads are
	// all resolved. len(Order) passes suffice for any acyclic design.
	for pass := 0; pass < len(d.Order); pass++ {
		progress := false
		for _, name := range d.Order {
			if bounds[name] != nil {
				continue
			}
			n := d.Nets[name]
			ready := true
			var val *big.Int
			for _, drv := range n.Drivers {
				if drv.Kind != DriveAssign {
					continue
				}
				for _, src := range reads(drv.Expr, nil) {
					if bounds[src] == nil {
						ready = false
					}
				}
				if !ready {
					break
				}
				ev := &evaluator{design: d, bounds: bounds, net: name}
				ctx := ev.selfWidth(drv.Expr)
				if n.Width > ctx {
					ctx = n.Width
				}
				b := ev.bound(drv.Expr, ctx)
				if val == nil || b.Cmp(val) > 0 {
					val = b
				}
			}
			if ready && val != nil {
				if cap := maxOf(n.Width); val.Cmp(cap) > 0 {
					val = cap // assignment truncates; anything may remain
				}
				bounds[name] = val
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for _, name := range d.Order {
		if bounds[name] == nil {
			bounds[name] = maxOf(d.Nets[name].Width)
		}
	}
	return bounds
}

// evaluator walks one expression computing value bounds, collecting
// node-level findings (products and shifts computed in a context too
// narrow for their operands) as it goes.
type evaluator struct {
	design *Design
	bounds map[string]*big.Int
	net    string
	finds  []string
	lines  []int
}

func (ev *evaluator) flush(diags *[]Diag, fallbackLine int) {
	for i, msg := range ev.finds {
		line := ev.lines[i]
		if line == 0 {
			line = fallbackLine
		}
		*diags = append(*diags, Diag{File: ev.design.File, Line: line, Net: ev.net, Analyzer: "width", Message: msg})
	}
	ev.finds, ev.lines = nil, nil
}

func (ev *evaluator) reportf(line int, format string, args ...any) {
	ev.finds = append(ev.finds, fmt.Sprintf(format, args...))
	ev.lines = append(ev.lines, line)
}

// selfWidth is the Verilog self-determined bit length of an expression.
func (ev *evaluator) selfWidth(e Expr) int {
	switch e := e.(type) {
	case Num:
		if e.Width > 0 {
			return e.Width
		}
		w := big.NewInt(0).SetUint64(e.Val).BitLen()
		if w == 0 {
			w = 1
		}
		return w
	case Ref:
		if n := ev.design.Nets[e.Name]; n != nil {
			return n.Width
		}
		return 0
	case Select:
		return e.Hi - e.Lo + 1
	case Unary:
		if e.Op == "!" {
			return 1
		}
		return ev.selfWidth(e.X)
	case Binary:
		switch e.Op {
		case "==", "!=", "<", ">", "<=", ">=", "&&", "||":
			return 1
		case "<<", ">>":
			return ev.selfWidth(e.X)
		default:
			x, y := ev.selfWidth(e.X), ev.selfWidth(e.Y)
			if x > y {
				return x
			}
			return y
		}
	case Ternary:
		x, y := ev.selfWidth(e.Then), ev.selfWidth(e.Else)
		if x > y {
			return x
		}
		return y
	case Concat:
		sum := 0
		for _, part := range e.Parts {
			sum += ev.selfWidth(part)
		}
		return sum
	default:
		return 0
	}
}

// bound returns the maximum value the expression can take when evaluated
// in a ctx-bit context. Ring wrap of + and - at the context width is
// treated as intended truncating arithmetic; products, left shifts and
// oversized concatenations that cannot fit are reported.
func (ev *evaluator) bound(e Expr, ctx int) *big.Int {
	cap := maxOf(ctx)
	switch e := e.(type) {
	case Num:
		return big.NewInt(0).SetUint64(e.Val)
	case Ref:
		n := ev.design.Nets[e.Name]
		if n == nil {
			return cap
		}
		b := ev.bounds[e.Name]
		if b == nil {
			b = maxOf(n.Width)
		}
		return minBig(b, maxOf(n.Width))
	case Select:
		w := e.Hi - e.Lo + 1
		if e.Lo == 0 {
			if ref, ok := e.X.(Ref); ok {
				if b := ev.bounds[ref.Name]; b != nil {
					return minBig(b, maxOf(w))
				}
			}
		}
		return maxOf(w)
	case Unary:
		switch e.Op {
		case "!":
			return big.NewInt(1)
		case "~", "-":
			b := ev.bound(e.X, ctx)
			if e.Op == "-" && b.Sign() == 0 {
				return big.NewInt(0)
			}
			return cap
		}
		return cap
	case Binary:
		return ev.binaryBound(e, ctx)
	case Ternary:
		condCtx := ev.selfWidth(e.Cond)
		ev.bound(e.Cond, condCtx) // walk for node findings only
		t := ev.bound(e.Then, ctx)
		f := ev.bound(e.Else, ctx)
		if t.Cmp(f) >= 0 {
			return t
		}
		return f
	case Concat:
		total := big.NewInt(0)
		shift := 0
		// Parts compose from the right: part i is shifted left by the
		// widths of everything after it.
		for i := len(e.Parts) - 1; i >= 0; i-- {
			pw := ev.selfWidth(e.Parts[i])
			pb := minBig(ev.bound(e.Parts[i], pw), maxOf(pw))
			total.Add(total, big.NewInt(0).Lsh(pb, uint(shift)))
			shift += pw
		}
		return total
	default:
		return cap
	}
}

func (ev *evaluator) binaryBound(e Binary, ctx int) *big.Int {
	cap := maxOf(ctx)
	switch e.Op {
	case "==", "!=", "<", ">", "<=", ">=", "&&", "||":
		sub := ev.selfWidth(e.X)
		if y := ev.selfWidth(e.Y); y > sub {
			sub = y
		}
		ev.bound(e.X, sub) // walk for node findings only
		ev.bound(e.Y, sub)
		return big.NewInt(1)
	case "+":
		s := big.NewInt(0).Add(ev.bound(e.X, ctx), ev.bound(e.Y, ctx))
		return minBig(s, cap) // ring wrap at the context width is sanctioned
	case "-":
		x := ev.bound(e.X, ctx)
		if ev.bound(e.Y, ctx).Sign() == 0 {
			return x
		}
		return cap // may underflow and wrap to anything
	case "*":
		p := big.NewInt(0).Mul(ev.bound(e.X, ctx), ev.bound(e.Y, ctx))
		if p.Cmp(cap) > 0 {
			ev.reportf(e.Line, "product may need %d bits but is computed in a %d-bit context (significant bits lost)", p.BitLen(), ctx)
			return cap
		}
		return p
	case "/":
		return ev.bound(e.X, ctx)
	case "%":
		x := ev.bound(e.X, ctx)
		y := ev.bound(e.Y, ctx)
		if y.Sign() > 0 {
			m := big.NewInt(0).Sub(y, big.NewInt(1))
			return minBig(x, m)
		}
		return x
	case "<<":
		x := ev.bound(e.X, ctx)
		if num, ok := e.Y.(Num); ok && num.Val < 1024 {
			s := big.NewInt(0).Lsh(x, uint(num.Val))
			if s.Cmp(cap) > 0 {
				ev.reportf(e.Line, "left shift may need %d bits but is computed in a %d-bit context (significant bits lost)", s.BitLen(), ctx)
				return cap
			}
			return s
		}
		return cap
	case ">>":
		x := ev.bound(e.X, ctx)
		if num, ok := e.Y.(Num); ok && num.Val < 1024 {
			return big.NewInt(0).Rsh(x, uint(num.Val))
		}
		return x
	case "&":
		return minBig(ev.bound(e.X, ctx), ev.bound(e.Y, ctx))
	case "|", "^":
		x := ev.bound(e.X, ctx)
		y := ev.bound(e.Y, ctx)
		w := x.BitLen()
		if y.BitLen() > w {
			w = y.BitLen()
		}
		if w == 0 {
			return big.NewInt(0)
		}
		return minBig(maxOf(w), cap)
	default:
		return cap
	}
}

// maxOf returns 2^w - 1.
func maxOf(w int) *big.Int {
	if w <= 0 {
		return big.NewInt(0)
	}
	one := big.NewInt(1)
	return big.NewInt(0).Sub(big.NewInt(0).Lsh(one, uint(w)), one)
}

func minBig(a, b *big.Int) *big.Int {
	if a.Cmp(b) <= 0 {
		return a
	}
	return b
}
