package netlist

import "fmt"

// NetKind classifies a net by its declaration.
type NetKind uint8

const (
	// NetInput is an input port: driven by the environment.
	NetInput NetKind = iota
	// NetOutput is an output port (wire or reg).
	NetOutput
	// NetWire is an internal combinational net.
	NetWire
	// NetReg is an internal storage element.
	NetReg
)

// String names the kind for diagnostics.
func (k NetKind) String() string {
	switch k {
	case NetInput:
		return "input port"
	case NetOutput:
		return "output port"
	case NetWire:
		return "wire"
	default:
		return "register"
	}
}

// DriverKind classifies how a net is driven.
type DriverKind uint8

const (
	// DriveAssign is a continuous assign or wire initialiser.
	DriveAssign DriverKind = iota
	// DriveAlways is a non-blocking assignment in an always block.
	DriveAlways
)

// Driver is one source of a net's value, with enough context to walk the
// dataflow: the driving expression, the guarding conditions (for
// sequential drivers), and which always block it sits in.
type Driver struct {
	Kind  DriverKind
	Expr  Expr
	Line  int
	Block int    // index into Module.Always for DriveAlways; -1 otherwise
	Conds []Expr // enclosing if conditions, outermost first (DriveAlways)
}

// Net is one named signal of the design with its declaration facts and
// every driver recorded during elaboration.
type Net struct {
	Name    string
	Width   int
	Kind    NetKind
	Reg     bool // storage element: reg decl or "output reg" port
	Line    int
	Drivers []Driver
}

// Design is the elaborated netlist: the net table plus the driver graph,
// ready for the analysis passes. Reference-level problems found during
// elaboration (undeclared identifiers, duplicate declarations, drives
// into input ports, out-of-range selects) are recorded as "resolve"
// diagnostics rather than hard errors, so a single run reports
// everything wrong with a module.
type Design struct {
	Module *Module
	File   string
	Nets   map[string]*Net
	Order  []string // declaration order, for deterministic reports

	resolveDiags []Diag
}

// Elaborate builds the netlist IR from a parsed module.
func Elaborate(m *Module, file string) *Design {
	d := &Design{Module: m, File: file, Nets: map[string]*Net{}}
	declare := func(name string, width int, kind NetKind, reg bool, line int) {
		if prev, dup := d.Nets[name]; dup {
			d.reportf(line, name, "%s %q already declared at line %d", kind, name, prev.Line)
			return
		}
		d.Nets[name] = &Net{Name: name, Width: width, Kind: kind, Reg: reg, Line: line}
		d.Order = append(d.Order, name)
	}
	for _, p := range m.Ports {
		kind := NetOutput
		if p.Input {
			kind = NetInput
		}
		declare(p.Name, p.Width, kind, p.Reg, p.Line)
	}
	for _, dc := range m.Decls {
		kind := NetWire
		if dc.Reg {
			kind = NetReg
		}
		declare(dc.Name, dc.Width, kind, dc.Reg, dc.Line)
	}
	for _, a := range m.Assigns {
		if a.Decl {
			declare(a.Target, a.Width, NetWire, false, a.Line)
		}
	}

	// Attach drivers and check references.
	for _, a := range m.Assigns {
		n := d.Nets[a.Target]
		if n == nil {
			d.reportf(a.Line, a.Target, "assign to undeclared identifier %q", a.Target)
		} else if n.Kind == NetInput {
			d.reportf(a.Line, a.Target, "assign drives input port %q", a.Target)
		} else {
			n.Drivers = append(n.Drivers, Driver{Kind: DriveAssign, Expr: a.Expr, Line: a.Line, Block: -1})
		}
		d.checkExpr(a.Expr)
	}
	for bi, al := range m.Always {
		if _, ok := d.Nets[al.Clock]; !ok {
			d.reportf(al.Line, al.Clock, "undeclared identifier %q used as clock", al.Clock)
		}
		d.attachStmts(al.Body, bi, nil)
	}
	return d
}

// attachStmts walks an always-block body, recording one DriveAlways per
// non-blocking assignment with the condition stack guarding it.
func (d *Design) attachStmts(stmts []Stmt, block int, conds []Expr) {
	for _, s := range stmts {
		switch s := s.(type) {
		case NonBlocking:
			n := d.Nets[s.Target]
			if n == nil {
				d.reportf(s.Line, s.Target, "assignment to undeclared identifier %q", s.Target)
			} else if n.Kind == NetInput {
				d.reportf(s.Line, s.Target, "assignment drives input port %q", s.Target)
			} else {
				n.Drivers = append(n.Drivers, Driver{
					Kind: DriveAlways, Expr: s.Expr, Line: s.Line, Block: block,
					Conds: append([]Expr(nil), conds...),
				})
			}
			d.checkExpr(s.Expr)
		case If:
			d.checkExpr(s.Cond)
			inner := append(append([]Expr(nil), conds...), s.Cond)
			d.attachStmts(s.Then, block, inner)
			d.attachStmts(s.Else, block, inner)
		}
	}
}

// checkExpr verifies every reference resolves. Select bounds are NOT a
// resolution concern: an out-of-range part-select is a width defect
// (checked by the width pass), and classifying it here would
// short-circuit the rest of the suite over a module that still has a
// perfectly analysable structure.
func (d *Design) checkExpr(e Expr) {
	switch e := e.(type) {
	case Num:
	case Ref:
		if _, ok := d.Nets[e.Name]; !ok {
			d.reportf(e.Line, e.Name, "undeclared identifier %q", e.Name)
		}
	case Select:
		d.checkExpr(e.X)
	case Unary:
		d.checkExpr(e.X)
	case Binary:
		d.checkExpr(e.X)
		d.checkExpr(e.Y)
	case Ternary:
		d.checkExpr(e.Cond)
		d.checkExpr(e.Then)
		d.checkExpr(e.Else)
	case Concat:
		for _, part := range e.Parts {
			d.checkExpr(part)
		}
	}
}

func (d *Design) reportf(line int, net string, format string, args ...any) {
	d.resolveDiags = append(d.resolveDiags, Diag{
		File: d.File, Line: line, Net: net, Analyzer: "resolve",
		Message: fmt.Sprintf(format, args...),
	})
}

// reads appends the names of every net an expression references.
func reads(e Expr, into []string) []string {
	switch e := e.(type) {
	case Ref:
		into = append(into, e.Name)
	case Select:
		into = reads(e.X, into)
	case Unary:
		into = reads(e.X, into)
	case Binary:
		into = reads(e.X, into)
		into = reads(e.Y, into)
	case Ternary:
		into = reads(e.Cond, into)
		into = reads(e.Then, into)
		into = reads(e.Else, into)
	case Concat:
		for _, part := range e.Parts {
			into = reads(part, into)
		}
	}
	return into
}
