package netlist

import (
	"fmt"
	"sort"
)

// Diag is one analyzer finding, pinned to a source position and the net
// it concerns.
type Diag struct {
	File     string
	Line     int
	Net      string
	Analyzer string
	Message  string
}

// String renders the finding vet-style: file:line: [analyzer] message.
func (d Diag) String() string {
	file := d.File
	if file == "" {
		file = "<verilog>"
	}
	return fmt.Sprintf("%s:%d: [%s] %s", file, d.Line, d.Analyzer, d.Message)
}

// Options configures one analysis run.
type Options struct {
	// File names the source in diagnostics (defaults to "<verilog>").
	File string
	// ExpectedWidths, when non-nil, enables the "iface" pass: every
	// listed net must exist with exactly the given declared width. The
	// RTL layer derives this map from the operation wordlength specs
	// (model.OpSpec), tying the netlist back to the formats the
	// allocator optimised for.
	ExpectedWidths map[string]int
	// Extra appends caller-built problem-aware passes (the rtl layer's
	// "equiv" symbolic prover rides here). They run over the elaborated
	// design after the built-in suite — and, like it, only when every
	// reference resolves — and their findings flow through the same
	// //rtl:allow suppression and stale-allow accounting.
	Extra []func(*Design) []Diag
}

// Analyze parses the source and runs the full pass suite. A parse
// failure is returned as an error (the module has no analysable
// structure); everything else is a []Diag, empty when the module is
// clean. //rtl:allow annotations suppress matching findings.
func Analyze(src string, opts Options) ([]Diag, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return AnalyzeModule(m, opts), nil
}

// AnalyzeModule runs the pass suite over an already-parsed module.
func AnalyzeModule(m *Module, opts Options) []Diag {
	file := opts.File
	if file == "" {
		file = "<verilog>"
	}
	d := Elaborate(m, file)
	var diags []Diag
	suiteRan := false
	if len(d.resolveDiags) > 0 {
		// Unresolved references make the driver/dataflow graphs
		// meaningless; report the resolution problems alone.
		diags = d.resolveDiags
	} else {
		suiteRan = true
		diags = append(diags, d.checkCombLoops()...)
		diags = append(diags, d.checkDrivers()...)
		diags = append(diags, d.checkDeadLogic()...)
		diags = append(diags, d.checkWidths()...)
		diags = append(diags, d.checkInterface(opts.ExpectedWidths)...)
		for _, pass := range opts.Extra {
			diags = append(diags, pass(d)...)
		}
	}
	used := make([]bool, len(m.allow.sites))
	kept := diags[:0]
	for _, diag := range diags {
		if site, ok := m.allow.byKey[allowKey{diag.Line, diag.Analyzer}]; ok {
			used[site] = true
			continue
		}
		kept = append(kept, diag)
	}
	if suiteRan {
		// A reviewed exception that excuses nothing has outlived the
		// code it excused: report the pragma itself. Skipped when the
		// suite short-circuited on resolve errors — with most passes
		// unrun, "suppressed nothing" would be unfounded.
		for i, site := range m.allow.sites {
			if !used[i] {
				kept = append(kept, Diag{File: file, Line: site.line, Analyzer: "allow",
					Message: fmt.Sprintf("//rtl:allow %s suppresses no %s finding (stale exception; remove it)",
						site.analyzer, site.analyzer)})
			}
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		return a.Message < b.Message
	})
	return kept
}

// checkInterface is the "iface" pass: the module's declared formats must
// match the wordlength specification handed in by the caller.
func (d *Design) checkInterface(expected map[string]int) []Diag {
	if expected == nil {
		return nil
	}
	names := make([]string, 0, len(expected))
	for name := range expected {
		names = append(names, name)
	}
	sort.Strings(names)
	var diags []Diag
	for _, name := range names {
		want := expected[name]
		n := d.Nets[name]
		if n == nil {
			diags = append(diags, Diag{File: d.File, Line: d.Module.Line, Net: name, Analyzer: "iface",
				Message: fmt.Sprintf("wordlength spec expects net %q (%d bits), not found in module", name, want)})
			continue
		}
		if n.Width != want {
			diags = append(diags, Diag{File: d.File, Line: n.Line, Net: name, Analyzer: "iface",
				Message: fmt.Sprintf("net %q is %d bits, but the operation wordlength spec requires %d bits", name, n.Width, want)})
		}
	}
	return diags
}
