// Package sem is a cycle-accurate symbolic evaluator over the netlist
// IR: the engine behind the "equiv" analyzer. A single-clock module is
// unrolled edge by edge across a bounded number of cycles; registers
// become per-cycle symbolic states and every combinational expression
// becomes a word-level DAG over unbounded integers with one explicit
// width-sensitive operator, Trunc (keep the low w bits — the value
// modulo 2^w). Nodes are hash-consed and canonicalized on construction,
// so semantic equality of two expressions built through the same
// Builder reduces to pointer equality.
//
// Canonicalization is deliberately modest — strong enough to close the
// gap between the shapes internal/rtl emits and the reference
// expressions model.Reference builds, and nothing more:
//
//   - + and * are flattened n-ary, constant-folded, and sorted
//     (commutativity and associativity);
//   - repeated addends collapse into coefficient·term, so x+x cannot
//     double the argument list;
//   - Trunc_w(x) is dropped when x is provably non-negative and below
//     2^w (zero-padding is the numeric identity);
//   - nested truncations collapse to the narrowest width;
//   - inside Trunc_w, any Trunc_v with v >= w sitting under +, - and *
//     edges is stripped — a congruence of the ring Z/2^w.
//
// No distributivity, no subtraction normal form, no bit-level
// reasoning: an inequality verdict therefore means "not equal up to
// these rules", which the checker reports as a counterexample
// diagnostic rather than silently passing.
package sem

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

type op uint8

const (
	opConst op = iota
	opVar
	opAdd
	opSub
	opMul
	opTrunc
)

// Node is one hash-consed expression DAG node. Nodes are immutable and
// unique per Builder: two structurally equal canonical expressions are
// the same pointer.
type Node struct {
	id   int
	op   op
	w    int      // Trunc: kept width; Var: declared width
	val  *big.Int // Const value (always non-negative)
	name string   // Var name
	args []*Node
	max  *big.Int // inclusive upper bound on the value; nil = unbounded
	sub  bool     // subtree has an untruncated Sub: value may be negative
}

// budgetExceeded aborts construction when the DAG outgrows the budget;
// Prove (and the rtl pass wrapper) recover it into a "cannot prove"
// diagnostic, so adversarial inputs degrade to a finding, not a hang.
type budgetExceeded struct{}

// Builder interns canonical nodes. It implements model.Arith[*Node], so
// model.Reference can build reference DAGs directly.
type Builder struct {
	nodes     map[string]*Node
	stripMemo map[stripKey]*Node
	nextID    int
	work      int
}

type stripKey struct {
	id int
	w  int
}

// maxWork bounds total interned argument volume; beyond it the builder
// panics with budgetExceeded (recovered by Prove into a diagnostic).
const maxWork = 1 << 21

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{nodes: map[string]*Node{}, stripMemo: map[stripKey]*Node{}}
}

func (b *Builder) intern(key string, n *Node) *Node {
	if have, ok := b.nodes[key]; ok {
		return have
	}
	b.work += 1 + len(n.args)
	if b.work > maxWork {
		panic(budgetExceeded{})
	}
	n.id = b.nextID
	b.nextID++
	b.nodes[key] = n
	return n
}

// Const interns a small non-negative constant.
func (b *Builder) Const(v uint64) *Node { return b.bigConst(new(big.Int).SetUint64(v)) }

func (b *Builder) bigConst(v *big.Int) *Node {
	if v.Sign() < 0 {
		// Callers only fold non-negative values; a negative constant
		// would poison max-bound reasoning.
		panic(fmt.Sprintf("sem: negative constant %v", v))
	}
	v = new(big.Int).Set(v)
	return b.intern("c|"+v.String(), &Node{op: opConst, val: v, max: v})
}

// Var interns a free symbolic variable of the given declared width: its
// value ranges over [0, 2^width).
func (b *Builder) Var(name string, width int) *Node {
	if width < 1 {
		width = 1
	}
	key := fmt.Sprintf("v|%d|%s", width, name)
	return b.intern(key, &Node{op: opVar, w: width, name: name, max: maxOfWidth(width)})
}

// Add returns the canonical sum x + y.
func (b *Builder) Add(x, y *Node) *Node { return b.addN([]*Node{x, y}) }

// Mul returns the canonical product x * y.
func (b *Builder) Mul(x, y *Node) *Node { return b.mulN([]*Node{x, y}) }

// Sub returns the canonical difference x - y. Differences are kept
// binary and conservatively marked possibly-negative, so a Trunc above
// them is never dropped — exactly the emitted RTL's mod-2^w wrap.
func (b *Builder) Sub(x, y *Node) *Node {
	if y.op == opConst && y.val.Sign() == 0 {
		return x
	}
	if x == y {
		return b.Const(0)
	}
	if x.op == opConst && y.op == opConst && x.val.Cmp(y.val) >= 0 {
		return b.bigConst(new(big.Int).Sub(x.val, y.val))
	}
	key := fmt.Sprintf("s|%d|%d", x.id, y.id)
	return b.intern(key, &Node{op: opSub, args: []*Node{x, y}, max: x.max, sub: true})
}

// Trunc returns the canonical Trunc_w(x): x modulo 2^w.
func (b *Builder) Trunc(w int, x *Node) *Node {
	if w < 1 {
		w = 1
	}
	x = b.strip(x, w)
	if x.op == opTrunc && x.w <= w {
		// The inner truncation is at least as narrow; the outer one is
		// a no-op (wider inner truncs were already stripped).
		return x
	}
	if x.op == opConst {
		return b.bigConst(new(big.Int).Mod(x.val, pow2(w)))
	}
	if x.op == opSub && x.args[0].op == opConst && x.args[1].op == opConst {
		d := new(big.Int).Sub(x.args[0].val, x.args[1].val)
		return b.bigConst(d.Mod(d, pow2(w)))
	}
	if !x.sub && x.max != nil && x.max.Cmp(pow2(w)) < 0 {
		return x // provably fits: truncation cannot change the value
	}
	key := fmt.Sprintf("t|%d|%d", w, x.id)
	return b.intern(key, &Node{op: opTrunc, w: w, args: []*Node{x}, max: maxOfWidth(w)})
}

// strip removes every Trunc_v with v >= w reachable from x through
// +, - and * edges (including x itself): inside a w-bit context those
// truncations are congruences of Z/2^w and carry no information.
func (b *Builder) strip(x *Node, w int) *Node {
	key := stripKey{x.id, w}
	if r, ok := b.stripMemo[key]; ok {
		return r
	}
	r := x
	switch x.op {
	case opTrunc:
		if x.w >= w {
			r = b.strip(x.args[0], w)
		}
	case opAdd, opMul:
		args := make([]*Node, len(x.args))
		changed := false
		for i, a := range x.args {
			args[i] = b.strip(a, w)
			changed = changed || args[i] != a
		}
		if changed {
			if x.op == opAdd {
				r = b.addN(args)
			} else {
				r = b.mulN(args)
			}
		}
	case opSub:
		a0, a1 := b.strip(x.args[0], w), b.strip(x.args[1], w)
		if a0 != x.args[0] || a1 != x.args[1] {
			r = b.Sub(a0, a1)
		}
	}
	b.stripMemo[key] = r
	return r
}

// addN builds the canonical n-ary sum: flatten nested sums, fold
// constants, collapse repeated terms into coefficient·term, sort by
// node identity.
func (b *Builder) addN(in []*Node) *Node {
	k := new(big.Int)
	var xs []*Node
	var flatten func(n *Node)
	flatten = func(n *Node) {
		switch n.op {
		case opAdd:
			for _, a := range n.args {
				flatten(a)
			}
		case opConst:
			k.Add(k, n.val)
		default:
			xs = append(xs, n)
		}
	}
	for _, a := range in {
		flatten(a)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i].id < xs[j].id })
	var terms []*Node
	for i := 0; i < len(xs); {
		j := i
		for j < len(xs) && xs[j] == xs[i] {
			j++
		}
		if c := j - i; c > 1 {
			terms = append(terms, b.mulN([]*Node{b.Const(uint64(c)), xs[i]}))
		} else {
			terms = append(terms, xs[i])
		}
		i = j
	}
	if k.Sign() != 0 || len(terms) == 0 {
		terms = append(terms, b.bigConst(k))
	}
	if len(terms) == 1 {
		return terms[0]
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].id < terms[j].id })
	max := new(big.Int)
	neg := false
	ids := make([]string, len(terms))
	for i, t := range terms {
		max = boundAdd(max, t.max)
		neg = neg || t.sub
		ids[i] = fmt.Sprint(t.id)
	}
	key := "a|" + strings.Join(ids, ",")
	return b.intern(key, &Node{op: opAdd, args: terms, max: max, sub: neg})
}

// mulN builds the canonical n-ary product: flatten, fold constants,
// sort by node identity.
func (b *Builder) mulN(in []*Node) *Node {
	k := big.NewInt(1)
	var xs []*Node
	var flatten func(n *Node)
	flatten = func(n *Node) {
		switch n.op {
		case opMul:
			for _, a := range n.args {
				flatten(a)
			}
		case opConst:
			k.Mul(k, n.val)
		default:
			xs = append(xs, n)
		}
	}
	for _, a := range in {
		flatten(a)
	}
	if k.Sign() == 0 {
		return b.Const(0)
	}
	if k.Cmp(big.NewInt(1)) != 0 {
		xs = append(xs, b.bigConst(k))
	}
	if len(xs) == 0 {
		return b.bigConst(k)
	}
	if len(xs) == 1 {
		return xs[0]
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i].id < xs[j].id })
	max := big.NewInt(1)
	neg := false
	ids := make([]string, len(xs))
	for i, t := range xs {
		max = boundMul(max, t.max)
		neg = neg || t.sub
		ids[i] = fmt.Sprint(t.id)
	}
	key := "m|" + strings.Join(ids, ",")
	return b.intern(key, &Node{op: opMul, args: xs, max: max, sub: neg})
}

// String renders the node for diagnostics, capped so counterexamples
// stay one-line readable.
func (n *Node) String() string {
	var sb strings.Builder
	n.render(&sb)
	s := sb.String()
	const lim = 120
	if len(s) > lim {
		s = s[:lim] + "…"
	}
	return s
}

func (n *Node) render(sb *strings.Builder) {
	if sb.Len() > 160 {
		return
	}
	switch n.op {
	case opConst:
		sb.WriteString(n.val.String())
	case opVar:
		sb.WriteString(n.name)
	case opTrunc:
		fmt.Fprintf(sb, "trunc%d(", n.w)
		n.args[0].render(sb)
		sb.WriteByte(')')
	case opSub:
		sb.WriteByte('(')
		n.args[0].render(sb)
		sb.WriteString(" - ")
		n.args[1].render(sb)
		sb.WriteByte(')')
	case opAdd, opMul:
		sep := " + "
		if n.op == opMul {
			sep = " * "
		}
		sb.WriteByte('(')
		for i, a := range n.args {
			if i > 0 {
				sb.WriteString(sep)
			}
			a.render(sb)
		}
		sb.WriteByte(')')
	}
}

// maxBoundBits caps upper-bound tracking: past it the bound degrades to
// nil ("unbounded"), which only costs a Trunc that could have been
// dropped — never soundness. Without the cap a squaring chain makes
// bound arithmetic itself quadratic in the DAG size.
const maxBoundBits = 1 << 16

func boundAdd(a, b *big.Int) *big.Int {
	if a == nil || b == nil {
		return nil
	}
	r := new(big.Int).Add(a, b)
	if r.BitLen() > maxBoundBits {
		return nil
	}
	return r
}

func boundMul(a, b *big.Int) *big.Int {
	if a == nil || b == nil {
		return nil
	}
	r := new(big.Int).Mul(a, b)
	if r.BitLen() > maxBoundBits {
		return nil
	}
	return r
}

func pow2(w int) *big.Int { return new(big.Int).Lsh(big.NewInt(1), uint(w)) }

func maxOfWidth(w int) *big.Int {
	return new(big.Int).Sub(pow2(w), big.NewInt(1))
}
