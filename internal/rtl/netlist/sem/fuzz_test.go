package sem

import (
	"testing"

	"repro/internal/rtl/netlist"
)

// FuzzSemUnroll fuzzes the symbolic unroller: any module the front end
// accepts must prove or report cleanly — never panic, never hang past
// the work budget — under the generated-datapath protocol (controller
// started, control inputs held low, every register checked against a
// free variable it almost never equals, so the diagnostic path is
// exercised too).
func FuzzSemUnroll(f *testing.F) {
	f.Add(`module m (
  input  wire clk,
  input  wire [3:0] a,
  input  wire [3:0] b,
  output wire [3:0] y
);
  reg [3:0] acc;
  always @(posedge clk) begin
    acc <= a + b;
  end
  assign y = acc;
endmodule
`)
	f.Add(`module m (
  input  wire clk,
  input  wire rst,
  input  wire start,
  input  wire [7:0] in_a_0,
  output wire [7:0] out_y,
  output reg done
);
  reg running;
  reg [3:0] cyc;
  reg [7:0] r_y;
  wire [7:0] u0_y = in_a_0 + in_a_0;
  always @(posedge clk) begin
    if (rst) begin
      running <= 1'b0;
      done <= 1'b0;
      cyc <= 4'd0;
    end else begin
      if (start && !running) begin
        running <= 1'b1;
        done <= 1'b0;
        cyc <= 4'd0;
      end else begin
        if (running) begin
          cyc <= cyc + 4'd1;
          if (cyc == 4'd1) begin
            r_y <= u0_y;
          end
          if (cyc == 4'd2) begin
            running <= 1'b0;
            done <= 1'b1;
          end
        end
      end
    end
  end
  assign out_y = r_y;
endmodule
`)
	f.Add(`module m (
  input  wire clk,
  input  wire [3:0] a,
  output wire [15:0] y
);
  reg [15:0] p;
  wire [7:0] w = {4'd0, a};
  always @(posedge clk) begin
    p <= w * w - {12'd0, a};
  end
  assign y = (a == 4'd3) ? p : p[15:0];
endmodule
`)
	f.Add("module m (\n  input wire clk\n);\n  reg r;\n  always @(posedge clk) begin\n    r <= r;\n  end\nendmodule\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := netlist.Parse(src)
		if err != nil {
			return
		}
		d := netlist.Elaborate(m, "fuzz.v")
		b := NewBuilder()
		spec := Spec{
			Cycles: 4,
			Inputs: map[string]*Node{"clk": b.Const(0), "rst": b.Const(0), "start": b.Const(0)},
			Init:   map[string]*Node{"running": b.Const(1), "cyc": b.Const(0), "done": b.Const(0)},
		}
		for name, n := range d.Nets {
			if n.Reg {
				spec.Checks = append(spec.Checks, Check{
					Net: name, Cycle: 3, Want: b.Var("want#"+name, n.Width), Label: "a fuzz obligation",
				})
			}
		}
		// Prove must terminate without panicking on anything that
		// parses; its verdicts are unconstrained here.
		Prove(d, b, spec)
	})
}
