package sem

import (
	"strings"
	"testing"

	"repro/internal/rtl/netlist"
)

// TestCanonicalForm pins the algebraic identities the equiv analyzer's
// soundness argument leans on: semantic equality within the canonical
// fragment must reduce to pointer equality.
func TestCanonicalForm(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	z := b.Var("z", 8)

	if b.Add(x, y) != b.Add(y, x) {
		t.Error("addition is not commutative")
	}
	if b.Mul(x, y) != b.Mul(y, x) {
		t.Error("multiplication is not commutative")
	}
	if b.Add(b.Add(x, y), z) != b.Add(x, b.Add(y, z)) {
		t.Error("addition is not associative")
	}
	if b.Add(x, x) != b.Mul(b.Const(2), x) {
		t.Error("x+x does not collapse to 2*x")
	}
	if b.Add(b.Const(3), b.Const(4)) != b.Const(7) {
		t.Error("constants do not fold under +")
	}
	if b.Mul(b.Const(0), x) != b.Const(0) {
		t.Error("0*x does not fold to 0")
	}
	if b.Sub(x, x) != b.Const(0) {
		t.Error("x-x does not fold to 0")
	}
	if b.Sub(x, b.Const(0)) != x {
		t.Error("x-0 does not fold to x")
	}
}

func TestTruncCanonicalization(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	n4 := b.Var("n", 4)

	// Zero-padding is the numeric identity: truncating to a width the
	// value provably fits is a no-op.
	if b.Trunc(8, n4) != n4 {
		t.Error("widening trunc of a 4-bit var did not vanish")
	}
	// Nested truncations collapse to the narrowest.
	if got := b.Trunc(8, b.Trunc(4, x)); got != b.Trunc(4, x) {
		t.Errorf("trunc8(trunc4(x)) = %s, want trunc4(x)", got)
	}
	if got := b.Trunc(4, b.Trunc(8, x)); got != b.Trunc(4, x) {
		t.Errorf("trunc4(trunc8(x)) = %s, want trunc4(x)", got)
	}
	// Ring congruence: a same-width truncation under a + edge inside a
	// truncated context carries no information.
	inner := b.Trunc(8, b.Add(x, y))
	if inner == b.Add(x, y) {
		t.Fatal("trunc8(x+y) folded away; the sum can overflow 8 bits")
	}
	if got := b.Trunc(8, b.Add(inner, z(b))); got != b.Trunc(8, b.Add(b.Add(x, y), z(b))) {
		t.Errorf("inner same-width trunc not stripped: %s", got)
	}
	// Subtraction may wrap, so its truncation is never dropped.
	s := b.Sub(x, y)
	if b.Trunc(8, s) == s {
		t.Error("trunc8(x-y) dropped; difference may be negative")
	}
	// Constant differences fold through the wrap.
	if got := b.Trunc(4, b.Sub(b.Const(1), b.Const(2))); got != b.Const(15) {
		t.Errorf("trunc4(1-2) = %s, want 15", got)
	}
}

func z(b *Builder) *Node { return b.Var("zz", 8) }

func elaborate(t *testing.T, src string) *netlist.Design {
	t.Helper()
	m, err := netlist.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return netlist.Elaborate(m, "test.v")
}

const accModule = `module m (
  input  wire clk,
  input  wire [3:0] a,
  input  wire [3:0] b,
  output wire [3:0] y
);
  reg [3:0] acc;
  always @(posedge clk) begin
    acc <= a + b;
  end
  assign y = acc;
endmodule
`

// TestProveAccumulator proves a one-register module against its obvious
// reference and checks a wrong reference yields a counterexample naming
// the net and cycle.
func TestProveAccumulator(t *testing.T) {
	d := elaborate(t, accModule)
	b := NewBuilder()
	a := b.Var("a", 4)
	bb := b.Var("b", 4)
	want := b.Trunc(4, b.Add(a, bb))
	diags := Prove(d, b, Spec{
		Cycles: 1,
		Inputs: map[string]*Node{"clk": b.Const(0), "a": a, "b": bb},
		Checks: []Check{{Net: "y", Cycle: 0, Want: want, Label: "the sum"}},
	})
	if len(diags) != 0 {
		t.Fatalf("correct obligation not proved: %v", diags)
	}

	b2 := NewBuilder()
	a2 := b2.Var("a", 4)
	bb2 := b2.Var("b", 4)
	wrong := b2.Trunc(4, b2.Sub(a2, bb2))
	diags = Prove(d, b2, Spec{
		Cycles: 1,
		Inputs: map[string]*Node{"clk": b2.Const(0), "a": a2, "b": bb2},
		Checks: []Check{{Net: "y", Cycle: 0, Want: wrong, Label: "the difference"}},
	})
	if len(diags) != 1 {
		t.Fatalf("want one counterexample, got: %v", diags)
	}
	msg := diags[0].String()
	for _, frag := range []string{`"y" diverges`, "at cycle 0", "[equiv]"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("counterexample %q missing %q", msg, frag)
		}
	}
}

// TestProveRegisterPipeline checks cycle accuracy: a two-stage delay
// line holds the input only after the second edge.
func TestProveRegisterPipeline(t *testing.T) {
	src := `module m (
  input  wire clk,
  input  wire [3:0] a,
  output wire [3:0] y
);
  reg [3:0] s0;
  reg [3:0] s1;
  always @(posedge clk) begin
    s0 <= a;
    s1 <= s0;
  end
  assign y = s1;
endmodule
`
	d := elaborate(t, src)
	b := NewBuilder()
	a := b.Var("a", 4)
	diags := Prove(d, b, Spec{
		Cycles: 2,
		Inputs: map[string]*Node{"clk": b.Const(0), "a": a},
		Checks: []Check{{Net: "y", Cycle: 1, Want: a, Label: "the delayed input"}},
	})
	if len(diags) != 0 {
		t.Fatalf("two-edge delay not proved: %v", diags)
	}
	// One edge early the register still holds its power-up value.
	b2 := NewBuilder()
	a2 := b2.Var("a", 4)
	diags = Prove(d, b2, Spec{
		Cycles: 1,
		Inputs: map[string]*Node{"clk": b2.Const(0), "a": a2},
		Checks: []Check{{Net: "y", Cycle: 0, Want: a2, Label: "the delayed input"}},
	})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "diverges") {
		t.Fatalf("premature check did not diverge: %v", diags)
	}
}

// TestCannotProveSymbolicControl pins the soundness posture: control
// that does not fold to a constant is reported, never assumed.
func TestCannotProveSymbolicControl(t *testing.T) {
	src := `module m (
  input  wire clk,
  input  wire [3:0] a,
  output wire [3:0] y
);
  reg [3:0] r;
  always @(posedge clk) begin
    if (a == 4'd3) begin
      r <= a;
    end
  end
  assign y = r;
endmodule
`
	d := elaborate(t, src)
	b := NewBuilder()
	a := b.Var("a", 4)
	diags := Prove(d, b, Spec{
		Cycles: 1,
		Inputs: map[string]*Node{"clk": b.Const(0), "a": a},
		Checks: []Check{{Net: "y", Cycle: 0, Want: a, Label: "the input"}},
	})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "cannot prove") {
		t.Fatalf("symbolic control must yield a cannot-prove finding, got: %v", diags)
	}
}

// TestBudgetExceeded checks the DoS guard: a squaring chain doubles its
// argument volume per level, and the prover must degrade to a single
// "cannot prove" finding instead of exhausting memory.
func TestBudgetExceeded(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("module m (\n  input  wire clk,\n  input  wire [3:0] a,\n  output wire [3:0] y\n);\n")
	sb.WriteString("  wire [3:0] w0 = a;\n")
	const levels = 30
	for i := 1; i <= levels; i++ {
		// Each level squares the previous: the flattened product's
		// argument list doubles per level.
		sb.WriteString("  wire [3:0] w")
		sb.WriteString(itoa(i))
		sb.WriteString(" = w")
		sb.WriteString(itoa(i - 1))
		sb.WriteString(" * w")
		sb.WriteString(itoa(i - 1))
		sb.WriteString(";\n")
	}
	sb.WriteString("  reg [3:0] r;\n  always @(posedge clk) begin\n    r <= w")
	sb.WriteString(itoa(levels))
	sb.WriteString(";\n  end\n  assign y = r;\nendmodule\n")

	d := elaborate(t, sb.String())
	b := NewBuilder()
	diags := Prove(d, b, Spec{
		Cycles: 1,
		Inputs: map[string]*Node{"clk": b.Const(0)},
		Checks: []Check{{Net: "y", Cycle: 0, Want: b.Const(0), Label: "anything"}},
	})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "prover's budget") {
		t.Fatalf("want one budget finding, got: %v", diags)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
