package sem

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/rtl/netlist"
)

// Spec is one proof obligation set for a module: how long to unroll,
// what the environment drives, where the registers start, and which net
// must hold which symbolic value after which clock edge.
type Spec struct {
	// Cycles is the number of clock edges to unroll (the schedule's
	// makespan for generated datapaths).
	Cycles int
	// Inputs gives each input port's value, held stable across the whole
	// unrolling (the generated module's protocol: operands are applied
	// before start and held). Control inputs (rst, start) are typically
	// concrete constants; data ports free variables. Ports not listed
	// become free variables on first read.
	Inputs map[string]*Node
	// Init is the register state entering cycle 0 (for generated
	// modules: the concrete controller state just after the start edge —
	// running=1, cyc=0, done=0). Registers not listed start as fresh
	// free variables, i.e. "unknown power-up value".
	Init map[string]*Node
	// Checks are the obligations, each verified in the state after its
	// cycle's clock edge commits.
	Checks []Check
}

// Check requires net Net to hold exactly Want after clock edge Cycle.
type Check struct {
	Net   string
	Cycle int
	Want  *Node
	Label string // what the value is, named in diagnostics
}

// Prove unrolls the design for spec.Cycles clock edges and verifies
// every check by canonical-DAG identity. It returns one diagnostic per
// failed or undecidable obligation (analyzer "equiv"), empty when every
// obligation is proved. Anything outside the provable subset — a
// control condition that does not fold to a constant, an operator with
// no word-level model, a part-select above bit 0 — yields a "cannot
// prove" diagnostic rather than a pass: the checker never vouches for
// what it could not decide.
func Prove(d *netlist.Design, b *Builder, spec Spec) (diags []netlist.Diag) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(budgetExceeded); ok {
				diags = []netlist.Diag{{File: d.File, Line: d.Module.Line, Analyzer: "equiv",
					Message: "cannot prove: symbolic expression growth exceeds the prover's budget"}}
				return
			}
			panic(r)
		}
	}()

	u := &unroller{d: d, b: b, state: map[string]*Node{}, wires: map[string]*Node{},
		inputs: map[string]*Node{}}
	for name, v := range spec.Inputs {
		u.inputs[name] = v
	}
	for name, v := range spec.Init {
		u.state[name] = v
	}
	byCycle := map[int][]Check{}
	for _, c := range spec.Checks {
		if c.Cycle < 0 || c.Cycle >= spec.Cycles {
			diags = append(diags, u.diag(d.Module.Line, c.Net,
				"cannot prove: obligation for %q at cycle %d is outside the %d-cycle unrolling", c.Net, c.Cycle, spec.Cycles))
			continue
		}
		byCycle[c.Cycle] = append(byCycle[c.Cycle], c)
	}

	for t := 0; t < spec.Cycles; t++ {
		if err := u.step(); err != nil {
			diags = append(diags, u.diag(err.line, err.net,
				"cannot prove: %s (cycle %d is outside the provable subset)", err.msg, t))
			return diags
		}
		for _, c := range byCycle[t] {
			got, err := u.valueOf(c.Net)
			if err != nil {
				diags = append(diags, u.diag(err.line, c.Net,
					"cannot prove %s: %s", c.Label, err.msg))
				continue
			}
			if got != c.Want {
				line := d.Module.Line
				if n := d.Nets[c.Net]; n != nil {
					line = n.Line
				}
				diags = append(diags, u.diag(line, c.Net,
					"%q diverges from %s at cycle %d: module holds %s, reference requires %s",
					c.Net, c.Label, t, got, c.Want))
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

// unroller is the per-run evaluation state.
type unroller struct {
	d      *netlist.Design
	b      *Builder
	inputs map[string]*Node
	state  map[string]*Node // register values after the last edge
	wires  map[string]*Node // combinational memo, reset each edge
	stack  map[string]bool  // wire evaluation recursion guard
}

// semErr is an internal "outside the provable subset" condition.
type semErr struct {
	line int
	net  string
	msg  string
}

func errf(line int, net, format string, args ...any) *semErr {
	return &semErr{line: line, net: net, msg: fmt.Sprintf(format, args...)}
}

func (u *unroller) diag(line int, net, format string, args ...any) netlist.Diag {
	return netlist.Diag{File: u.d.File, Line: line, Net: net, Analyzer: "equiv",
		Message: fmt.Sprintf(format, args...)}
}

// step executes one clock edge: every always block's statements are
// walked with all control conditions folded concretely, right-hand
// sides evaluated against the pre-edge state, and the writes committed
// together (non-blocking semantics, later statements win).
func (u *unroller) step() *semErr {
	pending := map[string]*Node{}
	for _, al := range u.d.Module.Always {
		if err := u.exec(al.Body, pending); err != nil {
			return err
		}
	}
	for name, v := range pending {
		u.state[name] = v
	}
	u.wires = map[string]*Node{}
	return nil
}

func (u *unroller) exec(stmts []netlist.Stmt, pending map[string]*Node) *semErr {
	for _, s := range stmts {
		switch s := s.(type) {
		case netlist.NonBlocking:
			n := u.d.Nets[s.Target]
			if n == nil {
				return errf(s.Line, s.Target, "assignment to unknown net %q", s.Target)
			}
			v, err := u.eval(s.Expr)
			if err != nil {
				return err
			}
			pending[s.Target] = u.b.Trunc(n.Width, v)
		case netlist.If:
			c, err := u.eval(s.Cond)
			if err != nil {
				return err
			}
			taken, known := constBool(c)
			if !known {
				return errf(s.Cond.Pos(), "", "control condition does not fold to a constant")
			}
			branch := s.Then
			if !taken {
				branch = s.Else
			}
			if err := u.exec(branch, pending); err != nil {
				return err
			}
		}
	}
	return nil
}

// valueOf reads a net in the current (post-edge) state: registers from
// the state table, input ports from the environment, wires through
// their combinational definition.
func (u *unroller) valueOf(name string) (*Node, *semErr) {
	n := u.d.Nets[name]
	if n == nil {
		return nil, errf(u.d.Module.Line, name, "net %q not found in module", name)
	}
	switch {
	case n.Reg:
		if v, ok := u.state[name]; ok {
			return v, nil
		}
		// Never written: an unknown power-up value.
		v := u.b.Trunc(n.Width, u.b.Var(name+"#init", n.Width))
		u.state[name] = v
		return v, nil
	case n.Kind == netlist.NetInput:
		if v, ok := u.inputs[name]; ok {
			return v, nil
		}
		v := u.b.Var(name, n.Width)
		u.inputs[name] = v
		return v, nil
	default:
		return u.wireValue(n)
	}
}

// wireValue lazily evaluates a combinational net from its single assign
// driver, memoized per edge.
func (u *unroller) wireValue(n *netlist.Net) (*Node, *semErr) {
	if v, ok := u.wires[n.Name]; ok {
		return v, nil
	}
	if u.stack[n.Name] {
		return nil, errf(n.Line, n.Name, "combinational cycle through %q", n.Name)
	}
	var def *netlist.Driver
	for i := range n.Drivers {
		if n.Drivers[i].Kind == netlist.DriveAssign {
			if def != nil {
				return nil, errf(n.Line, n.Name, "wire %q has multiple drivers", n.Name)
			}
			def = &n.Drivers[i]
		}
	}
	if def == nil {
		return nil, errf(n.Line, n.Name, "wire %q has no combinational driver", n.Name)
	}
	if u.stack == nil {
		u.stack = map[string]bool{}
	}
	u.stack[n.Name] = true
	v, err := u.eval(def.Expr)
	u.stack[n.Name] = false
	if err != nil {
		return nil, err
	}
	u.wires[n.Name] = v
	return v, nil
}

// eval maps a netlist expression to its symbolic value in the current
// state. Control operators must fold concretely; the word-level subset
// (+, -, *, part-selects from bit 0, concatenation, constant shifts)
// stays symbolic.
func (u *unroller) eval(e netlist.Expr) (*Node, *semErr) {
	switch e := e.(type) {
	case netlist.Num:
		return u.b.Const(e.Val), nil
	case netlist.Ref:
		return u.valueOf(e.Name)
	case netlist.Select:
		if e.Lo != 0 {
			return nil, errf(e.Line, "", "part-select above bit 0 has no word-level model")
		}
		x, err := u.eval(e.X)
		if err != nil {
			return nil, err
		}
		return u.b.Trunc(e.Hi+1, x), nil
	case netlist.Unary:
		x, err := u.eval(e.X)
		if err != nil {
			return nil, err
		}
		if e.Op == "!" {
			if v, known := constBool(x); known {
				return u.boolConst(!v), nil
			}
			return nil, errf(e.Line, "", "operand of ! does not fold to a constant")
		}
		if e.Op == "-" && x.op == opConst && x.val.Sign() == 0 {
			return x, nil
		}
		return nil, errf(e.Line, "", "unary %s has no word-level model here", e.Op)
	case netlist.Binary:
		return u.evalBinary(e)
	case netlist.Ternary:
		c, err := u.eval(e.Cond)
		if err != nil {
			return nil, err
		}
		taken, known := constBool(c)
		if !known {
			return nil, errf(e.Line, "", "mux select does not fold to a constant")
		}
		if taken {
			return u.eval(e.Then)
		}
		return u.eval(e.Else)
	case netlist.Concat:
		return u.evalConcat(e)
	default:
		return nil, errf(e.Pos(), "", "unsupported expression form")
	}
}

func (u *unroller) evalBinary(e netlist.Binary) (*Node, *semErr) {
	switch e.Op {
	case "&&", "||":
		x, err := u.eval(e.X)
		if err != nil {
			return nil, err
		}
		if v, known := constBool(x); known {
			// Short-circuit on the decided side.
			if (e.Op == "&&" && !v) || (e.Op == "||" && v) {
				return u.boolConst(v), nil
			}
			y, err := u.eval(e.Y)
			if err != nil {
				return nil, err
			}
			if w, known := constBool(y); known {
				return u.boolConst(w), nil
			}
		}
		return nil, errf(e.Line, "", "logical %s does not fold to a constant", e.Op)
	case "+":
		return u.evalBin2(e, u.b.Add)
	case "-":
		return u.evalBin2(e, u.b.Sub)
	case "*":
		return u.evalBin2(e, u.b.Mul)
	case "==", "!=", "<", ">", "<=", ">=":
		x, err := u.eval(e.X)
		if err != nil {
			return nil, err
		}
		y, err := u.eval(e.Y)
		if err != nil {
			return nil, err
		}
		if x.op == opConst && y.op == opConst {
			c := x.val.Cmp(y.val)
			var v bool
			switch e.Op {
			case "==":
				v = c == 0
			case "!=":
				v = c != 0
			case "<":
				v = c < 0
			case ">":
				v = c > 0
			case "<=":
				v = c <= 0
			default:
				v = c >= 0
			}
			return u.boolConst(v), nil
		}
		if e.Op == "==" && x == y {
			return u.boolConst(true), nil
		}
		return nil, errf(e.Line, "", "comparison %s does not fold to a constant", e.Op)
	case "<<":
		x, err := u.eval(e.X)
		if err != nil {
			return nil, err
		}
		y, err := u.eval(e.Y)
		if err != nil {
			return nil, err
		}
		if y.op == opConst && y.val.BitLen() <= 10 {
			return u.b.Mul(x, u.b.bigConst(pow2(int(y.val.Int64())))), nil
		}
		return nil, errf(e.Line, "", "shift amount does not fold to a constant")
	case ">>", "/", "%", "&", "|", "^":
		x, err := u.eval(e.X)
		if err != nil {
			return nil, err
		}
		y, err := u.eval(e.Y)
		if err != nil {
			return nil, err
		}
		if x.op == opConst && y.op == opConst {
			if v, ok := foldConst(e.Op, x.val, y.val); ok {
				return u.b.bigConst(v), nil
			}
		}
		return nil, errf(e.Line, "", "operator %s has no word-level model here", e.Op)
	default:
		return nil, errf(e.Line, "", "operator %s has no word-level model", e.Op)
	}
}

func (u *unroller) evalBin2(e netlist.Binary, f func(x, y *Node) *Node) (*Node, *semErr) {
	x, err := u.eval(e.X)
	if err != nil {
		return nil, err
	}
	y, err := u.eval(e.Y)
	if err != nil {
		return nil, err
	}
	return f(x, y), nil
}

// evalConcat models {a, b, ...} as the weighted sum of its parts, each
// truncated to its self-determined width: zero-padding folds away to
// the numeric identity.
func (u *unroller) evalConcat(e netlist.Concat) (*Node, *semErr) {
	total := u.b.Const(0)
	shift := 0
	for i := len(e.Parts) - 1; i >= 0; i-- {
		part := e.Parts[i]
		w, err := u.partWidth(part)
		if err != nil {
			return nil, err
		}
		v, err := u.eval(part)
		if err != nil {
			return nil, err
		}
		v = u.b.Trunc(w, v)
		total = u.b.Add(total, u.b.Mul(v, u.b.bigConst(pow2(shift))))
		shift += w
		if shift > 1024 {
			return nil, errf(e.Line, "", "concatenation too wide to model")
		}
	}
	return total, nil
}

// partWidth is the self-determined width of a concat part within the
// emitted subset: sized literals, net references and part-selects.
func (u *unroller) partWidth(e netlist.Expr) (int, *semErr) {
	switch e := e.(type) {
	case netlist.Num:
		if e.Width > 0 {
			return e.Width, nil
		}
		return 0, errf(e.Line, "", "unsized literal inside a concatenation")
	case netlist.Ref:
		if n := u.d.Nets[e.Name]; n != nil {
			return n.Width, nil
		}
		return 0, errf(e.Line, e.Name, "unknown net %q in concatenation", e.Name)
	case netlist.Select:
		return e.Hi - e.Lo + 1, nil
	default:
		return 0, errf(e.Pos(), "", "unsupported concatenation part")
	}
}

func (u *unroller) boolConst(v bool) *Node {
	if v {
		return u.b.Const(1)
	}
	return u.b.Const(0)
}

// constBool decides a node used as a condition: known iff constant.
func constBool(n *Node) (val, known bool) {
	if n.op != opConst {
		return false, false
	}
	return n.val.Sign() != 0, true
}

// foldConst evaluates the residual concrete-only operators.
func foldConst(op string, x, y *big.Int) (*big.Int, bool) {
	switch op {
	case ">>":
		if y.BitLen() > 10 {
			return big.NewInt(0), true
		}
		return new(big.Int).Rsh(x, uint(y.Int64())), true
	case "/":
		if y.Sign() == 0 {
			return nil, false
		}
		return new(big.Int).Div(x, y), true
	case "%":
		if y.Sign() == 0 {
			return nil, false
		}
		return new(big.Int).Mod(x, y), true
	case "&":
		return new(big.Int).And(x, y), true
	case "|":
		return new(big.Int).Or(x, y), true
	case "^":
		return new(big.Int).Xor(x, y), true
	}
	return nil, false
}
