package netlist

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders the module back to Verilog in a canonical form: ports,
// then declarations, then combinational definitions, then always blocks,
// with fully parenthesised expressions. Printing is a fixed point under
// reparsing — Parse(Print(m)) yields a module that prints identically —
// which the fuzz target exercises on arbitrary accepted inputs.
func Print(m *Module) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("module %s (\n", m.Name)
	for i, p := range m.Ports {
		dir, kind := "input ", "wire"
		if !p.Input {
			dir = "output"
		}
		if p.Reg {
			kind = "reg "
		}
		sep := ","
		if i == len(m.Ports)-1 {
			sep = ""
		}
		w("  %s %s %s%s%s\n", dir, kind, rangeOf(p.Width), p.Name, sep)
	}
	w(");\n")
	for _, d := range m.Decls {
		kind := "wire"
		if d.Reg {
			kind = "reg"
		}
		w("  %s %s%s;\n", kind, rangeOf(d.Width), d.Name)
	}
	for _, a := range m.Assigns {
		if a.Decl {
			w("  wire %s%s = %s;\n", rangeOf(a.Width), a.Target, printExpr(a.Expr))
		} else {
			w("  assign %s = %s;\n", a.Target, printExpr(a.Expr))
		}
	}
	for _, al := range m.Always {
		w("  always @(posedge %s) begin\n", al.Clock)
		printStmts(&b, al.Body, "    ")
		w("  end\n")
	}
	w("endmodule\n")
	return b.String()
}

// rangeOf renders the declaration range for a width, empty for 1 bit.
func rangeOf(width int) string {
	if width <= 1 {
		return ""
	}
	return fmt.Sprintf("[%d:0] ", width-1)
}

func printStmts(b *strings.Builder, stmts []Stmt, indent string) {
	for _, s := range stmts {
		switch s := s.(type) {
		case NonBlocking:
			fmt.Fprintf(b, "%s%s <= %s;\n", indent, s.Target, printExpr(s.Expr))
		case If:
			printIf(b, s, indent)
		}
	}
}

func printIf(b *strings.Builder, s If, indent string) {
	fmt.Fprintf(b, "%sif (%s) begin\n", indent, printExpr(s.Cond))
	printStmts(b, s.Then, indent+"  ")
	if len(s.Else) == 0 {
		fmt.Fprintf(b, "%send\n", indent)
		return
	}
	if len(s.Else) == 1 {
		if chained, ok := s.Else[0].(If); ok {
			fmt.Fprintf(b, "%send else ", indent)
			// The chained if re-indents from the margin: print it with
			// the same indent but strip the leading spaces it writes.
			var tail strings.Builder
			printIf(&tail, chained, indent)
			b.WriteString(strings.TrimPrefix(tail.String(), indent))
			return
		}
	}
	fmt.Fprintf(b, "%send else begin\n", indent)
	printStmts(b, s.Else, indent+"  ")
	fmt.Fprintf(b, "%send\n", indent)
}

func printExpr(e Expr) string {
	switch e := e.(type) {
	case Num:
		if e.Width == 0 {
			return strconv.FormatUint(e.Val, 10)
		}
		radix := 10
		switch e.Base {
		case 'b':
			radix = 2
		case 'h':
			radix = 16
		case 'o':
			radix = 8
		}
		return fmt.Sprintf("%d'%c%s", e.Width, e.Base, strconv.FormatUint(e.Val, radix))
	case Ref:
		return e.Name
	case Select:
		if e.Bit {
			return fmt.Sprintf("%s[%d]", printExpr(e.X), e.Hi)
		}
		return fmt.Sprintf("%s[%d:%d]", printExpr(e.X), e.Hi, e.Lo)
	case Unary:
		return fmt.Sprintf("(%s%s)", e.Op, printExpr(e.X))
	case Binary:
		return fmt.Sprintf("(%s %s %s)", printExpr(e.X), e.Op, printExpr(e.Y))
	case Ternary:
		return fmt.Sprintf("(%s ? %s : %s)", printExpr(e.Cond), printExpr(e.Then), printExpr(e.Else))
	case Concat:
		parts := make([]string, len(e.Parts))
		for i, part := range e.Parts {
			parts[i] = printExpr(part)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return "<?>"
	}
}
