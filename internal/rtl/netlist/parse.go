package netlist

import (
	"fmt"
	"strconv"
	"strings"
)

// ---- AST ----

// Module is a parsed Verilog module with source positions throughout, so
// analyses can report file:line diagnostics.
type Module struct {
	Name    string
	Line    int
	Ports   []Port
	Decls   []Decl   // reg and bare wire declarations
	Assigns []Assign // wire-with-initializer and continuous assigns
	Always  []Always

	allow allowTable
}

// Port is one ANSI-style module port.
type Port struct {
	Name  string
	Width int
	Input bool
	Reg   bool // declared "output reg"
	Line  int
}

// Decl is a named reg or (undriven-by-declaration) wire with a width.
type Decl struct {
	Name  string
	Width int
	Reg   bool
	Line  int
}

// Assign is one combinational definition: a wire declaration with an
// initialising expression (Decl true) or a continuous assign to an
// existing net (Decl false, Width 0).
type Assign struct {
	Target string
	Width  int // declared width when Decl, else 0
	Decl   bool
	Expr   Expr
	Line   int
}

// Always is one `always @(posedge clk)` block.
type Always struct {
	Clock string
	Body  []Stmt
	Line  int
}

// Stmt is a statement inside an always block.
type Stmt interface{ stmt() }

// NonBlocking is `target <= expr;`.
type NonBlocking struct {
	Target string
	Expr   Expr
	Line   int
}

// If is an if/else-if/else chain.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // nil, a nested []Stmt, or a single If for else-if
	Line int
}

func (NonBlocking) stmt() {}
func (If) stmt()          {}

// Expr is an expression tree node. Every node reports the source line it
// starts on.
type Expr interface {
	expr()
	Pos() int
}

// Num is a literal with an optional declared width (0 = unsized).
type Num struct {
	Val   uint64
	Width int
	Base  byte // 'd', 'b', 'h', 'o'; 0 for a plain unsized decimal
	Line  int
}

// Ref reads a named signal.
type Ref struct {
	Name string
	Line int
}

// Select is a bit or part select x[hi:lo] (single bit: Hi == Lo, with
// Bit marking the single-index form so printing round-trips).
type Select struct {
	X      Expr
	Hi, Lo int
	Bit    bool
	Line   int
}

// Unary applies !, ~ or - to an operand.
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Binary applies a binary operator.
type Binary struct {
	Op   string
	X, Y Expr
	Line int
}

// Ternary is cond ? a : b.
type Ternary struct {
	Cond, Then, Else Expr
	Line             int
}

// Concat is {a, b, ...}.
type Concat struct {
	Parts []Expr
	Line  int
}

func (Num) expr()     {}
func (Ref) expr()     {}
func (Select) expr()  {}
func (Unary) expr()   {}
func (Binary) expr()  {}
func (Ternary) expr() {}
func (Concat) expr()  {}

func (e Num) Pos() int     { return e.Line }
func (e Ref) Pos() int     { return e.Line }
func (e Select) Pos() int  { return e.Line }
func (e Unary) Pos() int   { return e.Line }
func (e Binary) Pos() int  { return e.Line }
func (e Ternary) Pos() int { return e.Line }
func (e Concat) Pos() int  { return e.Line }

// ---- parser ----

type parser struct {
	toks []token
	pos  int
}

// Parse compiles Verilog source into a Module, rejecting anything
// outside the supported synthesisable subset. Parse errors carry line
// numbers; they never panic on any input (fuzzed).
func Parse(src string) (*Module, error) {
	toks, allow, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	m.allow = allow
	return m, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) at(text string) bool {
	t := p.peek()
	return (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text
}

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		t := p.peek()
		return fmt.Errorf("netlist: line %d: expected %q, found %q", t.line, text, t.text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("netlist: line %d: expected identifier, found %q", t.line, t.text)
	}
	p.pos++
	return t.text, nil
}

// width parses an optional `[msb:lsb]` range and returns msb+1,
// defaulting to 1 bit. Declarations must span down to bit 0 and may not
// use a negative bit index.
func (p *parser) width() (int, error) {
	if !p.accept("[") {
		return 1, nil
	}
	msb, err := p.constInt()
	if err != nil {
		return 0, err
	}
	if err := p.expect(":"); err != nil {
		return 0, err
	}
	lsb, err := p.constInt()
	if err != nil {
		return 0, err
	}
	if msb < 0 || lsb < 0 {
		return 0, fmt.Errorf("netlist: line %d: negative bit index in range [%d:%d]", p.peek().line, msb, lsb)
	}
	if lsb != 0 {
		return 0, fmt.Errorf("netlist: line %d: declaration range [%d:%d] must end at 0", p.peek().line, msb, lsb)
	}
	if err := p.expect("]"); err != nil {
		return 0, err
	}
	if msb > 127 {
		return 0, fmt.Errorf("netlist: line %d: unsupported declaration width %d", p.peek().line, msb+1)
	}
	return msb + 1, nil
}

// constInt parses an integer, accepting a leading minus so negative bit
// indices are diagnosed rather than mis-tokenised.
func (p *parser) constInt() (int, error) {
	neg := p.accept("-")
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("netlist: line %d: expected integer, found %q", t.line, t.text)
	}
	p.pos++
	v, err := strconv.Atoi(strings.ReplaceAll(t.text, "_", ""))
	if err != nil {
		return 0, fmt.Errorf("netlist: line %d: bad integer %q", t.line, t.text)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) parseModule() (*Module, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	line := p.peek().line
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name, Line: line}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for !p.accept(")") {
		port, err := p.parsePort()
		if err != nil {
			return nil, err
		}
		m.Ports = append(m.Ports, port)
		if !p.accept(",") && !p.at(")") {
			t := p.peek()
			return nil, fmt.Errorf("netlist: line %d: expected ',' or ')' in port list, found %q", t.line, t.text)
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	for !p.accept("endmodule") {
		if p.peek().kind == tokEOF {
			return nil, fmt.Errorf("netlist: line %d: missing endmodule", p.peek().line)
		}
		if err := p.parseItem(m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (p *parser) parsePort() (Port, error) {
	port := Port{Line: p.peek().line}
	switch {
	case p.accept("input"):
		port.Input = true
	case p.accept("output"):
	default:
		t := p.peek()
		return port, fmt.Errorf("netlist: line %d: expected input/output, found %q", t.line, t.text)
	}
	if p.accept("reg") {
		port.Reg = true
	} else {
		p.accept("wire") // optional
	}
	w, err := p.width()
	if err != nil {
		return port, err
	}
	port.Width = w
	port.Name, err = p.ident()
	return port, err
}

func (p *parser) parseItem(m *Module) error {
	t := p.peek()
	switch {
	case p.accept("reg"), p.accept("wire"):
		isReg := t.text == "reg"
		w, err := p.width()
		if err != nil {
			return err
		}
		for {
			line := p.peek().line
			name, err := p.ident()
			if err != nil {
				return err
			}
			if !isReg && p.accept("=") {
				// wire with a defining expression
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				m.Assigns = append(m.Assigns, Assign{Target: name, Width: w, Decl: true, Expr: e, Line: line})
			} else {
				m.Decls = append(m.Decls, Decl{Name: name, Width: w, Reg: isReg, Line: line})
			}
			if p.accept(",") {
				continue
			}
			return p.expect(";")
		}
	case p.accept("assign"):
		line := t.line
		name, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect("="); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		m.Assigns = append(m.Assigns, Assign{Target: name, Expr: e, Line: line})
		return p.expect(";")
	case p.accept("always"):
		return p.parseAlways(m, t.line)
	default:
		return fmt.Errorf("netlist: line %d: unsupported module item starting at %q", t.line, t.text)
	}
}

func (p *parser) parseAlways(m *Module, line int) error {
	if err := p.expect("@"); err != nil {
		return err
	}
	if err := p.expect("("); err != nil {
		return err
	}
	if err := p.expect("posedge"); err != nil {
		return err
	}
	clock, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	body, err := p.parseStmtOrBlock()
	if err != nil {
		return err
	}
	m.Always = append(m.Always, Always{Clock: clock, Body: body, Line: line})
	return nil
}

// parseStmtOrBlock parses either a begin/end block or a single statement.
func (p *parser) parseStmtOrBlock() ([]Stmt, error) {
	if p.at("begin") {
		open := p.peek().line
		p.pos++
		var stmts []Stmt
		for !p.accept("end") {
			t := p.peek()
			if t.kind == tokEOF || t.text == "endmodule" {
				return nil, fmt.Errorf("netlist: line %d: begin/end unbalanced: 'begin' at line %d has no matching 'end'", t.line, open)
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, s)
		}
		return stmts, nil
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	if t := p.peek(); t.text == "if" && p.accept("if") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.accept("else") {
			els, err = p.parseStmtOrBlock()
			if err != nil {
				return nil, err
			}
		}
		return If{Cond: cond, Then: then, Else: els, Line: t.line}, nil
	}
	line := p.peek().line
	target, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("<="); err != nil {
		return nil, fmt.Errorf("netlist: only non-blocking assignment is supported: %w", err)
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return NonBlocking{Target: target, Expr: e, Line: line}, nil
}

// ---- expressions, precedence climbing ----

// binary operator precedence, higher binds tighter.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	// "<=" is non-blocking assignment at statement level, but inside an
	// expression (a condition, an assign RHS) it can only be less-equal.
	"<": 7, ">": 7, ">=": 7, "<=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if t := p.peek(); p.accept("?") {
		then, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		els, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return Ternary{Cond: cond, Then: then, Else: els, Line: t.line}, nil
	}
	return cond, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct {
			return left, nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.pos++
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = Binary{Op: t.text, X: left, Y: right, Line: t.line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.kind == tokPunct && (t.text == "!" || t.text == "~" || t.text == "-") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: t.text, X: x, Line: t.line}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.pos++
		v, err := strconv.ParseUint(strings.ReplaceAll(t.text, "_", ""), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("netlist: line %d: bad number %q", t.line, t.text)
		}
		return Num{Val: v, Line: t.line}, nil
	case t.kind == tokSized:
		p.pos++
		return parseSized(t)
	case t.kind == tokIdent:
		p.pos++
		var e Expr = Ref{Name: t.text, Line: t.line}
		if p.accept("[") {
			neg := p.peek().text == "-"
			hi, err := p.constInt()
			if err != nil {
				return nil, err
			}
			lo, bit := hi, true
			if p.accept(":") {
				bit = false
				if p.peek().text == "-" {
					neg = true
				}
				lo, err = p.constInt()
				if err != nil {
					return nil, err
				}
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			if neg || hi < lo || lo < 0 || hi > 127 {
				return nil, fmt.Errorf("netlist: line %d: negative bit index or bad part select [%d:%d]", t.line, hi, lo)
			}
			e = Select{X: e, Hi: hi, Lo: lo, Bit: bit, Line: t.line}
		}
		return e, nil
	case p.accept("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case p.accept("{"):
		var parts []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
			if p.accept("}") {
				break
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		return Concat{Parts: parts, Line: t.line}, nil
	default:
		return nil, fmt.Errorf("netlist: line %d: unexpected token %q in expression", t.line, t.text)
	}
}

// parseSized decodes a sized literal token like 5'd12 or 4'b1010.
func parseSized(t token) (Expr, error) {
	quote := strings.IndexByte(t.text, '\'')
	width, err := strconv.Atoi(strings.ReplaceAll(t.text[:quote], "_", ""))
	if err != nil || width < 1 || width > 127 {
		return nil, fmt.Errorf("netlist: line %d: bad literal width in %q", t.line, t.text)
	}
	base := byte('d')
	radix := 10
	switch t.text[quote+1] {
	case 'd', 'D':
	case 'b', 'B':
		base, radix = 'b', 2
	case 'h', 'H':
		base, radix = 'h', 16
	case 'o', 'O':
		base, radix = 'o', 8
	}
	digits := strings.ReplaceAll(t.text[quote+2:], "_", "")
	v, err := strconv.ParseUint(digits, radix, 64)
	if err != nil {
		return nil, fmt.Errorf("netlist: line %d: bad literal value in %q", t.line, t.text)
	}
	if width < 64 && v >= 1<<uint(width) {
		return nil, fmt.Errorf("netlist: line %d: literal %q overflows its width", t.line, t.text)
	}
	return Num{Val: v, Width: width, Base: base, Line: t.line}, nil
}
