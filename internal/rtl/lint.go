package rtl

import (
	"fmt"
	"strconv"
	"strings"
)

// Lint structurally checks generated Verilog: every identifier used in
// an expression must be declared (as a port, reg or wire), module/
// endmodule and begin/end must balance, no line may reference a
// negative bit index, and simple assignments must connect buses of
// equal declared width (or truncate explicitly with a part-select).
// It is not a Verilog parser — just enough of one to catch generation
// bugs (undeclared registers, unbalanced blocks, silently zero-extended
// or truncated buses) in tests without an external simulator.
func Lint(src string) error {
	declared := map[string]bool{}
	widths := map[string]int{}
	keywords := map[string]bool{
		"module": true, "endmodule": true, "input": true, "output": true,
		"wire": true, "reg": true, "always": true, "posedge": true,
		"begin": true, "end": true, "if": true, "else": true, "assign": true,
	}

	// Pass 1: declarations.
	for _, line := range strings.Split(src, "\n") {
		trimmed := stripComment(line)
		words := identifiers(trimmed)
		if len(words) == 0 {
			continue
		}
		switch words[0] {
		case "module":
			if len(words) > 1 {
				declared[words[1]] = true
			}
		case "input", "output", "reg", "wire":
			// Forms: "input wire [..] name", "output reg name",
			// "reg [..] name;", "wire [..] name = expr;". The declared
			// identifier is the first non-keyword word; its bus width
			// comes from the optional [hi:lo] range before it.
			for _, w := range words {
				if !keywords[w] {
					declared[w] = true
					widths[w] = declWidth(trimmed, w)
					break
				}
			}
		}
	}

	// Pass 2: usages.
	depth := 0
	beginDepth := 0
	for ln, line := range strings.Split(src, "\n") {
		trimmed := stripComment(line)
		if strings.Contains(trimmed, "[-") {
			return fmt.Errorf("rtl lint: line %d: negative bit index: %s", ln+1, trimmed)
		}
		for _, w := range identifiers(trimmed) {
			if keywords[w] || declared[w] {
				continue
			}
			return fmt.Errorf("rtl lint: line %d: undeclared identifier %q: %s", ln+1, w, trimmed)
		}
		if err := checkAssignWidth(trimmed, widths); err != nil {
			return fmt.Errorf("rtl lint: line %d: %w: %s", ln+1, err, trimmed)
		}
		depth += strings.Count(trimmed, "module") - strings.Count(trimmed, "endmodule")*2
		beginDepth += countWord(trimmed, "begin") - countWord(trimmed, "end")
	}
	if beginDepth != 0 {
		return fmt.Errorf("rtl lint: begin/end unbalanced by %d", beginDepth)
	}
	if !strings.Contains(src, "endmodule") {
		return fmt.Errorf("rtl lint: missing endmodule")
	}
	return nil
}

func stripComment(line string) string {
	trimmed := strings.TrimSpace(line)
	if i := strings.Index(trimmed, "//"); i >= 0 {
		trimmed = trimmed[:i]
	}
	return strings.TrimSpace(trimmed)
}

// declWidth extracts the bus width of a declaration line for name: the
// [hi:lo] range appearing before name, or 1 when the declaration has no
// range. Unparseable ranges yield 0 ("unknown"), which disables width
// checking for that net.
func declWidth(line, name string) int {
	at := indexWord(line, name)
	open := strings.Index(line, "[")
	if open < 0 || open > at {
		return 1
	}
	w, _, ok := parseRange(line[open:])
	if !ok {
		return 0
	}
	return w
}

// parseRange parses a leading "[hi:lo]" or "[idx]" select, returning
// its width and the number of bytes consumed.
func parseRange(s string) (width, n int, ok bool) {
	if len(s) == 0 || s[0] != '[' {
		return 0, 0, false
	}
	close := strings.IndexByte(s, ']')
	if close < 0 {
		return 0, 0, false
	}
	body := s[1:close]
	if colon := strings.IndexByte(body, ':'); colon >= 0 {
		hi, err1 := strconv.Atoi(strings.TrimSpace(body[:colon]))
		lo, err2 := strconv.Atoi(strings.TrimSpace(body[colon+1:]))
		if err1 != nil || err2 != nil || hi < lo || lo < 0 {
			return 0, 0, false
		}
		return hi - lo + 1, close + 1, true
	}
	if _, err := strconv.Atoi(strings.TrimSpace(body)); err != nil {
		return 0, 0, false
	}
	return 1, close + 1, true
}

// term parses one simple operand at the start of s: an identifier with
// an optional bit/part select, or a sized literal like 5'd12. It
// returns the operand's width in bits (0 when unknown), whether the
// width came from an explicit select, and the rest of the string.
// ok is false when s does not start with a simple operand.
func term(s string, widths map[string]int) (width int, selected bool, rest string, ok bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false, s, false
	}
	if s[0] >= '0' && s[0] <= '9' {
		// Sized literal: width'<base>value.
		q := strings.IndexByte(s, '\'')
		if q < 0 {
			return 0, false, s, false // plain integer: width unknown by design
		}
		w, err := strconv.Atoi(s[:q])
		if err != nil {
			return 0, false, s, false
		}
		j := q + 1
		for j < len(s) && isWordByte(s[j]) {
			j++
		}
		return w, false, s[j:], true
	}
	if !isIdentStart(s[0]) {
		return 0, false, s, false
	}
	j := 0
	for j < len(s) && isWordByte(s[j]) {
		j++
	}
	name := s[:j]
	rest = s[j:]
	width = widths[name]
	if strings.HasPrefix(rest, "[") {
		w, n, rok := parseRange(rest)
		if !rok {
			return 0, false, rest, false
		}
		return w, true, rest[n:], true
	}
	return width, false, rest, true
}

// checkAssignWidth applies the bus-width rule to one line when it is a
// simple connection — `assign lhs = rhs;`, `lhs <= rhs;`, or a wire/reg
// declaration with an initializer — whose right-hand side is a single
// identifier, select, or sized literal. Compound right-hand sides
// (arithmetic, muxes, concatenations) are out of scope: their widths
// are context-dependent in Verilog and the emitter pads or truncates
// them explicitly. Widths must agree exactly; an explicit part-select
// is the sanctioned way to truncate.
func checkAssignWidth(line string, widths map[string]int) error {
	var lhsStr, rhsStr string
	switch {
	case strings.HasPrefix(line, "if") || strings.HasPrefix(line, "end"):
		return nil // `<=` in a condition is a comparison, not a connection
	case strings.Contains(line, "<="):
		parts := strings.SplitN(line, "<=", 2)
		lhsStr, rhsStr = parts[0], parts[1]
	case strings.HasPrefix(line, "assign "):
		parts := strings.SplitN(strings.TrimPrefix(line, "assign "), "=", 2)
		if len(parts) != 2 {
			return nil
		}
		lhsStr, rhsStr = parts[0], parts[1]
	case (strings.HasPrefix(line, "wire") || strings.HasPrefix(line, "reg")) && strings.Contains(line, "="):
		parts := strings.SplitN(line, "=", 2)
		decl := identifiers(parts[0])
		if len(decl) < 2 {
			return nil
		}
		lhsStr, rhsStr = decl[len(decl)-1], parts[1]
	default:
		return nil
	}

	lw, _, lrest, ok := term(strings.TrimSpace(lhsStr), widths)
	if !ok || strings.TrimSpace(lrest) != "" || lw == 0 {
		return nil
	}
	rw, _, rrest, ok := term(strings.TrimSpace(rhsStr), widths)
	rrest = strings.TrimSpace(rrest)
	if !ok || (rrest != ";" && rrest != "") || rw == 0 {
		return nil // compound or unknown-width RHS: not a simple connection
	}
	if lw != rw {
		return fmt.Errorf("bus width mismatch: lhs is %d bits, rhs is %d bits (truncate explicitly with a part-select)", lw, rw)
	}
	return nil
}

// identifiers extracts identifier tokens, skipping sized literals such
// as 5'd12 entirely.
func identifiers(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			// Number, possibly a sized literal: consume digits, the
			// optional 'd/'b/'h part, and its value.
			j := i
			for j < len(s) && isWordByte(s[j]) {
				j++
			}
			if j < len(s) && s[j] == '\'' {
				j++
				for j < len(s) && isWordByte(s[j]) {
					j++
				}
			}
			i = j
		case isIdentStart(c):
			j := i
			for j < len(s) && isWordByte(s[j]) {
				j++
			}
			out = append(out, s[i:j])
			i = j
		default:
			i++
		}
	}
	return out
}

// indexWord finds word in s as a whole token (not a substring of a
// longer identifier, so "r" never matches inside "reg").
func indexWord(s, word string) int {
	for i := 0; ; {
		j := strings.Index(s[i:], word)
		if j < 0 {
			return -1
		}
		j += i
		before := j == 0 || !isWordByte(s[j-1])
		after := j+len(word) == len(s) || !isWordByte(s[j+len(word)])
		if before && after {
			return j
		}
		i = j + 1
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWordByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func countWord(s, word string) int {
	n := 0
	for _, w := range identifiers(s) {
		if w == word {
			n++
		}
	}
	return n
}
