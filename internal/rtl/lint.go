package rtl

import (
	"fmt"
	"strings"
)

// Lint structurally checks generated Verilog: every identifier used in
// an expression must be declared (as a port, reg or wire), module/
// endmodule and begin/end must balance, and no line may reference a
// negative bit index. It is not a Verilog parser — just enough of one
// to catch generation bugs (undeclared registers, unbalanced blocks) in
// tests without an external simulator.
func Lint(src string) error {
	declared := map[string]bool{}
	keywords := map[string]bool{
		"module": true, "endmodule": true, "input": true, "output": true,
		"wire": true, "reg": true, "always": true, "posedge": true,
		"begin": true, "end": true, "if": true, "else": true, "assign": true,
	}

	// Pass 1: declarations.
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if i := strings.Index(trimmed, "//"); i >= 0 {
			trimmed = trimmed[:i]
		}
		words := identifiers(trimmed)
		if len(words) == 0 {
			continue
		}
		switch words[0] {
		case "module":
			if len(words) > 1 {
				declared[words[1]] = true
			}
		case "input", "output", "reg", "wire":
			// Forms: "input wire [..] name", "output reg name",
			// "reg [..] name;", "wire [..] name = expr;". The declared
			// identifier is the first non-keyword word.
			for _, w := range words {
				if !keywords[w] {
					declared[w] = true
					break
				}
			}
		}
	}

	// Pass 2: usages.
	depth := 0
	beginDepth := 0
	for ln, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if i := strings.Index(trimmed, "//"); i >= 0 {
			trimmed = trimmed[:i]
		}
		if strings.Contains(trimmed, "[-") {
			return fmt.Errorf("rtl lint: line %d: negative bit index: %s", ln+1, trimmed)
		}
		for _, w := range identifiers(trimmed) {
			if keywords[w] || declared[w] {
				continue
			}
			return fmt.Errorf("rtl lint: line %d: undeclared identifier %q: %s", ln+1, w, trimmed)
		}
		depth += strings.Count(trimmed, "module") - strings.Count(trimmed, "endmodule")*2
		beginDepth += countWord(trimmed, "begin") - countWord(trimmed, "end")
	}
	if beginDepth != 0 {
		return fmt.Errorf("rtl lint: begin/end unbalanced by %d", beginDepth)
	}
	if !strings.Contains(src, "endmodule") {
		return fmt.Errorf("rtl lint: missing endmodule")
	}
	return nil
}

// identifiers extracts identifier tokens, skipping sized literals such
// as 5'd12 entirely.
func identifiers(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			// Number, possibly a sized literal: consume digits, the
			// optional 'd/'b/'h part, and its value.
			j := i
			for j < len(s) && isWordByte(s[j]) {
				j++
			}
			if j < len(s) && s[j] == '\'' {
				j++
				for j < len(s) && isWordByte(s[j]) {
					j++
				}
			}
			i = j
		case isIdentStart(c):
			j := i
			for j < len(s) && isWordByte(s[j]) {
				j++
			}
			out = append(out, s[i:j])
			i = j
		default:
			i++
		}
	}
	return out
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWordByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func countWord(s, word string) int {
	n := 0
	for _, w := range identifiers(s) {
		if w == word {
			n++
		}
	}
	return n
}
