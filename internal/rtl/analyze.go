package rtl

import (
	"fmt"
	"strings"

	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/rtl/netlist"
)

// Lint parses the Verilog source into a netlist IR and runs the full
// static-analysis suite (combloop, driver, deadlogic, width — see
// internal/rtl/netlist). It returns nil for a clean module and an error
// listing every finding otherwise. Parse failures are also errors: a
// module the analyzer cannot parse is outside the subset the emitter is
// allowed to produce.
func Lint(src string) error {
	diags, err := netlist.Analyze(src, netlist.Options{})
	if err != nil {
		return fmt.Errorf("rtl lint: %w", err)
	}
	return diagErr(diags)
}

// ExpectedWidths derives the wordlength interface specification of the
// generated module from the graph's operation specs: every data port and
// every result register, with the exact bit width the fixed-point formats
// require. This is the contract the netlist analyzer's iface pass holds
// the emitted Verilog to.
func ExpectedWidths(d *dfg.Graph) map[string]int {
	widths := map[string]int{}
	inputs, outputs := Interface(d)
	for _, p := range inputs {
		widths[p.Name] = p.Width
	}
	for _, p := range outputs {
		widths[p.Name] = p.Width
	}
	for o := 0; o < d.N(); o++ {
		id := dfg.OpID(o)
		widths[resultReg(d, id)] = d.Op(id).Spec.ResultWidth()
	}
	return widths
}

// AnalyzeOptions selects how much problem context the analysis runs
// with. Every field is optional; the more is supplied, the more of the
// suite becomes applicable.
type AnalyzeOptions struct {
	// File names the source in diagnostics (defaults to "<verilog>").
	File string
	// Graph, when non-nil, enables the "iface" pass: the module's ports
	// and result registers must carry exactly the widths the graph's
	// operation wordlength specs demand.
	Graph *dfg.Graph
	// Lib and Datapath, together with Graph, enable the "equiv" pass:
	// a symbolic unrolling of the module across the schedule's makespan
	// proving each result register and output port equal to the value
	// the dataflow graph defines for it.
	Lib      *model.Library
	Datapath *datapath.Datapath
}

// Analyze runs the netlist static-analysis suite over Verilog source,
// adding the problem-aware passes (iface, equiv) for whatever context
// the options carry. A correct emitter yields no diagnostics for any
// legal datapath.
func Analyze(src string, opts AnalyzeOptions) ([]netlist.Diag, error) {
	nopts := netlist.Options{File: opts.File}
	if opts.Graph != nil {
		nopts.ExpectedWidths = ExpectedWidths(opts.Graph)
		if opts.Lib != nil && opts.Datapath != nil {
			nopts.Extra = append(nopts.Extra, equivPass(opts.Graph, opts.Lib, opts.Datapath))
		}
	}
	return netlist.Analyze(src, nopts)
}

// AnalyzeGraph generates the module for the datapath and runs the full
// netlist analysis over it — the iface pass against the widths the
// graph's operation specs demand, and the equiv pass proving the module
// computes the graph. A correct emitter yields no diagnostics for any
// legal datapath.
func AnalyzeGraph(moduleName string, d *dfg.Graph, lib *model.Library, dp *datapath.Datapath) ([]netlist.Diag, error) {
	src, err := Generate(moduleName, d, lib, dp)
	if err != nil {
		return nil, err
	}
	return Analyze(src, AnalyzeOptions{
		File:     moduleName + ".v",
		Graph:    d,
		Lib:      lib,
		Datapath: dp,
	})
}

// diagErr folds findings into one error, or nil when clean.
func diagErr(diags []netlist.Diag) error {
	if len(diags) == 0 {
		return nil
	}
	lines := make([]string, len(diags))
	for i, d := range diags {
		lines[i] = "  " + d.String()
	}
	return fmt.Errorf("rtl lint: %d findings:\n%s", len(diags), strings.Join(lines, "\n"))
}
