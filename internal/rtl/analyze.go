package rtl

import (
	"fmt"
	"strings"

	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/rtl/netlist"
)

// Lint parses the Verilog source into a netlist IR and runs the full
// static-analysis suite (combloop, driver, deadlogic, width — see
// internal/rtl/netlist). It returns nil for a clean module and an error
// listing every finding otherwise. Parse failures are also errors: a
// module the analyzer cannot parse is outside the subset the emitter is
// allowed to produce.
func Lint(src string) error {
	diags, err := netlist.Analyze(src, netlist.Options{})
	if err != nil {
		return fmt.Errorf("rtl lint: %w", err)
	}
	return diagErr(diags)
}

// ExpectedWidths derives the wordlength interface specification of the
// generated module from the graph's operation specs: every data port and
// every result register, with the exact bit width the fixed-point formats
// require. This is the contract the netlist analyzer's iface pass holds
// the emitted Verilog to.
func ExpectedWidths(d *dfg.Graph) map[string]int {
	widths := map[string]int{}
	inputs, outputs := Interface(d)
	for _, p := range inputs {
		widths[p.Name] = p.Width
	}
	for _, p := range outputs {
		widths[p.Name] = p.Width
	}
	for o := 0; o < d.N(); o++ {
		id := dfg.OpID(o)
		widths[resultReg(d, id)] = d.Op(id).Spec.ResultWidth()
	}
	return widths
}

// AnalyzeGraph generates the module for the datapath and runs the full
// netlist analysis over it, including the iface pass against the widths
// the graph's operation specs demand. A correct emitter yields no
// diagnostics for any legal datapath.
func AnalyzeGraph(moduleName string, d *dfg.Graph, lib *model.Library, dp *datapath.Datapath) ([]netlist.Diag, error) {
	src, err := Generate(moduleName, d, lib, dp)
	if err != nil {
		return nil, err
	}
	return netlist.Analyze(src, netlist.Options{
		File:           moduleName + ".v",
		ExpectedWidths: ExpectedWidths(d),
	})
}

// diagErr folds findings into one error, or nil when clean.
func diagErr(diags []netlist.Diag) error {
	if len(diags) == 0 {
		return nil
	}
	lines := make([]string, len(diags))
	for i, d := range diags {
		lines[i] = "  " + d.String()
	}
	return fmt.Errorf("rtl lint: %d findings:\n%s", len(diags), strings.Join(lines, "\n"))
}
