package rtl

import (
	"fmt"

	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/rtl/netlist"
	"repro/internal/rtl/netlist/sem"
)

// equivPass builds the "equiv" analyzer for one allocation problem: a
// symbolic proof that the netlist implements the allocated dataflow
// graph. The module is unrolled cycle-accurately across the schedule's
// makespan under the generated protocol (post-start-edge controller
// state, data inputs free and held), and each operation's result
// register is required to hold — at its writeback edge, as canonical
// expression-DAG identity — the reference value model.Reference derives
// from the graph alone. Output ports, the done handshake and the
// controller's shutdown are checked at the final edge. The reference is
// built only from the DFG, the library and the datapath: the pass
// shares no wiring logic with Generate, so a mis-emitted mux select,
// swapped operand or off-by-one capture cycle shows up as a
// counterexample naming the divergent net and cycle.
func equivPass(g *dfg.Graph, lib *model.Library, dp *datapath.Datapath) func(*netlist.Design) []netlist.Diag {
	return func(d *netlist.Design) (diags []netlist.Diag) {
		defer func() {
			// Reference construction shares the prover's DAG budget;
			// a pathological problem degrades to a finding, not a hang.
			if r := recover(); r != nil {
				diags = []netlist.Diag{{File: d.File, Line: d.Module.Line, Analyzer: "equiv",
					Message: fmt.Sprintf("cannot prove: reference construction failed: %v", r)}}
			}
		}()
		b := sem.NewBuilder()
		spec, err := equivSpec(b, g, lib, dp)
		if err != nil {
			return []netlist.Diag{{File: d.File, Line: d.Module.Line, Analyzer: "equiv",
				Message: fmt.Sprintf("cannot prove: %v", err)}}
		}
		if spec.Cycles == 0 {
			return nil // empty graph: nothing scheduled, nothing to prove
		}
		return sem.Prove(d, b, spec)
	}
}

// equivSpec derives the proof obligations of the generated module from
// the problem, independently of the emitter's wiring:
//
//   - unroll for the makespan, starting in the post-start-edge state
//     (running=1, cyc=0, done=0) with rst and start held low;
//   - every free operand slot's input port is a free symbolic variable,
//     held stable for the whole iteration (the module's protocol);
//   - each operation's r_<label> register must equal its reference DAG
//     after clock edge Start + latency - 1 (its writeback edge);
//   - after the final edge every sink's out_<label> port carries the
//     sink's reference value, done is 1 and running is 0.
func equivSpec(b *sem.Builder, g *dfg.Graph, lib *model.Library, dp *datapath.Datapath) (sem.Spec, error) {
	n := g.N()
	if len(dp.Start) != n || len(dp.InstOf) != n {
		return sem.Spec{}, fmt.Errorf("datapath shape mismatch: %d starts for %d ops", len(dp.Start), n)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return sem.Spec{}, err
	}
	makespan := dp.Makespan(lib)

	inputs := map[string]*sem.Node{
		"clk":   b.Const(0),
		"rst":   b.Const(0),
		"start": b.Const(0),
	}
	refs := make([]*sem.Node, n)
	for _, o := range order {
		spec := g.Op(o).Spec
		widths := spec.OperandWidths()
		preds := g.Pred(o)
		var srcs [2]*sem.Node
		for slot := 0; slot < 2; slot++ {
			if slot < len(preds) {
				srcs[slot] = refs[preds[slot]]
			} else {
				name := inPortName(g, o, slot)
				v := b.Var(name, widths[slot])
				inputs[name] = v
				srcs[slot] = v
			}
		}
		refs[o] = model.Reference[*sem.Node](b, spec, srcs[0], srcs[1])
	}

	init := map[string]*sem.Node{
		"running": b.Const(1),
		"cyc":     b.Const(0),
		"done":    b.Const(0),
	}
	var checks []sem.Check
	for o := 0; o < n; o++ {
		id := dfg.OpID(o)
		inst := dp.InstOf[o]
		if inst < 0 || inst >= len(dp.Instances) {
			return sem.Spec{}, fmt.Errorf("operation %d bound to unknown instance %d", o, inst)
		}
		wb := dp.Start[o] + lib.Latency(dp.Instances[inst].Kind) - 1
		label := opLabel(g, id)
		checks = append(checks, sem.Check{
			Net: resultReg(g, id), Cycle: wb, Want: refs[o],
			Label: fmt.Sprintf("the reference value of operation %q", label),
		})
		if len(g.Succ(id)) == 0 {
			checks = append(checks, sem.Check{
				Net: outPortName(g, id), Cycle: makespan - 1, Want: refs[o],
				Label: fmt.Sprintf("the reference value of sink %q", label),
			})
		}
	}
	if makespan > 0 {
		checks = append(checks,
			sem.Check{Net: "done", Cycle: makespan - 1, Want: b.Const(1), Label: "the iteration-complete handshake"},
			sem.Check{Net: "running", Cycle: makespan - 1, Want: b.Const(0), Label: "the controller shutdown"},
		)
	}
	return sem.Spec{Cycles: makespan, Inputs: inputs, Init: init, Checks: checks}, nil
}
