package rtl

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite the golden Verilog files under testdata/")

// TestGoldenVerilog pins the emitted Verilog for representative datapaths
// byte-for-byte and asserts the netlist analyzer finds nothing in any of
// them. CI regenerates the goldens with -update and fails on diff, so an
// emitter change can never silently alter the hardware or introduce a
// diagnostic.
func TestGoldenVerilog(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) (*dfg.Graph, *model.Library, *datapath.Datapath)
	}{
		{
			// The paper's Fig. 1 second-order section, allocated at a
			// relaxed latency target so units are shared.
			name: "fig1_datapath",
			build: func(t *testing.T) (*dfg.Graph, *model.Library, *datapath.Datapath) {
				g := workloads.Fig1()
				lib, dp := allocate(t, g, 1, 2)
				return g, lib, dp
			},
		},
		{
			// Single-cycle multipliers force the combinational
			// operand-select form of the shared unit.
			name: "single_cycle_chain",
			build: func(t *testing.T) (*dfg.Graph, *model.Library, *datapath.Datapath) {
				g := dfg.New()
				a := g.AddOp("a", model.Mul, model.Sig(4, 4))
				b := g.AddOp("b", model.Mul, model.Sig(4, 4))
				c := g.AddOp("c", model.Mul, model.Sig(4, 4))
				if err := g.AddDep(a, b); err != nil {
					t.Fatal(err)
				}
				if err := g.AddDep(b, c); err != nil {
					t.Fatal(err)
				}
				lib := model.Default()
				dp := &datapath.Datapath{
					Start:  []int{0, 1, 2},
					InstOf: []int{0, 0, 0},
					Instances: []datapath.Instance{
						{Kind: model.Kind{Class: model.Mul, Sig: model.Sig(4, 4)}, Ops: []dfg.OpID{a, b, c}},
					},
				}
				if err := dp.Verify(g, lib, 3); err != nil {
					t.Fatal(err)
				}
				return g, lib, dp
			},
		},
		{
			// Mixed widths on one shared multiplier: pad/truncate wiring
			// and the full-width product register slice.
			name: "mixed_latency",
			build: func(t *testing.T) (*dfg.Graph, *model.Library, *datapath.Datapath) {
				g := dfg.New()
				small := g.AddOp("small", model.Mul, model.Sig(4, 4))
				big := g.AddOp("big", model.Mul, model.Sig(12, 12))
				sum := g.AddOp("sum", model.Add, model.AddSig(16))
				if err := g.AddDep(small, sum); err != nil {
					t.Fatal(err)
				}
				if err := g.AddDep(big, sum); err != nil {
					t.Fatal(err)
				}
				lib := model.Default()
				dp := &datapath.Datapath{
					Start:  []int{0, 3, 6},
					InstOf: []int{0, 0, 1},
					Instances: []datapath.Instance{
						{Kind: model.Kind{Class: model.Mul, Sig: model.Sig(12, 12)}, Ops: []dfg.OpID{small, big}},
						{Kind: model.Kind{Class: model.Add, Sig: model.AddSig(16)}, Ops: []dfg.OpID{sum}},
					},
				}
				if err := dp.Verify(g, lib, 8); err != nil {
					t.Fatal(err)
				}
				return g, lib, dp
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, lib, dp := tc.build(t)
			src, err := Generate(tc.name, g, lib, dp)
			if err != nil {
				t.Fatal(err)
			}
			diags, err := AnalyzeGraph(tc.name, g, lib, dp)
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) > 0 {
				t.Fatalf("analyzer findings on golden module:\n%v", diags)
			}
			golden := filepath.Join("testdata", tc.name+".v")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(src), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if string(want) != src {
				t.Fatalf("emitted Verilog differs from %s (run with -update to regenerate)", golden)
			}
		})
	}
}
