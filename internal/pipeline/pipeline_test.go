package pipeline

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/fxsim"
	"repro/internal/model"
	"repro/internal/tgff"
)

func TestArcOverlaps(t *testing.T) {
	cases := []struct {
		a, b arc
		ii   int
		want bool
	}{
		{arc{0, 2}, arc{2, 2}, 4, false}, // {0,1} vs {2,3}
		{arc{0, 2}, arc{0, 2}, 4, true},  // identical
		{arc{0, 2}, arc{1, 1}, 4, true},  // b inside a
		{arc{3, 2}, arc{0, 1}, 4, true},  // a wraps onto b
		{arc{3, 1}, arc{0, 3}, 4, false}, // {3} vs {0,1,2}
		{arc{1, 4}, arc{0, 1}, 4, true},  // a covers the whole period
		{arc{2, 1}, arc{1, 1}, 3, false}, // singletons apart
		{arc{2, 2}, arc{1, 1}, 3, true},  // a wraps {2,0}, b {1}? {2,0} vs {1}: disjoint!
	}
	// Correct the last case by brute force below rather than by eye.
	for i, c := range cases {
		got := c.a.overlaps(c.b, c.ii)
		want := bruteOverlap(c.a, c.b, c.ii)
		if got != want {
			t.Errorf("case %d: overlaps(%+v, %+v, %d) = %v, brute force %v", i, c.a, c.b, c.ii, got, want)
		}
	}
}

// TestArcOverlapsExhaustive checks the closed form against brute force
// over every arc pair for small periods.
func TestArcOverlapsExhaustive(t *testing.T) {
	for ii := 1; ii <= 6; ii++ {
		for s1 := 0; s1 < ii; s1++ {
			for l1 := 1; l1 <= ii; l1++ {
				for s2 := 0; s2 < ii; s2++ {
					for l2 := 1; l2 <= ii; l2++ {
						a, b := arc{s1, l1}, arc{s2, l2}
						if got, want := a.overlaps(b, ii), bruteOverlap(a, b, ii); got != want {
							t.Fatalf("ii=%d %+v %+v: closed form %v, brute %v", ii, a, b, got, want)
						}
						// Symmetry.
						if a.overlaps(b, ii) != b.overlaps(a, ii) {
							t.Fatalf("ii=%d %+v %+v: asymmetric", ii, a, b)
						}
					}
				}
			}
		}
	}
}

func bruteOverlap(a, b arc, ii int) bool {
	occ := make([]bool, ii)
	for k := 0; k < a.l; k++ {
		occ[(a.s+k)%ii] = true
	}
	for k := 0; k < b.l; k++ {
		if occ[(b.s+k)%ii] {
			return true
		}
	}
	return false
}

// TestVerifyCatchesModuloCollision: two additions on one adder at starts
// 0 and 4 are legal for a single iteration but collide at II = 4 (both
// occupy cycles {0,1} mod 4).
func TestVerifyCatchesModuloCollision(t *testing.T) {
	lib := model.Default()
	g := dfg.New()
	x := g.AddOp("x", model.Add, model.AddSig(8))
	y := g.AddOp("y", model.Add, model.AddSig(8))
	dp := &datapath.Datapath{
		Start:  []int{0, 4},
		InstOf: []int{0, 0},
		Instances: []datapath.Instance{
			{Kind: model.Kind{Class: model.Add, Sig: model.AddSig(8)}, Ops: []dfg.OpID{x, y}},
		},
	}
	if err := dp.Verify(g, lib, 6); err != nil {
		t.Fatalf("single-iteration legality should hold: %v", err)
	}
	if err := Verify(g, lib, dp, 6, 4); err == nil {
		t.Fatal("modulo collision not caught")
	}
	// At II = 6 the arcs are {0,1} and {4,5}: legal.
	if err := Verify(g, lib, dp, 6, 6); err != nil {
		t.Fatalf("II=6 should be legal: %v", err)
	}
	// At II = 5 arcs {0,1} and {4,0}: collide on 0.
	if err := Verify(g, lib, dp, 6, 5); err == nil {
		t.Fatal("II=5 wraparound collision not caught")
	}
}

func TestVerifyRejectsSlowInstance(t *testing.T) {
	lib := model.Default()
	g := dfg.New()
	m := g.AddOp("m", model.Mul, model.Sig(16, 16)) // latency 4
	dp := &datapath.Datapath{
		Start:  []int{0},
		InstOf: []int{0},
		Instances: []datapath.Instance{
			{Kind: model.Kind{Class: model.Mul, Sig: model.Sig(16, 16)}, Ops: []dfg.OpID{m}},
		},
	}
	if err := Verify(g, lib, dp, 4, 3); err == nil {
		t.Fatal("latency 4 unit accepted at II=3")
	}
	if err := Verify(g, lib, dp, 4, 4); err != nil {
		t.Fatalf("latency 4 unit at II=4 should pass: %v", err)
	}
}

func TestMinII(t *testing.T) {
	lib := model.Default()
	g := dfg.New()
	g.AddOp("a", model.Add, model.AddSig(8))   // lat 2
	g.AddOp("m", model.Mul, model.Sig(16, 16)) // lat 4
	if got := MinII(g, lib); got != 4 {
		t.Fatalf("MinII = %d, want 4", got)
	}
	if got := MinII(dfg.New(), lib); got != 1 {
		t.Fatalf("MinII(empty) = %d, want 1", got)
	}
}

func TestAllocateInfeasibleII(t *testing.T) {
	lib := model.Default()
	g := dfg.New()
	g.AddOp("m", model.Mul, model.Sig(16, 16)) // fastest latency 4
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Allocate(g, lib, lmin, 3, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("II below MinII: got %v, want ErrInfeasible", err)
	}
}

func TestAllocateLambdaInfeasible(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 8, Seed: 3, Shape: tgff.ShapeChain})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Allocate(g, lib, lmin-1, lmin, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("λ below λ_min: got %v, want ErrInfeasible", err)
	}
}

// TestAllocateLegalAcrossII: sweeping II from MinII upward must always
// produce pipelined-legal, functionally correct datapaths, and a larger
// II (more sharing freedom) must not produce a larger total area in
// aggregate.
func TestAllocateLegalAcrossII(t *testing.T) {
	lib := model.Default()
	for _, n := range []int{4, 8, 12} {
		graphs, err := tgff.Batch(n, 6, 8800, tgff.Config{})
		if err != nil {
			t.Fatal(err)
		}
		var prevSum int64 = -1
		for _, f := range []float64{1.0, 1.5, 2.0} {
			var sum int64
			for gi, g := range graphs {
				lmin, err := g.MinMakespan(lib)
				if err != nil {
					t.Fatal(err)
				}
				minII := MinII(g, lib)
				ii := int(float64(minII) * f)
				if ii < minII {
					ii = minII
				}
				lambda := lmin + lmin/2
				dp, stats, err := Allocate(g, lib, lambda, ii, Options{})
				if err != nil {
					t.Fatalf("n=%d g=%d ii=%d: %v", n, gi, ii, err)
				}
				if err := Verify(g, lib, dp, lambda, ii); err != nil {
					t.Fatalf("n=%d g=%d ii=%d: %v", n, gi, ii, err)
				}
				if stats.Iterations < 1 {
					t.Fatal("no iterations recorded")
				}
				if err := fxsim.CheckEquivalence(g, lib, dp, fxsim.Inputs{}); err != nil {
					t.Fatalf("n=%d g=%d ii=%d: %v", n, gi, ii, err)
				}
				sum += dp.Area(lib)
			}
			if prevSum >= 0 && sum > prevSum+prevSum/10 {
				t.Errorf("n=%d: aggregate area grew sharply as II relaxed: %d -> %d", n, prevSum, sum)
			}
			prevSum = sum
		}
	}
}

// TestPipelineCostsAreaVersusUnpipelined: at an II far below λ, the
// pipelined datapath generally needs at least as much area as the
// unpipelined allocation of the same graph, since overlap restricts
// sharing.
func TestPipelineCostsAreaVersusUnpipelined(t *testing.T) {
	lib := model.Default()
	graphs, err := tgff.Batch(10, 8, 9900, tgff.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var pipelined, unpipelined int64
	for _, g := range graphs {
		lmin, err := g.MinMakespan(lib)
		if err != nil {
			t.Fatal(err)
		}
		lambda := lmin + lmin/2
		dp, _, err := core.Allocate(g, lib, lambda, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		unpipelined += dp.Area(lib)
		pdp, _, err := Allocate(g, lib, lambda, MinII(g, lib), Options{})
		if err != nil {
			t.Fatal(err)
		}
		pipelined += pdp.Area(lib)
	}
	if pipelined < unpipelined {
		t.Fatalf("aggregate pipelined area %d below unpipelined %d: sharing accounting is suspect",
			pipelined, unpipelined)
	}
}

// TestLargeIIMatchesPlainSharing: when II is at least λ, modulo
// occupancy coincides with absolute occupancy, so the pipelined binder
// must find real sharing (fewer instances than operations) on graphs
// with slack.
func TestLargeIIMatchesPlainSharing(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 10, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	lambda := lmin + lmin/2
	dp, _, err := Allocate(g, lib, lambda, lambda, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dp.Instances) >= g.N() {
		t.Fatalf("no sharing at II=λ: %d instances for %d ops", len(dp.Instances), g.N())
	}
}

func TestAllocateEmptyAndBadInputs(t *testing.T) {
	lib := model.Default()
	dp, _, err := Allocate(dfg.New(), lib, 5, 2, Options{})
	if err != nil || len(dp.Start) != 0 {
		t.Fatalf("empty graph: %v %+v", err, dp)
	}
	g := dfg.New()
	g.AddOp("a", model.Add, model.AddSig(8))
	if _, _, err := Allocate(g, lib, 5, 0, Options{}); err == nil {
		t.Fatal("II=0 accepted")
	}
	if err := Verify(g, lib, &datapath.Datapath{}, 5, 0); err == nil {
		t.Fatal("Verify II=0 accepted")
	}
}
