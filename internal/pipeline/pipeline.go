// Package pipeline extends datapath allocation to functionally pipelined
// operation: the sequencing graph executes once per initiation interval
// II, with successive iterations overlapped in the datapath. The paper
// allocates for a single iteration against a latency bound λ; for DSP
// front ends the iteration *rate* is the real constraint, and II < λ
// forces the binder to respect resource occupancy *modulo II* — two
// operations whose executions are disjoint in absolute time can still
// collide when iterations overlap.
//
// The model keeps the paper's non-pipelined functional units: a unit
// executing an operation of latency ℓ is busy for ℓ consecutive cycles
// each iteration, so ℓ ≤ II must hold for every binding (a unit cannot
// still be busy when its next iteration's input arrives), and two
// operations may share a unit only when their busy windows are disjoint
// as circular arcs modulo II.
//
// Allocation reuses the paper's machinery — wordlength compatibility
// graph, latency-upper-bound scheduling, bound-critical-path refinement —
// with two changes: kinds slower than II are deleted from H up front,
// and binding packs circular arcs greedily (first-fit by area-ascending
// kind order) instead of interval chains, because maximum circular-arc
// cliques no longer have the transitive-orientation structure §2.3
// exploits.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bind"
	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/refine"
	"repro/internal/sched"
	"repro/internal/wcg"
)

// ErrInfeasible is returned when no datapath meets λ and II together.
var ErrInfeasible = errors.New("pipeline: constraints infeasible")

// Options tunes the pipelined allocator.
type Options struct {
	// Victim overrides the refinement victim policy; nil uses the
	// paper's smallest-proportion metric.
	Victim refine.Policy
}

// Stats reports how the allocation ran.
type Stats struct {
	Iterations  int // schedule/bind rounds
	Refinements int // H-edge deletion steps
	Kinds       int // size of the II-feasible kind set
}

// Allocate produces a datapath whose schedule meets λ and whose binding
// is legal under initiation interval II.
//
// Like core.Allocate, an outer search drives the per-class resource
// limits N_y from their utilisation lower bound upward; under an
// initiation interval each unit contributes at most min(II, λ) busy
// cycles per iteration, so the bound is ⌈Σℓ_min / min(II, λ)⌉. The
// first feasible configuration serialises operations as much as the
// constraints allow, which is what creates modulo-disjoint windows for
// the binder to share.
func Allocate(d *dfg.Graph, lib *model.Library, lambda, ii int, opt Options) (*datapath.Datapath, Stats, error) {
	return AllocateCtx(context.Background(), d, lib, lambda, ii, opt)
}

// AllocateCtx is Allocate with cancellation: the schedule/bind/refine
// loop and the outer resource-bound search check ctx between rounds and
// return ctx.Err() promptly once it is done.
func AllocateCtx(ctx context.Context, d *dfg.Graph, lib *model.Library, lambda, ii int, opt Options) (*datapath.Datapath, Stats, error) {
	var stats Stats
	if err := d.Validate(); err != nil {
		return nil, stats, err
	}
	if ii < 1 {
		return nil, stats, fmt.Errorf("pipeline: initiation interval %d < 1", ii)
	}
	if d.N() == 0 {
		return &datapath.Datapath{}, stats, nil
	}

	base, err := wcg.Build(d, lib)
	if err != nil {
		return nil, stats, err
	}
	// Pre-refinement: kinds slower than II can never be bound.
	for _, o := range d.Ops() {
		kept := 0
		for _, ki := range base.CompatKinds(o.ID) {
			if base.KindLatency(ki) <= ii {
				kept++
			}
		}
		if kept == 0 {
			return nil, stats, fmt.Errorf("%w: operation %d (%v) has no kind with latency ≤ II=%d",
				ErrInfeasible, o.ID, d.Op(o.ID).Spec, ii)
		}
		for base.UpperLatency(o.ID) > ii {
			base.DeleteMaxLatencyEdges(o.ID)
		}
	}
	stats.Kinds = len(base.Kinds)

	pick := opt.Victim
	if pick == nil {
		pick = refine.ChooseVictim
	}

	// Utilisation lower bounds on the per-class limits.
	count := make(map[model.OpType]int)
	busy := make(map[model.OpType]int)
	for _, o := range d.Ops() {
		y := o.Spec.Type.HardwareClass()
		count[y]++
		busy[y] += model.MinLatency(o.Spec, lib)
	}
	cap := min(ii, lambda)
	if cap < 1 {
		cap = 1
	}
	limits := make(sched.Limits, len(count))
	for y, b := range busy {
		limits[y] = max(1, min((b+cap-1)/cap, count[y]))
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		dp, err := allocateFixed(ctx, base.Clone(), lib, lambda, ii, limits, pick, &stats)
		if err == nil {
			return dp, stats, nil
		}
		if !errors.Is(err, ErrInfeasible) {
			return nil, stats, err
		}
		grown := false
		var se *sched.InfeasibleError
		if errors.As(err, &se) {
			y := d.Op(se.Op).Spec.Type.HardwareClass()
			if limits[y] < count[y] {
				limits[y]++
				grown = true
			}
		}
		if !grown {
			// Grow the class with the highest utilisation pressure that
			// still has headroom.
			bestY, found := model.Add, false
			var bestNum, bestDen int
			for y, nl := range limits {
				if nl >= count[y] {
					continue
				}
				num, den := busy[y], nl*cap
				if !found || num*bestDen > bestNum*den {
					bestY, bestNum, bestDen, found = y, num, den, true
				}
			}
			if !found {
				return nil, stats, err
			}
			limits[bestY]++
		}
	}
}

// allocateFixed runs the schedule/bind/refine loop for one resource-
// limit configuration.
func allocateFixed(ctx context.Context, g *wcg.Graph, lib *model.Library, lambda, ii int, limits sched.Limits, pick refine.Policy, stats *Stats) (*datapath.Datapath, error) {
	maxIters := g.NumHEdges() + 2
	for iter := 0; iter < maxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stats.Iterations++
		r, err := sched.List(g, limits)
		if err != nil {
			if errors.Is(err, sched.ErrResourceInfeasible) {
				return nil, fmt.Errorf("%w: %w", ErrInfeasible, err)
			}
			return nil, err
		}
		dp, b := bindModulo(g, r.Start, ii)
		if dp.Makespan(lib) <= lambda {
			if err := Verify(g.D, lib, dp, lambda, ii); err != nil {
				return nil, fmt.Errorf("pipeline: internal error, illegal datapath: %w", err)
			}
			return dp, nil
		}
		if _, ok := refine.StepWithPolicy(g, r.Start, b, lambda, pick); !ok {
			return nil, fmt.Errorf("%w: λ=%d below achievable latency %d at II=%d",
				ErrInfeasible, lambda, dp.Makespan(lib), ii)
		}
		stats.Refinements++
	}
	return nil, fmt.Errorf("pipeline: refinement loop exceeded %d iterations", maxIters)
}

// arc is a busy window modulo II: the cycle set {(s + k) mod II : 0 <= k < l}.
type arc struct {
	s int // start mod II
	l int // length, 1 <= l <= II
}

// overlaps reports whether two circular arcs share a cycle: b's start
// falls inside a, or a's start falls inside b (forward distances mod II).
func (a arc) overlaps(b arc, ii int) bool {
	if a.l >= ii || b.l >= ii {
		return true
	}
	d := ((b.s-a.s)%ii + ii) % ii
	return d < a.l || ii-d < b.l
}

// bindModulo greedily packs operations onto instances under the modulo
// occupancy rule. Operations are processed in start order; each joins
// the first existing instance whose kind covers it and whose occupied
// arcs stay pairwise disjoint, or opens a new instance with its
// cheapest II-feasible covering kind. The schedule used latency upper
// bounds, so rebinding to any compatible kind never violates it. The
// second result expresses the same binding in bind.Binding form for the
// refinement step's bound-critical-path computation.
func bindModulo(g *wcg.Graph, start []int, ii int) (*datapath.Datapath, *bind.Binding) {
	d := g.D
	n := d.N()
	order := make([]dfg.OpID, n)
	for i := range order {
		order[i] = dfg.OpID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if start[order[a]] != start[order[b]] {
			return start[order[a]] < start[order[b]]
		}
		return order[a] < order[b]
	})

	type inst struct {
		kind int
		arcs []arc
		ops  []dfg.OpID
	}
	var insts []*inst
	instOf := make([]int, n)

	fits := func(in *inst, o dfg.OpID) bool {
		if !g.Compatible(o, in.kind) {
			return false
		}
		a := arc{s: start[o] % ii, l: g.KindLatency(in.kind)}
		for _, b := range in.arcs {
			if a.overlaps(b, ii) {
				return false
			}
		}
		return true
	}

	for _, o := range order {
		placed := -1
		for idx, in := range insts {
			if fits(in, o) {
				placed = idx
				break
			}
		}
		if placed < 0 {
			// Cheapest compatible kind; CompatKinds is area-ascending
			// within the hardware class by construction.
			ki := g.CompatKinds(o)[0]
			best := g.Lib.Area(g.Kinds[ki])
			for _, k := range g.CompatKinds(o) {
				if a := g.Lib.Area(g.Kinds[k]); a < best {
					ki, best = k, a
				}
			}
			insts = append(insts, &inst{kind: ki})
			placed = len(insts) - 1
		}
		in := insts[placed]
		in.arcs = append(in.arcs, arc{s: start[o] % ii, l: g.KindLatency(in.kind)})
		in.ops = append(in.ops, o)
		instOf[o] = placed
	}

	dp := &datapath.Datapath{
		Start:  append([]int(nil), start...),
		InstOf: instOf,
	}
	b := &bind.Binding{CliqueOf: append([]int(nil), instOf...)}
	for _, in := range insts {
		dp.Instances = append(dp.Instances, datapath.Instance{
			Kind: g.Kinds[in.kind],
			Ops:  append([]dfg.OpID(nil), in.ops...),
		})
		b.Cliques = append(b.Cliques, bind.Clique{Kind: in.kind, Ops: append([]dfg.OpID(nil), in.ops...)})
	}
	return dp, b
}

// Verify checks pipelined legality: the datapath is legal for a single
// iteration (datapath.Verify), every bound latency fits within II, and
// operations sharing an instance occupy pairwise disjoint circular arcs
// modulo II.
func Verify(d *dfg.Graph, lib *model.Library, dp *datapath.Datapath, lambda, ii int) error {
	if ii < 1 {
		return fmt.Errorf("pipeline: initiation interval %d < 1", ii)
	}
	if err := dp.Verify(d, lib, lambda); err != nil {
		return err
	}
	for idx, in := range dp.Instances {
		l := lib.Latency(in.Kind)
		if l > ii {
			return fmt.Errorf("pipeline: instance %d (%v) latency %d exceeds II=%d", idx, in.Kind, l, ii)
		}
		for i := 0; i < len(in.Ops); i++ {
			for j := i + 1; j < len(in.Ops); j++ {
				a := arc{s: dp.Start[in.Ops[i]] % ii, l: l}
				b := arc{s: dp.Start[in.Ops[j]] % ii, l: l}
				if a.overlaps(b, ii) {
					return fmt.Errorf("pipeline: operations %d and %d collide modulo II=%d on instance %d",
						in.Ops[i], in.Ops[j], ii, idx)
				}
			}
		}
	}
	return nil
}

// MinII returns the smallest initiation interval for which any binding
// exists: the largest over operations of their fastest kind latency.
// (Resource sharing may require a larger II; this is the per-operation
// lower bound.)
func MinII(d *dfg.Graph, lib *model.Library) int {
	ii := 1
	for _, o := range d.Ops() {
		if l := model.MinLatency(o.Spec, lib); l > ii {
			ii = l
		}
	}
	return ii
}
