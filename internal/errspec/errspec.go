// Package errspec derives operation wordlengths from an output-error
// specification — the paper's stated future work ("investigation of the
// interaction between high-level synthesis of multiple wordlength
// systems and the derivation of wordlength information from output-error
// specifications", in the spirit of the authors' Synoptix tool [3, 6]).
//
// The user authors a sequencing graph at full precision; Optimize
// searches for the cheapest per-operation wordlengths whose truncation
// distortion, measured at the graph's sink outputs, stays within a
// user-supplied absolute error budget. The trimmed graph then feeds the
// allocation heuristic, closing the loop from error spec to datapath.
//
// Signal model. Every signal is a non-negative binary fraction: a w-bit
// operand holds w fractional bits, value k/2^w for integer k. An
// operation quantizes each operand to its slot width and its result to
// its result width by truncation (dropping low-order fractional bits),
// the hardware-cheap rounding mode whose distortion the paper's
// tradition analyses. Addition is exact before requantization;
// multiplication of hi- and lo-bit fractions has exactly hi+lo
// fractional bits (initially lossless). Arithmetic is exact rational
// (math/big), so measured errors are free of floating-point artefacts;
// overflow is not modelled — as in the classical truncation-noise
// setting, magnitude scaling is the designer's responsibility and
// wordlength buys precision.
//
// The optimizer is steepest feasible descent: repeatedly apply the
// single one-bit width reduction that saves the most dedicated-resource
// area while keeping the Monte-Carlo maximum absolute sink error within
// budget, until no reduction is feasible. Inputs are drawn once per run
// from a seeded generator, so results are deterministic.
package errspec

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"

	"repro/internal/dfg"
	"repro/internal/model"
)

// Config parameterises Optimize.
type Config struct {
	// MaxAbsError is the error budget: the largest tolerated absolute
	// deviation of any sink output over the sampled input vectors, in
	// the fraction domain (e.g. 1.0/1024 for "10 good fractional bits").
	// Required, > 0.
	MaxAbsError float64
	// Vectors is the number of Monte-Carlo input vectors; default 32.
	Vectors int
	// Seed feeds the input generator; same seed, same result.
	Seed int64
	// MinWidth floors every trimmed operand width; default 2.
	MinWidth int
}

func (c Config) withDefaults() (Config, error) {
	if !(c.MaxAbsError > 0) {
		return c, errors.New("errspec: MaxAbsError must be positive")
	}
	if c.Vectors == 0 {
		c.Vectors = 32
	}
	if c.Vectors < 1 {
		return c, fmt.Errorf("errspec: Vectors %d < 1", c.Vectors)
	}
	if c.MinWidth == 0 {
		c.MinWidth = 2
	}
	if c.MinWidth < 1 {
		return c, fmt.Errorf("errspec: MinWidth %d < 1", c.MinWidth)
	}
	return c, nil
}

// Trim records one accepted width reduction.
type Trim struct {
	Op   dfg.OpID
	From model.Signature
	To   model.Signature
}

// Result reports an optimization run.
type Result struct {
	// Graph is the trimmed copy; the input graph is never modified.
	Graph *dfg.Graph
	// Trims lists the accepted reductions in application order.
	Trims []Trim
	// MeasuredError is the final maximum absolute sink error.
	MeasuredError float64
	// AreaBefore and AreaAfter are the dedicated-resource areas (every
	// operation on its own minimal kind) before and after trimming: the
	// optimizer's internal objective. The real saving is realised by
	// running the allocator on Result.Graph.
	AreaBefore, AreaAfter int64
}

// Optimize searches for cheaper wordlengths meeting the error budget.
func Optimize(g *dfg.Graph, lib *model.Library, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	res := &Result{AreaBefore: dedicatedArea(g.Specs(), lib)}
	if n == 0 {
		res.Graph = dfg.New()
		res.AreaAfter = 0
		return res, nil
	}

	// Fixed input vectors at the original slot widths.
	rnd := rand.New(rand.NewSource(cfg.Seed))
	vectors := sampleInputs(g, rnd, cfg.Vectors)

	// Reference sink values at full precision.
	sigs := make([]model.Signature, n)
	for i, o := range g.Ops() {
		sigs[i] = o.Spec.Sig
	}
	ref := make([][]*big.Rat, cfg.Vectors)
	for v, in := range vectors {
		ref[v] = evaluate(g, sigs, in)
	}
	sinks := sinkOps(g)

	cur := append([]model.Signature(nil), sigs...)
	for {
		type move struct {
			op     dfg.OpID
			sig    model.Signature
			saving int64
			err    float64
		}
		var best *move
		for o := 0; o < n; o++ {
			spec := g.Op(dfg.OpID(o)).Spec
			for _, cand := range shrinkCandidates(spec.Type, cur[o], cfg.MinWidth) {
				trial := append([]model.Signature(nil), cur...)
				trial[o] = cand
				e := maxSinkError(g, trial, vectors, ref, sinks)
				if e > cfg.MaxAbsError {
					continue
				}
				saving := kindArea(spec.Type, cur[o], lib) - kindArea(spec.Type, cand, lib)
				if best == nil || saving > best.saving ||
					(saving == best.saving && e < best.err) ||
					(saving == best.saving && e == best.err && dfg.OpID(o) < best.op) {
					best = &move{op: dfg.OpID(o), sig: cand, saving: saving, err: e}
				}
			}
		}
		if best == nil {
			break
		}
		res.Trims = append(res.Trims, Trim{Op: best.op, From: cur[best.op], To: best.sig})
		cur[best.op] = best.sig
		res.MeasuredError = best.err
	}

	res.Graph = rebuild(g, cur)
	res.AreaAfter = dedicatedArea(res.Graph.Specs(), lib)
	// The final error must be re-measured when no trim was accepted.
	if len(res.Trims) == 0 {
		res.MeasuredError = maxSinkError(g, cur, vectors, ref, sinks)
	}
	return res, nil
}

// shrinkCandidates lists the one-bit reductions of a signature legal for
// the operation type: adders shrink their single width; multipliers
// shrink either operand width (kept canonical Hi >= Lo).
func shrinkCandidates(t model.OpType, s model.Signature, minW int) []model.Signature {
	var out []model.Signature
	if t.HardwareClass() == model.Add {
		if s.Hi > minW {
			out = append(out, model.AddSig(s.Hi-1))
		}
		return out
	}
	if s.Hi > minW && s.Hi > s.Lo { // shrinking Hi keeps canonical form
		out = append(out, model.Sig(s.Hi-1, s.Lo))
	}
	if s.Lo > minW { // for squares (Hi == Lo) this is the single legal move
		out = append(out, model.Sig(s.Hi, s.Lo-1))
	}
	return out
}

func kindArea(t model.OpType, s model.Signature, lib *model.Library) int64 {
	return lib.Area(model.Kind{Class: t.HardwareClass(), Sig: s})
}

func dedicatedArea(specs []model.OpSpec, lib *model.Library) int64 {
	var a int64
	for _, s := range specs {
		a += lib.Area(s.MinKind())
	}
	return a
}

// sampleInputs draws the primary-input fractions for every vector. Each
// unconnected operand slot receives a fraction quantized to the slot's
// original width, so the reference uses exactly representable stimuli.
func sampleInputs(g *dfg.Graph, rnd *rand.Rand, vectors int) []map[dfg.OpID][2]*big.Rat {
	out := make([]map[dfg.OpID][2]*big.Rat, vectors)
	for v := range out {
		in := make(map[dfg.OpID][2]*big.Rat)
		for _, o := range g.Ops() {
			widths := slotWidths(o.Spec)
			var slots [2]*big.Rat
			for slot := len(g.Pred(o.ID)); slot < 2; slot++ {
				w := widths[slot]
				k := rnd.Int63n(1 << uint(w))
				slots[slot] = new(big.Rat).SetFrac64(k, 1<<uint(w))
			}
			in[o.ID] = slots
		}
		out[v] = in
	}
	return out
}

// slotWidths mirrors the fxsim operand model: multiplies have (Hi, Lo)
// slots, adds two equal-width slots.
func slotWidths(spec model.OpSpec) [2]int {
	if spec.Type.HardwareClass() == model.Mul {
		return [2]int{spec.Sig.Hi, spec.Sig.Lo}
	}
	return [2]int{spec.Sig.Hi, spec.Sig.Hi}
}

// resultFracBits is the number of fractional bits an operation's result
// keeps under trial signature s.
func resultFracBits(t model.OpType, s model.Signature) int {
	if t.HardwareClass() == model.Mul {
		return s.Hi + s.Lo
	}
	return s.Hi
}

// truncFrac truncates x to w fractional bits (toward zero; all signals
// here are non-negative).
func truncFrac(x *big.Rat, w int) *big.Rat {
	scale := new(big.Int).Lsh(big.NewInt(1), uint(w))
	num := new(big.Int).Mul(x.Num(), scale)
	num.Quo(num, x.Denom())
	return new(big.Rat).SetFrac(num, scale)
}

// evaluate runs the fraction-domain semantics over one input vector
// under trial signatures, returning every operation's result.
func evaluate(g *dfg.Graph, sigs []model.Signature, in map[dfg.OpID][2]*big.Rat) []*big.Rat {
	order, err := g.TopoOrder()
	if err != nil {
		panic(fmt.Sprintf("errspec: validated graph failed topo: %v", err))
	}
	results := make([]*big.Rat, g.N())
	for _, id := range order {
		spec := g.Op(id).Spec
		trialSpec := model.OpSpec{Type: spec.Type, Sig: sigs[id]}
		widths := slotWidths(trialSpec)
		var vals [2]*big.Rat
		preds := g.Pred(id)
		ext := in[id]
		for slot := 0; slot < 2; slot++ {
			var raw *big.Rat
			if slot < len(preds) {
				raw = results[preds[slot]]
			} else if ext[slot] != nil {
				raw = ext[slot]
			} else {
				raw = new(big.Rat)
			}
			vals[slot] = truncFrac(raw, widths[slot])
		}
		var r *big.Rat
		switch spec.Type {
		case model.Add:
			r = new(big.Rat).Add(vals[0], vals[1])
		case model.Sub:
			r = new(big.Rat).Sub(vals[0], vals[1])
			if r.Sign() < 0 { // magnitude model: |a-b|, keeping signals non-negative
				r.Neg(r)
			}
		case model.Mul:
			r = new(big.Rat).Mul(vals[0], vals[1])
		default:
			panic(fmt.Sprintf("errspec: unknown op type %v", spec.Type))
		}
		results[id] = truncFrac(r, resultFracBits(spec.Type, sigs[id]))
	}
	return results
}

// maxSinkError measures the worst absolute sink deviation from the
// reference over all vectors.
func maxSinkError(g *dfg.Graph, sigs []model.Signature, vectors []map[dfg.OpID][2]*big.Rat, ref [][]*big.Rat, sinks []dfg.OpID) float64 {
	worst := new(big.Rat)
	for v, in := range vectors {
		got := evaluate(g, sigs, in)
		for _, s := range sinks {
			d := new(big.Rat).Sub(got[s], ref[v][s])
			if d.Sign() < 0 {
				d.Neg(d)
			}
			if d.Cmp(worst) > 0 {
				worst = d
			}
		}
	}
	f, _ := worst.Float64()
	return f
}

func sinkOps(g *dfg.Graph) []dfg.OpID {
	var sinks []dfg.OpID
	for _, o := range g.Ops() {
		if len(g.Succ(o.ID)) == 0 {
			sinks = append(sinks, o.ID)
		}
	}
	return sinks
}

// rebuild copies the graph with new signatures, preserving operand slot
// order (predecessor edge insertion order).
func rebuild(g *dfg.Graph, sigs []model.Signature) *dfg.Graph {
	out := dfg.New()
	for _, o := range g.Ops() {
		out.AddOp(o.Name, o.Spec.Type, sigs[o.ID])
	}
	for _, o := range g.Ops() {
		for _, p := range g.Pred(o.ID) {
			if err := out.AddDep(p, o.ID); err != nil {
				panic(fmt.Sprintf("errspec: rebuild edge %d->%d: %v", p, o.ID, err))
			}
		}
	}
	return out
}
