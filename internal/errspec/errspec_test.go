package errspec

import (
	"fmt"
	"math/big"
	"testing"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/tgff"
)

func TestTruncFrac(t *testing.T) {
	cases := []struct {
		num, den int64
		w        int
		want     string
	}{
		{3, 4, 2, "3/4"},  // exactly representable
		{3, 4, 1, "1/2"},  // 0.75 -> 0.5 at one fractional bit
		{5, 8, 2, "1/2"},  // 0.101 -> 0.10
		{1, 3, 4, "5/16"}, // 0.0101(01..) -> 0.0101
		{7, 8, 0, "0/1"},  // zero fractional bits
		{9, 8, 3, "9/8"},  // > 1 is preserved when representable
	}
	for _, c := range cases {
		got := truncFrac(big.NewRat(c.num, c.den), c.w)
		if got.RatString() != c.want && got.String() != c.want {
			t.Errorf("trunc(%d/%d, %d) = %s, want %s", c.num, c.den, c.w, got.RatString(), c.want)
		}
	}
}

func TestShrinkCandidates(t *testing.T) {
	adds := shrinkCandidates(model.Add, model.AddSig(8), 2)
	if len(adds) != 1 || adds[0] != model.AddSig(7) {
		t.Fatalf("add candidates %v", adds)
	}
	if got := shrinkCandidates(model.Add, model.AddSig(2), 2); got != nil {
		t.Fatalf("floored add still shrinks: %v", got)
	}
	muls := shrinkCandidates(model.Mul, model.Sig(8, 6), 2)
	if len(muls) != 2 || muls[0] != model.Sig(7, 6) || muls[1] != model.Sig(8, 5) {
		t.Fatalf("mul candidates %v", muls)
	}
	square := shrinkCandidates(model.Mul, model.Sig(6, 6), 2)
	if len(square) != 1 || square[0] != model.Sig(6, 5) {
		t.Fatalf("square mul candidates %v", square)
	}
}

// TestEvaluateHandComputed pins the fraction semantics on a two-op graph:
// (a*b) with 4x4 bits then an add at 6 bits.
func TestEvaluateHandComputed(t *testing.T) {
	g := dfg.New()
	m := g.AddOp("m", model.Mul, model.Sig(4, 4))
	a := g.AddOp("a", model.Add, model.AddSig(6))
	if err := g.AddDep(m, a); err != nil {
		t.Fatal(err)
	}
	sigs := []model.Signature{model.Sig(4, 4), model.AddSig(6)}
	in := map[dfg.OpID][2]*big.Rat{
		m: {big.NewRat(3, 4), big.NewRat(5, 16)}, // 0.75 * 0.3125
		a: {nil, big.NewRat(1, 4)},               // + 0.25
	}
	res := evaluate(g, sigs, in)
	// m: 0.75*0.3125 = 0.234375 = 15/64, exactly 8 fractional bits -> kept.
	if res[m].Cmp(big.NewRat(15, 64)) != 0 {
		t.Fatalf("mul = %s, want 15/64", res[m].RatString())
	}
	// a: operand truncated to 6 bits: 15/64 -> 14/64 = 7/32? 15/64 needs
	// 6 fractional bits: 15/64 = 0.001111b, exactly 6 bits -> kept.
	// 0.234375 + 0.25 = 0.484375 = 31/64 at 6 bits -> kept exactly.
	if res[a].Cmp(big.NewRat(31, 64)) != 0 {
		t.Fatalf("add = %s, want 31/64", res[a].RatString())
	}
}

func TestOptimizeRejectsBadConfig(t *testing.T) {
	g := dfg.New()
	g.AddOp("x", model.Add, model.AddSig(8))
	lib := model.Default()
	if _, err := Optimize(g, lib, Config{}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Optimize(g, lib, Config{MaxAbsError: 0.1, Vectors: -1}); err == nil {
		t.Error("negative vectors accepted")
	}
	if _, err := Optimize(g, lib, Config{MaxAbsError: 0.1, MinWidth: -2}); err == nil {
		t.Error("negative min width accepted")
	}
}

// TestOptimizeGenerousBudget: with a budget of 1.0 (any distortion is
// fine) everything shrinks to the floor.
func TestOptimizeGenerousBudget(t *testing.T) {
	lib := model.Default()
	g := dfg.New()
	m := g.AddOp("m", model.Mul, model.Sig(10, 8))
	a := g.AddOp("a", model.Add, model.AddSig(12))
	if err := g.AddDep(m, a); err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(g, lib, Config{MaxAbsError: 1.0, Seed: 4, Vectors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Graph.Op(m).Spec.Sig; got != model.Sig(2, 2) {
		t.Errorf("mul trimmed to %v, want 2x2", got)
	}
	if got := res.Graph.Op(a).Spec.Sig; got != model.AddSig(2) {
		t.Errorf("add trimmed to %v, want 2", got)
	}
	if res.AreaAfter >= res.AreaBefore {
		t.Errorf("area did not fall: %d -> %d", res.AreaBefore, res.AreaAfter)
	}
}

// TestOptimizeTinyBudget: a budget below one ulp of any signal blocks
// every trim and the graph survives unchanged.
func TestOptimizeTinyBudget(t *testing.T) {
	lib := model.Default()
	g := dfg.New()
	m := g.AddOp("m", model.Mul, model.Sig(6, 6))
	a := g.AddOp("a", model.Add, model.AddSig(8))
	if err := g.AddDep(m, a); err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(g, lib, Config{MaxAbsError: 1e-12, Seed: 4, Vectors: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Trims with measured error zero on the sampled vectors are possible
	// (the dropped bits may be zero in every sample), but any trim that
	// introduces real distortion must be rejected.
	if res.MeasuredError > 1e-12 {
		t.Fatalf("budget violated: %g", res.MeasuredError)
	}
	if res.AreaAfter > res.AreaBefore {
		t.Fatalf("area grew: %d -> %d", res.AreaBefore, res.AreaAfter)
	}
}

// TestOptimizeBudgetRespected: across random graphs and budgets, the
// final measured error never exceeds the budget, area never grows, and
// the trimmed graph still validates and allocates.
func TestOptimizeBudgetRespected(t *testing.T) {
	lib := model.Default()
	budgets := []float64{1.0 / 4096, 1.0 / 256, 1.0 / 16}
	for _, n := range []int{2, 5, 8} {
		graphs, err := tgff.Batch(n, 3, 6100, tgff.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for gi, g := range graphs {
			for _, budget := range budgets {
				res, err := Optimize(g, lib, Config{MaxAbsError: budget, Seed: 9, Vectors: 12})
				if err != nil {
					t.Fatalf("n=%d g=%d budget=%g: %v", n, gi, budget, err)
				}
				if res.MeasuredError > budget {
					t.Fatalf("n=%d g=%d: error %g exceeds budget %g", n, gi, res.MeasuredError, budget)
				}
				if res.AreaAfter > res.AreaBefore {
					t.Fatalf("n=%d g=%d: area grew %d -> %d", n, gi, res.AreaBefore, res.AreaAfter)
				}
				if err := res.Graph.Validate(); err != nil {
					t.Fatalf("n=%d g=%d: trimmed graph invalid: %v", n, gi, err)
				}
				lmin, err := res.Graph.MinMakespan(lib)
				if err != nil {
					t.Fatal(err)
				}
				dp, _, err := core.Allocate(res.Graph, lib, lmin+2, core.Options{})
				if err != nil {
					t.Fatalf("n=%d g=%d: trimmed graph failed allocation: %v", n, gi, err)
				}
				if err := dp.Verify(res.Graph, lib, lmin+2); err != nil {
					t.Fatalf("n=%d g=%d: %v", n, gi, err)
				}
			}
		}
	}
}

// TestOptimizeLooserBudgetNeverCostsMore: a strictly looser budget can
// only allow more trimming under the same sampled inputs.
func TestOptimizeLooserBudgetNeverCostsMore(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 6, Seed: 777})
	if err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	for _, budget := range []float64{1.0 / 65536, 1.0 / 1024, 1.0 / 64, 1.0 / 8} {
		res, err := Optimize(g, lib, Config{MaxAbsError: budget, Seed: 5, Vectors: 12})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.AreaAfter > prev {
			t.Fatalf("looser budget %g produced larger area %d > %d", budget, res.AreaAfter, prev)
		}
		prev = res.AreaAfter
	}
}

// TestOptimizeDeterministic: identical configs give identical results.
func TestOptimizeDeterministic(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 7, Seed: 2020})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MaxAbsError: 1.0 / 128, Seed: 31, Vectors: 10}
	a, err := Optimize(g, lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(g, lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AreaAfter != b.AreaAfter || len(a.Trims) != len(b.Trims) || a.MeasuredError != b.MeasuredError {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	for i := range a.Trims {
		if a.Trims[i] != b.Trims[i] {
			t.Fatalf("trim %d differs: %+v vs %+v", i, a.Trims[i], b.Trims[i])
		}
	}
}

// TestRebuildPreservesSlots: operand order (edge insertion order) must
// survive the rebuild, or operands would swap on non-commutative ops.
func TestRebuildPreservesSlots(t *testing.T) {
	g := dfg.New()
	x := g.AddOp("x", model.Add, model.AddSig(8))
	y := g.AddOp("y", model.Add, model.AddSig(8))
	s := g.AddOp("s", model.Sub, model.AddSig(8))
	if err := g.AddDep(x, s); err != nil { // slot 0: minuend
		t.Fatal(err)
	}
	if err := g.AddDep(y, s); err != nil { // slot 1: subtrahend
		t.Fatal(err)
	}
	out := rebuild(g, []model.Signature{model.AddSig(8), model.AddSig(8), model.AddSig(8)})
	preds := out.Pred(s)
	if len(preds) != 2 || preds[0] != x || preds[1] != y {
		t.Fatalf("slot order lost: %v", preds)
	}
}

// TestTrimsOnlyShrink: every trimmed signature must be covered by the
// original (pointwise no wider), each accepted trim must shrink exactly
// one operation by exactly one bit, and no width may fall below the
// floor.
func TestTrimsOnlyShrink(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 9, Seed: 515})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(g, lib, Config{MaxAbsError: 1.0 / 64, Seed: 2, Vectors: 10, MinWidth: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range g.Ops() {
		orig, trimmed := o.Spec.Sig, res.Graph.Op(o.ID).Spec.Sig
		if !orig.Covers(trimmed) {
			t.Errorf("op %d grew: %v -> %v", o.ID, orig, trimmed)
		}
		if trimmed.Lo < 3 {
			t.Errorf("op %d below floor: %v", o.ID, trimmed)
		}
	}
	for i, tr := range res.Trims {
		shrink := (tr.From.Hi - tr.To.Hi) + (tr.From.Lo - tr.To.Lo)
		// Adder signatures store Hi == Lo, so one width step moves both.
		if g.Op(tr.Op).Spec.Type.HardwareClass() == model.Add {
			if tr.From.Hi-tr.To.Hi != 1 || tr.From.Lo != tr.From.Hi || tr.To.Lo != tr.To.Hi {
				t.Errorf("trim %d is not one adder width step: %+v", i, tr)
			}
			continue
		}
		if shrink != 1 {
			t.Errorf("trim %d removes %d bits, want 1: %+v", i, shrink, tr)
		}
	}
}

func TestOptimizeEmptyGraph(t *testing.T) {
	res, err := Optimize(dfg.New(), model.Default(), Config{MaxAbsError: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.N() != 0 || len(res.Trims) != 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

// TestSeedReachesEvaluation: the Monte-Carlo error measurement must
// consume the configured seed — distinct seeds should measure (at least
// slightly) different errors on a design with real trims, while each
// individual seed stays perfectly reproducible.
func TestSeedReachesEvaluation(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 9, Seed: 404})
	if err != nil {
		t.Fatal(err)
	}
	measured := map[string]bool{}
	for seed := int64(1); seed <= 6; seed++ {
		cfg := Config{MaxAbsError: 0.5, Seed: seed, Vectors: 8}
		a, err := Optimize(g, lib, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Optimize(g, lib, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.MeasuredError != b.MeasuredError || a.AreaAfter != b.AreaAfter {
			t.Fatalf("seed %d not reproducible: %+v vs %+v", seed, a, b)
		}
		measured[fmt.Sprintf("%v/%v", a.MeasuredError, a.Trims)] = true
	}
	if len(measured) < 2 {
		t.Fatalf("6 seeds produced %d distinct measurements; seed is not reaching the evaluator", len(measured))
	}
}
