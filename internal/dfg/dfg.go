// Package dfg implements sequencing graphs P(O, S): directed acyclic
// graphs of operations whose edges are data dependencies, in the sense of
// De Micheli's "Synthesis and Optimization of Digital Circuits" as used by
// the paper. It provides construction, validation, topological ordering,
// ASAP/ALAP analysis under arbitrary per-operation latencies, and the
// minimum feasible latency bound λ_min.
package dfg

import (
	"errors"
	"fmt"

	"repro/internal/model"
)

// OpID identifies an operation within one Graph; IDs are dense, starting
// at zero, in insertion order.
type OpID int

// Op is one operation of the sequencing graph.
type Op struct {
	ID   OpID
	Name string // optional human-readable label
	Spec model.OpSpec
}

// Graph is a sequencing graph P(O, S). The zero value is an empty graph
// ready for use.
type Graph struct {
	ops  []Op
	succ [][]OpID
	pred [][]OpID
}

// New returns an empty sequencing graph.
func New() *Graph { return &Graph{} }

// AddOp appends an operation and returns its ID.
func (g *Graph) AddOp(name string, typ model.OpType, sig model.Signature) OpID {
	id := OpID(len(g.ops))
	g.ops = append(g.ops, Op{ID: id, Name: name, Spec: model.OpSpec{Type: typ, Sig: sig}})
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// AddDep records a data dependency: from must complete before to starts.
// Duplicate edges are ignored.
func (g *Graph) AddDep(from, to OpID) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("dfg: dependency %d->%d references unknown operation", from, to)
	}
	if from == to {
		return fmt.Errorf("dfg: self dependency on operation %d", from)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return nil
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	return nil
}

func (g *Graph) valid(id OpID) bool { return id >= 0 && int(id) < len(g.ops) }

// N returns the number of operations.
func (g *Graph) N() int { return len(g.ops) }

// Op returns the operation with the given ID.
func (g *Graph) Op(id OpID) Op { return g.ops[id] }

// Ops returns all operations in ID order. The slice must not be modified.
func (g *Graph) Ops() []Op { return g.ops }

// Succ returns the successors of id. The slice must not be modified.
func (g *Graph) Succ(id OpID) []OpID { return g.succ[id] }

// Pred returns the predecessors of id. The slice must not be modified.
func (g *Graph) Pred(id OpID) []OpID { return g.pred[id] }

// Specs returns the operation specs in ID order, the input expected by
// model.ExtractKinds.
func (g *Graph) Specs() []model.OpSpec {
	specs := make([]model.OpSpec, len(g.ops))
	for i, o := range g.ops {
		specs[i] = o.Spec
	}
	return specs
}

// ErrCyclic is returned by Validate and TopoOrder when the graph contains
// a dependency cycle.
var ErrCyclic = errors.New("dfg: sequencing graph contains a cycle")

// TopoOrder returns the operations in a topological order (stable: among
// simultaneously ready operations, lower IDs first), or ErrCyclic.
//
// The order is the one produced by repeated ascending ID sweeps placing
// every ready operation as its index is passed — an operation freed at an
// index the current sweep already passed waits for the next sweep. That
// sweep semantics is preserved exactly (downstream consumers derive
// deterministic priorities and annealing ranks from it) but simulated
// with two min-heaps in O((V+E) log V) instead of O(V²) sweeps.
func (g *Graph) TopoOrder() ([]OpID, error) {
	n := len(g.ops)
	indeg := make([]int, n)
	for _, ss := range g.succ {
		for _, s := range ss {
			indeg[s]++
		}
	}
	// cur holds ready IDs the current sweep has not passed yet; next
	// holds IDs freed behind the sweep position, placed next round.
	var cur, next intHeap
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			cur.push(i)
		}
	}
	order := make([]OpID, 0, n)
	for len(order) < n {
		if len(cur) == 0 {
			if len(next) == 0 {
				return nil, ErrCyclic
			}
			cur, next = next, cur
		}
		i := cur.pop()
		order = append(order, OpID(i))
		for _, s := range g.succ[i] {
			indeg[s]--
			if indeg[s] == 0 {
				if int(s) > i {
					cur.push(int(s))
				} else {
					next.push(int(s))
				}
			}
		}
	}
	return order, nil
}

// intHeap is a minimal binary min-heap over ints, avoiding the
// container/heap interface indirection on the scheduling hot path.
type intHeap []int

func (h *intHeap) push(v int) {
	*h = append(*h, v)
	a := *h
	for i := len(a) - 1; i > 0; {
		p := (i - 1) / 2
		if a[p] <= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	*h = a[:last]
	a = a[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a) && a[l] < a[m] {
			m = l
		}
		if r < len(a) && a[r] < a[m] {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// Validate checks structural sanity: acyclicity and valid signatures.
func (g *Graph) Validate() error {
	for _, o := range g.ops {
		if !o.Spec.Sig.Valid() {
			return fmt.Errorf("dfg: operation %d (%s) has invalid signature %v", o.ID, o.Name, o.Spec.Sig)
		}
	}
	_, err := g.TopoOrder()
	return err
}

// Latencies maps each operation to a positive cycle count.
type Latencies func(OpID) int

// ASAP returns the as-soon-as-possible start step of every operation under
// the given latencies with unconstrained resources, along with the
// resulting makespan (first step is 0; makespan is the completion step of
// the last operation). The graph must be acyclic.
func (g *Graph) ASAP(lat Latencies) (start []int, makespan int, err error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	start = make([]int, len(g.ops))
	for _, id := range order {
		s := 0
		for _, p := range g.pred[id] {
			if f := start[p] + lat(p); f > s {
				s = f
			}
		}
		start[id] = s
		if f := s + lat(id); f > makespan {
			makespan = f
		}
	}
	return start, makespan, nil
}

// ALAP returns the as-late-as-possible start step of every operation such
// that all operations complete by deadline under the given latencies.
// It returns an error if the deadline is infeasible (some start < 0) or
// the graph is cyclic.
func (g *Graph) ALAP(lat Latencies, deadline int) ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	start := make([]int, len(g.ops))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		s := deadline - lat(id)
		for _, c := range g.succ[id] {
			if v := start[c] - lat(id); v < s {
				s = v
			}
		}
		if s < 0 {
			return nil, fmt.Errorf("dfg: deadline %d infeasible at operation %d", deadline, id)
		}
		start[id] = s
	}
	return start, nil
}

// MinLatencies returns the per-operation minimum latencies (each operation
// on its own minimal kind) under the library.
func (g *Graph) MinLatencies(lib *model.Library) Latencies {
	lats := make([]int, len(g.ops))
	for i, o := range g.ops {
		lats[i] = model.MinLatency(o.Spec, lib)
	}
	return func(id OpID) int { return lats[id] }
}

// MinMakespan returns λ_min: the minimum possible overall latency of the
// graph, i.e. the critical-path length with every operation at its fastest
// (own-wordlength) latency and unconstrained resources. This is the λ_min
// the paper relaxes by 0–30% to create latency constraints.
func (g *Graph) MinMakespan(lib *model.Library) (int, error) {
	_, ms, err := g.ASAP(g.MinLatencies(lib))
	return ms, err
}

// CriticalOps returns the operations with zero slack (ASAP == ALAP against
// the ASAP makespan) under the given latencies: the standard critical path
// determined purely by sequencing precedence.
func (g *Graph) CriticalOps(lat Latencies) ([]OpID, error) {
	asap, ms, err := g.ASAP(lat)
	if err != nil {
		return nil, err
	}
	alap, err := g.ALAP(lat, ms)
	if err != nil {
		return nil, err
	}
	var crit []OpID
	for i := range g.ops {
		if asap[i] == alap[i] {
			crit = append(crit, OpID(i))
		}
	}
	return crit, nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		ops:  append([]Op(nil), g.ops...),
		succ: make([][]OpID, len(g.succ)),
		pred: make([][]OpID, len(g.pred)),
	}
	for i := range g.succ {
		c.succ[i] = append([]OpID(nil), g.succ[i]...)
		c.pred[i] = append([]OpID(nil), g.pred[i]...)
	}
	return c
}

// NumEdges returns the number of dependency edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, ss := range g.succ {
		n += len(ss)
	}
	return n
}
