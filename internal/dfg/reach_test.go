package dfg

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/model"
)

// TestReachIncrementalMatchesRebuild drives a Reach through randomized
// serialization-edge sequences (the shape allocator merges produce) and
// checks after every insertion that the incrementally maintained closure
// is identical to one rebuilt from scratch on the augmented graph.
func TestReachIncrementalMatchesRebuild(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rnd.Intn(24)
		g := randomDAG(rnd, n)
		inc, err := NewReach(g)
		if err != nil {
			t.Fatal(err)
		}
		mirror := g.Clone()
		for step := 0; step < 3*n; step++ {
			u, v := OpID(rnd.Intn(n)), OpID(rnd.Intn(n))
			err := inc.AddEdge(u, v)
			if errors.Is(err, ErrCycle) {
				// The rebuilt closure must agree that this closes a cycle.
				ref, rerr := NewReach(mirror)
				if rerr != nil {
					t.Fatal(rerr)
				}
				if u != v && !ref.Reachable(v, u) {
					t.Fatalf("trial %d step %d: AddEdge(%d,%d) reported cycle, rebuild disagrees", trial, step, u, v)
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if aerr := mirror.AddDep(u, v); aerr != nil {
				t.Fatalf("trial %d step %d: mirror rejected %d → %d: %v", trial, step, u, v, aerr)
			}
			ref, rerr := NewReach(mirror)
			if rerr != nil {
				t.Fatal(rerr)
			}
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if got, want := inc.Reachable(OpID(a), OpID(b)), ref.Reachable(OpID(a), OpID(b)); got != want {
						t.Fatalf("trial %d step %d: Reachable(%d,%d)=%v, rebuild says %v", trial, step, a, b, got, want)
					}
				}
			}
		}
	}
}

func TestReachRelatedAndClone(t *testing.T) {
	g := New()
	for i := 0; i < 4; i++ {
		g.AddOp("", model.Mul, model.Sig(8, 8))
	}
	// 0 → 1 → 2, 3 isolated.
	if err := g.AddDep(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(1, 2); err != nil {
		t.Fatal(err)
	}
	r, err := NewReach(g)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reachable(0, 2) || r.Reachable(2, 0) {
		t.Fatalf("closure wrong: 0→2 %v, 2→0 %v", r.Reachable(0, 2), r.Reachable(2, 0))
	}
	if r.Related(0, 3) {
		t.Fatal("3 should be unrelated to 0")
	}
	c := r.Clone()
	if err := c.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if !c.Reachable(0, 3) {
		t.Fatal("clone: 0 should reach 3 after AddEdge(2,3)")
	}
	if r.Reachable(0, 3) {
		t.Fatal("original closure mutated by clone's AddEdge")
	}
	if err := c.AddEdge(3, 0); !errors.Is(err, ErrCycle) {
		t.Fatalf("AddEdge(3,0) should close a cycle, got %v", err)
	}
}
