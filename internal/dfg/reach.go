package dfg

import (
	"errors"
	"fmt"

	"repro/internal/bitset"
)

// ErrCycle is returned by Reach.AddEdge when the new edge would close a
// precedence cycle.
var ErrCycle = errors.New("dfg: edge would create a cycle")

// Reach is a transitive-closure index over a sequencing graph,
// maintained incrementally: building it costs one bitset sweep over the
// graph, after which each added precedence or serialization edge updates
// the closure in place instead of rebuilding it. Allocator passes that
// merge operations onto shared resources (clique growth, annealing
// merges, e-graph extraction) express each merge as the serialization
// edges it induces and keep pairwise reachability queries O(1).
//
// Reach stores both directions — the sets reachable from u and reaching
// u — so an insertion touches only the affected pairs (Italiano's
// algorithm): when (u, v) arrives, every x that reaches u inherits
// everything reachable from v. Memory is 2·n²/8 bytes; at the 1000-node
// scale the allocator targets this is ~250 KB.
type Reach struct {
	n    int
	to   []bitset.Set // to[u]: every v ≠ u with a path u → v
	from []bitset.Set // from[v]: every u ≠ v with a path u → v
}

// NewReach builds the closure of the graph's current edge set. The graph
// must be acyclic (Validate reports cycles as ErrCycle-free graphs only).
func NewReach(g *Graph) (*Reach, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.N()
	r := &Reach{n: n, to: make([]bitset.Set, n), from: make([]bitset.Set, n)}
	for i := 0; i < n; i++ {
		r.to[i] = bitset.New(n)
		r.from[i] = bitset.New(n)
	}
	for i := n - 1; i >= 0; i-- {
		u := order[i]
		for _, s := range g.Succ(u) {
			r.to[u].Add(int(s))
			r.to[u].Union(r.to[s])
		}
	}
	for _, u := range order {
		for _, p := range g.Pred(u) {
			r.from[u].Add(int(p))
			r.from[u].Union(r.from[p])
		}
	}
	return r, nil
}

// Reachable reports whether a path u → v exists (false for u == v).
func (r *Reach) Reachable(u, v OpID) bool {
	return r.to[u].Has(int(v))
}

// Related reports whether the operations are ordered by the closure in
// either direction. Unrelated operations may execute concurrently;
// serializing them on a shared resource adds a constraint the
// sequencing graph did not have.
func (r *Reach) Related(u, v OpID) bool {
	return r.to[u].Has(int(v)) || r.to[v].Has(int(u))
}

// AddEdge inserts the edge u → v and updates the closure in place. A
// no-op when the edge is already implied. Returns ErrCycle (closure
// unchanged) when v already reaches u.
func (r *Reach) AddEdge(u, v OpID) error {
	if u == v || r.to[v].Has(int(u)) {
		return fmt.Errorf("%w: %d → %d", ErrCycle, u, v)
	}
	if r.to[u].Has(int(v)) {
		return nil
	}
	// Every x with x → u (plus u itself) now reaches v and v's cone;
	// symmetrically v's cone gains u's ancestors.
	r.to[u].Add(int(v))
	r.to[u].Union(r.to[v])
	r.from[v].Add(int(u))
	r.from[v].Union(r.from[u])
	r.from[u].ForEach(func(x int) {
		r.to[x].Add(int(v))
		r.to[x].Union(r.to[v])
	})
	r.to[v].ForEach(func(y int) {
		r.from[y].Add(int(u))
		r.from[y].Union(r.from[u])
	})
	return nil
}

// ToSet returns the set of operations reachable from u as a bit set
// over operation IDs. The set is the closure's internal state: callers
// must not modify it, and it changes under AddEdge.
func (r *Reach) ToSet(u OpID) bitset.Set { return r.to[u] }

// FromSet returns the set of operations that reach u. Same aliasing
// rules as ToSet.
func (r *Reach) FromSet(u OpID) bitset.Set { return r.from[u] }

// Clone returns an independent copy, so speculative merge sequences can
// be explored and abandoned without rebuilding.
func (r *Reach) Clone() *Reach {
	c := &Reach{n: r.n, to: make([]bitset.Set, r.n), from: make([]bitset.Set, r.n)}
	for i := 0; i < r.n; i++ {
		c.to[i] = r.to[i].Clone()
		c.from[i] = r.from[i].Clone()
	}
	return c
}
