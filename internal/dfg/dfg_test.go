package dfg

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/model"
)

// chain builds a -> b -> c with given types.
func chain(t *testing.T) *Graph {
	t.Helper()
	g := New()
	a := g.AddOp("a", model.Mul, model.Sig(8, 8))
	b := g.AddOp("b", model.Add, model.AddSig(16))
	c := g.AddOp("c", model.Mul, model.Sig(16, 4))
	if err := g.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(b, c); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddOpAndAccessors(t *testing.T) {
	g := chain(t)
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	if g.Op(1).Name != "b" || g.Op(1).Spec.Type != model.Add {
		t.Errorf("Op(1) = %+v", g.Op(1))
	}
	if len(g.Succ(0)) != 1 || g.Succ(0)[0] != 1 {
		t.Errorf("Succ(0) = %v", g.Succ(0))
	}
	if len(g.Pred(2)) != 1 || g.Pred(2)[0] != 1 {
		t.Errorf("Pred(2) = %v", g.Pred(2))
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	specs := g.Specs()
	if len(specs) != 3 || specs[0].Type != model.Mul {
		t.Errorf("Specs = %v", specs)
	}
}

func TestAddDepErrors(t *testing.T) {
	g := New()
	a := g.AddOp("a", model.Add, model.AddSig(8))
	if err := g.AddDep(a, a); err == nil {
		t.Error("self dependency accepted")
	}
	if err := g.AddDep(a, OpID(5)); err == nil {
		t.Error("unknown target accepted")
	}
	if err := g.AddDep(OpID(-1), a); err == nil {
		t.Error("negative source accepted")
	}
	b := g.AddOp("b", model.Add, model.AddSig(8))
	if err := g.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(a, b); err != nil {
		t.Fatal("duplicate edge must be a no-op, got", err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("duplicate edge stored: %d edges", g.NumEdges())
	}
}

func TestTopoOrder(t *testing.T) {
	g := chain(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[OpID]int)
	for i, id := range order {
		pos[id] = i
	}
	for from, ss := range g.succ {
		for _, to := range ss {
			if pos[OpID(from)] >= pos[to] {
				t.Errorf("topo order violates edge %d->%d", from, to)
			}
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New()
	a := g.AddOp("a", model.Add, model.AddSig(8))
	b := g.AddOp("b", model.Add, model.AddSig(8))
	g.AddDep(a, b)
	g.AddDep(b, a)
	if _, err := g.TopoOrder(); err != ErrCyclic {
		t.Errorf("want ErrCyclic, got %v", err)
	}
	if err := g.Validate(); err != ErrCyclic {
		t.Errorf("Validate want ErrCyclic, got %v", err)
	}
}

func TestValidateBadSignature(t *testing.T) {
	g := New()
	g.AddOp("bad", model.Add, model.Signature{Hi: 0, Lo: 0})
	if err := g.Validate(); err == nil {
		t.Error("invalid signature accepted")
	}
}

func TestASAPChain(t *testing.T) {
	g := chain(t)
	lib := model.Default()
	start, ms, err := g.ASAP(g.MinLatencies(lib))
	if err != nil {
		t.Fatal(err)
	}
	// mul 8x8 = 2 cycles, add = 2 cycles, mul 16x4 = ceil(20/8) = 3.
	want := []int{0, 2, 4}
	for i, w := range want {
		if start[i] != w {
			t.Errorf("start[%d] = %d, want %d", i, start[i], w)
		}
	}
	if ms != 7 {
		t.Errorf("makespan = %d, want 7", ms)
	}
}

func TestALAP(t *testing.T) {
	g := chain(t)
	lib := model.Default()
	lat := g.MinLatencies(lib)
	alap, err := g.ALAP(lat, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 5, 7}
	for i, w := range want {
		if alap[i] != w {
			t.Errorf("alap[%d] = %d, want %d", i, alap[i], w)
		}
	}
	if _, err := g.ALAP(lat, 6); err == nil {
		t.Error("infeasible deadline accepted")
	}
}

func TestMinMakespanAndCritical(t *testing.T) {
	// Diamond: a feeds b and c; d joins them. b is slower than c.
	g := New()
	lib := model.Default()
	a := g.AddOp("a", model.Add, model.AddSig(8))
	b := g.AddOp("b", model.Mul, model.Sig(16, 16)) // 4 cycles
	c := g.AddOp("c", model.Add, model.AddSig(8))   // 2 cycles
	d := g.AddOp("d", model.Add, model.AddSig(8))
	for _, e := range [][2]OpID{{a, b}, {a, c}, {b, d}, {c, d}} {
		if err := g.AddDep(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	if ms != 8 { // 2 + 4 + 2
		t.Fatalf("λ_min = %d, want 8", ms)
	}
	crit, err := g.CriticalOps(g.MinLatencies(lib))
	if err != nil {
		t.Fatal(err)
	}
	want := map[OpID]bool{a: true, b: true, d: true}
	if len(crit) != 3 {
		t.Fatalf("critical = %v", crit)
	}
	for _, id := range crit {
		if !want[id] {
			t.Errorf("unexpected critical op %d", id)
		}
	}
}

func TestASAPALAPConsistencyRandom(t *testing.T) {
	lib := model.Default()
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		g := randomDAG(rnd, 1+rnd.Intn(20))
		lat := g.MinLatencies(lib)
		asap, ms, err := g.ASAP(lat)
		if err != nil {
			t.Fatal(err)
		}
		alap, err := g.ALAP(lat, ms)
		if err != nil {
			t.Fatal(err)
		}
		for i := range asap {
			if asap[i] > alap[i] {
				t.Fatalf("asap[%d]=%d > alap[%d]=%d", i, asap[i], i, alap[i])
			}
			// Precedence feasibility of both schedules.
			for _, p := range g.Pred(OpID(i)) {
				if asap[p]+lat(p) > asap[i] {
					t.Fatalf("ASAP violates precedence %d->%d", p, i)
				}
				if alap[p]+lat(p) > alap[i] {
					t.Fatalf("ALAP violates precedence %d->%d", p, i)
				}
			}
		}
		// At least one op must be critical.
		crit, err := g.CriticalOps(lat)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() > 0 && len(crit) == 0 {
			t.Fatal("no critical operations")
		}
	}
}

// randomDAG builds a random DAG with edges from lower to higher IDs.
func randomDAG(rnd *rand.Rand, n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		if rnd.Intn(2) == 0 {
			g.AddOp("", model.Add, model.AddSig(1+rnd.Intn(24)))
		} else {
			g.AddOp("", model.Mul, model.Sig(1+rnd.Intn(24), 1+rnd.Intn(24)))
		}
	}
	for i := 1; i < n; i++ {
		for k := 0; k < 2; k++ {
			if rnd.Intn(3) == 0 {
				g.AddDep(OpID(rnd.Intn(i)), OpID(i))
			}
		}
	}
	return g
}

func TestClone(t *testing.T) {
	g := chain(t)
	c := g.Clone()
	c.AddOp("extra", model.Add, model.AddSig(4))
	c.AddDep(0, 3)
	if g.N() != 3 || c.N() != 4 {
		t.Errorf("clone not independent: g.N=%d c.N=%d", g.N(), c.N())
	}
	if len(g.Succ(0)) != 1 {
		t.Errorf("clone mutated original succ: %v", g.Succ(0))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := chain(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %d ops %d edges", back.N(), back.NumEdges())
	}
	for i := range g.ops {
		if back.ops[i].Spec != g.ops[i].Spec || back.ops[i].Name != g.ops[i].Name {
			t.Errorf("op %d mismatch: %+v vs %+v", i, back.ops[i], g.ops[i])
		}
	}
}

func TestJSONErrors(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"ops":[{"type":"div","hi":8}]}`), &g); err == nil {
		t.Error("unknown op type accepted")
	}
	if err := json.Unmarshal([]byte(`{"ops":[{"type":"add","hi":8}],"deps":[[0,5]]}`), &g); err == nil {
		t.Error("bad dep accepted")
	}
	if err := json.Unmarshal([]byte(`{bad json`), &g); err == nil {
		t.Error("malformed json accepted")
	}
	// Cycle must be rejected by the embedded Validate.
	cyc := `{"ops":[{"type":"add","hi":8},{"type":"add","hi":8}],"deps":[[0,1],[1,0]]}`
	if err := json.Unmarshal([]byte(cyc), &g); err == nil {
		t.Error("cyclic graph accepted")
	}
	// Lo defaulting.
	if err := json.Unmarshal([]byte(`{"ops":[{"type":"mul","hi":8}]}`), &g); err != nil {
		t.Fatal(err)
	}
	if g.Op(0).Spec.Sig != model.Sig(8, 8) {
		t.Errorf("lo defaulting broken: %v", g.Op(0).Spec.Sig)
	}
}
