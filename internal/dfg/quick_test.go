package dfg

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// buildRandomDAG constructs a DAG from raw bytes: op i gets a type and
// width from raw, and an edge i->j (i < j) exists when the corresponding
// bit is set. Construction order guarantees acyclicity.
func buildRandomDAG(raw []byte) *Graph {
	n := len(raw)
	if n > 10 {
		n = 10
	}
	g := New()
	for i := 0; i < n; i++ {
		w := 2 + int(raw[i]%16)
		if raw[i]%3 == 0 {
			g.AddOp("", model.Mul, model.Sig(w, 2+int(raw[i]%7)))
		} else {
			g.AddOp("", model.Add, model.AddSig(w))
		}
	}
	bit := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b := raw[bit%len(raw)]
			if (b>>(uint(bit)%8))&1 == 1 {
				_ = g.AddDep(OpID(i), OpID(j))
			}
			bit++
		}
	}
	return g
}

// TestDAGPropertiesQuick: for arbitrary DAGs, the structural analyses
// must agree with one another:
//
//   - TopoOrder places every producer before its consumers;
//   - ASAP starts respect dependencies with exact tightness at the
//     binding predecessor;
//   - ALAP at the ASAP makespan never precedes ASAP (non-negative slack);
//   - the critical path is non-empty and its ops have zero slack.
func TestDAGPropertiesQuick(t *testing.T) {
	lib := model.Default()
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		g := buildRandomDAG(raw)
		if g.N() == 0 {
			return true
		}
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, g.N())
		for i, id := range order {
			pos[id] = i
		}
		for _, o := range g.Ops() {
			for _, s := range g.Succ(o.ID) {
				if pos[o.ID] >= pos[s] {
					t.Logf("topo violation %d -> %d", o.ID, s)
					return false
				}
			}
		}
		lat := g.MinLatencies(lib)
		asap, ms, err := g.ASAP(lat)
		if err != nil {
			return false
		}
		alap, err := g.ALAP(lat, ms)
		if err != nil {
			return false
		}
		for i := range asap {
			id := OpID(i)
			// Dependencies respected, and tight at some predecessor (or 0).
			tight := asap[i] == 0
			for _, p := range g.Pred(id) {
				if asap[p]+lat(p) > asap[i] {
					return false
				}
				if asap[p]+lat(p) == asap[i] {
					tight = true
				}
			}
			if !tight {
				t.Logf("op %d ASAP %d not tight", i, asap[i])
				return false
			}
			if alap[i] < asap[i] {
				t.Logf("op %d negative slack: ASAP %d ALAP %d", i, asap[i], alap[i])
				return false
			}
			if alap[i]+lat(id) > ms {
				return false
			}
		}
		crit, err := g.CriticalOps(lat)
		if err != nil || len(crit) == 0 {
			return false
		}
		for _, c := range crit {
			if asap[c] != alap[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCloneIndependenceQuick: mutating a clone must never affect the
// original's structure.
func TestCloneIndependenceQuick(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) < 2 {
			return true
		}
		g := buildRandomDAG(raw)
		if g.N() < 2 {
			return true
		}
		edges := g.NumEdges()
		c := g.Clone()
		// Mutate the clone: add an op and an edge.
		id := c.AddOp("extra", model.Add, model.AddSig(4))
		_ = c.AddDep(OpID(0), id)
		return g.N() == c.N()-1 && g.NumEdges() == edges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
