package dfg

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/model"
)

// jsonGraph is the sequencing-graph part of the v1 wire schema, shared
// by the cmd tools, the mwl Problem encoding and the mwld service. The
// encoding is canonical — operations in id order, dependencies sorted by
// (from, to) — so byte equality of the output implies graph equality and
// the encoding can seed content hashes.
type jsonGraph struct {
	Ops  []jsonOp `json:"ops"`
	Deps [][2]int `json:"deps"`
}

type jsonOp struct {
	Name string `json:"name,omitempty"`
	Type string `json:"type"`         // "add", "sub" or "mul"
	Hi   int    `json:"hi"`           // larger operand width
	Lo   int    `json:"lo,omitempty"` // smaller operand width; defaults to hi
}

// MarshalJSON encodes the graph in the canonical interchange format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Ops: make([]jsonOp, len(g.ops))}
	for i, o := range g.ops {
		jg.Ops[i] = jsonOp{Name: o.Name, Type: o.Spec.Type.String(), Hi: o.Spec.Sig.Hi, Lo: o.Spec.Sig.Lo}
	}
	for from, ss := range g.succ {
		for _, to := range ss {
			jg.Deps = append(jg.Deps, [2]int{from, int(to)})
		}
	}
	sort.Slice(jg.Deps, func(a, b int) bool {
		if jg.Deps[a][0] != jg.Deps[b][0] {
			return jg.Deps[a][0] < jg.Deps[b][0]
		}
		return jg.Deps[a][1] < jg.Deps[b][1]
	})
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph from the interchange format and validates it.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	ng := New()
	for i, jo := range jg.Ops {
		typ, err := model.ParseOpType(jo.Type)
		if err != nil {
			return fmt.Errorf("dfg: op %d: %w", i, err)
		}
		lo := jo.Lo
		if lo == 0 {
			lo = jo.Hi
		}
		ng.AddOp(jo.Name, typ, model.Sig(jo.Hi, lo))
	}
	for _, d := range jg.Deps {
		if err := ng.AddDep(OpID(d[0]), OpID(d[1])); err != nil {
			return err
		}
	}
	if err := ng.Validate(); err != nil {
		return err
	}
	*g = *ng
	return nil
}
