package dfg

import (
	"encoding/json"
	"fmt"

	"repro/internal/model"
)

// jsonGraph is the on-disk interchange format used by the cmd tools.
type jsonGraph struct {
	Ops  []jsonOp `json:"ops"`
	Deps [][2]int `json:"deps"`
}

type jsonOp struct {
	Name string `json:"name,omitempty"`
	Type string `json:"type"`         // "add", "sub" or "mul"
	Hi   int    `json:"hi"`           // larger operand width
	Lo   int    `json:"lo,omitempty"` // smaller operand width; defaults to hi
}

// MarshalJSON encodes the graph in the interchange format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Ops: make([]jsonOp, len(g.ops))}
	for i, o := range g.ops {
		jg.Ops[i] = jsonOp{Name: o.Name, Type: o.Spec.Type.String(), Hi: o.Spec.Sig.Hi, Lo: o.Spec.Sig.Lo}
	}
	for from, ss := range g.succ {
		for _, to := range ss {
			jg.Deps = append(jg.Deps, [2]int{from, int(to)})
		}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph from the interchange format and validates it.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	ng := New()
	for i, jo := range jg.Ops {
		var typ model.OpType
		switch jo.Type {
		case "add":
			typ = model.Add
		case "sub":
			typ = model.Sub
		case "mul":
			typ = model.Mul
		default:
			return fmt.Errorf("dfg: op %d has unknown type %q", i, jo.Type)
		}
		lo := jo.Lo
		if lo == 0 {
			lo = jo.Hi
		}
		ng.AddOp(jo.Name, typ, model.Sig(jo.Hi, lo))
	}
	for _, d := range jg.Deps {
		if err := ng.AddDep(OpID(d[0]), OpID(d[1])); err != nil {
			return err
		}
	}
	if err := ng.Validate(); err != nil {
		return err
	}
	*g = *ng
	return nil
}
