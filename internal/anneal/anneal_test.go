package anneal

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/tgff"
)

func TestAnnealProducesLegalDatapaths(t *testing.T) {
	lib := model.Default()
	for seed := int64(0); seed < 10; seed++ {
		g, err := tgff.Generate(tgff.Config{N: 9, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lmin, err := g.MinMakespan(lib)
		if err != nil {
			t.Fatal(err)
		}
		lambda := lmin + lmin/5
		dp, st, err := AllocateCtx(context.Background(), g, lib, lambda, Options{Seed: seed, Moves: 4000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := dp.Verify(g, lib, lambda); err != nil {
			t.Fatalf("seed %d: illegal datapath: %v", seed, err)
		}
		if st.Moves == 0 || st.Accepted == 0 {
			t.Fatalf("seed %d: annealer did not search (stats %+v)", seed, st)
		}
	}
}

// TestAnnealSharesResources: with slack, annealing must beat the trivial
// one-instance-per-operation allocation on at least some graphs — the
// whole point of the merge moves.
func TestAnnealSharesResources(t *testing.T) {
	lib := model.Default()
	improved := 0
	for seed := int64(0); seed < 8; seed++ {
		g, err := tgff.Generate(tgff.Config{N: 10, Seed: 40 + seed})
		if err != nil {
			t.Fatal(err)
		}
		var dedicated int64
		for _, o := range g.Ops() {
			dedicated += lib.Area(o.Spec.MinKind())
		}
		lmin, err := g.MinMakespan(lib)
		if err != nil {
			t.Fatal(err)
		}
		dp, _, err := AllocateCtx(context.Background(), g, lib, lmin+lmin/3, Options{Seed: seed, Moves: 6000})
		if err != nil {
			t.Fatal(err)
		}
		if dp.Area(lib) < dedicated {
			improved++
		}
	}
	if improved == 0 {
		t.Fatal("annealing never improved on dedicated per-operation instances")
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 11, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 42, Moves: 3000}
	a, sa, err := AllocateCtx(context.Background(), g, lib, lmin+4, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := AllocateCtx(context.Background(), g, lib, lmin+4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different datapaths")
	}
	if sa != sb {
		t.Fatalf("same seed produced different stats: %+v vs %+v", sa, sb)
	}
}

func TestAnnealInfeasibleLambda(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 6, Seed: 3, Shape: tgff.ShapeChain})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = AllocateCtx(context.Background(), g, lib, lmin-1, Options{Seed: 1, Moves: 100})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// countdownCtx cancels deterministically at the Nth Err poll, proving
// the inner loop polls ctx every proposal.
type countdownCtx struct {
	context.Context
	left int
}

func (c *countdownCtx) Err() error {
	if c.left--; c.left < 0 {
		return context.Canceled
	}
	return nil
}

func TestAnnealCancellation(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &countdownCtx{Context: context.Background(), left: 10}
	_, st, err := AllocateCtx(ctx, g, lib, lmin+3, Options{Seed: 5, Moves: 100000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Moves > 10 {
		t.Fatalf("%d proposals evaluated after cancellation at poll 10", st.Moves)
	}
}

func TestAnnealEmptyGraphAndQuality(t *testing.T) {
	lib := model.Default()
	dp, _, err := AllocateCtx(context.Background(), dfg.New(), lib, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dp.Instances) != 0 {
		t.Fatal("empty graph produced instances")
	}

	// On a small graph with slack, annealing should be in the same area
	// league as DPAlloc (not necessarily better, but never wildly worse
	// than 2x — it starts from the feasible dedicated allocation and
	// only accepts feasible states).
	g, err := tgff.Generate(tgff.Config{N: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	lambda := lmin + lmin/4
	h, _, err := core.AllocateCtx(context.Background(), g, lib, lambda, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	adp, _, err := AllocateCtx(context.Background(), g, lib, lambda, Options{Seed: 7, Moves: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if adp.Area(lib) > 2*h.Area(lib) {
		t.Fatalf("anneal area %d vs heuristic %d: unreasonably worse", adp.Area(lib), h.Area(lib))
	}
}
