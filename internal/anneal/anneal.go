// Package anneal implements a simulated-annealing datapath allocator
// over joint (schedule, binding) moves, an alternative point in the
// quality/runtime trade-off space next to the paper's one-shot DPAlloc
// heuristic: stochastic search routinely beats constructive heuristics
// on irregular graphs at the price of a move budget.
//
// The state is a partition of the operations into operator instances
// (each instance's concrete kind is the element-wise join of its
// members' signatures, so an instance always covers everything bound to
// it) plus a scheduling-priority permutation. A binding-aware list
// scheduler derives the schedule: operations become ready when their
// predecessors finish and serialize on their shared instance, so every
// evaluated state is a structurally legal datapath and only the latency
// constraint λ can fail. Moves are the classic allocation neighborhood:
//
//   - merge: fuse two instances of one hardware class (area drops to the
//     joined kind's cost, latencies may grow);
//   - split: evict one operation onto a fresh minimal instance;
//   - rebind: move one operation to another existing instance;
//   - slot swap: exchange two operations' scheduling priorities, which
//     re-times the derived schedule without touching the binding.
//
// Acceptance is standard Metropolis with geometric cooling: improving
// feasible moves always pass, worsening feasible moves pass with
// probability exp(-ΔA/T), infeasible proposals (makespan > λ) are
// rejected outright. The RNG is seeded from Options, so a fixed seed
// reproduces the identical solution bit for bit; the inner loop polls
// ctx every proposal and returns promptly on cancellation.
package anneal

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
)

// ErrInfeasible is returned when no datapath can meet the latency
// constraint (λ below λ_min).
var ErrInfeasible = errors.New("anneal: latency constraint infeasible")

// Options tunes the annealer. The zero value applies the documented
// defaults; Seed 0 is a valid (and the default) seed.
type Options struct {
	// Seed seeds the move RNG. Identical seeds (with identical inputs
	// and options) produce identical solutions.
	Seed int64
	// Moves is the total proposal budget; default 20000.
	Moves int
	// InitTemp is the starting temperature in area units; <= 0 derives
	// it from the initial area (5% of it, at least 1).
	InitTemp float64
	// Cooling is the geometric decay applied per epoch, in (0, 1);
	// default 0.95. An epoch is max(64, 8·n) proposals.
	Cooling float64
}

func (o Options) withDefaults() Options {
	if o.Moves <= 0 {
		o.Moves = 20000
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = 0.95
	}
	return o
}

// Stats reports how the annealer ran.
type Stats struct {
	Moves    int // proposals evaluated
	Accepted int // proposals accepted (including sideways/worsening)
	Improved int // times a new best-so-far was recorded
	Epochs   int // completed cooling epochs
}

// state is one point of the search space. Groups hold operation IDs per
// instance (empty groups are dead slots awaiting reuse); prio ranks
// operations for the list scheduler (lower rank schedules first among
// simultaneously ready operations).
type state struct {
	groups  [][]dfg.OpID
	groupOf []int
	prio    []int
}

func (s *state) clone() *state {
	c := &state{
		groups:  make([][]dfg.OpID, len(s.groups)),
		groupOf: append([]int(nil), s.groupOf...),
		prio:    append([]int(nil), s.prio...),
	}
	for i, g := range s.groups {
		if len(g) > 0 {
			c.groups[i] = append([]dfg.OpID(nil), g...)
		}
	}
	return c
}

// evaluation is the derived schedule and cost of a state.
type evaluation struct {
	start    []int
	makespan int
	area     int64
	kinds    []model.Kind // per group; zero Kind for empty groups
}

// allocator carries the immutable problem facts shared by every
// evaluation.
type allocator struct {
	d      *dfg.Graph
	lib    *model.Library
	lambda int
	class  []model.OpType // hardware class per op
	sig    []model.Signature
	order  []dfg.OpID // topological order
}

// AllocateCtx runs the simulated-annealing allocator and returns the
// best feasible datapath found within the move budget.
func AllocateCtx(ctx context.Context, d *dfg.Graph, lib *model.Library, lambda int, opt Options) (*datapath.Datapath, Stats, error) {
	var stats Stats
	if err := d.Validate(); err != nil {
		return nil, stats, err
	}
	n := d.N()
	if n == 0 {
		return &datapath.Datapath{}, stats, nil
	}
	opt = opt.withDefaults()
	order, err := d.TopoOrder()
	if err != nil {
		return nil, stats, err
	}
	a := &allocator{
		d: d, lib: lib, lambda: lambda,
		class: make([]model.OpType, n),
		sig:   make([]model.Signature, n),
		order: order,
	}
	for _, o := range d.Ops() {
		a.class[o.ID] = o.Spec.Type.HardwareClass()
		a.sig[o.ID] = o.Spec.Sig
	}

	// Initial state: dedicated minimal instance per operation, priorities
	// in topological order. Its list schedule is ASAP at minimum
	// latencies, so it is feasible exactly when λ ≥ λ_min.
	cur := &state{
		groups:  make([][]dfg.OpID, n),
		groupOf: make([]int, n),
		prio:    make([]int, n),
	}
	for i := 0; i < n; i++ {
		cur.groups[i] = []dfg.OpID{dfg.OpID(i)}
		cur.groupOf[i] = i
	}
	for rank, id := range order {
		cur.prio[id] = rank
	}
	curEval := a.evaluate(cur)
	if curEval.makespan > lambda {
		return nil, stats, fmt.Errorf("%w: λ=%d below λ_min=%d", ErrInfeasible, lambda, curEval.makespan)
	}

	best, bestEval := cur.clone(), curEval
	rnd := rand.New(rand.NewSource(opt.Seed))
	temp := opt.InitTemp
	if temp <= 0 {
		temp = float64(curEval.area) * 0.05
		if temp < 1 {
			temp = 1
		}
	}
	epochLen := 8 * n
	if epochLen < 64 {
		epochLen = 64
	}

	for move := 0; move < opt.Moves; move++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		if move > 0 && move%epochLen == 0 {
			temp *= opt.Cooling
			stats.Epochs++
		}
		cand := a.propose(rnd, cur)
		if cand == nil {
			continue // no applicable move of the drawn type; not counted
		}
		stats.Moves++
		candEval := a.evaluate(cand)
		if candEval.makespan > lambda {
			continue
		}
		delta := float64(candEval.area - curEval.area)
		if delta <= 0 || rnd.Float64() < math.Exp(-delta/temp) {
			cur, curEval = cand, candEval
			stats.Accepted++
			if curEval.area < bestEval.area {
				best, bestEval = cur.clone(), curEval
				stats.Improved++
			}
		}
	}

	dp := a.toDatapath(best, bestEval)
	if err := dp.Verify(d, lib, lambda); err != nil {
		return nil, stats, fmt.Errorf("anneal: internal error, produced illegal datapath: %w", err)
	}
	return dp, stats, nil
}

// groupKind returns the minimal kind covering every member of the group:
// the member class plus the element-wise join of the member signatures.
func (a *allocator) groupKind(ops []dfg.OpID) model.Kind {
	k := model.Kind{Class: a.class[ops[0]], Sig: a.sig[ops[0]]}
	for _, o := range ops[1:] {
		k.Sig = k.Sig.Join(a.sig[o])
	}
	return k
}

// evaluate derives the schedule and cost of a state with a
// binding-aware list scheduler: among ready operations the one with the
// lowest priority rank is placed at the earliest step that respects its
// predecessors' finish times and its instance's existing occupancy.
func (a *allocator) evaluate(st *state) evaluation {
	n := a.d.N()
	ev := evaluation{
		start: make([]int, n),
		kinds: make([]model.Kind, len(st.groups)),
	}
	lat := make([]int, len(st.groups))
	for gi, g := range st.groups {
		if len(g) == 0 {
			continue
		}
		ev.kinds[gi] = a.groupKind(g)
		lat[gi] = a.lib.Latency(ev.kinds[gi])
		ev.area += a.lib.Area(ev.kinds[gi])
	}

	type span struct{ s, e int }
	busy := make([][]span, len(st.groups))
	indeg := make([]int, n)
	finish := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(a.d.Pred(dfg.OpID(i)))
	}
	ready := make([]dfg.OpID, 0, n)
	for _, id := range a.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	for placed := 0; placed < n; placed++ {
		// Lowest-rank ready operation; the ready set is tiny.
		bi := 0
		for i := 1; i < len(ready); i++ {
			if st.prio[ready[i]] < st.prio[ready[bi]] {
				bi = i
			}
		}
		o := ready[bi]
		ready[bi] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]

		g := st.groupOf[o]
		l := lat[g]
		t := 0
		for _, p := range a.d.Pred(o) {
			if finish[p] > t {
				t = finish[p]
			}
		}
		// Earliest gap of length l in the instance's occupancy. Spans are
		// appended in nondecreasing placement order per group only when
		// priorities respect it, so walk the whole list.
		for changed := true; changed; {
			changed = false
			for _, sp := range busy[g] {
				if sp.s < t+l && t < sp.e {
					t = sp.e
					changed = true
				}
			}
		}
		busy[g] = append(busy[g], span{t, t + l})
		ev.start[o] = t
		finish[o] = t + l
		if t+l > ev.makespan {
			ev.makespan = t + l
		}
		for _, s := range a.d.Succ(o) {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return ev
}

// propose draws one move and returns the mutated clone, or nil when the
// drawn move has no applicable candidates in this state.
func (a *allocator) propose(rnd *rand.Rand, cur *state) *state {
	switch roll := rnd.Float64(); {
	case roll < 0.35:
		return a.proposeRebind(rnd, cur)
	case roll < 0.60:
		return a.proposeMerge(rnd, cur)
	case roll < 0.80:
		return a.proposeSplit(rnd, cur)
	default:
		return a.proposeSwap(rnd, cur)
	}
}

// proposeRebind moves one operation onto another existing instance of
// its hardware class.
func (a *allocator) proposeRebind(rnd *rand.Rand, cur *state) *state {
	n := len(cur.groupOf)
	o := dfg.OpID(rnd.Intn(n))
	var targets []int
	for gi, g := range cur.groups {
		if gi != cur.groupOf[o] && len(g) > 0 && a.class[g[0]] == a.class[o] {
			targets = append(targets, gi)
		}
	}
	if len(targets) == 0 {
		return nil
	}
	st := cur.clone()
	moveOp(st, o, targets[rnd.Intn(len(targets))])
	return st
}

// proposeMerge fuses two instances of one hardware class.
func (a *allocator) proposeMerge(rnd *rand.Rand, cur *state) *state {
	var live []int
	for gi, g := range cur.groups {
		if len(g) > 0 {
			live = append(live, gi)
		}
	}
	if len(live) < 2 {
		return nil
	}
	src := live[rnd.Intn(len(live))]
	var targets []int
	for _, gi := range live {
		if gi != src && a.class[cur.groups[gi][0]] == a.class[cur.groups[src][0]] {
			targets = append(targets, gi)
		}
	}
	if len(targets) == 0 {
		return nil
	}
	dst := targets[rnd.Intn(len(targets))]
	st := cur.clone()
	for _, o := range st.groups[src] {
		st.groupOf[o] = dst
	}
	st.groups[dst] = append(st.groups[dst], st.groups[src]...)
	st.groups[src] = nil
	return st
}

// proposeSplit evicts one operation from a shared instance onto a fresh
// minimal one.
func (a *allocator) proposeSplit(rnd *rand.Rand, cur *state) *state {
	var shared []int
	for gi, g := range cur.groups {
		if len(g) >= 2 {
			shared = append(shared, gi)
		}
	}
	if len(shared) == 0 {
		return nil
	}
	gi := shared[rnd.Intn(len(shared))]
	o := cur.groups[gi][rnd.Intn(len(cur.groups[gi]))]
	st := cur.clone()
	moveOp(st, o, freeSlot(st))
	return st
}

// proposeSwap exchanges two operations' scheduling priorities.
func (a *allocator) proposeSwap(rnd *rand.Rand, cur *state) *state {
	n := len(cur.prio)
	if n < 2 {
		return nil
	}
	i := rnd.Intn(n)
	j := rnd.Intn(n - 1)
	if j >= i {
		j++
	}
	st := cur.clone()
	st.prio[i], st.prio[j] = st.prio[j], st.prio[i]
	return st
}

// moveOp reassigns one operation to group dst, removing it from its
// current group (which may become a dead slot).
func moveOp(st *state, o dfg.OpID, dst int) {
	src := st.groupOf[o]
	g := st.groups[src]
	for i, m := range g {
		if m == o {
			st.groups[src] = append(g[:i], g[i+1:]...)
			break
		}
	}
	if len(st.groups[src]) == 0 {
		st.groups[src] = nil
	}
	st.groups[dst] = append(st.groups[dst], o)
	st.groupOf[o] = dst
}

// freeSlot returns the index of an empty group slot, growing the slice
// when none is free.
func freeSlot(st *state) int {
	for gi, g := range st.groups {
		if len(g) == 0 {
			return gi
		}
	}
	st.groups = append(st.groups, nil)
	return len(st.groups) - 1
}

// toDatapath converts the best state into the common result
// representation, dropping dead group slots.
func (a *allocator) toDatapath(st *state, ev evaluation) *datapath.Datapath {
	dp := &datapath.Datapath{
		Start:  append([]int(nil), ev.start...),
		InstOf: make([]int, len(st.groupOf)),
	}
	for gi, g := range st.groups {
		if len(g) == 0 {
			continue
		}
		idx := len(dp.Instances)
		dp.Instances = append(dp.Instances, datapath.Instance{
			Kind: ev.kinds[gi],
			Ops:  append([]dfg.OpID(nil), g...),
		})
		for _, o := range g {
			dp.InstOf[o] = idx
		}
	}
	return dp
}
