// Package anneal implements a simulated-annealing datapath allocator
// over joint (schedule, binding) moves, an alternative point in the
// quality/runtime trade-off space next to the paper's one-shot DPAlloc
// heuristic: stochastic search routinely beats constructive heuristics
// on irregular graphs at the price of a move budget.
//
// The state is a partition of the operations into operator instances
// (each instance's concrete kind is the element-wise join of its
// members' signatures, so an instance always covers everything bound to
// it) plus a scheduling-priority permutation. A binding-aware list
// scheduler derives the schedule: operations become ready when their
// predecessors finish and serialize on their shared instance, so every
// evaluated state is a structurally legal datapath and only the latency
// constraint λ can fail. Moves are the classic allocation neighborhood:
//
//   - merge: fuse two instances of one hardware class (area drops to the
//     joined kind's cost, latencies may grow);
//   - split: evict one operation onto a fresh minimal instance;
//   - rebind: move one operation to another existing instance;
//   - slot swap: exchange two operations' scheduling priorities, which
//     re-times the derived schedule without touching the binding.
//
// Acceptance is standard Metropolis with geometric cooling: improving
// feasible moves always pass, worsening feasible moves pass with
// probability exp(-ΔA/T), infeasible proposals (makespan > λ) are
// rejected outright. The RNG is seeded from Options, so a fixed seed
// reproduces the identical solution bit for bit; the inner loop polls
// ctx every proposal and returns promptly on cancellation.
//
// The mover is allocation-free in steady state. Moves mutate the
// current state in place and are undone on rejection instead of cloning
// per proposal; instance kinds, latencies and areas are cached per
// group and repaired incrementally for the one or two groups a move
// touches, so the area delta driving Metropolis costs O(|group|), not a
// rescheduling pass. Scheduling — the expensive part — is skipped
// entirely when it cannot matter: worsening moves draw their Metropolis
// verdict from the incremental delta first, and growing groups are
// screened by a sound makespan lower bound (serialized instance
// occupancy between the group's min-latency head and tail paths,
// sharpened per member with ancestor/descendant counts from the
// precedence closure in dfg.Reach) that proves many merges infeasible
// without a schedule. Only surviving proposals pay for the list
// scheduler, which itself reuses flat scratch buffers across calls.
package anneal

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
)

// ErrInfeasible is returned when no datapath can meet the latency
// constraint (λ below λ_min).
var ErrInfeasible = errors.New("anneal: latency constraint infeasible")

// Options tunes the annealer. The zero value applies the documented
// defaults; Seed 0 is a valid (and the default) seed.
type Options struct {
	// Seed seeds the move RNG. Identical seeds (with identical inputs
	// and options) produce identical solutions.
	Seed int64
	// Moves is the total proposal budget; default 20000.
	Moves int
	// InitTemp is the starting temperature in area units; <= 0 derives
	// it from the initial area (5% of it, at least 1).
	InitTemp float64
	// Cooling is the geometric decay applied per epoch, in (0, 1);
	// default 0.95. An epoch is max(64, 8·n) proposals.
	Cooling float64
}

func (o Options) withDefaults() Options {
	if o.Moves <= 0 {
		o.Moves = 20000
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = 0.95
	}
	return o
}

// Stats reports how the annealer ran.
type Stats struct {
	Moves    int // proposals evaluated
	Accepted int // proposals accepted (including sideways/worsening)
	Improved int // times a new best-so-far was recorded
	Epochs   int // completed cooling epochs
	Merges   int // accepted merge moves (instances fused)
	Evals    int // full list-schedule evaluations run
}

// state is one point of the search space. Groups hold operation IDs per
// instance (empty groups are dead slots awaiting reuse); prio ranks
// operations for the list scheduler (lower rank schedules first among
// simultaneously ready operations).
type state struct {
	groups  [][]dfg.OpID
	groupOf []int
	prio    []int
}

func (s *state) clone() *state {
	c := &state{
		groups:  make([][]dfg.OpID, len(s.groups)),
		groupOf: append([]int(nil), s.groupOf...),
		prio:    append([]int(nil), s.prio...),
	}
	for i, g := range s.groups {
		if len(g) > 0 {
			c.groups[i] = append([]dfg.OpID(nil), g...)
		}
	}
	return c
}

// span is one occupied slot of an instance's schedule.
type span struct{ s, e int }

// moveKind discriminates the undo records.
type moveKind uint8

const (
	mvRebind moveKind = iota
	mvMerge
	mvSplit
	mvSwap
)

// groupSave snapshots one group's cached cost facts for undo.
type groupSave struct {
	kind model.Kind
	lat  int
	area int64
}

// move is the undo record of one in-place mutation: which groups were
// touched and their cached facts before the move.
type move struct {
	kind     moveKind
	o        dfg.OpID
	src, dst int
	srcOps   []dfg.OpID // merge: src's member slice before fusion
	dstLen   int        // merge: len(groups[dst]) before fusion
	i, j     int        // swap: the two operations
	saved    [2]groupSave
}

// allocator carries the immutable problem facts plus the incrementally
// maintained cost caches and reusable scratch shared by every proposal.
type allocator struct {
	d      *dfg.Graph
	lib    *model.Library
	lambda int
	class  []model.OpType // hardware class per op
	sig    []model.Signature
	order  []dfg.OpID // topological order
	reach  *dfg.Reach // precedence closure (static: the DFG never changes)
	minLat []int      // latency of each op's minimal dedicated kind
	head   []int      // min-latency ASAP start per op
	tail   []int      // min-latency path from an op's finish to the sink
	indeg0 []int      // predecessor counts, copied into scratch per eval

	// Per-group cost caches, indexed like state.groups, plus the total.
	kinds []model.Kind
	glat  []int
	garea []int64
	area  int64

	// Scratch reused across evaluations and proposals.
	start   []int
	finish  []int
	indeg   []int
	ready   []dfg.OpID
	busy    [][]span
	mask    bitset.Set // group membership, for closure intersections
	cands   []int      // candidate group indices in proposals
	targets []int
}

// AllocateCtx runs the simulated-annealing allocator and returns the
// best feasible datapath found within the move budget.
func AllocateCtx(ctx context.Context, d *dfg.Graph, lib *model.Library, lambda int, opt Options) (*datapath.Datapath, Stats, error) {
	var stats Stats
	if err := d.Validate(); err != nil {
		return nil, stats, err
	}
	n := d.N()
	if n == 0 {
		return &datapath.Datapath{}, stats, nil
	}
	opt = opt.withDefaults()
	order, err := d.TopoOrder()
	if err != nil {
		return nil, stats, err
	}
	reach, err := dfg.NewReach(d)
	if err != nil {
		return nil, stats, err
	}
	a := &allocator{
		d: d, lib: lib, lambda: lambda,
		class:  make([]model.OpType, n),
		sig:    make([]model.Signature, n),
		order:  order,
		reach:  reach,
		minLat: make([]int, n),
		head:   make([]int, n),
		tail:   make([]int, n),
		indeg0: make([]int, n),
		start:  make([]int, n),
		finish: make([]int, n),
		indeg:  make([]int, n),
		ready:  make([]dfg.OpID, 0, n),
		mask:   bitset.New(n),
	}
	for _, o := range d.Ops() {
		a.class[o.ID] = o.Spec.Type.HardwareClass()
		a.sig[o.ID] = o.Spec.Sig
		a.minLat[o.ID] = lib.Latency(o.Spec.MinKind())
	}
	for i := 0; i < n; i++ {
		a.indeg0[i] = len(d.Pred(dfg.OpID(i)))
	}
	// Longest min-latency paths into each op's start and out of its
	// finish: the static head/tail terms of the merge lower bound.
	for _, o := range order {
		for _, p := range d.Pred(o) {
			if v := a.head[p] + a.minLat[p]; v > a.head[o] {
				a.head[o] = v
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		o := order[i]
		for _, s := range d.Succ(o) {
			if v := a.minLat[s] + a.tail[s]; v > a.tail[o] {
				a.tail[o] = v
			}
		}
	}

	// Initial state: dedicated minimal instance per operation, priorities
	// in topological order. Its list schedule is ASAP at minimum
	// latencies, so it is feasible exactly when λ ≥ λ_min.
	cur := &state{
		groups:  make([][]dfg.OpID, n),
		groupOf: make([]int, n),
		prio:    make([]int, n),
	}
	a.kinds = make([]model.Kind, n)
	a.glat = make([]int, n)
	a.garea = make([]int64, n)
	a.busy = make([][]span, n)
	for i := 0; i < n; i++ {
		cur.groups[i] = []dfg.OpID{dfg.OpID(i)}
		cur.groupOf[i] = i
		a.refreshGroup(cur, i)
	}
	for rank, id := range order {
		cur.prio[id] = rank
	}
	stats.Evals++
	makespan := a.schedule(cur)
	if makespan > lambda {
		return nil, stats, fmt.Errorf("%w: λ=%d below λ_min=%d", ErrInfeasible, lambda, makespan)
	}

	best := cur.clone()
	bestArea := a.area
	bestStart := append([]int(nil), a.start...)
	bestKinds := append([]model.Kind(nil), a.kinds...)

	rnd := rand.New(rand.NewSource(opt.Seed))
	temp := opt.InitTemp
	if temp <= 0 {
		temp = float64(a.area) * 0.05
		if temp < 1 {
			temp = 1
		}
	}
	epochLen := 8 * n
	if epochLen < 64 {
		epochLen = 64
	}

	for moveNo := 0; moveNo < opt.Moves; moveNo++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		if moveNo > 0 && moveNo%epochLen == 0 {
			temp *= opt.Cooling
			stats.Epochs++
		}
		prevArea := a.area
		mv, ok := a.propose(rnd, cur)
		if !ok {
			continue // no applicable move of the drawn type; not counted
		}
		stats.Moves++

		// The area delta is known from the incremental group caches
		// before any scheduling. Worsening moves face the Metropolis
		// draw first: a temperature rejection costs no schedule at all.
		accept := true
		if delta := float64(a.area - prevArea); delta > 0 {
			accept = rnd.Float64() < math.Exp(-delta/temp)
		}
		// A growing group may be provably unable to meet λ; the bound
		// replaces a doomed schedule with a few bitset intersections.
		if accept {
			if gi := mv.grownGroup(); gi >= 0 && a.lbExceedsLambda(cur, gi) {
				accept = false
			}
		}
		if accept {
			stats.Evals++
			accept = a.schedule(cur) <= lambda
		}
		if !accept {
			a.undo(cur, mv)
			continue
		}
		stats.Accepted++
		if mv.kind == mvMerge {
			stats.Merges++
		}
		if a.area < bestArea {
			best = cur.clone()
			bestArea = a.area
			bestStart = append(bestStart[:0], a.start...)
			bestKinds = append(bestKinds[:0], a.kinds...)
			stats.Improved++
		}
	}

	dp := a.toDatapath(best, bestStart, bestKinds)
	if err := dp.Verify(d, lib, lambda); err != nil {
		return nil, stats, fmt.Errorf("anneal: internal error, produced illegal datapath: %w", err)
	}
	return dp, stats, nil
}

// grownGroup returns the group a move enlarged (the lower-bound screen
// applies only to groups that gained members), or -1.
func (mv move) grownGroup() int {
	switch mv.kind {
	case mvRebind, mvMerge:
		return mv.dst
	}
	return -1
}

// groupKind returns the minimal kind covering every member of the group:
// the member class plus the element-wise join of the member signatures.
func (a *allocator) groupKind(ops []dfg.OpID) model.Kind {
	k := model.Kind{Class: a.class[ops[0]], Sig: a.sig[ops[0]]}
	for _, o := range ops[1:] {
		k.Sig = k.Sig.Join(a.sig[o])
	}
	return k
}

// refreshGroup recomputes one group's cached kind, latency and area from
// its current members and folds the difference into the total area.
func (a *allocator) refreshGroup(st *state, gi int) {
	a.area -= a.garea[gi]
	if len(st.groups[gi]) == 0 {
		a.kinds[gi] = model.Kind{}
		a.glat[gi] = 0
		a.garea[gi] = 0
		return
	}
	k := a.groupKind(st.groups[gi])
	a.kinds[gi] = k
	a.glat[gi] = a.lib.Latency(k)
	a.garea[gi] = a.lib.Area(k)
	a.area += a.garea[gi]
}

// saveGroup snapshots a group's cached facts into the undo record.
func (a *allocator) saveGroup(gi int) groupSave {
	return groupSave{kind: a.kinds[gi], lat: a.glat[gi], area: a.garea[gi]}
}

// restoreGroup reinstates a snapshot, repairing the total area.
func (a *allocator) restoreGroup(gi int, s groupSave) {
	a.area += s.area - a.garea[gi]
	a.kinds[gi] = s.kind
	a.glat[gi] = s.lat
	a.garea[gi] = s.area
}

// lbExceedsLambda reports whether group gi provably cannot fit any
// λ-feasible schedule: its members serialize on one instance of latency
// l, so every schedule spends |g|·l consecutive-or-better steps on it
// between the group's earliest min-latency head and its latest
// min-latency tail. Per member the bound sharpens through the
// precedence closure: an operation's in-group ancestors must all finish
// before it starts and its in-group descendants start after it
// finishes, each holding the instance for l steps. Latency is monotone
// under signature covering, so min-latency heads and tails
// under-approximate every grouping's true paths and the bound is sound:
// it only rejects states the scheduler would reject too.
func (a *allocator) lbExceedsLambda(st *state, gi int) bool {
	ops := st.groups[gi]
	k := len(ops)
	if k < 2 {
		return false
	}
	l := a.glat[gi]
	minHead, minTail := a.head[ops[0]], a.tail[ops[0]]
	for _, o := range ops[1:] {
		if a.head[o] < minHead {
			minHead = a.head[o]
		}
		if a.tail[o] < minTail {
			minTail = a.tail[o]
		}
	}
	if minHead+k*l+minTail > a.lambda {
		return true
	}
	a.mask.Clear()
	for _, o := range ops {
		a.mask.Add(int(o))
	}
	for _, o := range ops {
		after := a.reach.ToSet(o).IntersectCount(a.mask)
		before := a.reach.FromSet(o).IntersectCount(a.mask)
		if a.head[o]+(1+after)*l+minTail > a.lambda {
			return true
		}
		if minHead+(1+before)*l+a.tail[o] > a.lambda {
			return true
		}
	}
	return false
}

// schedule derives the current state's schedule with a binding-aware
// list scheduler: among ready operations the one with the lowest
// priority rank is placed at the earliest step that respects its
// predecessors' finish times and its instance's existing occupancy.
// Start times land in a.start; the return value is the makespan. All
// working storage is reused across calls.
func (a *allocator) schedule(st *state) int {
	n := a.d.N()
	for len(a.busy) < len(st.groups) {
		a.busy = append(a.busy, nil)
	}
	for gi := range st.groups {
		a.busy[gi] = a.busy[gi][:0]
	}
	copy(a.indeg, a.indeg0)
	ready := a.ready[:0]
	for _, id := range a.order {
		if a.indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	makespan := 0
	for placed := 0; placed < n; placed++ {
		// Lowest-rank ready operation; the ready set is tiny.
		bi := 0
		for i := 1; i < len(ready); i++ {
			if st.prio[ready[i]] < st.prio[ready[bi]] {
				bi = i
			}
		}
		o := ready[bi]
		ready[bi] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]

		g := st.groupOf[o]
		l := a.glat[g]
		t := 0
		for _, p := range a.d.Pred(o) {
			if a.finish[p] > t {
				t = a.finish[p]
			}
		}
		// Earliest gap of length l in the instance's occupancy. Spans are
		// appended in nondecreasing placement order per group only when
		// priorities respect it, so walk the whole list.
		for changed := true; changed; {
			changed = false
			for _, sp := range a.busy[g] {
				if sp.s < t+l && t < sp.e {
					t = sp.e
					changed = true
				}
			}
		}
		a.busy[g] = append(a.busy[g], span{t, t + l})
		a.start[o] = t
		a.finish[o] = t + l
		if t+l > makespan {
			makespan = t + l
		}
		for _, s := range a.d.Succ(o) {
			a.indeg[s]--
			if a.indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	a.ready = ready
	return makespan
}

// propose draws one move, applies it to cur in place, and returns its
// undo record. ok is false when the drawn move type has no applicable
// candidates in this state (cur is untouched).
func (a *allocator) propose(rnd *rand.Rand, cur *state) (move, bool) {
	switch roll := rnd.Float64(); {
	case roll < 0.35:
		return a.proposeRebind(rnd, cur)
	case roll < 0.60:
		return a.proposeMerge(rnd, cur)
	case roll < 0.80:
		return a.proposeSplit(rnd, cur)
	default:
		return a.proposeSwap(rnd, cur)
	}
}

// undo reverts a move, restoring both the partition and the cached
// group costs. Membership order inside a group may differ from before
// the move; every cost and scheduling quantity is order-independent.
func (a *allocator) undo(st *state, mv move) {
	switch mv.kind {
	case mvRebind, mvSplit:
		moveOp(st, mv.o, mv.src)
		a.restoreGroup(mv.src, mv.saved[0])
		a.restoreGroup(mv.dst, mv.saved[1])
	case mvMerge:
		st.groups[mv.dst] = st.groups[mv.dst][:mv.dstLen]
		st.groups[mv.src] = mv.srcOps
		for _, o := range mv.srcOps {
			st.groupOf[o] = mv.src
		}
		a.restoreGroup(mv.src, mv.saved[0])
		a.restoreGroup(mv.dst, mv.saved[1])
	case mvSwap:
		st.prio[mv.i], st.prio[mv.j] = st.prio[mv.j], st.prio[mv.i]
	}
}

// proposeRebind moves one operation onto another existing instance of
// its hardware class.
func (a *allocator) proposeRebind(rnd *rand.Rand, cur *state) (move, bool) {
	n := len(cur.groupOf)
	o := dfg.OpID(rnd.Intn(n))
	targets := a.targets[:0]
	for gi, g := range cur.groups {
		if gi != cur.groupOf[o] && len(g) > 0 && a.class[g[0]] == a.class[o] {
			targets = append(targets, gi)
		}
	}
	a.targets = targets
	if len(targets) == 0 {
		return move{}, false
	}
	dst := targets[rnd.Intn(len(targets))]
	mv := move{kind: mvRebind, o: o, src: cur.groupOf[o], dst: dst}
	mv.saved[0] = a.saveGroup(mv.src)
	mv.saved[1] = a.saveGroup(dst)
	moveOp(cur, o, dst)
	a.refreshGroup(cur, mv.src)
	a.refreshGroup(cur, dst)
	return mv, true
}

// proposeMerge fuses two instances of one hardware class.
func (a *allocator) proposeMerge(rnd *rand.Rand, cur *state) (move, bool) {
	live := a.cands[:0]
	for gi, g := range cur.groups {
		if len(g) > 0 {
			live = append(live, gi)
		}
	}
	a.cands = live
	if len(live) < 2 {
		return move{}, false
	}
	src := live[rnd.Intn(len(live))]
	targets := a.targets[:0]
	for _, gi := range live {
		if gi != src && a.class[cur.groups[gi][0]] == a.class[cur.groups[src][0]] {
			targets = append(targets, gi)
		}
	}
	a.targets = targets
	if len(targets) == 0 {
		return move{}, false
	}
	dst := targets[rnd.Intn(len(targets))]
	mv := move{kind: mvMerge, src: src, dst: dst, srcOps: cur.groups[src], dstLen: len(cur.groups[dst])}
	mv.saved[0] = a.saveGroup(src)
	mv.saved[1] = a.saveGroup(dst)
	for _, o := range cur.groups[src] {
		cur.groupOf[o] = dst
	}
	cur.groups[dst] = append(cur.groups[dst], cur.groups[src]...)
	cur.groups[src] = nil
	a.refreshGroup(cur, src)
	a.refreshGroup(cur, dst)
	return mv, true
}

// proposeSplit evicts one operation from a shared instance onto a fresh
// minimal one.
func (a *allocator) proposeSplit(rnd *rand.Rand, cur *state) (move, bool) {
	shared := a.cands[:0]
	for gi, g := range cur.groups {
		if len(g) >= 2 {
			shared = append(shared, gi)
		}
	}
	a.cands = shared
	if len(shared) == 0 {
		return move{}, false
	}
	gi := shared[rnd.Intn(len(shared))]
	o := cur.groups[gi][rnd.Intn(len(cur.groups[gi]))]
	dst := a.freeSlot(cur)
	mv := move{kind: mvSplit, o: o, src: gi, dst: dst}
	mv.saved[0] = a.saveGroup(gi)
	mv.saved[1] = a.saveGroup(dst)
	moveOp(cur, o, dst)
	a.refreshGroup(cur, gi)
	a.refreshGroup(cur, dst)
	return mv, true
}

// proposeSwap exchanges two operations' scheduling priorities.
func (a *allocator) proposeSwap(rnd *rand.Rand, cur *state) (move, bool) {
	n := len(cur.prio)
	if n < 2 {
		return move{}, false
	}
	i := rnd.Intn(n)
	j := rnd.Intn(n - 1)
	if j >= i {
		j++
	}
	cur.prio[i], cur.prio[j] = cur.prio[j], cur.prio[i]
	return move{kind: mvSwap, i: i, j: j}, true
}

// moveOp reassigns one operation to group dst, removing it from its
// current group (which may become a dead slot).
func moveOp(st *state, o dfg.OpID, dst int) {
	src := st.groupOf[o]
	g := st.groups[src]
	for i, m := range g {
		if m == o {
			st.groups[src] = append(g[:i], g[i+1:]...)
			break
		}
	}
	if len(st.groups[src]) == 0 {
		st.groups[src] = nil
	}
	st.groups[dst] = append(st.groups[dst], o)
	st.groupOf[o] = dst
}

// freeSlot returns the index of an empty group slot, growing the group
// slice and the allocator's parallel cache arrays when none is free.
func (a *allocator) freeSlot(st *state) int {
	for gi, g := range st.groups {
		if len(g) == 0 {
			return gi
		}
	}
	st.groups = append(st.groups, nil)
	a.kinds = append(a.kinds, model.Kind{})
	a.glat = append(a.glat, 0)
	a.garea = append(a.garea, 0)
	return len(st.groups) - 1
}

// toDatapath converts the best state into the common result
// representation, dropping dead group slots.
func (a *allocator) toDatapath(st *state, start []int, kinds []model.Kind) *datapath.Datapath {
	dp := &datapath.Datapath{
		Start:  append([]int(nil), start...),
		InstOf: make([]int, len(st.groupOf)),
	}
	for gi, g := range st.groups {
		if len(g) == 0 {
			continue
		}
		idx := len(dp.Instances)
		dp.Instances = append(dp.Instances, datapath.Instance{
			Kind: kinds[gi],
			Ops:  append([]dfg.OpID(nil), g...),
		})
		for _, o := range g {
			dp.InstOf[o] = idx
		}
	}
	return dp
}
