package fxsim

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
)

// WriteVCD renders an execution trace as a Value Change Dump (IEEE
// 1364), the interchange format hardware waveform viewers read. One
// variable is emitted per operation result (changing at the operation's
// completion step) and one per resource instance showing the ID of the
// operation it is executing (changing at issue and release), so the
// schedule and binding can be inspected on a timeline.
func WriteVCD(w io.Writer, d *dfg.Graph, lib *model.Library, dp *datapath.Datapath, traces []Trace) error {
	n := d.N()
	if len(dp.Start) != n {
		return fmt.Errorf("fxsim: datapath shape mismatch: %d starts for %d ops", len(dp.Start), n)
	}

	// Variable identifiers: VCD uses printable ASCII codes.
	ident := func(i int) string {
		const first, span = 33, 94 // '!' .. '~'
		s := ""
		for {
			s = string(rune(first+i%span)) + s
			if i < span {
				return s
			}
			i = i/span - 1
		}
	}

	fmt.Fprintf(w, "$timescale 1ns $end\n")
	fmt.Fprintf(w, "$scope module datapath $end\n")
	for o := 0; o < n; o++ {
		name := d.Op(dfg.OpID(o)).Name
		if name == "" {
			name = fmt.Sprintf("op%d", o)
		}
		fmt.Fprintf(w, "$var wire %d %s r_%s $end\n",
			resultWidth(d.Op(dfg.OpID(o)).Spec), ident(o), name)
	}
	for ii := range dp.Instances {
		fmt.Fprintf(w, "$var wire 32 %s u%d_op $end\n", ident(n+ii), ii)
	}
	fmt.Fprintf(w, "$upscope $end\n$enddefinitions $end\n")

	// Events: value changes keyed by time step.
	type change struct {
		id    string
		width int
		value uint64
		has   bool // false renders as x (idle instance)
	}
	events := map[int][]change{}
	for _, tr := range traces {
		events[tr.Finish] = append(events[tr.Finish], change{
			id: ident(int(tr.Op)), width: resultWidth(d.Op(tr.Op).Spec), value: tr.Value, has: true,
		})
		events[tr.Start] = append(events[tr.Start], change{
			id: ident(n + tr.Instance), width: 32, value: uint64(tr.Op), has: true,
		})
		events[tr.Finish] = append(events[tr.Finish], change{
			id: ident(n + tr.Instance), width: 32, has: false,
		})
	}
	// An instance releasing and re-issuing at the same step must end up
	// issued: emit releases before issues within a step.
	var steps []int
	for t := range events {
		steps = append(steps, t)
	}
	sort.Ints(steps)

	fmt.Fprintf(w, "$dumpvars\n")
	for o := 0; o < n; o++ {
		fmt.Fprintf(w, "b%s %s\n", "x", ident(o))
	}
	for ii := range dp.Instances {
		fmt.Fprintf(w, "b%s %s\n", "x", ident(n+ii))
	}
	fmt.Fprintf(w, "$end\n")

	for _, t := range steps {
		fmt.Fprintf(w, "#%d\n", t)
		chs := events[t]
		sort.SliceStable(chs, func(a, b int) bool {
			// releases (has == false) first, then by identifier
			if chs[a].has != chs[b].has {
				return !chs[a].has
			}
			return chs[a].id < chs[b].id
		})
		// Deduplicate: the last change to an identifier within a step
		// wins (release overwritten by a same-step re-issue).
		last := map[string]change{}
		order := []string{}
		for _, c := range chs {
			if _, seen := last[c.id]; !seen {
				order = append(order, c.id)
			}
			last[c.id] = c
		}
		for _, id := range order {
			c := last[id]
			if !c.has {
				fmt.Fprintf(w, "bx %s\n", c.id)
				continue
			}
			fmt.Fprintf(w, "b%b %s\n", c.value, c.id)
		}
	}
	return nil
}
