package fxsim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/descend"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/tgff"
	"repro/internal/twostage"
)

func TestMask(t *testing.T) {
	if mask(0xFF, 4) != 0xF {
		t.Error("mask(0xFF,4)")
	}
	if mask(0xFF, 64) != 0xFF {
		t.Error("mask w=64")
	}
	if mask(0, 8) != 0 {
		t.Error("mask zero")
	}
}

func TestComputeSemantics(t *testing.T) {
	add := model.OpSpec{Type: model.Add, Sig: model.AddSig(4)}
	if got := compute(add, 9, 8); got != 1 { // 17 mod 16
		t.Errorf("add overflow: %d", got)
	}
	sub := model.OpSpec{Type: model.Sub, Sig: model.AddSig(4)}
	if got := compute(sub, 3, 5); got != 14 { // -2 mod 16
		t.Errorf("sub underflow: %d", got)
	}
	mul := model.OpSpec{Type: model.Mul, Sig: model.Sig(4, 4)}
	if got := compute(mul, 15, 15); got != 225 { // full 8-bit product
		t.Errorf("mul: %d", got)
	}
}

func TestReferenceChain(t *testing.T) {
	// (a*b) + c with a=3 (4b), b=5 (4b), c=7: product 15... then add.
	d := dfg.New()
	m := d.AddOp("m", model.Mul, model.Sig(4, 4))
	a := d.AddOp("a", model.Add, model.AddSig(10))
	if err := d.AddDep(m, a); err != nil {
		t.Fatal(err)
	}
	in := Inputs{m: {3, 5}, a: {0, 7}}
	got, err := Reference(d, in)
	if err != nil {
		t.Fatal(err)
	}
	if got[m] != 15 {
		t.Errorf("product = %d", got[m])
	}
	// Add slot 0 <- product (truncated to 10 bits), slot 1 <- 7.
	if got[a] != 22 {
		t.Errorf("sum = %d", got[a])
	}
}

func TestTruncationOnNarrowSlot(t *testing.T) {
	// The 4x4 product (8 bits) feeds a 3-bit adder: low 3 bits kept.
	d := dfg.New()
	m := d.AddOp("m", model.Mul, model.Sig(4, 4))
	a := d.AddOp("a", model.Add, model.AddSig(3))
	if err := d.AddDep(m, a); err != nil {
		t.Fatal(err)
	}
	in := Inputs{m: {15, 15}} // 225 = 0b11100001 → low 3 bits 0b001
	got, err := Reference(d, in)
	if err != nil {
		t.Fatal(err)
	}
	if got[a] != 1 {
		t.Errorf("truncated sum = %d, want 1", got[a])
	}
}

func allocators(t *testing.T, lib *model.Library) map[string]func(*dfg.Graph, int) (*datapath.Datapath, error) {
	t.Helper()
	return map[string]func(*dfg.Graph, int) (*datapath.Datapath, error){
		"heuristic": func(g *dfg.Graph, lambda int) (*datapath.Datapath, error) {
			dp, _, err := core.Allocate(g, lib, lambda, core.Options{})
			return dp, err
		},
		"twostage": func(g *dfg.Graph, lambda int) (*datapath.Datapath, error) {
			dp, _, err := twostage.Allocate(g, lib, lambda)
			return dp, err
		},
		"descend": func(g *dfg.Graph, lambda int) (*datapath.Datapath, error) {
			return descend.Allocate(g, lib, lambda)
		},
	}
}

// TestValueEquivalenceAcrossAllocators is the flagship property: every
// allocator's datapath computes exactly the reference values on random
// graphs with random inputs — sharing wider resources never changes
// results.
func TestValueEquivalenceAcrossAllocators(t *testing.T) {
	lib := model.Default()
	rnd := rand.New(rand.NewSource(99))
	for seed := int64(0); seed < 30; seed++ {
		g, err := tgff.Generate(tgff.Config{N: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lmin, err := g.MinMakespan(lib)
		if err != nil {
			t.Fatal(err)
		}
		in := Inputs{}
		for i := 0; i < g.N(); i++ {
			in[dfg.OpID(i)] = [2]uint64{rnd.Uint64(), rnd.Uint64()}
		}
		for name, alloc := range allocators(t, lib) {
			for _, lambda := range []int{lmin, lmin + lmin/3} {
				dp, err := alloc(g, lambda)
				if err != nil {
					t.Fatalf("%s seed=%d: %v", name, seed, err)
				}
				if err := CheckEquivalence(g, lib, dp, in); err != nil {
					t.Fatalf("%s seed=%d λ=%d: %v", name, seed, lambda, err)
				}
			}
		}
	}
}

func TestRunDetectsPrematureStart(t *testing.T) {
	d := dfg.New()
	a := d.AddOp("a", model.Mul, model.Sig(8, 8))
	b := d.AddOp("b", model.Mul, model.Sig(8, 8))
	if err := d.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	lib := model.Default()
	kind := model.Kind{Class: model.Mul, Sig: model.Sig(8, 8)}
	dp := &datapath.Datapath{
		Start: []int{0, 1}, // b starts before a's 2-cycle latency elapses
		Instances: []datapath.Instance{
			{Kind: kind, Ops: []dfg.OpID{a}},
			{Kind: kind, Ops: []dfg.OpID{b}},
		},
		InstOf: []int{0, 1},
	}
	_, _, err := Run(d, lib, dp, nil)
	if err == nil || !strings.Contains(err.Error(), "before predecessor") {
		t.Fatalf("premature start not detected: %v", err)
	}
}

func TestRunDetectsInstanceConflict(t *testing.T) {
	d := dfg.New()
	a := d.AddOp("a", model.Mul, model.Sig(8, 8))
	b := d.AddOp("b", model.Mul, model.Sig(8, 8))
	lib := model.Default()
	kind := model.Kind{Class: model.Mul, Sig: model.Sig(8, 8)}
	dp := &datapath.Datapath{
		Start:     []int{0, 1}, // overlap on one instance
		Instances: []datapath.Instance{{Kind: kind, Ops: []dfg.OpID{a, b}}},
		InstOf:    []int{0, 0},
	}
	_, _, err := Run(d, lib, dp, nil)
	if err == nil || !strings.Contains(err.Error(), "busy") {
		t.Fatalf("instance conflict not detected: %v", err)
	}
}

func TestRunDetectsNarrowInstance(t *testing.T) {
	d := dfg.New()
	a := d.AddOp("a", model.Mul, model.Sig(8, 8))
	lib := model.Default()
	dp := &datapath.Datapath{
		Start:     []int{0},
		Instances: []datapath.Instance{{Kind: model.Kind{Class: model.Mul, Sig: model.Sig(4, 4)}, Ops: []dfg.OpID{a}}},
		InstOf:    []int{0},
	}
	_, _, err := Run(d, lib, dp, nil)
	if err == nil || !strings.Contains(err.Error(), "narrow") {
		t.Fatalf("narrow instance not detected: %v", err)
	}
}

func TestRunShapeMismatch(t *testing.T) {
	d := dfg.New()
	d.AddOp("a", model.Mul, model.Sig(8, 8))
	lib := model.Default()
	dp := &datapath.Datapath{Start: []int{0, 1}, InstOf: []int{0, 0}}
	if _, _, err := Run(d, lib, dp, nil); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestTraceOrdering(t *testing.T) {
	d := dfg.New()
	a := d.AddOp("a", model.Mul, model.Sig(8, 8))
	b := d.AddOp("b", model.Add, model.AddSig(8))
	if err := d.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	lib := model.Default()
	dp, _, err := core.Allocate(d, lib, 10, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, traces, err := Run(d, lib, dp, Inputs{a: {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("%d traces", len(traces))
	}
	for i := 1; i < len(traces); i++ {
		if traces[i].Start < traces[i-1].Start {
			t.Fatal("traces not ordered by start")
		}
	}
	if traces[0].Value != 6 {
		t.Errorf("trace value = %d", traces[0].Value)
	}
}
