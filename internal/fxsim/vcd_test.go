package fxsim

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/model"
	"repro/internal/tgff"
)

func TestWriteVCD(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	dp, _, err := core.Allocate(g, lib, lmin+2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, traces, err := Run(g, lib, dp, Inputs{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteVCD(&sb, g, lib, dp, traces); err != nil {
		t.Fatal(err)
	}
	vcd := sb.String()

	// Structural checks on the emitted dump.
	for _, want := range []string{"$timescale", "$scope module datapath", "$enddefinitions", "$dumpvars"} {
		if !strings.Contains(vcd, want) {
			t.Fatalf("VCD missing %q:\n%s", want, vcd)
		}
	}
	// One $var per operation and per instance.
	if got, want := strings.Count(vcd, "$var wire"), g.N()+len(dp.Instances); got != want {
		t.Fatalf("%d $var lines, want %d", got, want)
	}
	// Every operation's result variable appears by name.
	for _, o := range g.Ops() {
		if !strings.Contains(vcd, "r_"+o.Name) {
			t.Fatalf("VCD missing variable for %s", o.Name)
		}
	}
	// Timestamps are present and non-decreasing.
	lastT := -1
	for _, line := range strings.Split(vcd, "\n") {
		if strings.HasPrefix(line, "#") {
			var ts int
			if _, err := fmtSscanf(line, &ts); err != nil {
				t.Fatalf("bad timestamp line %q", line)
			}
			if ts < lastT {
				t.Fatalf("timestamps regress: %d after %d", ts, lastT)
			}
			lastT = ts
		}
	}
	if lastT != dp.Makespan(lib) {
		t.Fatalf("last timestamp %d, want makespan %d", lastT, dp.Makespan(lib))
	}
}

func fmtSscanf(line string, ts *int) (int, error) {
	n := 0
	for _, c := range line[1:] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	*ts = n
	return 1, nil
}

func TestWriteVCDShapeMismatch(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteVCD(&sb, g, lib, &datapath.Datapath{}, nil); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
