// Package fxsim is a cycle-accurate fixed-point simulator for sequencing
// graphs and allocated datapaths. It provides the functional-validation
// substrate of the reproduction: a datapath produced by any allocator is
// executed cycle by cycle — operations latch operands on their scheduled
// start step on their bound resource instance, hold the instance busy
// for the resource's latency, and publish results at completion — and
// the values are checked against a direct reference evaluation of the
// graph. A scheduling or binding bug that slips past structural
// verification (datapath.Verify) surfaces here as a wrong value or an
// instance conflict.
//
// Arithmetic semantics (documented, deliberately simple):
//
//   - values are unsigned, masked to their wordlength;
//   - a predecessor feeding an operand slot is truncated to the slot's
//     operand width (low bits kept);
//   - add/sub produce (a ± b) mod 2^w for a w-bit adder signature;
//   - mul produces the full (hi+lo)-bit product;
//   - executing an operation on a wider resource yields the same value
//     (the resource computes at the operation's own widths; extra bits
//     are zero), so sharing never changes results — which is exactly
//     what the value-equivalence property tests assert.
//
// Operand slots: an operation has two operand slots; slot widths come
// from its signature (for multiplies slot 0 is the Hi operand). Graph
// predecessors fill slots in edge-insertion order; remaining slots are
// primary inputs supplied by the caller.
package fxsim

import (
	"fmt"

	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
)

// Inputs supplies primary-input values: Inputs[op][slot] is consumed by
// the operation's free operand slots in order. Missing entries default
// to zero.
type Inputs map[dfg.OpID][2]uint64

// mask returns the low w bits of v.
func mask(v uint64, w int) uint64 {
	if w >= 64 {
		return v
	}
	return v & ((1 << uint(w)) - 1)
}

// slotWidths returns the operand widths of an operation's two slots.
func slotWidths(spec model.OpSpec) [2]int { return spec.OperandWidths() }

// resultWidth returns the width of an operation's result.
func resultWidth(spec model.OpSpec) int { return spec.ResultWidth() }

// words instantiates model.Arith over uint64 machine words: Trunc is the
// package's mask, the operators are the native wrapping ones.
type words struct{}

func (words) Trunc(w int, x uint64) uint64 { return mask(x, w) }
func (words) Add(x, y uint64) uint64       { return x + y }
func (words) Sub(x, y uint64) uint64       { return x - y }
func (words) Mul(x, y uint64) uint64       { return x * y }

// compute applies the operation to its slot values under the shared
// reference semantics (model.Reference), which the symbolic equivalence
// prover instantiates over expression DAGs with the same Arith contract.
func compute(spec model.OpSpec, a, b uint64) uint64 {
	return model.Reference[uint64](words{}, spec, a, b)
}

// operands resolves the two slot values of an operation from its
// predecessors (in edge order) and primary inputs.
func operands(d *dfg.Graph, o dfg.OpID, results []uint64, in Inputs) [2]uint64 {
	spec := d.Op(o).Spec
	widths := slotWidths(spec)
	var vals [2]uint64
	preds := d.Pred(o)
	ext := in[o]
	for slot := 0; slot < 2; slot++ {
		var raw uint64
		if slot < len(preds) {
			raw = results[preds[slot]]
		} else {
			raw = ext[slot]
		}
		vals[slot] = mask(raw, widths[slot])
	}
	return vals
}

// Reference evaluates the sequencing graph directly (no schedule, no
// resources) and returns every operation's result value.
func Reference(d *dfg.Graph, in Inputs) ([]uint64, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	results := make([]uint64, d.N())
	for _, o := range order {
		vals := operands(d, o, results, in)
		results[o] = compute(d.Op(o).Spec, vals[0], vals[1])
	}
	return results, nil
}

// Trace records one simulated operation execution.
type Trace struct {
	Op       dfg.OpID
	Instance int
	Start    int
	Finish   int
	Value    uint64
}

// Run simulates the datapath cycle by cycle and returns every
// operation's result value plus the execution trace (ordered by start
// step). It fails on structural impossibilities the simulation can
// detect dynamically:
//
//   - an operation starting before a predecessor's result is available;
//   - two operations occupying one instance simultaneously;
//   - an instance too narrow for an operation's operands.
func Run(d *dfg.Graph, lib *model.Library, dp *datapath.Datapath, in Inputs) ([]uint64, []Trace, error) {
	n := d.N()
	if len(dp.Start) != n || len(dp.InstOf) != n {
		return nil, nil, fmt.Errorf("fxsim: datapath shape mismatch: %d starts for %d ops", len(dp.Start), n)
	}
	// Event-driven over start steps in order.
	order := make([]dfg.OpID, n)
	for i := range order {
		order[i] = dfg.OpID(i)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && dp.Start[order[j]] < dp.Start[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	results := make([]uint64, n)
	done := make([]int, n) // completion cycle per op
	busyUntil := make([]int, len(dp.Instances))
	var traces []Trace
	for _, o := range order {
		inst := dp.InstOf[o]
		if inst < 0 || inst >= len(dp.Instances) {
			return nil, nil, fmt.Errorf("fxsim: operation %d bound to unknown instance %d", o, inst)
		}
		kind := dp.Instances[inst].Kind
		spec := d.Op(o).Spec
		if !kind.Covers(spec.Type, spec.Sig) {
			return nil, nil, fmt.Errorf("fxsim: instance %d (%v) too narrow for operation %d (%v)", inst, kind, o, spec)
		}
		t := dp.Start[o]
		for _, p := range d.Pred(o) {
			if done[p] > t {
				return nil, nil, fmt.Errorf("fxsim: operation %d starts at %d before predecessor %d completes at %d",
					o, t, p, done[p])
			}
		}
		if busyUntil[inst] > t {
			return nil, nil, fmt.Errorf("fxsim: instance %d busy until %d when operation %d starts at %d",
				inst, busyUntil[inst], o, t)
		}
		lat := lib.Latency(kind)
		busyUntil[inst] = t + lat
		done[o] = t + lat
		vals := operands(d, o, results, in)
		results[o] = compute(spec, vals[0], vals[1])
		traces = append(traces, Trace{Op: o, Instance: inst, Start: t, Finish: t + lat, Value: results[o]})
	}
	return results, traces, nil
}

// CheckEquivalence runs both the reference evaluation and the datapath
// simulation and returns an error naming the first operation whose
// values disagree. This is the end-to-end functional validation used in
// the property tests: sharing a wider resource must never change values.
func CheckEquivalence(d *dfg.Graph, lib *model.Library, dp *datapath.Datapath, in Inputs) error {
	want, err := Reference(d, in)
	if err != nil {
		return err
	}
	got, _, err := Run(d, lib, dp, in)
	if err != nil {
		return err
	}
	for o := range want {
		if got[o] != want[o] {
			return fmt.Errorf("fxsim: operation %d computes %d on the datapath, %d in the reference",
				o, got[o], want[o])
		}
	}
	return nil
}
