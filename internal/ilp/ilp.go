// Package ilp builds and solves the integer linear programming
// formulation of the combined scheduling, resource binding and
// wordlength selection problem introduced in Constantinides, Cheung and
// Luk, "Optimal datapath allocation for multiple-wordlength systems"
// (Electronics Letters 36(17), reference [5] of the paper) — the
// optimal method the DATE 2001 heuristic is evaluated against.
//
// The model is time-indexed. For every operation o, compatible resource
// kind r and feasible start step t there is a binary x_{o,r,t}; for every
// kind r an instance count n_r:
//
//	min   Σ_r area(r)·n_r
//	s.t.  Σ_{r,t} x_{o,r,t} = 1                        ∀o          (assignment)
//	      Σ t·x_{o2} − Σ (t+ℓ(r))·x_{o1} ≥ 0           ∀(o1,o2)∈S  (precedence)
//	      Σ_o Σ_{τ∈(t−ℓ(r), t]} x_{o,r,τ} ≤ n_r        ∀r, t        (usage)
//
// As the paper notes, the variable count scales with the latency
// constraint λ (through the start-step windows), which is what makes the
// ILP's execution time explode as λ relaxes (Table 2) while the
// heuristic's does not. Instance counts n_r are left continuous: with
// integral x the usage maxima are integral, so an optimal basic solution
// has integral n_r.
package ilp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/lp"
	"repro/internal/model"
)

// ErrInfeasible is returned when λ is below λ_min.
var ErrInfeasible = errors.New("ilp: latency constraint infeasible")

// DefaultTimeLimit is the branch-and-bound wall-clock cap applied when
// Options.TimeLimit is zero: the paper's 30-minute lp_solve budget
// (Table 2's ">30:00.00" entries).
const DefaultTimeLimit = 30 * time.Minute

// Options controls the solve.
type Options struct {
	// TimeLimit caps the branch-and-bound wall clock. Zero applies
	// DefaultTimeLimit; negative disables the cap entirely.
	TimeLimit time.Duration
	// NodeLimit caps branch-and-bound nodes. Zero means no limit.
	NodeLimit int
	// Incumbent optionally primes the upper bound with a feasible
	// datapath (e.g. the heuristic's), exactly like handing lp_solve a
	// known solution.
	Incumbent *datapath.Datapath
}

// Result of an ILP solve.
type Result struct {
	DP       *datapath.Datapath // optimal (or best-found under caps) datapath
	Area     int64
	Vars     int
	Rows     int
	Nodes    int
	TimedOut bool // caps hit: Area/DP are the best found, not proven optimal
}

// Solve builds and solves the ILP for the graph under λ.
func Solve(d *dfg.Graph, lib *model.Library, lambda int, opt Options) (*Result, error) {
	return SolveCtx(context.Background(), d, lib, lambda, opt)
}

// SolveCtx is Solve with cancellation. The time budget — opt.TimeLimit,
// or DefaultTimeLimit when it is zero — is imposed as a context deadline
// layered over ctx, so whichever of the caller's deadline and the budget
// expires first stops the branch-and-bound. A budget expiry returns the
// best incumbent with Result.TimedOut set; a ctx cancellation or ctx
// deadline expiry returns ctx.Err().
func SolveCtx(ctx context.Context, d *dfg.Graph, lib *model.Library, lambda int, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.N() == 0 {
		return &Result{DP: &datapath.Datapath{}}, nil
	}
	lmin, err := d.MinMakespan(lib)
	if err != nil {
		return nil, err
	}
	if lambda < lmin {
		return nil, fmt.Errorf("%w: λ=%d < λ_min=%d", ErrInfeasible, lambda, lmin)
	}

	m, vars, kinds, err := buildModel(d, lib, lambda)
	if err != nil {
		return nil, err
	}

	budget := budgetFor(opt)
	bctx := ctx
	if budget > 0 {
		var cancel context.CancelFunc
		bctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	mopt := lp.MILPOptions{Ctx: bctx, NodeLimit: opt.NodeLimit}
	if opt.Incumbent != nil {
		mopt.Incumbent = float64(opt.Incumbent.Area(lib))
		mopt.IncumbentSet = true
	}
	res, err := lp.SolveMILP(m, mopt)
	if err != nil {
		return nil, err
	}
	// A stop forced by the caller's own context is a cancellation, not a
	// Table 2 style timeout.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := &Result{Vars: m.NumVars, Rows: len(m.Cons), Nodes: res.Nodes, TimedOut: res.TimedOut}
	switch {
	case res.HasX:
		dp, err := extract(d, lib, vars, kinds, res.X)
		if err != nil {
			return nil, err
		}
		if err := dp.Verify(d, lib, lambda); err != nil {
			return nil, fmt.Errorf("ilp: solution fails verification: %w", err)
		}
		out.DP = dp
		out.Area = dp.Area(lib)
	case opt.Incumbent != nil && !math.IsInf(res.Obj, 1):
		// The search never improved on the primed incumbent: the
		// incumbent is optimal (or best known under caps).
		out.DP = opt.Incumbent
		out.Area = opt.Incumbent.Area(lib)
	case res.TimedOut:
		// lp reports cancellation distinctly (lp.Canceled / lp.ErrCanceled,
		// handled above via ctx.Err()), so a TimedOut result without an
		// incumbent is specifically the budget expiring before any
		// integral solution — not infeasibility.
		return nil, fmt.Errorf("ilp: time budget exhausted before any feasible solution (λ=%d)", lambda)
	default:
		return nil, fmt.Errorf("ilp: no feasible solution found (status %v, λ=%d)", res.Status, lambda)
	}
	return out, nil
}

// budgetFor resolves Options.TimeLimit into the effective wall-clock
// budget: zero means DefaultTimeLimit, negative means uncapped (0).
func budgetFor(opt Options) time.Duration {
	switch {
	case opt.TimeLimit == 0:
		return DefaultTimeLimit
	case opt.TimeLimit < 0:
		return 0
	default:
		return opt.TimeLimit
	}
}

// xvar identifies one x_{o,r,t} binary.
type xvar struct {
	op   dfg.OpID
	kind int
	t    int
}

// buildModel constructs the MILP.
func buildModel(d *dfg.Graph, lib *model.Library, lambda int) (*lp.MILP, []xvar, []model.Kind, error) {
	n := d.N()
	kinds := model.ExtractKinds(d.Specs(), lib)
	klat := make([]int, len(kinds))
	for ki, k := range kinds {
		klat[ki] = lib.Latency(k)
	}

	// Start-step windows: ASAP with minimum latencies to λ−ℓ(r)−tail,
	// tail = downstream minimum-latency path (as in internal/exact).
	minLat := d.MinLatencies(lib)
	asap, _, err := d.ASAP(minLat)
	if err != nil {
		return nil, nil, nil, err
	}
	order, _ := d.TopoOrder()
	tail := make([]int, n)
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		for _, s := range d.Succ(id) {
			if v := minLat(s) + tail[s]; v > tail[id] {
				tail[id] = v
			}
		}
	}

	var vars []xvar
	varOf := make(map[xvar]int)
	xOf := make([][]int, n) // variable indices per op
	for o := 0; o < n; o++ {
		spec := d.Op(dfg.OpID(o)).Spec
		for ki, k := range kinds {
			if !k.Covers(spec.Type, spec.Sig) {
				continue
			}
			for t := asap[o]; t <= lambda-klat[ki]-tail[o]; t++ {
				v := xvar{dfg.OpID(o), ki, t}
				varOf[v] = len(vars)
				xOf[o] = append(xOf[o], len(vars))
				vars = append(vars, v)
			}
		}
		if len(xOf[o]) == 0 {
			return nil, nil, nil, fmt.Errorf("%w: operation %d has no feasible (kind, step)", ErrInfeasible, o)
		}
	}
	nX := len(vars)
	nVars := nX + len(kinds) // n_r follow the binaries

	m := &lp.MILP{
		Problem: lp.Problem{
			NumVars:   nVars,
			Objective: make([]float64, nVars),
			Upper:     make([]float64, nVars),
		},
	}
	for j := 0; j < nX; j++ {
		m.Upper[j] = 1
		m.Integer = append(m.Integer, j)
	}
	for ki := range kinds {
		m.Objective[nX+ki] = float64(lib.Area(kinds[ki]))
		m.Upper[nX+ki] = math.Inf(1)
	}

	// Assignment rows.
	for o := 0; o < n; o++ {
		c := lp.Constraint{Sense: lp.EQ, RHS: 1}
		for _, j := range xOf[o] {
			c.Idx = append(c.Idx, j)
			c.Coef = append(c.Coef, 1)
		}
		m.Cons = append(m.Cons, c)
	}
	// Precedence rows.
	for o1 := 0; o1 < n; o1++ {
		for _, o2 := range d.Succ(dfg.OpID(o1)) {
			c := lp.Constraint{Sense: lp.GE, RHS: 0}
			for _, j := range xOf[o2] {
				c.Idx = append(c.Idx, j)
				c.Coef = append(c.Coef, float64(vars[j].t))
			}
			for _, j := range xOf[o1] {
				c.Idx = append(c.Idx, j)
				c.Coef = append(c.Coef, -float64(vars[j].t+klat[vars[j].kind]))
			}
			m.Cons = append(m.Cons, c)
		}
	}
	// Usage rows: only for steps where some x could be active.
	for ki := range kinds {
		for t := 0; t < lambda; t++ {
			var idx []int
			for o := 0; o < n; o++ {
				for _, j := range xOf[o] {
					if vars[j].kind == ki && vars[j].t <= t && t < vars[j].t+klat[ki] {
						idx = append(idx, j)
					}
				}
			}
			if len(idx) == 0 {
				continue
			}
			c := lp.Constraint{Sense: lp.LE, RHS: 0}
			for _, j := range idx {
				c.Idx = append(c.Idx, j)
				c.Coef = append(c.Coef, 1)
			}
			c.Idx = append(c.Idx, nX+ki)
			c.Coef = append(c.Coef, -1)
			m.Cons = append(m.Cons, c)
		}
	}
	return m, vars, kinds, nil
}

// extract converts an integral solution vector into a datapath via greedy
// interval colouring per kind.
func extract(d *dfg.Graph, lib *model.Library, vars []xvar, kinds []model.Kind, x []float64) (*datapath.Datapath, error) {
	n := d.N()
	start := make([]int, n)
	kindOf := make([]int, n)
	seen := make([]bool, n)
	for j, v := range vars {
		if x[j] > 0.5 {
			if seen[v.op] {
				return nil, fmt.Errorf("ilp: operation %d assigned twice", v.op)
			}
			seen[v.op] = true
			start[v.op] = v.t
			kindOf[v.op] = v.kind
		}
	}
	for o := 0; o < n; o++ {
		if !seen[o] {
			return nil, fmt.Errorf("ilp: operation %d unassigned", o)
		}
	}
	dp := &datapath.Datapath{Start: start, InstOf: make([]int, n)}
	type slot struct {
		kind int
		free int
		ops  []dfg.OpID
	}
	var slots []*slot
	byStart := make([]dfg.OpID, n)
	for i := range byStart {
		byStart[i] = dfg.OpID(i)
	}
	sort.Slice(byStart, func(a, b int) bool {
		if start[byStart[a]] != start[byStart[b]] {
			return start[byStart[a]] < start[byStart[b]]
		}
		return byStart[a] < byStart[b]
	})
	for _, o := range byStart {
		ki := kindOf[o]
		placed := false
		for si, sl := range slots {
			if sl.kind == ki && sl.free <= start[o] {
				sl.ops = append(sl.ops, o)
				sl.free = start[o] + lib.Latency(kinds[ki])
				dp.InstOf[o] = si
				placed = true
				break
			}
		}
		if !placed {
			slots = append(slots, &slot{kind: ki, free: start[o] + lib.Latency(kinds[ki]), ops: []dfg.OpID{o}})
			dp.InstOf[o] = len(slots) - 1
		}
	}
	for _, sl := range slots {
		dp.Instances = append(dp.Instances, datapath.Instance{Kind: kinds[sl.kind], Ops: sl.ops})
	}
	return dp, nil
}
