package ilp

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/exact"
	"repro/internal/model"
	"repro/internal/tgff"
)

func TestSolveEmptyAndInfeasible(t *testing.T) {
	lib := model.Default()
	r, err := Solve(dfg.New(), lib, 0, Options{})
	if err != nil || len(r.DP.Instances) != 0 {
		t.Fatalf("%v %v", r, err)
	}
	d := dfg.New()
	d.AddOp("", model.Mul, model.Sig(8, 8))
	if _, err := Solve(d, lib, 1, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestSolveSingleOp(t *testing.T) {
	d := dfg.New()
	d.AddOp("", model.Mul, model.Sig(8, 8))
	lib := model.Default()
	r, err := Solve(d, lib, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Area != 64 {
		t.Fatalf("area = %d", r.Area)
	}
	if err := r.DP.Verify(d, lib, 2); err != nil {
		t.Fatal(err)
	}
}

func TestSolveOptimalSharing(t *testing.T) {
	// Same scenario as the exact test: λ=10 → 360, λ=5 → 424.
	d := dfg.New()
	d.AddOp("", model.Mul, model.Sig(20, 18))
	d.AddOp("", model.Mul, model.Sig(8, 8))
	lib := model.Default()
	r, err := Solve(d, lib, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Area != 360 {
		t.Fatalf("λ=10 area = %d, want 360", r.Area)
	}
	r, err = Solve(d, lib, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Area != 424 {
		t.Fatalf("λ=5 area = %d, want 424", r.Area)
	}
}

// TestMatchesExactOptimum is the core cross-check: two independent
// implementations of the optimum must agree on random instances.
func TestMatchesExactOptimum(t *testing.T) {
	lib := model.Default()
	for seed := int64(0); seed < 25; seed++ {
		g, err := tgff.Generate(tgff.Config{N: 5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lmin, err := g.MinMakespan(lib)
		if err != nil {
			t.Fatal(err)
		}
		for _, lambda := range []int{lmin, lmin + 2} {
			want, _, err := exact.Allocate(g, lib, lambda, exact.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Solve(g, lib, lambda, Options{})
			if err != nil {
				t.Fatalf("seed %d λ %d: %v", seed, lambda, err)
			}
			if got.TimedOut {
				t.Fatalf("seed %d: unexpected cap", seed)
			}
			if got.Area != want.Area(lib) {
				t.Fatalf("seed %d λ %d: ILP %d, exact %d", seed, lambda, got.Area, want.Area(lib))
			}
			if err := got.DP.Verify(g, lib, lambda); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestIncumbentPriming(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := core.Allocate(g, lib, lmin, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(g, lib, lmin, Options{Incumbent: h})
	if err != nil {
		t.Fatal(err)
	}
	if r.Area > h.Area(lib) {
		t.Fatalf("ILP %d worse than its incumbent %d", r.Area, h.Area(lib))
	}
	// Cross-check against exact.
	want, _, err := exact.Allocate(g, lib, lmin, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Area != want.Area(lib) {
		t.Fatalf("ILP-with-incumbent %d, exact %d", r.Area, want.Area(lib))
	}
}

func TestTimeLimitReturnsIncumbent(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := core.Allocate(g, lib, lmin+4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(g, lib, lmin+4, Options{Incumbent: h, TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut {
		t.Fatal("time limit not reported")
	}
	if r.DP == nil || r.Area != h.Area(lib) {
		t.Fatalf("capped solve must return the incumbent: %+v", r)
	}
}

func TestModelSizeScalesWithLambda(t *testing.T) {
	// The paper's observation behind Table 2: variable count grows with λ.
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	m1, _, _, err := buildModel(g, lib, lmin)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, _, err := buildModel(g, lib, lmin+lmin/2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumVars <= m1.NumVars {
		t.Fatalf("vars did not grow with λ: %d vs %d", m1.NumVars, m2.NumVars)
	}
}

// TestDefaultTimeLimitApplies: the paper's 30-minute cap must be the
// effective budget when Options.TimeLimit is zero — the seed ignored a
// zero limit entirely — while negative disables the cap and positive
// passes through.
func TestDefaultTimeLimitApplies(t *testing.T) {
	if got := budgetFor(Options{}); got != DefaultTimeLimit {
		t.Fatalf("zero TimeLimit resolved to %v, want DefaultTimeLimit=%v", got, DefaultTimeLimit)
	}
	if got := budgetFor(Options{TimeLimit: -1}); got != 0 {
		t.Fatalf("negative TimeLimit resolved to %v, want 0 (uncapped)", got)
	}
	if got := budgetFor(Options{TimeLimit: 3 * time.Second}); got != 3*time.Second {
		t.Fatalf("explicit TimeLimit resolved to %v", got)
	}
}

// TestBudgetCapsViaContextDeadline: an explicit budget must actually
// stop the branch-and-bound through the ctx-deadline path, returning
// the primed incumbent with TimedOut set rather than running on.
func TestBudgetCapsViaContextDeadline(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := core.Allocate(g, lib, lmin+6, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	r, err := SolveCtx(context.Background(), g, lib, lmin+6, Options{
		Incumbent: h, TimeLimit: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("budgeted solve took %v", el)
	}
	if !r.TimedOut {
		t.Skip("solve finished inside the budget on this machine")
	}
	if r.DP == nil {
		t.Fatal("capped solve returned no datapath despite incumbent")
	}
}

// TestSolveCtxCancellation: cancelling the caller's context must abort
// the solve promptly with ctx.Err(), not a Table 2 style timeout.
func TestSolveCtxCancellation(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 14, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = SolveCtx(ctx, g, lib, lmin+lmin/2, Options{})
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("cancelled solve returned only after %v", el)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
