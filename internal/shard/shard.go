// Package shard maps problem hashes onto replica addresses with
// rendezvous (highest-random-weight) hashing, the routing layer of a
// multi-replica mwld cluster. Every replica running with the same peer
// list computes the same owner for a key with no coordination, and
// adding or removing one replica only remaps the keys that replica
// owned — the rest of the cluster's caches and stores stay warm.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Ring is an immutable set of replica addresses with a deterministic
// key→owner mapping. The zero value owns nothing; construct with New.
type Ring struct {
	replicas []string
}

// New builds a Ring over the given replica addresses. Addresses are
// deduplicated and order-normalized, so two replicas handed the same
// set in any order agree on every owner. An error is returned for an
// empty or blank list.
func New(replicas []string) (*Ring, error) {
	seen := make(map[string]bool, len(replicas))
	out := make([]string, 0, len(replicas))
	for _, r := range replicas {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shard: no replica addresses")
	}
	sort.Strings(out)
	return &Ring{replicas: out}, nil
}

// Replicas returns the normalized replica list, sorted.
func (r *Ring) Replicas() []string {
	out := make([]string, len(r.replicas))
	copy(out, r.replicas)
	return out
}

// Len reports the number of replicas.
func (r *Ring) Len() int { return len(r.replicas) }

// Contains reports whether addr is one of the ring's replicas.
func (r *Ring) Contains(addr string) bool {
	for _, rep := range r.replicas {
		if rep == addr {
			return true
		}
	}
	return false
}

// Owner returns the replica that owns key: the one with the highest
// rendezvous score. Every replica with the same list returns the same
// owner for the same key. An empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.replicas) == 0 {
		return ""
	}
	best, bestScore := "", uint64(0)
	for _, rep := range r.replicas {
		s := score(key, rep)
		// Ties are broken by address order; with a 64-bit hash they are
		// vanishingly rare, but the tiebreak keeps Owner a pure function
		// of the (key, set) pair.
		if best == "" || s > bestScore || (s == bestScore && rep < best) {
			best, bestScore = rep, s
		}
	}
	return best
}

// Rank returns every replica ordered by descending rendezvous score for
// key: Rank(key)[0] is Owner(key), and the rest are the deterministic
// failover order.
func (r *Ring) Rank(key string) []string {
	type scored struct {
		addr string
		s    uint64
	}
	all := make([]scored, len(r.replicas))
	for i, rep := range r.replicas {
		all[i] = scored{rep, score(key, rep)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].addr < all[j].addr
	})
	out := make([]string, len(all))
	for i, sc := range all {
		out[i] = sc.addr
	}
	return out
}

// First returns the highest-ranked replica for key that the predicate
// accepts — the routing primitive of health-aware clusters, where ok
// reports liveness: the true owner when it is up, otherwise the first
// live replica in the deterministic failover order. Returns "" when no
// replica is accepted.
func (r *Ring) First(key string, ok func(addr string) bool) string {
	for _, rep := range r.Rank(key) {
		if ok(rep) {
			return rep
		}
	}
	return ""
}

// score is the rendezvous weight of (key, replica): FNV-1a over the
// pair with a separator that cannot appear in a hex problem hash (so
// distinct pairs cannot collide by concatenation), pushed through a
// SplitMix64-style finalizer. The finalizer matters: raw FNV sums for
// one key across replicas differ only in the few final input bytes and
// stay correlated, which skews who wins the max; full-avalanche mixing
// restores a uniform spread.
func score(key, replica string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0xff})
	h.Write([]byte(replica))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
