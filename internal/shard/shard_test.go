package shard

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return out
}

func TestNewNormalizes(t *testing.T) {
	a, err := New([]string{"b", "a", " c ", "a", ""})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]string{"c", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(a.Replicas()), fmt.Sprint([]string{"a", "b", "c"}); got != want {
		t.Fatalf("Replicas = %v, want %v", got, want)
	}
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("Len = %d/%d, want 3", a.Len(), b.Len())
	}
	for _, k := range keys(100) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("order-sensitive ownership for %s", k)
		}
	}
	if !a.Contains("b") || a.Contains("d") {
		t.Fatal("Contains broken")
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	for _, in := range [][]string{nil, {}, {"", "  "}} {
		if _, err := New(in); err == nil {
			t.Fatalf("New(%q) accepted", in)
		}
	}
}

// TestOwnerDeterministicAndTotal: every key has exactly one owner, the
// same on every call, and it is a member of the ring.
func TestOwnerDeterministicAndTotal(t *testing.T) {
	r, err := New([]string{"http://a:1", "http://b:1", "http://c:1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(500) {
		o := r.Owner(k)
		if !r.Contains(o) {
			t.Fatalf("owner %q not a replica", o)
		}
		if r.Owner(k) != o {
			t.Fatalf("unstable owner for %s", k)
		}
	}
}

// TestDistributionRoughlyUniform: rendezvous hashing should spread keys
// across replicas without a pathological skew.
func TestDistributionRoughlyUniform(t *testing.T) {
	reps := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r, err := New(reps)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	n := 4000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	want := n / len(reps)
	for _, rep := range reps {
		c := counts[rep]
		if c < want/2 || c > want*2 {
			t.Fatalf("replica %s owns %d of %d keys (counts %v)", rep, c, n, counts)
		}
	}
}

// TestMinimalRemapping: dropping one replica must only remap the keys it
// owned; every other key keeps its owner. That is the property that
// keeps sibling caches warm across membership changes.
func TestMinimalRemapping(t *testing.T) {
	full := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	before, err := New(full)
	if err != nil {
		t.Fatal(err)
	}
	after, err := New(full[:3]) // d removed
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys(2000) {
		was, is := before.Owner(k), after.Owner(k)
		if was == "http://d:1" {
			moved++
			continue // had to move somewhere
		}
		if was != is {
			t.Fatalf("key %s moved %s -> %s though its owner survived", k, was, is)
		}
	}
	if moved == 0 {
		t.Fatal("removed replica owned no keys; distribution test should have caught this")
	}
}

// TestRank: the failover order starts at the owner, covers every
// replica exactly once, and is deterministic.
func TestRank(t *testing.T) {
	r, err := New([]string{"http://a:1", "http://b:1", "http://c:1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(50) {
		rank := r.Rank(k)
		if len(rank) != r.Len() {
			t.Fatalf("rank %v misses replicas", rank)
		}
		if rank[0] != r.Owner(k) {
			t.Fatalf("rank[0] %s != owner %s", rank[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, a := range rank {
			if seen[a] {
				t.Fatalf("rank %v repeats %s", rank, a)
			}
			seen[a] = true
		}
	}
}

func TestZeroRing(t *testing.T) {
	var r Ring
	if r.Owner("k") != "" || r.Len() != 0 {
		t.Fatal("zero ring owns keys")
	}
}

// TestFirst: First walks the rank order and returns the highest-ranked
// replica the predicate accepts — the owner when everything is up, the
// failover successor when the owner is excluded, "" when nothing is.
func TestFirst(t *testing.T) {
	r, err := New([]string{"http://a:1", "http://b:1", "http://c:1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(20) {
		rank := r.Rank(k)
		if got := r.First(k, func(string) bool { return true }); got != rank[0] {
			t.Fatalf("First(all up) = %s, want owner %s", got, rank[0])
		}
		if got := r.First(k, func(a string) bool { return a != rank[0] }); got != rank[1] {
			t.Fatalf("First(owner down) = %s, want %s", got, rank[1])
		}
		if got := r.First(k, func(string) bool { return false }); got != "" {
			t.Fatalf("First(all down) = %q, want empty", got)
		}
	}
}
