package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// dummy reports on every function named "bad".
var dummy = &Analyzer{
	Name: "dummy",
	Doc:  "reports functions named bad",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == "bad" {
					pass.Reportf(fn.Pos(), "function named bad")
				}
			}
		}
		return nil
	},
}

func runOn(t *testing.T, filename, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags, err := Run(fset, []*ast.File{f}, nil, nil, []*Analyzer{dummy})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

func TestStaleAllowReported(t *testing.T) {
	diags := runOn(t, "a.go", `package p

//mwlvet:allow dummy -- leftover from a rename
func good() {}
`)
	if len(diags) != 1 || diags[0].Analyzer != "allow" ||
		!strings.Contains(diags[0].Message, "suppresses no dummy finding") {
		t.Fatalf("want one stale-allow finding, got %+v", diags)
	}
}

func TestUsedAllowSilent(t *testing.T) {
	diags := runOn(t, "a.go", `package p

//mwlvet:allow dummy -- reviewed: the name is intentional here
func bad() {}
`)
	if len(diags) != 0 {
		t.Fatalf("used allow must be silent, got %+v", diags)
	}
}

func TestTestFileAllowNotStale(t *testing.T) {
	// Analyzers skip _test.go files, so an allow there can never fire;
	// it must not be reported as stale either.
	diags := runOn(t, "a_test.go", `package p

//mwlvet:allow dummy -- test helpers are exempt
func bad() {}
`)
	for _, d := range diags {
		if d.Analyzer == "allow" {
			t.Fatalf("test-file allow reported stale: %+v", diags)
		}
	}
}

func TestProseMentionNotCollected(t *testing.T) {
	// A doc comment describing the pragma syntax is not an exception:
	// the recognizer is anchored to the start of the comment.
	diags := runOn(t, "a.go", `package p

// Suppress with:
//
//	//mwlvet:allow dummy -- reason
func good() {}
`)
	if len(diags) != 0 {
		t.Fatalf("prose mention registered as an allow site, got %+v", diags)
	}
}
