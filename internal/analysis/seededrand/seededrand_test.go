package seededrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata", "a", seededrand.Analyzer)
}
