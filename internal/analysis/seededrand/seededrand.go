// Package seededrand enforces the determinism contract behind the
// annealer's bit-reproducible results and the differential suite:
// production code must not draw from the global math/rand generator
// (process-seeded, shared, unreproducible) and must not seed a local
// generator from the clock. Randomness flows from a caller-supplied
// seed — tgff.Config.Seed, errspec.Config.Seed, SolveOptions.Seed — so
// that the same request always produces the same answer. Test files are
// exempt.
package seededrand

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// constructors are the math/rand selectors that build an explicitly
// seeded generator (or name a type); everything else exported by
// math/rand and math/rand/v2 is a top-level draw from shared state.
var constructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
	"Rand": true, "Source": true, "Source64": true,
	"Zipf": true, "PCG": true, "ChaCha8": true,
}

var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Analyzer is the seededrand check.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "production code must use rand.New with a caller-supplied seed, never " +
		"global math/rand draws or time-seeded sources",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name := analysis.PkgFunc(pass.TypesInfo, sel)
			if !randPkgs[pkgPath] {
				return true
			}
			if !constructors[name] {
				pass.Reportf(sel.Pos(),
					"%s.%s uses the global process-seeded generator; build a local one "+
						"with rand.New and a caller-supplied seed for reproducible results",
					pkgPath, name)
				return true
			}
			return true
		})
		// Second walk: seeded constructors fed from the clock defeat the
		// purpose of seeding.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name := analysis.PkgFunc(pass.TypesInfo, call.Fun)
			if !randPkgs[pkgPath] || !constructors[name] {
				return true
			}
			for _, arg := range call.Args {
				if tp := timeNowCall(pass, arg); tp.IsValid() {
					pass.Reportf(tp,
						"%s.%s seeded from the clock is unreproducible; plumb an explicit seed "+
							"from the caller (Config.Seed / SolveOptions.Seed / a flag)",
						pkgPath, name)
				}
			}
			return true
		})
	}
	return nil
}

// timeNowCall returns the position of a time.Now call anywhere inside
// expr, or token.NoPos.
func timeNowCall(pass *analysis.Pass, expr ast.Expr) token.Pos {
	pos := token.NoPos
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgPath, name := analysis.PkgFunc(pass.TypesInfo, call.Fun); pkgPath == "time" && name == "Now" {
			pos = call.Pos()
			return false
		}
		return true
	})
	return pos
}
