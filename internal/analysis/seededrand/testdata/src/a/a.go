package a

import (
	"math/rand"
	"time"
)

// globalDraw uses the shared process-seeded generator.
func globalDraw() int {
	return rand.Intn(10) // want `global process-seeded generator`
}

// globalShuffle too — any top-level selector counts.
func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global process-seeded generator`
}

// timeSeeded defeats reproducibility even with a local generator.
func timeSeeded() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want `seeded from the clock`
}

// seeded is the approved shape: the seed comes from the caller.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// derived seeds are fine as long as no clock is involved.
func derived(base int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(base + int64(i)))
}

// annotated sites are reviewed exemptions.
func annotated() int {
	//mwlvet:allow seededrand -- fixture: jitter only, determinism not required
	return rand.Intn(3)
}
