// Package badmod violates every mwlvet invariant exactly once; the
// integration test asserts each analyzer fires through the real
// `go vet -vettool` pipeline.
package badmod

import (
	"context"
	"math/rand"
)

// SolveAll loops without polling ctx: ctxpoll.
func SolveAll(ctx context.Context, xs []int) int {
	_ = ctx
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// FanOut spawns per item: boundedspawn.
func FanOut(xs []int, out chan<- int) {
	for _, x := range xs {
		go func() { out <- x }()
	}
}

// Pick draws from the global generator: seededrand.
func Pick() int {
	return rand.Intn(10)
}

// Record is a wire struct with an untagged exported field: wiretag.
type Record struct {
	ID   string `json:"id"`
	Name string
}

// Header registers a counter without the _total suffix: metricname.
const Header = "# TYPE mwld_requests counter\n"
