// Package analysis is a deliberately small, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough framework to write
// project-specific vet checks against the standard library's go/ast and
// go/types. The container this repo builds in has no module proxy, so
// vendoring x/tools is not an option; the subset implemented here —
// Analyzer, Pass, positional diagnostics, and comment-based suppression
// — covers everything the mwlvet suite needs.
//
// Suppression: a diagnostic is dropped when the line it points at, or
// the line directly above it, carries a comment of the form
//
//	//mwlvet:allow <analyzer>[,<analyzer>...] -- <reason>
//
// The reason is mandatory by convention (reviewed, not enforced): an
// allow site must say why the invariant does not apply.
//
// An allow that suppresses nothing has outlived the code it excused:
// Run reports the pragma itself as an "allow" diagnostic (in
// non-test files — analyzers skip test files, so an allow there never
// fires by design). Stale-allow findings are not themselves
// suppressible.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("[mwlvet:name]")
	// and in //mwlvet:allow comments. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one package and reports violations via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	allows *allowIndex
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowSite is one analyzer name of one //mwlvet:allow comment, tracked
// so that pragmas which suppress nothing can be reported as stale.
type allowSite struct {
	pos      token.Pos
	analyzer string
	testFile bool
}

// allowIndex maps covered (file, line, analyzer) triples to their site
// and records which sites actually suppressed a finding.
type allowIndex struct {
	byKey map[allowKey]int
	sites []allowSite
	used  []bool
}

// allowRe is anchored to the start of the comment so that prose
// *mentioning* the pragma syntax (doc comments, examples) does not
// register as an exception.
var allowRe = regexp.MustCompile(`^(?://|/\*)\s*mwlvet:allow\s+([a-z][a-z0-9_,\s]*)`)

// Reportf records a violation at pos unless an //mwlvet:allow comment
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	posn := p.Fset.Position(pos)
	if site, ok := p.allows.byKey[allowKey{posn.Filename, posn.Line, p.Analyzer.Name}]; ok {
		p.allows.used[site] = true
		return
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file holding pos is a _test.go file.
// The suite's invariants are production-code contracts; every analyzer
// skips test files so that, e.g., a test spawning goroutines in a loop
// or asserting on metric literals does not trip the checks.
func (p *Pass) IsTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Pos()).Filename
	return strings.HasSuffix(filepath.Base(name), "_test.go")
}

// Run executes each analyzer over one type-checked package and returns
// the surviving (non-suppressed) diagnostics in source order.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows := collectAllows(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			allows:    allows,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	for i, site := range allows.sites {
		if allows.used[i] || site.testFile {
			// Test-file allows never fire: analyzers skip test files.
			continue
		}
		diags = append(diags, Diagnostic{Pos: site.pos, Analyzer: "allow",
			Message: fmt.Sprintf("//mwlvet:allow %s suppresses no %s finding (stale exception; remove it)",
				site.analyzer, site.analyzer)})
	}
	sortDiagnostics(fset, diags)
	return diags, nil
}

// collectAllows indexes every (file, line, analyzer) covered by an
// //mwlvet:allow comment — the comment's own lines and the line after
// its end, so both trailing and preceding-line placements work — and
// records one site per named analyzer for stale-pragma accounting.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{byKey: make(map[allowKey]int)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := m[1]
				if i := strings.Index(names, "--"); i >= 0 {
					names = names[:i]
				}
				start := fset.Position(c.Pos())
				end := fset.Position(c.End())
				test := strings.HasSuffix(filepath.Base(start.Filename), "_test.go")
				for _, name := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					site := len(idx.sites)
					idx.sites = append(idx.sites, allowSite{pos: c.Pos(), analyzer: name, testFile: test})
					idx.used = append(idx.used, false)
					for line := start.Line; line <= end.Line+1; line++ {
						idx.byKey[allowKey{start.Filename, line, name}] = site
					}
				}
			}
		}
	}
	return idx
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	// Insertion sort: diagnostic counts are tiny.
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && diagLess(fset, diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

func diagLess(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	if pa.Column != pb.Column {
		return pa.Column < pb.Column
	}
	return a.Analyzer < b.Analyzer
}

// PkgFunc resolves a package-qualified identifier expression like
// rand.Intn: it returns the imported package path and selector name when
// expr is a selection on a package name, or ("", "") otherwise.
func PkgFunc(info *types.Info, expr ast.Expr) (pkgPath, name string) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
