package boundedspawn_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/boundedspawn"
)

func TestBoundedSpawn(t *testing.T) {
	analysistest.Run(t, "testdata", "a", boundedspawn.Analyzer)
}
