package a

import "sync"

// fanOut spawns one goroutine per item: the PR 4 bug shape.
func fanOut(xs []int) {
	var wg sync.WaitGroup
	for range xs {
		wg.Add(1)
		go func() { // want `goroutine spawned inside a loop`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// nested loops are still loops.
func nested(grid [][]int) {
	for _, row := range grid {
		for range row {
			go background() // want `goroutine spawned inside a loop`
		}
	}
}

// deferredSpawn hides the go statement in a closure built per
// iteration; the lexical check still sees it.
func deferredSpawn(xs []int) {
	for range xs {
		f := func() {
			go background() // want `goroutine spawned inside a loop`
		}
		f()
	}
}

// single goroutines outside loops are fine.
func single() {
	go background()
}

// SolveBatchVia is the approved bounded runner: its spawning loop is
// bounded by the worker-pool size, not the input size.
func SolveBatchVia(workers int) {
	for i := 0; i < workers; i++ {
		go background()
	}
}

// annotated sites are reviewed exemptions.
func annotated(xs []int) {
	for range xs {
		//mwlvet:allow boundedspawn -- fixture: bounded by an external semaphore
		go background()
	}
}

func background() {}
