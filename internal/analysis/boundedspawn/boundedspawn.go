// Package boundedspawn enforces the fan-out invariant PR 4 fixed by
// hand: no `go` statement lexically inside a loop. One goroutine per
// iterated item is exactly the one-goroutine-per-problem bug that let a
// single batch request explode the scheduler; concurrent fan-out must
// flow through the bounded worker-pool runner (Service.SolveBatchVia,
// whose fixed-size worker loop is the one approved spawning loop) or be
// explicitly annotated:
//
//	//mwlvet:allow boundedspawn -- <why this fan-out is bounded>
package boundedspawn

import (
	"go/ast"

	"repro/internal/analysis"
)

// approvedRunners are the functions allowed to start goroutines in a
// loop without annotation: the repo's canonical bounded batch runners,
// whose loop bound is the worker-pool size rather than the input size.
var approvedRunners = map[string]bool{
	"SolveBatchVia":  true,
	"SolveBatchFunc": true,
}

// Analyzer is the boundedspawn check.
var Analyzer = &analysis.Analyzer{
	Name: "boundedspawn",
	Doc: "goroutines must not be spawned inside loops outside the approved bounded " +
		"runners (SolveBatchVia/SolveBatchFunc) or an annotated allow site",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || approvedRunners[fd.Name.Name] {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc walks one function body tracking lexical loop depth. A
// function literal defined inside a loop inherits the loop context: the
// literal is (almost always) invoked from the iteration that created
// it, so a `go` inside it is still per-iteration fan-out.
func checkFunc(pass *analysis.Pass, body ast.Node) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				walk(n.Body, true)
				return false
			case *ast.RangeStmt:
				walk(n.Body, true)
				return false
			case *ast.GoStmt:
				if inLoop {
					pass.Reportf(n.Pos(),
						"goroutine spawned inside a loop: unbounded fan-out; "+
							"use Service.SolveBatchVia or annotate with //mwlvet:allow boundedspawn -- <reason>")
				}
			}
			return true
		})
	}
	walk(body, false)
}
