package wiretag_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wiretag"
)

func TestWireTag(t *testing.T) {
	analysistest.Run(t, "testdata", "a", wiretag.Analyzer)
}
