// Package wiretag guards the canonical wire schema that Problem.Hash()
// content addressing and the persistent result store depend on.
//
// Three checks:
//
//  1. In any struct that participates in the JSON wire schema (it has at
//     least one `json:"..."`-tagged field), every exported non-embedded
//     field must carry an explicit json tag. An untagged field silently
//     marshals under its Go name, changing the canonical encoding — and
//     therefore every content hash — when someone renames it.
//  2. No two fields of a struct may map to the same json key.
//  3. Canonical-encoding code (functions named Hash or *[Cc]anonical*,
//     and everything in a wire.go file) must not range over a map:
//     Go's map iteration order is randomized per run, so a map range on
//     the encoding path makes equal problems hash unequal. Collect and
//     sort the keys instead.
package wiretag

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the wiretag check.
var Analyzer = &analysis.Analyzer{
	Name: "wiretag",
	Doc: "wire-schema structs need explicit json tags on every exported field, " +
		"and canonical-encoding code must not range over maps",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		isWireFile := filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "wire.go"
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				if st, ok := n.Type.(*ast.StructType); ok {
					checkStruct(pass, n.Name.Name, st)
				}
			case *ast.FuncDecl:
				if n.Body != nil && (isWireFile || canonicalName(n.Name.Name)) {
					checkNoMapRange(pass, n)
				}
				return false // struct literals inside funcs are not schema decls
			}
			return true
		})
	}
	return nil
}

func canonicalName(name string) bool {
	return name == "Hash" || strings.Contains(strings.ToLower(name), "canonical")
}

func checkStruct(pass *analysis.Pass, structName string, st *ast.StructType) {
	type tagged struct {
		field *ast.Ident
		key   string
	}
	var fields []tagged
	hasJSON := false
	for _, field := range st.Fields.List {
		key := ""
		if field.Tag != nil {
			tag, err := strconv.Unquote(field.Tag.Value)
			if err == nil {
				if v, ok := reflect.StructTag(tag).Lookup("json"); ok {
					hasJSON = true
					key = strings.Split(v, ",")[0]
				}
			}
		}
		if len(field.Names) == 0 {
			// Embedded fields inline their own (checked) fields.
			continue
		}
		for _, name := range field.Names {
			fields = append(fields, tagged{field: name, key: key})
		}
	}
	if !hasJSON {
		return // not a wire struct
	}
	seen := make(map[string]string)
	for _, f := range fields {
		if f.key == "" && f.field.IsExported() {
			pass.Reportf(f.field.Pos(),
				"exported field %s.%s of wire-schema struct has no json tag; "+
					"an implicit key ties the canonical encoding (and Problem.Hash) to the Go field name",
				structName, f.field.Name)
			continue
		}
		if f.key == "" || f.key == "-" {
			continue
		}
		if prev, dup := seen[f.key]; dup {
			pass.Reportf(f.field.Pos(), "json key %q of %s.%s already used by field %s",
				f.key, structName, f.field.Name, prev)
		}
		seen[f.key] = f.field.Name
	}
}

func checkNoMapRange(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			pass.Reportf(rs.Pos(),
				"map iteration in canonical-encoding function %s has randomized order; "+
					"collect the keys, sort them, and iterate the sorted slice",
				fd.Name.Name)
		}
		return true
	})
}
