package a

// Message participates in the wire schema (it has json tags), so every
// exported field needs one.
type Message struct {
	ID    string `json:"id"`
	Name  string // want `exported field Message.Name of wire-schema struct has no json tag`
	Count int    `json:"count"`
	note  string // unexported fields never marshal; no tag needed
}

// Dup maps two fields onto one key.
type Dup struct {
	A string `json:"x"`
	B string `json:"x"` // want `json key "x" of Dup.B already used by field A`
}

// Plain has no json tags at all: it is not a wire struct, and Go-name
// marshalling is whatever its (non-wire) users want.
type Plain struct {
	X int
	Y int
}

// Envelope embeds a wire struct; the embedded field inlines fields that
// are checked at their own declaration.
type Envelope struct {
	Message
	Extra string `json:"extra"`
}

// Skipped fields are explicitly out of the schema.
type WithSkip struct {
	Kept   string `json:"kept"`
	Memory []byte `json:"-"`
}

// canonicalKeys is on the hashing path, so map order must be fixed.
func canonicalKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want `map iteration in canonical-encoding function canonicalKeys`
		out = append(out, k)
	}
	return out
}

// Hash is canonical by name — and this file is wire.go, so every
// function here is under the no-map-range rule anyway.
func Hash(m map[string]int) int {
	h := 0
	for _, v := range m { // want `map iteration in canonical-encoding function Hash`
		h = h*31 + v
	}
	return h
}

func fine(m map[string]int) int {
	t := 0
	for _, v := range sortedVals(m) {
		t += v
	}
	return t
}

func sortedVals(m map[string]int) []int {
	_ = m
	return nil
}

var _ = []any{Message{}, Dup{}, Plain{}, Envelope{}, WithSkip{}}
