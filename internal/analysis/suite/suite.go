// Package suite assembles the mwlvet analyzer set in one place so the
// vettool binary and the integration tests agree on what "the suite"
// is.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/boundedspawn"
	"repro/internal/analysis/ctxpoll"
	"repro/internal/analysis/metricname"
	"repro/internal/analysis/seededrand"
	"repro/internal/analysis/wiretag"
)

// Analyzers returns the full mwlvet suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		boundedspawn.Analyzer,
		ctxpoll.Analyzer,
		metricname.Analyzer,
		seededrand.Analyzer,
		wiretag.Analyzer,
	}
}
