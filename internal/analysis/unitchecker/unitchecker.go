// Package unitchecker implements the command-line protocol that
// `go vet -vettool=...` speaks to an analysis driver, using only the
// standard library (the x/tools unitchecker is unavailable offline).
//
// The protocol, reverse-engineered from cmd/go/internal/work and the
// x/tools driver it was designed for:
//
//	tool -V=full    print "<name> version <v> ... buildID=<hash>" (cache key)
//	tool -flags     print a JSON list of analyzer flags (none here)
//	tool foo.cfg    analyze one compilation unit described by foo.cfg
//
// The .cfg file is JSON carrying the unit's file list plus the compiler
// export-data files of every dependency; go/importer's gc importer reads
// those directly, so a full types.Info is available without x/tools.
// Diagnostics go to stderr as "file:line:col: message [mwlvet:analyzer]"
// and any finding makes the tool (and hence `go vet`) exit non-zero.
// Facts are not supported: mwlvet's analyzers are all intra-package, so
// dependency units (VetxOnly) are acknowledged without being parsed.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/analysis"
)

// Config mirrors the JSON emitted by cmd/go for each vetted unit.
// Fields the driver does not consume are listed anyway so the schema is
// documented in one place; unknown fields are ignored by encoding/json.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the vettool protocol with the given analyzer suite and does
// not return.
func Main(analyzers ...*analysis.Analyzer) {
	vFlag := flag.String("V", "", "print version and exit (protocol flag set by the go command)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (protocol flag)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [go vet protocol args]\n\nAnalyzers:\n", progName())
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(os.Stderr, "\nRun via: go vet -vettool=$(command -v %s) ./...\n", progName())
	}
	flag.Parse()

	if *vFlag != "" {
		// cmd/go hashes this line into its build cache key, so it must
		// change whenever the tool binary changes: hash the executable.
		if *vFlag != "full" {
			fmt.Printf("%s version devel\n", progName())
			os.Exit(0)
		}
		self, err := os.Executable()
		if err != nil {
			fatalf("%v", err)
		}
		f, err := os.Open(self)
		if err != nil {
			fatalf("%v", err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			fatalf("%v", err)
		}
		f.Close()
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progName(), string(h.Sum(nil)))
		os.Exit(0)
	}
	if *flagsFlag {
		// No per-analyzer flags: the suite is all-on, always.
		fmt.Println("[]")
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		flag.Usage()
		os.Exit(2)
	}
	diags, err := checkUnit(args[0], analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// checkUnit analyzes the compilation unit described by cfgFile and
// prints its diagnostics. An error return means the unit could not be
// analyzed at all.
func checkUnit(cfgFile string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}

	// cmd/go requires the facts file to exist for every unit, including
	// dependency-only ones, before it will cache the result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("mwlvet: no facts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// Dependency unit: only its (empty) facts were wanted.
		return nil, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// ImportMap resolves as-written paths (vendoring, test variants)
		// to the canonical path keying PackageFile.
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer:  compilerImporter,
		GoVersion: langVersion(cfg.GoVersion),
		Sizes:     types.SizesFor("gc", targetArch()),
		Error:     func(error) {}, // keep going; Check's return reports the first
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The build itself already failed (or will) with a better
			// message; vet should not add noise.
			os.Exit(0)
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	diags, err := analysis.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, err
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [mwlvet:%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return diags, nil
}

// langVersion trims a toolchain version like "go1.23.4" to the language
// version go/types accepts ("go1.23").
func langVersion(v string) string {
	if !strings.HasPrefix(v, "go1.") {
		return ""
	}
	parts := strings.SplitN(v, ".", 3)
	return parts[0] + "." + parts[1]
}

func targetArch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}

func progName() string { return filepath.Base(os.Args[0]) }

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", progName(), fmt.Sprintf(format, args...))
	os.Exit(1)
}
