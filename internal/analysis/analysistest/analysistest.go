// Package analysistest runs an analyzer over source fixtures and checks
// its diagnostics against expectations embedded in the fixtures — the
// same contract as golang.org/x/tools/go/analysis/analysistest, rebuilt
// on the standard library.
//
// A fixture line that should trigger a diagnostic carries a trailing
// comment of the form
//
//	// want "regexp"
//
// Each diagnostic must match exactly one pending want on its line, and
// every want must be consumed. Fixtures live under
// <dir>/src/<pkg>/*.go and are type-checked with the source importer,
// so they may import standard-library packages but nothing else.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(` + "`[^`]*`" + `|"(?:[^"\\]|\\.)*")`)

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run analyzes the fixture package at dir/src/pkg and reports every
// mismatch between produced diagnostics and // want expectations as a
// test error.
func Run(t *testing.T, dir, pkg string, a *analysis.Analyzer) {
	t.Helper()
	srcDir := filepath.Join(dir, "src", pkg)
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var expects []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(srcDir, e.Name())
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		expects = append(expects, parseWants(t, name, src)...)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", srcDir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	typesPkg, err := tc.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}

	diags, err := analysis.Run(fset, files, typesPkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		if !consume(expects, posn.Filename, posn.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	sort.Slice(expects, func(i, j int) bool {
		if expects[i].file != expects[j].file {
			return expects[i].file < expects[j].file
		}
		return expects[i].line < expects[j].line
	})
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.rx)
		}
	}
}

func parseWants(t *testing.T, filename string, src []byte) []*expectation {
	t.Helper()
	var out []*expectation
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		pattern := m[1]
		if pattern[0] == '`' {
			pattern = pattern[1 : len(pattern)-1]
		} else {
			var err error
			pattern, err = strconv.Unquote(pattern)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", filename, i+1, m[1], err)
			}
		}
		rx, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp: %v", filename, i+1, err)
		}
		out = append(out, &expectation{file: filename, line: i + 1, rx: rx})
	}
	return out
}

func consume(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.rx.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}
