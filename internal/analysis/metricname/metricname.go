// Package metricname lints the hand-rolled Prometheus exposition in
// cmd/mwld: every metric name literal must follow the project
// convention, and a metric family must not be registered (given a
// "# TYPE" header) more than once per package — double headers are an
// exposition-format violation scrapers reject.
//
// Conventions enforced on any string literal containing an mwld_ name:
//
//   - names match mwld_[a-z][a-z0-9_]* — lowercase, no dashes, no
//     double or trailing underscores;
//   - counters end in _total, never _totals/_count/_num;
//   - durations and sizes use base units: _seconds and _bytes, never
//     _ms/_millis/_micros/_nanos/_sec/_secs;
//   - the histogram series suffixes _bucket/_sum/_count hang only off a
//     unit-suffixed histogram base (..._seconds, ..._bytes);
//   - an explicit "# TYPE <name> counter|gauge|histogram" header agrees
//     with the name's suffix (counter => _total; histogram => _seconds
//     or _bytes; gauge => not _total) and appears at most once.
package metricname

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the metricname check.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "mwld_* metric literals must follow Prometheus naming conventions and " +
		"each family may be registered (# TYPE) only once per package",
	Run: run,
}

var (
	nameRe  = regexp.MustCompile(`mwld_[A-Za-z0-9_-]*`)
	validRe = regexp.MustCompile(`^mwld_[a-z][a-z0-9_]*$`)
	typeRe  = regexp.MustCompile(`# TYPE (mwld_[A-Za-z0-9_-]*) ([a-z]+)`)
)

// badUnits maps forbidden suffixes to the convention they violate.
var badUnits = map[string]string{
	"_ms": "_seconds", "_millis": "_seconds", "_milliseconds": "_seconds",
	"_micros": "_seconds", "_microseconds": "_seconds",
	"_nanos": "_seconds", "_nanoseconds": "_seconds",
	"_sec": "_seconds", "_secs": "_seconds",
	"_totals": "_total", "_num": "_total", "_counter": "_total",
}

var seriesSuffixes = []string{"_bucket", "_sum", "_count"}

func run(pass *analysis.Pass) error {
	type registration struct {
		kind string
		pos  token.Pos
	}
	families := make(map[string]registration)
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			text, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			for _, name := range nameRe.FindAllString(text, -1) {
				checkName(pass, lit.Pos(), name)
			}
			for _, m := range typeRe.FindAllStringSubmatch(text, -1) {
				name, kind := m[1], m[2]
				if prev, dup := families[name]; dup {
					pass.Reportf(lit.Pos(),
						"metric family %s registered more than once in this package (previous # TYPE was %s)",
						name, pass.Fset.Position(prev.pos))
				} else {
					families[name] = registration{kind: kind, pos: lit.Pos()}
				}
				checkKind(pass, lit.Pos(), name, kind)
			}
			return true
		})
	}
	return nil
}

func checkName(pass *analysis.Pass, pos token.Pos, name string) {
	if name == "mwld_" {
		// A bare prefix is a prefix (HasPrefix checks, docs, regexps —
		// including this analyzer's own), not a metric name.
		return
	}
	if !validRe.MatchString(name) || strings.Contains(name, "__") || strings.HasSuffix(name, "_") {
		pass.Reportf(pos, "metric name %q is not of the form mwld_[a-z][a-z0-9_]*", name)
		return
	}
	base, isSeries := stripSeriesSuffix(name)
	if isSeries && !strings.HasSuffix(base, "_seconds") && !strings.HasSuffix(base, "_bytes") {
		pass.Reportf(pos,
			"histogram series %q hangs off base %q, which lacks a unit suffix (_seconds or _bytes)",
			name, base)
	}
	for bad, good := range badUnits {
		if strings.HasSuffix(base, bad) {
			pass.Reportf(pos, "metric name %q uses suffix %s; the convention is %s", name, bad, good)
		}
	}
}

func checkKind(pass *analysis.Pass, pos token.Pos, name, kind string) {
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "counter %q must end in _total", name)
		}
	case "histogram":
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
			pass.Reportf(pos, "histogram %q must carry a base unit suffix (_seconds or _bytes)", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "gauge %q must not end in _total (that suffix is reserved for counters)", name)
		}
	default:
		pass.Reportf(pos, "metric family %s has unknown type %q (want counter, gauge or histogram)", name, kind)
	}
}

func stripSeriesSuffix(name string) (base string, isSeries bool) {
	for _, s := range seriesSuffixes {
		if strings.HasSuffix(name, s) {
			return strings.TrimSuffix(name, s), true
		}
	}
	return name, false
}
