package metricname_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, "testdata", "a", metricname.Analyzer)
}
