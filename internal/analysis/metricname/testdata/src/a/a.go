package a

// Exposition literals in the approved shapes.
const (
	goodCounter = "# TYPE mwld_requests_total counter"
	goodGauge   = "# TYPE mwld_queue_depth gauge"
	goodHist    = "# TYPE mwld_solve_duration_seconds histogram"
	goodSeries  = "mwld_solve_duration_seconds_bucket{le=\"+Inf\"} %d"
	goodFormat  = "mwld_requests_total{method=%q} %d\n"
)

// Convention violations.
const (
	badCase     = "mwld_Requests_total"                // want `not of the form`
	badDash     = "mwld_cache-hits_total"              // want `not of the form`
	badUnit     = "mwld_latency_ms"                    // want `uses suffix _ms`
	badTotals   = "mwld_solve_totals"                  // want `uses suffix _totals`
	badSeries   = "mwld_sizes_bucket"                  // want `lacks a unit suffix`
	badKind     = "# TYPE mwld_queue_len counter"      // want `must end in _total`
	badHistKind = "# TYPE mwld_solves_fast histogram"  // want `must carry a base unit suffix`
	badGauge    = "# TYPE mwld_live_total gauge"       // want `must not end in _total`
	dupReg      = "# TYPE mwld_requests_total counter" // want `registered more than once`
)
