package a

import "context"

// Solve iterates but never looks at ctx: uncancelable mid-solve.
func Solve(ctx context.Context, xs []int) int { // want `exported solver Solve loops but never uses its context`
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// SolveGood polls ctx.Err on the loop path.
func SolveGood(ctx context.Context, xs []int) (int, error) {
	total := 0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += x
	}
	return total, nil
}

// AllocateCtx delegates ctx to a callee inside the loop, which is an
// acceptable hand-off of the polling obligation.
func AllocateCtx(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		total += step(ctx, x)
	}
	return total
}

// OptimizeSelect selects on Done inside its loop.
func OptimizeSelect(ctx context.Context, ch <-chan int) int {
	for {
		select {
		case <-ctx.Done():
			return 0
		case v := <-ch:
			if v < 0 {
				return v
			}
		}
	}
}

// AnnealOuter polls in its outer loop only: one polled loop is enough
// for the function-level contract.
func AnnealOuter(ctx context.Context, xs []int) int {
	total := 0
	for i := 0; i < 3; i++ {
		if ctx.Err() != nil {
			return total
		}
		for _, x := range xs {
			total += x
		}
	}
	return total
}

// Search has no loop, so there is nothing to poll.
func Search(ctx context.Context, x int) int { return x }

// Maximize is not solver-shaped; the check does not apply.
func Maximize(ctx context.Context, xs []int) int {
	n := 0
	for range xs {
		n++
	}
	return n
}

// helper is unexported; internal helpers are the caller's concern.
func helper(ctx context.Context, xs []int) {
	for range xs {
	}
}

//mwlvet:allow ctxpoll -- fixture: demonstrates an annotated exemption
func SolveExempt(ctx context.Context, xs []int) int {
	n := 0
	for range xs {
		n++
	}
	return n
}

func step(ctx context.Context, x int) int { return x }
