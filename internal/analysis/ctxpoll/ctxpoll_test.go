package ctxpoll_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxpoll"
)

func TestCtxPoll(t *testing.T) {
	analysistest.Run(t, "testdata", "a", ctxpoll.Analyzer)
}
