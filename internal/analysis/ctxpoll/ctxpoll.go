// Package ctxpoll enforces the cancellation contract PRs 1 and 3 fixed
// by hand in twostage and descend: an exported solver entry point that
// accepts a context and iterates (over graph nodes, branch-and-bound
// nodes, anneal proposals, ...) must observe that context on its loop
// path — by calling ctx.Err(), selecting on ctx.Done(), or passing ctx
// to a callee inside a loop. A solver whose loops never mention ctx is
// uncancelable mid-solve, which the Service's worker pool and the
// portfolio racer both depend on never happening.
package ctxpoll

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxpoll check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc: "exported solver functions (Solve*/Allocate*/Optimize*/Anneal*/Search*/*Ctx) " +
		"taking a context.Context and containing loops must use ctx inside at least one loop",
	Run: run,
}

// solverShaped reports whether name looks like a solver entry point:
// the prefixes of the method registry's public surface, plus the repo's
// *Ctx convention for cancellation-aware variants.
func solverShaped(name string) bool {
	for _, prefix := range []string{"Solve", "Allocate", "Optimize", "Anneal", "Search"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return strings.HasSuffix(name, "Ctx")
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || !solverShaped(fd.Name.Name) {
				continue
			}
			ctxObj := contextParam(pass, fd)
			if ctxObj == nil {
				continue
			}
			check(pass, fd, ctxObj)
		}
	}
	return nil
}

// contextParam returns the types.Object of the function's first
// context.Context parameter, or nil.
func contextParam(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isContext(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// check reports fd unless some loop in its body references the ctx
// parameter. Any reference counts: ctx.Err()/ctx.Done() are direct
// polls, and passing ctx onward delegates the polling obligation to the
// callee, which this intra-package check cannot see into.
func check(pass *analysis.Pass, fd *ast.FuncDecl, ctxObj types.Object) {
	usesCtx := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxObj {
				found = true
			}
			return !found
		})
		return found
	}
	hasLoop := false
	polled := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n.Body
		case *ast.RangeStmt:
			body = n.Body
		default:
			return true
		}
		hasLoop = true
		if usesCtx(body) {
			polled = true
		}
		return !polled
	})
	if hasLoop && !polled {
		pass.Reportf(fd.Name.Pos(),
			"exported solver %s loops but never uses its context inside a loop; "+
				"poll ctx.Err(), select on ctx.Done(), or pass ctx to a callee on the loop path",
			fd.Name.Name)
	}
}
