package vsim

import (
	"strings"
	"testing"
)

func TestLexer(t *testing.T) {
	toks, err := lexAll("module m (input wire [3:0] a); // comment\n wire [7:0] y = 4'd12 + a; endmodule")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	want := []string{"module", "m", "(", "input", "wire", "[", "3", ":", "0", "]", "a", ")", ";",
		"wire", "[", "7", ":", "0", "]", "y", "=", "4'd12", "+", "a", ";", "endmodule", ""}
	if len(texts) != len(want) {
		t.Fatalf("token count %d, want %d: %q", len(texts), len(want), texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[1] != tokIdent || kinds[0] != tokKeyword || kinds[21] != tokSized {
		t.Fatalf("unexpected kinds %v", kinds)
	}
}

func TestLexerSizedLiteralBases(t *testing.T) {
	for _, src := range []string{"8'hff", "4'b1010", "3'o7", "10'd1_000"} {
		toks, err := lexAll(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if toks[0].kind != tokSized || toks[0].text != src {
			t.Fatalf("%s lexed as %v %q", src, toks[0].kind, toks[0].text)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"4'x12", "4'", "/* unterminated"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("%q: lexed without error", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"missing module", "wire x = 1;"},
		{"undeclared ref", "module m (input wire a, output wire y); assign y = b; endmodule"},
		{"assign to input", "module m (input wire a); assign a = 1'd1; endmodule"},
		{"double declaration", "module m (input wire a); reg a; endmodule"},
		{"double wire drive", "module m (input wire a, output wire y); assign y = a; assign y = a; endmodule"},
		{"nonzero lsb", "module m (input wire [3:1] a); endmodule"},
		{"select out of range", "module m (input wire [3:0] a, output wire y); assign y = a[4]; endmodule"},
		{"blocking assign", "module m (input wire clk); reg r; always @(posedge clk) r = 1'd1; endmodule"},
		{"literal overflow", "module m (output wire y); assign y = 2'd7; endmodule"},
		{"unsupported item", "module m (input wire a); initial begin end endmodule"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: parsed without error", c.name)
		}
	}
}

func TestParseModuleShape(t *testing.T) {
	m, err := Parse(`
module shape (
  input  wire clk,
  input  wire [7:0] a,
  output wire [8:0] y,
  output reg  done
);
  reg [8:0] acc;
  wire [8:0] sum = acc + {1'd0, a};
  assign y = acc;
  always @(posedge clk) begin
    acc <= sum;
    done <= 1'b1;
  end
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "shape" || len(m.Ports) != 4 || len(m.Regs) != 1 || len(m.Wires) != 2 || len(m.Always) != 1 {
		t.Fatalf("unexpected shape: %+v", m)
	}
	if m.Width("acc") != 9 || m.Width("a") != 8 || m.Width("done") != 1 {
		t.Fatalf("widths wrong: acc=%d a=%d done=%d", m.Width("acc"), m.Width("a"), m.Width("done"))
	}
}

// TestSimCounter checks clocked accumulation and reset behaviour.
func TestSimCounter(t *testing.T) {
	m, err := Parse(`
module counter (
  input  wire clk,
  input  wire rst,
  output wire [3:0] y
);
  reg [3:0] c;
  assign y = c;
  always @(posedge clk) begin
    if (rst) c <= 4'd0;
    else c <= c + 4'd1;
  end
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set("rst", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Step("clk"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("rst", 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if err := s.Step("clk"); err != nil {
			t.Fatal(err)
		}
		want := uint64(i % 16) // 4-bit wraparound
		if got, _ := s.Get("y"); got != want {
			t.Fatalf("after %d steps y = %d, want %d", i, got, want)
		}
	}
}

// TestSimNonBlocking checks that swaps work: both RHS evaluate before
// either commit.
func TestSimNonBlocking(t *testing.T) {
	m, err := Parse(`
module swap (input wire clk, output wire [3:0] ya, output wire [3:0] yb);
  reg [3:0] a;
  reg [3:0] b;
  reg init;
  assign ya = a;
  assign yb = b;
  always @(posedge clk) begin
    if (!init) begin
      a <= 4'd3;
      b <= 4'd12;
      init <= 1'd1;
    end else begin
      a <= b;
      b <= a;
    end
  end
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step("clk"); err != nil { // init
		t.Fatal(err)
	}
	if err := s.Step("clk"); err != nil { // swap
		t.Fatal(err)
	}
	if a, _ := s.Get("ya"); a != 12 {
		t.Fatalf("a = %d after swap, want 12", a)
	}
	if b, _ := s.Get("yb"); b != 3 {
		t.Fatalf("b = %d after swap, want 3", b)
	}
}

// TestSimLastWriteWins: two sequential non-blocking writes to one target
// in one edge; the later statement's value commits.
func TestSimLastWriteWins(t *testing.T) {
	m, err := Parse(`
module lww (input wire clk, output wire [3:0] y);
  reg [3:0] r;
  assign y = r;
  always @(posedge clk) begin
    r <= 4'd1;
    r <= 4'd2;
  end
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step("clk"); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("y"); v != 2 {
		t.Fatalf("y = %d, want 2 (last write wins)", v)
	}
}

// TestSimWireChain: wires depending on wires settle in dependency order
// regardless of declaration order (assign before its source).
func TestSimWireChain(t *testing.T) {
	m, err := Parse(`
module chain (input wire [3:0] a, output wire [3:0] y);
  assign y = mid;
  wire [3:0] mid = a + 4'd1;
endmodule`)
	if err != nil {
		// Forward references are legal Verilog but our resolve pass
		// processes declarations in order; if rejected, that is a
		// documented subset restriction and the generator never emits
		// them. Accept either behaviour but record which.
		t.Skipf("forward wire reference rejected by subset: %v", err)
	}
	s, err := NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set("a", 5); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("y"); v != 6 {
		t.Fatalf("y = %d, want 6", v)
	}
}

// TestSimCombinationalCycle: mutually dependent wires must be rejected at
// elaboration, not loop forever.
func TestSimCombinationalCycle(t *testing.T) {
	m, err := Parse(`
module cyc (output wire y);
  wire a = b;
  wire b = a;
  assign y = a;
endmodule`)
	if err != nil {
		t.Skipf("cycle rejected at parse: %v", err)
	}
	if _, err := NewSim(m); err == nil {
		t.Fatal("combinational cycle accepted")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("wrong error: %v", err)
	}
}

// TestSimArithmeticSemantics pins down the unsigned modulo behaviour the
// generated datapaths rely on: wraparound subtraction, full-width
// products, truncating part select, zero-extending concat.
func TestSimArithmeticSemantics(t *testing.T) {
	m, err := Parse(`
module arith (
  input  wire [7:0] a,
  input  wire [7:0] b,
  output wire [7:0] diff,
  output wire [15:0] prod,
  output wire [3:0] low,
  output wire [11:0] wide
);
  assign diff = a - b;
  assign prod = a * b;
  assign low  = a[3:0];
  assign wide = {4'd0, a};
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set("a", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("b", 5); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("diff"); v != 254 { // 3-5 mod 256
		t.Fatalf("diff = %d, want 254", v)
	}
	if v, _ := s.Get("prod"); v != 15 {
		t.Fatalf("prod = %d, want 15", v)
	}
	if err := s.Set("a", 0xAB); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("low"); v != 0xB {
		t.Fatalf("low = %#x, want 0xb", v)
	}
	if v, _ := s.Get("wide"); v != 0xAB {
		t.Fatalf("wide = %#x, want 0xab", v)
	}
}

func TestSimTernaryAndLogic(t *testing.T) {
	m, err := Parse(`
module pick (
  input  wire s,
  input  wire t,
  input  wire [3:0] a,
  input  wire [3:0] b,
  output wire [3:0] y,
  output wire both
);
  assign y = s ? a : b;
  assign both = s && !t;
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	mustSet := func(n string, v uint64) {
		t.Helper()
		if err := s.Set(n, v); err != nil {
			t.Fatal(err)
		}
	}
	mustSet("a", 7)
	mustSet("b", 9)
	mustSet("s", 1)
	mustSet("t", 0)
	if v, _ := s.Get("y"); v != 7 {
		t.Fatalf("y = %d, want 7", v)
	}
	if v, _ := s.Get("both"); v != 1 {
		t.Fatalf("both = %d, want 1", v)
	}
	mustSet("s", 0)
	if v, _ := s.Get("y"); v != 9 {
		t.Fatalf("y = %d, want 9", v)
	}
	if v, _ := s.Get("both"); v != 0 {
		t.Fatalf("both = %d, want 0", v)
	}
}

func TestSimErrors(t *testing.T) {
	m, err := Parse(`module m (input wire clk, input wire [3:0] a, output wire [3:0] y); assign y = a; endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set("y", 1); err == nil {
		t.Error("Set on output accepted")
	}
	if err := s.Set("nope", 1); err == nil {
		t.Error("Set on unknown accepted")
	}
	if _, err := s.Get("nope"); err == nil {
		t.Error("Get on unknown accepted")
	}
	if err := s.Step("nope"); err == nil {
		t.Error("Step on unknown clock accepted")
	}
}

func TestBenchRejectsWrongInterface(t *testing.T) {
	if _, err := NewBench(`module m (input wire clk, output wire y); assign y = 1'd0; endmodule`); err == nil {
		t.Fatal("bench accepted module without rst/start/done")
	}
}

// TestBenchHandshake runs a minimal handcrafted module that follows the
// generator's control contract and computes a+b with latency 2.
func TestBenchHandshake(t *testing.T) {
	src := `
module adder (
  input  wire clk,
  input  wire rst,
  input  wire start,
  input  wire [7:0] in_x_0,
  input  wire [7:0] in_x_1,
  output wire [7:0] out_x,
  output reg  done
);
  reg running;
  reg [1:0] cyc;
  reg [7:0] r_x;
  always @(posedge clk) begin
    if (rst) begin
      running <= 1'b0;
      done <= 1'b0;
      cyc <= 2'd0;
    end else if (start && !running) begin
      running <= 1'b1;
      done <= 1'b0;
      cyc <= 2'd0;
    end else if (running) begin
      if (cyc == 2'd1) begin
        running <= 1'b0;
        done <= 1'b1;
      end
      cyc <= cyc + 2'd1;
    end
  end
  reg [7:0] u0_a;
  reg [7:0] u0_b;
  wire [7:0] u0_y = u0_a + u0_b;
  always @(posedge clk) begin
    if (running) begin
      if (cyc == 2'd0) begin
        u0_a <= in_x_0;
        u0_b <= in_x_1;
      end
      if (cyc == 2'd1) begin
        r_x <= u0_y;
      end
    end
  end
  assign out_x = r_x;
endmodule`
	b, err := NewBench(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.InputPorts(); len(got) != 2 {
		t.Fatalf("input ports %v", got)
	}
	if got := b.OutputPorts(); len(got) != 1 || got[0] != "out_x" {
		t.Fatalf("output ports %v", got)
	}
	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	outs, cycles, err := b.RunIteration(map[string]uint64{"in_x_0": 100, "in_x_1": 55}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if outs["out_x"] != 155 {
		t.Fatalf("out_x = %d, want 155", outs["out_x"])
	}
	if cycles < 2 || cycles > 4 {
		t.Fatalf("took %d cycles, expected about 2", cycles)
	}
	// A second iteration must work without another reset.
	outs, _, err = b.RunIteration(map[string]uint64{"in_x_0": 200, "in_x_1": 100}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if outs["out_x"] != 44 { // 300 mod 256
		t.Fatalf("out_x = %d, want 44", outs["out_x"])
	}
}

// TestBenchTimeout: done never rising must be reported, not loop.
func TestBenchTimeout(t *testing.T) {
	src := `
module stuck (
  input  wire clk,
  input  wire rst,
  input  wire start,
  output reg  done
);
  always @(posedge clk) begin
    if (rst) done <= 1'b0;
  end
endmodule`
	b, err := NewBench(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.RunIteration(nil, 5); err == nil {
		t.Fatal("timeout not reported")
	}
}
