package vsim

import (
	"fmt"
	"strconv"
	"strings"
)

// ---- AST ----

// Module is a parsed Verilog module.
type Module struct {
	Name    string
	Ports   []Port
	Regs    []Decl
	Wires   []WireDef // wires with a defining expression (decl-init or assign)
	Always  []Always
	widths  map[string]int
	isInput map[string]bool
}

// Port is one ANSI-style module port.
type Port struct {
	Name  string
	Width int
	Input bool
	Reg   bool // declared "output reg"
}

// Decl is a named register with a width.
type Decl struct {
	Name  string
	Width int
}

// WireDef is a combinationally driven net: a wire declaration with an
// initialising expression, or the target of a continuous assign.
type WireDef struct {
	Name  string
	Width int // 0 when the width comes from an earlier declaration
	Expr  Expr
}

// Always is one `always @(posedge clk)` block.
type Always struct {
	Clock string
	Body  []Stmt
}

// Stmt is a statement inside an always block.
type Stmt interface{ stmt() }

// NonBlocking is `target <= expr;`.
type NonBlocking struct {
	Target string
	Expr   Expr
	Line   int
}

// If is an if/else-if/else chain.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // nil, a nested []Stmt, or a single If for else-if
}

func (NonBlocking) stmt() {}
func (If) stmt()          {}

// Expr is an expression tree node.
type Expr interface{ expr() }

// Num is a literal with an optional declared width (0 = unsized).
type Num struct {
	Val   uint64
	Width int
}

// Ref reads a named signal.
type Ref struct{ Name string }

// Select is a bit or part select x[hi:lo] (single bit: Hi == Lo).
type Select struct {
	X      Expr
	Hi, Lo int
}

// Unary applies !, ~ or - to an operand.
type Unary struct {
	Op string
	X  Expr
}

// Binary applies a binary operator.
type Binary struct {
	Op   string
	X, Y Expr
}

// Ternary is cond ? a : b.
type Ternary struct {
	Cond, Then, Else Expr
}

// Concat is {a, b, ...}.
type Concat struct{ Parts []Expr }

func (Num) expr()     {}
func (Ref) expr()     {}
func (Select) expr()  {}
func (Unary) expr()   {}
func (Binary) expr()  {}
func (Ternary) expr() {}
func (Concat) expr()  {}

// ---- parser ----

type parser struct {
	toks []token
	pos  int
}

// Parse compiles Verilog source into a Module, rejecting anything
// outside the supported synthesisable subset.
func Parse(src string) (*Module, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	if err := m.resolve(); err != nil {
		return nil, err
	}
	return m, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(text string) bool {
	t := p.peek()
	return (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text
}

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		t := p.peek()
		return fmt.Errorf("vsim: line %d: expected %q, found %q", t.line, text, t.text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("vsim: line %d: expected identifier, found %q", t.line, t.text)
	}
	p.pos++
	return t.text, nil
}

// width parses an optional `[msb:0]` range and returns msb+1, defaulting
// to 1 bit. Only lsb == 0 ranges are accepted in declarations, matching
// the generator.
func (p *parser) width() (int, error) {
	if !p.accept("[") {
		return 1, nil
	}
	msb, err := p.constInt()
	if err != nil {
		return 0, err
	}
	if err := p.expect(":"); err != nil {
		return 0, err
	}
	lsb, err := p.constInt()
	if err != nil {
		return 0, err
	}
	if lsb != 0 {
		return 0, fmt.Errorf("vsim: declaration range [%d:%d] must end at 0", msb, lsb)
	}
	if err := p.expect("]"); err != nil {
		return 0, err
	}
	if msb < 0 || msb > 63 {
		return 0, fmt.Errorf("vsim: unsupported declaration width %d (max 64 bits)", msb+1)
	}
	return msb + 1, nil
}

func (p *parser) constInt() (int, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("vsim: line %d: expected integer, found %q", t.line, t.text)
	}
	p.pos++
	v, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("vsim: line %d: bad integer %q", t.line, t.text)
	}
	return v, nil
}

func (p *parser) parseModule() (*Module, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for !p.accept(")") {
		port, err := p.parsePort()
		if err != nil {
			return nil, err
		}
		m.Ports = append(m.Ports, port)
		if !p.accept(",") && !p.at(")") {
			t := p.peek()
			return nil, fmt.Errorf("vsim: line %d: expected ',' or ')' in port list, found %q", t.line, t.text)
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	for !p.accept("endmodule") {
		if err := p.parseItem(m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (p *parser) parsePort() (Port, error) {
	var port Port
	switch {
	case p.accept("input"):
		port.Input = true
	case p.accept("output"):
	default:
		t := p.peek()
		return port, fmt.Errorf("vsim: line %d: expected input/output, found %q", t.line, t.text)
	}
	if p.accept("reg") {
		port.Reg = true
	} else {
		p.accept("wire") // optional
	}
	w, err := p.width()
	if err != nil {
		return port, err
	}
	port.Width = w
	port.Name, err = p.ident()
	return port, err
}

func (p *parser) parseItem(m *Module) error {
	t := p.peek()
	switch {
	case p.accept("reg"):
		w, err := p.width()
		if err != nil {
			return err
		}
		name, err := p.ident()
		if err != nil {
			return err
		}
		m.Regs = append(m.Regs, Decl{Name: name, Width: w})
		return p.expect(";")
	case p.accept("wire"):
		w, err := p.width()
		if err != nil {
			return err
		}
		name, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect("="); err != nil {
			return fmt.Errorf("vsim: wire %q must have a defining expression: %w", name, err)
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		m.Wires = append(m.Wires, WireDef{Name: name, Width: w, Expr: e})
		return p.expect(";")
	case p.accept("assign"):
		name, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect("="); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		m.Wires = append(m.Wires, WireDef{Name: name, Expr: e})
		return p.expect(";")
	case p.accept("always"):
		return p.parseAlways(m)
	default:
		return fmt.Errorf("vsim: line %d: unsupported module item starting at %q", t.line, t.text)
	}
}

func (p *parser) parseAlways(m *Module) error {
	if err := p.expect("@"); err != nil {
		return err
	}
	if err := p.expect("("); err != nil {
		return err
	}
	if err := p.expect("posedge"); err != nil {
		return err
	}
	clock, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	body, err := p.parseStmtOrBlock()
	if err != nil {
		return err
	}
	m.Always = append(m.Always, Always{Clock: clock, Body: body})
	return nil
}

// parseStmtOrBlock parses either a begin/end block or a single statement.
func (p *parser) parseStmtOrBlock() ([]Stmt, error) {
	if p.accept("begin") {
		var stmts []Stmt
		for !p.accept("end") {
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, s)
		}
		return stmts, nil
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	if p.accept("if") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.accept("else") {
			els, err = p.parseStmtOrBlock()
			if err != nil {
				return nil, err
			}
		}
		return If{Cond: cond, Then: then, Else: els}, nil
	}
	line := p.peek().line
	target, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("<="); err != nil {
		return nil, fmt.Errorf("vsim: only non-blocking assignment is supported: %w", err)
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return NonBlocking{Target: target, Expr: e, Line: line}, nil
}

// ---- expressions, precedence climbing ----

// binary operator precedence, higher binds tighter.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, ">=": 7, // note: "<=" is claimed by non-blocking assignment
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return cond, nil
	}
	then, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return Ternary{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct {
			return left, nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.pos++
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = Binary{Op: t.text, X: left, Y: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.kind == tokPunct && (t.text == "!" || t.text == "~" || t.text == "-") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: t.text, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.pos++
		v, err := strconv.ParseUint(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("vsim: line %d: bad number %q", t.line, t.text)
		}
		return Num{Val: v}, nil
	case t.kind == tokSized:
		p.pos++
		return parseSized(t)
	case t.kind == tokIdent:
		p.pos++
		var e Expr = Ref{Name: t.text}
		if p.accept("[") {
			hi, err := p.constInt()
			if err != nil {
				return nil, err
			}
			lo := hi
			if p.accept(":") {
				lo, err = p.constInt()
				if err != nil {
					return nil, err
				}
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			if hi < lo || lo < 0 || hi > 63 {
				return nil, fmt.Errorf("vsim: line %d: bad part select [%d:%d]", t.line, hi, lo)
			}
			e = Select{X: e, Hi: hi, Lo: lo}
		}
		return e, nil
	case p.accept("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case p.accept("{"):
		var parts []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
			if p.accept("}") {
				break
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		return Concat{Parts: parts}, nil
	default:
		return nil, fmt.Errorf("vsim: line %d: unexpected token %q in expression", t.line, t.text)
	}
}

// parseSized decodes a sized literal token like 5'd12 or 4'b1010.
func parseSized(t token) (Expr, error) {
	quote := strings.IndexByte(t.text, '\'')
	width, err := strconv.Atoi(t.text[:quote])
	if err != nil || width < 1 || width > 64 {
		return nil, fmt.Errorf("vsim: line %d: bad literal width in %q", t.line, t.text)
	}
	base := 10
	switch t.text[quote+1] {
	case 'd', 'D':
	case 'b', 'B':
		base = 2
	case 'h', 'H':
		base = 16
	case 'o', 'O':
		base = 8
	}
	digits := strings.ReplaceAll(t.text[quote+2:], "_", "")
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return nil, fmt.Errorf("vsim: line %d: bad literal value in %q", t.line, t.text)
	}
	if width < 64 && v >= 1<<uint(width) {
		return nil, fmt.Errorf("vsim: line %d: literal %q overflows its width", t.line, t.text)
	}
	return Num{Val: v, Width: width}, nil
}

// resolve builds the module's symbol tables and checks that every
// referenced signal is declared, every assignment target is legal, and
// wire definitions are acyclic (checked later at simulation ordering).
func (m *Module) resolve() error {
	m.widths = make(map[string]int)
	m.isInput = make(map[string]bool)
	declare := func(name string, width int) error {
		if _, dup := m.widths[name]; dup {
			return fmt.Errorf("vsim: %q declared twice", name)
		}
		m.widths[name] = width
		return nil
	}
	for _, p := range m.Ports {
		if err := declare(p.Name, p.Width); err != nil {
			return err
		}
		m.isInput[p.Name] = p.Input
	}
	for _, r := range m.Regs {
		if err := declare(r.Name, r.Width); err != nil {
			return err
		}
	}
	driven := make(map[string]bool)
	for i, w := range m.Wires {
		if driven[w.Name] {
			return fmt.Errorf("vsim: wire %q driven twice", w.Name)
		}
		driven[w.Name] = true
		if w.Width > 0 { // fresh declaration
			if err := declare(w.Name, w.Width); err != nil {
				return err
			}
		} else { // assign to an existing output port
			width, ok := m.widths[w.Name]
			if !ok {
				return fmt.Errorf("vsim: assign to undeclared %q", w.Name)
			}
			if m.isInput[w.Name] {
				return fmt.Errorf("vsim: assign drives input port %q", w.Name)
			}
			m.Wires[i].Width = width
		}
		if err := m.checkExpr(w.Expr); err != nil {
			return err
		}
	}
	for _, a := range m.Always {
		if _, ok := m.widths[a.Clock]; !ok {
			return fmt.Errorf("vsim: undeclared clock %q", a.Clock)
		}
		if err := m.checkStmts(a.Body); err != nil {
			return err
		}
	}
	return nil
}

func (m *Module) checkStmts(stmts []Stmt) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case NonBlocking:
			if _, ok := m.widths[s.Target]; !ok {
				return fmt.Errorf("vsim: line %d: assignment to undeclared %q", s.Line, s.Target)
			}
			if m.isInput[s.Target] {
				return fmt.Errorf("vsim: line %d: assignment drives input port %q", s.Line, s.Target)
			}
			if err := m.checkExpr(s.Expr); err != nil {
				return err
			}
		case If:
			if err := m.checkExpr(s.Cond); err != nil {
				return err
			}
			if err := m.checkStmts(s.Then); err != nil {
				return err
			}
			if err := m.checkStmts(s.Else); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *Module) checkExpr(e Expr) error {
	switch e := e.(type) {
	case Num:
	case Ref:
		if _, ok := m.widths[e.Name]; !ok {
			return fmt.Errorf("vsim: reference to undeclared %q", e.Name)
		}
	case Select:
		ref, ok := e.X.(Ref)
		if !ok {
			return fmt.Errorf("vsim: part select of a non-identifier")
		}
		if err := m.checkExpr(e.X); err != nil {
			return err
		}
		if w := m.widths[ref.Name]; e.Hi >= w {
			return fmt.Errorf("vsim: select %s[%d:%d] exceeds width %d", ref.Name, e.Hi, e.Lo, w)
		}
	case Unary:
		return m.checkExpr(e.X)
	case Binary:
		if err := m.checkExpr(e.X); err != nil {
			return err
		}
		return m.checkExpr(e.Y)
	case Ternary:
		if err := m.checkExpr(e.Cond); err != nil {
			return err
		}
		if err := m.checkExpr(e.Then); err != nil {
			return err
		}
		return m.checkExpr(e.Else)
	case Concat:
		for _, part := range e.Parts {
			if err := m.checkExpr(part); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("vsim: unknown expression node %T", e)
	}
	return nil
}

// Width returns the declared width of a signal, or 0 if undeclared.
func (m *Module) Width(name string) int { return m.widths[name] }
