// Package vsim parses and simulates the synthesisable Verilog subset
// emitted by internal/rtl, providing an independent execution path for
// the generated hardware description: instead of trusting that the
// generator's *intent* matches internal/fxsim, the emitted source text
// itself is compiled and clocked, and its port-level behaviour is
// compared against the fixed-point reference. A bug in text generation
// (wrong bit-select, missed padding, misplaced schedule event) surfaces
// here as a value mismatch even when the in-memory structures that
// produced the text were correct.
//
// The accepted language is deliberately the subset rtl.Generate emits —
// module header with ANSI ports, reg/wire declarations, continuous
// assigns, and a single-clock always block of non-blocking assignments
// under if/else-if chains — plus enough generality (nested begin/end,
// arbitrary expression nesting, the full binary operator set below) that
// hand-written testbench fragments and future generator changes stay in
// range. Anything outside the subset is a parse error, never a silent
// misinterpretation.
package vsim

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber  // plain decimal: 42
	tokSized   // sized literal: 5'd12, 4'b1010, 8'hff
	tokPunct   // single or multi character punctuation
	tokKeyword // reserved word
)

// token is one lexical token with its source line for diagnostics.
type token struct {
	kind tokKind
	text string
	line int
}

var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "reg": true, "assign": true,
	"always": true, "posedge": true, "negedge": true, "begin": true,
	"end": true, "if": true, "else": true,
}

// multi-character punctuation, longest first so the lexer is greedy.
var multiPunct = []string{"<=", ">=", "==", "!=", "&&", "||", "<<", ">>"}

// lexer turns Verilog source into tokens, discarding comments.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// lexAll tokenises the whole input.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			end := strings.Index(lx.src[lx.pos+2:], "*/")
			if end < 0 {
				return token{}, fmt.Errorf("vsim: line %d: unterminated block comment", lx.line)
			}
			lx.line += strings.Count(lx.src[lx.pos:lx.pos+2+end+2], "\n")
			lx.pos += 2 + end + 2
		default:
			return lx.lexToken()
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil
}

func (lx *lexer) lexToken() (token, error) {
	c := lx.src[lx.pos]
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isWordByte(lx.src[lx.pos]) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: lx.line}, nil
	case c >= '0' && c <= '9':
		return lx.lexNumber()
	default:
		for _, mp := range multiPunct {
			if strings.HasPrefix(lx.src[lx.pos:], mp) {
				lx.pos += len(mp)
				return token{kind: tokPunct, text: mp, line: lx.line}, nil
			}
		}
		lx.pos++
		return token{kind: tokPunct, text: string(c), line: lx.line}, nil
	}
}

// lexNumber handles both plain decimals and sized literals (8'hff). A
// width prefix followed by ' and a base letter consumes the value digits
// including underscores.
func (lx *lexer) lexNumber() (token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) && (lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' || lx.src[lx.pos] == '_') {
		lx.pos++
	}
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '\'' {
		lx.pos++
		if lx.pos >= len(lx.src) {
			return token{}, fmt.Errorf("vsim: line %d: truncated sized literal", lx.line)
		}
		base := lx.src[lx.pos]
		switch base {
		case 'd', 'D', 'b', 'B', 'h', 'H', 'o', 'O':
			lx.pos++
		default:
			return token{}, fmt.Errorf("vsim: line %d: unknown literal base %q", lx.line, string(base))
		}
		valStart := lx.pos
		for lx.pos < len(lx.src) && (isWordByte(lx.src[lx.pos]) || lx.src[lx.pos] == '_') {
			lx.pos++
		}
		if lx.pos == valStart {
			return token{}, fmt.Errorf("vsim: line %d: sized literal missing value", lx.line)
		}
		return token{kind: tokSized, text: lx.src[start:lx.pos], line: lx.line}, nil
	}
	return token{kind: tokNumber, text: lx.src[start:lx.pos], line: lx.line}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWordByte(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
