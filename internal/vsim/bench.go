package vsim

import "fmt"

// Bench drives a module that follows the internal/rtl interface contract:
// inputs clk, rst and start, an output done that rises when the iteration
// completes, plus arbitrary data ports. It hides the reset/start protocol
// so tests can treat the generated hardware as a function from input
// vectors to output vectors.
type Bench struct {
	Sim *Sim
	mod *Module
}

// NewBench parses the Verilog source and elaborates a simulator,
// verifying the module exposes the expected control ports.
func NewBench(src string) (*Bench, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sim, err := NewSim(m)
	if err != nil {
		return nil, err
	}
	for _, ctl := range []string{"clk", "rst", "start"} {
		if w, ok := m.widths[ctl]; !ok || !m.isInput[ctl] || w != 1 {
			return nil, fmt.Errorf("vsim: module %s lacks 1-bit input %q", m.Name, ctl)
		}
	}
	if w, ok := m.widths["done"]; !ok || m.isInput["done"] || w != 1 {
		return nil, fmt.Errorf("vsim: module %s lacks 1-bit output \"done\"", m.Name)
	}
	return &Bench{Sim: sim, mod: m}, nil
}

// InputPorts returns the names of the module's data input ports (all
// inputs except the control signals), in declaration order.
func (b *Bench) InputPorts() []string {
	var names []string
	for _, p := range b.mod.Ports {
		if p.Input && p.Name != "clk" && p.Name != "rst" && p.Name != "start" {
			names = append(names, p.Name)
		}
	}
	return names
}

// OutputPorts returns the names of the module's data output ports, in
// declaration order.
func (b *Bench) OutputPorts() []string {
	var names []string
	for _, p := range b.mod.Ports {
		if !p.Input && p.Name != "done" {
			names = append(names, p.Name)
		}
	}
	return names
}

// step clocks one positive edge.
func (b *Bench) step() error { return b.Sim.Step("clk") }

// Reset applies a synchronous reset for one cycle.
func (b *Bench) Reset() error {
	if err := b.Sim.Set("rst", 1); err != nil {
		return err
	}
	if err := b.step(); err != nil {
		return err
	}
	return b.Sim.Set("rst", 0)
}

// RunIteration drives one complete run: applies the input vector, pulses
// start, clocks until done rises (or maxCycles elapse) and returns the
// output vector plus the number of edges taken after the start pulse.
// Inputs are held stable for the whole run, matching the generator's
// contract that primary operands are sampled at their operations' start
// steps.
func (b *Bench) RunIteration(inputs map[string]uint64, maxCycles int) (map[string]uint64, int, error) {
	for name, v := range inputs {
		if err := b.Sim.Set(name, v); err != nil {
			return nil, 0, err
		}
	}
	if err := b.Sim.Set("start", 1); err != nil {
		return nil, 0, err
	}
	if err := b.step(); err != nil {
		return nil, 0, err
	}
	if err := b.Sim.Set("start", 0); err != nil {
		return nil, 0, err
	}
	for cycles := 0; ; cycles++ {
		done, err := b.Sim.Get("done")
		if err != nil {
			return nil, 0, err
		}
		if done != 0 {
			outs := make(map[string]uint64)
			for _, name := range b.OutputPorts() {
				v, err := b.Sim.Get(name)
				if err != nil {
					return nil, 0, err
				}
				outs[name] = v
			}
			return outs, cycles, nil
		}
		if cycles >= maxCycles {
			return nil, cycles, fmt.Errorf("vsim: done did not rise within %d cycles", maxCycles)
		}
		if err := b.step(); err != nil {
			return nil, 0, err
		}
	}
}
