package vsim

import (
	"fmt"
	"sort"
)

// Sim is a cycle simulator for one parsed Module. Signal values are held
// masked to their declared widths; wires are recomputed in dependency
// order after every input change and clock edge; always blocks use
// standard non-blocking semantics (all right-hand sides evaluate against
// the pre-edge state, then commit together).
type Sim struct {
	m     *Module
	vals  map[string]uint64
	order []int // indices into m.Wires, evaluation order

	pending map[string]uint64 // scratch for non-blocking commits
}

// NewSim elaborates the module: orders combinational wire definitions
// topologically (reporting combinational cycles) and zero-initialises
// every signal.
func NewSim(m *Module) (*Sim, error) {
	s := &Sim{m: m, vals: make(map[string]uint64), pending: make(map[string]uint64)}
	byName := make(map[string]int, len(m.Wires))
	for i, w := range m.Wires {
		if _, dup := byName[w.Name]; dup {
			return nil, fmt.Errorf("vsim: wire %q driven twice", w.Name)
		}
		byName[w.Name] = i
	}
	// DFS topological order over wire-to-wire dependencies.
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]int, len(m.Wires))
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case visiting:
			return fmt.Errorf("vsim: combinational cycle through %q", m.Wires[i].Name)
		case done:
			return nil
		}
		state[i] = visiting
		for _, dep := range exprRefs(m.Wires[i].Expr, nil) {
			if j, ok := byName[dep]; ok {
				if err := visit(j); err != nil {
					return err
				}
			}
		}
		state[i] = done
		s.order = append(s.order, i)
		return nil
	}
	// Visit in a deterministic order.
	idxs := make([]int, len(m.Wires))
	for i := range idxs {
		idxs[i] = i
	}
	sort.Slice(idxs, func(a, b int) bool { return m.Wires[idxs[a]].Name < m.Wires[idxs[b]].Name })
	for _, i := range idxs {
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	s.recompute()
	return s, nil
}

// Set drives an input port and settles combinational logic.
func (s *Sim) Set(name string, v uint64) error {
	if !s.m.isInput[name] {
		return fmt.Errorf("vsim: %q is not an input port", name)
	}
	s.vals[name] = maskTo(v, s.m.widths[name])
	s.recompute()
	return nil
}

// Get returns the current value of any signal (port, reg or wire).
func (s *Sim) Get(name string) (uint64, error) {
	if _, ok := s.m.widths[name]; !ok {
		return 0, fmt.Errorf("vsim: unknown signal %q", name)
	}
	return s.vals[name], nil
}

// Step applies one positive edge of the named clock: every always block
// sensitive to it evaluates against the pre-edge state, updates commit
// together, then wires settle.
func (s *Sim) Step(clock string) error {
	if _, ok := s.m.widths[clock]; !ok {
		return fmt.Errorf("vsim: unknown clock %q", clock)
	}
	clear(s.pending)
	for _, a := range s.m.Always {
		if a.Clock != clock {
			continue
		}
		if err := s.exec(a.Body); err != nil {
			return err
		}
	}
	for name, v := range s.pending {
		s.vals[name] = maskTo(v, s.m.widths[name])
	}
	s.recompute()
	return nil
}

// exec runs statements, accumulating non-blocking updates. Conditions
// read committed (pre-edge) values; an earlier pending write to the same
// target in this edge is overwritten, matching event semantics.
func (s *Sim) exec(stmts []Stmt) error {
	for _, st := range stmts {
		switch st := st.(type) {
		case NonBlocking:
			v, err := s.eval(st.Expr)
			if err != nil {
				return err
			}
			s.pending[st.Target] = v
		case If:
			c, err := s.eval(st.Cond)
			if err != nil {
				return err
			}
			if c != 0 {
				if err := s.exec(st.Then); err != nil {
					return err
				}
			} else if err := s.exec(st.Else); err != nil {
				return err
			}
		default:
			return fmt.Errorf("vsim: unknown statement %T", st)
		}
	}
	return nil
}

// recompute settles every combinational wire in dependency order.
func (s *Sim) recompute() {
	for _, i := range s.order {
		w := s.m.Wires[i]
		v, err := s.eval(w.Expr)
		if err != nil {
			// resolve() validated references; evaluation cannot fail.
			panic(fmt.Sprintf("vsim: internal: %v", err))
		}
		s.vals[w.Name] = maskTo(v, w.Width)
	}
}

// eval computes an expression against committed values. Arithmetic is
// performed in 64 bits; stored signals are invariantly masked to their
// declared widths, and assignment masks the result, which reproduces the
// unsigned modulo semantics of the generated subset.
func (s *Sim) eval(e Expr) (uint64, error) {
	switch e := e.(type) {
	case Num:
		return e.Val, nil
	case Ref:
		return s.vals[e.Name], nil
	case Select:
		v, err := s.eval(e.X)
		if err != nil {
			return 0, err
		}
		return maskTo(v>>uint(e.Lo), e.Hi-e.Lo+1), nil
	case Unary:
		v, err := s.eval(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		case "~":
			return ^v, nil // masked at assignment
		case "-":
			return -v, nil
		}
		return 0, fmt.Errorf("vsim: unknown unary %q", e.Op)
	case Binary:
		x, err := s.eval(e.X)
		if err != nil {
			return 0, err
		}
		y, err := s.eval(e.Y)
		if err != nil {
			return 0, err
		}
		return evalBinary(e.Op, x, y)
	case Ternary:
		c, err := s.eval(e.Cond)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return s.eval(e.Then)
		}
		return s.eval(e.Else)
	case Concat:
		var v uint64
		for _, part := range e.Parts {
			pv, err := s.eval(part)
			if err != nil {
				return 0, err
			}
			w := s.exprWidth(part)
			v = v<<uint(w) | maskTo(pv, w)
		}
		return v, nil
	default:
		return 0, fmt.Errorf("vsim: unknown expression %T", e)
	}
}

func evalBinary(op string, x, y uint64) (uint64, error) {
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case "+":
		return x + y, nil
	case "-":
		return x - y, nil
	case "*":
		return x * y, nil
	case "/":
		if y == 0 {
			return 0, fmt.Errorf("vsim: division by zero")
		}
		return x / y, nil
	case "%":
		if y == 0 {
			return 0, fmt.Errorf("vsim: modulo by zero")
		}
		return x % y, nil
	case "==":
		return b2u(x == y), nil
	case "!=":
		return b2u(x != y), nil
	case "<":
		return b2u(x < y), nil
	case ">":
		return b2u(x > y), nil
	case ">=":
		return b2u(x >= y), nil
	case "&&":
		return b2u(x != 0 && y != 0), nil
	case "||":
		return b2u(x != 0 || y != 0), nil
	case "&":
		return x & y, nil
	case "|":
		return x | y, nil
	case "^":
		return x ^ y, nil
	case "<<":
		if y >= 64 {
			return 0, nil
		}
		return x << y, nil
	case ">>":
		if y >= 64 {
			return 0, nil
		}
		return x >> y, nil
	}
	return 0, fmt.Errorf("vsim: unknown binary operator %q", op)
}

// exprWidth is the self-determined width of an expression, needed for
// concatenation packing. Signals use declared widths; sized literals
// their own; comparisons and logical operators are 1 bit.
func (s *Sim) exprWidth(e Expr) int {
	switch e := e.(type) {
	case Num:
		if e.Width > 0 {
			return e.Width
		}
		return 32 // Verilog's unsized-literal default
	case Ref:
		return s.m.widths[e.Name]
	case Select:
		return e.Hi - e.Lo + 1
	case Unary:
		if e.Op == "!" {
			return 1
		}
		return s.exprWidth(e.X)
	case Binary:
		switch e.Op {
		case "==", "!=", "<", ">", ">=", "&&", "||":
			return 1
		}
		if a, b := s.exprWidth(e.X), s.exprWidth(e.Y); a > b {
			return a
		} else {
			return b
		}
	case Ternary:
		if a, b := s.exprWidth(e.Then), s.exprWidth(e.Else); a > b {
			return a
		} else {
			return b
		}
	case Concat:
		w := 0
		for _, p := range e.Parts {
			w += s.exprWidth(p)
		}
		return w
	}
	return 0
}

// exprRefs appends the names referenced by e.
func exprRefs(e Expr, out []string) []string {
	switch e := e.(type) {
	case Ref:
		out = append(out, e.Name)
	case Select:
		out = exprRefs(e.X, out)
	case Unary:
		out = exprRefs(e.X, out)
	case Binary:
		out = exprRefs(e.X, out)
		out = exprRefs(e.Y, out)
	case Ternary:
		out = exprRefs(e.Cond, out)
		out = exprRefs(e.Then, out)
		out = exprRefs(e.Else, out)
	case Concat:
		for _, p := range e.Parts {
			out = exprRefs(p, out)
		}
	}
	return out
}

func maskTo(v uint64, w int) uint64 {
	if w >= 64 || w <= 0 {
		return v
	}
	return v & (1<<uint(w) - 1)
}
