// Package portfolio holds the method-agnostic pieces of the portfolio
// solver: deterministic winner selection among raced outcomes, entrant
// list normalization, and the concurrent win-count scoreboard surfaced
// on /metrics. The racing itself happens in the root package through
// the Service's bounded batch runner (every entrant is a registered
// method solved under one ctx); the experiment harness reuses Pick to
// score a "portfolio" column without re-running any solver.
package portfolio

import (
	"fmt"
	"sync"
)

// Outcome is one raced entrant's result: its registry name, the area of
// its solution, and the error that ended it (nil for a feasible
// solution). An Outcome whose entrant never completed (deadline hit
// first) carries that cancellation error.
type Outcome struct {
	Name string
	Area int64
	Err  error
}

// Pick returns the index of the winning outcome: the least area among
// error-free entrants, ties broken by registry name so the winner is
// deterministic regardless of completion order. It returns -1 when no
// entrant produced a solution.
func Pick(outs []Outcome) int {
	win := -1
	for i, o := range outs {
		if o.Err != nil {
			continue
		}
		if win < 0 || o.Area < outs[win].Area ||
			(o.Area == outs[win].Area && o.Name < outs[win].Name) {
			win = i
		}
	}
	return win
}

// Normalize validates an entrant list: empty falls back to defaults,
// duplicates collapse (first occurrence wins, order preserved), and the
// portfolio's own registry name is rejected — a portfolio racing itself
// would recurse without bound.
func Normalize(names, defaults []string, self string) ([]string, error) {
	if len(names) == 0 {
		names = defaults
	}
	seen := make(map[string]bool, len(names))
	out := make([]string, 0, len(names))
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("portfolio: empty entrant name")
		}
		if n == self {
			return nil, fmt.Errorf("portfolio: entrant %q would race the portfolio itself", n)
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("portfolio: no entrants")
	}
	return out, nil
}

// Scoreboard counts race wins per method. The zero value is ready to
// use; it is safe for concurrent use.
type Scoreboard struct {
	mu   sync.Mutex
	wins map[string]uint64
}

// Win records one win for the named method.
func (s *Scoreboard) Win(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wins == nil {
		s.wins = make(map[string]uint64)
	}
	s.wins[name]++
}

// Snapshot returns a copy of the win counts.
func (s *Scoreboard) Snapshot() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.wins))
	for k, v := range s.wins {
		out[k] = v
	}
	return out
}
