package portfolio

import (
	"errors"
	"sync"
	"testing"
)

func TestPickLeastAreaFeasible(t *testing.T) {
	boom := errors.New("boom")
	outs := []Outcome{
		{Name: "a", Area: 50},
		{Name: "b", Area: 30},
		{Name: "c", Err: boom},
		{Name: "d", Area: 40},
	}
	if got := Pick(outs); got != 1 {
		t.Fatalf("Pick = %d, want 1", got)
	}
}

func TestPickDeterministicTieBreak(t *testing.T) {
	// Equal areas: the lexicographically smaller name wins no matter the
	// completion (slice) order.
	if got := Pick([]Outcome{{Name: "zeta", Area: 10}, {Name: "alpha", Area: 10}}); got != 1 {
		t.Fatalf("Pick = %d, want 1 (alpha)", got)
	}
	if got := Pick([]Outcome{{Name: "alpha", Area: 10}, {Name: "zeta", Area: 10}}); got != 0 {
		t.Fatalf("Pick = %d, want 0 (alpha)", got)
	}
}

func TestPickNoWinner(t *testing.T) {
	if got := Pick(nil); got != -1 {
		t.Fatalf("Pick(nil) = %d", got)
	}
	if got := Pick([]Outcome{{Name: "a", Err: errors.New("x")}}); got != -1 {
		t.Fatalf("Pick = %d, want -1", got)
	}
}

func TestNormalize(t *testing.T) {
	defaults := []string{"dpalloc", "twostage"}
	got, err := Normalize(nil, defaults, "portfolio")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "dpalloc" || got[1] != "twostage" {
		t.Fatalf("defaults not applied: %v", got)
	}
	got, err = Normalize([]string{"a", "b", "a", "c", "b"}, defaults, "portfolio")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("dedup broken: %v", got)
	}
	if _, err := Normalize([]string{"portfolio"}, defaults, "portfolio"); err == nil {
		t.Fatal("self-recursion accepted")
	}
	if _, err := Normalize([]string{""}, defaults, "portfolio"); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := Normalize(nil, nil, "portfolio"); err == nil {
		t.Fatal("empty entrant list accepted")
	}
}

func TestScoreboardConcurrent(t *testing.T) {
	var sb Scoreboard
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sb.Win("dpalloc")
			}
			sb.Win("anneal")
		}()
	}
	wg.Wait()
	snap := sb.Snapshot()
	if snap["dpalloc"] != 800 || snap["anneal"] != 8 {
		t.Fatalf("snapshot %v", snap)
	}
}
