// Package bind implements the paper's §2.3: combined resource binding and
// wordlength selection on a scheduled wordlength compatibility graph.
//
// The problem is to partition the operations into cliques of the
// transitively oriented compatibility subgraph G'(O, C) — sets of
// operations whose reserved execution intervals are pairwise disjoint —
// such that each clique has a resource kind compatible with all members
// (Eqn. 4), minimising the summed kind areas (Eqn. 5). This is a special
// case of weighted unate covering (Eqn. 6); the number of cliques is
// exponential, so following the paper we extend Chvátal's greedy
// set-covering heuristic to an implicit, polynomial form: at each step a
// maximum clique of uncovered operations is found per kind (linear-time
// on the interval order), the kind maximising |clique|/cost is selected,
// and — compensating the greed — each newly selected clique is grown to
// swallow previously selected cliques where Eqn. 4 permits.
package bind

import (
	"fmt"
	"slices"

	"repro/internal/dfg"
	"repro/internal/wcg"
)

// Clique is one selected resource instance: the set of operations bound
// to it and the kind (index into the compatibility graph's kind set)
// chosen for it.
type Clique struct {
	Ops  []dfg.OpID
	Kind int
}

// Binding is a complete resource binding and wordlength selection.
type Binding struct {
	Cliques  []Clique
	CliqueOf []int // per operation: index into Cliques
}

// Area returns the implementation area of the binding: the sum of the
// areas of the bound kinds (the paper's Eqn. 5).
func (b *Binding) Area(g *wcg.Graph) int64 {
	var a int64
	for _, k := range b.Cliques {
		a += g.Lib.Area(g.Kinds[k.Kind])
	}
	return a
}

// KindOf returns the kind index the operation is bound to.
func (b *Binding) KindOf(o dfg.OpID) int { return b.Cliques[b.CliqueOf[o]].Kind }

// BoundLatency returns ℓ(o): the latency of the resource the operation is
// bound to.
func (b *Binding) BoundLatency(g *wcg.Graph, o dfg.OpID) int {
	return g.KindLatency(b.KindOf(o))
}

// Options tunes BindSelect for the ablation benches.
type Options struct {
	// DisableGrowth turns off the clique-growth compensation step,
	// leaving pure Chvátal greed.
	DisableGrowth bool
	// DisableShrink keeps each clique on the kind used when it was
	// selected instead of re-selecting the cheapest kind satisfying
	// Eqn. 4 afterwards.
	DisableShrink bool
}

// Stats counts the work BindSelect performed; surfaced through the
// public API's solver-effort fields.
type Stats struct {
	// Merges counts clique-growth swallows: previously selected cliques
	// absorbed into a newer one, each retiring a resource instance.
	Merges int
	// Evals counts maximum-clique (MaxChain) evaluations.
	Evals int
}

// Select runs Algorithm BindSelect on a scheduled compatibility graph.
// start gives the scheduled start step per operation; reserved intervals
// are [start[o], start[o]+L_o) with L_o the current latency upper bound,
// so the derived binding can never violate the schedule.
func Select(g *wcg.Graph, start []int) (*Binding, error) {
	b, _, err := SelectStats(g, start, Options{})
	return b, err
}

// SelectOpt is Select with explicit options.
func SelectOpt(g *wcg.Graph, start []int, opt Options) (*Binding, error) {
	b, _, err := SelectStats(g, start, opt)
	return b, err
}

// kindEntry is a lazily maintained candidate in the greedy selection: the
// last known maximum-clique size for a kind. Sizes only shrink as
// operations get covered, so a cached size is an upper bound and the
// classic lazy-greedy argument applies: when the popped top validates at
// its cached size it beats every other entry's true value, and the
// selection sequence is identical to rescanning all kinds each round.
type kindEntry struct {
	ki   int
	size int
	cost int64
}

// betterEntry is the strict total order of the greedy selection: higher
// |clique|/cost ratio, then lower cost, then lower kind index — exactly
// the winner a first-strictly-better scan in kind order produces.
func betterEntry(a, b kindEntry) bool {
	if betterRatio(a.size, a.cost, b.size, b.cost) {
		return true
	}
	if betterRatio(b.size, b.cost, a.size, a.cost) {
		return false
	}
	return a.ki < b.ki
}

// SelectStats is SelectOpt, additionally reporting effort counters.
func SelectStats(g *wcg.Graph, start []int, opt Options) (*Binding, Stats, error) {
	var st Stats
	n := g.D.N()
	if len(start) != n {
		return nil, st, fmt.Errorf("bind: %d start steps for %d operations", len(start), n)
	}
	iv := make([]wcg.Interval, n)
	for o := 0; o < n; o++ {
		id := dfg.OpID(o)
		iv[o] = wcg.Interval{Op: id, Start: start[o], End: start[o] + g.UpperLatency(id)}
	}

	covered := make([]bool, n)
	remaining := n

	// The reserved intervals are fixed for the whole selection, so the
	// operations are sorted by interval order (end, start, ID — the
	// MaxChain order) exactly once globally, then distributed to the
	// kinds through the H-edge lists: one O(n + makespan) counting sort
	// plus one append per H edge yields every kind's compatible
	// operations in interval order, and every later chain extraction is
	// a linear greedy walk with no sorting.
	perm := sortByInterval(iv)
	buf := make([]wcg.Interval, g.NumHEdges())
	sortedOps := make([][]wcg.Interval, len(g.Kinds))
	off := 0
	for ki := range sortedOps {
		c := g.CompatOpCount(ki)
		sortedOps[ki] = buf[off : off : off+c]
		off += c
	}
	// The exact initial maximum-chain size of every kind falls out of the
	// same pass: walking the operations in interval order, the greedy
	// earliest-finish rule reduces to one comparison per H edge, so
	// seeding costs nothing beyond the distribution itself. The interval
	// itself is stored in the kind's list (not just the ID): the chain
	// walks below then run over contiguous memory with no random loads.
	endK := make([]int, len(g.Kinds))
	sizeK := make([]int, len(g.Kinds))
	for _, o := range perm {
		v := iv[o]
		for _, ki := range g.CompatKinds(o) {
			sortedOps[ki] = append(sortedOps[ki], v)
			if sizeK[ki] == 0 || endK[ki] <= v.Start {
				sizeK[ki]++
				endK[ki] = v.End
			}
		}
	}

	// chainFor recomputes the maximum clique of uncovered operations
	// compatible with kind ki: greedy earliest-finish selection over the
	// pre-sorted intervals, optimal on interval orders. The returned
	// slice aliases scratch and must be consumed before the next call.
	// Coverage is monotone, so covered operations are compacted out of
	// the kind's list as a side effect: repeated evaluations of the same
	// kind walk only its still-uncovered operations.
	chain := make([]wcg.Interval, 0, n)
	chainFor := func(ki int) []wcg.Interval {
		chain = chain[:0]
		ops := sortedOps[ki]
		kept := ops[:0]
		end := 0
		for _, v := range ops {
			if covered[v.Op] {
				continue
			}
			kept = append(kept, v)
			if len(chain) == 0 || end <= v.Start {
				chain = append(chain, v)
				end = v.End
			}
		}
		sortedOps[ki] = kept
		if len(chain) == 0 {
			return nil
		}
		st.Evals++
		return chain
	}

	var heap entryHeap
	for ki, c := range sizeK {
		if c > 0 {
			heap.push(kindEntry{ki: ki, size: c, cost: kindArea(g, ki)})
			st.Evals++
		}
	}

	var cliques []liveClique
	var mergeScratch []wcg.Interval
	for remaining > 0 {
		if len(heap) == 0 {
			return nil, st, fmt.Errorf("bind: %d operations have no compatible kind", remaining)
		}
		e := heap.pop()
		chain := chainFor(e.ki)
		if len(chain) == 0 {
			continue
		}
		if len(chain) < e.size {
			heap.push(kindEntry{ki: e.ki, size: len(chain), cost: e.cost})
			continue
		}
		k := liveClique{kind: e.ki, ivs: slices.Clone(chain)}
		for _, c := range chain {
			covered[c.Op] = true
			remaining--
		}
		if !opt.DisableGrowth {
			cliques = grow(g, cliques, &k, &mergeScratch, &st)
		}
		cliques = append(cliques, k)
		// The kind may still have uncovered (overlapping) operations and
		// can win again in a later round. Its pre-selection chain size
		// remains an upper bound (coverage only shrinks chains), so
		// repush without re-evaluating; a dead entry validates to an
		// empty chain and drops out when popped.
		heap.push(kindEntry{ki: e.ki, size: e.size, cost: e.cost})
	}

	out := make([]Clique, len(cliques))
	for ci, lc := range cliques {
		ops := make([]dfg.OpID, len(lc.ivs))
		for i, v := range lc.ivs {
			ops[i] = v.Op
		}
		slices.Sort(ops)
		out[ci] = Clique{Kind: lc.kind, Ops: ops}
	}
	if !opt.DisableShrink {
		for i := range out {
			out[i].Kind = cheapestCommonKind(g, out[i].Ops)
		}
	}

	b := &Binding{Cliques: out, CliqueOf: make([]int, n)}
	for ci, k := range out {
		for _, o := range k.Ops {
			b.CliqueOf[o] = ci
		}
	}
	return b, st, nil
}

// liveClique is a clique under construction: the kind paid for and the
// member intervals kept sorted in cmpInterval order, so growth checks are
// linear merges.
type liveClique struct {
	kind int
	ivs  []wcg.Interval
}

// entryHeap is a binary min-top heap under betterEntry (top = winner).
type entryHeap []kindEntry

func (h *entryHeap) push(v kindEntry) {
	*h = append(*h, v)
	a := *h
	for i := len(a) - 1; i > 0; {
		p := (i - 1) / 2
		if betterEntry(a[p], a[i]) {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *entryHeap) pop() kindEntry {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	*h = a[:last]
	a = a[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a) && betterEntry(a[l], a[m]) {
			m = l
		}
		if r < len(a) && betterEntry(a[r], a[m]) {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// betterRatio reports whether size1/cost1 > size2/cost2, breaking ties by
// lower cost then (implicitly, by scan order) lower kind index. Exact
// integer cross-multiplication; no floats.
func betterRatio(size1 int, cost1 int64, size2 int, cost2 int64) bool {
	l := int64(size1) * cost2
	r := int64(size2) * cost1
	if l != r {
		return l > r
	}
	return cost1 < cost2
}

func kindArea(g *wcg.Graph, ki int) int64 { return g.Lib.Area(g.Kinds[ki]) }

// cmpInterval is the MaxChain sort order: end, then start, then op ID.
func cmpInterval(a, b wcg.Interval) int {
	if a.End != b.End {
		return a.End - b.End
	}
	if a.Start != b.Start {
		return a.Start - b.Start
	}
	return int(a.Op) - int(b.Op)
}

// sortByInterval returns the operation IDs ordered by cmpInterval over
// their intervals: a two-pass LSD counting sort (stable, by start then by
// end, seeded with ID-ascending order so ties resolve by ID). Start and
// end values are bounded by the schedule makespan, so this is O(n +
// makespan) with no comparator calls.
func sortByInterval(iv []wcg.Interval) []dfg.OpID {
	n := len(iv)
	maxKey := 0
	for _, v := range iv {
		if v.End > maxKey {
			maxKey = v.End
		}
	}
	cnt := make([]int, maxKey+2)
	perm := make([]dfg.OpID, n)
	tmp := make([]dfg.OpID, n)
	for i := range perm {
		perm[i] = dfg.OpID(i)
	}
	for _, v := range iv {
		cnt[v.Start+1]++
	}
	for k := 1; k < len(cnt); k++ {
		cnt[k] += cnt[k-1]
	}
	for _, o := range perm {
		tmp[cnt[iv[o].Start]] = o
		cnt[iv[o].Start]++
	}
	for k := range cnt {
		cnt[k] = 0
	}
	for _, v := range iv {
		cnt[v.End+1]++
	}
	for k := 1; k < len(cnt); k++ {
		cnt[k] += cnt[k-1]
	}
	for _, o := range tmp {
		perm[cnt[iv[o].End]] = o
		cnt[iv[o].End]++
	}
	return perm
}

// grow attempts to enlarge the newly selected clique k to swallow
// previously selected cliques: an earlier clique is superfluous (and is
// deleted) when its operations, together with k's, remain pairwise
// time-compatible and all fit k's already-paid-for kind — Eqn. 4 holds
// for the union on k.Kind, so the earlier resource rides along for free
// and total area strictly decreases. Returns the surviving earlier
// cliques.
func grow(g *wcg.Graph, cliques []liveClique, k *liveClique, scratch *[]wcg.Interval, st *Stats) []liveClique {
	kept := cliques[:0]
	for _, old := range cliques {
		// k's own members are compatible with k.kind by construction
		// (selection and earlier swallows both check), so only the old
		// clique's members need the kind test — an O(1) bit probe each —
		// before paying for the disjointness check, which is a linear
		// merge of the two sorted interval chains.
		if !allCompatible(g, old.ivs, k.kind) {
			kept = append(kept, old)
			continue
		}
		if merged, ok := mergeChains(k.ivs, old.ivs, (*scratch)[:0]); ok {
			*scratch = k.ivs // recycle the replaced chain as scratch
			k.ivs = merged
			st.Merges++
			continue
		}
		kept = append(kept, old)
	}
	return kept
}

// allCompatible reports whether every member operation has an H edge to
// kind ki.
func allCompatible(g *wcg.Graph, ivs []wcg.Interval, ki int) bool {
	for _, v := range ivs {
		if !g.Compatible(v.Op, ki) {
			return false
		}
	}
	return true
}

// mergeChains merges two interval chains sorted in cmpInterval order into
// dst and reports whether the union is still pairwise disjoint (each
// interval ending no later than the next one starts — on an end-sorted
// sequence the consecutive check is exhaustive). On failure the merge
// aborts early and dst's contents are unspecified.
func mergeChains(a, b, dst []wcg.Interval) ([]wcg.Interval, bool) {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v wcg.Interval
		if j >= len(b) || (i < len(a) && cmpInterval(a[i], b[j]) < 0) {
			v = a[i]
			i++
		} else {
			v = b[j]
			j++
		}
		if len(dst) > 0 && !dst[len(dst)-1].Before(v) {
			return nil, false
		}
		dst = append(dst, v)
	}
	return dst, true
}

// cheapestCommonKind returns the minimum-area kind compatible with every
// operation; the caller guarantees one exists.
func cheapestCommonKind(g *wcg.Graph, ops []dfg.OpID) int {
	ki := cheapestCommonKindOK(g, ops)
	if ki < 0 {
		panic("bind: clique lost its covering kind")
	}
	return ki
}

// cheapestCommonKindOK returns -1 when no kind covers all operations.
// Kinds are sorted by class then area ascending at extraction, so the
// first hit is the cheapest.
func cheapestCommonKindOK(g *wcg.Graph, ops []dfg.OpID) int {
	for ki := range g.Kinds {
		all := true
		for _, o := range ops {
			if !g.Compatible(o, ki) {
				all = false
				break
			}
		}
		if all {
			return ki
		}
	}
	return -1
}
