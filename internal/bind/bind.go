// Package bind implements the paper's §2.3: combined resource binding and
// wordlength selection on a scheduled wordlength compatibility graph.
//
// The problem is to partition the operations into cliques of the
// transitively oriented compatibility subgraph G'(O, C) — sets of
// operations whose reserved execution intervals are pairwise disjoint —
// such that each clique has a resource kind compatible with all members
// (Eqn. 4), minimising the summed kind areas (Eqn. 5). This is a special
// case of weighted unate covering (Eqn. 6); the number of cliques is
// exponential, so following the paper we extend Chvátal's greedy
// set-covering heuristic to an implicit, polynomial form: at each step a
// maximum clique of uncovered operations is found per kind (linear-time
// on the interval order), the kind maximising |clique|/cost is selected,
// and — compensating the greed — each newly selected clique is grown to
// swallow previously selected cliques where Eqn. 4 permits.
package bind

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
	"repro/internal/wcg"
)

// Clique is one selected resource instance: the set of operations bound
// to it and the kind (index into the compatibility graph's kind set)
// chosen for it.
type Clique struct {
	Ops  []dfg.OpID
	Kind int
}

// Binding is a complete resource binding and wordlength selection.
type Binding struct {
	Cliques  []Clique
	CliqueOf []int // per operation: index into Cliques
}

// Area returns the implementation area of the binding: the sum of the
// areas of the bound kinds (the paper's Eqn. 5).
func (b *Binding) Area(g *wcg.Graph) int64 {
	var a int64
	for _, k := range b.Cliques {
		a += g.Lib.Area(g.Kinds[k.Kind])
	}
	return a
}

// KindOf returns the kind index the operation is bound to.
func (b *Binding) KindOf(o dfg.OpID) int { return b.Cliques[b.CliqueOf[o]].Kind }

// BoundLatency returns ℓ(o): the latency of the resource the operation is
// bound to.
func (b *Binding) BoundLatency(g *wcg.Graph, o dfg.OpID) int {
	return g.KindLatency(b.KindOf(o))
}

// Options tunes BindSelect for the ablation benches.
type Options struct {
	// DisableGrowth turns off the clique-growth compensation step,
	// leaving pure Chvátal greed.
	DisableGrowth bool
	// DisableShrink keeps each clique on the kind used when it was
	// selected instead of re-selecting the cheapest kind satisfying
	// Eqn. 4 afterwards.
	DisableShrink bool
}

// Select runs Algorithm BindSelect on a scheduled compatibility graph.
// start gives the scheduled start step per operation; reserved intervals
// are [start[o], start[o]+L_o) with L_o the current latency upper bound,
// so the derived binding can never violate the schedule.
func Select(g *wcg.Graph, start []int) (*Binding, error) {
	return SelectOpt(g, start, Options{})
}

// SelectOpt is Select with explicit options.
func SelectOpt(g *wcg.Graph, start []int, opt Options) (*Binding, error) {
	n := g.D.N()
	if len(start) != n {
		return nil, fmt.Errorf("bind: %d start steps for %d operations", len(start), n)
	}
	iv := make([]wcg.Interval, n)
	for o := 0; o < n; o++ {
		id := dfg.OpID(o)
		iv[o] = wcg.Interval{Op: id, Start: start[o], End: start[o] + g.UpperLatency(id)}
	}

	covered := make([]bool, n)
	remaining := n
	var cliques []Clique
	for remaining > 0 {
		// Find, per kind, a maximum clique of uncovered compatible
		// operations; pick the kind maximising |clique|/cost.
		bestKind, bestSize := -1, 0
		var bestChain []wcg.Interval
		for ki := range g.Kinds {
			var cand []wcg.Interval
			for _, o := range g.CompatOps(ki) {
				if !covered[o] {
					cand = append(cand, iv[o])
				}
			}
			if len(cand) == 0 {
				continue
			}
			chain := wcg.MaxChain(cand)
			if bestKind < 0 || betterRatio(len(chain), kindArea(g, ki), bestSize, kindArea(g, bestKind)) {
				bestKind, bestSize, bestChain = ki, len(chain), chain
			}
		}
		if bestKind < 0 {
			return nil, fmt.Errorf("bind: %d operations have no compatible kind", remaining)
		}
		k := Clique{Kind: bestKind}
		for _, c := range bestChain {
			k.Ops = append(k.Ops, c.Op)
			covered[c.Op] = true
			remaining--
		}
		if !opt.DisableGrowth {
			cliques = grow(g, iv, cliques, &k)
		}
		cliques = append(cliques, k)
	}

	if !opt.DisableShrink {
		for i := range cliques {
			cliques[i].Kind = cheapestCommonKind(g, cliques[i].Ops)
		}
	}

	b := &Binding{Cliques: cliques, CliqueOf: make([]int, n)}
	for ci, k := range cliques {
		sort.Slice(k.Ops, func(i, j int) bool { return k.Ops[i] < k.Ops[j] })
		for _, o := range k.Ops {
			b.CliqueOf[o] = ci
		}
	}
	return b, nil
}

// betterRatio reports whether size1/cost1 > size2/cost2, breaking ties by
// lower cost then (implicitly, by scan order) lower kind index. Exact
// integer cross-multiplication; no floats.
func betterRatio(size1 int, cost1 int64, size2 int, cost2 int64) bool {
	l := int64(size1) * cost2
	r := int64(size2) * cost1
	if l != r {
		return l > r
	}
	return cost1 < cost2
}

func kindArea(g *wcg.Graph, ki int) int64 { return g.Lib.Area(g.Kinds[ki]) }

// grow attempts to enlarge the newly selected clique k to swallow
// previously selected cliques: an earlier clique is superfluous (and is
// deleted) when its operations, together with k's, remain pairwise
// time-compatible and all fit k's already-paid-for kind — Eqn. 4 holds
// for the union on k.Kind, so the earlier resource rides along for free
// and total area strictly decreases. Returns the surviving earlier
// cliques.
func grow(g *wcg.Graph, iv []wcg.Interval, cliques []Clique, k *Clique) []Clique {
	kept := cliques[:0]
	for _, old := range cliques {
		merged := append(append([]dfg.OpID(nil), k.Ops...), old.Ops...)
		if chainOnKind(g, iv, merged, k.Kind) {
			k.Ops = merged
			continue
		}
		kept = append(kept, old)
	}
	return kept
}

// chainOnKind reports whether the operations are pairwise time-compatible
// and all compatible with the given kind.
func chainOnKind(g *wcg.Graph, iv []wcg.Interval, ops []dfg.OpID, ki int) bool {
	for _, o := range ops {
		if !g.Compatible(o, ki) {
			return false
		}
	}
	ivs := make([]wcg.Interval, len(ops))
	for i, o := range ops {
		ivs[i] = iv[o]
	}
	return wcg.IsChain(ivs)
}

// cheapestCommonKind returns the minimum-area kind compatible with every
// operation; the caller guarantees one exists.
func cheapestCommonKind(g *wcg.Graph, ops []dfg.OpID) int {
	ki := cheapestCommonKindOK(g, ops)
	if ki < 0 {
		panic("bind: clique lost its covering kind")
	}
	return ki
}

// cheapestCommonKindOK returns -1 when no kind covers all operations.
// Kinds are sorted by class then area ascending at extraction, so the
// first hit is the cheapest.
func cheapestCommonKindOK(g *wcg.Graph, ops []dfg.OpID) int {
	for ki := range g.Kinds {
		all := true
		for _, o := range ops {
			if !g.Compatible(o, ki) {
				all = false
				break
			}
		}
		if all {
			return ki
		}
	}
	return -1
}
