package bind

import (
	"math/rand"
	"testing"

	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/wcg"
)

func build(t *testing.T, d *dfg.Graph) *wcg.Graph {
	t.Helper()
	g, err := wcg.Build(d, model.Default())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func asap(t *testing.T, g *wcg.Graph) []int {
	t.Helper()
	r, err := sched.List(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r.Start
}

// checkBinding verifies the structural legality of a binding: every op in
// exactly one clique, Eqn. 4 holds per clique, and members are pairwise
// time-compatible under reserved intervals.
func checkBinding(t *testing.T, g *wcg.Graph, start []int, b *Binding) {
	t.Helper()
	seen := make([]int, g.D.N())
	for ci, k := range b.Cliques {
		if len(k.Ops) == 0 {
			t.Fatalf("empty clique %d", ci)
		}
		for _, o := range k.Ops {
			seen[o]++
			if b.CliqueOf[o] != ci {
				t.Fatalf("CliqueOf[%d] = %d, op listed in clique %d", o, b.CliqueOf[o], ci)
			}
			if !g.Compatible(o, k.Kind) {
				t.Fatalf("Eqn. 4 violated: op %d not compatible with kind %v", o, g.Kinds[k.Kind])
			}
		}
		ivs := make([]wcg.Interval, len(k.Ops))
		for i, o := range k.Ops {
			ivs[i] = wcg.Interval{Op: o, Start: start[o], End: start[o] + g.UpperLatency(o)}
		}
		if !wcg.IsChain(ivs) {
			t.Fatalf("clique %d has overlapping reserved intervals", ci)
		}
	}
	for o, c := range seen {
		if c != 1 {
			t.Fatalf("operation %d covered %d times", o, c)
		}
	}
}

func TestSelectChainShares(t *testing.T) {
	// Three sequential 8x8 multiplies must share a single multiplier.
	d := dfg.New()
	var prev dfg.OpID = -1
	for i := 0; i < 3; i++ {
		o := d.AddOp("", model.Mul, model.Sig(8, 8))
		if prev >= 0 {
			d.AddDep(prev, o)
		}
		prev = o
	}
	g := build(t, d)
	start := asap(t, g)
	b, err := Select(g, start)
	if err != nil {
		t.Fatal(err)
	}
	checkBinding(t, g, start, b)
	if len(b.Cliques) != 1 {
		t.Fatalf("want 1 clique, got %d", len(b.Cliques))
	}
	if b.Area(g) != 64 {
		t.Fatalf("area = %d, want 64", b.Area(g))
	}
}

func TestSelectParallelSplits(t *testing.T) {
	// Two independent multiplies overlap under ASAP: two resources.
	d := dfg.New()
	d.AddOp("", model.Mul, model.Sig(8, 8))
	d.AddOp("", model.Mul, model.Sig(8, 8))
	g := build(t, d)
	start := asap(t, g)
	b, err := Select(g, start)
	if err != nil {
		t.Fatal(err)
	}
	checkBinding(t, g, start, b)
	if len(b.Cliques) != 2 {
		t.Fatalf("want 2 cliques, got %d", len(b.Cliques))
	}
}

func TestSelectMixedWordlengthSharing(t *testing.T) {
	// A 20x18 multiply followed by an 8x8 multiply: both fit on the
	// 20x18 resource (the 8x8 runs slower there, but scheduling reserved
	// its upper bound), so one resource suffices and is cheaper than two
	// dedicated ones (360 < 360+64).
	d := dfg.New()
	a := d.AddOp("", model.Mul, model.Sig(20, 18))
	b0 := d.AddOp("", model.Mul, model.Sig(8, 8))
	d.AddDep(a, b0)
	g := build(t, d)
	start := asap(t, g)
	b, err := Select(g, start)
	if err != nil {
		t.Fatal(err)
	}
	checkBinding(t, g, start, b)
	if len(b.Cliques) != 1 {
		t.Fatalf("want shared resource, got %d cliques (area %d)", len(b.Cliques), b.Area(g))
	}
	if got := g.Kinds[b.Cliques[0].Kind].Sig; got != model.Sig(20, 18) {
		t.Fatalf("bound kind = %v, want 20x18", got)
	}
	// Bound latency of the small op is the big resource's latency.
	if b.BoundLatency(g, b0) != 5 {
		t.Fatalf("bound latency = %d, want 5", b.BoundLatency(g, b0))
	}
}

func TestShrinkSelectsCheapestKind(t *testing.T) {
	// One lonely 8x8 multiply in a graph that also extracted a 16x16
	// kind: after shrink its clique must sit on the 8x8 kind.
	d := dfg.New()
	small := d.AddOp("", model.Mul, model.Sig(8, 8))
	big := d.AddOp("", model.Mul, model.Sig(16, 16))
	g := build(t, d)
	start := asap(t, g)
	b, err := Select(g, start)
	if err != nil {
		t.Fatal(err)
	}
	checkBinding(t, g, start, b)
	if g.Kinds[b.KindOf(small)].Sig != model.Sig(8, 8) {
		t.Errorf("small op on kind %v", g.Kinds[b.KindOf(small)])
	}
	if g.Kinds[b.KindOf(big)].Sig != model.Sig(16, 16) {
		t.Errorf("big op on kind %v", g.Kinds[b.KindOf(big)])
	}
}

func TestGrowthMergesCliques(t *testing.T) {
	// Construct a case where greedy-without-growth leaves two cliques
	// that a later selection could absorb. Growth must produce no more
	// cliques than no-growth, and both must be legal.
	rnd := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		d := randomDAG(rnd, 2+rnd.Intn(14))
		g := build(t, d)
		start := asap(t, g)
		withG, err := SelectOpt(g, start, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkBinding(t, g, start, withG)
		noG, err := SelectOpt(g, start, Options{DisableGrowth: true})
		if err != nil {
			t.Fatal(err)
		}
		checkBinding(t, g, start, noG)
		if withG.Area(g) > noG.Area(g) {
			t.Fatalf("growth increased area: %d > %d", withG.Area(g), noG.Area(g))
		}
	}
}

func TestAreaNeverExceedsDedicated(t *testing.T) {
	// Binding with sharing must never cost more than one minimal kind
	// per operation (shrink guarantees each clique costs at most the
	// cheapest kind covering all members... which for singletons is the
	// minimal kind).
	rnd := rand.New(rand.NewSource(37))
	for trial := 0; trial < 100; trial++ {
		d := randomDAG(rnd, 1+rnd.Intn(16))
		g := build(t, d)
		start := asap(t, g)
		b, err := Select(g, start)
		if err != nil {
			t.Fatal(err)
		}
		checkBinding(t, g, start, b)
		var dedicated int64
		for _, o := range d.Ops() {
			dedicated += g.Lib.Area(o.Spec.MinKind())
		}
		if b.Area(g) > dedicated {
			t.Fatalf("bound area %d exceeds dedicated %d", b.Area(g), dedicated)
		}
	}
}

func TestSelectBadInput(t *testing.T) {
	d := dfg.New()
	d.AddOp("", model.Add, model.AddSig(8))
	g := build(t, d)
	if _, err := Select(g, []int{0, 1}); err == nil {
		t.Error("mismatched start slice accepted")
	}
}

func TestBetterRatio(t *testing.T) {
	// 3 ops at cost 6 (0.5/unit) beats 2 ops at cost 5 (0.4/unit).
	if !betterRatio(3, 6, 2, 5) {
		t.Error("ratio comparison broken")
	}
	if betterRatio(2, 5, 3, 6) {
		t.Error("ratio comparison asymmetric")
	}
	// Equal ratios: cheaper wins.
	if !betterRatio(1, 2, 2, 4) {
		t.Error("tie must prefer lower cost")
	}
	if betterRatio(2, 4, 1, 2) {
		t.Error("tie must prefer lower cost (reverse)")
	}
}

func randomDAG(rnd *rand.Rand, n int) *dfg.Graph {
	g := dfg.New()
	for i := 0; i < n; i++ {
		if rnd.Intn(2) == 0 {
			g.AddOp("", model.Add, model.AddSig(4+rnd.Intn(20)))
		} else {
			g.AddOp("", model.Mul, model.Sig(4+rnd.Intn(20), 4+rnd.Intn(20)))
		}
	}
	for i := 1; i < n; i++ {
		for k := 0; k < 2; k++ {
			if rnd.Intn(3) == 0 {
				g.AddDep(dfg.OpID(rnd.Intn(i)), dfg.OpID(i))
			}
		}
	}
	return g
}
