package regalloc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/tgff"
	"repro/internal/twostage"
)

// chainGraph builds a three-operation dependent chain mul -> add -> add
// with known widths, allocated on dedicated resources.
func chainGraph(t *testing.T) (*dfg.Graph, *model.Library, *datapath.Datapath) {
	t.Helper()
	lib := model.Default()
	g := dfg.New()
	m := g.AddOp("m", model.Mul, model.Sig(8, 8)) // lat 2, result 16 bits
	a := g.AddOp("a", model.Add, model.AddSig(12))
	b := g.AddOp("b", model.Add, model.AddSig(12))
	if err := g.AddDep(m, a); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	dp := &datapath.Datapath{
		Start:  []int{0, 2, 4},
		InstOf: []int{0, 1, 1},
		Instances: []datapath.Instance{
			{Kind: model.Kind{Class: model.Mul, Sig: model.Sig(8, 8)}, Ops: []dfg.OpID{m}},
			{Kind: model.Kind{Class: model.Add, Sig: model.AddSig(12)}, Ops: []dfg.OpID{a, b}},
		},
	}
	if err := dp.Verify(g, lib, 6); err != nil {
		t.Fatal(err)
	}
	return g, lib, dp
}

func TestLifetimesChain(t *testing.T) {
	g, lib, dp := chainGraph(t)
	ls, err := Lifetimes(g, lib, dp)
	if err != nil {
		t.Fatal(err)
	}
	// m: born at 2, consumed by a at start 2 -> minimum one-step life [2,3).
	// a: born at 4, consumed by b at start 4 -> [4,5).
	// b: sink born at 6, held to makespan 6 -> [6,7).
	want := map[dfg.OpID][2]int{0: {2, 3}, 1: {4, 5}, 2: {6, 7}}
	for _, l := range ls {
		w := want[l.Op]
		if l.Birth != w[0] || l.Death != w[1] {
			t.Errorf("op %d lifetime [%d,%d), want [%d,%d)", l.Op, l.Birth, l.Death, w[0], w[1])
		}
	}
	if ls[0].Width != 16 || ls[1].Width != 12 {
		t.Errorf("widths: %d, %d; want 16, 12", ls[0].Width, ls[1].Width)
	}
}

func TestBuildChainSharesRegisters(t *testing.T) {
	g, lib, dp := chainGraph(t)
	plan, err := Build(g, lib, dp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Check(g, lib, dp); err != nil {
		t.Fatal(err)
	}
	// All three lifetimes are pairwise disjoint, so one register suffices
	// and it is as wide as the widest value (16 bits).
	if len(plan.Registers) != 1 {
		t.Fatalf("%d registers, want 1: %+v", len(plan.Registers), plan.Registers)
	}
	if plan.Registers[0].Width != 16 {
		t.Fatalf("register width %d, want 16", plan.Registers[0].Width)
	}
	if plan.RegArea != 16 {
		t.Fatalf("RegArea %d, want 16", plan.RegArea)
	}
	// FU area: 8*8 multiplier + 12 adder = 76.
	if plan.FUArea != 76 {
		t.Fatalf("FUArea %d, want 76", plan.FUArea)
	}
	// The single register is written by both instances: one 2:1 mux on
	// 16 bits. The adder's port 0 sees the shared register both times
	// (one source); port 1: a reads it... a has one pred (m) on slot 0,
	// so slot 1 of both a and b are primary inputs -> two sources -> one
	// 2:1 mux on 12 bits. b's slot 0 reads register too (same source as
	// a's slot 0: the register) -> port 0 has one source, no mux.
	wantMux := int64(16 + 12)
	if plan.MuxArea != wantMux {
		t.Fatalf("MuxArea %d, want %d", plan.MuxArea, wantMux)
	}
	if plan.TotalArea() != plan.FUArea+plan.RegArea+plan.MuxArea {
		t.Fatal("TotalArea is not the sum of its parts")
	}
}

func TestParallelValuesNeedDistinctRegisters(t *testing.T) {
	lib := model.Default()
	g := dfg.New()
	x := g.AddOp("x", model.Add, model.AddSig(8))
	y := g.AddOp("y", model.Add, model.AddSig(8))
	z := g.AddOp("z", model.Add, model.AddSig(8))
	if err := g.AddDep(x, z); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(y, z); err != nil {
		t.Fatal(err)
	}
	// x and y run in parallel on two adders; both values live until z.
	dp := &datapath.Datapath{
		Start:  []int{0, 0, 2},
		InstOf: []int{0, 1, 0},
		Instances: []datapath.Instance{
			{Kind: model.Kind{Class: model.Add, Sig: model.AddSig(8)}, Ops: []dfg.OpID{x, z}},
			{Kind: model.Kind{Class: model.Add, Sig: model.AddSig(8)}, Ops: []dfg.OpID{y}},
		},
	}
	if err := dp.Verify(g, lib, 4); err != nil {
		t.Fatal(err)
	}
	plan, err := Build(g, lib, dp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Check(g, lib, dp); err != nil {
		t.Fatal(err)
	}
	if len(plan.Registers) != 2 {
		t.Fatalf("%d registers, want 2 (x and y live simultaneously)", len(plan.Registers))
	}
}

func TestCustomUnitCosts(t *testing.T) {
	g, lib, dp := chainGraph(t)
	base, err := Build(g, lib, dp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := Build(g, lib, dp, Options{RegBitArea: 3, MuxBitArea: 2})
	if err != nil {
		t.Fatal(err)
	}
	if scaled.RegArea != 3*base.RegArea {
		t.Errorf("RegArea %d, want %d", scaled.RegArea, 3*base.RegArea)
	}
	if scaled.MuxArea != 2*base.MuxArea {
		t.Errorf("MuxArea %d, want %d", scaled.MuxArea, 2*base.MuxArea)
	}
	if scaled.FUArea != base.FUArea {
		t.Errorf("FUArea changed: %d vs %d", scaled.FUArea, base.FUArea)
	}
}

func TestBuildRejectsIllegalDatapath(t *testing.T) {
	g, lib, dp := chainGraph(t)
	dp.Start[2] = 0 // violates the dependency a -> b
	if _, err := Build(g, lib, dp, Options{}); err == nil {
		t.Fatal("illegal datapath accepted")
	}
}

// TestLeftEdgeOptimalOnRandomDatapaths: the number of registers must
// equal the maximum number of simultaneously live values (left-edge is
// optimal for interval conflict graphs), and the plan invariants must
// hold, across random graphs and two allocation methods.
func TestLeftEdgeOptimalOnRandomDatapaths(t *testing.T) {
	lib := model.Default()
	for _, n := range []int{3, 6, 10, 16, 24} {
		graphs, err := tgff.Batch(n, 6, 4400, tgff.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for gi, g := range graphs {
			lmin, err := g.MinMakespan(lib)
			if err != nil {
				t.Fatal(err)
			}
			lambda := lmin + lmin/5
			dps := make(map[string]*datapath.Datapath)
			if dp, _, err := core.Allocate(g, lib, lambda, core.Options{}); err == nil {
				dps["heuristic"] = dp
			} else {
				t.Fatal(err)
			}
			if dp, _, err := twostage.Allocate(g, lib, lambda); err == nil {
				dps["twostage"] = dp
			} else {
				t.Fatal(err)
			}
			for name, dp := range dps {
				plan, err := Build(g, lib, dp, Options{})
				if err != nil {
					t.Fatalf("n=%d g=%d %s: %v", n, gi, name, err)
				}
				if err := plan.Check(g, lib, dp); err != nil {
					t.Fatalf("n=%d g=%d %s: %v", n, gi, name, err)
				}
				ls, err := Lifetimes(g, lib, dp)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := len(plan.Registers), MaxLive(ls); got != want {
					t.Fatalf("n=%d g=%d %s: %d registers, lower bound %d", n, gi, name, got, want)
				}
			}
		}
	}
}

// TestDeterminism: identical inputs must yield identical plans.
func TestDeterminism(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 15, Seed: 321})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	dp, _, err := core.Allocate(g, lib, lmin+2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(g, lib, dp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, lib, dp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalArea() != b.TotalArea() || len(a.Registers) != len(b.Registers) {
		t.Fatal("plans differ across identical runs")
	}
	for i := range a.RegOf {
		if a.RegOf[i] != b.RegOf[i] {
			t.Fatalf("RegOf[%d] differs", i)
		}
	}
}

// TestMaxLive sanity on hand-built lifetimes.
func TestMaxLive(t *testing.T) {
	ls := []Lifetime{
		{Op: 0, Birth: 0, Death: 4},
		{Op: 1, Birth: 1, Death: 3},
		{Op: 2, Birth: 3, Death: 5}, // op 1 dies exactly as op 2 is born: no overlap
		{Op: 3, Birth: 9, Death: 10},
	}
	if got := MaxLive(ls); got != 2 {
		t.Fatalf("MaxLive = %d, want 2", got)
	}
	if got := MaxLive(nil); got != 0 {
		t.Fatalf("MaxLive(nil) = %d, want 0", got)
	}
}
