// Package regalloc completes an allocated datapath down to the register-
// transfer level: it binds every operation's result value to a storage
// register by the left-edge algorithm over value lifetimes, counts the
// multiplexing the resource sharing implies, and extends the paper's
// functional-unit area model with register and interconnect area. The
// paper's evaluation compares methods on functional-unit area alone; this
// layer makes the comparison honest at the full-datapath level, and the
// ablation benches use it to check that DPAlloc's area advantage survives
// storage and steering overheads.
//
// Model (documented so the numbers are interpretable):
//
//   - Every operation's result is captured into a register at the end of
//     its execution (matching the generated RTL of internal/rtl) and must
//     be held until its last consumer has started, or, for sink
//     operations, until the iteration completes.
//   - Two values may share one register iff their occupancy intervals are
//     disjoint. Registers are as wide as the widest value they hold.
//   - A k-input multiplexer on a w-bit signal costs (k-1)·w·MuxBitArea:
//     a k:1 mux decomposes into k-1 two-input muxes. Functional-unit
//     operand ports and register write ports are both muxed.
//   - A register costs Width·RegBitArea.
//
// The default unit costs (1 area unit per register bit, 1 per 2:1 mux
// bit) are on the same half-LUT-flavoured scale as the paper's adder
// area (width) and multiplier area (product of widths).
package regalloc

import (
	"fmt"
	"sort"

	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
)

// Options sets the storage and interconnect unit costs. Zero fields take
// the documented defaults.
type Options struct {
	RegBitArea int64 // area of one register bit; default 1
	MuxBitArea int64 // area of one 2:1 mux bit; default 1
}

func (o Options) withDefaults() Options {
	if o.RegBitArea == 0 {
		o.RegBitArea = 1
	}
	if o.MuxBitArea == 0 {
		o.MuxBitArea = 1
	}
	return o
}

// Lifetime is the occupancy interval of one operation's result value:
// [Birth, Death), at least one control step long.
type Lifetime struct {
	Op    dfg.OpID
	Birth int // completion step of the producing operation
	Death int // step after which the value is no longer needed
	Width int // result width in bits
}

// Register is one allocated storage register and the values it holds.
type Register struct {
	Width  int
	Values []dfg.OpID
}

// Plan is the completed register and interconnect allocation.
type Plan struct {
	Registers []Register
	RegOf     []int // per operation: index of the register holding its result

	FUArea  int64 // functional units, the paper's area model
	RegArea int64
	MuxArea int64

	FUMuxInputs  int // total mux fan-in over all functional-unit operand ports
	RegMuxInputs int // total mux fan-in over all register write ports
}

// TotalArea is the full-datapath area: functional units plus registers
// plus multiplexing.
func (p *Plan) TotalArea() int64 { return p.FUArea + p.RegArea + p.MuxArea }

// Lifetimes computes every operation's value lifetime under the
// datapath's schedule and binding. The result is sorted by birth step,
// then operation ID.
func Lifetimes(d *dfg.Graph, lib *model.Library, dp *datapath.Datapath) ([]Lifetime, error) {
	n := d.N()
	if len(dp.Start) != n || len(dp.InstOf) != n {
		return nil, fmt.Errorf("regalloc: datapath shape mismatch: %d starts for %d operations", len(dp.Start), n)
	}
	makespan := dp.Makespan(lib)
	ls := make([]Lifetime, 0, n)
	for o := 0; o < n; o++ {
		id := dfg.OpID(o)
		birth := dp.Start[o] + dp.BoundLatency(lib, id)
		death := birth
		if succs := d.Succ(id); len(succs) == 0 {
			death = makespan // sink: hold for the module output
		} else {
			for _, s := range succs {
				if dp.Start[s] > death {
					death = dp.Start[s]
				}
			}
		}
		if death <= birth {
			// A value consumed the instant it is produced still exists in
			// hardware for one cycle (it is registered); charge one step.
			death = birth + 1
		}
		ls = append(ls, Lifetime{Op: id, Birth: birth, Death: death, Width: resultWidth(d.Op(id).Spec)})
	}
	sort.Slice(ls, func(a, b int) bool {
		if ls[a].Birth != ls[b].Birth {
			return ls[a].Birth < ls[b].Birth
		}
		return ls[a].Op < ls[b].Op
	})
	return ls, nil
}

// Build runs the full register and interconnect allocation for a legal
// datapath.
func Build(d *dfg.Graph, lib *model.Library, dp *datapath.Datapath, opt Options) (*Plan, error) {
	opt = opt.withDefaults()
	if err := dp.Verify(d, lib, -1); err != nil {
		return nil, fmt.Errorf("regalloc: illegal datapath: %w", err)
	}
	ls, err := Lifetimes(d, lib, dp)
	if err != nil {
		return nil, err
	}

	plan := &Plan{RegOf: make([]int, d.N())}

	// Left-edge register binding: process values in birth order and place
	// each in the first register (lowest index) whose current occupant
	// has died; open a new register when none is free. For interval
	// conflict graphs this uses the minimum possible number of registers.
	type regState struct {
		freeAt int
		width  int
		values []dfg.OpID
	}
	var regs []*regState
	for _, l := range ls {
		placed := -1
		for ri, r := range regs {
			if r.freeAt <= l.Birth {
				placed = ri
				break
			}
		}
		if placed < 0 {
			regs = append(regs, &regState{width: l.Width})
			placed = len(regs) - 1
		}
		r := regs[placed]
		r.freeAt = l.Death
		if l.Width > r.width {
			r.width = l.Width
		}
		r.values = append(r.values, l.Op)
		plan.RegOf[l.Op] = placed
	}
	for _, r := range regs {
		plan.Registers = append(plan.Registers, Register{Width: r.width, Values: r.values})
		plan.RegArea += int64(r.width) * opt.RegBitArea
	}

	// Functional-unit area: the paper's model.
	for _, in := range dp.Instances {
		plan.FUArea += lib.Area(in.Kind)
	}

	// Interconnect. Operand-port muxes: for each instance and slot, the
	// distinct sources steering into that port. A source is the register
	// of a predecessor's value, or a dedicated primary input (each
	// unconnected operand slot is its own source).
	for _, in := range dp.Instances {
		hi, lo := unitPortWidths(in.Kind)
		for slot := 0; slot < 2; slot++ {
			srcs := make(map[string]bool)
			for _, o := range in.Ops {
				preds := d.Pred(o)
				if slot < len(preds) {
					srcs[fmt.Sprintf("r%d", plan.RegOf[preds[slot]])] = true
				} else {
					srcs[fmt.Sprintf("in%d_%d", o, slot)] = true
				}
			}
			width := hi
			if slot == 1 {
				width = lo
			}
			if k := len(srcs); k > 1 {
				plan.FUMuxInputs += k
				plan.MuxArea += int64(k-1) * int64(width) * opt.MuxBitArea
			}
		}
	}
	// Register write-port muxes: distinct producing instances per register.
	for _, r := range plan.Registers {
		prods := make(map[int]bool)
		for _, o := range r.Values {
			prods[dp.InstOf[o]] = true
		}
		if k := len(prods); k > 1 {
			plan.RegMuxInputs += k
			plan.MuxArea += int64(k-1) * int64(r.Width) * opt.MuxBitArea
		}
	}
	return plan, nil
}

// Check validates the plan's internal invariants against its datapath:
// every operation in exactly one register, lifetimes disjoint within a
// register, register wide enough for every value.
func (p *Plan) Check(d *dfg.Graph, lib *model.Library, dp *datapath.Datapath) error {
	ls, err := Lifetimes(d, lib, dp)
	if err != nil {
		return err
	}
	byOp := make(map[dfg.OpID]Lifetime, len(ls))
	for _, l := range ls {
		byOp[l.Op] = l
	}
	seen := make(map[dfg.OpID]bool)
	for ri, r := range p.Registers {
		intervals := make([]Lifetime, 0, len(r.Values))
		for _, o := range r.Values {
			if seen[o] {
				return fmt.Errorf("regalloc: operation %d in two registers", o)
			}
			seen[o] = true
			if p.RegOf[o] != ri {
				return fmt.Errorf("regalloc: RegOf[%d] = %d, but value listed in register %d", o, p.RegOf[o], ri)
			}
			l := byOp[o]
			if l.Width > r.Width {
				return fmt.Errorf("regalloc: register %d width %d too narrow for value %d width %d", ri, r.Width, o, l.Width)
			}
			intervals = append(intervals, l)
		}
		sort.Slice(intervals, func(a, b int) bool { return intervals[a].Birth < intervals[b].Birth })
		for i := 1; i < len(intervals); i++ {
			if intervals[i-1].Death > intervals[i].Birth {
				return fmt.Errorf("regalloc: register %d holds overlapping values %d and %d",
					ri, intervals[i-1].Op, intervals[i].Op)
			}
		}
	}
	if len(seen) != d.N() {
		return fmt.Errorf("regalloc: %d of %d values bound to registers", len(seen), d.N())
	}
	return nil
}

// MaxLive returns the maximum number of simultaneously live values: the
// lower bound on the number of registers any binding needs. Left-edge
// meets it exactly.
func MaxLive(ls []Lifetime) int {
	type ev struct {
		t     int
		delta int
	}
	var evs []ev
	for _, l := range ls {
		evs = append(evs, ev{l.Birth, +1}, ev{l.Death, -1})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return evs[a].delta < evs[b].delta // deaths before births at equal time
	})
	live, best := 0, 0
	for _, e := range evs {
		live += e.delta
		if live > best {
			best = live
		}
	}
	return best
}

func resultWidth(spec model.OpSpec) int {
	if spec.Type.HardwareClass() == model.Mul {
		return spec.Sig.Hi + spec.Sig.Lo
	}
	return spec.Sig.Hi
}

func unitPortWidths(k model.Kind) (hi, lo int) {
	if k.Class == model.Mul {
		return k.Sig.Hi, k.Sig.Lo
	}
	return k.Sig.Hi, k.Sig.Hi
}
