package model

import "testing"

// TestZeroSpecEqualsDefault: the zero LibrarySpec must reproduce the
// paper's cost model exactly over a representative grid of kinds.
func TestZeroSpecEqualsDefault(t *testing.T) {
	built, err := LibrarySpec{}.Build()
	if err != nil {
		t.Fatal(err)
	}
	def := Default()
	for hi := 1; hi <= 32; hi += 3 {
		for lo := 1; lo <= hi; lo += 3 {
			mk := Kind{Class: Mul, Sig: Sig(hi, lo)}
			if built.Latency(mk) != def.Latency(mk) || built.Area(mk) != def.Area(mk) {
				t.Fatalf("mul %v: spec (%d,%d) vs default (%d,%d)", mk.Sig,
					built.Latency(mk), built.Area(mk), def.Latency(mk), def.Area(mk))
			}
		}
		ak := Kind{Class: Add, Sig: AddSig(hi)}
		if built.Latency(ak) != def.Latency(ak) || built.Area(ak) != def.Area(ak) {
			t.Fatalf("add %d: spec vs default mismatch", hi)
		}
	}
}

func TestSpecParameters(t *testing.T) {
	lib, err := LibrarySpec{AdderLatency: 1, MulBitsPerCycle: 4, AdderAreaPerBit: 3, MulAreaScale: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	add := Kind{Class: Add, Sig: AddSig(10)}
	if lib.Latency(add) != 1 || lib.Area(add) != 30 {
		t.Fatalf("adder: latency %d area %d", lib.Latency(add), lib.Area(add))
	}
	mul := Kind{Class: Mul, Sig: Sig(10, 6)}
	if lib.Latency(mul) != 4 { // ⌈16/4⌉
		t.Fatalf("multiplier latency %d", lib.Latency(mul))
	}
	if lib.Area(mul) != 120 { // 2·10·6
		t.Fatalf("multiplier area %d", lib.Area(mul))
	}
}

func TestSpecRejectsNegatives(t *testing.T) {
	for _, spec := range []LibrarySpec{
		{AdderLatency: -1},
		{MulBitsPerCycle: -1},
		{AdderAreaPerBit: -1},
		{MulAreaScale: -1},
	} {
		if _, err := spec.Build(); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}

func TestParseOpType(t *testing.T) {
	for _, typ := range []OpType{Add, Sub, Mul} {
		got, err := ParseOpType(typ.String())
		if err != nil || got != typ {
			t.Fatalf("ParseOpType(%q) = %v, %v", typ.String(), got, err)
		}
	}
	if _, err := ParseOpType("div"); err == nil {
		t.Fatal("unknown type accepted")
	}
}
