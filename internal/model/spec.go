package model

import "fmt"

// ParseOpType parses the conventional short name of an operation type
// ("add", "sub", "mul"), the inverse of OpType.String.
func ParseOpType(s string) (OpType, error) {
	switch s {
	case "add":
		return Add, nil
	case "sub":
		return Sub, nil
	case "mul":
		return Mul, nil
	default:
		return 0, fmt.Errorf("model: unknown operation type %q", s)
	}
}

// LibrarySpec is a serializable description of a Library within the
// paper's parametric cost-model family: constant-latency adders of area
// proportional to their width, and n×m multipliers taking ⌈(n+m)/B⌉
// cycles with area proportional to n·m. The zero value denotes the
// paper's exact model (2-cycle adders, B = 8, unit area scales), so a
// Problem that omits its library on the wire gets Default().
type LibrarySpec struct {
	// AdderLatency is the cycle count of any adder; 0 means 2.
	AdderLatency int `json:"adder_latency,omitempty"`
	// MulBitsPerCycle is B in the SONIC latency formula ⌈(n+m)/B⌉;
	// 0 means 8.
	MulBitsPerCycle int `json:"mul_bits_per_cycle,omitempty"`
	// AdderAreaPerBit scales adder area (area = scale·w); 0 means 1.
	AdderAreaPerBit int64 `json:"adder_area_per_bit,omitempty"`
	// MulAreaScale scales multiplier area (area = scale·n·m); 0 means 1.
	MulAreaScale int64 `json:"mul_area_scale,omitempty"`
}

// Build materialises the spec as a Library, applying the paper defaults
// for zero fields. Negative fields are rejected.
func (s LibrarySpec) Build() (*Library, error) {
	if s.AdderLatency < 0 || s.MulBitsPerCycle < 0 || s.AdderAreaPerBit < 0 || s.MulAreaScale < 0 {
		return nil, fmt.Errorf("model: library spec has negative parameter: %+v", s)
	}
	addLat := s.AdderLatency
	if addLat == 0 {
		addLat = 2
	}
	bits := s.MulBitsPerCycle
	if bits == 0 {
		bits = 8
	}
	addArea := s.AdderAreaPerBit
	if addArea == 0 {
		addArea = 1
	}
	mulArea := s.MulAreaScale
	if mulArea == 0 {
		mulArea = 1
	}
	return &Library{
		Latency: func(k Kind) int {
			if k.Class == Add {
				return addLat
			}
			return (k.Sig.Hi + k.Sig.Lo + bits - 1) / bits
		},
		Area: func(k Kind) int64 {
			if k.Class == Add {
				return addArea * int64(k.Sig.Hi)
			}
			return mulArea * int64(k.Sig.Hi) * int64(k.Sig.Lo)
		},
	}, nil
}
